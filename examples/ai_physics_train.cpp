// End-to-end AI physics pipeline (§5.2.1): generate a training corpus from
// the conventional suite (the stand-in for 80 days of 5-km GRIST output),
// train the tendency CNN and radiation MLP with the paper's 7:1 split and
// per-day validation extraction, report skill, and run the trained suite
// behind the physics–dynamics interface.
#include <cstdio>
#include <cmath>

#include "atm/physics.hpp"

int main() {
  using namespace ap3;
  using namespace ap3::atm;

  std::printf("AI physics suite training (paper protocol, mini scale)\n");
  std::printf("=======================================================\n\n");

  const std::size_t days = 40, steps_per_day = 8, nlev = 16;
  ConventionalPhysics conventional;
  std::printf("generating %zu days x %zu steps of conventional-physics "
              "columns (%zu levels)...\n",
              days, steps_per_day, nlev);
  const TrainingData data =
      generate_training_data(conventional, days, steps_per_day, nlev, 20250705);

  ai::SuiteConfig config;
  config.levels = static_cast<int>(nlev);
  config.cnn_hidden = 16;
  config.mlp_hidden = 48;

  {
    ai::TendencyCnn probe(config);
    ai::RadiationMlp probe_mlp(config);
    std::printf("tendency CNN: %d conv layers, %d ResUnits, %zu parameters\n",
                probe.num_conv_layers(), probe.num_res_units(),
                probe.num_params());
    std::printf("radiation MLP: %d dense layers, %zu parameters\n",
                probe_mlp.num_dense_layers(), probe_mlp.num_params());
    ai::TendencyCnn paper_cnn(ai::SuiteConfig::paper_scale());
    std::printf("(paper-scale CNN would hold %zu parameters ~ 5e5)\n\n",
                paper_cnn.num_params());
  }

  std::printf("training (7:1 day split + 3 random validation steps/day)...\n");
  const TrainedSuite trained = train_ai_physics(data, config, 25, 3e-3f);
  std::printf("  tendency  test R^2: %.3f\n", trained.tendency_r2);
  std::printf("  radiation test R^2: %.3f\n\n", trained.flux_r2);

  // Side-by-side inference on fresh columns.
  AiPhysics ai_suite(trained.suite);
  ColumnBatch conventional_batch(3, nlev), ai_batch(3, nlev);
  for (std::size_t c = 0; c < 3; ++c) {
    const double tskin = 280.0 + 8.0 * static_cast<double>(c);
    for (ColumnBatch* batch : {&conventional_batch, &ai_batch}) {
      batch->tskin[c] = tskin;
      batch->coszr[c] = 0.3 + 0.3 * static_cast<double>(c);
      for (std::size_t k = 0; k < nlev; ++k) {
        const double depth = (k + 1.0) / static_cast<double>(nlev);
        batch->temp[batch->at(c, k)] = 216.0 + (tskin - 216.0) * depth;
        batch->q[batch->at(c, k)] = 0.014 * std::exp(-4.0 * (1.0 - depth));
        batch->u[batch->at(c, k)] = 8.0;
        batch->v[batch->at(c, k)] = 1.0;
        batch->pressure[batch->at(c, k)] = 1e5 * std::pow(depth, 1.2) + 2000.0;
      }
    }
  }
  conventional.compute(conventional_batch);
  ai_suite.compute(ai_batch);

  std::printf("surface fluxes, conventional vs AI (fresh columns):\n");
  std::printf("  col   gsw conv   gsw AI    glw conv   glw AI\n");
  for (std::size_t c = 0; c < 3; ++c)
    std::printf("  %3zu   %8.1f   %7.1f   %8.1f   %7.1f\n", c,
                conventional_batch.gsw[c], ai_batch.gsw[c],
                conventional_batch.glw[c], ai_batch.glw[c]);

  std::printf("\nflop structure (why the AI suite wins on tensor hardware):\n");
  std::printf("  conventional: %.2e scalar flops/column (branchy)\n",
              conventional.flops_per_column(nlev));
  std::printf("  AI suite:     %.2e tensor flops/column (matmul-shaped)\n",
              ai_suite.flops_per_column(nlev));
  return 0;
}
