// Machine topology descriptor for topology-aware collectives.
//
// The paper's machine (§6.3) is a fat tree of 256-node supernodes whose
// uplinks are 16:3 oversubscribed: a byte crossing supernodes costs ~5.3x a
// byte that stays inside one. A Topology records which supernode each rank of
// a communicator lives in, so the collectives in par::Comm can stage traffic
// hierarchically (members -> supernode leader -> peer leaders -> members) and
// the obs counters can split bytes into intra- vs inter-supernode levels.
//
// The descriptor is deliberately tiny and immutable: a rank -> supernode map,
// compacted to supernode indices 0..S-1 in ascending id order, plus the
// derived member lists and leaders (lowest rank of each supernode). It is
// seeded from sunway::kNodesPerSupernode for paper-shaped runs and injectable
// with any mapping for tests; Comm::split() projects it onto subgroups so a
// task-domain communicator inherits the machine shape automatically.
#pragma once

#include <memory>
#include <vector>

namespace ap3::par {

class Topology {
 public:
  /// Injectable mapping: `supernode_of[rank]` is the supernode id of `rank`.
  /// Ids need not be contiguous; they are compacted (ascending id order) to
  /// supernode indices 0..S-1, which define the canonical supernode order
  /// used by the blocked reduction (see comm.hpp).
  explicit Topology(std::vector<int> supernode_of);

  /// The paper-shaped mapping: ranks packed into supernodes of
  /// `supernode_size` consecutive ranks (the last one may be smaller).
  /// Defaults to sunway::kNodesPerSupernode when size <= 0.
  static Topology clustered(int nranks, int supernode_size = 0);

  int nranks() const { return static_cast<int>(supernode_of_.size()); }
  int num_supernodes() const { return static_cast<int>(members_.size()); }

  /// Compact supernode index (0..S-1) of a communicator rank.
  int supernode_of(int rank) const {
    return supernode_of_[static_cast<std::size_t>(rank)];
  }
  /// Ranks of supernode `s`, ascending. Never empty.
  const std::vector<int>& members(int s) const {
    return members_[static_cast<std::size_t>(s)];
  }
  /// Leader (lowest rank) of supernode `s`.
  int leader(int s) const { return members_[static_cast<std::size_t>(s)][0]; }
  /// Leader of the supernode containing `rank`.
  int leader_of(int rank) const { return leader(supernode_of(rank)); }
  bool is_leader(int rank) const { return leader_of(rank) == rank; }

  /// True when the hierarchy is degenerate (<= 1 supernode, or every rank its
  /// own supernode): hierarchical staging cannot reduce any traffic.
  bool trivial() const {
    return num_supernodes() <= 1 || num_supernodes() == nranks();
  }

  /// Topology induced on a subgroup. `parent_ranks[i]` is the parent-comm
  /// rank that becomes rank i of the subgroup; the result maps subgroup ranks
  /// to (re-compacted) supernode indices. Used by Comm::split().
  Topology induced(const std::vector<int>& parent_ranks) const;

 private:
  std::vector<int> supernode_of_;           ///< rank -> compact supernode index
  std::vector<std::vector<int>> members_;   ///< supernode index -> ranks
};

}  // namespace ap3::par
