
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ai/models.cpp" "src/ai/CMakeFiles/ap3_ai.dir/models.cpp.o" "gcc" "src/ai/CMakeFiles/ap3_ai.dir/models.cpp.o.d"
  "/root/repo/src/ai/normalizer.cpp" "src/ai/CMakeFiles/ap3_ai.dir/normalizer.cpp.o" "gcc" "src/ai/CMakeFiles/ap3_ai.dir/normalizer.cpp.o.d"
  "/root/repo/src/ai/suite.cpp" "src/ai/CMakeFiles/ap3_ai.dir/suite.cpp.o" "gcc" "src/ai/CMakeFiles/ap3_ai.dir/suite.cpp.o.d"
  "/root/repo/src/ai/trainer.cpp" "src/ai/CMakeFiles/ap3_ai.dir/trainer.cpp.o" "gcc" "src/ai/CMakeFiles/ap3_ai.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ap3_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/ap3_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
