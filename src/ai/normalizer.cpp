#include "ai/normalizer.hpp"

#include <cmath>

#include "base/error.hpp"
#include "tensor/dispatch.hpp"

namespace ap3::ai {

ChannelNormalizer ChannelNormalizer::fit(const tensor::Tensor& data) {
  AP3_REQUIRE(data.rank() == 3);
  const std::size_t n = data.dim(0), c = data.dim(1), l = data.dim(2);
  AP3_REQUIRE(n > 0);
  ChannelNormalizer out;
  out.flat_ = false;
  out.means_.assign(c, 0.0f);
  out.stds_.assign(c, 1.0f);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < l; ++k) {
        const double v = data.at3(i, ch, k);
        sum += v;
        sum2 += v * v;
      }
    const double count = static_cast<double>(n * l);
    const double mean = sum / count;
    const double var = sum2 / count - mean * mean;
    out.means_[ch] = static_cast<float>(mean);
    // Guard relative to the channel magnitude: a (near-)constant channel of
    // 1e5 Pa must not normalize off-sample values by std=1.
    const double scale = std::max(std::abs(mean), 1.0);
    const double std_dev = var > 0.0 ? std::sqrt(var) : 0.0;
    out.stds_[ch] = static_cast<float>(std_dev > 1e-6 * scale ? std_dev : scale);
  }
  return out;
}

ChannelNormalizer ChannelNormalizer::fit_flat(const tensor::Tensor& data) {
  AP3_REQUIRE(data.rank() == 2);
  const std::size_t n = data.dim(0), f = data.dim(1);
  AP3_REQUIRE(n > 0);
  ChannelNormalizer out;
  out.flat_ = true;
  out.means_.assign(f, 0.0f);
  out.stds_.assign(f, 1.0f);
  for (std::size_t j = 0; j < f; ++j) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.at2(i, j);
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = sum2 / static_cast<double>(n) - mean * mean;
    out.means_[j] = static_cast<float>(mean);
    const double scale = std::max(std::abs(mean), 1.0);
    const double std_dev = var > 0.0 ? std::sqrt(var) : 0.0;
    out.stds_[j] = static_cast<float>(std_dev > 1e-6 * scale ? std_dev : scale);
  }
  return out;
}

namespace {
pp::RangePolicy pol(std::size_t n, std::string_view label) {
  pp::RangePolicy p(0, n);
  p.on(tensor::dispatch().space).named(label);
  if (tensor::dispatch().chunk != 0) p.chunked(tensor::dispatch().chunk);
  return p;
}
}  // namespace

void ChannelNormalizer::apply(tensor::Tensor& data) const {
  const float* mean = means_.data();
  const float* std_dev = stds_.data();
  float* d = data.data();
  if (flat_) {
    AP3_REQUIRE(data.rank() == 2 && data.dim(1) == means_.size());
    const std::size_t f = means_.size();
    pp::parallel_for(pol(data.size(), "ai:normalize:apply"),
                     [=](std::size_t e) {
                       const std::size_t j = e % f;
                       d[e] = (d[e] - mean[j]) / std_dev[j];
                     });
    return;
  }
  AP3_REQUIRE(data.rank() == 3 && data.dim(1) == means_.size());
  const std::size_t c = means_.size(), l = data.dim(2);
  pp::parallel_for(pol(data.size(), "ai:normalize:apply"), [=](std::size_t e) {
    const std::size_t ch = (e / l) % c;
    d[e] = (d[e] - mean[ch]) / std_dev[ch];
  });
}

void ChannelNormalizer::invert(tensor::Tensor& data) const {
  const float* mean = means_.data();
  const float* std_dev = stds_.data();
  float* d = data.data();
  if (flat_) {
    AP3_REQUIRE(data.rank() == 2 && data.dim(1) == means_.size());
    const std::size_t f = means_.size();
    pp::parallel_for(pol(data.size(), "ai:normalize:invert"),
                     [=](std::size_t e) {
                       const std::size_t j = e % f;
                       d[e] = d[e] * std_dev[j] + mean[j];
                     });
    return;
  }
  AP3_REQUIRE(data.rank() == 3 && data.dim(1) == means_.size());
  const std::size_t c = means_.size(), l = data.dim(2);
  pp::parallel_for(pol(data.size(), "ai:normalize:invert"), [=](std::size_t e) {
    const std::size_t ch = (e / l) % c;
    d[e] = d[e] * std_dev[ch] + mean[ch];
  });
}

}  // namespace ap3::ai
