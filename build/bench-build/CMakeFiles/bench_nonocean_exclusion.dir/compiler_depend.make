# Empty compiler generated dependencies file for bench_nonocean_exclusion.
# This may be replaced when dependencies are built.
