// GlobalSegMap — MCT's decomposition descriptor (§5.2.4).
//
// A GSMap is a globally replicated run-length description of which rank owns
// which global grid points: a list of (global_start, length, pe) segments.
// The paper notes that *building* GSMaps and Router tables at init exceeds
// the memory of a Sunway core group, so both structures support offline
// generation: serialize() writes a compact binary blob as a preprocessing
// step and deserialize() loads it at model init.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "par/comm.hpp"

namespace ap3::mct {

struct Segment {
  std::int64_t gstart = 0;
  std::int64_t length = 0;
  int pe = 0;
};

class GlobalSegMap {
 public:
  GlobalSegMap() = default;

  /// Collective constructor: every rank passes its sorted owned global ids;
  /// the segments are assembled by an allgather (the expensive online path).
  static GlobalSegMap build(const par::Comm& comm,
                            const std::vector<std::int64_t>& owned_ids);

  /// Sequential constructor for offline preprocessing: all ranks' id lists.
  static GlobalSegMap from_all(
      const std::vector<std::vector<std::int64_t>>& ids_by_rank);

  std::int64_t gsize() const { return gsize_; }
  int num_pes() const { return num_pes_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Owning rank of a global id; throws if unmapped.
  int owner(std::int64_t gid) const;
  bool contains(std::int64_t gid) const;

  /// Local position of `gid` within rank `pe`'s point ordering (points are
  /// ordered by segment order, then offset within segment).
  std::int64_t local_index(int pe, std::int64_t gid) const;
  /// Number of points owned by `pe`.
  std::int64_t local_size(int pe) const;
  /// The owned global ids of `pe`, in local point order.
  std::vector<std::int64_t> local_ids(int pe) const;

  // --- offline precompute (§5.2.4) ---------------------------------------
  std::vector<std::uint8_t> serialize() const;
  static GlobalSegMap deserialize(const std::vector<std::uint8_t>& blob);
  void save(const std::string& path) const;
  static GlobalSegMap load(const std::string& path);

  bool operator==(const GlobalSegMap& other) const {
    return gsize_ == other.gsize_ && num_pes_ == other.num_pes_ &&
           segments_.size() == other.segments_.size() &&
           std::equal(segments_.begin(), segments_.end(),
                      other.segments_.begin(),
                      [](const Segment& a, const Segment& b) {
                        return a.gstart == b.gstart && a.length == b.length &&
                               a.pe == b.pe;
                      });
  }

 private:
  void finalize();
  std::vector<Segment> segments_;  // sorted by (pe, gstart)
  std::int64_t gsize_ = 0;
  int num_pes_ = 0;
};

}  // namespace ap3::mct
