file(REMOVE_RECURSE
  "../bench/bench_fig2_sota"
  "../bench/bench_fig2_sota.pdb"
  "CMakeFiles/bench_fig2_sota.dir/bench_fig2_sota.cpp.o"
  "CMakeFiles/bench_fig2_sota.dir/bench_fig2_sota.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
