file(REMOVE_RECURSE
  "CMakeFiles/ap3_precision.dir/group_scaled.cpp.o"
  "CMakeFiles/ap3_precision.dir/group_scaled.cpp.o.d"
  "libap3_precision.a"
  "libap3_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
