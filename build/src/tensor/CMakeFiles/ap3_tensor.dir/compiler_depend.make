# Empty compiler generated dependencies file for ap3_tensor.
# This may be replaced when dependencies are built.
