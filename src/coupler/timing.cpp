#include "coupler/timing.hpp"

#include <algorithm>
#include <sstream>

#include "base/constants.hpp"

namespace ap3::cpl {

double TimingSummary::sypd() const {
  if (wall_seconds <= 0.0) return 0.0;
  const double years = simulated_seconds / constants::kSecondsPerYear;
  const double wall_days = wall_seconds / constants::kSecondsPerDay;
  return years / wall_days;
}

std::string TimingSummary::to_string() const {
  std::ostringstream os;
  os << "timing report (max across ranks, init excluded)\n";
  for (const PhaseTiming& phase : phases) {
    std::string label = "  " + phase.name;
    if (label.size() < 28) label.resize(28, ' ');
    os << label << " " << phase.max_seconds << " s  (mean "
       << phase.mean_seconds << " s, " << phase.calls << " calls)\n";
  }
  os << "  simulated " << simulated_seconds << " s in " << wall_seconds
     << " s wall -> " << sypd() << " SYPD\n";
  return os.str();
}

TimingSummary summarize_timing(const par::Comm& comm,
                               const TimerRegistry& registry,
                               double simulated_seconds) {
  TimingSummary summary;
  summary.simulated_seconds = simulated_seconds;

  // Agree on the phase list: union of names, gathered as a flat string.
  std::string mine;
  for (const TimerStats& stats : registry.snapshot()) mine += stats.name + "\n";
  std::vector<char> flat(mine.begin(), mine.end());
  const std::vector<char> all = comm.allgatherv(std::span<const char>(flat),
                                                nullptr);
  std::vector<std::string> names;
  {
    std::string current;
    for (char ch : all) {
      if (ch == '\n') {
        if (!current.empty() &&
            std::find(names.begin(), names.end(), current) == names.end())
          names.push_back(current);
        current.clear();
      } else {
        current.push_back(ch);
      }
    }
    std::sort(names.begin(), names.end());
  }

  double run_total = 0.0;
  for (const std::string& name : names) {
    PhaseTiming phase;
    phase.name = name;
    const double local = registry.total(name);
    phase.max_seconds = comm.allreduce_value(local, par::ReduceOp::kMax);
    phase.mean_seconds =
        comm.allreduce_value(local, par::ReduceOp::kSum) / comm.size();
    phase.calls = comm.allreduce_value(
        static_cast<long long>(registry.calls(name)), par::ReduceOp::kMax);
    summary.phases.push_back(phase);
    if (name == "run") run_total = phase.max_seconds;
  }
  summary.wall_seconds = run_total;
  return summary;
}

}  // namespace ap3::cpl
