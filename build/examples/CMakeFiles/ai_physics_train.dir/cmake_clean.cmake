file(REMOVE_RECURSE
  "CMakeFiles/ai_physics_train.dir/ai_physics_train.cpp.o"
  "CMakeFiles/ai_physics_train.dir/ai_physics_train.cpp.o.d"
  "ai_physics_train"
  "ai_physics_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_physics_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
