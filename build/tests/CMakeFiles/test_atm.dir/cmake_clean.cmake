file(REMOVE_RECURSE
  "CMakeFiles/test_atm.dir/test_atm.cpp.o"
  "CMakeFiles/test_atm.dir/test_atm.cpp.o.d"
  "test_atm"
  "test_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
