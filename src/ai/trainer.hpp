// Training pipeline for the AI physics suite (§5.2.1).
//
// The paper trains on 80 days of 5-km GRIST fields (20 per season), with a
// 7:1 train:test partition and three random time steps per day held out as a
// validation subset for hyper-parameter tuning. This module reproduces that
// split logic and provides a mini-batch Adam trainer plus R² evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "ai/models.hpp"
#include "ai/normalizer.hpp"
#include "tensor/optimizer.hpp"

namespace ap3::ai {

/// Index split mirroring the paper's protocol. Samples are organized as
/// `days` days × `steps_per_day` time steps (sample id = day*steps + step).
struct DataSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
  std::vector<std::size_t> validation;

  /// 7:1 train:test over days; 3 random steps per *training* day go to the
  /// validation subset instead of training.
  static DataSplit make(std::size_t days, std::size_t steps_per_day,
                        std::uint64_t seed);
};

struct TrainReport {
  std::vector<float> epoch_losses;   ///< train MSE per epoch
  float final_train_loss = 0.0f;
  float validation_loss = 0.0f;
  float test_r2 = 0.0f;              ///< on the held-out test subset
};

/// Generic supervised trainer over (inputs, targets) index-addressed rows.
class Trainer {
 public:
  struct Options {
    int epochs = 5;
    std::size_t batch = 16;
    float lr = 1e-3f;
    std::uint64_t shuffle_seed = 7;
  };

  /// Trains `model` to map inputs[i] -> targets[i] over the split's train
  /// rows; reports validation loss and test R². Gathering a row means
  /// slicing the leading dimension.
  static TrainReport fit(tensor::Sequential& model, const tensor::Tensor& inputs,
                         const tensor::Tensor& targets, const DataSplit& split,
                         const Options& options);

  /// R² of model predictions over the given row subset.
  static float evaluate_r2(tensor::Sequential& model,
                           const tensor::Tensor& inputs,
                           const tensor::Tensor& targets,
                           const std::vector<std::size_t>& rows);

  /// Gather rows into a batch tensor (leading dim = rows.size()).
  static tensor::Tensor gather_rows(const tensor::Tensor& data,
                                    const std::vector<std::size_t>& rows);
};

}  // namespace ap3::ai
