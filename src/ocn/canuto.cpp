#include "ocn/canuto.hpp"

#include "base/constants.hpp"
#include "base/error.hpp"

namespace ap3::ocn {

CanutoMixing::CanutoMixing(CanutoConfig config, LinearEos eos)
    : config_(config), eos_(eos) {}

double CanutoMixing::richardson(double drho_dz, double du_dz,
                                double dv_dz) const {
  // N² = -(g/rho0) dρ/dz with z positive upward; our arrays index downward,
  // so drho_dz here is (ρ_below − ρ_above)/dz — positive when stable.
  const double n2 = constants::kGravity / eos_.rho0 * drho_dz;
  const double s2 = du_dz * du_dz + dv_dz * dv_dz + config_.shear_eps;
  return n2 / s2;
}

void CanutoMixing::diffusivities(const MixingColumn& column,
                                 std::span<double> kv) const {
  const std::size_t nz = column.temp.size();
  AP3_REQUIRE(column.salt.size() == nz && column.u.size() == nz &&
              column.v.size() == nz);
  AP3_REQUIRE(column.dz.size() + 1 == nz);
  AP3_REQUIRE(kv.size() + 1 == nz);
  const auto active = static_cast<std::size_t>(
      column.active_levels < 0 ? 0 : column.active_levels);
  for (std::size_t k = 0; k + 1 < nz; ++k) {
    if (k + 1 >= active) {  // interface below the sea floor
      kv[k] = 0.0;
      continue;
    }
    const double dz = column.dz[k];
    const double rho_upper = eos_.density(column.temp[k], column.salt[k]);
    const double rho_lower = eos_.density(column.temp[k + 1], column.salt[k + 1]);
    const double drho_dz = (rho_lower - rho_upper) / dz;
    const double du_dz = (column.u[k + 1] - column.u[k]) / dz;
    const double dv_dz = (column.v[k + 1] - column.v[k]) / dz;
    const double ri = richardson(drho_dz, du_dz, dv_dz);
    if (ri < 0.0) {
      kv[k] = config_.kv_convective;  // statically unstable: convect
    } else {
      const double denom = 1.0 + 5.0 * ri;
      kv[k] = config_.kv_background + config_.kv0 / (denom * denom);
    }
  }
}

}  // namespace ap3::ocn
