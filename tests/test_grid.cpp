// Tests for the grid substrates: icosahedral mesh invariants (Table 1
// signature), tripolar grid geometry and synthetic bathymetry, partitioners,
// the §5.2.2 active compaction, and halo exchange including the north fold.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "base/constants.hpp"
#include "grid/halo.hpp"
#include "grid/icosahedral.hpp"
#include "grid/partition.hpp"
#include "grid/tripolar.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::grid;

// --- icosahedral mesh ---------------------------------------------------------

class IcosaParam : public ::testing::TestWithParam<int> {};

TEST_P(IcosaParam, EulerCountsMatchClosedForm) {
  const int n = GetParam();
  IcosahedralGrid mesh(n);
  const auto counts = IcosaCounts::for_n(n);
  EXPECT_EQ(static_cast<std::int64_t>(mesh.num_vertices()), counts.vertices);
  EXPECT_EQ(static_cast<std::int64_t>(mesh.num_edges()), counts.edges);
  EXPECT_EQ(static_cast<std::int64_t>(mesh.num_cells()), counts.cells);
  // Euler characteristic of the sphere: V - E + F = 2.
  EXPECT_EQ(counts.vertices - counts.edges + counts.cells, 2);
}

TEST_P(IcosaParam, CellAreasSumToSphere) {
  IcosahedralGrid mesh(GetParam());
  double total = 0.0;
  for (size_t c = 0; c < mesh.num_cells(); ++c) total += mesh.cell_area(c);
  EXPECT_NEAR(total, 4.0 * constants::kPi, 1e-8);
}

TEST_P(IcosaParam, EveryEdgeHasTwoCells) {
  IcosahedralGrid mesh(GetParam());
  for (size_t e = 0; e < mesh.num_edges(); ++e) {
    const auto& cells = mesh.edge_cell_ids(e);
    EXPECT_NE(cells[0], cells[1]);
    EXPECT_LT(cells[0], mesh.num_cells());
    EXPECT_LT(cells[1], mesh.num_cells());
  }
}

TEST_P(IcosaParam, NeighborRelationIsSymmetric) {
  IcosahedralGrid mesh(GetParam());
  for (size_t c = 0; c < mesh.num_cells(); ++c) {
    for (auto nb : mesh.cell_neighbors(c)) {
      const auto back = mesh.cell_neighbors(nb);
      EXPECT_TRUE(back[0] == c || back[1] == c || back[2] == c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Subdivisions, IcosaParam, ::testing::Values(1, 2, 4, 7, 12));

TEST(Icosa, VerticesOnUnitSphere) {
  IcosahedralGrid mesh(5);
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    const auto& p = mesh.vertex(v);
    EXPECT_NEAR(p.x * p.x + p.y * p.y + p.z * p.z, 1.0, 1e-12);
  }
}

TEST(Icosa, ResolutionScalesInverselyWithN) {
  EXPECT_NEAR(IcosaCounts::resolution_km(8) / IcosaCounts::resolution_km(16),
              2.0, 1e-9);
}

TEST(Icosa, PaperScaleCountsMatchTable1) {
  // Table 1, 1 km row: 3.4e8 cells, 5.0e8 edges, 1.7e8 vertices.
  const auto c = IcosaCounts::for_n(4123);
  EXPECT_NEAR(static_cast<double>(c.cells), 3.4e8, 0.02e8);
  EXPECT_NEAR(static_cast<double>(c.edges), 5.1e8, 0.02e8);
  EXPECT_NEAR(static_cast<double>(c.vertices), 1.7e8, 0.01e8);
}

TEST(Icosa, ForResolutionProducesRequestedSpacing) {
  const auto counts = IcosaCounts::for_resolution_km(100.0);
  const double res = IcosaCounts::resolution_km(counts.n);
  EXPECT_LE(res, 100.0);
  EXPECT_GE(res, 80.0);  // not wastefully fine
}

TEST(Icosa, MeanSpacingMatchesClosedForm) {
  IcosahedralGrid mesh(6);
  EXPECT_NEAR(mesh.mean_spacing_km(), IcosaCounts::resolution_km(6), 20.0);
}

// --- tripolar grid -------------------------------------------------------------

TEST(Tripolar, ShapeMatchesConfig) {
  TripolarGrid grid(TripolarConfig{120, 80, 20});
  EXPECT_EQ(grid.nx(), 120);
  EXPECT_EQ(grid.ny(), 80);
  EXPECT_EQ(grid.total_points(), 120LL * 80 * 20);
}

TEST(Tripolar, Table1ShapesFromResolution) {
  const auto c1 = TripolarConfig::for_resolution_km(1.0);
  EXPECT_EQ(c1.nx, 36000);
  EXPECT_EQ(c1.ny, 22018);
  // 1-km total grids = 6.3e10 (Table 1).
  EXPECT_NEAR(static_cast<double>(c1.nx) * c1.ny * c1.nz, 6.3e10, 0.1e10);
  const auto c10 = TripolarConfig::for_resolution_km(10.0);
  EXPECT_EQ(c10.nx, 3600);
  EXPECT_EQ(c10.ny, 2202);
}

TEST(Tripolar, OceanFractionNearEarths71Percent) {
  TripolarGrid grid(TripolarConfig{240, 160, 40});
  EXPECT_GT(grid.ocean_surface_fraction(), 0.60);
  EXPECT_LT(grid.ocean_surface_fraction(), 0.82);
}

TEST(Tripolar, ActiveVolumeFractionNear70Percent) {
  // §5.2.2: removing 3-D non-ocean points cuts ~30 % of the points.
  TripolarGrid grid(TripolarConfig{240, 160, 40});
  EXPECT_GT(grid.active_volume_fraction(), 0.55);
  EXPECT_LT(grid.active_volume_fraction(), 0.80);
}

TEST(Tripolar, BathymetryDeterministicInSeed) {
  TripolarConfig config{64, 48, 10};
  TripolarGrid a(config), b(config);
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a.kmt(i, j), b.kmt(i, j));
  config.land_seed += 1;
  TripolarGrid c(config);
  int diff = 0;
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 64; ++i)
      if (a.kmt(i, j) != c.kmt(i, j)) ++diff;
  EXPECT_GT(diff, 0);
}

TEST(Tripolar, AreasShrinkTowardPoles) {
  TripolarGrid grid(TripolarConfig{64, 48, 10});
  EXPECT_GT(grid.cell_area(0, 24), grid.cell_area(0, 47));
}

TEST(Tripolar, DepthsMonotoneAndBounded) {
  TripolarGrid grid(TripolarConfig{32, 24, 80});
  double prev = 0.0;
  for (int k = 0; k < 80; ++k) {
    EXPECT_GT(grid.level_depth(k), prev);
    prev = grid.level_depth(k);
  }
  EXPECT_NEAR(prev, 5500.0, 1.0);
}

TEST(Tripolar, KmtNeverExceedsNz) {
  TripolarGrid grid(TripolarConfig{100, 70, 15});
  for (int j = 0; j < 70; ++j)
    for (int i = 0; i < 100; ++i) {
      EXPECT_GE(grid.kmt(i, j), 0);
      EXPECT_LE(grid.kmt(i, j), 15);
    }
}

// --- partitioners -----------------------------------------------------------------

TEST(Partition, OneDimCoversWithoutOverlap) {
  const std::int64_t n = 1003;
  const int parts = 7;
  std::int64_t covered = 0;
  std::int64_t prev_end = 0;
  for (int r = 0; r < parts; ++r) {
    const Range1D range = partition_1d(n, parts, r);
    EXPECT_EQ(range.begin, prev_end);
    covered += range.size();
    prev_end = range.end;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(prev_end, n);
}

TEST(Partition, OneDimBalanced) {
  for (int r = 0; r < 7; ++r) {
    const Range1D range = partition_1d(1003, 7, r);
    EXPECT_GE(range.size(), 1003 / 7);
    EXPECT_LE(range.size(), 1003 / 7 + 1);
  }
}

TEST(Partition, OwnerConsistentWithRanges) {
  const std::int64_t n = 527;
  const int parts = 9;
  for (std::int64_t i = 0; i < n; ++i) {
    const int owner = owner_1d(n, parts, i);
    const Range1D range = partition_1d(n, parts, owner);
    EXPECT_GE(i, range.begin);
    EXPECT_LT(i, range.end);
  }
}

TEST(Partition, BlockBalancedPicksReasonableShape) {
  const auto p = BlockPartition2D::balanced(1000, 500, 8);
  EXPECT_EQ(p.nranks(), 8);
  EXPECT_GE(p.px(), p.py());  // wider grid gets more x-blocks
}

TEST(Partition, BlockOwnerRoundTrips) {
  BlockPartition2D p(100, 60, 4, 3);
  for (int rank = 0; rank < 12; ++rank) {
    const Range1D xr = p.x_range(rank);
    const Range1D yr = p.y_range(rank);
    EXPECT_EQ(p.owner(static_cast<int>(xr.begin), static_cast<int>(yr.begin)),
              rank);
    EXPECT_EQ(p.owner(static_cast<int>(xr.end) - 1,
                      static_cast<int>(yr.end) - 1),
              rank);
  }
}

TEST(Compaction, RemovesNonOceanPoints) {
  TripolarGrid grid(TripolarConfig{120, 90, 30});
  ActiveCompaction compaction(grid, 8);
  EXPECT_NEAR(compaction.removed_fraction(),
              1.0 - grid.active_volume_fraction(), 1e-12);
  EXPECT_GT(compaction.removed_fraction(), 0.2);
  EXPECT_EQ(compaction.total_points(), grid.active_points());
}

TEST(Compaction, EveryActiveColumnAssignedExactlyOnce) {
  TripolarGrid grid(TripolarConfig{80, 60, 20});
  ActiveCompaction compaction(grid, 5);
  std::set<std::pair<int, int>> seen;
  std::int64_t total = 0;
  for (int r = 0; r < 5; ++r) {
    for (const CompactColumn& col : compaction.columns(r)) {
      EXPECT_TRUE(seen.insert({col.i, col.j}).second)
          << "column assigned twice";
      EXPECT_EQ(col.kmt, grid.kmt(col.i, col.j));
      ++total;
    }
  }
  EXPECT_EQ(total, compaction.total_columns());
}

TEST(Compaction, BalancesThreeDWorkload) {
  TripolarGrid grid(TripolarConfig{160, 120, 40});
  ActiveCompaction compaction(grid, 16);
  // Naive area decomposition has imbalance >= 1/active_fraction (~1.4);
  // compaction should be close to 1.
  EXPECT_LT(compaction.load_imbalance(), 1.10);
}

// --- halo exchange ---------------------------------------------------------------

TEST(BlockHalo, PeriodicEastWest) {
  par::run(4, [](par::Comm& comm) {
    const int nx = 16, ny = 8;
    BlockHalo halo(comm, nx, ny, 4, 1, false);
    std::vector<double> field(
        static_cast<size_t>((halo.nx_local() + 2) * (halo.ny_local() + 2)), 0.0);
    // Value = global i.
    for (int j = 0; j < halo.ny_local(); ++j)
      for (int i = 0; i < halo.nx_local(); ++i)
        field[halo.halo_index(i, j)] = halo.x0() + i;
    halo.exchange(field);
    for (int j = 0; j < halo.ny_local(); ++j) {
      const double west_expect = (halo.x0() - 1 + nx) % nx;
      const double east_expect = (halo.x0() + halo.nx_local()) % nx;
      EXPECT_EQ(field[halo.halo_index(-1, j)], west_expect);
      EXPECT_EQ(field[halo.halo_index(halo.nx_local(), j)], east_expect);
    }
  });
}

TEST(BlockHalo, SouthNorthBetweenRows) {
  par::run(4, [](par::Comm& comm) {
    const int nx = 8, ny = 16;
    BlockHalo halo(comm, nx, ny, 1, 4, false);
    std::vector<double> field(
        static_cast<size_t>((halo.nx_local() + 2) * (halo.ny_local() + 2)), 0.0);
    for (int j = 0; j < halo.ny_local(); ++j)
      for (int i = 0; i < halo.nx_local(); ++i)
        field[halo.halo_index(i, j)] = halo.y0() + j;
    halo.exchange(field);
    for (int i = 0; i < halo.nx_local(); ++i) {
      if (halo.y0() > 0)
        EXPECT_EQ(field[halo.halo_index(i, -1)], halo.y0() - 1);
      else  // closed south boundary: zero-gradient
        EXPECT_EQ(field[halo.halo_index(i, -1)], 0.0);
      if (halo.y0() + halo.ny_local() < ny)
        EXPECT_EQ(field[halo.halo_index(i, halo.ny_local())],
                  halo.y0() + halo.ny_local());
      else  // no fold requested: zero-gradient
        EXPECT_EQ(field[halo.halo_index(i, halo.ny_local())], ny - 1);
    }
  });
}

TEST(BlockHalo, NorthFoldMirrorsTopRow) {
  par::run(4, [](par::Comm& comm) {
    const int nx = 16, ny = 8;
    BlockHalo halo(comm, nx, ny, 2, 2, true);
    std::vector<double> field(
        static_cast<size_t>((halo.nx_local() + 2) * (halo.ny_local() + 2)), 0.0);
    // Value = 100*global_j + global_i, unique per point.
    for (int j = 0; j < halo.ny_local(); ++j)
      for (int i = 0; i < halo.nx_local(); ++i)
        field[halo.halo_index(i, j)] = 100.0 * (halo.y0() + j) + (halo.x0() + i);
    halo.exchange(field);
    if (halo.y0() + halo.ny_local() == ny) {  // top-row block
      for (int i = 0; i < halo.nx_local(); ++i) {
        const int g = halo.x0() + i;
        const int mirror = nx - 1 - g;
        EXPECT_EQ(field[halo.halo_index(i, halo.ny_local())],
                  100.0 * (ny - 1) + mirror)
            << "ghost at global column " << g;
      }
    }
  });
}

TEST(BlockHalo, SingleRankDegenerateCase) {
  par::run(1, [](par::Comm& comm) {
    const int nx = 8, ny = 6;
    BlockHalo halo(comm, nx, ny, 1, 1, true);
    std::vector<double> field(static_cast<size_t>((nx + 2) * (ny + 2)), 0.0);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        field[halo.halo_index(i, j)] = 10.0 * j + i;
    halo.exchange(field);
    // Periodic x with itself.
    EXPECT_EQ(field[halo.halo_index(-1, 2)], 10.0 * 2 + (nx - 1));
    EXPECT_EQ(field[halo.halo_index(nx, 2)], 10.0 * 2 + 0);
    // Fold with itself: ghost above (i, ny-1) is (nx-1-i, ny-1).
    EXPECT_EQ(field[halo.halo_index(0, ny)], 10.0 * (ny - 1) + (nx - 1));
  });
}

TEST(GraphHalo, ExchangesNeighborValuesOnIcosahedron) {
  par::run(4, [](par::Comm& comm) {
    IcosahedralGrid mesh(4);
    const auto ncells = static_cast<std::int64_t>(mesh.num_cells());
    const Range1D mine = partition_1d(ncells, comm.size(), comm.rank());
    auto owner = [&](std::int64_t id) {
      return owner_1d(ncells, comm.size(), id);
    };
    std::vector<std::int64_t> owned;
    for (std::int64_t c = mine.begin; c < mine.end; ++c) owned.push_back(c);
    std::set<std::int64_t> ghost_set;
    for (std::int64_t c = mine.begin; c < mine.end; ++c) {
      for (auto nb : mesh.cell_neighbors(static_cast<size_t>(c))) {
        if (nb < mine.begin || nb >= mine.end)
          ghost_set.insert(static_cast<std::int64_t>(nb));
      }
    }
    std::vector<std::int64_t> ghosts(ghost_set.begin(), ghost_set.end());
    GraphHalo halo(comm, owned, ghosts, owner);

    // Field value = 3 * global id + 1.
    std::vector<double> owned_values(owned.size());
    for (size_t k = 0; k < owned.size(); ++k)
      owned_values[k] = 3.0 * static_cast<double>(owned[k]) + 1.0;
    std::vector<double> ghost_values(ghosts.size(), -1.0);
    halo.exchange(owned_values, ghost_values);
    for (size_t k = 0; k < ghosts.size(); ++k)
      EXPECT_EQ(ghost_values[k], 3.0 * static_cast<double>(ghosts[k]) + 1.0);
  });
}

TEST(SupernodeBlockMap, TilesBlockGridIntoNearSquareSupernodes) {
  // 8x8 blocks, supernodes of 4 -> 2x2 tiles, 16 supernodes.
  const SupernodeBlockMap map(8, 8, 4);
  EXPECT_EQ(map.tile_w(), 2);
  EXPECT_EQ(map.tile_h(), 2);
  EXPECT_EQ(map.num_supernodes(), 16);
  EXPECT_EQ(map.supernode_of_block(0, 0), map.supernode_of_block(1, 1));
  EXPECT_NE(map.supernode_of_block(1, 1), map.supernode_of_block(2, 1));
  // Rank mapping matches BlockPartition2D's row-major rank_of_block.
  const BlockPartition2D part(64, 64, 8, 8);
  for (int by = 0; by < 8; ++by)
    for (int bx = 0; bx < 8; ++bx)
      EXPECT_EQ(map.supernode_of_rank(part.rank_of_block(bx, by)),
                map.supernode_of_block(bx, by));
  // Every supernode holds at most supernode_size blocks.
  std::vector<int> population(static_cast<std::size_t>(map.num_supernodes()));
  for (int rank = 0; rank < 64; ++rank)
    ++population[static_cast<std::size_t>(map.supernode_of_rank(rank))];
  for (const int p : population) EXPECT_LE(p, 4);
}

TEST(SupernodeBlockMap, SkinnyGridsReclaimTileSlack) {
  // px=2 clamps the near-square tile width; the height reclaims the slack so
  // each supernode still holds 8 blocks.
  const SupernodeBlockMap map(2, 16, 8);
  EXPECT_EQ(map.tile_w(), 2);
  EXPECT_EQ(map.tile_h(), 4);
  EXPECT_EQ(map.num_supernodes(), 4);
  const SupernodeBlockMap column(1, 16, 8);
  EXPECT_EQ(column.tile_w(), 1);
  EXPECT_EQ(column.tile_h(), 8);
}

TEST(SupernodeBlockMap, TopologyMapAndNeighborFraction) {
  const SupernodeBlockMap map(4, 4, 4);
  const std::vector<int> ids = map.topology_map();
  ASSERT_EQ(ids.size(), 16u);
  for (int rank = 0; rank < 16; ++rank)
    EXPECT_EQ(ids[static_cast<std::size_t>(rank)], map.supernode_of_rank(rank));
  // 2x2 tiles on a 4x4 block grid: 24 adjacencies, 16 intra (2 per tile per
  // axis times 4 tiles times 2 axes).
  EXPECT_NEAR(map.intra_neighbor_fraction(), 16.0 / 24.0, 1e-12);
  // A supernode covering the whole grid keeps everything local; singleton
  // supernodes keep nothing local.
  EXPECT_DOUBLE_EQ(SupernodeBlockMap(4, 4, 16).intra_neighbor_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(SupernodeBlockMap(4, 4, 1).intra_neighbor_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(SupernodeBlockMap(1, 1, 4).intra_neighbor_fraction(), 1.0);
}

TEST(GraphHalo, EmptyGhostListIsFine) {
  par::run(2, [](par::Comm& comm) {
    std::vector<std::int64_t> owned = comm.rank() == 0
                                          ? std::vector<std::int64_t>{0, 1}
                                          : std::vector<std::int64_t>{2, 3};
    GraphHalo halo(comm, owned, {}, [](std::int64_t id) {
      return id < 2 ? 0 : 1;
    });
    std::vector<double> vals = {1.0, 2.0};
    std::vector<double> ghosts;
    EXPECT_NO_THROW(halo.exchange(vals, ghosts));
  });
}

}  // namespace
