// Deterministic fault injection for the ap3::par transport (resilience leg
// of the year-scale-run story).
//
// The paper's multi-year simulations on 41.9M cores only complete because
// the runtime survives transient faults; this subsystem lets the repository
// *test* that survival. A FaultConfig describes per-message fault rates
// (drop, duplication, delay/reorder, sender stall); every decision is a pure
// function of (seed, comm, tag, src, dst, sequence), so a run with a given
// seed injects exactly the same faults every time and failure scenarios are
// replayable bit-for-bit.
//
// The subsystem owns *policy* only. The mechanism — message sequencing,
// receiver-side reassembly, timeout/backoff retransmission — lives at the
// mailbox boundary in src/par/comm.cpp, which consults this layer on every
// post. Injections and recoveries are surfaced through obs counters
// ("fault:injected:*", "fault:retried", "fault:recovered:*") and an
// InjectionLog whose sorted view is identical across replays.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace ap3::fault {

/// What the injector decided to do with one message.
enum class Action : std::uint8_t {
  kDeliver = 0,   ///< pass through untouched
  kDrop,          ///< suppress first transmission (recovered by retransmit)
  kDuplicate,     ///< deliver twice (receiver discards the copy)
  kDelay,         ///< hold back `delay_deliveries` deliveries (reorders)
};

const char* action_name(Action action);

/// Per-message fault schedule. Rates are probabilities in [0, 1] and are
/// consumed in order drop → duplicate → delay from one uniform draw, so
/// `drop_rate + duplicate_rate + delay_rate` must be <= 1.
struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  /// A delayed message is held until this many later messages have been
  /// delivered to the same destination (or a receiver timeout flushes it).
  int delay_deliveries = 2;
  /// Independent draw: probability that the sending rank stalls before the
  /// message leaves (models a slow rank, not a lost message).
  double stall_rate = 0.0;
  int stall_microseconds = 200;
  /// Receiver-side first retry timeout; doubles on every empty wakeup
  /// (exponential backoff) up to `max_timeout_microseconds`.
  int retry_timeout_microseconds = 500;
  int max_timeout_microseconds = 20000;
  /// Optional tag window for targeted injection: messages whose tag falls
  /// outside [tag_min, tag_max] pass through unperturbed (no drop, duplicate,
  /// delay, or stall draw). The default window covers every tag — collectives
  /// use negative tags, so narrowing to non-negative values targets
  /// point-to-point traffic classes (e.g. the coupler's rearrange tags) while
  /// the rest of the transport runs clean.
  int tag_min = std::numeric_limits<int>::min();
  int tag_max = std::numeric_limits<int>::max();

  bool any_faults() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           stall_rate > 0.0;
  }
};

/// Identity of one message at the injection point. `seq` is the message's
/// index in its (comm, src, dst, tag) stream, counted at the sender — the
/// coordinate that makes decisions replayable.
struct FaultPoint {
  int comm_id = 0;
  int tag = 0;
  int src = 0;  ///< sender's world rank
  int dst = 0;  ///< destination's world rank
  std::uint64_t seq = 0;
};

struct Decision {
  Action action = Action::kDeliver;
  int delay_deliveries = 0;   ///< only for kDelay
  int stall_microseconds = 0; ///< independent of `action`
  bool faulted() const {
    return action != Action::kDeliver || stall_microseconds > 0;
  }
};

/// Pure decision function: same (config.seed, point) ⇒ same Decision, on any
/// rank, in any run. This is the determinism contract tests rely on.
Decision decide(const FaultConfig& config, const FaultPoint& point);

/// One injected fault, as recorded by the transport.
struct InjectionRecord {
  FaultPoint point;
  Action action = Action::kDeliver;
  int stall_microseconds = 0;
};

bool operator==(const FaultPoint& a, const FaultPoint& b);
bool operator==(const InjectionRecord& a, const InjectionRecord& b);

/// Injection/recovery totals for one World. "Recovered" means the transport
/// absorbed the fault transparently: a dropped message was retransmitted and
/// consumed, a duplicate was suppressed, a delayed message was released.
/// Stalls need no recovery (the message still arrives, just late).
struct FaultStats {
  std::uint64_t injected_drop = 0;
  std::uint64_t injected_duplicate = 0;
  std::uint64_t injected_delay = 0;
  std::uint64_t injected_stall = 0;
  std::uint64_t retried = 0;   ///< dropped messages retransmitted
  std::uint64_t timeouts = 0;  ///< receiver timeout wakeups (timing-dependent)
  std::uint64_t recovered_drop = 0;
  std::uint64_t recovered_duplicate = 0;
  std::uint64_t recovered_delay = 0;

  std::uint64_t injected() const {
    return injected_drop + injected_duplicate + injected_delay + injected_stall;
  }
  /// Faults that require recovery (everything but stalls).
  std::uint64_t recoverable() const {
    return injected_drop + injected_duplicate + injected_delay;
  }
  std::uint64_t recovered() const {
    return recovered_drop + recovered_duplicate + recovered_delay;
  }
};

/// Thread-safe record of every injected fault in one World. Senders append
/// concurrently; `sorted()` orders by (comm, src, dst, tag, seq) so two runs
/// with the same seed produce byte-identical views regardless of thread
/// interleaving.
class InjectionLog {
 public:
  void record(const InjectionRecord& record);
  std::size_t size() const;
  std::vector<InjectionRecord> sorted() const;
  /// Count of records with the given action.
  std::size_t count(Action action) const;
  /// Count of records that carried a sender stall (orthogonal to action).
  std::size_t count_stalls() const;

 private:
  mutable std::mutex mutex_;
  std::vector<InjectionRecord> records_;
};

/// Human-readable one-liner for debugging/test failure messages.
std::string to_string(const InjectionRecord& record);

}  // namespace ap3::fault
