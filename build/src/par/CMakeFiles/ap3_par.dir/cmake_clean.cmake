file(REMOVE_RECURSE
  "CMakeFiles/ap3_par.dir/comm.cpp.o"
  "CMakeFiles/ap3_par.dir/comm.cpp.o.d"
  "libap3_par.a"
  "libap3_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
