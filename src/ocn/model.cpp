#include "ocn/model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/hash.hpp"
#include "obs/obs.hpp"
#include "precision/group_scaled.hpp"

namespace ap3::ocn {

using constants::kCpSeawater;
using constants::kDegToRad;
using constants::kEarthRadiusM;
using constants::kGravity;
using constants::kOmega;
using constants::kPi;
using constants::kRhoSeawater;

double OcnConfig::wave_speed() const { return std::sqrt(kGravity * 5500.0); }

double OcnConfig::barotropic_dt_seconds() const {
  // CFL against the smallest zonal spacing (highest resolved latitude).
  grid::TripolarGrid g(grid);
  double min_dx = 1e30;
  for (int j = 0; j < g.ny(); ++j) {
    const double coslat = std::max(0.05, std::cos(g.lat_deg(j) * kDegToRad));
    min_dx = std::min(min_dx,
                      kEarthRadiusM * coslat * 2.0 * kPi / g.nx());
  }
  return cfl_fraction * min_dx / wave_speed();
}

OcnModel::OcnModel(const par::Comm& comm, const OcnConfig& config,
                   std::shared_ptr<const grid::TripolarGrid> grid)
    : OcnModel(comm, config,
               grid::BlockPartition2D::balanced(config.grid.nx, config.grid.ny,
                                                comm.size())
                   .cuts(),
               std::move(grid)) {}

OcnModel::OcnModel(const par::Comm& comm, const OcnConfig& config,
                   const grid::BlockCuts& cuts,
                   std::shared_ptr<const grid::TripolarGrid> grid)
    : comm_(comm),
      config_(config),
      grid_(grid ? std::move(grid)
                 : std::make_shared<const grid::TripolarGrid>(config.grid)),
      partition_(config.grid.nx, config.grid.ny, cuts) {
  AP3_REQUIRE_MSG(grid_->config() == config_.grid,
                  "OcnModel: shared grid was built for a different "
                  "TripolarConfig than this model's config.grid");
  halo_ = std::make_unique<grid::BlockHalo>(comm, config_.grid.nx,
                                            config_.grid.ny, cuts,
                                            /*north_fold=*/true);
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  const std::size_t slots =
      static_cast<std::size_t>(nxl + 2) * static_cast<std::size_t>(nyl + 2);

  // Geometry.
  dx_m_.resize(static_cast<std::size_t>(nyl));
  dy_m_.resize(static_cast<std::size_t>(nyl));
  coriolis_.resize(static_cast<std::size_t>(nyl));
  area_m2_.resize(static_cast<std::size_t>(nyl));
  const double dlat =
      (config_.grid.lat_north - config_.grid.lat_south) * kDegToRad /
      config_.grid.ny;
  for (int j = 0; j < nyl; ++j) {
    const double lat = grid_->lat_deg(halo_->y0() + j) * kDegToRad;
    const double coslat = std::max(0.05, std::cos(lat));
    dx_m_[static_cast<std::size_t>(j)] =
        kEarthRadiusM * coslat * 2.0 * kPi / config_.grid.nx;
    dy_m_[static_cast<std::size_t>(j)] = kEarthRadiusM * dlat;
    coriolis_[static_cast<std::size_t>(j)] = 2.0 * kOmega * std::sin(lat);
    area_m2_[static_cast<std::size_t>(j)] =
        dx_m_[static_cast<std::size_t>(j)] * dy_m_[static_cast<std::size_t>(j)];
  }

  // Vertical spacing.
  const int nz = config_.grid.nz;
  dz_layer_.resize(static_cast<std::size_t>(nz));
  dz_center_.resize(static_cast<std::size_t>(nz > 1 ? nz - 1 : 0));
  double prev = 0.0;
  for (int k = 0; k < nz; ++k) {
    const double z = grid_->level_depth(k);
    dz_layer_[static_cast<std::size_t>(k)] = z - prev;
    prev = z;
  }
  for (int k = 0; k + 1 < nz; ++k)
    dz_center_[static_cast<std::size_t>(k)] =
        0.5 * (dz_layer_[static_cast<std::size_t>(k)] +
               dz_layer_[static_cast<std::size_t>(k + 1)]);

  // Land mask, active columns, ocean gids.
  kmt_local_.resize(static_cast<std::size_t>(nxl * nyl));
  for (int j = 0; j < nyl; ++j) {
    for (int i = 0; i < nxl; ++i) {
      const int kmt = grid_->kmt(halo_->x0() + i, halo_->y0() + j);
      kmt_local_[static_cast<std::size_t>(j * nxl + i)] = kmt;
      if (kmt > 0) {
        active_columns_.push_back({i, j});
        ocean_gids_.push_back(
            static_cast<std::int64_t>(halo_->y0() + j) * config_.grid.nx +
            (halo_->x0() + i));
      }
    }
  }
  gsmap_ = mct::GlobalSegMap::build(comm, ocean_gids_);

  // Prognostic state.
  eta_.assign(slots, 0.0);
  ubar_.assign(slots, 0.0);
  vbar_.assign(slots, 0.0);
  u_.assign(static_cast<std::size_t>(nz), std::vector<double>(slots, 0.0));
  v_.assign(static_cast<std::size_t>(nz), std::vector<double>(slots, 0.0));
  temp_.assign(static_cast<std::size_t>(nz), std::vector<double>(slots, 2.0));
  salt_.assign(static_cast<std::size_t>(nz), std::vector<double>(slots, 34.7));
  for (int j = 0; j < nyl; ++j) {
    const double lat = grid_->lat_deg(halo_->y0() + j) * kDegToRad;
    const double coslat = std::cos(lat);
    for (int i = 0; i < nxl; ++i) {
      const double tsurf = 28.0 * coslat * coslat;
      for (int k = 0; k < nz; ++k) {
        const double z = grid_->level_depth(k);
        temp_[static_cast<std::size_t>(k)][field_index(i, j)] =
            2.0 + tsurf * std::exp(-z / 800.0);
        salt_[static_cast<std::size_t>(k)][field_index(i, j)] =
            34.7 + 0.6 * std::exp(-z / 500.0) * coslat;
      }
    }
  }
  for (int k = 0; k < nz; ++k) {
    exchange_scalar(temp_[static_cast<std::size_t>(k)]);
    exchange_scalar(salt_[static_cast<std::size_t>(k)]);
  }

  taux_.assign(ocean_gids_.size(), 0.0);
  tauy_.assign(ocean_gids_.size(), 0.0);
  qnet_.assign(ocean_gids_.size(), 0.0);
  fresh_.assign(ocean_gids_.size(), 0.0);

  if (config_.stall_seconds_per_point > 0.0) {
    for (const auto& [i, j] : active_columns_) {
      const int gi = halo_->x0() + i;
      const int gj = halo_->y0() + j;
      const bool in_band =
          (config_.stall_i_begin >= 0 && gi >= config_.stall_i_begin) ||
          (config_.stall_j_begin >= 0 && gj >= config_.stall_j_begin);
      if (in_band)
        stall_points_ += kmt_local_[static_cast<std::size_t>(j * nxl + i)];
    }
  }
}

std::vector<std::string> OcnModel::export_fields() {
  return {"sst", "ssh", "us", "vs"};
}
std::vector<std::string> OcnModel::import_fields() {
  return {"taux", "tauy", "qnet", "fresh"};
}

bool OcnModel::is_ocean_local(int i, int j, int k) const {
  return k < kmt_local(i, j);
}

int OcnModel::kmt_local(int i, int j) const {
  if (i < 0 || i >= halo_->nx_local() || j < 0 || j >= halo_->ny_local()) {
    // Halo cells: consult the (globally replicated) grid with wraparound.
    int gi = halo_->x0() + i;
    int gj = halo_->y0() + j;
    gi = (gi % config_.grid.nx + config_.grid.nx) % config_.grid.nx;
    if (gj < 0) gj = 0;  // closed south: mirror the edge row's mask
    if (gj >= config_.grid.ny) {
      // North fold: ghost above the top row mirrors in longitude.
      gj = config_.grid.ny - 1;
      gi = config_.grid.nx - 1 - gi;
    }
    return grid_->kmt(gi, gj);
  }
  return kmt_local_[static_cast<std::size_t>(j * halo_->nx_local() + i)];
}

void OcnModel::exchange_scalar(std::vector<double>& field) const {
  halo_->exchange(field);
}

void OcnModel::exchange_vector(std::vector<double>& u_field,
                               std::vector<double>& v_field) const {
  halo_->exchange(u_field);
  halo_->exchange(v_field);
  // Tripolar fold flips the velocity orientation (the ghost row is the same
  // physical row seen rotated by 180°).
  if (halo_->y0() + halo_->ny_local() == config_.grid.ny) {
    const int jg = halo_->ny_local();
    for (int i = -1; i <= halo_->nx_local(); ++i) {
      u_field[field_index(i, jg)] = -u_field[field_index(i, jg)];
      v_field[field_index(i, jg)] = -v_field[field_index(i, jg)];
    }
  }
}

template <typename Fn>
void OcnModel::for_each_column(Fn&& fn) {
  if (config_.exclude_non_ocean) {
    for (const auto& [i, j] : active_columns_) {
      ++column_iterations_;
      fn(i, j, kmt_local(i, j));
    }
    return;
  }
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  for (int j = 0; j < nyl; ++j) {
    for (int i = 0; i < nxl; ++i) {
      ++column_iterations_;
      const int kmt = kmt_local(i, j);
      if (kmt == 0) continue;  // wasted iteration the exclusion removes
      fn(i, j, kmt);
    }
  }
}

void OcnModel::barotropic_step(double dt) {
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  exchange_scalar(eta_);
  exchange_vector(ubar_, vbar_);

  // Continuity: finite-volume flux divergence with upwind face thickness.
  std::vector<double> deta(static_cast<std::size_t>(nxl * nyl), 0.0);
  auto face_flux_x = [&](int i, int j) {
    // Flux through the east face of (i, j) toward (i+1, j); positive east.
    if (kmt_local(i, j) == 0 || kmt_local(i + 1, j) == 0) return 0.0;
    const double un = 0.5 * (ubar_[field_index(i, j)] +
                             ubar_[field_index(i + 1, j)]);
    const double h_face = depth_m_ + (un >= 0.0 ? eta_[field_index(i, j)]
                                                : eta_[field_index(i + 1, j)]);
    return un * h_face * dy_m_[static_cast<std::size_t>(j)];
  };
  // Zonal spacing for any local row, halo rows included: resolved through
  // the global row (fold row beyond the top mirrors to the same latitude),
  // so both ranks sharing a face use the identical face length and fluxes
  // cancel pairwise to round-off.
  auto dx_row = [&](int j) {
    int gj = halo_->y0() + j;
    if (gj < 0) gj = 0;
    if (gj >= config_.grid.ny) gj = config_.grid.ny - 1;
    const double coslat =
        std::max(0.05, std::cos(grid_->lat_deg(gj) * kDegToRad));
    return kEarthRadiusM * coslat * 2.0 * kPi / config_.grid.nx;
  };
  auto face_flux_y = [&](int i, int j) {
    // Flux through the north face of (i, j) toward (i, j+1); positive north.
    if (kmt_local(i, j) == 0 || kmt_local(i, j + 1) == 0) return 0.0;
    const double vn = 0.5 * (vbar_[field_index(i, j)] +
                             vbar_[field_index(i, j + 1)]);
    const double h_face = depth_m_ + (vn >= 0.0 ? eta_[field_index(i, j)]
                                                : eta_[field_index(i, j + 1)]);
    // Face length: zonal spacing at the shared latitude edge.
    return vn * h_face * 0.5 * (dx_row(j) + dx_row(j + 1));
  };
  for (int j = 0; j < nyl; ++j) {
    const bool south_closed = halo_->y0() + j == 0;
    for (int i = 0; i < nxl; ++i) {
      if (kmt_local(i, j) == 0) continue;
      const double fe = face_flux_x(i, j);
      const double fw = face_flux_x(i - 1, j);
      const double fn = face_flux_y(i, j);
      const double fs = south_closed ? 0.0 : face_flux_y(i, j - 1);
      deta[static_cast<std::size_t>(j * nxl + i)] =
          -(fe - fw + fn - fs) / area_m2_[static_cast<std::size_t>(j)];
    }
  }
  for (int j = 0; j < nyl; ++j)
    for (int i = 0; i < nxl; ++i)
      eta_[field_index(i, j)] +=
          dt * deta[static_cast<std::size_t>(j * nxl + i)];

  // Momentum with the *new* eta (forward–backward).
  exchange_scalar(eta_);
  for (int j = 0; j < nyl; ++j) {
    const double dx = dx_m_[static_cast<std::size_t>(j)];
    const double dy = dy_m_[static_cast<std::size_t>(j)];
    const double f = coriolis_[static_cast<std::size_t>(j)];
    for (int i = 0; i < nxl; ++i) {
      if (kmt_local(i, j) == 0) continue;
      const std::size_t c = field_index(i, j);
      const double eta_c = eta_[c];
      const double eta_e =
          kmt_local(i + 1, j) > 0 ? eta_[field_index(i + 1, j)] : eta_c;
      const double eta_w =
          kmt_local(i - 1, j) > 0 ? eta_[field_index(i - 1, j)] : eta_c;
      const double eta_n =
          kmt_local(i, j + 1) > 0 ? eta_[field_index(i, j + 1)] : eta_c;
      const double eta_s = (halo_->y0() + j > 0 && kmt_local(i, j - 1) > 0)
                               ? eta_[field_index(i, j - 1)]
                               : eta_c;
      const std::size_t col =
          static_cast<std::size_t>(std::lower_bound(ocean_gids_.begin(),
                                                    ocean_gids_.end(),
                                                    static_cast<std::int64_t>(
                                                        halo_->y0() + j) *
                                                            config_.grid.nx +
                                                        halo_->x0() + i) -
                                   ocean_gids_.begin());
      double du = dt * (-kGravity * (eta_e - eta_w) / (2.0 * dx) -
                        config_.drag_per_second * ubar_[c] +
                        taux_[col] / (kRhoSeawater * depth_m_));
      double dv = dt * (-kGravity * (eta_n - eta_s) / (2.0 * dy) -
                        config_.drag_per_second * vbar_[c] +
                        tauy_[col] / (kRhoSeawater * depth_m_));
      // Coriolis as an exact rotation (unconditionally stable).
      const double u_star = ubar_[c] + du;
      const double v_star = vbar_[c] + dv;
      const double angle = f * dt;
      const double cosa = std::cos(angle), sina = std::sin(angle);
      ubar_[c] = cosa * u_star + sina * v_star;
      vbar_[c] = -sina * u_star + cosa * v_star;
    }
  }
}

void OcnModel::baroclinic_step(double dt) {
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  const int nz = config_.grid.nz;

  for_each_column([&](int i, int j, int kmt) {
    const std::size_t c = field_index(i, j);
    const double f = coriolis_[static_cast<std::size_t>(j)];
    const std::size_t col =
        static_cast<std::size_t>(std::lower_bound(ocean_gids_.begin(),
                                                  ocean_gids_.end(),
                                                  static_cast<std::int64_t>(
                                                      halo_->y0() + j) *
                                                          config_.grid.nx +
                                                      halo_->x0() + i) -
                                 ocean_gids_.begin());
    // Wind stress accelerates the top layer; bottom drag the lowest.
    u_[0][c] += dt * taux_[col] /
                (kRhoSeawater * dz_layer_[0]);
    v_[0][c] += dt * tauy_[col] / (kRhoSeawater * dz_layer_[0]);
    const auto kb = static_cast<std::size_t>(kmt - 1);
    u_[kb][c] -= dt * 10.0 * config_.drag_per_second * u_[kb][c];
    v_[kb][c] -= dt * 10.0 * config_.drag_per_second * v_[kb][c];

    // Coriolis rotation per level, then barotropic-mean replacement: the
    // classic split correction keeping the column mean consistent with the
    // barotropic solver.
    const double angle = f * dt;
    const double cosa = std::cos(angle), sina = std::sin(angle);
    double mean_u = 0.0, mean_v = 0.0, depth = 0.0;
    for (int k = 0; k < kmt; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      const double us = u_[ks][c], vs = v_[ks][c];
      u_[ks][c] = cosa * us + sina * vs;
      v_[ks][c] = -sina * us + cosa * vs;
      mean_u += u_[ks][c] * dz_layer_[ks];
      mean_v += v_[ks][c] * dz_layer_[ks];
      depth += dz_layer_[ks];
    }
    mean_u /= depth;
    mean_v /= depth;
    for (int k = 0; k < kmt; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      u_[ks][c] += ubar_[c] - mean_u;
      v_[ks][c] += vbar_[c] - mean_v;
    }
    (void)nz;
  });
  (void)nxl;
  (void)nyl;
}

void OcnModel::vertical_mixing(double dt) {
  const int nz = config_.grid.nz;
  std::vector<double> kv(static_cast<std::size_t>(nz - 1));
  std::vector<double> t_col(static_cast<std::size_t>(nz)),
      s_col(static_cast<std::size_t>(nz)), u_col(static_cast<std::size_t>(nz)),
      v_col(static_cast<std::size_t>(nz));

  for_each_column([&](int i, int j, int kmt) {
    const std::size_t c = field_index(i, j);
    for (int k = 0; k < nz; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      t_col[ks] = temp_[ks][c];
      s_col[ks] = salt_[ks][c];
      u_col[ks] = u_[ks][c];
      v_col[ks] = v_[ks][c];
    }
    MixingColumn column{t_col, s_col, u_col, v_col, dz_center_, kmt};
    canuto_.diffusivities(column, kv);

    // Explicit vertical diffusion with a per-interface stability cap.
    auto diffuse = [&](std::vector<std::vector<double>>& field) {
      for (int k = 0; k + 1 < kmt; ++k) {
        const auto ks = static_cast<std::size_t>(k);
        const double cap = 0.4 * dz_center_[ks] *
                           std::min(dz_layer_[ks], dz_layer_[ks + 1]) / dt;
        const double kv_eff = std::min(kv[ks], cap);
        const double flux = kv_eff *
                            (field[ks + 1][c] - field[ks][c]) / dz_center_[ks];
        field[ks][c] += dt * flux / dz_layer_[ks];
        field[ks + 1][c] -= dt * flux / dz_layer_[ks + 1];
      }
    };
    diffuse(temp_);
    diffuse(salt_);
    diffuse(u_);
    diffuse(v_);
  });
}

void OcnModel::tracer_step(double dt) {
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  const int nz = config_.grid.nz;

  for (int k = 0; k < nz; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    exchange_scalar(temp_[ks]);
    exchange_scalar(salt_[ks]);
    exchange_vector(u_[ks], v_[ks]);

    // Shared scalar update for one cell — the reference bits. The packed
    // launch below uses it for boundary/land tiles and reproduces it
    // lane-for-lane on interior tiles.
    auto update_cell = [&](const std::vector<double>& field,
                           std::vector<double>& next, int i, int j, double dx,
                           double dy, bool south_open) {
      const std::size_t c = field_index(i, j);
      const double phi = field[c];
      auto neighbor = [&](int di, int dj) {
        if (dj < 0 && !south_open) return phi;
        const int kmt_nb = kmt_local(i + di, j + dj);
        return kmt_nb > k ? field[field_index(i + di, j + dj)] : phi;
      };
      const double phi_e = neighbor(1, 0), phi_w = neighbor(-1, 0);
      const double phi_n = neighbor(0, 1), phi_s = neighbor(0, -1);
      const double uc = u_[ks][c], vc = v_[ks][c];
      // First-order upwind advection (advective form).
      const double adv_x =
          uc >= 0.0 ? uc * (phi - phi_w) / dx : uc * (phi_e - phi) / dx;
      const double adv_y =
          vc >= 0.0 ? vc * (phi - phi_s) / dy : vc * (phi_n - phi) / dy;
      const double lap =
          (phi_e + phi_w - 2.0 * phi) / (dx * dx) +
          (phi_n + phi_s - 2.0 * phi) / (dy * dy);
      next[static_cast<std::size_t>(j * nxl + i)] =
          phi + dt * (-adv_x - adv_y + config_.horizontal_diffusion * lap);
    };

    auto advect_diffuse = [&](std::vector<double>& field) {
      std::vector<double> next(static_cast<std::size_t>(nxl * nyl));
      if (config_.pack_width == 0) {
        pp::parallel_for(
            pp::RangePolicy(0, static_cast<std::size_t>(nyl))
                .on(config_.exec_space)
                .named("ocn:advect_diffuse"),
            [&](std::size_t uj) {
              const int j = static_cast<int>(uj);
              const double dx = dx_m_[uj];
              const double dy = dy_m_[uj];
              const bool south_open = halo_->y0() + j > 0;
              for (int i = 0; i < nxl; ++i) {
                if (!is_ocean_local(i, j, k)) continue;
                update_cell(field, next, i, j, dx, dy, south_open);
              }
            });
      } else {
        // Packed sweep: lanes are consecutive i of one row. A tile whose
        // lanes are all interior ocean (self + 4 neighbors wet at this
        // level, southern boundary open) takes the vector path — five
        // contiguous stencil loads off the halo layout — with every lane
        // evaluating the exact scalar expression tree; any other tile
        // peels to update_cell per lane. Either way the bits match the
        // scalar sweep for every pack width.
        pp::with_pack_width(config_.pack_width, [&]<int N>() {
          const std::size_t stride = static_cast<std::size_t>(nxl + 2);
          const double hd = config_.horizontal_diffusion;
          const double* fld = field.data();
          const double* uu = u_[ks].data();
          const double* vv = v_[ks].data();
          double* nxt = next.data();
          pp::parallel_for(
              pp::PackedRangePolicy(0, static_cast<std::size_t>(nxl * nyl))
                  .widthed(static_cast<std::size_t>(N))
                  .per_row(static_cast<std::size_t>(nxl))
                  .on(config_.exec_space)
                  .named("ocn:advect_diffuse:packed"),
              [&](const pp::PackTile& t) {
                const int j = static_cast<int>(t.offset /
                                               static_cast<std::size_t>(nxl));
                const int i0 = static_cast<int>(t.offset %
                                                static_cast<std::size_t>(nxl));
                const double dx = dx_m_[static_cast<std::size_t>(j)];
                const double dy = dy_m_[static_cast<std::size_t>(j)];
                const bool south_open = halo_->y0() + j > 0;
                bool vec = south_open;
                for (std::size_t l = 0; vec && l < t.lanes; ++l) {
                  const int i = i0 + static_cast<int>(l);
                  vec = kmt_local(i, j) > k && kmt_local(i - 1, j) > k &&
                        kmt_local(i + 1, j) > k && kmt_local(i, j - 1) > k &&
                        kmt_local(i, j + 1) > k;
                }
                if (vec) {
                  using P = pp::Pack<double, N>;
                  const std::size_t c0 = field_index(i0, j);
                  const P phi = pp::pack_load<double, N>(fld + c0, t.lanes);
                  const P phi_e =
                      pp::pack_load<double, N>(fld + c0 + 1, t.lanes);
                  const P phi_w =
                      pp::pack_load<double, N>(fld + c0 - 1, t.lanes);
                  const P phi_n =
                      pp::pack_load<double, N>(fld + c0 + stride, t.lanes);
                  const P phi_s =
                      pp::pack_load<double, N>(fld + c0 - stride, t.lanes);
                  const P uc = pp::pack_load<double, N>(uu + c0, t.lanes);
                  const P vc = pp::pack_load<double, N>(vv + c0, t.lanes);
                  const P adv_x =
                      pp::select(pp::ge_zero(uc), uc * (phi - phi_w) / dx,
                                 uc * (phi_e - phi) / dx);
                  const P adv_y =
                      pp::select(pp::ge_zero(vc), vc * (phi - phi_s) / dy,
                                 vc * (phi_n - phi) / dy);
                  const P lap = (phi_e + phi_w - 2.0 * phi) / (dx * dx) +
                                (phi_n + phi_s - 2.0 * phi) / (dy * dy);
                  const P out = phi + dt * (-adv_x - adv_y + hd * lap);
                  pp::pack_store(nxt + t.offset, out, t.lanes);
                } else {
                  for (std::size_t l = 0; l < t.lanes; ++l) {
                    const int i = i0 + static_cast<int>(l);
                    if (!is_ocean_local(i, j, k)) continue;
                    update_cell(field, next, i, j, dx, dy, south_open);
                  }
                }
              });
        });
      }
      for (int j = 0; j < nyl; ++j)
        for (int i = 0; i < nxl; ++i)
          if (is_ocean_local(i, j, k))
            field[field_index(i, j)] =
                next[static_cast<std::size_t>(j * nxl + i)];
    };
    advect_diffuse(temp_[ks]);
    advect_diffuse(salt_[ks]);
  }
}

void OcnModel::apply_surface_forcing(double dt) {
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    temp_[0][c] += dt * qnet_[col] / (kRhoSeawater * kCpSeawater * dz_layer_[0]);
    // Freshwater flux dilutes surface salinity.
    salt_[0][c] -= dt * fresh_[col] / constants::kRhoWater * salt_[0][c] /
                   dz_layer_[0];
    ++col;
  }
}

void OcnModel::apply_mixed_precision() {
  if (!config_.mixed_precision) return;
  constexpr std::size_t kGroup = 64;
  precision::round_through_mixed(eta_, kGroup);
  precision::round_through_mixed(ubar_, kGroup);
  precision::round_through_mixed(vbar_, kGroup);
  for (auto& level : temp_) precision::round_through_mixed(level, kGroup);
  for (auto& level : salt_) precision::round_through_mixed(level, kGroup);
}

void OcnModel::run(double start_seconds, double duration_seconds) {
  (void)start_seconds;
  AP3_REQUIRE_MSG(duration_seconds > 0.0, "non-positive coupling window");
  // Subdivide the window into equal baroclinic steps no longer than the CFL
  // step (the coupler aligns windows to the atmosphere; the ocean adapts).
  const double dt_max = config_.baroclinic_dt_seconds();
  const auto nsteps = static_cast<long long>(
      std::ceil(duration_seconds / dt_max - 1e-9));
  const double dt_clinic = duration_seconds / static_cast<double>(nsteps);
  const double dt_baro = dt_clinic / config_.barotropic_substeps;
  for (long long s = 0; s < nsteps; ++s) {
    for (int b = 0; b < config_.barotropic_substeps; ++b)
      barotropic_step(dt_baro);
    baroclinic_step(dt_clinic);
    tracer_step(config_.tracer_dt_seconds());
    vertical_mixing(dt_clinic);
    apply_surface_forcing(dt_clinic);
    apply_mixed_precision();
    if (stall_points_ > 0) {
      const double stall_seconds =
          config_.stall_seconds_per_point * static_cast<double>(stall_points_);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(stall_seconds));
      // Halo waits synchronize fast ranks to the straggler, so wall-clock
      // spans alone under-report the imbalance; export the busy time so the
      // load balancer sees who actually pays for it.
      obs::counter_add(busy_counter_key(), stall_seconds);
    }
    ++steps_;
  }
}

std::vector<std::string> OcnModel::migration_fields(int nz) {
  std::vector<std::string> fields = {"eta", "ubar", "vbar"};
  for (const char* base : {"u", "v", "temp", "salt"})
    for (int k = 0; k < nz; ++k)
      fields.push_back(std::string(base) + std::to_string(k));
  for (const char* f : {"taux", "tauy", "qnet", "fresh"})
    fields.emplace_back(f);
  return fields;
}

void OcnModel::add_measured_cell_weights(std::span<double> weight) const {
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    weight[static_cast<std::size_t>(ocean_gids_[col])] +=
        static_cast<double>(kmt_local(i, j));
    ++col;
  }
}

double OcnModel::migration_bytes_per_weight_unit() const {
  // One weight unit is one wet level: 4 level fields plus the 7 per-column
  // 2-D fields amortized over the column's levels.
  return 8.0 * (4.0 + 7.0 / static_cast<double>(std::max(1, config_.grid.nz)));
}

void OcnModel::export_migration_fields(mct::AttrVect& av) const {
  AP3_REQUIRE(av.num_points() == ocean_gids_.size());
  const int nz = config_.grid.nz;
  auto eta = av.field("eta");
  auto ubar = av.field("ubar");
  auto vbar = av.field("vbar");
  auto taux = av.field("taux");
  auto tauy = av.field("tauy");
  auto qnet = av.field("qnet");
  auto fresh = av.field("fresh");
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    eta[col] = eta_[c];
    ubar[col] = ubar_[c];
    vbar[col] = vbar_[c];
    taux[col] = taux_[col];
    tauy[col] = tauy_[col];
    qnet[col] = qnet_[col];
    fresh[col] = fresh_[col];
    ++col;
  }
  for (int k = 0; k < nz; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    auto uk = av.field("u" + std::to_string(k));
    auto vk = av.field("v" + std::to_string(k));
    auto tk = av.field("temp" + std::to_string(k));
    auto sk = av.field("salt" + std::to_string(k));
    col = 0;
    for (const auto& [i, j] : active_columns_) {
      const std::size_t c = field_index(i, j);
      uk[col] = u_[ks][c];
      vk[col] = v_[ks][c];
      tk[col] = temp_[ks][c];
      sk[col] = salt_[ks][c];
      ++col;
    }
  }
}

void OcnModel::import_migration_fields(const mct::AttrVect& av) {
  AP3_REQUIRE(av.num_points() == ocean_gids_.size());
  const int nz = config_.grid.nz;
  const auto eta = av.field("eta");
  const auto ubar = av.field("ubar");
  const auto vbar = av.field("vbar");
  const auto taux = av.field("taux");
  const auto tauy = av.field("tauy");
  const auto qnet = av.field("qnet");
  const auto fresh = av.field("fresh");
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    eta_[c] = eta[col];
    ubar_[c] = ubar[col];
    vbar_[c] = vbar[col];
    taux_[col] = taux[col];
    tauy_[col] = tauy[col];
    qnet_[col] = qnet[col];
    fresh_[col] = fresh[col];
    ++col;
  }
  for (int k = 0; k < nz; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const auto uk = av.field("u" + std::to_string(k));
    const auto vk = av.field("v" + std::to_string(k));
    const auto tk = av.field("temp" + std::to_string(k));
    const auto sk = av.field("salt" + std::to_string(k));
    col = 0;
    for (const auto& [i, j] : active_columns_) {
      const std::size_t c = field_index(i, j);
      u_[ks][c] = uk[col];
      v_[ks][c] = vk[col];
      temp_[ks][c] = tk[col];
      salt_[ks][c] = sk[col];
      ++col;
    }
  }
}

std::uint64_t OcnModel::column_state_hash() const {
  const int nz = config_.grid.nz;
  std::uint64_t sum = 0;
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    std::uint64_t h = kFnvBasis;
    h = fnv1a_value(h, ocean_gids_[col]);
    h = fnv1a_value(h, eta_[c]);
    h = fnv1a_value(h, ubar_[c]);
    h = fnv1a_value(h, vbar_[c]);
    for (int k = 0; k < nz; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      h = fnv1a_value(h, u_[ks][c]);
      h = fnv1a_value(h, v_[ks][c]);
      h = fnv1a_value(h, temp_[ks][c]);
      h = fnv1a_value(h, salt_[ks][c]);
    }
    h = fnv1a_value(h, taux_[col]);
    h = fnv1a_value(h, tauy_[col]);
    h = fnv1a_value(h, qnet_[col]);
    h = fnv1a_value(h, fresh_[col]);
    sum += h;  // wrapping: rank- and order-independent combine
    ++col;
  }
  return sum;
}

void OcnModel::export_state(mct::AttrVect& o2x) const {
  AP3_REQUIRE(o2x.num_points() == ocean_gids_.size());
  auto sst = o2x.field("sst");
  auto ssh = o2x.field("ssh");
  auto us = o2x.field("us");
  auto vs = o2x.field("vs");
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    sst[col] = temp_[0][c] + constants::kT0;  // export in Kelvin
    ssh[col] = eta_[c];
    us[col] = u_[0][c];
    vs[col] = v_[0][c];
    ++col;
  }
}

void OcnModel::import_state(const mct::AttrVect& x2o) {
  AP3_REQUIRE(x2o.num_points() == ocean_gids_.size());
  const auto taux = x2o.field("taux");
  const auto tauy = x2o.field("tauy");
  const auto qnet = x2o.field("qnet");
  const auto fresh = x2o.field("fresh");
  std::copy(taux.begin(), taux.end(), taux_.begin());
  std::copy(tauy.begin(), tauy.end(), tauy_.begin());
  std::copy(qnet.begin(), qnet.end(), qnet_.begin());
  std::copy(fresh.begin(), fresh.end(), fresh_.begin());
}

namespace {

/// Flatten per-level halo slices level-major for one checkpoint section.
std::vector<double> flatten_levels(const std::vector<std::vector<double>>& f) {
  std::vector<double> out;
  if (!f.empty()) out.reserve(f.size() * f[0].size());
  for (const auto& level : f) out.insert(out.end(), level.begin(), level.end());
  return out;
}

void unflatten_levels(const std::vector<double>& flat,
                      std::vector<std::vector<double>>& f) {
  std::size_t at = 0;
  for (auto& level : f) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(at),
              flat.begin() + static_cast<std::ptrdiff_t>(at + level.size()),
              level.begin());
    at += level.size();
  }
}

std::size_t stack_size(const std::vector<std::vector<double>>& f) {
  return f.empty() ? 0 : f.size() * f[0].size();
}

}  // namespace

std::vector<std::string> OcnModel::checkpoint_section_names() {
  // Keep in checkpoint_sections() order.
  return {"ocn.eta",  "ocn.ubar", "ocn.vbar", "ocn.u",
          "ocn.v",    "ocn.temp", "ocn.salt", "ocn.taux",
          "ocn.tauy", "ocn.qnet", "ocn.fresh", "ocn.steps"};
}

std::vector<io::Section> OcnModel::checkpoint_sections() const {
  std::vector<io::Section> out;
  out.push_back({"ocn.eta", io::local_field(eta_)});
  out.push_back({"ocn.ubar", io::local_field(ubar_)});
  out.push_back({"ocn.vbar", io::local_field(vbar_)});
  out.push_back({"ocn.u", io::local_field(flatten_levels(u_))});
  out.push_back({"ocn.v", io::local_field(flatten_levels(v_))});
  out.push_back({"ocn.temp", io::local_field(flatten_levels(temp_))});
  out.push_back({"ocn.salt", io::local_field(flatten_levels(salt_))});
  out.push_back({"ocn.taux", io::local_field(taux_)});
  out.push_back({"ocn.tauy", io::local_field(tauy_)});
  out.push_back({"ocn.qnet", io::local_field(qnet_)});
  out.push_back({"ocn.fresh", io::local_field(fresh_)});
  out.push_back({"ocn.steps", io::rank_scalar(comm_.rank(),
                                              static_cast<double>(steps_))});
  return out;
}

void OcnModel::restore_sections(const std::vector<io::Section>& sections) {
  eta_ = io::section_values(sections, "ocn.eta", eta_.size());
  ubar_ = io::section_values(sections, "ocn.ubar", ubar_.size());
  vbar_ = io::section_values(sections, "ocn.vbar", vbar_.size());
  unflatten_levels(io::section_values(sections, "ocn.u", stack_size(u_)), u_);
  unflatten_levels(io::section_values(sections, "ocn.v", stack_size(v_)), v_);
  unflatten_levels(io::section_values(sections, "ocn.temp", stack_size(temp_)),
                   temp_);
  unflatten_levels(io::section_values(sections, "ocn.salt", stack_size(salt_)),
                   salt_);
  taux_ = io::section_values(sections, "ocn.taux", taux_.size());
  tauy_ = io::section_values(sections, "ocn.tauy", tauy_.size());
  qnet_ = io::section_values(sections, "ocn.qnet", qnet_.size());
  fresh_ = io::section_values(sections, "ocn.fresh", fresh_.size());
  steps_ =
      static_cast<long long>(io::section_values(sections, "ocn.steps", 1)[0]);
}

double OcnModel::total_volume() const {
  double local = 0.0;
  for (const auto& [i, j] : active_columns_)
    local += eta_[field_index(i, j)] * area_m2_[static_cast<std::size_t>(j)];
  return comm_.allreduce_value(local, par::ReduceOp::kSum);
}

double OcnModel::total_heat_content() const {
  double local = 0.0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    const int kmt = kmt_local(i, j);
    for (int k = 0; k < kmt; ++k)
      local += temp_[static_cast<std::size_t>(k)][c] *
               dz_layer_[static_cast<std::size_t>(k)] *
               area_m2_[static_cast<std::size_t>(j)];
  }
  return comm_.allreduce_value(local, par::ReduceOp::kSum);
}

double OcnModel::mean_sst() const {
  double sum = 0.0, area = 0.0;
  for (const auto& [i, j] : active_columns_) {
    sum += temp_[0][field_index(i, j)] * area_m2_[static_cast<std::size_t>(j)];
    area += area_m2_[static_cast<std::size_t>(j)];
  }
  return comm_.allreduce_value(sum, par::ReduceOp::kSum) /
         comm_.allreduce_value(area, par::ReduceOp::kSum);
}

double OcnModel::max_current() const {
  double local = 0.0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    const int kmt = kmt_local(i, j);
    for (int k = 0; k < kmt; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      local = std::max(local, u_[ks][c] * u_[ks][c] + v_[ks][c] * v_[ks][c]);
    }
  }
  return std::sqrt(comm_.allreduce_value(local, par::ReduceOp::kMax));
}

double OcnModel::max_eta() const {
  double local = 0.0;
  for (const auto& [i, j] : active_columns_)
    local = std::max(local, std::abs(eta_[field_index(i, j)]));
  return comm_.allreduce_value(local, par::ReduceOp::kMax);
}

std::vector<double> OcnModel::surface_kinetic_energy() const {
  std::vector<double> out;
  out.reserve(active_columns_.size());
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = field_index(i, j);
    out.push_back(0.5 * (u_[0][c] * u_[0][c] + v_[0][c] * v_[0][c]));
  }
  return out;
}

std::vector<double> OcnModel::surface_rossby_number() const {
  std::vector<double> out;
  out.reserve(active_columns_.size());
  for (const auto& [i, j] : active_columns_) {
    const double dx = dx_m_[static_cast<std::size_t>(j)];
    const double dy = dy_m_[static_cast<std::size_t>(j)];
    const double f = coriolis_[static_cast<std::size_t>(j)];
    auto at = [&](int di, int dj, const std::vector<double>& field,
                  double fallback) {
      const int kmt_nb = kmt_local(i + di, j + dj);
      return kmt_nb > 0 ? field[field_index(i + di, j + dj)] : fallback;
    };
    const std::size_t c = field_index(i, j);
    const double dvdx = (at(1, 0, v_[0], v_[0][c]) - at(-1, 0, v_[0], v_[0][c])) /
                        (2.0 * dx);
    const double dudy = (at(0, 1, u_[0], u_[0][c]) - at(0, -1, u_[0], u_[0][c])) /
                        (2.0 * dy);
    const double zeta = dvdx - dudy;
    const double f_safe = std::abs(f) > 1e-6 ? f : (f >= 0 ? 1e-6 : -1e-6);
    out.push_back(zeta / f_safe);
  }
  return out;
}

double OcnModel::local_active_fraction() const {
  long long active = 0;
  for (int value : kmt_local_) active += value;
  const long long total = static_cast<long long>(kmt_local_.size()) *
                          config_.grid.nz;
  return total == 0 ? 0.0 : static_cast<double>(active) /
                                static_cast<double>(total);
}

}  // namespace ap3::ocn
