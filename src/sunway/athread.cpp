#include "sunway/athread.hpp"

#include "pp/pool.hpp"

namespace ap3::sunway {

void athread_spawn_join(const CpeKernel& kernel, DmaEngine& dma) {
  pp::ThreadPool::global().run_chunks(
      static_cast<std::size_t>(kCpesPerCoreGroup), [&](std::size_t cpe) {
        LdmAllocator ldm(kLdmBytesPerCpe);
        CpeContext ctx;
        ctx.cpe_id = static_cast<int>(cpe);
        ctx.num_cpes = kCpesPerCoreGroup;
        ctx.ldm = &ldm;
        ctx.dma = &dma;
        kernel(ctx);
      });
}

}  // namespace ap3::sunway
