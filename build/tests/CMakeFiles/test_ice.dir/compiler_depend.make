# Empty compiler generated dependencies file for test_ice.
# This may be replaced when dependencies are built.
