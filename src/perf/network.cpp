#include "perf/network.hpp"

#include <cmath>

#include "sunway/arch.hpp"

namespace ap3::perf {

NetworkModel::NetworkModel(MachineKind kind) : kind_(kind) {
  if (kind == MachineKind::kSunwayOceanLight) {
    latency_ = sunway::kNetworkLatencySeconds;
    intra_gbs_ = sunway::kIntraSupernodeBandwidthGBs;
    inter_gbs_ = sunway::kInterSupernodeBandwidthGBs;
  } else {
    latency_ = sunway::kOriseNetworkLatencySeconds;
    intra_gbs_ = sunway::kOriseNetworkBandwidthGBs;
    inter_gbs_ = sunway::kOriseNetworkBandwidthGBs;  // flat fabric
  }
}

double NetworkModel::p2p_seconds(double bytes, bool same_supernode) const {
  const double gbs = same_supernode ? intra_gbs_ : inter_gbs_;
  return latency_ + bytes / (gbs * 1e9);
}

double NetworkModel::halo_seconds(double bytes, int neighbors,
                                  long long nodes) const {
  // Fraction of neighbors inside the supernode shrinks as the job spans
  // more supernodes; beyond a few supernodes most block-neighbors in a 2-D
  // decomposition land outside.
  double inside_fraction = 1.0;
  if (kind_ == MachineKind::kSunwayOceanLight &&
      nodes > sunway::kNodesPerSupernode) {
    const double supernodes =
        static_cast<double>(nodes) / sunway::kNodesPerSupernode;
    inside_fraction = std::max(0.25, 1.0 / std::sqrt(supernodes));
  }
  const double inside = p2p_seconds(bytes, true);
  const double outside = p2p_seconds(bytes, false);
  // Messages to distinct neighbors serialize on the injection port.
  return neighbors *
         (inside_fraction * inside + (1.0 - inside_fraction) * outside);
}

double NetworkModel::allreduce_seconds(double bytes, long long nodes) const {
  if (nodes <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nodes)));
  // A job that fits inside one supernode never pays the oversubscribed
  // inter-supernode links; only larger jobs cross them every round.
  const bool same_supernode = nodes <= sunway::kNodesPerSupernode;
  return 2.0 * rounds * p2p_seconds(bytes, same_supernode);
}

}  // namespace ap3::perf
