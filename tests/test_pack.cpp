// The pack-width bitwise-determinism suite (DESIGN.md §13).
//
// The contract under test: for a fixed accumulation width, every packed
// kernel produces the SAME BITS for every pack width N ∈ {1,2,4,8,16} on
// every ExecSpace — pack width is a pure performance knob. The suite also
// pins the tail discipline (masked loads/stores touch exactly the requested
// lanes; ASan turns an overread of an exactly-sized allocation into a hard
// failure), the scalarize/repack views, the PackedRangePolicy tile
// enumeration for every non-divisible extent, and the obs counters that make
// a silent scalar fallback a test failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "atm/physics.hpp"
#include "base/hash.hpp"
#include "base/rng.hpp"
#include "obs/obs.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"
#include "pp/exec.hpp"
#include "pp/pack.hpp"
#include "pp/view.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ap3;

constexpr pp::ExecSpace kSpaces[] = {pp::ExecSpace::kSerial,
                                     pp::ExecSpace::kHostThreads,
                                     pp::ExecSpace::kSunwayCPE};
constexpr std::size_t kWidths[] = {1, 2, 4, 8, 16};

tensor::Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed,
                             float lo = -2.0f, float hi = 2.0f) {
  tensor::Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::uint64_t hash_tensor(const tensor::Tensor& t) {
  return fnv1a(kFnvBasis, t.data(), t.size() * sizeof(float));
}

// ---- Pack arithmetic ------------------------------------------------------

TEST(Pack, BroadcastIotaAndLaneAccess) {
  pp::Pack<double, 4> b(3.5);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(b[l], 3.5);
  const auto io = pp::Pack<double, 8>::iota(5);
  for (int l = 0; l < 8; ++l) EXPECT_EQ(io[l], static_cast<double>(5 + l));
  pp::Pack<float, 2> p;
  p[0] = 1.0f;
  p[1] = -1.0f;
  EXPECT_EQ(p[0], 1.0f);
  EXPECT_EQ(p[1], -1.0f);
}

TEST(Pack, ArithmeticMatchesScalarLaneForLane) {
  Rng rng(11);
  pp::Pack<double, 8> a, b;
  for (int l = 0; l < 8; ++l) {
    a[l] = rng.uniform(-10.0, 10.0);
    b[l] = rng.uniform(0.5, 10.0);
  }
  const auto sum = a + b, dif = a - b, prd = a * b, quo = a / b;
  const auto neg = -a;
  const auto smul = 2.5 * a, sdiv = a / 2.5, sadd = 2.5 + a, ssub = a - 2.5;
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(sum[l], a[l] + b[l]);
    EXPECT_EQ(dif[l], a[l] - b[l]);
    EXPECT_EQ(prd[l], a[l] * b[l]);
    EXPECT_EQ(quo[l], a[l] / b[l]);
    EXPECT_EQ(neg[l], -a[l]);
    EXPECT_EQ(smul[l], 2.5 * a[l]);
    EXPECT_EQ(sdiv[l], a[l] / 2.5);
    EXPECT_EQ(sadd[l], 2.5 + a[l]);
    EXPECT_EQ(ssub[l], a[l] - 2.5);
  }
}

TEST(Pack, FmaIsTheScalarAccumulationExpression) {
  // acc.fma(a, b) must be lane-wise `acc += a * b` — the exact expression of
  // dot_k — so a packed dot's lane bits equal the scalar dot's bits.
  Rng rng(13);
  for (int rep = 0; rep < 50; ++rep) {
    pp::Pack<float, 4> acc, b;
    float sacc[4];
    const float a = static_cast<float>(rng.uniform(-3.0, 3.0));
    for (int l = 0; l < 4; ++l) {
      acc[l] = static_cast<float>(rng.uniform(-3.0, 3.0));
      b[l] = static_cast<float>(rng.uniform(-3.0, 3.0));
      sacc[l] = acc[l];
    }
    acc.fma(a, b);
    for (int l = 0; l < 4; ++l) {
      sacc[l] += a * b[l];
      EXPECT_EQ(acc[l], sacc[l]);
    }
  }
}

TEST(Pack, SelectAndMask) {
  pp::Pack<double, 4> a(1.0), b(2.0), u;
  u[0] = 0.0;
  u[1] = -0.5;
  u[2] = 3.0;
  u[3] = -0.0;
  const auto m = pp::ge_zero(u);
  EXPECT_TRUE(m[0]);   // 0.0 >= 0
  EXPECT_FALSE(m[1]);
  EXPECT_TRUE(m[2]);
  EXPECT_TRUE(m[3]);   // -0.0 >= 0
  const auto s = pp::select(m, a, b);
  EXPECT_EQ(s[0], 1.0);
  EXPECT_EQ(s[1], 2.0);
  EXPECT_EQ(s[2], 1.0);
  EXPECT_EQ(s[3], 1.0);  // -0.0 >= 0, selected like the scalar branch would
  EXPECT_TRUE(m.any());
  EXPECT_FALSE(m.all());
  const auto f2 = pp::Mask<4>::first(2);
  EXPECT_TRUE(f2[0] && f2[1]);
  EXPECT_FALSE(f2[2] || f2[3]);
  EXPECT_TRUE(pp::Mask<4>::first(4).all());
  EXPECT_FALSE(pp::Mask<4>::first(0).any());
}

// ---- masked loads / stores ------------------------------------------------

TEST(Pack, MaskedLoadsTouchOnlyRequestedLanes) {
  // Exactly-sized heap allocations: one element past the end is invalid
  // memory, so ASan converts any overread into a hard failure.
  for (std::size_t lanes = 0; lanes <= 8; ++lanes) {
    std::unique_ptr<float[]> buf(new float[lanes == 0 ? 1 : lanes]);
    for (std::size_t i = 0; i < lanes; ++i)
      buf[i] = static_cast<float>(i + 1);
    const auto p = pp::pack_load<double, 8>(buf.get(), lanes);
    for (std::size_t l = 0; l < 8; ++l)
      EXPECT_EQ(p[static_cast<int>(l)],
                l < lanes ? static_cast<double>(l + 1) : 0.0);
  }
  // Strided masked load: allocation covers exactly (lanes-1)*stride + 1.
  const std::size_t stride = 5, lanes = 3;
  std::unique_ptr<double[]> sbuf(new double[(lanes - 1) * stride + 1]);
  for (std::size_t l = 0; l < lanes; ++l) sbuf[l * stride] = 10.0 + l;
  const auto sp = pp::pack_load_strided<double, 4>(sbuf.get(), stride, lanes);
  EXPECT_EQ(sp[0], 10.0);
  EXPECT_EQ(sp[1], 11.0);
  EXPECT_EQ(sp[2], 12.0);
  EXPECT_EQ(sp[3], 0.0);
}

TEST(Pack, MaskedStoreWritesOnlyRequestedLanes) {
  for (std::size_t lanes = 0; lanes <= 4; ++lanes) {
    std::unique_ptr<float[]> buf(new float[lanes == 0 ? 1 : lanes]);
    pp::Pack<double, 4> p;
    for (int l = 0; l < 4; ++l) p[l] = 100.0 + l;
    pp::pack_store(buf.get(), p, lanes);
    for (std::size_t i = 0; i < lanes; ++i)
      EXPECT_EQ(buf[i], static_cast<float>(100.0 + i));
  }
}

TEST(Pack, MisalignedSourcesLoadCorrectly) {
  // Loads assume no alignment: start from every offset of an aligned block.
  alignas(64) double block[24];
  for (int i = 0; i < 24; ++i) block[i] = i * 1.25;
  for (std::size_t off = 0; off < 8; ++off) {
    const auto p = pp::pack_load<double, 8>(block + off);
    for (int l = 0; l < 8; ++l)
      EXPECT_EQ(p[l], block[off + static_cast<std::size_t>(l)]);
    const auto masked = pp::pack_load<double, 8>(block + off, 3);
    EXPECT_EQ(masked[2], block[off + 2]);
    EXPECT_EQ(masked[3], 0.0);
  }
}

// ---- scalarize / repack ---------------------------------------------------

TEST(Pack, ScalarizeExposesPackStorageAsScalars) {
  std::vector<pp::Pack<float, 8>> packs(3);
  for (int p = 0; p < 3; ++p)
    for (int l = 0; l < 8; ++l) packs[static_cast<std::size_t>(p)][l] =
        static_cast<float>(p * 8 + l);
  auto scalars = pp::scalarize(std::span<pp::Pack<float, 8>>(packs));
  ASSERT_EQ(scalars.size(), 24u);
  for (std::size_t i = 0; i < 24; ++i)
    EXPECT_EQ(scalars[i], static_cast<float>(i));
  scalars[17] = -1.0f;  // a view, not a copy
  EXPECT_EQ(packs[2][1], -1.0f);
}

TEST(Pack, RepackRoundTripsBitwise) {
  std::vector<pp::Pack<double, 8>> packs(4);
  Rng rng(29);
  for (auto& p : packs)
    for (int l = 0; l < 8; ++l) p[l] = rng.uniform(-5.0, 5.0);
  const std::vector<pp::Pack<double, 8>> orig = packs;

  auto span8 = std::span<pp::Pack<double, 8>>(packs);
  auto span4 = pp::repack<4>(span8);
  ASSERT_EQ(span4.size(), 8u);
  auto span2 = pp::repack<2>(span4);
  ASSERT_EQ(span2.size(), 16u);
  auto span16 = pp::repack<16>(span2);
  ASSERT_EQ(span16.size(), 2u);
  auto back = pp::repack<8>(span16);
  ASSERT_EQ(back.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p)
    for (int l = 0; l < 8; ++l)
      EXPECT_EQ(std::memcmp(&back[p][l], &orig[p][l], sizeof(double)), 0);

  // Mutation through a repacked view lands in the original storage.
  span2[5][1] = 42.0;  // scalar index 11 -> pack 1, lane 3
  EXPECT_EQ(packs[1][3], 42.0);
}

TEST(Pack, RepackRejectsNonDividingExtent) {
  std::vector<pp::Pack<float, 4>> packs(3);  // 12 scalars
  auto span4 = std::span<pp::Pack<float, 4>>(packs);
  EXPECT_NO_THROW(pp::repack<2>(span4));
  EXPECT_THROW(pp::repack<8>(span4), Error);  // 12 % 8 != 0
}

// ---- PackedRangePolicy tiling --------------------------------------------

struct TileLog {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;  // (offset, lanes)
  void add(const pp::PackTile& t) {
    std::lock_guard<std::mutex> lock(mu);
    tiles.emplace_back(t.offset, t.lanes);
  }
};

TEST(PackedRange, TilesCoverEveryExtentExactlyOnce) {
  // Every non-divisible extent up to several widths: whole tiles plus one
  // masked remainder, each element covered exactly once.
  for (std::size_t width : kWidths) {
    for (std::size_t extent = 0; extent <= 3 * width + 2; ++extent) {
      std::vector<int> hits(extent, 0);
      pp::parallel_for(
          pp::PackedRangePolicy(0, extent).widthed(width),
          [&](const pp::PackTile& t) {
            EXPECT_GE(t.lanes, 1u);
            EXPECT_LE(t.lanes, width);
            if (t.offset + width <= extent) {
              EXPECT_EQ(t.lanes, width);
            }
            for (std::size_t l = 0; l < t.lanes; ++l) ++hits[t.offset + l];
          });
      for (std::size_t i = 0; i < extent; ++i) EXPECT_EQ(hits[i], 1);
    }
  }
}

TEST(PackedRange, PerRowTilesNeverStraddleRows) {
  const std::size_t rows = 5, row = 13, width = 8;
  std::vector<int> hits(rows * row, 0);
  pp::parallel_for(
      pp::PackedRangePolicy(0, rows * row).widthed(width).per_row(row),
      [&](const pp::PackTile& t) {
        EXPECT_EQ(t.offset / row, (t.offset + t.lanes - 1) / row);
        for (std::size_t l = 0; l < t.lanes; ++l) ++hits[t.offset + l];
      });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(PackedRange, BackendsEnumerateIdenticalTiles) {
  const std::size_t extent = 7 * 11;
  auto collect = [&](pp::ExecSpace space) {
    TileLog log;
    pp::parallel_for(pp::PackedRangePolicy(0, extent)
                         .widthed(4)
                         .per_row(11)
                         .on(space)
                         .named("test:tiles"),
                     [&](const pp::PackTile& t) { log.add(t); });
    std::sort(log.tiles.begin(), log.tiles.end());
    return log.tiles;
  };
  const auto serial = collect(pp::ExecSpace::kSerial);
  EXPECT_EQ(serial, collect(pp::ExecSpace::kHostThreads));
  EXPECT_EQ(serial, collect(pp::ExecSpace::kSunwayCPE));
}

TEST(PackedRange, ExtentZeroLaunchesNothing) {
  int calls = 0;
  pp::parallel_for(pp::PackedRangePolicy(0, 0).widthed(8),
                   [&](const pp::PackTile&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PackedRange, RejectsPartialRowsAndBadWidths) {
  EXPECT_THROW(pp::PackedRangePolicy(0, 10).widthed(3), Error);
  EXPECT_THROW(pp::PackedRangePolicy(0, 10).widthed(0), Error);
  EXPECT_THROW(
      pp::parallel_for(pp::PackedRangePolicy(0, 10).widthed(4).per_row(3),
                       [](const pp::PackTile&) {}),
      Error);
  EXPECT_THROW(pp::with_pack_width(5, []<int N>() { (void)N; }), Error);
  std::size_t seen = 0;
  pp::with_pack_width(16, [&]<int N>() { seen = N; });
  EXPECT_EQ(seen, 16u);
}

TEST(PackedRange, TailNeverReadsPastExactAllocation) {
  // Extent < width and extent % width != 0 over exactly-sized heap buffers:
  // the masked tile must not touch element [extent] (ASan-visible).
  for (std::size_t extent : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                             std::size_t{13}}) {
    std::unique_ptr<double[]> in(new double[extent]);
    std::unique_ptr<double[]> out(new double[extent]);
    for (std::size_t i = 0; i < extent; ++i) in[i] = static_cast<double>(i);
    const double* ind = in.get();
    double* outd = out.get();
    pp::parallel_for(pp::PackedRangePolicy(0, extent).widthed(8),
                     [=](const pp::PackTile& t) {
                       const auto v =
                           pp::pack_load<double, 8>(ind + t.offset, t.lanes);
                       pp::pack_store(outd + t.offset, 2.0 * v, t.lanes);
                     });
    for (std::size_t i = 0; i < extent; ++i)
      EXPECT_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(PackedRange, LastPackStraddlesViewAllocationBoundary) {
  // A View allocates exactly extent elements (new T[size]), so a 2-D view
  // whose row length is not a multiple of the width puts the final tile of
  // the final row flush against the allocation boundary. The masked tail
  // must stop exactly there.
  const std::size_t rows = 3, cols = 13, width = 8;
  pp::View<float, 2> v("straddle", rows, cols);
  for (std::size_t i = 0; i < v.size(); ++i)
    v.linear(i) = static_cast<float>(i) * 0.5f;
  pp::View<float, 2> out("out", rows, cols);
  const float* vd = v.data();
  float* od = out.data();
  pp::parallel_for(
      pp::PackedRangePolicy(0, rows * cols).widthed(width).per_row(cols),
      [=](const pp::PackTile& t) {
        const auto x = pp::pack_load<float, 8>(vd + t.offset, t.lanes);
        pp::pack_store(od + t.offset, x + 1.0f, t.lanes);
      });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out.linear(i), static_cast<float>(i) * 0.5f + 1.0f);
}

// ---- tensor kernels: pack-width sweep ------------------------------------

TEST(PackDeterminism, MatmulHashInvariantToWidthAndSpace) {
  // Shapes with masked tails in every dimension. kSunwayCPE stages LDM
  // panels (k fits the scratchpad), so the packed panel path is covered too.
  const std::size_t m = 5, k = 17, n = 13;
  const tensor::Tensor a = random_tensor({m, k}, 101);
  const tensor::Tensor w = random_tensor({n, k}, 202);
  for (tensor::Accum accum : {tensor::Accum::kFloat32, tensor::Accum::kFloat64}) {
    std::uint64_t ref = 0;
    {
      tensor::DispatchScope scope({pp::ExecSpace::kSerial, 0, accum, 0});
      ref = hash_tensor(tensor::matmul_nt(a, w));
    }
    for (pp::ExecSpace space : kSpaces) {
      for (std::size_t width : kWidths) {
        tensor::DispatchScope scope({space, 0, accum, width});
        EXPECT_EQ(hash_tensor(tensor::matmul_nt(a, w)), ref)
            << "space=" << pp::to_string(space) << " width=" << width
            << " accum=" << (accum == tensor::Accum::kFloat64 ? 64 : 32);
      }
    }
  }
}

TEST(PackDeterminism, ConvHashInvariantToWidthAndSpace) {
  const std::size_t batch = 3, cin = 2, len = 19, cout = 4, kk = 5;
  const tensor::Tensor x = random_tensor({batch, cin, len}, 303);
  const tensor::Tensor kern = random_tensor({cout, cin, kk}, 404, -1.0f, 1.0f);
  const tensor::Tensor bias = random_tensor({cout}, 505, -0.5f, 0.5f);
  for (tensor::Accum accum : {tensor::Accum::kFloat32, tensor::Accum::kFloat64}) {
    std::uint64_t ref = 0;
    {
      tensor::DispatchScope scope({pp::ExecSpace::kSerial, 0, accum, 0});
      ref = hash_tensor(tensor::conv1d(x, kern, bias));
    }
    for (pp::ExecSpace space : kSpaces) {
      for (std::size_t width : kWidths) {
        tensor::DispatchScope scope({space, 0, accum, width});
        EXPECT_EQ(hash_tensor(tensor::conv1d(x, kern, bias)), ref)
            << "space=" << pp::to_string(space) << " width=" << width;
      }
    }
  }
}

TEST(PackDeterminism, ConvTailShorterThanEveryWidth) {
  // len < every pack width: the whole row is one masked tile, and same-pad
  // taps run off both ends of the row.
  const tensor::Tensor x = random_tensor({2, 3, 3}, 606);
  const tensor::Tensor kern = random_tensor({2, 3, 5}, 707, -1.0f, 1.0f);
  const tensor::Tensor bias = random_tensor({2}, 808);
  std::uint64_t ref = 0;
  {
    tensor::DispatchScope scope(
        {pp::ExecSpace::kSerial, 0, tensor::Accum::kFloat32, 0});
    ref = hash_tensor(tensor::conv1d(x, kern, bias));
  }
  for (std::size_t width : kWidths) {
    tensor::DispatchScope scope(
        {pp::ExecSpace::kSerial, 0, tensor::Accum::kFloat32, width});
    EXPECT_EQ(hash_tensor(tensor::conv1d(x, kern, bias)), ref)
        << "width=" << width;
  }
}

TEST(PackDeterminism, InvalidDispatchWidthIsRejectedNotIgnored) {
  const tensor::Tensor a = random_tensor({2, 4}, 1);
  const tensor::Tensor w = random_tensor({3, 4}, 2);
  tensor::DispatchScope scope(
      {pp::ExecSpace::kSerial, 0, tensor::Accum::kFloat32, 3});
  EXPECT_THROW(tensor::matmul_nt(a, w), Error);
  EXPECT_THROW(tensor::conv1d(random_tensor({1, 1, 4}, 3),
                              random_tensor({1, 1, 3}, 4),
                              random_tensor({1}, 5)),
               Error);
}

// ---- ocean / atm column kernels ------------------------------------------

TEST(PackDeterminism, OceanTracerHashInvariantToPackWidth) {
  std::vector<std::uint64_t> hashes;
  for (std::size_t width : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{4}, std::size_t{8}}) {
    par::run(1, [&](par::Comm& comm) {
      ocn::OcnConfig config;
      config.grid = grid::TripolarConfig{48, 36, 6};
      config.pack_width = width;
      ocn::OcnModel model(comm, config);
      mct::AttrVect x2o(ocn::OcnModel::import_fields(),
                        model.ocean_gids().size());
      for (auto& t : x2o.field("taux")) t = 0.15;
      for (auto& t : x2o.field("tauy")) t = -0.05;
      for (auto& q : x2o.field("qnet")) q = 120.0;
      model.import_state(x2o);
      model.run(0.0, config.baroclinic_dt_seconds() * 12);
      if (comm.rank() == 0) hashes.push_back(model.column_state_hash());
    });
  }
  ASSERT_EQ(hashes.size(), 5u);
  for (std::size_t i = 1; i < hashes.size(); ++i)
    EXPECT_EQ(hashes[i], hashes[0]) << "width index " << i;
}

TEST(PackDeterminism, AtmPhysicsBitwiseInvariantToPackWidth) {
  auto make_batch = [] {
    atm::ColumnBatch batch(9, 20);
    Rng rng(4242);
    for (std::size_t c = 0; c < batch.ncols; ++c) {
      batch.tskin[c] = 270.0 + rng.uniform(0.0, 40.0);
      batch.coszr[c] = rng.uniform(-0.2, 1.0);
      for (std::size_t k = 0; k < batch.nlev; ++k) {
        const std::size_t i = batch.at(c, k);
        batch.temp[i] = 200.0 + rng.uniform(0.0, 100.0);
        batch.q[i] = rng.uniform(0.0, 0.02);
        batch.u[i] = rng.uniform(-30.0, 30.0);
        batch.v[i] = rng.uniform(-30.0, 30.0);
        batch.pressure[i] = rng.uniform(1e4, 1e5);
      }
    }
    return batch;
  };
  atm::ConventionalConfig ref_config;
  ref_config.pack_width = 0;
  atm::ConventionalPhysics ref(ref_config);
  atm::ColumnBatch ref_batch = make_batch();
  ref.compute(ref_batch);
  for (std::size_t width : kWidths) {
    atm::ConventionalConfig config;
    config.pack_width = width;
    atm::ConventionalPhysics physics(config);
    atm::ColumnBatch batch = make_batch();
    physics.compute(batch);
    EXPECT_EQ(batch.dtemp, ref_batch.dtemp) << "width=" << width;
    EXPECT_EQ(batch.dq, ref_batch.dq) << "width=" << width;
    EXPECT_EQ(batch.du, ref_batch.du) << "width=" << width;
    EXPECT_EQ(batch.dv, ref_batch.dv) << "width=" << width;
    EXPECT_EQ(batch.gsw, ref_batch.gsw) << "width=" << width;
    EXPECT_EQ(batch.glw, ref_batch.glw) << "width=" << width;
    EXPECT_EQ(batch.precip, ref_batch.precip) << "width=" << width;
  }
}

// ---- obs counters: no silent scalar fallback ------------------------------

TEST(PackObs, PackedKernelsChargeThePackCounters) {
  obs::set_enabled(true);
  obs::reset_all();
  const tensor::Tensor aa = random_tensor({6, 17}, 21);
  const tensor::Tensor w = random_tensor({9, 17}, 22);
  const tensor::Tensor x = random_tensor({2, 2, 11}, 23);
  const tensor::Tensor kern = random_tensor({3, 2, 3}, 24);
  const tensor::Tensor bias = random_tensor({3}, 25);
  double expected = 0.0;
  for (pp::ExecSpace space : kSpaces) {
    tensor::DispatchScope scope({space, 0, tensor::Accum::kFloat32, 8});
    (void)tensor::matmul_nt(aa, w);   // CPE space takes the LDM panel path
    (void)tensor::conv1d(x, kern, bias);
    expected += 2.0;
  }
  EXPECT_DOUBLE_EQ(obs::total_counter("pp:pack:launches"), expected);
  EXPECT_GT(obs::total_counter("pp:pack:tiles"), 0.0);
  // The scalar reference path must NOT charge pack counters — the counter is
  // the witness that packed entry points never silently fall back.
  obs::reset_all();
  {
    tensor::DispatchScope scope(
        {pp::ExecSpace::kSerial, 0, tensor::Accum::kFloat32, 0});
    (void)tensor::matmul_nt(aa, w);
    (void)tensor::conv1d(x, kern, bias);
  }
  EXPECT_DOUBLE_EQ(obs::total_counter("pp:pack:launches"), 0.0);
  obs::reset_all();
}

}  // namespace
