#include "tensor/layers.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "tensor/dispatch.hpp"

namespace ap3::tensor {

namespace {
void he_init(Tensor& t, std::size_t fan_in, Rng& rng) {
  const double std_dev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal() * std_dev);
}

pp::RangePolicy pol(std::size_t n, std::string_view label) {
  pp::RangePolicy p(0, n);
  p.on(dispatch().space).named(label);
  if (dispatch().chunk != 0) p.chunked(dispatch().chunk);
  return p;
}
}  // namespace

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : weight({out, in}),
      bias({out}),
      grad_weight({out, in}),
      grad_bias({out}) {
  he_init(weight, in, rng);
}

Tensor Dense::forward(const Tensor& x) {
  AP3_SPAN("tensor:dense:fwd");
  input_ = x;
  Tensor out = matmul_nt(x, weight);
  bias_add_rows(out, bias);
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  AP3_SPAN("tensor:dense:bwd");
  const std::size_t batch = grad_out.dim(0), n = grad_out.dim(1);
  const std::size_t in = weight.dim(1);
  const float* gd = grad_out.data();
  const float* xd = input_.data();
  // grad_bias += sum over batch, one output unit per element.
  float* gbd = grad_bias.data();
  pp::parallel_for(pol(n, "tensor:dense:bwd_bias"), [=](std::size_t j) {
    float acc = gbd[j];
    for (std::size_t i = 0; i < batch; ++i) acc += gd[i * n + j];
    gbd[j] = acc;
  });
  // grad_weight += grad_out^T * input, one weight per element.
  float* gwd = grad_weight.data();
  pp::parallel_for(pol(n * in, "tensor:dense:bwd_weight"), [=](std::size_t e) {
    const std::size_t j = e / in, p = e % in;
    float acc = gwd[e];
    for (std::size_t i = 0; i < batch; ++i)
      acc += gd[i * n + j] * xd[i * in + p];
    gwd[e] = acc;
  });
  // grad_in = grad_out * weight.
  return matmul(grad_out, weight);
}

void Dense::collect_params(std::vector<Param>& out) {
  out.push_back({&weight, &grad_weight});
  out.push_back({&bias, &grad_bias});
}

Conv1D::Conv1D(std::size_t cin, std::size_t cout, std::size_t k, Rng& rng)
    : kernel({cout, cin, k}),
      bias({cout}),
      grad_kernel({cout, cin, k}),
      grad_bias({cout}) {
  he_init(kernel, cin * k, rng);
}

Tensor Conv1D::forward(const Tensor& x) {
  AP3_SPAN("tensor:conv1d:fwd");
  input_ = x;
  return conv1d(x, kernel, bias);
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  AP3_SPAN("tensor:conv1d:bwd");
  return conv1d_backward(input_, kernel, grad_out, grad_kernel, grad_bias);
}

void Conv1D::collect_params(std::vector<Param>& out) {
  out.push_back({&kernel, &grad_kernel});
  out.push_back({&bias, &grad_bias});
}

Tensor ReLU::forward(const Tensor& x) {
  AP3_SPAN("tensor:relu:fwd");
  input_ = x;
  return relu(x);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  return relu_backward(input_, grad_out);
}

ResUnit::ResUnit(std::vector<std::unique_ptr<Layer>> inner)
    : inner_(std::move(inner)) {
  AP3_REQUIRE_MSG(!inner_.empty(), "ResUnit needs at least one inner layer");
}

Tensor ResUnit::forward(const Tensor& x) {
  AP3_SPAN("tensor:resunit:fwd");
  Tensor h = x;
  for (auto& layer : inner_) h = layer->forward(h);
  AP3_REQUIRE_MSG(h.same_shape(x), "ResUnit inner layers must preserve shape");
  add_inplace(h, x);
  pre_act_ = h;
  return relu(h);
}

Tensor ResUnit::backward(const Tensor& grad_out) {
  Tensor g = relu_backward(pre_act_, grad_out);
  Tensor g_inner = g;  // branch into the inner stack
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it)
    g_inner = (*it)->backward(g_inner);
  add_inplace(g_inner, g);  // skip connection gradient
  return g_inner;
}

void ResUnit::collect_params(std::vector<Param>& out) {
  for (auto& layer : inner_) layer->collect_params(out);
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

std::vector<float> Sequential::save_weights() {
  std::vector<Param> params;
  collect_params(params);
  std::vector<float> flat;
  for (const Param& p : params)
    flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
  return flat;
}

void Sequential::load_weights(const std::vector<float>& flat) {
  std::vector<Param> params;
  collect_params(params);
  std::size_t pos = 0;
  for (Param& p : params) {
    AP3_REQUIRE_MSG(pos + p.value->size() <= flat.size(),
                    "weight blob too short");
    for (std::size_t i = 0; i < p.value->size(); ++i)
      (*p.value)[i] = flat[pos + i];
    pos += p.value->size();
  }
  AP3_REQUIRE_MSG(pos == flat.size(), "weight blob has trailing data");
}

}  // namespace ap3::tensor
