# Empty dependencies file for ap3_ai.
# This may be replaced when dependencies are built.
