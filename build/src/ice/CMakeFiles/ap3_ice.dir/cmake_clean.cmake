file(REMOVE_RECURSE
  "CMakeFiles/ap3_ice.dir/ice.cpp.o"
  "CMakeFiles/ap3_ice.dir/ice.cpp.o.d"
  "libap3_ice.a"
  "libap3_ice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_ice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
