// Execution spaces and parallel dispatch (the Kokkos-like core of §5.3).
//
// Kernels are written once as functors over indices; the execution space
// selects how they run:
//   kSerial      — plain loop (reference / bitwise baseline),
//   kHostThreads — chunked across the process thread pool,
//   kSunwayCPE   — chunked across the simulated CPE cluster of a core group
//                  (functionally identical, but the Sunway cost model charges
//                  simulated cycles; see src/sunway).
//
// parallel_reduce uses deterministic chunk partials combined in chunk order,
// so results are identical across spaces — matching the paper's bit-for-bit
// validation discipline for the coupled model.
//
// Every launch funnels through detail::dispatch, which emits one obs span
// plus per-ExecSpace launch/items counters (see src/obs); policies carry an
// optional .named() label that becomes the span name. Policies are built
// fluently — RangePolicy(0, n).on(space).chunked(c).named("ocn:adv") — and
// the async entry points in pp/stream.hpp reuse the same policy types and the
// same chunk partitioning, which is what makes async results bitwise
// identical to synchronous ones.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "obs/obs.hpp"
#include "pp/pack.hpp"
#include "pp/pool.hpp"
#include "sunway/arch.hpp"

namespace ap3::pp {

enum class ExecSpace { kSerial, kHostThreads, kSunwayCPE };

inline const char* to_string(ExecSpace space) {
  switch (space) {
    case ExecSpace::kSerial: return "Serial";
    case ExecSpace::kHostThreads: return "HostThreads";
    case ExecSpace::kSunwayCPE: return "SunwayCPE";
  }
  return "?";
}

/// 1-D iteration range [begin, end). Execution space, chunk size, and label
/// are set exclusively through the fluent builders:
///   parallel_for(RangePolicy(0, n).on(space).chunked(c).named("ocn:adv"), f)
struct RangePolicy {
  std::size_t begin = 0;
  std::size_t end = 0;
  ExecSpace space = ExecSpace::kSerial;
  std::size_t chunk = 0;     ///< 0: pick automatically
  std::string_view label{};  ///< span name for this launch (optional)

  RangePolicy(std::size_t begin_, std::size_t end_)
      : begin(begin_), end(end_) {
    AP3_REQUIRE(end_ >= begin_);
  }

  RangePolicy& on(ExecSpace space_) {
    space = space_;
    return *this;
  }
  RangePolicy& chunked(std::size_t chunk_) {
    chunk = chunk_;
    return *this;
  }
  /// The viewed characters must outlive the launch (string literals / owned
  /// buffers); async launches copy the label at enqueue time.
  RangePolicy& named(std::string_view label_) {
    label = label_;
    return *this;
  }
};

/// 2-D tiled iteration over [0,n0) x [0,n1); tiles are the parallel unit.
struct MDRangePolicy2 {
  std::size_t n0 = 0, n1 = 0;
  std::size_t tile0 = 0, tile1 = 0;  ///< 0: pick automatically
  ExecSpace space = ExecSpace::kSerial;
  std::string_view label{};          ///< span name for this launch (optional)

  MDRangePolicy2& on(ExecSpace space_) {
    space = space_;
    return *this;
  }
  MDRangePolicy2& named(std::string_view label_) {
    label = label_;
    return *this;
  }
};

/// 1-D iteration range [begin, end) cut into pack tiles: whole tiles of
/// `width` consecutive elements plus a masked remainder (PackTile.lanes <
/// width) per row. The parallel unit handed to the functor is the tile —
/// lanes within a tile are independent output elements, which is what keeps
/// results bitwise invariant to the width (see pp/pack.hpp).
///
///   parallel_for(PackedRangePolicy(0, m * n).widthed(8).per_row(n)
///                    .on(space).named("tensor:matmul_nt:packed"),
///                [&](const PackTile& t) { ... });
///
/// .per_row(r): tiles never straddle multiples of r — kernels that decode
/// (row, column) from the flat offset see a single row per tile and can
/// amortize the div/mod to one per tile. The extent must be whole rows.
/// .chunked(c) counts tiles (not elements); chunk geometry, like the
/// ExecSpace, never changes the bits.
struct PackedRangePolicy {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t width = kDefaultPackWidth;
  std::size_t row = 0;       ///< 0: the whole range is one row
  ExecSpace space = ExecSpace::kSerial;
  std::size_t chunk = 0;     ///< tiles per chunk; 0: pick automatically
  std::string_view label{};  ///< span name for this launch (optional)

  PackedRangePolicy(std::size_t begin_, std::size_t end_)
      : begin(begin_), end(end_) {
    AP3_REQUIRE(end_ >= begin_);
  }

  PackedRangePolicy& on(ExecSpace space_) {
    space = space_;
    return *this;
  }
  PackedRangePolicy& chunked(std::size_t chunk_) {
    chunk = chunk_;
    return *this;
  }
  PackedRangePolicy& named(std::string_view label_) {
    label = label_;
    return *this;
  }
  PackedRangePolicy& widthed(std::size_t width_) {
    AP3_REQUIRE_MSG(is_pack_width(width_),
                    "pack width " << width_ << " not in {1,2,4,8,16}");
    width = width_;
    return *this;
  }
  PackedRangePolicy& per_row(std::size_t row_) {
    AP3_REQUIRE(row_ >= 1);
    row = row_;
    return *this;
  }
};

namespace detail {
inline std::size_t auto_chunk(std::size_t n, int nworkers) {
  const std::size_t per = (n + static_cast<std::size_t>(4 * nworkers) - 1) /
                          static_cast<std::size_t>(4 * nworkers);
  return per == 0 ? 1 : per;
}

inline const char* launch_counter(ExecSpace space) {
  switch (space) {
    case ExecSpace::kSerial: return "pp:launches:Serial";
    case ExecSpace::kHostThreads: return "pp:launches:HostThreads";
    case ExecSpace::kSunwayCPE: return "pp:launches:SunwayCPE";
  }
  return "pp:launches:?";
}

inline const char* items_counter(ExecSpace space) {
  switch (space) {
    case ExecSpace::kSerial: return "pp:items:Serial";
    case ExecSpace::kHostThreads: return "pp:items:HostThreads";
    case ExecSpace::kSunwayCPE: return "pp:items:SunwayCPE";
  }
  return "pp:items:?";
}

/// Launch/items accounting shared by the sync gate below and the async tasks
/// in pp/stream.hpp. On kSunwayCPE the simulated cost model additionally
/// charges cycles: the 8x8 CPE mesh of one core group retires one item per
/// CPE per cycle, so a launch of `items` costs ceil(items / 64) cycles
/// ("pp:cpe:sim_cycles" — the knob src/perf calibrates against).
inline void charge_launch(ExecSpace space, std::size_t items) {
  obs::counter_add(launch_counter(space), 1.0);
  obs::counter_add(items_counter(space), static_cast<double>(items));
  if (space == ExecSpace::kSunwayCPE) {
    const auto cpes = static_cast<std::size_t>(sunway::kCpesPerCoreGroup);
    const std::size_t cycles = (items + cpes - 1) / cpes;
    obs::counter_add("pp:cpe:sim_cycles", static_cast<double>(cycles));
  }
}

/// The single instrumented dispatch gate: every parallel_for /
/// parallel_reduce / parallel_scan launch — 1-D or tiled, any ExecSpace —
/// funnels through here and emits exactly one span plus one launch/items
/// counter pair. When the layer is disabled this is one relaxed atomic load.
template <typename Body>
inline void dispatch(const char* kind, std::string_view label, ExecSpace space,
                     std::size_t items, const Body& body) {
  if (!obs::enabled()) {
    body();
    return;
  }
  obs::Span span(!label.empty() ? label : std::string_view(kind));
  charge_launch(space, items);
  body();
}

/// Runs `body(c)` for chunks [0, nchunks), on the process pool when the
/// calling thread is free, or chunk-serial inline when the caller is already
/// inside pool work (an async stream task, or a nested launch from a chunk
/// body). The partitioning is identical either way, so results — including
/// reduce partials — are bitwise identical.
template <typename ChunkBody>
inline void run_gang(std::size_t nchunks, const ChunkBody& body) {
  ThreadPool& pool = ThreadPool::global();
  if (pool.on_pool_thread()) {
    for (std::size_t c = 0; c < nchunks; ++c) body(c);
    return;
  }
  pool.run_chunks(nchunks, body);
}

/// Execution core of parallel_for, shared with the async launch path in
/// pp/stream.hpp (which runs it on a pool thread, where run_gang inlines the
/// identical chunk sequence).
template <typename Functor>
void run_for(const RangePolicy& policy, const Functor& fn) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) return;
  if (policy.space == ExecSpace::kSerial) {
    for (std::size_t i = policy.begin; i < policy.end; ++i) fn(i);
    return;
  }
  const std::size_t chunk =
      policy.chunk ? policy.chunk
                   : auto_chunk(n, ThreadPool::global().size() + 1);
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  run_gang(nchunks, [&](std::size_t c) {
    const std::size_t lo = policy.begin + c * chunk;
    const std::size_t hi = std::min(policy.end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Execution core of parallel_reduce: partials per chunk, combined in chunk
/// order starting from `init`. The chunk geometry depends only on the policy
/// and the (fixed) pool size, never on which thread executes — the bitwise
/// determinism contract the async path relies on.
template <typename Scalar, typename Functor>
Scalar run_reduce(const RangePolicy& policy, const Functor& fn, Scalar init) {
  const std::size_t n = policy.end - policy.begin;
  if (n == 0) return init;
  if (policy.space == ExecSpace::kSerial) {
    Scalar acc = init;
    for (std::size_t i = policy.begin; i < policy.end; ++i) fn(i, acc);
    return acc;
  }
  const std::size_t chunk =
      policy.chunk ? policy.chunk
                   : auto_chunk(n, ThreadPool::global().size() + 1);
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  std::vector<Scalar> partials(nchunks, Scalar{});
  run_gang(nchunks, [&](std::size_t c) {
    const std::size_t lo = policy.begin + c * chunk;
    const std::size_t hi = std::min(policy.end, lo + chunk);
    Scalar acc{};
    for (std::size_t i = lo; i < hi; ++i) fn(i, acc);
    partials[c] = acc;
  });
  Scalar acc = init;
  for (const Scalar& p : partials) acc += p;
  return acc;
}
}  // namespace detail

/// parallel_for over a 1-D range.
template <typename Functor>
void parallel_for(const RangePolicy& policy, const Functor& fn) {
  const std::size_t n = policy.end - policy.begin;
  detail::dispatch("pp:parallel_for", policy.label, policy.space, n,
                   [&] { detail::run_for(policy, fn); });
}

/// parallel_reduce (sum-like): fn(i, acc) accumulates into acc; partials are
/// combined deterministically in chunk order.
template <typename Scalar, typename Functor>
Scalar parallel_reduce(const RangePolicy& policy, const Functor& fn,
                       Scalar init = Scalar{}) {
  const std::size_t n = policy.end - policy.begin;
  Scalar result = init;
  detail::dispatch("pp:parallel_reduce", policy.label, policy.space, n,
                   [&] { result = detail::run_reduce(policy, fn, init); });
  return result;
}

/// Inclusive parallel scan returning the total; out[i] = sum of fn-values in
/// [begin, i]. Two-pass chunked algorithm, deterministic.
template <typename Scalar, typename ValueFn>
Scalar parallel_scan(const RangePolicy& policy, const ValueFn& value_of,
                     std::vector<Scalar>& out) {
  const std::size_t n = policy.end - policy.begin;
  Scalar result{};
  detail::dispatch("pp:parallel_scan", policy.label, policy.space, n, [&] {
    out.assign(n, Scalar{});
    if (n == 0) return;
    if (policy.space == ExecSpace::kSerial) {
      Scalar acc{};
      for (std::size_t i = 0; i < n; ++i) {
        acc += value_of(policy.begin + i);
        out[i] = acc;
      }
      result = acc;
      return;
    }
    ThreadPool& pool = ThreadPool::global();
    const std::size_t chunk =
        policy.chunk ? policy.chunk : detail::auto_chunk(n, pool.size() + 1);
    const std::size_t nchunks = (n + chunk - 1) / chunk;
    std::vector<Scalar> sums(nchunks, Scalar{});
    detail::run_gang(nchunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      Scalar acc{};
      for (std::size_t i = lo; i < hi; ++i) {
        acc += value_of(policy.begin + i);
        out[i] = acc;
      }
      sums[c] = acc;
    });
    // Exclusive prefix of chunk sums, then offset each chunk.
    std::vector<Scalar> offsets(nchunks, Scalar{});
    Scalar total{};
    for (std::size_t c = 0; c < nchunks; ++c) {
      offsets[c] = total;
      total += sums[c];
    }
    detail::run_gang(nchunks, [&](std::size_t c) {
      if (offsets[c] == Scalar{}) return;
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) out[i] += offsets[c];
    });
    result = total;
  });
  return result;
}

/// parallel_for over a pack-tiled 1-D range; fn(const PackTile&). Tiles are
/// enumerated row-major (row by row, ascending offset within a row) and the
/// sequence is identical on every ExecSpace and for every chunking — only
/// which worker executes a tile varies. Charges "pp:pack:launches" /
/// "pp:pack:tiles" on top of the usual launch/items counters, so tests can
/// assert that packed entry points never silently fall back to scalar.
template <typename Functor>
void parallel_for(const PackedRangePolicy& policy, const Functor& fn) {
  const std::size_t n = policy.end - policy.begin;
  detail::dispatch("pp:parallel_for_packed", policy.label, policy.space, n,
                   [&] {
    if (n == 0) return;
    const std::size_t width = policy.width;
    AP3_REQUIRE_MSG(is_pack_width(width),
                    "pack width " << width << " not in {1,2,4,8,16}");
    const std::size_t row = policy.row ? policy.row : n;
    AP3_REQUIRE_MSG(n % row == 0,
                    "packed range extent " << n << " is not whole rows of "
                                           << row);
    const std::size_t tiles_per_row = (row + width - 1) / width;
    const std::size_t ntiles = (n / row) * tiles_per_row;
    if (obs::enabled()) {
      obs::counter_add("pp:pack:launches", 1.0);
      obs::counter_add("pp:pack:tiles", static_cast<double>(ntiles));
    }
    auto run_tile = [&](std::size_t t) {
      const std::size_t ri = t / tiles_per_row;
      const std::size_t tj = t % tiles_per_row;
      const std::size_t off = tj * width;
      fn(PackTile{policy.begin + ri * row + off,
                  std::min(width, row - off)});
    };
    if (policy.space == ExecSpace::kSerial) {
      for (std::size_t t = 0; t < ntiles; ++t) run_tile(t);
      return;
    }
    const std::size_t chunk =
        policy.chunk ? policy.chunk
                     : detail::auto_chunk(ntiles, ThreadPool::global().size() + 1);
    const std::size_t nchunks = (ntiles + chunk - 1) / chunk;
    detail::run_gang(nchunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(ntiles, lo + chunk);
      for (std::size_t t = lo; t < hi; ++t) run_tile(t);
    });
  });
}

/// parallel_for over a 2-D tiled range; fn(i0, i1).
template <typename Functor>
void parallel_for(const MDRangePolicy2& policy, const Functor& fn) {
  detail::dispatch("pp:parallel_for2", policy.label, policy.space,
                   policy.n0 * policy.n1, [&] {
    if (policy.n0 == 0 || policy.n1 == 0) return;
    const std::size_t t0 = policy.tile0 ? policy.tile0 : 16;
    const std::size_t t1 = policy.tile1 ? policy.tile1 : 64;
    const std::size_t tiles0 = (policy.n0 + t0 - 1) / t0;
    const std::size_t tiles1 = (policy.n1 + t1 - 1) / t1;
    const std::size_t ntiles = tiles0 * tiles1;
    auto run_tile = [&](std::size_t tile) {
      const std::size_t ti = tile / tiles1;
      const std::size_t tj = tile % tiles1;
      const std::size_t i_end = std::min(policy.n0, (ti + 1) * t0);
      const std::size_t j_end = std::min(policy.n1, (tj + 1) * t1);
      for (std::size_t i = ti * t0; i < i_end; ++i)
        for (std::size_t j = tj * t1; j < j_end; ++j) fn(i, j);
    };
    if (policy.space == ExecSpace::kSerial) {
      for (std::size_t tile = 0; tile < ntiles; ++tile) run_tile(tile);
    } else {
      detail::run_gang(ntiles, run_tile);
    }
  });
}

}  // namespace ap3::pp
