# Empty compiler generated dependencies file for test_lnd.
# This may be replaced when dependencies are built.
