file(REMOVE_RECURSE
  "../bench/bench_table1_configs"
  "../bench/bench_table1_configs.pdb"
  "CMakeFiles/bench_table1_configs.dir/bench_table1_configs.cpp.o"
  "CMakeFiles/bench_table1_configs.dir/bench_table1_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
