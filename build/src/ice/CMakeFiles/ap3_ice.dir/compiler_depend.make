# Empty compiler generated dependencies file for ap3_ice.
# This may be replaced when dependencies are built.
