// §5.3 benchmark: performance-portability machinery.
//
//  - hash-registry dispatch overhead vs a direct call (the Sunway
//    TMP-workaround pathway),
//  - execution spaces on the same kernel (Serial vs HostThreads),
//  - MDRange tile-size sweep through the tile profiler,
//  - simulated CPE offload (athread + LDM staging) vs host execution.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "pp/exec.hpp"
#include "pp/view.hpp"
#include "pp/registry.hpp"
#include "pp/tile.hpp"
#include "sunway/athread.hpp"

namespace {

using namespace ap3;

constexpr std::size_t kN = 1 << 15;

void stencil_kernel(const pp::LaunchArgs& args) {
  auto* out = static_cast<double*>(args.pointers[0]);
  const auto* in = static_cast<const double*>(args.pointers[1]);
  const double alpha = args.scalars[0];
  for (std::size_t i = std::max<std::size_t>(args.begin, 1);
       i < args.end && i + 1 < kN; ++i)
    out[i] = in[i] + alpha * (in[i - 1] - 2.0 * in[i] + in[i + 1]);
}

std::vector<double>& input() {
  static std::vector<double> x = [] {
    std::vector<double> v(kN);
    for (std::size_t i = 0; i < kN; ++i) v[i] = std::sin(0.01 * i);
    return v;
  }();
  return x;
}

void BM_DirectCall(benchmark::State& state) {
  std::vector<double> out(kN);
  pp::LaunchArgs args;
  args.begin = 0;
  args.end = kN;
  args.pointers = {out.data(), input().data()};
  args.scalars = {0.1};
  for (auto _ : state) {
    stencil_kernel(args);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DirectCall);

void BM_RegistryDispatch(benchmark::State& state) {
  auto& registry = pp::KernelRegistry::instance();
  const auto hash = registry.register_kernel("bench_stencil", &stencil_kernel);
  std::vector<double> out(kN);
  pp::LaunchArgs args;
  args.begin = 0;
  args.end = kN;
  args.pointers = {out.data(), input().data()};
  args.scalars = {0.1};
  for (auto _ : state) {
    registry.launch(hash, args);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RegistryDispatch);

void BM_ParallelForSerial(benchmark::State& state) {
  std::vector<double> out(kN);
  const auto& in = input();
  for (auto _ : state) {
    pp::parallel_for(pp::RangePolicy(1, kN - 1).on(pp::ExecSpace::kSerial),
                     [&](std::size_t i) {
                       out[i] = in[i] + 0.1 * (in[i - 1] - 2 * in[i] + in[i + 1]);
                     });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForSerial);

void BM_ParallelForThreads(benchmark::State& state) {
  std::vector<double> out(kN);
  const auto& in = input();
  for (auto _ : state) {
    pp::parallel_for(pp::RangePolicy(1, kN - 1).on(pp::ExecSpace::kHostThreads),
                     [&](std::size_t i) {
                       out[i] = in[i] + 0.1 * (in[i - 1] - 2 * in[i] + in[i + 1]);
                     });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForThreads);

void BM_CpeOffloadSaxpy(benchmark::State& state) {
  std::vector<double> y(kN, 1.0);
  const auto& x = input();
  sunway::DmaEngine dma;
  for (auto _ : state) {
    sunway::athread_spawn_join(
        [&](sunway::CpeContext& ctx) {
          const auto range = sunway::cpe_partition(kN, ctx.cpe_id, ctx.num_cpes);
          const std::size_t len = range.end - range.begin;
          if (len == 0) return;
          double* lx = ctx.ldm->alloc_array<double>(len);
          double* ly = ctx.ldm->alloc_array<double>(len);
          ctx.dma->get(lx, x.data() + range.begin, len * sizeof(double));
          ctx.dma->get(ly, y.data() + range.begin, len * sizeof(double));
          for (std::size_t i = 0; i < len; ++i) ly[i] += 0.1 * lx[i];
          ctx.dma->put(y.data() + range.begin, ly, len * sizeof(double));
        },
        dma);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CpeOffloadSaxpy);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Tile-size sweep via the profiler (§5.3 "finer-grained tile profiling").
  const std::size_t n0 = 512, n1 = 512;
  pp::View<double, 2> a("a", n0, n1), b("b", n0, n1);
  for (std::size_t i = 0; i < a.size(); ++i) a.linear(i) = 0.001 * i;
  pp::TileProfiler profiler;
  std::vector<pp::TileShape> candidates = {{4, 256}, {16, 64}, {32, 32},
                                           {64, 16}, {256, 4}};
  const pp::TileShape best = profiler.sweep(
      "transpose_mdrange", candidates, [&](pp::TileShape shape) {
        pp::MDRangePolicy2 policy =
            pp::MDRangePolicy2{n0, n1, shape.tile0, shape.tile1}.on(
                pp::ExecSpace::kHostThreads);
        pp::parallel_for(policy,
                         [&](std::size_t i, std::size_t j) { b(j, i) = a(i, j); });
      });
  std::printf("\ntile sweep on a 512x512 MDRange transpose:\n");
  for (const pp::TileRecord& rec : profiler.records("transpose_mdrange"))
    std::printf("  tile %3zux%-3zu : %8.2f us\n", rec.shape.tile0,
                rec.shape.tile1, rec.seconds / rec.samples * 1e6);
  std::printf("  profiler recommends %zux%zu\n", best.tile0, best.tile1);
  std::printf("\nregistered kernels in the hash table: %zu (launches so far: "
              "%llu)\n",
              pp::KernelRegistry::instance().size(),
              static_cast<unsigned long long>(
                  pp::KernelRegistry::instance().launch_count()));
  return 0;
}
