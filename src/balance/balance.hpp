// Runtime load rebalancing (src/balance).
//
// Closes the loop the static §5.2.2 compaction leaves open: per-rank phase
// costs measured by the obs layer feed a weighted repartitioner (the same
// greedy cut rule, driven by measured seconds instead of kmt counts), a
// hysteresis-guarded decision compares the predicted steady-state savings
// against a NetworkModel-style migration cost, and accepted plans move
// column state between ranks through an MCT Router/Rearranger built from
// the old→new ownership maps. Migration reuses the checkpoint-grade column
// records, so a rebalanced run is bit-identical to a static one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "balance/rebalanceable.hpp"
#include "grid/partition.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "par/comm.hpp"
#include "perf/network.hpp"

namespace ap3::balance {

/// Per-rank measured cost of one phase, allgathered so every rank holds the
/// identical vector (rebalancing decisions must be collectively consistent).
struct MeasuredCost {
  std::vector<double> per_rank_seconds;
  double max_seconds() const;
  double mean_seconds() const;
  /// max/mean; 1.0 when the phase recorded no time at all.
  double imbalance() const;
};

/// Collective: reads this rank's obs span total for `span_name` since event
/// `first_event` and allgathers it over `comm`. `extra_local_seconds` is added
/// to the local term before the allgather; use it to fold in busy-time
/// counters (e.g. straggler stall seconds) that wall-clock spans under-report
/// when halo waits synchronize fast ranks to slow ones.
MeasuredCost measured_phase_cost(const par::Comm& comm,
                                 std::string_view span_name,
                                 std::size_t first_event,
                                 double extra_local_seconds = 0.0);

/// Hysteresis knobs. Defaults are deliberately conservative: rebalancing
/// only engages on a sustained >15 % imbalance and re-engages at most every
/// `cooldown` further considerations, so measurement noise cannot thrash the
/// decomposition.
struct RebalancePolicy {
  double imbalance_enter = 1.15;  ///< consider only above this max/mean
  double min_improvement = 0.02;  ///< predicted relative gain floor
  /// Absolute floor on the mean per-rank phase cost: phases cheaper than this
  /// over a measurement window are pure scheduler noise (a few ms of
  /// preemption reads as a huge *relative* imbalance on a ms-scale phase) and
  /// are never worth a migration.
  double min_phase_seconds = 0.05;
  int cooldown = 1;               ///< considerations skipped after a migration
  int amortize_windows = 10;      ///< windows the savings must pay back over
  bool ignore_migration_cost = false;  ///< tests: force pure-imbalance rule
};

/// A candidate repartition with its predicted effect.
struct CutPlan {
  grid::BlockCuts cuts;
  double current_max_seconds = 0.0;
  double predicted_max_seconds = 0.0;
  std::int64_t moved_weight = 0;  ///< weight units changing owner
  std::int64_t total_weight = 0;
};

/// Halo-ghost charging for cut placement. A block's owner pays not only for
/// its owned active columns but for the ghost ring it must receive, unpack,
/// and read in stencils every exchange. width = the component's BlockHalo
/// depth (0 disables ghost charging — the legacy ghost-blind planner);
/// cell_cost_factor prices one ghost cell as that fraction of the mean
/// attributed cost of an active interior cell.
struct GhostModel {
  int halo_width = 0;
  double cell_cost_factor = 0.25;
};

/// Ghost cells a (block_w × block_h) block with bottom row `y0` receives at
/// halo depth `width` under the tripolar exchange topology: periodic E/W
/// strips, a folded (open) north edge, a closed south boundary clipped at
/// the grid edge, and no corner exchange.
std::int64_t ghost_cell_count(std::int64_t block_w, std::int64_t block_h,
                              int width, std::int64_t y0);

/// Per-rank predicted seconds of running `cuts`, under per-cell costs
/// attributed from the old partition's measured rates, plus the GhostModel
/// surcharge for each block's ghost ring. The ghost-blind planner is the
/// special case ghosts.halo_width == 0.
std::vector<double> predicted_rank_seconds(
    std::span<const double> cell_weight, int nx, int ny,
    const grid::BlockPartition2D& old_partition, const MeasuredCost& cost,
    const grid::BlockCuts& cuts, const GhostModel& ghosts = {});

/// Weighted tensor repartition. `cell_weight` is the nx×ny row-major
/// measured weight of every cell (kmt, 1+aice, ...; 0 for inactive). Each
/// cell's cost is the old owner's measured seconds-per-weight-unit times its
/// weight; the marginal sums along x and y feed weighted_cuts, and candidate
/// plans (greedy re-cut, the old cuts, and their per-axis combinations) are
/// scored by ghost-aware per-rank cost — the deterministic min-max wins.
/// With ghosts.halo_width == 0 the greedy re-cut is always chosen and the
/// result matches the legacy ghost-blind planner exactly.
CutPlan plan_rebalance(std::span<const double> cell_weight, int nx, int ny,
                       const grid::BlockPartition2D& old_partition,
                       const MeasuredCost& cost, const GhostModel& ghosts = {});

struct Decision {
  bool migrate = false;
  const char* reason = "";
  double imbalance = 1.0;
  double predicted_savings_seconds = 0.0;  ///< over policy.amortize_windows
  double migration_cost_seconds = 0.0;
  CutPlan plan;
};

/// Stateful decision maker for one component. All inputs are replicated
/// (MeasuredCost is allgathered, weights and partition are deterministic),
/// so every rank of the component's communicator reaches the same Decision
/// in lockstep — the cooldown counter needs no extra communication.
class LoadBalancer {
 public:
  LoadBalancer(std::string name, RebalancePolicy policy,
               perf::MachineKind machine = perf::MachineKind::kSunwayOceanLight);

  /// Evaluate one rebalancing opportunity. `bytes_per_weight_unit` converts
  /// moved weight into migration traffic for the cost model.
  Decision consider(std::span<const double> cell_weight, int nx, int ny,
                    const grid::BlockPartition2D& old_partition,
                    const MeasuredCost& cost, double bytes_per_weight_unit);

  /// Assessment path for busy-channel-only participants (no block partition
  /// to re-cut): runs the cooldown/negligible/balanced gates and emits the
  /// same balance:<name>:* obs counters, but never proposes a migration.
  /// Keeps a non-migratable straggler (atm) flowing through the identical
  /// decision channel as a migratable one.
  Decision assess(const MeasuredCost& cost);

  /// Ghost model applied when planning cuts (see GhostModel).
  void set_ghost_model(const GhostModel& ghosts) { ghosts_ = ghosts; }
  const GhostModel& ghost_model() const { return ghosts_; }

  /// Tell the cost model what share of migration traffic stays on the fast
  /// intra-supernode path (cut-shift migrations move cells between adjacent
  /// blocks, so a supernode-aware rank mapping keeps most of them local).
  /// Default 0.0 charges everything at the oversubscribed inter-supernode
  /// rate, the conservative pre-topology behaviour.
  void set_intra_migration_fraction(double fraction);
  /// Convenience: derive the fraction from a supernode-aware block mapping.
  void set_block_topology(const grid::SupernodeBlockMap& map) {
    set_intra_migration_fraction(map.intra_neighbor_fraction());
  }
  double intra_migration_fraction() const { return intra_migration_fraction_; }

  const RebalancePolicy& policy() const { return policy_; }

 private:
  std::string name_;  ///< obs counter prefix: balance:<name>:*
  RebalancePolicy policy_;
  perf::NetworkModel net_;
  GhostModel ghosts_;
  double intra_migration_fraction_ = 0.0;
  int cooldown_remaining_ = 0;
};

/// Moves gid-keyed column records between two decompositions of the same
/// global id space. The Router is built from the old→new GlobalSegMaps, so
/// every column lands exactly once; field payloads are forwarded untouched
/// (bit-exact by construction).
class ColumnMigrator {
 public:
  /// Collective over `comm`; both gid lists must be sorted ascending and
  /// partition the same global set.
  ColumnMigrator(const par::Comm& comm,
                 const std::vector<std::int64_t>& old_gids,
                 const std::vector<std::int64_t>& new_gids);

  /// src: one point per old-ownership column; dst: per new-ownership column.
  void migrate(const mct::AttrVect& src, mct::AttrVect& dst) const;

  /// Columns this rank ships to a different rank (self-delivery excluded).
  std::int64_t columns_moved_offrank() const { return columns_moved_offrank_; }

 private:
  mct::Rearranger rearranger_;
  std::int64_t columns_moved_offrank_ = 0;
};

}  // namespace ap3::balance
