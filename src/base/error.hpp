// Error handling primitives for AP3ESM.
//
// All recoverable failures throw ap3::Error (derived from std::runtime_error)
// so callers can catch a single type at component boundaries; programming
// errors use AP3_REQUIRE which always evaluates its condition (it is not
// compiled out in release builds — model integrity beats a branch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ap3 {

/// Base exception for all AP3ESM failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration value is missing or malformed.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown on communication-runtime misuse (bad rank, type mismatch, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical scheme detects instability (NaN, CFL blowup).
class NumericsError : public Error {
 public:
  explicit NumericsError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "AP3_REQUIRE failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ap3

/// Always-on invariant check. `msg` may use stream syntax via AP3_REQUIRE_MSG.
#define AP3_REQUIRE(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::ap3::detail::fail_require(#cond, __FILE__, __LINE__, "");      \
  } while (0)

#define AP3_REQUIRE_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream os__;                                         \
      os__ << msg;                                                     \
      ::ap3::detail::fail_require(#cond, __FILE__, __LINE__, os__.str()); \
    }                                                                  \
  } while (0)
