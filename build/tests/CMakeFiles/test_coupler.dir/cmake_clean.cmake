file(REMOVE_RECURSE
  "CMakeFiles/test_coupler.dir/test_coupler.cpp.o"
  "CMakeFiles/test_coupler.dir/test_coupler.cpp.o.d"
  "test_coupler"
  "test_coupler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
