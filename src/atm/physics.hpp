// Column physics for the atmosphere: the conventional diagnostic suite and
// the physics–dynamics coupling interface that lets either the conventional
// suite or the AI suite (§5.2.1) supply tendencies.
//
// The conventional suite is a compact but physically structured package:
//   - dry convective adjustment (mixes statically unstable layers),
//   - large-scale condensation (supersaturation removal + latent heating),
//   - surface fluxes and boundary-layer diffusion toward the skin state,
//   - gray radiation (solar heating by coszr, Newtonian longwave cooling)
//     which also diagnoses surface shortwave/longwave (gsw, glw).
// It is also the training-truth generator for the AI suite, exactly as the
// paper trains on high-resolution conventional-physics output.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ai/suite.hpp"
#include "pp/pack.hpp"
#include "tensor/optimizer.hpp"

namespace ap3::atm {

/// Batch of vertical columns handed to a physics suite. All level arrays are
/// (ncols × nlev), level 0 = model top, level nlev-1 = surface.
struct ColumnBatch {
  std::size_t ncols = 0;
  std::size_t nlev = 0;
  /// Physics step length [s]. Relaxation-type schemes convert their rate
  /// constants to effective rates (1−exp(−k·dt))/dt so tendencies never
  /// overshoot, whatever the model step is.
  double dt = 1800.0;
  // Inputs (state).
  std::vector<double> u, v;      ///< winds [m/s]
  std::vector<double> temp;      ///< temperature [K]
  std::vector<double> q;         ///< specific humidity [kg/kg]
  std::vector<double> pressure;  ///< level pressure [Pa]
  std::vector<double> tskin;     ///< per-column skin temperature [K]
  std::vector<double> coszr;     ///< per-column cos(solar zenith)
  // Outputs (tendencies and surface diagnostics).
  std::vector<double> du, dv, dtemp, dq;  ///< [unit/s]
  std::vector<double> gsw, glw;           ///< surface fluxes [W/m²]
  std::vector<double> precip;             ///< precipitation rate [kg/m²/s]

  ColumnBatch(std::size_t ncols, std::size_t nlev);
  std::size_t at(std::size_t col, std::size_t lev) const {
    return col * nlev + lev;
  }
  void zero_outputs();
};

/// Physics–dynamics coupling interface: "this suite gets the input variables
/// from the dynamical core and returns full physical variables back".
class PhysicsSuite {
 public:
  virtual ~PhysicsSuite() = default;
  virtual void compute(ColumnBatch& batch) = 0;
  virtual const char* name() const = 0;
  /// Scalar-flops per column (perf-model input; AI suite reports tensor
  /// flops separately).
  virtual double flops_per_column(std::size_t nlev) const = 0;
};

struct ConventionalConfig {
  double qsat_ref = 0.015;          ///< saturation humidity at T_ref [kg/kg]
  double t_ref = 288.0;
  double condensation_rate = 2e-4;  ///< [1/s] relaxation of supersaturation
  double bl_exchange = 5e-5;        ///< surface exchange coefficient [1/s]
  double diffusion = 1e-5;          ///< vertical mixing [1/s]
  double lw_cooling = 2.0e-6;       ///< Newtonian cooling rate [1/s]
  double cloud_albedo_per_q = 8.0;  ///< cloud shortwave blocking per humidity
  /// SIMD pack width for the level-parallel column kernels (radiation
  /// heating, boundary-layer interior diffusion): one of {1,2,4,8,16}, or 0
  /// for the scalar reference sweeps. Bitwise-neutral — lanes are
  /// independent levels; the level-coupled schemes (convective adjustment,
  /// condensation) stay scalarized by construction (DESIGN.md §13).
  std::size_t pack_width = pp::kDefaultPackWidth;
};

class ConventionalPhysics : public PhysicsSuite {
 public:
  explicit ConventionalPhysics(ConventionalConfig config = {});
  void compute(ColumnBatch& batch) override;
  const char* name() const override { return "conventional"; }
  double flops_per_column(std::size_t nlev) const override;

  /// Saturation specific humidity (simplified Clausius–Clapeyron).
  double qsat(double temp_k) const;

 private:
  void convective_adjustment(ColumnBatch& batch, std::size_t col) const;
  void condensation(ColumnBatch& batch, std::size_t col) const;
  void boundary_layer(ColumnBatch& batch, std::size_t col) const;
  void radiation(ColumnBatch& batch, std::size_t col) const;
  ConventionalConfig config_;
};

/// Online fine-tuning of a deployed AI suite: every `every_steps` physics
/// calls, one Adam step fits both networks against the conventional suite's
/// tendencies/fluxes on a sample of the live batch. Deterministic (no RNG,
/// fixed sample = leading columns), so restart stays bit-exact as long as
/// the weights and the optimizer moments are checkpointed (they are — see
/// the coupler's cpl.ai.* sections).
struct OnlineTrainingConfig {
  int every_steps = 1;          ///< fine-tune every K compute() calls
  std::size_t sample_cols = 8;  ///< leading columns of the batch to fit on
  float lr = 1e-4f;
};

/// Adapter running the trained AI suite behind the same interface. All
/// inference goes through the suite's batched InferenceEngine; pass an
/// EngineConfig to pick the execution space / precision policy / overlap.
class AiPhysics : public PhysicsSuite {
 public:
  explicit AiPhysics(std::shared_ptr<ai::AiPhysicsSuite> suite);
  AiPhysics(std::shared_ptr<ai::AiPhysicsSuite> suite,
            const ai::EngineConfig& engine);
  void compute(ColumnBatch& batch) override;
  const char* name() const override { return "ai"; }
  double flops_per_column(std::size_t nlev) const override;

  ai::AiPhysicsSuite& suite() { return *suite_; }

  void enable_online_training(const OnlineTrainingConfig& config = {});
  bool online_training_active() const { return cnn_opt_ != nullptr; }
  /// Serialized fine-tuning state (call counter + both Adam optimizers),
  /// packed as doubles (float -> double is exact) for the checkpoint
  /// container. Empty when online training is off.
  std::vector<double> pack_training_state() const;
  void restore_training_state(std::span<const double> state);

 private:
  void online_step(const ColumnBatch& batch);

  std::shared_ptr<ai::AiPhysicsSuite> suite_;
  OnlineTrainingConfig online_;
  ConventionalPhysics truth_;  ///< training-truth generator
  std::unique_ptr<tensor::Adam> cnn_opt_, mlp_opt_;
  long long calls_ = 0;
};

/// Generate a training corpus by running the conventional suite over
/// synthetic columns drawn from a seasonal climatology (the stand-in for 80
/// days of 5-km GRIST output; see DESIGN.md substitutions).
struct TrainingData {
  tensor::Tensor columns;     ///< (N, 5, nlev): U,V,T,Q,P
  tensor::Tensor tendencies;  ///< (N, 4, nlev)
  tensor::Tensor fluxes;      ///< (N, 2): gsw, glw
  std::vector<double> tskin, coszr;
  std::size_t days = 0, steps_per_day = 0;
};
/// `dt` must match the model step the trained suite will run at: effective
/// tendencies are dt-dependent, and the network does not see dt as an input.
TrainingData generate_training_data(const ConventionalPhysics& physics,
                                    std::size_t days, std::size_t steps_per_day,
                                    std::size_t nlev, std::uint64_t seed,
                                    double dt = 1800.0);

/// Train a fresh AI suite against the conventional suite's outputs using the
/// paper's split protocol; returns the fitted suite plus test-R² skill.
struct TrainedSuite {
  std::shared_ptr<ai::AiPhysicsSuite> suite;
  float tendency_r2 = 0.0f;
  float flux_r2 = 0.0f;
};
TrainedSuite train_ai_physics(const TrainingData& data,
                              const ai::SuiteConfig& config, int epochs,
                              float lr);

}  // namespace ap3::atm
