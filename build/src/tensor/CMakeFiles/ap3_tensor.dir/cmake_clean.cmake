file(REMOVE_RECURSE
  "CMakeFiles/ap3_tensor.dir/layers.cpp.o"
  "CMakeFiles/ap3_tensor.dir/layers.cpp.o.d"
  "CMakeFiles/ap3_tensor.dir/optimizer.cpp.o"
  "CMakeFiles/ap3_tensor.dir/optimizer.cpp.o.d"
  "CMakeFiles/ap3_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ap3_tensor.dir/tensor.cpp.o.d"
  "libap3_tensor.a"
  "libap3_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
