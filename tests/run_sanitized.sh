#!/usr/bin/env bash
# Sanitizer matrix for the concurrency-heavy tests.
#
# Builds the repository once per sanitizer (-DAP3_SANITIZE=thread / address /
# undefined, see the top-level CMakeLists) into build-tsan/, build-asan/ and
# build-ubsan/ next to the source tree, then runs the race-prone test set
# under ctest. The transport
# (ranks are threads sharing mailboxes) and the fault-injection layer are the
# reason this exists: TSan must stay clean on test_par/test_fault or the
# "transparent recovery" story is a data race wearing a trench coat.
#
# Usage:
#   tests/run_sanitized.sh                  # thread + address, default set
#   tests/run_sanitized.sh 'test_fault'     # ctest -R filter override
#   SANITIZERS=thread tests/run_sanitized.sh
#   JOBS=4 tests/run_sanitized.sh
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZERS="${SANITIZERS:-thread address undefined}"
# Default set: everything that exercises the threaded transport, the fault
# machinery, checkpoint collectives, the obs layer's cross-thread buffers, the
# stream/event async engine (pool tasks adopting rank buffers), the AI
# inference engine (overlapped micro-batches on pool workers), and the load
# balancer's column migration (index arithmetic over rearrange plans), the
# ensemble fleet (N members sharing one immutable context per process), and
# the SIMD pack layer (masked tails over exactly-sized allocations — ASan is
# the overread witness; packed launches run on the threaded backends too), and
# the hierarchical collectives (leader staging buffers under fault injection),
# and the property sweeps (coupled fault fuzz plus the ghost-aware cut
# planner's fuzz tuples alongside test_balance's migration paths).
FILTER="${1:-test_par|test_io|test_fault|test_mct|test_restart|test_obs|test_async|test_ai|test_balance|test_fleet|test_pack|test_hier|test_properties}"
JOBS="${JOBS:-$(nproc)}"

for sanitizer in ${SANITIZERS}; do
  case "${sanitizer}" in
    thread)    build_dir="${ROOT}/build-tsan" ;;
    address)   build_dir="${ROOT}/build-asan" ;;
    undefined) build_dir="${ROOT}/build-ubsan" ;;
    *) echo "error: unknown sanitizer '${sanitizer}'" >&2; exit 2 ;;
  esac

  echo "==> [${sanitizer}] configuring ${build_dir}"
  cmake -B "${build_dir}" -S "${ROOT}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DAP3_SANITIZE="${sanitizer}" > /dev/null

  echo "==> [${sanitizer}] building"
  cmake --build "${build_dir}" -j "${JOBS}" -- --quiet

  echo "==> [${sanitizer}] ctest -R '${FILTER}'"
  # halt_on_error makes sanitizer findings hard test failures; second-guess
  # nothing. TSan slows the transport ~10x, so give timeouts headroom.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "${build_dir}" -R "${FILTER}" \
        --output-on-failure --timeout 900
  echo "==> [${sanitizer}] clean"
done

echo "sanitizer matrix passed: ${SANITIZERS} over '${FILTER}'"
