#include "mct/rearranger.hpp"

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::mct {

namespace {
constexpr int kTagRearrange = 9300;

void check_fields(const AttrVect& src, const AttrVect& dst) {
  AP3_REQUIRE_MSG(src.field_names() == dst.field_names(),
                  "rearrange: AttrVect field sets differ");
}
}  // namespace

std::vector<double> Rearranger::pack_for_peer(
    const AttrVect& src, const std::vector<std::int64_t>& plan) const {
  // Payload layout: field-major — all field-0 values in wire order, then
  // field-1, ... Deterministic and identical for both strategies.
  std::vector<double> payload(plan.size() * src.num_fields());
  std::size_t pos = 0;
  for (std::size_t f = 0; f < src.num_fields(); ++f) {
    const auto field = src.field(f);
    for (std::int64_t idx : plan)
      payload[pos++] = field[static_cast<std::size_t>(idx)];
  }
  return payload;
}

void Rearranger::unpack_from_peer(AttrVect& dst,
                                  const std::vector<std::int64_t>& plan,
                                  std::span<const double> payload) const {
  AP3_REQUIRE(payload.size() == plan.size() * dst.num_fields());
  std::size_t pos = 0;
  for (std::size_t f = 0; f < dst.num_fields(); ++f) {
    auto field = dst.field(f);
    for (std::int64_t idx : plan)
      field[static_cast<std::size_t>(idx)] = payload[pos++];
  }
}

void Rearranger::rearrange(const AttrVect& src, AttrVect& dst,
                           Strategy strategy) const {
  if (strategy == Strategy::kAlltoallv) {
    do_alltoallv(src, dst, {par::CollectiveAlgo::kFlat});
    return;
  }
  if (strategy == Strategy::kLeaderStaged) {
    do_alltoallv(src, dst, {par::CollectiveAlgo::kHierarchical});
    return;
  }
  Pending pending = rearrange_begin(src, dst);
  rearrange_end(pending);
}

Rearranger::Pending Rearranger::rearrange_begin(const AttrVect& src,
                                                AttrVect& dst) const {
  AP3_SPAN("mct:rearrange:begin");
  check_fields(src, dst);
  Pending pending;
  pending.dst_ = &dst;
  // Sends: pack per peer and post non-blocking (the transport is eager, so
  // the payload is on the wire when isend returns; the buffers stay owned by
  // the Pending so a lazier transport would also be correct).
  pending.send_payloads_.reserve(router_.send_plan().size());
  for (const auto& [peer, plan] : router_.send_plan()) {
    pending.send_payloads_.push_back(pack_for_peer(src, plan));
    pending.sends_.push_back(comm_.isend(
        std::span<const double>(pending.send_payloads_.back()), peer,
        kTagRearrange));
  }
  // Receives: post one per peer into a stable landing buffer. The Request
  // defers the (sequenced, fault-recovering) take until rearrange_end — the
  // time in between is the overlappable wire window.
  pending.recv_payloads_.reserve(router_.recv_plan().size());
  for (const auto& [peer, plan] : router_.recv_plan()) {
    pending.recv_payloads_.emplace_back(plan.size() * dst.num_fields());
    pending.recvs_.push_back(comm_.irecv(
        std::span<double>(pending.recv_payloads_.back()), peer,
        kTagRearrange));
  }
  return pending;
}

void Rearranger::rearrange_end(Pending& pending) const {
  AP3_SPAN("mct:rearrange:end");
  AP3_REQUIRE_MSG(pending.active(),
                  "rearrange_end: no exchange in flight (Pending already "
                  "consumed or default-constructed)");
  AttrVect& dst = *pending.dst_;
  // Drain receives in recv-plan order (deterministic: std::map by peer); the
  // unpack order therefore never depends on arrival order.
  std::size_t r = 0;
  for (const auto& [peer, plan] : router_.recv_plan()) {
    pending.recvs_[r].wait();
    unpack_from_peer(dst, plan, pending.recv_payloads_[r]);
    ++r;
  }
  par::wait_all(pending.sends_);
  pending = Pending{};
}

void Rearranger::do_alltoallv(const AttrVect& src, AttrVect& dst,
                              par::CollectivePolicy policy) const {
  AP3_SPAN("mct:rearrange:alltoallv");
  check_fields(src, dst);
  // The original strategy: every rank participates in one big collective
  // even if it exchanges data with only a handful of peers. With the
  // hierarchical policy (kLeaderStaged) the collective itself stages the
  // inter-supernode payloads through leaders; the unpacked result is
  // bitwise identical either way.
  std::vector<double> send_data;
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(comm_.size()),
                                       0);
  for (int peer = 0; peer < comm_.size(); ++peer) {
    const auto it = router_.send_plan().find(peer);
    if (it == router_.send_plan().end()) continue;
    const std::vector<double> payload = pack_for_peer(src, it->second);
    send_counts[static_cast<std::size_t>(peer)] = payload.size();
    send_data.insert(send_data.end(), payload.begin(), payload.end());
  }
  std::vector<std::size_t> recv_counts;
  const std::vector<double> recv_data =
      comm_.alltoallv(std::span<const double>(send_data),
                      std::span<const std::size_t>(send_counts), recv_counts,
                      policy);
  std::size_t offset = 0;
  for (int peer = 0; peer < comm_.size(); ++peer) {
    const std::size_t n = recv_counts[static_cast<std::size_t>(peer)];
    if (n == 0) continue;
    const auto it = router_.recv_plan().find(peer);
    AP3_REQUIRE_MSG(it != router_.recv_plan().end(),
                    "unexpected rearrange payload from rank " << peer);
    unpack_from_peer(dst, it->second,
                     {recv_data.data() + offset, n});
    offset += n;
  }
}

}  // namespace ap3::mct
