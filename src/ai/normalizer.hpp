// Per-channel z-score normalization for the AI physics suite.
//
// Physical inputs span wildly different magnitudes (pressure ~1e5 Pa,
// humidity ~1e-3 kg/kg); the networks see normalized values and their
// outputs are denormalized back to physical tendencies/fluxes.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace ap3::ai {

class ChannelNormalizer {
 public:
  ChannelNormalizer() = default;

  /// Fit per-channel mean/std over a (N, C, L) tensor.
  static ChannelNormalizer fit(const tensor::Tensor& data);
  /// Fit per-feature over a (N, F) tensor (each feature its own channel).
  static ChannelNormalizer fit_flat(const tensor::Tensor& data);

  /// Normalize in place; shape must match the fitted layout.
  void apply(tensor::Tensor& data) const;
  void invert(tensor::Tensor& data) const;

  std::size_t num_channels() const { return means_.size(); }
  float mean(std::size_t c) const { return means_[c]; }
  float stddev(std::size_t c) const { return stds_[c]; }

  // Raw access for (de)serialization.
  bool is_flat() const { return flat_; }
  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stddevs() const { return stds_; }
  static ChannelNormalizer from_raw(bool flat, std::vector<float> means,
                                    std::vector<float> stds) {
    ChannelNormalizer out;
    out.flat_ = flat;
    out.means_ = std::move(means);
    out.stds_ = std::move(stds);
    return out;
  }

 private:
  bool flat_ = false;
  std::vector<float> means_;
  std::vector<float> stds_;
};

}  // namespace ap3::ai
