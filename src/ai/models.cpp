#include "ai/models.hpp"

namespace ap3::ai {

using tensor::Conv1D;
using tensor::Dense;
using tensor::ReLU;
using tensor::ResUnit;

TendencyCnn::TendencyCnn(const SuiteConfig& config) : config_(config) {
  Rng rng(config.seed);
  const auto cin = static_cast<std::size_t>(config.input_channels);
  const auto hidden = static_cast<std::size_t>(config.cnn_hidden);
  const auto cout = static_cast<std::size_t>(config.tendency_channels);
  const auto k = static_cast<std::size_t>(config.cnn_kernel);

  // Conv layer 1: lift input channels to the hidden width.
  model_.add(std::make_unique<Conv1D>(cin, hidden, k, rng));
  model_.add(std::make_unique<ReLU>());
  // Conv layers 2..11: five ResUnits of two convs each. The second conv of
  // each unit starts at zero (Fixup-style) so the deep stack begins as an
  // identity map and trains stably.
  for (int unit = 0; unit < 5; ++unit) {
    std::vector<std::unique_ptr<tensor::Layer>> inner;
    inner.push_back(std::make_unique<Conv1D>(hidden, hidden, k, rng));
    inner.push_back(std::make_unique<ReLU>());
    auto out_conv = std::make_unique<Conv1D>(hidden, hidden, k, rng);
    out_conv->kernel.zero();
    inner.push_back(std::move(out_conv));
    model_.add(std::make_unique<ResUnit>(std::move(inner)));
  }
  // 1x1 projection to tendencies (readout, not counted as a "deep" layer);
  // zero-initialized so the untrained suite predicts the (normalized) mean.
  auto readout = std::make_unique<Conv1D>(hidden, cout, 1, rng);
  readout->kernel.zero();
  model_.add(std::move(readout));
}

double TendencyCnn::flops_per_column() const {
  // Each conv output element costs 2*Cin*K flops; L outputs per channel.
  const double levels = config_.levels;
  const double hidden = config_.cnn_hidden;
  const double k = config_.cnn_kernel;
  double flops = 2.0 * config_.input_channels * k * hidden * levels;  // lift
  flops += 10.0 * 2.0 * hidden * k * hidden * levels;                 // ResUnits
  flops += 2.0 * hidden * config_.tendency_channels * levels;         // readout
  return flops;
}

RadiationMlp::RadiationMlp(const SuiteConfig& config) : config_(config) {
  Rng rng(config.seed + 1);
  const auto in = static_cast<std::size_t>(config.mlp_inputs());
  const auto hidden = static_cast<std::size_t>(config.mlp_hidden);

  // Layer 1: input embedding.
  model_.add(std::make_unique<Dense>(in, hidden, rng));
  model_.add(std::make_unique<ReLU>());
  // Layers 2..5: two residual blocks of two dense layers each; the second
  // dense of each block starts at zero (identity-at-init residuals).
  for (int block = 0; block < 2; ++block) {
    std::vector<std::unique_ptr<tensor::Layer>> inner;
    inner.push_back(std::make_unique<Dense>(hidden, hidden, rng));
    inner.push_back(std::make_unique<ReLU>());
    auto out_dense = std::make_unique<Dense>(hidden, hidden, rng);
    out_dense->weight.zero();
    inner.push_back(std::move(out_dense));
    model_.add(std::make_unique<ResUnit>(std::move(inner)));
  }
  // Layer 6: narrowing layer; layer 7: flux readout (gsw, glw).
  model_.add(std::make_unique<Dense>(hidden, hidden / 2, rng));
  model_.add(std::make_unique<ReLU>());
  auto readout = std::make_unique<Dense>(hidden / 2, 2, rng);
  readout->weight.zero();
  model_.add(std::move(readout));
}

double RadiationMlp::flops_per_column() const {
  const double in = config_.mlp_inputs();
  const double hidden = config_.mlp_hidden;
  double flops = 2.0 * in * hidden;            // embedding
  flops += 4.0 * 2.0 * hidden * hidden;        // residual blocks
  flops += 2.0 * hidden * (hidden / 2.0);      // narrowing
  flops += 2.0 * (hidden / 2.0) * 2.0;         // readout
  return flops;
}

}  // namespace ap3::ai
