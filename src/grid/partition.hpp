// Domain decomposition: 1-D balanced partitions (icosahedral cell ranges),
// 2-D block partitions (tripolar grid), and the §5.2.2 active-column
// compaction that removes 3-D non-ocean points and remaps MPI ranks.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/tripolar.hpp"

namespace ap3::grid {

/// Balanced contiguous partition of [0, n) over `parts` ranks.
struct Range1D {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

Range1D partition_1d(std::int64_t n, int parts, int rank);
int owner_1d(std::int64_t n, int parts, std::int64_t index);

/// 2-D block decomposition of an nx × ny grid over px × py ranks.
class BlockPartition2D {
 public:
  BlockPartition2D(int nx, int ny, int px, int py);

  /// Choose a near-square (px, py) factorization of `nranks`.
  static BlockPartition2D balanced(int nx, int ny, int nranks);

  int px() const { return px_; }
  int py() const { return py_; }
  int nranks() const { return px_ * py_; }

  Range1D x_range(int rank) const;
  Range1D y_range(int rank) const;
  int rank_of_block(int bx, int by) const { return by * px_ + bx; }
  int block_x(int rank) const { return rank % px_; }
  int block_y(int rank) const { return rank / px_; }

  /// Rank owning global column (i, j).
  int owner(int i, int j) const;

 private:
  int nx_, ny_, px_, py_;
};

/// §5.2.2 — exclusion of 3-D non-ocean points.
///
/// Active (ocean) columns are extracted in row-major order, then partitioned
/// so every rank receives an equal *active 3-D workload* (sum of kmt), not an
/// equal area. `old_rank_of` records where each column would have lived in
/// the naive block decomposition — the difference is the paper's "MPI rank
/// mapping" that guarantees correct data access after compaction.
struct CompactColumn {
  int i = 0;
  int j = 0;
  int kmt = 0;
};

class ActiveCompaction {
 public:
  ActiveCompaction(const TripolarGrid& grid, int nranks);

  int nranks() const { return nranks_; }
  /// Columns owned by `rank` after compaction (workload-balanced).
  const std::vector<CompactColumn>& columns(int rank) const {
    return per_rank_[static_cast<size_t>(rank)];
  }
  /// Total active columns across all ranks.
  std::int64_t total_columns() const { return total_columns_; }
  /// Total active 3-D points.
  std::int64_t total_points() const { return total_points_; }
  /// Fraction of 3-D points eliminated (the paper reports ~30 %).
  double removed_fraction() const { return removed_fraction_; }
  /// Max/mean per-rank 3-D point load — compaction should balance this.
  double load_imbalance() const;

 private:
  int nranks_;
  std::vector<std::vector<CompactColumn>> per_rank_;
  std::int64_t total_columns_ = 0;
  std::int64_t total_points_ = 0;
  double removed_fraction_ = 0.0;
};

}  // namespace ap3::grid
