#include "coupler/driver.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <string_view>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/hash.hpp"
#include "obs/obs.hpp"

namespace ap3::cpl {

using constants::kDegToRad;
using constants::kRadToDeg;

namespace {

/// Fields the ocean forcing computation needs from the atmosphere.
const std::vector<std::string> kOcnForcingFields = {
    "taux", "tauy", "tbot", "qbot", "gsw", "glw", "precip"};

}  // namespace

void validate_coupled_config(const CoupledConfig& config, int world_size) {
  if (config.ocn_couple_ratio < 1)
    throw ConfigError("CoupledConfig: ocn_couple_ratio must be >= 1 (the "
                      "ocean couples every N atm windows), got " +
                      std::to_string(config.ocn_couple_ratio));
  if (config.regrid_neighbors < 1)
    throw ConfigError("CoupledConfig: regrid_neighbors must be >= 1, got " +
                      std::to_string(config.regrid_neighbors));
  if (config.rebalance_every < 0)
    throw ConfigError("CoupledConfig: rebalance_every must be >= 0 (0 turns "
                      "rebalancing off), got " +
                      std::to_string(config.rebalance_every));
  if (config.ice_dt_seconds < 0.0)
    throw ConfigError("CoupledConfig: ice_dt_seconds must be >= 0 (0 means "
                      "one ice step per window), got " +
                      std::to_string(config.ice_dt_seconds));
  if (config.atm_ranks < 0)
    throw ConfigError("CoupledConfig: atm_ranks must be >= 0 (0 picks half "
                      "the world), got " + std::to_string(config.atm_ranks));
  if (config.layout == Layout::kConcurrent) {
    if (world_size < 2)
      throw ConfigError("CoupledConfig: the concurrent layout needs at least "
                        "2 ranks (atm and ocn domains must both be "
                        "non-empty), got " + std::to_string(world_size));
    if (config.atm_ranks >= world_size)
      throw ConfigError("CoupledConfig: atm_ranks (" +
                        std::to_string(config.atm_ranks) +
                        ") must leave at least one rank for the ocean domain "
                        "(world size " + std::to_string(world_size) + ")");
  }
}

CoupledModel::CoupledModel(const par::Comm& global, const CoupledConfig& config)
    : CoupledModel(global, [&config] {
        ScenarioSpec s;
        s.config = config;
        return s;
      }()) {}

CoupledModel::CoupledModel(const par::Comm& global, ScenarioSpec spec)
    : global_(global),
      spec_(std::move(spec)),
      clock_(0.0, spec_.config.atm.model_dt_seconds()),
      window_seconds_(spec_.config.atm.model_dt_seconds()) {
  validate_coupled_config(config_, global.size());
  if (spec_.shared) {
    const SharedInputsSpec want{config_.atm.mesh_n, config_.ocn.grid,
                                config_.regrid_neighbors};
    if (!(spec_.shared->spec() == want))
      throw ConfigError(
          "ScenarioSpec: the shared context was built for a different "
          "mesh_n/ocean grid/regrid_neighbors than this member's config");
  }

  // --- task domains (§5.1.2) -------------------------------------------------
  if (config_.layout == Layout::kSequential) {
    atm_comm_ = global.split(0, global.rank());
    ocn_comm_ = global.split(0, global.rank());
  } else {
    int na = config_.atm_ranks > 0 ? config_.atm_ranks : global.size() / 2;
    na = std::clamp(na, 1, global.size() - 1);
    const int color = global.rank() < na ? 0 : 1;
    par::Comm sub = global.split(color, global.rank());
    if (color == 0) {
      atm_comm_ = sub;
    } else {
      ocn_comm_ = sub;
    }
  }

  // --- components --------------------------------------------------------------
  shared_ = spec_.shared;
  if (shared_) {
    mesh_ = shared_->mesh();
    ocn_grid_ = shared_->ocean_grid();
  } else {
    mesh_ = std::make_shared<const grid::IcosahedralGrid>(config_.atm.mesh_n);
    ocn_grid_ = std::make_shared<const grid::TripolarGrid>(config_.ocn.grid);
  }
  if (atm_comm_) {
    atm_ = std::make_unique<atm::AtmModel>(*atm_comm_, config_.atm, *mesh_);
    ice_ = std::make_unique<ice::IceModel>(*atm_comm_, make_ice_config(),
                                           ocn_grid_);
  }
  if (ocn_comm_)
    ocn_ = std::make_unique<ocn::OcnModel>(*ocn_comm_, config_.ocn, ocn_grid_);

  if (spec_.adopt_plans) {
    plans_ = spec_.adopt_plans;
  } else {
    build_coupling_infrastructure();
  }

  // The scenario's initial-condition perturbation (after construction, before
  // anything runs; keyed on global ids so it is decomposition-invariant).
  if (spec_.perturbation_seed != 0 && atm_)
    atm_->dycore().perturb_temperature(spec_.perturbation_seed,
                                       spec_.perturbation_kelvin);

  register_balance_participants();

  const std::size_t natm = atm_ ? atm_->dycore().mesh().num_owned() : 0;
  a2x_accum_ = mct::AttrVect(atm::AtmModel::export_fields(), natm);
  sst_on_atm_.assign(natm, 0.0);
  const std::size_t nice = ice_ ? ice_->ocean_gids().size() : 0;
  sst_on_ice_.assign(nice, 285.0);
  us_on_ice_.assign(nice, 0.0);
  vs_on_ice_.assign(nice, 0.0);

  clock_.add_alarm("ocn", config_.ocn_couple_ratio);

  // Timing excludes initialization (§6.2): only spans recorded from here on
  // feed this model's getTiming pipeline.
  obs_first_event_ = obs::local().event_count();
  for (BalanceParticipant& p : balance_) {
    p.mark = obs_first_event_;
    if (balance::Rebalanceable* m = p.model())
      p.busy_seen = obs::local().counter(m->busy_counter_key());
  }
}

void CoupledModel::register_balance_participants() {
  // Fixed atm, ocn, ice order on every rank: the collective decision loop,
  // the checkpointed busy-watermark ids, and the "bal.<name>" layout scalars
  // all index into this registry. model() chases the owning unique_ptr so the
  // entries stay valid through migrations and restore-time rebuilds.
  balance_.clear();
  {
    BalanceParticipant p;
    p.name = "atm";
    p.phase_span = "run:atm_ice_phase:atm_run";
    p.layout_root = 0;
    p.migratable = false;  // 1-D icosahedral partition: no block cuts
    p.model = [this]() -> balance::Rebalanceable* { return atm_.get(); };
    p.comm = atm_comm_ ? &*atm_comm_ : nullptr;
    balance_.push_back(std::move(p));
  }
  {
    BalanceParticipant p;
    p.name = "ocn";
    p.phase_span = "run:ocn_phase:ocn_run";
    // The last rank is always in the ocean domain in both layouts.
    p.layout_root = global_.size() - 1;
    p.migratable = true;
    p.model = [this]() -> balance::Rebalanceable* { return ocn_.get(); };
    p.comm = ocn_comm_ ? &*ocn_comm_ : nullptr;
    p.rebuild = [this](const grid::BlockCuts& cuts) {
      ocn_ = std::make_unique<ocn::OcnModel>(*ocn_comm_, config_.ocn, cuts,
                                             ocn_grid_);
    };
    balance_.push_back(std::move(p));
  }
  {
    BalanceParticipant p;
    p.name = "ice";
    p.phase_span = "run:atm_ice_phase:ice_run";
    p.layout_root = 0;  // rank 0 is always in the atm domain (ice lives there)
    p.migratable = true;
    p.model = [this]() -> balance::Rebalanceable* { return ice_.get(); };
    p.comm = atm_comm_ ? &*atm_comm_ : nullptr;
    p.rebuild = [this](const grid::BlockCuts& cuts) {
      ice_ = std::make_unique<ice::IceModel>(*atm_comm_, make_ice_config(),
                                             cuts, ocn_grid_);
    };
    balance_.push_back(std::move(p));
  }
  if (config_.rebalance_every > 0) {
    for (BalanceParticipant& p : balance_) {
      if (!p.model()) continue;
      p.balancer.emplace(p.name, config_.rebalance);
      if (p.migratable) {
        // Both block components exchange width-1 BlockHalo ghosts.
        balance::GhostModel ghosts;
        ghosts.halo_width = 1;
        p.balancer->set_ghost_model(ghosts);
      }
    }
  }
}

ice::IceConfig CoupledModel::make_ice_config() const {
  // Start from the user's ice knobs (straggler stall, rates); the grid and
  // timestep are always driver-derived.
  ice::IceConfig ice_config = config_.ice;
  ice_config.grid = config_.ocn.grid;
  ice_config.dt_seconds =
      config_.ice_dt_seconds > 0.0 ? config_.ice_dt_seconds : window_seconds_;
  return ice_config;
}

void CoupledModel::build_coupling_infrastructure() {
  // Always a fresh plans object: members adopted the previous one by pointer,
  // so a rebuild here (rebalance, restore_layout) detaches this member from
  // the fleet's common plans instead of mutating them under its peers.
  auto plans = std::make_shared<CouplingPlans>();

  // Global decomposition descriptors: ranks outside a domain own nothing.
  std::vector<std::int64_t> atm_ids, ocn_ids, ice_ids;
  if (atm_) {
    const auto& local = atm_->dycore().mesh();
    atm_ids.resize(local.num_owned());
    for (std::size_t c = 0; c < atm_ids.size(); ++c)
      atm_ids[c] = local.global_id(c);
  }
  if (ocn_) ocn_ids = ocn_->ocean_gids();
  if (ice_) ice_ids = ice_->ocean_gids();
  plans->atm_map = mct::GlobalSegMap::build(global_, atm_ids);
  plans->ocn_map = mct::GlobalSegMap::build(global_, ocn_ids);
  plans->ice_map = mct::GlobalSegMap::build(global_, ice_ids);

  // Interpolation weights between the two grids: taken from the shared
  // context when present (they depend only on the grids, not on the
  // decomposition), otherwise computed here — every rank computes the same
  // global matrices; production AP3ESM precomputes these offline, the same
  // way §5.2.4 precomputes GSMaps and routers.
  mct::SparseMatrix a2o_private, o2a_private;
  if (!shared_) {
    build_regrid_matrices(*mesh_, *ocn_grid_, config_.regrid_neighbors,
                          a2o_private, o2a_private);
  }
  const mct::SparseMatrix& a2o_matrix =
      shared_ ? shared_->a2o_matrix() : a2o_private;
  const mct::SparseMatrix& o2a_matrix =
      shared_ ? shared_->o2a_matrix() : o2a_private;

  plans->a2o = std::make_unique<mct::RegridOp>(global_, a2o_matrix,
                                               plans->atm_map, plans->ocn_map);
  plans->a2i = std::make_unique<mct::RegridOp>(global_, a2o_matrix,
                                               plans->atm_map, plans->ice_map);
  plans->o2a = std::make_unique<mct::RegridOp>(global_, o2a_matrix,
                                               plans->ocn_map, plans->atm_map);
  plans->i2a = std::make_unique<mct::RegridOp>(global_, o2a_matrix,
                                               plans->ice_map, plans->atm_map);

  // Same-grid routers between the ocean's and the ice's decompositions.
  plans->o2i = std::make_unique<mct::Rearranger>(
      global_,
      mct::Router::build(global_.rank(), plans->ocn_map, plans->ice_map));
  plans->i2o = std::make_unique<mct::Rearranger>(
      global_,
      mct::Router::build(global_.rank(), plans->ice_map, plans->ocn_map));

  plans_ = std::move(plans);
}

void CoupledModel::install_ai_physics(const AiInstallOptions& options) {
  if (!atm_) return;
  AP3_REQUIRE_MSG(options.suite != nullptr,
                  "install_ai_physics: options.suite must not be null");
  // The driver's overlap mode extends into the engine: micro-batch forwards
  // run on the engine's streams while the rank thread packs the next slot.
  ai::EngineConfig engine = options.engine;
  if (config_.overlap) engine.overlap = true;
  auto physics = std::make_unique<atm::AiPhysics>(options.suite, engine);
  if (options.online) physics->enable_online_training(*options.online);
  atm_->set_physics(std::move(physics));
}

void CoupledModel::run_windows(int atm_windows) {
  AP3_SPAN("run");
  for (int w = 0; w < atm_windows; ++w) {
    if (clock_.ringing(0)) {
      if (config_.rebalance_every > 0) {
        // Decide at ocean coupling-window boundaries, after at least one full
        // window of measured phase costs has accumulated.
        const long long done = clock_.steps_taken() / config_.ocn_couple_ratio;
        if (done > 0 && done % config_.rebalance_every == 0) {
          AP3_SPAN("run:rebalance");
          maybe_rebalance();
        }
      }
      AP3_SPAN("run:ocn_phase");
      ocn_phase();
    }
    {
      AP3_SPAN("run:atm_ice_phase");
      atm_ice_phase();
    }
    clock_.advance();
  }
}

TimerRegistry& CoupledModel::timers() {
  refresh_timers();
  return timers_;
}

void CoupledModel::refresh_timers() {
  // Rebuild the compatibility registry from this rank's span aggregates.
  // Only the driver's "run*" phase namespace feeds the paper-facing report;
  // kernel/launch spans stay in obs's own exporters.
  timers_.reset();
  obs::fill_registry(obs::local(), obs_first_event_, timers_, "run");
}

TimingSummary CoupledModel::timing_summary() {
  refresh_timers();
  return summarize_timing(global_, timers_,
                          static_cast<double>(clock_.steps_taken()) *
                              window_seconds_);
}

void CoupledModel::ocn_phase() {
  // --- 1. ocean forcing from the accumulated atmosphere exports -----------------
  if (accum_count_ == 0 && atm_) {
    // First coupling event: use the instantaneous initial export.
    atm_->export_state(a2x_accum_);
    accum_count_ = 1;
  }
  if (atm_ && accum_count_ > 1) {
    const double inv = 1.0 / static_cast<double>(accum_count_);
    for (std::size_t f = 0; f < a2x_accum_.num_fields(); ++f)
      for (double& v : a2x_accum_.field(f)) v *= inv;
  }

  const std::size_t nocn = ocn_ ? ocn_->ocean_gids().size() : 0;
  const std::size_t nice = ice_ ? ice_->ocean_gids().size() : 0;

  // Ice fraction export (pure local) — computed up front so the i2o exchange
  // can be posted before the forcing regrids when overlapping.
  mct::AttrVect ifrac_ice({"ifrac"}, nice);
  if (ice_) {
    mct::AttrVect i2x(ice::IceModel::export_fields(), nice);
    ice_->export_state(i2x);
    std::copy(i2x.field("ifrac").begin(), i2x.field("ifrac").end(),
              ifrac_ice.field("ifrac").begin());
  }
  mct::AttrVect ifrac_ocn({"ifrac"}, nocn);

  // Regrid forcing fields to the ocean decomposition (collective-by-plan).
  mct::AttrVect forcing_on_ocn(kOcnForcingFields, nocn);
  auto regrid_forcing = [&] {
    for (const std::string& field : kOcnForcingFields) {
      const std::vector<double> mapped = plans_->a2o->apply(a2x_accum_.field(field));
      AP3_REQUIRE(mapped.size() == nocn);
      std::copy(mapped.begin(), mapped.end(),
                forcing_on_ocn.field(field).begin());
    }
  };

  // Pre-run ocean export feeding the flux computation (pure local).
  mct::AttrVect o2x_pre(ocn::OcnModel::export_fields(), nocn);

  if (config_.overlap) {
    // Post the ice-fraction exchange, then fill its wire window with the
    // forcing regrids (rank thread) and the ocean export (async). The
    // rearranged data is bitwise independent of this reordering: rearrange
    // and halo traffic use disjoint tags, so every (comm,src,dst,tag)
    // sequence stream keeps its internal order and fault decisions replay.
    obs::counter_add("overlap:ocn_phase", 1.0);
    mct::Rearranger::Pending ifrac_exchange =
        plans_->i2o->rearrange_begin(ifrac_ice, ifrac_ocn);
    pp::Event export_done;
    if (ocn_)
      export_done = stream_.enqueue("overlap:ocn_export",
                                    [&] { ocn_->export_state(o2x_pre); });
    regrid_forcing();
    plans_->i2o->rearrange_end(ifrac_exchange);
    export_done.wait();
  } else {
    regrid_forcing();
    plans_->i2o->rearrange(ifrac_ice, ifrac_ocn);
    if (ocn_) ocn_->export_state(o2x_pre);
  }

  // Bulk fluxes on the ocean side, then import.
  if (ocn_) {
    mct::AttrVect x2o(ocn::OcnModel::import_fields(), nocn);
    FluxInputs in;
    in.taux = forcing_on_ocn.field("taux");
    in.tauy = forcing_on_ocn.field("tauy");
    in.tbot = forcing_on_ocn.field("tbot");
    in.qbot = forcing_on_ocn.field("qbot");
    in.gsw = forcing_on_ocn.field("gsw");
    in.glw = forcing_on_ocn.field("glw");
    in.precip = forcing_on_ocn.field("precip");
    in.sst = o2x_pre.field("sst");
    in.ifrac = ifrac_ocn.field("ifrac");
    FluxOutputs out{x2o.field("qnet"), x2o.field("fresh"), x2o.field("taux"),
                    x2o.field("tauy")};
    compute_air_sea_fluxes(flux_config_, in, out);
    ocn_->import_state(x2o);
  }
  if (atm_) {
    a2x_accum_.zero();
    accum_count_ = 0;
  }

  // --- 2. ocean integration over its coupling window ----------------------------
  if (ocn_) {
    AP3_SPAN("run:ocn_phase:ocn_run");
    ocn_->run(clock_.now(), ocn_window_seconds());
  }

  // --- 3. ocean exports back to atmosphere and ice --------------------------------
  mct::AttrVect o2x(ocn::OcnModel::export_fields(), nocn);
  if (ocn_) ocn_->export_state(o2x);
  mct::AttrVect o2x_for_ice(ocn::OcnModel::export_fields(), nice);
  std::vector<double> sst_atm;
  if (config_.overlap) {
    // The sst regrid to the atmosphere runs inside the o2i wire window.
    mct::Rearranger::Pending ice_exchange =
        plans_->o2i->rearrange_begin(o2x, o2x_for_ice);
    sst_atm = plans_->o2a->apply(o2x.field("sst"));
    plans_->o2i->rearrange_end(ice_exchange);
  } else {
    sst_atm = plans_->o2a->apply(o2x.field("sst"));
    plans_->o2i->rearrange(o2x, o2x_for_ice);
  }
  if (atm_) {
    AP3_REQUIRE(sst_atm.size() == sst_on_atm_.size());
    sst_on_atm_ = sst_atm;
  }
  if (ice_) {
    sst_on_ice_.assign(o2x_for_ice.field("sst").begin(),
                       o2x_for_ice.field("sst").end());
    us_on_ice_.assign(o2x_for_ice.field("us").begin(),
                      o2x_for_ice.field("us").end());
    vs_on_ice_.assign(o2x_for_ice.field("vs").begin(),
                      o2x_for_ice.field("vs").end());
  }
}

void CoupledModel::atm_ice_phase() {
  const std::size_t natm = atm_ ? atm_->dycore().mesh().num_owned() : 0;
  mct::AttrVect a2x(atm::AtmModel::export_fields(), natm);
  pp::Event accum_done;
  if (atm_) {
    AP3_SPAN("run:atm_ice_phase:atm_run");
    atm_->run(clock_.now(), window_seconds_);
    atm_->export_state(a2x);
    if (config_.overlap) {
      // Accumulate into a2x_accum_ inside the a2i regrid window. Every
      // flattened element is written exactly once, so concurrent execution
      // is order-insensitive and the sums are bitwise identical.
      obs::counter_add("overlap:atm_ice_phase", 1.0);
      accum_done = pp::parallel_for_async(
          stream_,
          pp::RangePolicy(0, a2x.num_fields() * natm)
              .named("overlap:a2x_accum"),
          [this, &a2x, natm](std::size_t i) {
            const std::size_t f = i / natm;
            const std::size_t p = i % natm;
            a2x_accum_.field(f)[p] += a2x.field(f)[p];
          });
    } else {
      for (std::size_t f = 0; f < a2x.num_fields(); ++f) {
        auto acc = a2x_accum_.field(f);
        const auto cur = a2x.field(f);
        for (std::size_t p = 0; p < acc.size(); ++p) acc[p] += cur[p];
      }
    }
    ++accum_count_;
  }

  // Ice: air temperature regridded from the fresh atmosphere export (the
  // async accumulation, when overlapping, runs inside this regrid's wire
  // time; it only touches a2x_accum_, which the regrid does not read).
  const std::vector<double> tbot_ice = plans_->a2i->apply(a2x.field("tbot"));
  accum_done.wait();
  const std::size_t nice = ice_ ? ice_->ocean_gids().size() : 0;
  mct::AttrVect i2x(ice::IceModel::export_fields(), nice);
  if (ice_) {
    mct::AttrVect x2i(ice::IceModel::import_fields(), nice);
    std::copy(sst_on_ice_.begin(), sst_on_ice_.end(),
              x2i.field("sst").begin());
    std::copy(tbot_ice.begin(), tbot_ice.end(), x2i.field("tbot").begin());
    std::copy(us_on_ice_.begin(), us_on_ice_.end(), x2i.field("us").begin());
    std::copy(vs_on_ice_.begin(), vs_on_ice_.end(), x2i.field("vs").begin());
    ice_->import_state(x2i);
    {
      AP3_SPAN("run:atm_ice_phase:ice_run");
      ice_->run(clock_.now(), window_seconds_);
    }
    ice_->export_state(i2x);
  }

  // Atmosphere surface imports: cached SST + fresh ice fraction. When
  // overlapping, the cached-SST copy runs inside the i2a regrid window.
  mct::AttrVect x2a(atm::AtmModel::import_fields(), natm);
  pp::Event sst_copy_done;
  if (config_.overlap && atm_) {
    auto sst_dst = x2a.field("sst");
    sst_copy_done = pp::parallel_for_async(
        stream_, pp::RangePolicy(0, natm).named("overlap:x2a_sst"),
        [this, sst_dst](std::size_t p) { sst_dst[p] = sst_on_atm_[p]; });
  }
  const std::vector<double> ifrac_atm = plans_->i2a->apply(i2x.field("ifrac"));
  if (atm_) {
    if (config_.overlap) {
      sst_copy_done.wait();
    } else {
      std::copy(sst_on_atm_.begin(), sst_on_atm_.end(),
                x2a.field("sst").begin());
    }
    std::copy(ifrac_atm.begin(), ifrac_atm.end(), x2a.field("ifrac").begin());
    atm_->import_state(x2a);
  }
}

// ---- runtime load rebalancing (src/balance) ---------------------------------

void CoupledModel::maybe_rebalance() {
  std::vector<double> go(balance_.size(), 0.0);
  std::vector<grid::BlockCuts> accepted(balance_.size());

  for (std::size_t idx = 0; idx < balance_.size(); ++idx) {
    BalanceParticipant& p = balance_[idx];
    balance::Rebalanceable* model = p.model();
    if (!model || !p.balancer) continue;
    // Wall-clock spans converge across ranks when halo waits couple a fast
    // rank to a straggler; the busy-time counter restores the per-rank signal.
    const double busy_total = obs::local().counter(model->busy_counter_key());
    const balance::MeasuredCost cost = balance::measured_phase_cost(
        *p.comm, p.phase_span, p.mark, busy_total - p.busy_seen);
    p.busy_seen = busy_total;
    if (const grid::BlockPartition2D* part = model->block_partition()) {
      const grid::BlockCuts& old_cuts = part->cuts();
      const auto nx = static_cast<int>(old_cuts.x.back());
      const auto ny = static_cast<int>(old_cuts.y.back());
      // Measured weights are per-owned-column contributions; the sum makes
      // the full nx×ny field identical on every domain rank (unowned cells
      // contribute exactly +0.0, so the reduction is bitwise deterministic).
      std::vector<double> weight(static_cast<std::size_t>(nx) *
                                     static_cast<std::size_t>(ny),
                                 0.0);
      model->add_measured_cell_weights(weight);
      std::vector<double> summed(weight.size());
      p.comm->allreduce(std::span<const double>(weight),
                        std::span<double>(summed), par::ReduceOp::kSum);
      const balance::Decision d =
          p.balancer->consider(summed, nx, ny, *part, cost,
                               model->migration_bytes_per_weight_unit());
      if (d.migrate) {
        go[idx] = 1.0;
        accepted[idx] = d.plan.cuts;
      }
    } else {
      // No block decomposition: run the gates and counters only.
      p.balancer->assess(cost);
    }
  }
  // Start the next measurement window from here either way.
  const std::size_t mark = obs::local().event_count();
  for (BalanceParticipant& p : balance_) p.mark = mark;

  // The per-domain decisions are deterministic functions of allgathered costs
  // and lockstep balancer state, so they agree within each domain; this
  // reduction only spreads them to the other domain's ranks.
  std::vector<double> any(balance_.size());
  global_.allreduce(std::span<const double>(go), std::span<double>(any),
                    par::ReduceOp::kMax);
  bool migrate_any = false;
  for (const double a : any) migrate_any = migrate_any || a > 0.5;
  if (!migrate_any) return;

  // Snapshot the coupler's ice-side caches before ownership changes.
  const mct::GlobalSegMap old_ice_map = plans_->ice_map;
  const std::size_t old_nice = ice_ ? ice_->ocean_gids().size() : 0;
  mct::AttrVect old_caches({"sst", "us", "vs"}, old_nice);
  if (ice_) {
    std::copy(sst_on_ice_.begin(), sst_on_ice_.end(),
              old_caches.field("sst").begin());
    std::copy(us_on_ice_.begin(), us_on_ice_.end(),
              old_caches.field("us").begin());
    std::copy(vs_on_ice_.begin(), vs_on_ice_.end(),
              old_caches.field("vs").begin());
  }

  for (std::size_t idx = 0; idx < balance_.size(); ++idx)
    if (any[idx] > 0.5 && balance_[idx].model())
      migrate_participant(balance_[idx], accepted[idx]);
  build_coupling_infrastructure();

  // Re-home the cached ice-side fields (collective on the global
  // communicator; ocean-domain ranks own no ice columns on either side).
  // When the ice layout did not change this is pure self-delivery — exact
  // and cheap — so no per-component special case is needed.
  {
    mct::Rearranger cache_move(
        global_,
        mct::Router::build(global_.rank(), old_ice_map, plans_->ice_map));
    const std::size_t nice = ice_ ? ice_->ocean_gids().size() : 0;
    mct::AttrVect new_caches({"sst", "us", "vs"}, nice);
    cache_move.rearrange(old_caches, new_caches);
    sst_on_ice_.assign(new_caches.field("sst").begin(),
                       new_caches.field("sst").end());
    us_on_ice_.assign(new_caches.field("us").begin(),
                      new_caches.field("us").end());
    vs_on_ice_.assign(new_caches.field("vs").begin(),
                      new_caches.field("vs").end());
  }

  ++rebalance_migrations_;
  obs::counter_add("balance:rebalances", 1.0);
}

void CoupledModel::migrate_participant(BalanceParticipant& p,
                                       const grid::BlockCuts& cuts) {
  AP3_SPAN("run:rebalance:migrate");
  // Export through the old decomposition before rebuild() destroys it.
  balance::Rebalanceable* old_model = p.model();
  const std::vector<std::string> fields = old_model->migration_field_names();
  const std::vector<std::int64_t> old_gids = old_model->migration_gids();
  const long long steps = old_model->steps_completed();
  mct::AttrVect src(fields, old_gids.size());
  old_model->export_migration_fields(src);

  p.rebuild(cuts);
  balance::Rebalanceable* next = p.model();
  const std::vector<std::int64_t> new_gids = next->migration_gids();
  balance::ColumnMigrator mover(*p.comm, old_gids, new_gids);
  mct::AttrVect dst(fields, new_gids.size());
  mover.migrate(src, dst);
  next->import_migration_fields(dst);
  next->set_steps_completed(steps);
  obs::counter_add("balance:" + p.name + ":columns_moved",
                   static_cast<double>(mover.columns_moved_offrank()));
}

io::FieldData CoupledModel::balance_busy_pending() const {
  // One row per registry entry, keyed rank·nparts+idx so the section forms a
  // proper distributed field with globally unique ids. Values are pending
  // busy seconds (counter minus watermark) — measurement bookkeeping, not
  // model state, so state_hash() must skip this section.
  const std::size_t nparts = balance_.size();
  io::FieldData out;
  out.ids.resize(nparts);
  out.values.assign(nparts, 0.0);
  for (std::size_t idx = 0; idx < nparts; ++idx) {
    out.ids[idx] = static_cast<std::int64_t>(global_.rank()) *
                       static_cast<std::int64_t>(nparts) +
                   static_cast<std::int64_t>(idx);
    const BalanceParticipant& p = balance_[idx];
    if (balance::Rebalanceable* m = p.model())
      out.values[idx] =
          obs::local().counter(m->busy_counter_key()) - p.busy_seen;
  }
  return out;
}

std::uint64_t CoupledModel::ice_cache_column_hash() const {
  if (!ice_) return 0;
  const std::vector<std::int64_t>& gids = ice_->ocean_gids();
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < gids.size(); ++c) {
    std::uint64_t h = kFnvBasis;
    h = fnv1a_value(h, gids[c]);
    h = fnv1a_value(h, sst_on_ice_[c]);
    h = fnv1a_value(h, us_on_ice_[c]);
    h = fnv1a_value(h, vs_on_ice_[c]);
    sum += h;  // wrapping sum: column order and ownership do not matter
  }
  return sum;
}

// ---- checkpoint/restart -----------------------------------------------------

namespace {

const std::vector<std::string> kCouplerSectionNames = {
    "cpl.a2x_accum", "cpl.sst_on_atm", "cpl.sst_on_ice",   "cpl.us_on_ice",
    "cpl.vs_on_ice", "cpl.rng",        "cpl.balance_busy"};
const std::vector<std::string> kAiSectionNames = {
    "cpl.ai.input",  "cpl.ai.tendency", "cpl.ai.rad_input", "cpl.ai.flux",
    "cpl.ai.cnn_w",  "cpl.ai.mlp_w",    "cpl.ai.train"};

/// RNG stream as a 6-double row: the four xoshiro words (bit-preserved
/// through the binary subfile path), the spare flag, and the spare value.
io::FieldData pack_rng(const RngState& s) {
  std::vector<double> v(6);
  for (int i = 0; i < 4; ++i) v[static_cast<std::size_t>(i)] =
      std::bit_cast<double>(s.words[i]);
  v[4] = s.have_spare ? 1.0 : 0.0;
  v[5] = s.spare;
  return io::local_field(v);
}

RngState unpack_rng(const std::vector<double>& v) {
  AP3_REQUIRE_MSG(v.size() == 6, "malformed cpl.rng section");
  RngState s;
  for (int i = 0; i < 4; ++i)
    s.words[i] = std::bit_cast<std::uint64_t>(v[static_cast<std::size_t>(i)]);
  s.have_spare = v[4] != 0.0;
  s.spare = v[5];
  return s;
}

/// Normalizer as [flat, nch, means..., stds...] (per-rank replicated).
io::FieldData pack_normalizer(const ai::ChannelNormalizer& n) {
  std::vector<double> v;
  v.reserve(2 + 2 * n.num_channels());
  v.push_back(n.is_flat() ? 1.0 : 0.0);
  v.push_back(static_cast<double>(n.num_channels()));
  for (float m : n.means()) v.push_back(static_cast<double>(m));
  for (float s : n.stddevs()) v.push_back(static_cast<double>(s));
  return io::local_field(v);
}

ai::ChannelNormalizer unpack_normalizer(const std::vector<double>& v) {
  AP3_REQUIRE_MSG(v.size() >= 2, "malformed AI normalizer section");
  const bool flat = v[0] != 0.0;
  const auto nch = static_cast<std::size_t>(v[1]);
  AP3_REQUIRE_MSG(v.size() == 2 + 2 * nch, "malformed AI normalizer section");
  std::vector<float> means(nch), stds(nch);
  for (std::size_t c = 0; c < nch; ++c) {
    means[c] = static_cast<float>(v[2 + c]);
    stds[c] = static_cast<float>(v[2 + nch + c]);
  }
  return ai::ChannelNormalizer::from_raw(flat, std::move(means),
                                         std::move(stds));
}

/// Network weights widened to doubles (float -> double is exact, so the
/// round trip restores bit-identical weights).
io::FieldData pack_weights(const std::vector<float>& w) {
  std::vector<double> v(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) v[i] = static_cast<double>(w[i]);
  return io::local_field(v);
}

std::vector<float> unpack_weights(const std::vector<double>& v) {
  std::vector<float> w(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) w[i] = static_cast<float>(v[i]);
  return w;
}

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Sections whose per-rank bytes legitimately change when column ownership
/// moves between ranks. state_hash() folds them in per global column instead
/// (column_state_hash), so the result is invariant under rebalancing.
bool ownership_covariant_section(const std::string& name) {
  if (name == "ocn.steps" || name == "ice.steps") return false;
  if (name.rfind("ocn.", 0) == 0 || name.rfind("ice.", 0) == 0) return true;
  return name == "cpl.sst_on_ice" || name == "cpl.us_on_ice" ||
         name == "cpl.vs_on_ice";
}

/// Measurement bookkeeping, not model state: the pending busy seconds depend
/// on wall-clock timing and on how often the balancer ran, so they are
/// checkpointed (decisions survive restarts) but must never feed the bitwise
/// state hash — rebalance on/off runs hash identically by contract.
bool timing_dependent_section(const std::string& name) {
  return name == "cpl.balance_busy";
}

}  // namespace

bool CoupledModel::ai_physics_active() {
  const bool local = atm_ && dynamic_cast<atm::AiPhysics*>(&atm_->physics());
  const double any =
      global_.allreduce_value(local ? 1.0 : 0.0, par::ReduceOp::kMax);
  if (atm_) {
    AP3_REQUIRE_MSG(local == (any > 0.5),
                    "AI physics must be installed on every atmosphere rank "
                    "before checkpoint/restore");
  }
  return any > 0.5;
}

std::vector<io::Section> CoupledModel::coupler_sections(bool ai_on) const {
  std::vector<io::Section> out;
  std::vector<double> accum_flat;
  accum_flat.reserve(a2x_accum_.num_fields() * a2x_accum_.num_points());
  for (std::size_t f = 0; f < a2x_accum_.num_fields(); ++f) {
    const auto field = a2x_accum_.field(f);
    accum_flat.insert(accum_flat.end(), field.begin(), field.end());
  }
  out.push_back({"cpl.a2x_accum", io::local_field(accum_flat)});
  out.push_back({"cpl.sst_on_atm", io::local_field(sst_on_atm_)});
  out.push_back({"cpl.sst_on_ice", io::local_field(sst_on_ice_)});
  out.push_back({"cpl.us_on_ice", io::local_field(us_on_ice_)});
  out.push_back({"cpl.vs_on_ice", io::local_field(vs_on_ice_)});
  out.push_back({"cpl.rng", pack_rng(rng_.raw_state())});
  out.push_back({"cpl.balance_busy", balance_busy_pending()});
  if (ai_on) {
    auto* ai = atm_ ? dynamic_cast<atm::AiPhysics*>(&atm_->physics()) : nullptr;
    if (ai) {
      ai::AiPhysicsSuite& suite = ai->suite();
      out.push_back({"cpl.ai.input", pack_normalizer(suite.input_norm())});
      out.push_back({"cpl.ai.tendency",
                     pack_normalizer(suite.tendency_norm())});
      out.push_back({"cpl.ai.rad_input",
                     pack_normalizer(suite.rad_input_norm())});
      out.push_back({"cpl.ai.flux", pack_normalizer(suite.flux_norm())});
      // With online training active the weights evolve with the run: they
      // (and the Adam moments) are prognostic state, not static config.
      out.push_back({"cpl.ai.cnn_w",
                     pack_weights(suite.cnn().model().save_weights())});
      out.push_back({"cpl.ai.mlp_w",
                     pack_weights(suite.mlp().model().save_weights())});
      std::vector<double> train;
      train.push_back(ai->online_training_active() ? 1.0 : 0.0);
      const std::vector<double> opt = ai->pack_training_state();
      train.insert(train.end(), opt.begin(), opt.end());
      out.push_back({"cpl.ai.train", io::local_field(train)});
    } else {
      for (const std::string& name : kAiSectionNames)
        out.push_back({name, io::FieldData{}});
    }
  }
  return out;
}

void CoupledModel::restore_coupler_sections(
    const std::vector<io::Section>& sections, bool ai_on) {
  const std::size_t natm = a2x_accum_.num_points();
  const std::vector<double>& accum_flat = io::section_values(
      sections, "cpl.a2x_accum", a2x_accum_.num_fields() * natm);
  for (std::size_t f = 0; f < a2x_accum_.num_fields(); ++f) {
    auto field = a2x_accum_.field(f);
    std::copy(accum_flat.begin() + static_cast<std::ptrdiff_t>(f * natm),
              accum_flat.begin() + static_cast<std::ptrdiff_t>((f + 1) * natm),
              field.begin());
  }
  sst_on_atm_ =
      io::section_values(sections, "cpl.sst_on_atm", sst_on_atm_.size());
  sst_on_ice_ =
      io::section_values(sections, "cpl.sst_on_ice", sst_on_ice_.size());
  us_on_ice_ = io::section_values(sections, "cpl.us_on_ice", us_on_ice_.size());
  vs_on_ice_ = io::section_values(sections, "cpl.vs_on_ice", vs_on_ice_.size());
  rng_.set_raw_state(
      unpack_rng(io::section_values(sections, "cpl.rng", 6)));
  // Re-anchor the busy watermarks so that counter-minus-watermark reproduces
  // the snapshot's pending busy seconds: the first post-restore rebalance
  // decision then folds in exactly the busy time an uninterrupted run would.
  const std::vector<double>& pending =
      io::section_values(sections, "cpl.balance_busy", balance_.size());
  for (std::size_t idx = 0; idx < balance_.size(); ++idx) {
    BalanceParticipant& p = balance_[idx];
    if (balance::Rebalanceable* m = p.model())
      p.busy_seen =
          obs::local().counter(m->busy_counter_key()) - pending[idx];
  }
  if (ai_on) {
    if (auto* ai = atm_ ? dynamic_cast<atm::AiPhysics*>(&atm_->physics())
                        : nullptr) {
      auto find = [&](const std::string& name) -> const std::vector<double>& {
        for (const io::Section& s : sections)
          if (s.name == name) return s.data.values;
        throw Error("restore is missing section '" + name + "'");
      };
      ai->suite().set_normalizers(unpack_normalizer(find("cpl.ai.input")),
                                  unpack_normalizer(find("cpl.ai.tendency")),
                                  unpack_normalizer(find("cpl.ai.rad_input")),
                                  unpack_normalizer(find("cpl.ai.flux")));
      ai->suite().cnn().model().load_weights(
          unpack_weights(find("cpl.ai.cnn_w")));
      ai->suite().mlp().model().load_weights(
          unpack_weights(find("cpl.ai.mlp_w")));
      const std::vector<double>& train = find("cpl.ai.train");
      AP3_REQUIRE_MSG(!train.empty(), "malformed cpl.ai.train section");
      const bool was_training = train[0] != 0.0;
      AP3_REQUIRE_MSG(
          was_training == ai->online_training_active(),
          "checkpoint config mismatch: AI online training was "
              << (was_training ? "on" : "off")
              << " when written; enable/disable it to match before restore");
      if (was_training)
        ai->restore_training_state(
            std::span<const double>(train).subspan(1));
    }
  }
}

std::vector<std::string> CoupledModel::section_inventory(bool ai_on) {
  std::vector<std::string> names;
  for (auto& n : atm::AtmModel::checkpoint_section_names()) names.push_back(n);
  for (auto& n : ocn::OcnModel::checkpoint_section_names()) names.push_back(n);
  for (auto& n : ice::IceModel::checkpoint_section_names()) names.push_back(n);
  for (auto& n : kCouplerSectionNames) names.push_back(n);
  if (ai_on)
    for (auto& n : kAiSectionNames) names.push_back(n);
  return names;
}

std::map<std::string, io::FieldData> CoupledModel::local_sections(bool ai_on) {
  std::map<std::string, io::FieldData> out;
  auto absorb = [&out](std::vector<io::Section> sections) {
    for (io::Section& s : sections) out.emplace(s.name, std::move(s.data));
  };
  if (atm_) absorb(atm_->checkpoint_sections());
  if (ocn_) absorb(ocn_->checkpoint_sections());
  if (ice_) absorb(ice_->checkpoint_sections());
  absorb(coupler_sections(ai_on));
  return out;
}

namespace {
/// Sections whose payloads are integers or bit-cast words in disguise —
/// xoshiro RNG words, step counters, training bookkeeping. Lossy storage
/// would corrupt them, so the group-scaled policy silently upgrades them to
/// fp64 (the codec actually used is recorded per section in the manifest).
bool lossless_required_section(const std::string& name) {
  if (name == "cpl.rng" || name == "cpl.balance_busy" ||
      name == "cpl.ai.train")
    return true;
  constexpr std::string_view kSteps = ".steps";
  return name.size() >= kSteps.size() &&
         name.compare(name.size() - kSteps.size(), kSteps.size(), kSteps) == 0;
}
}  // namespace

std::unique_ptr<io::CheckpointWriter> CoupledModel::begin_checkpoint(
    const std::string& dir, bool async) {
  const bool ai_on = ai_physics_active();
  std::map<std::string, io::FieldData> local = local_sections(ai_on);
  io::CheckpointOptions options = config_.checkpoint;
  options.async = async;
  auto writer = std::make_unique<io::CheckpointWriter>(global_, dir, options);
  for (const std::string& name : section_inventory(ai_on)) {
    io::CodecSpec spec = options.codec;
    if (spec.codec != io::Codec::kFp64 && lossless_required_section(name))
      spec = io::CodecSpec{};
    auto it = local.find(name);
    writer->add_section(name,
                        it != local.end() ? it->second : io::FieldData{},
                        spec);
  }
  writer->set_scalar("clock.steps",
                     static_cast<double>(clock_.steps_taken()));
  writer->set_scalar("accum_count", static_cast<double>(accum_count_));
  writer->set_scalar("ai_physics", ai_on ? 1.0 : 0.0);
  writer->set_scalar("cfg.mesh_n", static_cast<double>(config_.atm.mesh_n));
  writer->set_scalar("cfg.nlev", static_cast<double>(config_.atm.nlev));
  writer->set_scalar("cfg.ocn_nx", static_cast<double>(config_.ocn.grid.nx));
  writer->set_scalar("cfg.ocn_ny", static_cast<double>(config_.ocn.grid.ny));
  writer->set_scalar("cfg.ocn_nz", static_cast<double>(config_.ocn.grid.nz));
  writer->set_scalar("cfg.layout",
                     config_.layout == Layout::kSequential ? 0.0 : 1.0);
  writer->set_scalar("cfg.ocn_couple_ratio",
                     static_cast<double>(config_.ocn_couple_ratio));
  write_layout_scalars(*writer);
  return writer;
}

void CoupledModel::checkpoint(const std::string& dir) {
  AP3_SPAN("checkpoint");
  finish_pending_checkpoints_for(dir);
  auto writer = begin_checkpoint(dir, /*async=*/false);
  writer->finalize();
  obs::counter_add("ckpt:writes", 1.0);
  obs::counter_add("ckpt:bytes", static_cast<double>(writer->bytes_written()));
}

void CoupledModel::checkpoint_async(const std::string& dir) {
  AP3_SPAN("checkpoint_async");
  finish_pending_checkpoints_for(dir);
  // Back-pressure: at most two snapshots in flight. The oldest one's
  // finalize becomes the completion fence instead of memory growing without
  // bound (each in-flight snapshot holds a gathered copy of the state).
  while (pending_checkpoints_.size() >= 2) finish_oldest_checkpoint();
  pending_checkpoints_.push_back(begin_checkpoint(dir, /*async=*/true));
  obs::counter_add("ckpt:async_begins", 1.0);
}

void CoupledModel::finish_oldest_checkpoint() {
  const std::unique_ptr<io::CheckpointWriter> writer =
      std::move(pending_checkpoints_.front());
  pending_checkpoints_.pop_front();
  writer->finalize();
  obs::counter_add("ckpt:writes", 1.0);
  obs::counter_add("ckpt:bytes", static_cast<double>(writer->bytes_written()));
}

void CoupledModel::finish_pending_checkpoints_for(const std::string& dir) {
  const bool pending = std::any_of(
      pending_checkpoints_.begin(), pending_checkpoints_.end(),
      [&](const auto& writer) { return writer->dir() == dir; });
  if (!pending) return;
  // FIFO up through the matching writer: commit order stays deterministic
  // and identical on every rank.
  while (!pending_checkpoints_.empty()) {
    const bool done = pending_checkpoints_.front()->dir() == dir;
    finish_oldest_checkpoint();
    if (done) break;
  }
}

void CoupledModel::checkpoint_wait() {
  AP3_SPAN("checkpoint_wait");
  while (!pending_checkpoints_.empty()) finish_oldest_checkpoint();
}

std::map<std::string, io::FieldData> CoupledModel::local_checkpoint_sections() {
  return local_sections(ai_physics_active());
}

void CoupledModel::restore(const std::string& dir) {
  AP3_SPAN("restore");
  // Drain in-flight async snapshots first: restoring from a directory mid-
  // write would read a torn snapshot, and the fence also surfaces deferred
  // write errors before we tear down live state.
  checkpoint_wait();
  io::CheckpointReader reader(global_, dir);
  auto check = [&reader](const char* name, double want) {
    const double got = reader.scalar(name);
    AP3_REQUIRE_MSG(got == want, "checkpoint config mismatch: "
                                     << name << " is " << got << ", this run "
                                     << "has " << want);
  };
  check("cfg.mesh_n", static_cast<double>(config_.atm.mesh_n));
  check("cfg.nlev", static_cast<double>(config_.atm.nlev));
  check("cfg.ocn_nx", static_cast<double>(config_.ocn.grid.nx));
  check("cfg.ocn_ny", static_cast<double>(config_.ocn.grid.ny));
  check("cfg.ocn_nz", static_cast<double>(config_.ocn.grid.nz));
  check("cfg.layout", config_.layout == Layout::kSequential ? 0.0 : 1.0);
  check("cfg.ocn_couple_ratio",
        static_cast<double>(config_.ocn_couple_ratio));
  const bool ai_on = reader.scalar("ai_physics") > 0.5;
  AP3_REQUIRE_MSG(ai_on == ai_physics_active(),
                  "checkpoint config mismatch: AI physics was "
                      << (ai_on ? "on" : "off") << " when written");

  // Adopt the checkpointed decomposition before any section reads: the
  // templates below carry per-rank id lists, which must match the layout the
  // snapshot was written on (it may have been rebalanced mid-run).
  restore_layout(reader);

  // The template sections carry this rank's layout (names + ids); the reads
  // are collective in canonical inventory order on every rank.
  std::map<std::string, io::FieldData> tmpl = local_sections(ai_on);
  std::map<std::string, io::FieldData> got;
  const std::vector<std::int64_t> no_ids;
  for (const std::string& name : section_inventory(ai_on)) {
    auto it = tmpl.find(name);
    got[name] = reader.read_section(
        name, it != tmpl.end() ? it->second.ids : no_ids);
  }
  auto collect = [&got](const std::vector<std::string>& names) {
    std::vector<io::Section> out;
    for (const std::string& n : names) out.push_back({n, got[n]});
    return out;
  };
  if (atm_)
    atm_->restore_sections(collect(atm::AtmModel::checkpoint_section_names()));
  if (ocn_)
    ocn_->restore_sections(collect(ocn::OcnModel::checkpoint_section_names()));
  if (ice_)
    ice_->restore_sections(collect(ice::IceModel::checkpoint_section_names()));
  std::vector<std::string> cpl_names = kCouplerSectionNames;
  if (ai_on)
    cpl_names.insert(cpl_names.end(), kAiSectionNames.begin(),
                     kAiSectionNames.end());
  restore_coupler_sections(collect(cpl_names), ai_on);

  clock_.restore(static_cast<long long>(reader.scalar("clock.steps")));
  accum_count_ = static_cast<int>(reader.scalar("accum_count"));
  obs::counter_add("ckpt:restores", 1.0);
}

void CoupledModel::write_layout_scalars(io::CheckpointWriter& writer) {
  // set_scalar treats rank 0's value as authoritative, so replicate the cuts
  // from a rank that owns the component before storing them. Roots are chosen
  // to lie inside the owning domain in both layouts: the last rank is always
  // in the ocean domain, rank 0 always in the atm domain.
  auto store = [&](const std::string& prefix, const grid::BlockCuts& cuts,
                   int root) {
    double header[2] = {static_cast<double>(cuts.x.size()),
                        static_cast<double>(cuts.y.size())};
    global_.bcast(std::span<double>(header, 2), root);
    std::vector<double> payload(static_cast<std::size_t>(header[0]) +
                                static_cast<std::size_t>(header[1]));
    if (global_.rank() == root) {
      std::size_t at = 0;
      for (const std::int64_t v : cuts.x)
        payload[at++] = static_cast<double>(v);
      for (const std::int64_t v : cuts.y)
        payload[at++] = static_cast<double>(v);
    }
    if (!payload.empty()) global_.bcast(std::span<double>(payload), root);
    writer.set_scalar(prefix + ".x_cuts", header[0]);
    writer.set_scalar(prefix + ".y_cuts", header[1]);
    const auto nx = static_cast<std::size_t>(header[0]);
    for (std::size_t k = 0; k < payload.size(); ++k) {
      const bool in_x = k < nx;
      writer.set_scalar(
          prefix + (in_x ? ".x" : ".y") + std::to_string(in_x ? k : k - nx),
          payload[k]);
    }
  };
  for (const BalanceParticipant& p : balance_) {
    if (!p.migratable) continue;
    const balance::Rebalanceable* m = p.model();
    const grid::BlockPartition2D* part = m ? m->block_partition() : nullptr;
    store("bal." + p.name, part ? part->cuts() : grid::BlockCuts{},
          p.layout_root);
  }
}

void CoupledModel::restore_layout(io::CheckpointReader& reader) {
  auto read_cuts =
      [&](const std::string& prefix) -> std::optional<grid::BlockCuts> {
    // Absent scalars mean a snapshot from before cut persistence existed:
    // fall back to the constructor's balanced default (no rebuild).
    if (!reader.has_scalar(prefix + ".x_cuts")) return std::nullopt;
    const auto nx = static_cast<std::size_t>(reader.scalar(prefix + ".x_cuts"));
    const auto ny = static_cast<std::size_t>(reader.scalar(prefix + ".y_cuts"));
    if (nx == 0 || ny == 0) return std::nullopt;
    grid::BlockCuts cuts;
    for (std::size_t k = 0; k < nx; ++k)
      cuts.x.push_back(static_cast<std::int64_t>(
          reader.scalar(prefix + ".x" + std::to_string(k))));
    for (std::size_t k = 0; k < ny; ++k)
      cuts.y.push_back(static_cast<std::int64_t>(
          reader.scalar(prefix + ".y" + std::to_string(k))));
    return cuts;
  };
  std::vector<std::optional<grid::BlockCuts>> stored(balance_.size());
  std::vector<char> mismatch(balance_.size(), 0);
  bool local_mismatch = false;
  for (std::size_t idx = 0; idx < balance_.size(); ++idx) {
    const BalanceParticipant& p = balance_[idx];
    if (!p.migratable) continue;
    stored[idx] = read_cuts("bal." + p.name);
    const balance::Rebalanceable* m = p.model();
    const grid::BlockPartition2D* part = m ? m->block_partition() : nullptr;
    mismatch[idx] =
        part && stored[idx] && !(*stored[idx] == part->cuts()) ? 1 : 0;
    local_mismatch = local_mismatch || mismatch[idx] != 0;
  }
  const double any = global_.allreduce_value(local_mismatch ? 1.0 : 0.0,
                                             par::ReduceOp::kMax);
  if (any < 0.5) return;
  // The snapshot was written on a rebalanced decomposition: rebuild the
  // mismatched participants on the stored cuts. Their fresh state is about
  // to be overwritten wholesale by the section reads, which address columns
  // by global id and therefore need the stored layout.
  for (std::size_t idx = 0; idx < balance_.size(); ++idx)
    if (mismatch[idx] != 0) balance_[idx].rebuild(*stored[idx]);
  build_coupling_infrastructure();
  const std::size_t nice = ice_ ? ice_->ocean_gids().size() : 0;
  sst_on_ice_.assign(nice, 0.0);  // overwritten by the cpl.* section reads
  us_on_ice_.assign(nice, 0.0);
  vs_on_ice_.assign(nice, 0.0);
  obs::counter_add("balance:restore_relayout", 1.0);
}

std::uint64_t CoupledModel::state_hash() {
  const bool ai_on = ai_physics_active();
  std::map<std::string, io::FieldData> local = local_sections(ai_on);
  std::uint64_t h = kFnvBasis;
  for (const std::string& name : section_inventory(ai_on)) {
    if (ownership_covariant_section(name) || timing_dependent_section(name))
      continue;
    auto it = local.find(name);
    if (it == local.end()) continue;
    h = fnv_bytes(h, name.data(), name.size());
    h = fnv_bytes(h, it->second.values.data(),
                  it->second.values.size() * sizeof(double));
  }
  // Decomposition-static sections combine per rank in rank order; ownership-
  // covariant state combines as an order-insensitive wrapping sum of
  // per-global-column digests, so runs that rebalanced mid-flight hash
  // identically to runs that never moved a column.
  const std::vector<std::uint64_t> all =
      global_.allgather(std::span<const std::uint64_t>(&h, 1));
  std::uint64_t combined = kFnvBasis;
  for (std::uint64_t r : all)
    combined = fnv_bytes(combined, &r, sizeof(r));
  std::uint64_t columns = 0;
  for (const BalanceParticipant& p : balance_)
    if (balance::Rebalanceable* m = p.model()) columns += m->column_state_hash();
  columns += ice_cache_column_hash();
  const std::uint64_t total =
      global_.allreduce_value(columns, par::ReduceOp::kSum);
  return fnv_bytes(combined, &total, sizeof(total));
}

double CoupledModel::mean_sst_impl() {
  double sum = 0.0, area = 0.0;
  if (ocn_) {
    const auto& g = ocn_->ocean_grid();
    for (auto gid : ocn_->ocean_gids()) {
      const int gi = static_cast<int>(gid % g.nx());
      const int gj = static_cast<int>(gid / g.nx());
      const double a = g.cell_area(gi, gj);
      sum += (ocn_->temp(gi - ocn_->x0(), gj - ocn_->y0(), 0) +
              constants::kT0) *
             a;
      area += a;
    }
  }
  return global_.allreduce_value(sum, par::ReduceOp::kSum) /
         global_.allreduce_value(area, par::ReduceOp::kSum);
}

double CoupledModel::mean_precip_impl() {
  const double local = atm_ ? atm_->global_mean_precip() : 0.0;
  // atm ranks all hold the same value after their collective; take the max.
  return global_.allreduce_value(local, par::ReduceOp::kMax);
}

double CoupledModel::ice_fraction_impl() {
  const double local = ice_ ? ice_->ice_area_fraction() : 0.0;
  return global_.allreduce_value(local, par::ReduceOp::kMax);
}

double CoupledModel::max_current_impl() {
  const double local = ocn_ ? ocn_->max_current() : 0.0;
  return global_.allreduce_value(local, par::ReduceOp::kMax);
}

CoupledDiagnostics CoupledModel::diagnostics() {
  CoupledDiagnostics d;
  d.mean_sst_k = mean_sst_impl();
  d.mean_precip = mean_precip_impl();
  d.ice_fraction = ice_fraction_impl();
  d.max_surface_current = max_current_impl();
  d.windows = clock_.steps_taken();
  // Step counters live only on the owning domain's ranks (identical there);
  // a max spreads them to the whole world in the concurrent layout.
  auto spread = [this](long long v) {
    return static_cast<long long>(global_.allreduce_value(
        static_cast<double>(v), par::ReduceOp::kMax));
  };
  d.atm_steps = spread(atm_ ? atm_->model_steps() : 0);
  d.ocn_baroclinic_steps = spread(ocn_ ? ocn_->baroclinic_steps() : 0);
  d.ice_steps = spread(ice_ ? ice_->steps() : 0);
  d.rebalance_migrations = rebalance_migrations_;
  return d;
}

atm::AtmModel& CoupledModel::atm() {
  AP3_REQUIRE_MSG(atm_ != nullptr,
                  "CoupledModel::atm(): no atmosphere on this rank "
                  "(concurrent layout) — check has_atm() first");
  return *atm_;
}
const atm::AtmModel& CoupledModel::atm() const {
  return const_cast<CoupledModel*>(this)->atm();
}
ocn::OcnModel& CoupledModel::ocn() {
  AP3_REQUIRE_MSG(ocn_ != nullptr,
                  "CoupledModel::ocn(): no ocean on this rank "
                  "(concurrent layout) — check has_ocn() first");
  return *ocn_;
}
const ocn::OcnModel& CoupledModel::ocn() const {
  return const_cast<CoupledModel*>(this)->ocn();
}
ice::IceModel& CoupledModel::ice() {
  AP3_REQUIRE_MSG(ice_ != nullptr,
                  "CoupledModel::ice(): no ice on this rank "
                  "(concurrent layout) — check has_ice() first");
  return *ice_;
}
const ice::IceModel& CoupledModel::ice() const {
  return const_cast<CoupledModel*>(this)->ice();
}

std::shared_ptr<const SharedInputs> build_shared_inputs(
    const CoupledConfig& config) {
  return SharedInputs::build(SharedInputsSpec{
      config.atm.mesh_n, config.ocn.grid, config.regrid_neighbors});
}

std::shared_ptr<const SharedInputs> build_shared_inputs(
    const CoupledConfig& config, ai::AiPhysicsSuite& suite) {
  return SharedInputs::build(
      SharedInputsSpec{config.atm.mesh_n, config.ocn.grid,
                       config.regrid_neighbors},
      suite);
}

void CoupledModel::seed_typhoon(const atm::VortexSpec& spec) {
  if (atm_) atm::seed_vortex(atm_->dycore(), spec);
}

atm::VortexFix CoupledModel::track_typhoon(double prev_lon_deg,
                                           double prev_lat_deg,
                                           double search_km) {
  double packed[5] = {0, 0, 0, 0, 0};
  if (atm_) {
    const atm::VortexFix fix = atm::track_vortex(
        atm_->dycore(), *atm_comm_, prev_lon_deg, prev_lat_deg, search_km);
    packed[0] = fix.lon_deg;
    packed[1] = fix.lat_deg;
    packed[2] = fix.min_h_m;
    packed[3] = fix.max_wind_ms;
    packed[4] = fix.found ? 1.0 : 0.0;
  }
  global_.bcast(std::span<double>(packed, 5), 0);  // rank 0 is in the atm domain
  atm::VortexFix fix;
  fix.lon_deg = packed[0];
  fix.lat_deg = packed[1];
  fix.min_h_m = packed[2];
  fix.max_wind_ms = packed[3];
  fix.found = packed[4] > 0.5;
  return fix;
}

double CoupledModel::sst_near(double lon_deg, double lat_deg,
                              double radius_km) {
  double sum = 0.0, area = 0.0;
  if (ocn_) {
    const auto& g = ocn_->ocean_grid();
    for (auto gid : ocn_->ocean_gids()) {
      const int gi = static_cast<int>(gid % g.nx());
      const int gj = static_cast<int>(gid / g.nx());
      const double d = atm::track_distance_km(lon_deg, lat_deg, g.lon_deg(gi),
                                              g.lat_deg(gj));
      if (d > radius_km) continue;
      const double a = g.cell_area(gi, gj);
      sum += (ocn_->temp(gi - ocn_->x0(), gj - ocn_->y0(), 0) +
              constants::kT0) *
             a;
      area += a;
    }
  }
  const double gsum = global_.allreduce_value(sum, par::ReduceOp::kSum);
  const double garea = global_.allreduce_value(area, par::ReduceOp::kSum);
  return garea > 0.0 ? gsum / garea : 0.0;
}

}  // namespace ap3::cpl
