// Quickstart: build the fully coupled AP3ESM at toy resolution, run coupling
// windows, and print global diagnostics.
//
//   ./quickstart [nranks] [--windows N] [--overlap] [--rebalance-every N]
//               [--straggler <comp>:<seconds_per_point>] [--ensemble N]
//               [--trace out.json]
//               [--checkpoint-every N] [--checkpoint-dir DIR] [--restore DIR]
//               [--checkpoint-async] [--checkpoint-codec fp64|gs]
//               [--ai-backend=serial|threads|cpe] [--ai-precision=fp64|fp32|gs]
//               [--supernode-size N] [--coll-algo flat|hier]
//
// Demonstrates the public API end to end: configuration, the coupled driver
// with its CPL7-style clock, collective diagnostics, and checkpoint/restart.
// With --checkpoint-every N a versioned snapshot is written to DIR (default
// ./ap3_checkpoint) every N windows; --restore DIR resumes from a snapshot,
// bit-identical to the uninterrupted run (the final state hash printed at
// the end is the witness). --checkpoint-async streams each snapshot: the
// state is gathered at the boundary but encoded and written on a background
// task lane while the model keeps stepping, with a completion fence at the
// next checkpoint boundary. --checkpoint-codec gs stores section payloads
// as fp32 + per-group power-of-two fp64 scales (~2x smaller, ULP-bound
// verified at encode time; RNG/step-counter sections stay fp64). Passing --ai-backend and/or --ai-precision swaps
// the conventional physics for a freshly trained AI suite routed through the
// batched inference engine on the chosen execution space and precision policy
// (any combination produces the same physics answer: backends are bit-exact
// at a given policy, and group-scaled storage round-trips fp32 losslessly).
// --straggler (repeatable) installs a synthetic busy band on the named
// component — atm, ocn, or ice — sleeping seconds_per_point per affected
// point per step and reporting the slept time on the component's
// <comp>:busy_seconds channel; pair it with --rebalance-every to watch the
// load balancer shed columns off the slow ranks (the final state hash is
// unchanged either way). With --trace, the observability layer's
// Chrome-trace export (one timeline row per simulated rank; open in
// chrome://tracing or Perfetto) is written after the run, along with the
// getTiming-style SYPD report derived from the same spans.
//
// With --ensemble N (N > 1) the run becomes an in-process ensemble: one
// immutable SharedInputs context (mesh, ocean grid, regrid matrices, and —
// with AI flags — frozen trained weights) is built once on the main thread,
// then every rank serves N perturbed CoupledModel members from it through an
// EnsembleFleet. Member 0 is the unperturbed control; members k > 0 start
// from a decomposition-invariant temperature perturbation. The fleet prints
// per-member diagnostics and state hashes plus the aggregate members x SYPD.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ai/engine.hpp"
#include "base/error.hpp"
#include "atm/physics.hpp"
#include "coupler/driver.hpp"
#include "fleet/fleet.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "par/topology.hpp"

namespace {

constexpr const char* kUsage =
    "usage: quickstart [nranks] [--windows N] [--overlap]\n"
    "                  [--rebalance-every N]\n"
    "                  [--straggler atm|ocn|ice:<seconds_per_point>]\n"
    "                  [--ensemble N]\n"
    "                  [--trace out.json]\n"
    "                  [--checkpoint-every N] [--checkpoint-dir DIR]\n"
    "                  [--restore DIR]\n"
    "                  [--checkpoint-async] [--checkpoint-codec fp64|gs]\n"
    "                  [--ai-backend=serial|threads|cpe]\n"
    "                  [--ai-precision=fp64|fp32|gs]\n"
    "                  [--supernode-size N] [--coll-algo flat|hier]\n";

/// Accepts both `--flag value` and `--flag=value`; returns nullptr when argv[a]
/// is not `flag` at all, otherwise the value (advancing `a` for the two-token
/// form).
const char* flag_value(int argc, char** argv, int& a, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(argv[a], flag, n) != 0) return nullptr;
  if (argv[a][n] == '=') return argv[a] + n + 1;
  if (argv[a][n] != '\0') return nullptr;  // e.g. --ai-backendish
  if (a + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a value\n%s", flag, kUsage);
    std::exit(2);
  }
  return argv[++a];
}

bool parse_backend(const char* v, ap3::pp::ExecSpace& out) {
  if (std::strcmp(v, "serial") == 0) out = ap3::pp::ExecSpace::kSerial;
  else if (std::strcmp(v, "threads") == 0) out = ap3::pp::ExecSpace::kHostThreads;
  else if (std::strcmp(v, "cpe") == 0) out = ap3::pp::ExecSpace::kSunwayCPE;
  else return false;
  return true;
}

/// Applies one `--straggler <comp>:<seconds_per_point>` spec: a synthetic busy
/// band over the upper half of the named component's domain, reported on its
/// <comp>:busy_seconds channel. Throws ap3::ConfigError on an unknown
/// component or a malformed value — fail fast, before any rank spins up.
void apply_straggler(ap3::cpl::CoupledConfig& config, const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos)
    throw ap3::ConfigError("--straggler expects <component>:<seconds_per_point>"
                           ", got '" + spec + "'");
  const std::string comp = spec.substr(0, colon);
  const char* num = spec.c_str() + colon + 1;
  char* end = nullptr;
  const double spp = std::strtod(num, &end);
  if (end == num || *end != '\0' || !(spp >= 0.0))
    throw ap3::ConfigError("--straggler " + comp +
                           ": seconds_per_point must be a non-negative number"
                           ", got '" + std::string(num) + "'");
  if (comp == "atm") {
    config.atm.stall_seconds_per_point = spp;
    config.atm.stall_cell_begin =
        10ll * config.atm.mesh_n * config.atm.mesh_n;  // upper half of 20n^2
  } else if (comp == "ocn") {
    config.ocn.stall_seconds_per_point = spp;
    config.ocn.stall_i_begin = config.ocn.grid.nx / 2;
  } else if (comp == "ice") {
    config.ice.stall_seconds_per_point = spp;
    config.ice.stall_i_begin = config.ocn.grid.nx / 2;
  } else {
    throw ap3::ConfigError("--straggler: unknown component '" + comp +
                           "' (expected atm, ocn, or ice)");
  }
}

bool parse_precision(const char* v, ap3::ai::PrecisionPolicy& out) {
  if (std::strcmp(v, "fp64") == 0) out = ap3::ai::PrecisionPolicy::kFp64;
  else if (std::strcmp(v, "fp32") == 0) out = ap3::ai::PrecisionPolicy::kFp32;
  else if (std::strcmp(v, "gs") == 0) out = ap3::ai::PrecisionPolicy::kGroupScaled;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ap3;
  int nranks = 2;
  int windows = 0;  // 0: one simulated day
  int rebalance_every = 0;
  int ensemble = 1;
  int checkpoint_every = 0;
  bool checkpoint_async = false;
  std::string checkpoint_codec;  // "", "fp64", "gs"
  std::string checkpoint_dir = "ap3_checkpoint";
  std::string restore_dir;
  std::string trace_path;
  std::vector<std::string> stragglers;
  bool overlap = false;
  bool use_ai = false;
  int supernode_size = 0;  // 0: no explicit topology (flat collectives)
  std::string coll_algo;   // "", "flat", "hier"
  ai::EngineConfig ai_engine;  // kSerial / fp32 unless flags say otherwise
  for (int a = 1; a < argc; ++a) {
    auto option_value = [&](const char* flag) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++a];
    };
    if (const char* v = flag_value(argc, argv, a, "--ai-backend")) {
      if (!parse_backend(v, ai_engine.space)) {
        std::fprintf(stderr, "error: unknown --ai-backend '%s'\n%s", v, kUsage);
        return 2;
      }
      use_ai = true;
    } else if (const char* v = flag_value(argc, argv, a, "--ai-precision")) {
      if (!parse_precision(v, ai_engine.precision)) {
        std::fprintf(stderr, "error: unknown --ai-precision '%s'\n%s", v,
                     kUsage);
        return 2;
      }
      use_ai = true;
    } else if (const char* v = flag_value(argc, argv, a, "--straggler")) {
      stragglers.emplace_back(v);  // repeatable; one component each
    } else if (std::strcmp(argv[a], "--trace") == 0) {
      trace_path = option_value("--trace");
    } else if (std::strcmp(argv[a], "--overlap") == 0) {
      overlap = true;
    } else if (std::strcmp(argv[a], "--windows") == 0) {
      windows = std::atoi(option_value("--windows"));
      if (windows <= 0) {
        std::fprintf(stderr, "error: --windows must be positive\n%s", kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--rebalance-every") == 0) {
      rebalance_every = std::atoi(option_value("--rebalance-every"));
      if (rebalance_every <= 0) {
        std::fprintf(stderr, "error: --rebalance-every must be positive\n%s",
                     kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--ensemble") == 0) {
      ensemble = std::atoi(option_value("--ensemble"));
      if (ensemble <= 0) {
        std::fprintf(stderr, "error: --ensemble must be positive\n%s", kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--checkpoint-every") == 0) {
      checkpoint_every = std::atoi(option_value("--checkpoint-every"));
      if (checkpoint_every <= 0) {
        std::fprintf(stderr, "error: --checkpoint-every must be positive\n%s",
                     kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--supernode-size") == 0) {
      supernode_size = std::atoi(option_value("--supernode-size"));
      if (supernode_size <= 0) {
        std::fprintf(stderr, "error: --supernode-size must be positive\n%s",
                     kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--coll-algo") == 0) {
      coll_algo = option_value("--coll-algo");
      if (coll_algo != "flat" && coll_algo != "hier") {
        std::fprintf(stderr, "error: unknown --coll-algo '%s'\n%s",
                     coll_algo.c_str(), kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--checkpoint-async") == 0) {
      checkpoint_async = true;
    } else if (const char* v = flag_value(argc, argv, a, "--checkpoint-codec")) {
      checkpoint_codec = v;
      if (checkpoint_codec != "fp64" && checkpoint_codec != "gs") {
        std::fprintf(stderr, "error: unknown --checkpoint-codec '%s'\n%s", v,
                     kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--checkpoint-dir") == 0) {
      checkpoint_dir = option_value("--checkpoint-dir");
    } else if (std::strcmp(argv[a], "--restore") == 0) {
      restore_dir = option_value("--restore");
    } else {
      nranks = std::atoi(argv[a]);
      if (nranks <= 0) {
        std::fprintf(stderr, "error: invalid rank count '%s'\n%s", argv[a],
                     kUsage);
        return 2;
      }
    }
  }

  if (ensemble > 1 && (!restore_dir.empty() || checkpoint_every > 0 ||
                       rebalance_every > 0)) {
    std::fprintf(stderr,
                 "error: --ensemble is incompatible with --restore, "
                 "--checkpoint-every, and --rebalance-every\n%s",
                 kUsage);
    return 2;
  }

  cpl::CoupledConfig config;
  config.atm.mesh_n = 6;                                // 720 cells
  config.atm.nlev = 10;
  config.ocn.grid = grid::TripolarConfig{48, 36, 10};   // toy tripolar grid
  config.layout = cpl::Layout::kSequential;
  config.overlap = overlap;  // bit-exact either way; see CoupledConfig::overlap
  // Bit-exact either way too: migration moves columns, never values. The
  // stock hysteresis policy applies, so a balanced toy run simply never
  // migrates.
  config.rebalance_every = rebalance_every;
  if (checkpoint_codec == "gs")
    config.checkpoint.codec.codec = io::Codec::kGroupScaled;
  if (checkpoint_every > 0 && checkpoint_dir.empty()) {
    std::fprintf(stderr, "error: --checkpoint-dir must not be empty\n%s",
                 kUsage);
    return 2;
  }
  if ((checkpoint_async || !checkpoint_codec.empty()) && checkpoint_every == 0)
    std::printf("note: --checkpoint-async/--checkpoint-codec take effect "
                "with --checkpoint-every\n");
  else if (checkpoint_every > 0)
    std::printf("checkpointing every %d windows to %s (%s, codec %s)\n",
                checkpoint_every, checkpoint_dir.c_str(),
                checkpoint_async ? "streaming async" : "sync",
                checkpoint_codec == "gs" ? "group-scaled fp32+scales"
                                         : "fp64");

  try {
    for (const std::string& spec : stragglers) apply_straggler(config, spec);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 2;
  }
  for (const std::string& spec : stragglers)
    std::printf("straggler: %s (synthetic busy band, upper half)\n",
                spec.c_str());

  std::printf("AP3ESM quickstart: %d ranks, atm %zu cells x %d levels, "
              "ocn %dx%dx%d\n",
              nranks, static_cast<size_t>(20 * config.atm.mesh_n * config.atm.mesh_n),
              config.atm.nlev, config.ocn.grid.nx, config.ocn.grid.ny,
              config.ocn.grid.nz);

  // Collective topology: --supernode-size attaches a par::Topology (ranks
  // clustered into supernodes) so collectives can stage through supernode
  // leaders; --coll-algo picks the default wire algorithm. The coupled state
  // hash is identical either way — only the message pattern changes.
  const bool want_topology = supernode_size > 0 || !coll_algo.empty();
  auto topo_comm = [&](par::Comm& base) -> par::Comm {
    if (!want_topology) return base;
    auto topo = std::make_shared<par::Topology>(
        par::Topology::clustered(base.size(), supernode_size));
    return base.with_topology(topo, coll_algo == "flat"
                                        ? par::CollectiveAlgo::kFlat
                                        : par::CollectiveAlgo::kHierarchical);
  };
  if (want_topology)
    std::printf("collective topology: supernode size %d, algorithm %s\n",
                supernode_size > 0 ? supernode_size : 256,
                coll_algo == "flat" ? "flat" : "hierarchical");

  if (use_ai)
    std::printf("AI physics: backend=%s precision=%s (batched inference "
                "engine, micro-batch %zu)\n",
                pp::to_string(ai_engine.space), ai::to_string(ai_engine.precision),
                ai_engine.micro_batch);

  if (ensemble > 1) {
    // Ensemble fleet path: build the immutable shared context ONCE on the
    // main thread (mesh, ocean grid, regrid matrices, and — with AI — the
    // frozen trained weights); every rank thread serves all N members from
    // it. Member construction, perturbation, and the round-robin scheduler
    // live in ap3::fleet::EnsembleFleet.
    std::shared_ptr<const cpl::SharedInputs> shared;
    if (use_ai) {
      atm::ConventionalPhysics conventional;
      const atm::TrainingData data = atm::generate_training_data(
          conventional, 16, 4, static_cast<std::size_t>(config.atm.nlev), 11,
          config.atm.model_dt_seconds());
      ai::SuiteConfig suite_config;
      suite_config.levels = config.atm.nlev;
      suite_config.cnn_hidden = 8;
      suite_config.mlp_hidden = 16;
      const atm::TrainedSuite trained =
          atm::train_ai_physics(data, suite_config, 6, 3e-3f);
      std::printf("  trained toy suite: tendency R2 %.3f, flux R2 %.3f "
                  "(weights frozen into the shared context)\n",
                  trained.tendency_r2, trained.flux_r2);
      shared = cpl::build_shared_inputs(config, *trained.suite);
    } else {
      shared = cpl::build_shared_inputs(config);
    }
    std::printf("ensemble fleet: %d members per rank over one shared "
                "context (%zu resident bytes, vs %zu replicated)\n",
                ensemble, shared->resident_bytes(),
                static_cast<std::size_t>(ensemble) * shared->resident_bytes());

    par::run(nranks, [&](par::Comm& base) {
      par::Comm comm = topo_comm(base);
      fleet::EnsembleFleet fl(
          comm, fleet::EnsembleFleet::perturbed_specs(config, ensemble,
                                                      shared, 9000));
      if (use_ai) {
        cpl::AiInstallOptions opts;
        opts.engine = ai_engine;  // suite thawed from the frozen weights
        fl.install_ai_physics(opts);
      }
      const double window = fl.member(0).atm_window_seconds();
      const int total_windows =
          windows > 0 ? windows : static_cast<int>(86400.0 / window) + 1;
      const auto t0 = std::chrono::steady_clock::now();
      fl.run_windows(total_windows);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const auto hashes = fl.state_hashes();  // collective
      const auto diags = fl.diagnostics();    // collective
      if (comm.rank() == 0) {
        std::printf("\n  member     seed   mean SST [K]   ice frac   "
                    "state hash\n");
        for (std::size_t k = 0; k < fl.size(); ++k)
          std::printf("  %-9s  %5llu   %12.3f   %8.4f   %016llx\n",
                      fl.spec(k).name.c_str(),
                      static_cast<unsigned long long>(
                          fl.spec(k).perturbation_seed),
                      diags[k].mean_sst_k, diags[k].ice_fraction,
                      static_cast<unsigned long long>(hashes[k]));
        const double sim_seconds = total_windows * window;
        const double sypd = sim_seconds / (365.0 * wall);
        std::printf("\nensemble finished: %d members x %d windows in %.2f s"
                    "\naggregate throughput: %.4f members x SYPD\n",
                    ensemble, total_windows, wall, ensemble * sypd);
      }
    });
    return 0;
  }

  std::atomic<int> exit_code{0};
  par::run(nranks, [&](par::Comm& base) {
    par::Comm comm = topo_comm(base);
    cpl::CoupledModel model(comm, config);
    if (use_ai) {
      // Each rank trains the same tiny suite deterministically (no RNG state
      // is shared across rank threads), then routes it through the engine on
      // the requested backend/precision.
      atm::ConventionalPhysics conventional;
      const atm::TrainingData data = atm::generate_training_data(
          conventional, 16, 4, static_cast<std::size_t>(config.atm.nlev), 11,
          config.atm.model_dt_seconds());
      ai::SuiteConfig suite_config;
      suite_config.levels = config.atm.nlev;
      suite_config.cnn_hidden = 8;
      suite_config.mlp_hidden = 16;
      const atm::TrainedSuite trained =
          atm::train_ai_physics(data, suite_config, 6, 3e-3f);
      model.install_ai_physics(cpl::AiInstallOptions{trained.suite, ai_engine,
                                                     std::nullopt});
      if (comm.rank() == 0)
        std::printf("  trained toy suite: tendency R2 %.3f, flux R2 %.3f\n",
                    trained.tendency_r2, trained.flux_r2);
    }
    const double window = model.atm_window_seconds();
    const int total_windows =
        windows > 0 ? windows : static_cast<int>(86400.0 / window) + 1;

    if (!restore_dir.empty()) {
      try {
        model.restore(restore_dir);
      } catch (const Error& e) {
        if (comm.rank() == 0)
          std::fprintf(stderr, "error: cannot restore from '%s': %s\n",
                       restore_dir.c_str(), e.what());
        exit_code = 1;
        return;
      }
      if (comm.rank() == 0)
        std::printf("restored from %s at window %lld\n", restore_dir.c_str(),
                    model.windows_run());
    }

    if (comm.rank() == 0)
      std::printf("coupling window %.0f s (running to window %d; ocean "
                  "couples every %d)\n\n  window   mean SST [K]   "
                  "max current [m/s]   ice frac   mean precip [kg/m2/s]\n",
                  window, total_windows, config.ocn_couple_ratio);

    // Window-by-window so checkpoints can land on any boundary; diagnostics
    // print four times over the run as before.
    const int report_every = total_windows >= 4 ? total_windows / 4 : 1;
    while (model.windows_run() < total_windows) {
      model.run_windows(1);
      const auto w = model.windows_run();
      if (checkpoint_every > 0 && w % checkpoint_every == 0 &&
          w < total_windows) {
        // Async: the snapshot is gathered here but encoded/written on the
        // background lane; reusing one directory makes the next boundary
        // the completion fence (the writer never races itself).
        if (checkpoint_async)
          model.checkpoint_async(checkpoint_dir);
        else
          model.checkpoint(checkpoint_dir);
        if (comm.rank() == 0)
          std::printf("  checkpoint at window %lld -> %s%s\n", w,
                      checkpoint_dir.c_str(),
                      checkpoint_async ? " (streaming)" : "");
      }
      if (w % report_every == 0 || w == total_windows) {
        const cpl::CoupledDiagnostics diag = model.diagnostics();
        if (comm.rank() == 0)
          std::printf("  %6lld   %10.3f   %17.4f   %8.4f   %.3e\n", w,
                      diag.mean_sst_k, diag.max_surface_current,
                      diag.ice_fraction, diag.mean_precip);
      }
    }
    model.checkpoint_wait();  // fence any in-flight streaming snapshot
    const std::uint64_t hash = model.state_hash();  // collective
    if (comm.rank() == 0)
      std::printf("\nquickstart finished: %lld atmosphere windows, %lld "
                  "atmosphere steps, %lld ocean baroclinic steps\n"
                  "final state hash: %016llx\n",
                  model.windows_run(),
                  model.has_atm() ? model.atm().model_steps() : 0,
                  model.has_ocn() ? model.ocn().baroclinic_steps() : 0,
                  static_cast<unsigned long long>(hash));
    if (config.rebalance_every > 0 && comm.rank() == 0)
      std::printf("load rebalancing: %lld migration(s)\n",
                  model.rebalance_migrations());

    const cpl::TimingSummary timing = model.timing_summary();
    if (comm.rank() == 0) std::printf("\n%s", timing.to_string().c_str());
  });
  if (exit_code != 0) return exit_code.load();

  if (!trace_path.empty()) {
    try {
      obs::write_chrome_trace(trace_path);
    } catch (const std::exception& e) {
      // The run itself succeeded; don't abort over a bad trace path.
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("chrome trace (open in chrome://tracing): %s\n",
                trace_path.c_str());
  }
  return 0;
}
