#include "pp/registry.hpp"

namespace ap3::pp {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

std::uint64_t KernelRegistry::register_kernel(const std::string& name,
                                              KernelFn fn) {
  AP3_REQUIRE_MSG(fn != nullptr, "null kernel function for '" << name << "'");
  const std::uint64_t hash = fnv1a(name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(hash);
  if (it != table_.end()) {
    AP3_REQUIRE_MSG(it->second.name == name,
                    "kernel hash collision: '" << name << "' vs '"
                                               << it->second.name << "'");
    AP3_REQUIRE_MSG(it->second.fn == fn,
                    "kernel '" << name << "' registered twice with different "
                                          "functions");
    return hash;
  }
  table_.emplace(hash, Entry{name, fn});
  return hash;
}

bool KernelRegistry::has(std::uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.count(hash) != 0;
}

void KernelRegistry::launch(std::uint64_t hash, const LaunchArgs& args) const {
  KernelFn fn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(hash);
    AP3_REQUIRE_MSG(it != table_.end(),
                    "launch of unregistered kernel hash " << hash);
    fn = it->second.fn;
    ++launches_;
  }
  fn(args);
}

std::size_t KernelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [hash, entry] : table_) out.push_back(entry.name);
  return out;
}

}  // namespace ap3::pp
