file(REMOVE_RECURSE
  "libap3_lnd.a"
)
