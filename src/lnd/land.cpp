#include "lnd/land.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace ap3::lnd {

using constants::kLatentVap;
using constants::kRhoWater;
using constants::kStefanBoltzmann;

LandModel::LandModel(std::size_t ncells, LandConfig config)
    : config_(config), tskin_(ncells, 288.0), water_(ncells, 0.05) {}

double LandModel::total_water() const {
  double total = 0.0;
  for (double w : water_) total += w;
  return total;
}

LandResponse LandModel::step_cell(std::size_t cell, double dt,
                                  const LandForcing& forcing) {
  AP3_REQUIRE(cell < tskin_.size());
  double& tskin = tskin_[cell];
  double& water = water_[cell];

  // Energy balance: absorbed SW + incoming LW − emitted LW − turbulent flux.
  const double absorbed_sw = forcing.gsw * (1.0 - config_.albedo);
  const double absorbed_lw = config_.emissivity * forcing.glw;
  const double emitted =
      config_.emissivity * kStefanBoltzmann * tskin * tskin * tskin * tskin;
  const double sensible = 15.0 * (tskin - forcing.t_air);  // bulk exchange

  // Evaporation limited by bucket content; wetter soil evaporates faster.
  const double wetness = std::clamp(water / config_.bucket_depth, 0.0, 1.0);
  const double available_energy = std::max(0.0, absorbed_sw);
  double evap_ms = config_.evap_coeff * available_energy * wetness;  // [m/s]
  evap_ms = std::min(evap_ms, water / std::max(dt, 1.0));
  const double latent = evap_ms * kRhoWater * kLatentVap;

  const double net = absorbed_sw + absorbed_lw - emitted - sensible - latent;
  tskin += dt * net / config_.heat_capacity;
  tskin = std::clamp(tskin, 180.0, 340.0);

  // Bucket hydrology: precipitation in, evaporation out, runoff above cap.
  water += dt * (forcing.precip / kRhoWater - evap_ms);
  if (water > config_.bucket_depth) {
    water -= config_.runoff_fraction * (water - config_.bucket_depth);
    water = std::min(water, config_.bucket_depth * 1.5);
  }
  if (water < 0.0) water = 0.0;

  LandResponse response;
  response.tskin = tskin;
  response.evaporation = evap_ms * kRhoWater;
  response.sensible = sensible;
  return response;
}

}  // namespace ap3::lnd
