// Checkpoint/restart: the versioned snapshot container (src/io/checkpoint),
// per-component section round-trips, and the coupled driver's bit-exact
// restart contract — running 2N windows straight must equal running N,
// checkpointing, restoring into a fresh model, and running N more.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "base/rng.hpp"
#include "coupler/clock.hpp"
#include "coupler/driver.hpp"
#include "harness.hpp"
#include "ice/ice.hpp"
#include "io/checkpoint.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using ap3::testing::expect_fields_equal;
using ap3::testing::run_ranks;
using ap3::testing::TempDir;

// Compare two section lists (same model type, same rank) bit-exactly.
void expect_sections_identical(const std::vector<io::Section>& actual,
                               const std::vector<io::Section>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < actual.size(); ++s) {
    EXPECT_EQ(actual[s].name, expected[s].name);
    EXPECT_EQ(actual[s].data.ids, expected[s].data.ids) << actual[s].name;
    expect_fields_equal(actual[s].data.values, expected[s].data.values,
                        /*max_ulp=*/0, actual[s].name);
  }
}

// Flip one byte in the middle of `path` (corruption the checksum must catch).
void corrupt_file(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(f.tellg());
  ASSERT_GT(size, 0);
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(size / 2);
  f.write(&byte, 1);
}

void truncate_file(const std::string& path, std::size_t keep_bytes) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), keep_bytes);
  bytes.resize(keep_bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- the container ---------------------------------------------------------

TEST(CheckpointContainer, WriteReadRoundTrip) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    std::vector<double> field(8);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = comm.rank() * 100.0 + static_cast<double>(i) / 3.0;

    io::CheckpointWriter writer(comm, dir);
    writer.add_section("state.field", io::local_field(field));
    writer.add_section("state.count",
                       io::rank_scalar(comm.rank(), 7.0 + comm.rank()));
    writer.set_scalar("clock.steps", 42.0);
    writer.finalize();
    // Subfile bytes are accounted on the aggregator ranks that do the writes.
    const double total_bytes = comm.allreduce_value(
        static_cast<double>(writer.bytes_written()), par::ReduceOp::kSum);
    EXPECT_GT(total_bytes, 0.0);

    io::CheckpointReader reader(comm, dir);
    EXPECT_EQ(reader.section_names(),
              (std::vector<std::string>{"state.field", "state.count"}));
    EXPECT_TRUE(reader.has_section("state.field"));
    EXPECT_FALSE(reader.has_section("state.ghost"));
    EXPECT_TRUE(reader.has_scalar("clock.steps"));
    EXPECT_EQ(reader.scalar("clock.steps"), 42.0);
    EXPECT_THROW(reader.scalar("missing"), Error);

    const io::FieldData expected = io::local_field(field);
    const io::FieldData got = reader.read_section("state.field", expected.ids);
    EXPECT_EQ(got.ids, expected.ids);
    expect_fields_equal(got.values, field);

    const io::FieldData count = reader.read_section(
        "state.count", std::vector<std::int64_t>{comm.rank()});
    ASSERT_EQ(count.values.size(), 1u);
    EXPECT_EQ(count.values[0], 7.0 + comm.rank());
  });
}

TEST(CheckpointContainer, EmptyContributionsAreCollectiveSafe) {
  // Concurrent-layout ranks contribute empty FieldData for components they
  // don't own; the round-trip must still work and preserve ownership.
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(3, [&](par::Comm& comm) {
    io::FieldData local;  // only rank 1 owns anything
    if (comm.rank() == 1) local = io::local_field({3.25, -7.5});
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("sparse", local);
    writer.finalize();

    io::CheckpointReader reader(comm, dir);
    const io::FieldData got = reader.read_section("sparse", local.ids);
    EXPECT_EQ(got.ids, local.ids);
    expect_fields_equal(got.values, local.values);
  });
}

TEST(CheckpointContainer, WriterRejectsMisuse) {
  TempDir tmp;
  run_ranks(1, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, tmp.file("bad"));
    EXPECT_THROW(writer.add_section("", io::local_field({1.0})), Error);
    EXPECT_THROW(writer.add_section("a/b", io::local_field({1.0})), Error);
    writer.add_section("ok", io::local_field({1.0}));
    EXPECT_THROW(writer.add_section("ok", io::local_field({1.0})), Error);
    writer.finalize();
    EXPECT_THROW(writer.add_section("late", io::local_field({1.0})), Error);
    EXPECT_THROW(writer.finalize(), Error);
  });
}

TEST(CheckpointContainer, MissingSnapshotRejected) {
  TempDir tmp;
  run_ranks(2, [&](par::Comm& comm) {
    EXPECT_THROW(io::CheckpointReader(comm, tmp.file("nowhere")), Error);
  });
}

TEST(CheckpointContainer, CorruptedManifestRejectedOnEveryRank) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("f", io::local_field({1.0, 2.0}));
    writer.finalize();
  });
  corrupt_file(dir + "/MANIFEST.bin");
  run_ranks(2, [&](par::Comm& comm) {
    // Validation is symmetric: every rank throws (no rank deadlocks waiting
    // for a broadcast that never comes).
    EXPECT_THROW(io::CheckpointReader(comm, dir), Error);
  });
}

TEST(CheckpointContainer, TruncatedManifestRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("f", io::local_field({1.0, 2.0}));
    writer.set_scalar("s", 3.0);
    writer.finalize();
  });
  truncate_file(dir + "/MANIFEST.bin", 20);
  run_ranks(2, [&](par::Comm& comm) {
    EXPECT_THROW(io::CheckpointReader(comm, dir), Error);
  });
}

TEST(CheckpointContainer, CorruptedSectionPayloadRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  const std::vector<std::int64_t> ids =
      io::local_field(std::vector<double>(16, 0.0)).ids;
  run_ranks(1, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("f", io::local_field(std::vector<double>(16, 1.5)));
    writer.finalize();
  });
  // Zap the whole-record checksum footer of the section's subfile
  // (<dir>/f.0.bin); the reader must reject the payload even though the
  // manifest is intact.
  {
    std::fstream f(dir + "/f.0.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-8, std::ios::end);
    const std::uint64_t garbage = 0xdeadbeefdeadbeefULL;
    f.write(reinterpret_cast<const char*>(&garbage), 8);
  }
  run_ranks(1, [&](par::Comm& comm) {
    io::CheckpointReader reader(comm, dir);  // manifest is fine
    EXPECT_THROW(reader.read_section("f", ids), Error);
  });
}

TEST(CheckpointContainer, TamperedIdTableRejectedOnEveryRank) {
  // v1 only checksummed the value payload, so a flipped id byte slipped
  // through structural validation and was caught (at best) on the one rank
  // whose decomposition check noticed. The v2 whole-record checksum catches
  // it before parsing, and the world-level fold makes EVERY rank throw.
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    std::vector<double> field(16, 1.5 + comm.rank());
    writer.add_section("f", io::local_field(field));
    writer.finalize();
  });
  // v2 layout: magic 8 | version 4 | codec 4 | nranks 8 | counts i64[2] |
  // nruns u64 | runs (start,len)[...] | payload | checksum. Corrupt a byte
  // inside the id-run table.
  {
    std::fstream f(dir + "/f.0.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(8 + 4 + 4 + 8 + 2 * 8 + 8 + 4);  // mid-run
    const std::int64_t garbage = 9999;
    f.write(reinterpret_cast<const char*>(&garbage), 8);
  }
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointReader reader(comm, dir);
    const std::vector<std::int64_t> ids =
        io::local_field(std::vector<double>(16, 0.0)).ids;
    int threw = 0;
    try {
      reader.read_section("f", ids);
    } catch (const Error&) {
      threw = 1;
    }
    const int total = comm.allreduce_value(threw, par::ReduceOp::kSum);
    EXPECT_EQ(total, comm.size());
  });
}

TEST(CheckpointContainer, RankCountMismatchRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("f", io::local_field({1.0}));
    writer.finalize();
  });
  run_ranks(3, [&](par::Comm& comm) {
    EXPECT_THROW(io::CheckpointReader(comm, dir), Error);
  });
}

TEST(CheckpointContainer, DecompositionMismatchRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir);
    writer.add_section("f", io::local_field({1.0, 2.0, 3.0}));
    writer.finalize();

    io::CheckpointReader reader(comm, dir);
    // Asking for a different id layout than was written is a hard error,
    // not silent corruption.
    std::vector<std::int64_t> wrong{0, 1};
    EXPECT_THROW(reader.read_section("f", wrong), Error);
  });
}

// ---- serializable leaf state ----------------------------------------------

TEST(RestartState, RngRoundTripResumesStream) {
  Rng rng(0xbeefULL);
  for (int i = 0; i < 37; ++i) rng.normal();  // leave a Marsaglia spare armed
  const RngState saved = rng.raw_state();

  std::vector<double> tail(32);
  for (double& v : tail) v = rng.normal();

  Rng resumed(1);  // different seed: state must come entirely from `saved`
  resumed.set_raw_state(saved);
  for (double expected : tail) EXPECT_EQ(resumed.normal(), expected);
}

TEST(RestartState, ClockRestoreMatchesAdvance) {
  cpl::Clock advanced(100.0, 480.0);
  const int alarm = advanced.add_alarm("ocn", 5);
  for (int s = 0; s < 13; ++s) advanced.advance();

  cpl::Clock restored(100.0, 480.0);
  const int alarm2 = restored.add_alarm("ocn", 5);
  restored.restore(13);

  EXPECT_EQ(restored.steps_taken(), advanced.steps_taken());
  EXPECT_DOUBLE_EQ(restored.now(), advanced.now());
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(restored.ringing(alarm2), advanced.ringing(alarm));
    restored.advance();
    advanced.advance();
  }
  EXPECT_THROW(restored.restore(-1), Error);
}

// ---- per-component restart -------------------------------------------------

TEST(ComponentRestart, IceRoundTripsThroughContainer) {
  TempDir tmp;
  const std::string dir = tmp.file("ice_snap");
  run_ranks(2, [&](par::Comm& comm) {
    ice::IceConfig config;
    config.grid = grid::TripolarConfig{24, 18, 4};
    ice::IceModel model(comm, config);
    model.run(0.0, 4.0 * config.dt_seconds);

    io::CheckpointWriter writer(comm, dir);
    for (const auto& section : model.checkpoint_sections())
      writer.add_section(section);
    writer.finalize();

    ice::IceModel fresh(comm, config);
    io::CheckpointReader reader(comm, dir);
    std::vector<io::Section> restored;
    for (const auto& layout : fresh.checkpoint_sections())
      restored.push_back(
          {layout.name, reader.read_section(layout.name, layout.data.ids)});
    fresh.restore_sections(restored);
    EXPECT_EQ(fresh.steps(), model.steps());
    expect_sections_identical(fresh.checkpoint_sections(),
                              model.checkpoint_sections());

    // The restored model evolves bit-identically to the original.
    model.run(0.0, 2.0 * config.dt_seconds);
    fresh.run(0.0, 2.0 * config.dt_seconds);
    expect_sections_identical(fresh.checkpoint_sections(),
                              model.checkpoint_sections());
  });
}

TEST(ComponentRestart, OcnSectionsRestoreExactly) {
  run_ranks(2, [](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{24, 18, 4};
    ocn::OcnModel model(comm, config);
    model.run(0.0, 4.0 * config.baroclinic_dt_seconds());

    ocn::OcnModel fresh(comm, config);
    fresh.restore_sections(model.checkpoint_sections());
    EXPECT_EQ(fresh.baroclinic_steps(), model.baroclinic_steps());
    expect_sections_identical(fresh.checkpoint_sections(),
                              model.checkpoint_sections());

    const double dt = config.baroclinic_dt_seconds();
    model.run(4.0 * dt, 2.0 * dt);
    fresh.run(4.0 * dt, 2.0 * dt);
    expect_sections_identical(fresh.checkpoint_sections(),
                              model.checkpoint_sections());
  });
}

TEST(ComponentRestart, RestoreRejectsMissingSection) {
  run_ranks(1, [](par::Comm& comm) {
    ice::IceConfig config;
    config.grid = grid::TripolarConfig{24, 18, 4};
    ice::IceModel model(comm, config);
    std::vector<io::Section> sections = model.checkpoint_sections();
    sections.pop_back();
    EXPECT_THROW(model.restore_sections(sections), Error);
  });
}

// ---- coupled driver --------------------------------------------------------

cpl::CoupledConfig restart_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 2;  // exercise the ocean phase within few windows
  return config;
}

// The central contract: run 2N windows straight vs N + checkpoint +
// restore-into-fresh-model + N. Hashes (FNV over every checkpointed byte on
// every rank) must be identical at the checkpoint and at the end.
void expect_bit_exact_restart(int nranks, const cpl::CoupledConfig& config) {
  TempDir tmp;
  const std::string dir = tmp.file("cpl_snap");
  constexpr int kWindows = 4;

  std::uint64_t hash_mid = 0, hash_end = 0;
  run_ranks(nranks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(kWindows);
    model.checkpoint(dir);
    const std::uint64_t mid = model.state_hash();  // collective
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();  // collective
    if (comm.rank() == 0) {
      hash_mid = mid;
      hash_end = end;
    }
  });

  run_ranks(nranks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.restore(dir);
    EXPECT_EQ(model.windows_run(), kWindows);
    const std::uint64_t mid = model.state_hash();  // collective
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();  // collective
    if (comm.rank() == 0) {
      EXPECT_EQ(mid, hash_mid) << "restore is not bit-exact";
      EXPECT_EQ(end, hash_end)
          << "resumed trajectory diverged from the uninterrupted run";
    }
  });
}

TEST(CoupledRestart, SequentialLayoutBitExact) {
  expect_bit_exact_restart(2, restart_config());
}

// ---- streaming (async) checkpoints ------------------------------------------

// The async writer snapshots state at checkpoint_async() time while the
// gather+encode+write overlaps the next windows. The snapshot must still be
// bit-exact: N + ckpt_async + restore + N ≡ 2N, with the model advancing
// WHILE the checkpoint drains.
TEST(CoupledRestart, AsyncCheckpointBitExact) {
  const cpl::CoupledConfig config = restart_config();
  TempDir tmp;
  const std::string dir = tmp.file("cpl_async");
  constexpr int kWindows = 4;

  std::uint64_t hash_mid = 0, hash_end = 0;
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(kWindows);
    model.checkpoint_async(dir);
    const std::uint64_t mid = model.state_hash();
    model.run_windows(kWindows);  // overlaps the in-flight write
    const std::uint64_t end = model.state_hash();
    model.checkpoint_wait();
    EXPECT_EQ(model.checkpoints_in_flight(), 0u);
    if (comm.rank() == 0) {
      hash_mid = mid;
      hash_end = end;
    }
  });

  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.restore(dir);
    EXPECT_EQ(model.windows_run(), kWindows);
    const std::uint64_t mid = model.state_hash();
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) {
      EXPECT_EQ(mid, hash_mid) << "async snapshot is not bit-exact";
      EXPECT_EQ(end, hash_end)
          << "trajectory diverged after restoring an async snapshot";
    }
  });
}

// At most two snapshots may be in flight; a third checkpoint_async must
// fence the oldest first (back-pressure, not unbounded memory), and every
// fenced snapshot must be restorable.
TEST(CoupledRestart, AsyncCheckpointBackPressure) {
  const cpl::CoupledConfig config = restart_config();
  TempDir tmp;
  const std::string d1 = tmp.file("s1"), d2 = tmp.file("s2"),
                    d3 = tmp.file("s3");
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(1);
    model.checkpoint_async(d1);
    model.run_windows(1);
    model.checkpoint_async(d2);
    EXPECT_LE(model.checkpoints_in_flight(), 2u);
    model.run_windows(1);
    model.checkpoint_async(d3);
    EXPECT_LE(model.checkpoints_in_flight(), 2u);
    model.checkpoint_wait();
    EXPECT_EQ(model.checkpoints_in_flight(), 0u);

    for (const auto& [dir, windows] :
         {std::pair<std::string, int>{d1, 1}, {d2, 2}, {d3, 3}}) {
      cpl::CoupledModel fresh(comm, config);
      fresh.restore(dir);
      EXPECT_EQ(fresh.windows_run(), windows) << dir;
    }
  });
}

// Re-issuing checkpoint_async to the SAME directory must finalize the
// pending snapshot for that dir first (never two writers racing one path).
TEST(CoupledRestart, AsyncCheckpointSameDirSerializes) {
  const cpl::CoupledConfig config = restart_config();
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(1);
    model.checkpoint_async(dir);
    model.run_windows(1);
    model.checkpoint_async(dir);  // finalizes the first, starts a second
    model.checkpoint_wait();

    cpl::CoupledModel fresh(comm, config);
    fresh.restore(dir);  // latest snapshot wins
    EXPECT_EQ(fresh.windows_run(), 2);
  });
}

// ---- precision-aware (group-scaled) checkpoints -----------------------------

bool lossless_required(const std::string& name) {
  // Mirrors the driver's policy: control/RNG/counter state must round-trip
  // bit-exactly even under a lossy field codec.
  if (name == "cpl.rng" || name == "cpl.balance_busy" ||
      name == "cpl.ai.train")
    return true;
  const std::string suffix = ".steps";
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Group-scaled snapshots trade bit-exactness of field data for ~2x smaller
// checkpoints. The restore must land within the codec's ULP bound on every
// field value, and control state (RNG words, counters) must still be exact.
TEST(CoupledRestart, GroupScaledRestoreWithinUlpBound) {
  cpl::CoupledConfig config = restart_config();
  config.checkpoint.codec.codec = io::Codec::kGroupScaled;
  TempDir tmp;
  const std::string dir = tmp.file("cpl_gs");

  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(2);
    model.checkpoint(dir);
    const auto original = model.local_checkpoint_sections();

    cpl::CoupledModel fresh(comm, config);
    fresh.restore(dir);
    EXPECT_EQ(fresh.windows_run(), 2);
    const auto restored = fresh.local_checkpoint_sections();

    ASSERT_EQ(restored.size(), original.size());
    for (const auto& [name, data] : original) {
      const auto it = restored.find(name);
      ASSERT_NE(it, restored.end()) << name;
      ASSERT_EQ(it->second.values.size(), data.values.size()) << name;
      const std::uint64_t bound =
          lossless_required(name) ? 0 : config.checkpoint.codec.ulp_bound;
      expect_fields_equal(it->second.values, data.values, bound, name);
    }
  });
}

// An unmeetable ULP bound must hard-fail the checkpoint on EVERY rank at
// the finalize fence — never write a snapshot that silently violates it.
TEST(CoupledRestart, GroupScaledImpossibleBoundFailsOnEveryRank) {
  cpl::CoupledConfig config = restart_config();
  config.checkpoint.codec.codec = io::Codec::kGroupScaled;
  config.checkpoint.codec.ulp_bound = 0;  // demands losslessness from fp32
  TempDir tmp;
  const std::string dir = tmp.file("cpl_gs0");
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(1);
    int threw = 0;
    try {
      model.checkpoint(dir);
    } catch (const Error&) {
      threw = 1;
    }
    const int total = comm.allreduce_value(threw, par::ReduceOp::kSum);
    EXPECT_EQ(total, comm.size());
  });
}

// ---- AI physics with online training ---------------------------------------

// A small deployable AI suite without the cost of training: handcrafted
// normalizers plus deterministic random weights (fresh networks have
// zero-initialized readouts, which would make inference trivially zero).
std::shared_ptr<ai::AiPhysicsSuite> make_test_suite(std::size_t nlev) {
  ai::SuiteConfig sc;
  sc.cnn_hidden = 4;
  sc.mlp_hidden = 8;
  sc.levels = static_cast<int>(nlev);
  auto suite = std::make_shared<ai::AiPhysicsSuite>(sc);

  const std::vector<float> ch_mean = {0.0f, 0.0f, 260.0f, 1e-3f, 5e4f};
  const std::vector<float> ch_std = {10.0f, 10.0f, 30.0f, 2e-3f, 3e4f};
  const std::size_t rad_feat = 5 * nlev + 2;
  std::vector<float> rad_mean(rad_feat), rad_std(rad_feat);
  for (std::size_t f = 0; f < 5 * nlev; ++f) {
    rad_mean[f] = ch_mean[f / nlev];
    rad_std[f] = ch_std[f / nlev];
  }
  rad_mean[5 * nlev] = 288.0f;  // tskin
  rad_std[5 * nlev] = 15.0f;
  rad_mean[5 * nlev + 1] = 0.5f;  // coszr
  rad_std[5 * nlev + 1] = 0.3f;
  suite->set_normalizers(
      ai::ChannelNormalizer::from_raw(false, ch_mean, ch_std),
      ai::ChannelNormalizer::from_raw(
          false, {0.0f, 0.0f, 0.0f, 0.0f}, {1e-5f, 1e-5f, 1e-5f, 1e-7f}),
      ai::ChannelNormalizer::from_raw(true, std::move(rad_mean),
                                      std::move(rad_std)),
      ai::ChannelNormalizer::from_raw(true, {400.0f, 350.0f},
                                      {100.0f, 50.0f}));

  Rng wr(91);
  for (auto* model : {&suite->cnn().model(), &suite->mlp().model()}) {
    std::vector<float> w = model->save_weights();
    for (float& v : w) v = static_cast<float>(wr.normal() * 0.05);
    model->load_weights(w);
  }
  return suite;
}

// The satellite contract of this PR: with the AI suite deployed AND
// fine-tuning itself online every step (so the network weights and Adam
// moments are evolving prognostic state), N + restore + N must still equal
// 2N bit for bit — which requires the cpl.ai.cnn_w / cpl.ai.mlp_w /
// cpl.ai.train checkpoint sections to round-trip exactly.
TEST(CoupledRestart, OnlineTrainingBitExact) {
  const cpl::CoupledConfig config = restart_config();
  TempDir tmp;
  const std::string dir = tmp.file("cpl_snap_ai");
  constexpr int kWindows = 3;
  constexpr int kRanks = 2;

  atm::OnlineTrainingConfig online;
  online.every_steps = 1;
  online.sample_cols = 4;
  online.lr = 1e-3f;
  ai::EngineConfig engine;
  engine.micro_batch = 32;

  auto install = [&](cpl::CoupledModel& model) {
    model.install_ai_physics(
        cpl::AiInstallOptions{make_test_suite(6), engine, online});
  };

  std::uint64_t hash_mid = 0, hash_end = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    install(model);
    model.run_windows(kWindows);
    model.checkpoint(dir);
    const std::uint64_t mid = model.state_hash();
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) {
      hash_mid = mid;
      hash_end = end;
    }
  });

  run_ranks(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    install(model);  // fresh weights; restore must overwrite them
    model.restore(dir);
    const std::uint64_t mid = model.state_hash();
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) {
      EXPECT_EQ(mid, hash_mid) << "AI restore is not bit-exact";
      EXPECT_EQ(end, hash_end)
          << "resumed online-training trajectory diverged";
    }
  });
}

// Restoring a training-enabled checkpoint into a model without online
// training (or vice versa) must be rejected, not silently resumed.
TEST(CoupledRestart, OnlineTrainingFlagMismatchRejected) {
  const cpl::CoupledConfig config = restart_config();
  TempDir tmp;
  const std::string dir = tmp.file("cpl_snap_ai_flag");
  atm::OnlineTrainingConfig online;
  online.sample_cols = 4;
  run_ranks(1, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.install_ai_physics(
        cpl::AiInstallOptions{make_test_suite(6), {}, online});
    model.run_windows(1);
    model.checkpoint(dir);

    cpl::CoupledModel plain(comm, config);
    cpl::AiInstallOptions plain_opts;
    plain_opts.suite = make_test_suite(6);
    plain.install_ai_physics(plain_opts);
    EXPECT_THROW(plain.restore(dir), Error);
  });
}

TEST(CoupledRestart, ConcurrentLayoutBitExact) {
  cpl::CoupledConfig config = restart_config();
  config.layout = cpl::Layout::kConcurrent;
  expect_bit_exact_restart(4, config);
}

TEST(CoupledRestart, ConfigMismatchRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("cpl_snap");
  const cpl::CoupledConfig config = restart_config();
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(1);
    model.checkpoint(dir);

    cpl::CoupledConfig other = config;
    other.ocn_couple_ratio = 3;
    cpl::CoupledModel wrong(comm, other);
    EXPECT_THROW(wrong.restore(dir), Error);
  });
}

TEST(CoupledRestart, MissingSnapshotRejected) {
  TempDir tmp;
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, restart_config());
    EXPECT_THROW(model.restore(tmp.file("not_there")), Error);
  });
}

TEST(CoupledRestart, CorruptedSnapshotRejected) {
  TempDir tmp;
  const std::string dir = tmp.file("cpl_snap");
  const cpl::CoupledConfig config = restart_config();
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(1);
    model.checkpoint(dir);
  });
  corrupt_file(dir + "/MANIFEST.bin");
  run_ranks(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    EXPECT_THROW(model.restore(dir), Error);
  });
}

}  // namespace
