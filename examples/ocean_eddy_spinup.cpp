// Standalone ocean spin-up (the LICOMK++ use case of Fig. 1c): force the
// mini tripolar ocean with an idealized zonal wind pattern, spin up
// currents, and report the surface kinetic-energy and Rossby-number
// statistics that the paper's 1-km snapshots visualize.
#include <algorithm>
#include <cstdio>
#include <cmath>
#include <vector>

#include "base/constants.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

int main(int argc, char** argv) {
  using namespace ap3;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 2;

  ocn::OcnConfig config;
  config.grid = grid::TripolarConfig{96, 72, 12};
  config.exclude_non_ocean = true;  // §5.2.2 path

  std::printf("ocean eddy spin-up: %dx%dx%d tripolar grid, %d ranks, "
              "non-ocean exclusion ON\n",
              config.grid.nx, config.grid.ny, config.grid.nz, nranks);

  par::run(nranks, [&](par::Comm& comm) {
    ocn::OcnModel model(comm, config);
    if (comm.rank() == 0)
      std::printf("ocean surface fraction %.3f, 3-D active fraction %.3f\n\n",
                  model.ocean_grid().ocean_surface_fraction(),
                  model.ocean_grid().active_volume_fraction());

    // Idealized trades/westerlies wind stress by latitude.
    mct::AttrVect x2o(ocn::OcnModel::import_fields(),
                      model.ocean_gids().size());
    auto taux = x2o.field("taux");
    std::size_t col = 0;
    for (auto gid : model.ocean_gids()) {
      const int j = static_cast<int>(gid / config.grid.nx);
      const double lat = model.ocean_grid().lat_deg(j);
      taux[col] = 0.12 * std::sin(3.0 * lat * ap3::constants::kDegToRad);
      ++col;
    }
    model.import_state(x2o);

    const double window = config.baroclinic_dt_seconds() * 20.0;
    if (comm.rank() == 0)
      std::printf(" spin-up   max |u| [m/s]   max |eta| [m]   mean surf KE "
                  "[m2/s2]   |Ro| p99\n");
    for (int stage = 1; stage <= 5; ++stage) {
      model.run(stage * window, window);
      const auto ke = model.surface_kinetic_energy();
      const auto ro = model.surface_rossby_number();
      double local_ke = 0.0;
      for (double v : ke) local_ke += v;
      const double total_ke =
          comm.allreduce_value(local_ke, par::ReduceOp::kSum);
      const auto total_cols = static_cast<double>(comm.allreduce_value(
          static_cast<long long>(ke.size()), par::ReduceOp::kSum));
      std::vector<double> abs_ro(ro.size());
      for (size_t k = 0; k < ro.size(); ++k) abs_ro[k] = std::abs(ro[k]);
      std::sort(abs_ro.begin(), abs_ro.end());
      const double p99_local =
          abs_ro.empty() ? 0.0 : abs_ro[abs_ro.size() * 99 / 100];
      const double p99 = comm.allreduce_value(p99_local, par::ReduceOp::kMax);
      // Collective diagnostics must run on every rank (not just rank 0).
      const double max_u = model.max_current();
      const double max_eta = model.max_eta();
      if (comm.rank() == 0)
        std::printf("  %6d   %13.4f   %13.5f   %20.3e   %8.4f\n", stage, max_u,
                    max_eta, total_ke / total_cols, p99);
    }
    if (comm.rank() == 0)
      std::printf("\n%lld baroclinic steps; column-kernel iterations executed: "
                  "%lld (exclusion saves the land share)\n",
                  model.baroclinic_steps(), model.column_iterations());
  });
  return 0;
}
