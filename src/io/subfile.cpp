#include "io/subfile.hpp"

#include <cstring>
#include <fstream>

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::io {

std::uint64_t checksum(std::span<const double> values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
  for (std::size_t i = 0; i < values.size() * sizeof(double); ++i)
    h = (h ^ bytes[i]) * 0x100000001b3ULL;
  return h;
}

namespace {

struct GroupLayout {
  int group = 0;       ///< which subfile this rank belongs to
  bool aggregator = false;
};

GroupLayout layout_for(const par::Comm& comm, int num_subfiles) {
  AP3_REQUIRE_MSG(num_subfiles >= 1 && num_subfiles <= comm.size(),
                  "num_subfiles must be in [1, comm size]");
  GroupLayout out;
  out.group = static_cast<int>(
      static_cast<long long>(comm.rank()) * num_subfiles / comm.size());
  // Aggregator: the lowest rank mapped to this group.
  const int first_of_group = static_cast<int>(
      (static_cast<long long>(out.group) * comm.size() + num_subfiles - 1) /
      num_subfiles);
  out.aggregator = comm.rank() == first_of_group;
  return out;
}

std::string subfile_path(const SubfileConfig& config, int group) {
  return config.basename + "." + std::to_string(group) + ".bin";
}

/// Writes one blob: [nranks][counts...][ids...][values...][checksum].
std::size_t write_blob(const std::string& path,
                       const std::vector<std::size_t>& counts,
                       const std::vector<std::int64_t>& ids,
                       const std::vector<double>& values) {
  std::ofstream out(path, std::ios::binary);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  auto write_raw = [&](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  const std::int64_t nranks = static_cast<std::int64_t>(counts.size());
  write_raw(&nranks, sizeof(nranks));
  for (std::size_t c : counts) {
    const std::int64_t v = static_cast<std::int64_t>(c);
    write_raw(&v, sizeof(v));
  }
  write_raw(ids.data(), ids.size() * sizeof(std::int64_t));
  write_raw(values.data(), values.size() * sizeof(double));
  const std::uint64_t sum = checksum(values);
  write_raw(&sum, sizeof(sum));
  return sizeof(nranks) + counts.size() * sizeof(std::int64_t) +
         ids.size() * sizeof(std::int64_t) + values.size() * sizeof(double) +
         sizeof(sum);
}

void read_blob(const std::string& path, std::vector<std::size_t>& counts,
               std::vector<std::int64_t>& ids, std::vector<double>& values) {
  std::ifstream in(path, std::ios::binary);
  AP3_REQUIRE_MSG(in, "cannot open " << path);
  auto read_raw = [&](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    AP3_REQUIRE_MSG(in.good(), "truncated I/O file " << path);
  };
  std::int64_t nranks = 0;
  read_raw(&nranks, sizeof(nranks));
  counts.resize(static_cast<std::size_t>(nranks));
  std::size_t total = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    std::int64_t v = 0;
    read_raw(&v, sizeof(v));
    counts[r] = static_cast<std::size_t>(v);
    total += counts[r];
  }
  ids.resize(total);
  values.resize(total);
  read_raw(ids.data(), total * sizeof(std::int64_t));
  read_raw(values.data(), total * sizeof(double));
  std::uint64_t stored = 0;
  read_raw(&stored, sizeof(stored));
  AP3_REQUIRE_MSG(stored == checksum(values),
                  "checksum mismatch in " << path);
}

constexpr int kTagIoIds = 9401;
constexpr int kTagIoVals = 9402;

/// Gather members' data on the group comm's rank 0, write, return bytes.
std::size_t gather_and_write(const par::Comm& group_comm,
                             const std::string& path, const FieldData& local) {
  std::vector<std::size_t> id_counts;
  const std::vector<std::int64_t> all_ids =
      group_comm.allgatherv(std::span<const std::int64_t>(local.ids), &id_counts);
  const std::vector<double> all_values =
      group_comm.allgatherv(std::span<const double>(local.values), nullptr);
  if (group_comm.rank() != 0) return 0;
  return write_blob(path, id_counts, all_ids, all_values);
}

/// Read on group rank 0, scatter back per stored counts, return this rank's
/// slice.
FieldData read_and_scatter(const par::Comm& group_comm,
                           const std::string& path,
                           const std::vector<std::int64_t>& expected_ids) {
  FieldData mine;
  if (group_comm.rank() == 0) {
    std::vector<std::size_t> counts;
    std::vector<std::int64_t> ids;
    std::vector<double> values;
    read_blob(path, counts, ids, values);
    AP3_REQUIRE_MSG(static_cast<int>(counts.size()) == group_comm.size(),
                    "subfile written with a different group size");
    std::size_t offset = 0;
    for (int r = 0; r < group_comm.size(); ++r) {
      const std::size_t n = counts[static_cast<std::size_t>(r)];
      if (r == 0) {
        mine.ids.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(n));
        mine.values.assign(values.begin(),
                           values.begin() + static_cast<std::ptrdiff_t>(n));
      } else {
        group_comm.send(std::span<const std::int64_t>(ids.data() + offset, n), r,
                        kTagIoIds);
        group_comm.send(std::span<const double>(values.data() + offset, n), r,
                        kTagIoVals);
      }
      offset += n;
    }
  } else {
    // Size is the sender's; receive into max-size buffer then trim.
    mine.ids.resize(expected_ids.size());
    mine.values.resize(expected_ids.size());
    const std::size_t n_ids =
        group_comm.recv(std::span<std::int64_t>(mine.ids), 0, kTagIoIds);
    const std::size_t n_vals =
        group_comm.recv(std::span<double>(mine.values), 0, kTagIoVals);
    mine.ids.resize(n_ids);
    mine.values.resize(n_vals);
  }
  AP3_REQUIRE_MSG(mine.ids == expected_ids,
                  "restart decomposition mismatch: ids differ");
  return mine;
}

}  // namespace

std::size_t write_subfiles(const par::Comm& comm, const SubfileConfig& config,
                           const FieldData& local) {
  AP3_SPAN("io:subfile:write");
  AP3_REQUIRE(local.ids.size() == local.values.size());
  const GroupLayout layout = layout_for(comm, config.num_subfiles);
  par::Comm group = comm.split(layout.group, comm.rank());
  const std::size_t bytes =
      gather_and_write(group, subfile_path(config, layout.group), local);
  obs::counter_add("io:subfile:bytes_written", static_cast<double>(bytes));
  return bytes;
}

FieldData read_subfiles(const par::Comm& comm, const SubfileConfig& config,
                        const std::vector<std::int64_t>& expected_ids) {
  AP3_SPAN("io:subfile:read");
  const GroupLayout layout = layout_for(comm, config.num_subfiles);
  par::Comm group = comm.split(layout.group, comm.rank());
  return read_and_scatter(group, subfile_path(config, layout.group),
                          expected_ids);
}

std::size_t write_single(const par::Comm& comm, const std::string& path,
                         const FieldData& local) {
  AP3_SPAN("io:single:write");
  AP3_REQUIRE(local.ids.size() == local.values.size());
  par::Comm whole = comm.split(0, comm.rank());
  const std::size_t bytes = gather_and_write(whole, path, local);
  obs::counter_add("io:single:bytes_written", static_cast<double>(bytes));
  return bytes;
}

FieldData read_single(const par::Comm& comm, const std::string& path,
                      const std::vector<std::int64_t>& expected_ids) {
  AP3_SPAN("io:single:read");
  par::Comm whole = comm.split(0, comm.rank());
  return read_and_scatter(whole, path, expected_ids);
}

}  // namespace ap3::io
