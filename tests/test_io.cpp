// Tests for the parallel I/O subsystem (§5.2.5): subfile write/read round
// trips, checksum verification, and the single-file baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/subfile.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using io::FieldData;
using io::SubfileConfig;

FieldData make_local(int rank, int npoints) {
  FieldData data;
  for (int k = 0; k < npoints; ++k) {
    data.ids.push_back(1000 * rank + k);
    data.values.push_back(rank + 0.001 * k);
  }
  return data;
}

void cleanup(const std::string& basename, int num_subfiles) {
  for (int k = 0; k < num_subfiles; ++k)
    std::remove((basename + "." + std::to_string(k) + ".bin").c_str());
}

TEST(Io, ChecksumDetectsChange) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 2.0, 3.0000001};
  EXPECT_NE(io::checksum(a), io::checksum(b));
  EXPECT_EQ(io::checksum(a), io::checksum(a));
}

TEST(Io, SubfileRoundTripMultipleGroups) {
  const std::string base = "/tmp/ap3_io_test_a";
  par::run(6, [&](par::Comm& comm) {
    SubfileConfig config{base, 3};
    const FieldData mine = make_local(comm.rank(), 5 + comm.rank());
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    EXPECT_EQ(back.ids, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
  cleanup(base, 3);
}

TEST(Io, SubfileCountEqualsConfiguredGroups) {
  const std::string base = "/tmp/ap3_io_test_b";
  par::run(8, [&](par::Comm& comm) {
    SubfileConfig config{base, 4};
    io::write_subfiles(comm, config, make_local(comm.rank(), 3));
    comm.barrier();
  });
  int found = 0;
  for (int k = 0; k < 8; ++k)
    if (std::filesystem::exists(base + "." + std::to_string(k) + ".bin"))
      ++found;
  EXPECT_EQ(found, 4);
  cleanup(base, 8);
}

TEST(Io, OneSubfilePerRankDegenerateCase) {
  const std::string base = "/tmp/ap3_io_test_c";
  par::run(4, [&](par::Comm& comm) {
    SubfileConfig config{base, 4};
    const FieldData mine = make_local(comm.rank(), 7);
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
  cleanup(base, 4);
}

TEST(Io, SingleFileBaselineRoundTrip) {
  const std::string path = "/tmp/ap3_io_test_single.bin";
  par::run(4, [&](par::Comm& comm) {
    const FieldData mine = make_local(comm.rank(), 4);
    io::write_single(comm, path, mine);
    comm.barrier();
    const FieldData back = io::read_single(comm, path, mine.ids);
    EXPECT_EQ(back.ids, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
  std::remove(path.c_str());
}

TEST(Io, CorruptedFileFailsChecksum) {
  const std::string path = "/tmp/ap3_io_test_corrupt.bin";
  par::run(1, [&](par::Comm& comm) {
    const FieldData mine = make_local(0, 10);
    io::write_single(comm, path, mine);
  });
  // Flip one payload byte in the middle of the values section.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 8 + 10 * 8 + 3 * 8);  // header + counts + ids + offset
    char byte = 0x5a;
    f.write(&byte, 1);
  }
  par::run(1, [&](par::Comm& comm) {
    const FieldData mine = make_local(0, 10);
    EXPECT_THROW(io::read_single(comm, path, mine.ids), ap3::Error);
  });
  std::remove(path.c_str());
}

TEST(Io, MismatchedDecompositionThrows) {
  const std::string path = "/tmp/ap3_io_test_mismatch.bin";
  par::run(2, [&](par::Comm& comm) {
    const FieldData mine = make_local(comm.rank(), 3);
    io::write_single(comm, path, mine);
    comm.barrier();
    // Ask for different ids than were written.
    std::vector<std::int64_t> wrong = {999, 998, 997};
    EXPECT_THROW(io::read_single(comm, path, wrong), ap3::Error);
    comm.barrier();
  });
  std::remove(path.c_str());
}

TEST(Io, InvalidSubfileCountThrows) {
  par::run(2, [&](par::Comm& comm) {
    SubfileConfig config{"/tmp/ap3_io_test_bad", 5};  // more files than ranks
    EXPECT_THROW(io::write_subfiles(comm, config, make_local(comm.rank(), 2)),
                 ap3::Error);
  });
}

}  // namespace
