#include "pp/stream.hpp"

namespace ap3::pp {

// --- Event -------------------------------------------------------------------

bool Event::ready() const {
  if (!state_) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void Event::wait() const {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
}

// --- Stream ------------------------------------------------------------------

Stream::Stream(ThreadPool& pool) : pool_(pool) {}

Stream::~Stream() { sync(); }

Event Stream::enqueue(std::string label, std::function<void()> body,
                      std::vector<Event> deps) {
  Task task;
  task.label = std::move(label);
  task.body = std::move(body);
  task.deps = std::move(deps);
  task.state = std::make_shared<detail::EventState>();
  // Attribution: spans/counters of this task land on the enqueuing thread's
  // buffer, one level below the spans open here right now.
  task.home = &obs::local();
  task.depth = obs::enabled() ? task.home->depth() + 1 : 0;
  Event event(task.state);

  bool schedule_pump = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (!draining_) {
      draining_ = true;
      schedule_pump = true;
    }
  }
  if (schedule_pump) pool_.submit([this] { pump(); });
  return event;
}

void Stream::sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && !draining_; });
}

void Stream::pump() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      draining_ = false;
      cv_idle_.notify_all();
      return;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    run_task(task);
    lock.lock();
  }
}

void Stream::run_task(Task& task) {
  std::exception_ptr error;
  try {
    for (const Event& dep : task.deps) dep.wait();
    obs::BufferScope adopt(*task.home);
    if (obs::enabled()) {
      const double start = obs::now_seconds();
      task.body();
      task.home->record_span(task.label, task.depth, start,
                             obs::now_seconds());
    } else {
      task.body();
    }
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(task.state->mutex);
    task.state->error = error;
    task.state->done = true;
  }
  task.state->cv.notify_all();
}

}  // namespace ap3::pp
