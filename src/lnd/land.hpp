// Land surface model: bucket hydrology + surface energy balance.
//
// §5.1.1: "GRIST and the land surface model directly exchange data,
// bypassing the coupler. Consequently, AP3ESM does not currently include a
// coupler-owned land model component." This model is therefore owned and
// stepped by the atmosphere component directly: the atmosphere hands it
// radiation, near-surface state, and precipitation; it returns the updated
// skin temperature and moisture availability that feed the surface schemes.
#pragma once

#include <cstdint>
#include <vector>

namespace ap3::lnd {

struct LandConfig {
  double heat_capacity = 2.0e6;   ///< areal heat capacity [J/m²/K]
                                  ///< (slab deep enough for multi-hour steps)
  double bucket_depth = 0.15;     ///< max soil water [m]
  double evap_coeff = 1.2e-10;    ///< evaporation [m/s per W/m²]; latent heat
                                  ///< stays below ~30 % of absorbed energy
  double runoff_fraction = 0.1;   ///< of over-capacity water
  double emissivity = 0.96;
  double albedo = 0.25;
};

/// Per-cell forcing from the atmosphere for one land step.
struct LandForcing {
  double gsw = 0.0;     ///< downward shortwave [W/m²]
  double glw = 0.0;     ///< downward longwave [W/m²]
  double t_air = 288.0; ///< lowest-level air temperature [K]
  double precip = 0.0;  ///< [kg/m²/s]
};

/// Per-cell response back to the atmosphere.
struct LandResponse {
  double tskin = 288.0;      ///< updated skin temperature [K]
  double evaporation = 0.0;  ///< moisture flux to atmosphere [kg/m²/s]
  double sensible = 0.0;     ///< sensible heat flux [W/m²]
};

class LandModel {
 public:
  LandModel(std::size_t ncells, LandConfig config = {});

  std::size_t ncells() const { return tskin_.size(); }
  double tskin(std::size_t cell) const { return tskin_[cell]; }
  double soil_water(std::size_t cell) const { return water_[cell]; }
  double total_water() const;

  /// Advance cell `cell` by `dt` seconds under `forcing`.
  LandResponse step_cell(std::size_t cell, double dt, const LandForcing& forcing);

  // Checkpoint access: the full prognostic state is (tskin, water).
  const std::vector<double>& tskin_state() const { return tskin_; }
  const std::vector<double>& water_state() const { return water_; }
  void set_state(std::vector<double> tskin, std::vector<double> water) {
    tskin_ = std::move(tskin);
    water_ = std::move(water);
  }

 private:
  LandConfig config_;
  std::vector<double> tskin_;
  std::vector<double> water_;  ///< bucket content [m]
};

}  // namespace ap3::lnd
