# Empty dependencies file for typhoon_doksuri.
# This may be replaced when dependencies are built.
