// §5.2.4 benchmark: coupler optimizations.
//
//  (a) Rearrangement strategies: the original all-to-all collective vs the
//      optimized non-blocking point-to-point path, on a block->roundrobin
//      transpose of a multi-field AttrVect at several rank counts.
//  (b) Offline precompute: building the GSMap/Router tables online at init
//      vs serializing them offline and loading — the paper's fix for the
//      memory/time blowup on Sunway core groups.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "mct/router.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::mct;

double time_rearrange(int nranks, std::int64_t npoints, int nfields,
                      Strategy method, int repeats) {
  static double seconds;
  seconds = 0.0;
  par::run(nranks, [&](par::Comm& comm) {
    // Source: contiguous blocks. Destination: round-robin (worst-case
    // all-pairs transpose, like an atm->cpl regrid rearrangement).
    std::vector<std::vector<std::int64_t>> src_ids(
        static_cast<size_t>(nranks)),
        dst_ids(static_cast<size_t>(nranks));
    for (std::int64_t g = 0; g < npoints; ++g) {
      src_ids[static_cast<size_t>(g * nranks / npoints)].push_back(g);
      dst_ids[static_cast<size_t>(g % nranks)].push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);
    Rearranger rearranger(comm,
                          Router::build(comm.rank(), src_map, dst_map));

    std::vector<std::string> fields;
    for (int f = 0; f < nfields; ++f) fields.push_back("f" + std::to_string(f));
    AttrVect src(fields, src_ids[static_cast<size_t>(comm.rank())].size());
    AttrVect dst(fields, dst_ids[static_cast<size_t>(comm.rank())].size());
    for (std::size_t f = 0; f < src.num_fields(); ++f)
      for (std::size_t p = 0; p < src.num_points(); ++p)
        src.at(f, p) = static_cast<double>(f * 1000 + p);

    comm.barrier();
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) rearranger.rearrange(src, dst, method);
    comm.barrier();
    if (comm.rank() == 0)
      seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                repeats;
  });
  return seconds;
}

}  // namespace

int main() {
  std::printf("§5.2.4 — coupler rearrangement and offline router tables\n");
  std::printf("=========================================================\n\n");

  std::printf("(a) rearrangement: all-to-all vs non-blocking p2p\n");
  std::printf("    (block -> round-robin transpose, 8 fields)\n");
  std::printf("    ranks    points    alltoallv [us]   p2p [us]   ratio\n");
  for (int nranks : {4, 8, 16}) {
    const std::int64_t npoints = 20000;
    const double t_a2a = time_rearrange(nranks, npoints, 8,
                                        Strategy::kAlltoallv, 10);
    const double t_p2p = time_rearrange(nranks, npoints, 8,
                                        Strategy::kSplitPhase, 10);
    std::printf("    %5d  %8lld    %12.1f   %8.1f   %5.2f\n", nranks,
                static_cast<long long>(npoints), t_a2a * 1e6, t_p2p * 1e6,
                t_a2a / t_p2p);
  }

  std::printf("\n(b) router tables: online build vs offline load\n");
  std::printf("    points    build [ms]   save+load [ms]   load-only [ms]\n");
  for (std::int64_t npoints : {20000LL, 80000LL, 320000LL}) {
    // Two 16-rank decompositions: blocks vs stripes of 16.
    std::vector<std::vector<std::int64_t>> src_ids(16), dst_ids(16);
    for (std::int64_t g = 0; g < npoints; ++g) {
      src_ids[static_cast<size_t>(g * 16 / npoints)].push_back(g);
      dst_ids[static_cast<size_t>((g / 16) % 16)].push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);

    const auto t0 = std::chrono::steady_clock::now();
    const Router online = Router::build(0, src_map, dst_map);
    const auto t1 = std::chrono::steady_clock::now();
    const std::string path = "/tmp/ap3_bench_router.bin";
    online.save(path);
    const Router loaded = Router::load(path);
    const auto t2 = std::chrono::steady_clock::now();
    const Router loaded2 = Router::load(path);
    const auto t3 = std::chrono::steady_clock::now();
    std::remove(path.c_str());

    if (!(online == loaded) || !(online == loaded2)) {
      std::printf("    ROUTER MISMATCH\n");
      return 1;
    }
    std::printf("    %6lld   %10.2f   %14.2f   %14.2f\n",
                static_cast<long long>(npoints),
                std::chrono::duration<double>(t1 - t0).count() * 1e3,
                std::chrono::duration<double>(t2 - t1).count() * 1e3,
                std::chrono::duration<double>(t3 - t2).count() * 1e3);
  }
  std::printf("\n    at init time every rank loads its precomputed table "
              "instead of\n    building it — the §5.2.4 memory/time fix for "
              "Sunway core groups.\n");
  return 0;
}
