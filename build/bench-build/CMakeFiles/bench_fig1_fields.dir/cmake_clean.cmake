file(REMOVE_RECURSE
  "../bench/bench_fig1_fields"
  "../bench/bench_fig1_fields.pdb"
  "CMakeFiles/bench_fig1_fields.dir/bench_fig1_fields.cpp.o"
  "CMakeFiles/bench_fig1_fields.dir/bench_fig1_fields.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
