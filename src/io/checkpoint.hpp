// Versioned checkpoint container over the §5.2.5 subfile I/O layer.
//
// A checkpoint is a directory holding one subfile set per named state
// section (written through io::write_subfiles, so the same aggregation
// groups and checksum footers apply) plus a MANIFEST.bin written by global
// rank 0:
//
//   magic "AP3CKPT\0" | version u32 | nranks i32 | num_subfiles i32 |
//   sections [name...] | scalars [(name, f64)...] | FNV-1a checksum u64
//
// The manifest pins the format version, the rank count (restarts must use
// the decomposition they were written with — the same contract production
// restart files carry), the section inventory, and scalar state such as the
// coupler clock. Readers validate magic/version/checksum before touching
// any section, so a corrupted or truncated snapshot fails with a clear
// ap3::Error instead of undefined behavior; per-section payloads are
// additionally covered by the subfile checksum footers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/subfile.hpp"
#include "par/comm.hpp"

namespace ap3::io {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One named piece of model state on this rank. `data.ids` are
/// rank-relative labels (local indices, or `rank` for replicated values) —
/// they are verified on restore, which makes decomposition mismatches a
/// hard error rather than silent corruption.
struct Section {
  std::string name;
  FieldData data;
};

/// FieldData labelling `values` with local indices 0..n-1.
FieldData local_field(const std::vector<double>& values);
/// FieldData holding one per-rank value, labelled by the rank itself.
FieldData rank_scalar(int rank, double value);
/// Locate `name` in a restored section list and demand this rank's size;
/// throws ap3::Error when the section is absent or sized for a different
/// decomposition.
const std::vector<double>& section_values(const std::vector<Section>& sections,
                                          const std::string& name,
                                          std::size_t expected_size);

/// Collective writer: construct, add sections (same order on every rank),
/// set scalars (rank 0's values are authoritative), then finalize().
class CheckpointWriter {
 public:
  CheckpointWriter(const par::Comm& comm, std::string dir,
                   int num_subfiles = 1);

  /// Collective: writes the section's subfile set immediately.
  void add_section(const std::string& name, const FieldData& local);
  void add_section(const Section& section) {
    add_section(section.name, section.data);
  }
  /// Scalar state recorded in the manifest (clock steps, config echo, ...).
  void set_scalar(const std::string& name, double value);
  /// Collective: writes the manifest on rank 0. Must be called exactly once.
  void finalize();

  std::size_t bytes_written() const { return bytes_written_; }

 private:
  const par::Comm& comm_;
  std::string dir_;
  int num_subfiles_;
  bool finalized_ = false;
  std::vector<std::string> section_names_;
  std::map<std::string, double> scalars_;
  std::size_t bytes_written_ = 0;
};

/// Collective reader: construction validates the manifest (magic, version,
/// checksum, rank count) and broadcasts it, so every rank can query scalars
/// locally and read sections collectively.
class CheckpointReader {
 public:
  CheckpointReader(const par::Comm& comm, const std::string& dir);

  bool has_section(const std::string& name) const;
  bool has_scalar(const std::string& name) const;
  double scalar(const std::string& name) const;  ///< throws if missing

  /// Collective: reads one section; `expected_ids` is this rank's label
  /// vector from the matching Section layout (empty on non-owning ranks).
  FieldData read_section(const std::string& name,
                         const std::vector<std::int64_t>& expected_ids) const;

  const std::vector<std::string>& section_names() const {
    return section_names_;
  }
  int num_subfiles() const { return num_subfiles_; }

 private:
  const par::Comm& comm_;
  std::string dir_;
  int num_subfiles_ = 1;
  std::vector<std::string> section_names_;
  std::map<std::string, double> scalars_;
};

}  // namespace ap3::io
