// Tripolar ocean grid — the LICOM mesh (§5.2.2, Table 1).
//
// LICOM uses an nx (longitudes) × ny (latitudes) × nz (80 levels) tripolar
// grid: regular below ~65°N, with the northern singularity split into two
// poles over land. For this reproduction the geometric consequence that
// matters is the *north-fold* communication topology (the top row exchanges
// with itself, reversed) plus latitude-dependent cell areas; both are
// implemented. Land/bathymetry come from a deterministic synthetic continent
// function tuned to the real Earth's ~71 % ocean surface fraction and ~30 %
// 3-D non-ocean volume (the paper's exclusion optimization removes exactly
// those points).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ap3::grid {

struct TripolarConfig {
  int nx = 360;        ///< longitudes
  int ny = 218;        ///< latitudes
  int nz = 80;         ///< vertical levels
  double lat_south = -78.0;  ///< southern boundary (deg)
  double lat_north = 90.0;
  std::uint64_t land_seed = 20230725;  ///< continents are seed-deterministic

  /// The paper's resolutions (Table 1): 1/2/3/5/10 km map to these shapes.
  static TripolarConfig for_resolution_km(double km);

  friend bool operator==(const TripolarConfig&, const TripolarConfig&) = default;
};

/// Deterministic synthetic continent field: positive values are land-ish.
/// Shared by every component so atmosphere, ocean, ice, and land agree on
/// where the continents are.
double continent_field(double lon_rad, double lat_rad, std::uint64_t seed);
/// Land test at the threshold used by the ocean bathymetry.
bool is_land_at(double lon_rad, double lat_rad, std::uint64_t seed);

class TripolarGrid {
 public:
  explicit TripolarGrid(const TripolarConfig& config);

  int nx() const { return config_.nx; }
  int ny() const { return config_.ny; }
  int nz() const { return config_.nz; }
  std::int64_t horizontal_points() const {
    return static_cast<std::int64_t>(config_.nx) * config_.ny;
  }
  std::int64_t total_points() const { return horizontal_points() * config_.nz; }

  double lon_deg(int i) const;   ///< cell-center longitude
  double lat_deg(int j) const;   ///< cell-center latitude
  /// Horizontal cell area (m²); includes cos(lat) convergence.
  double cell_area(int i, int j) const;

  /// Number of active ocean levels at column (i,j); 0 == land.
  int kmt(int i, int j) const { return kmt_[index(i, j)]; }
  bool is_ocean(int i, int j) const { return kmt(i, j) > 0; }
  bool is_ocean(int i, int j, int k) const { return k < kmt(i, j); }

  /// Surface ocean fraction (Earth: ~0.71).
  double ocean_surface_fraction() const;
  /// 3-D active fraction — the complement is what §5.2.2 removes (~30 %).
  double active_volume_fraction() const;
  std::int64_t active_points() const;

  /// Level depths (m), stretched: fine near surface, coarse at depth.
  double level_depth(int k) const { return depths_[static_cast<size_t>(k)]; }

  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(config_.nx) +
           static_cast<std::size_t>(i);
  }

  const TripolarConfig& config() const { return config_; }

  /// Bytes held by the bathymetry and level-depth tables (the state an
  /// ensemble member replicates when it builds a private grid).
  std::size_t resident_bytes() const {
    return kmt_.size() * sizeof(int) + depths_.size() * sizeof(double);
  }

 private:
  void build_bathymetry();
  TripolarConfig config_;
  std::vector<int> kmt_;
  std::vector<double> depths_;
};

}  // namespace ap3::grid
