#include "pp/pool.hpp"

#include <algorithm>

namespace ap3::pp {

ThreadPool::ThreadPool(int nthreads) {
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunks(std::size_t nchunks,
                            const std::function<void(std::size_t)>& fn) {
  if (nchunks == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  next_chunk_ = 0;
  total_chunks_ = nchunks;
  done_chunks_ = 0;
  ++generation_;
  cv_work_.notify_all();

  // The caller participates too, so small pools still make progress when a
  // worker is descheduled (this machine has a single CPU).
  for (;;) {
    if (next_chunk_ >= total_chunks_) break;
    const std::size_t mine = next_chunk_++;
    lock.unlock();
    fn(mine);
    lock.lock();
    ++done_chunks_;
    if (done_chunks_ == total_chunks_) cv_done_.notify_all();
  }
  cv_done_.wait(lock, [&] { return done_chunks_ == total_chunks_; });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    cv_work_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation &&
                       next_chunk_ < total_chunks_);
    });
    if (stop_) return;
    const auto* job = job_;
    const std::uint64_t generation = generation_;
    while (job_ == job && generation_ == generation &&
           next_chunk_ < total_chunks_) {
      const std::size_t mine = next_chunk_++;
      lock.unlock();
      (*job)(mine);
      lock.lock();
      ++done_chunks_;
      if (done_chunks_ == total_chunks_) cv_done_.notify_all();
    }
    seen_generation = generation;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace ap3::pp
