# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("par")
subdirs("pp")
subdirs("sunway")
subdirs("grid")
subdirs("mct")
subdirs("tensor")
subdirs("ai")
subdirs("precision")
subdirs("io")
subdirs("lnd")
subdirs("atm")
subdirs("ocn")
subdirs("ice")
subdirs("coupler")
subdirs("perf")
