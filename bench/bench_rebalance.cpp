// Benchmark: runtime load rebalancing of the coupled ocean decomposition.
//
// Runs the same toy coupled configuration with CoupledConfig::rebalance_every
// off and on, under four load conditions, and reports wall time plus the
// collective state hash for each run. The hash is the bit-exactness witness:
// migrating columns between ranks must not change a single bit of the coupled
// state relative to never migrating at all.
//
// Where the win comes from on this transport: each "-skewed" condition arms
// one component's synthetic straggler stall (<comp>:busy_seconds channel) on
// half of that component's domain, so the rank owning that half sleeps off a
// fixed busy-time per step while its neighbor idles in waits. The balancer
// reads the per-rank phase+busy cost from the obs layer and, for a migratable
// component (ocn, ice), shifts the block cut toward the straggler and
// migrates the columns; after that the stall band is split across the ranks,
// whose sleeps overlap in wall time, so the per-step critical path roughly
// halves. The atm-skewed condition is the negative control for migratability:
// the atmosphere's contiguous 1-D mesh partition has no cut lines to shift,
// so the balancer must assess the imbalance through the same decision channel
// yet never migrate. The "uniform" condition runs with no stall anywhere: the
// balancer must recognize the balanced load and never migrate
// (migrations == 0), and the measured speedup is the honest no-win baseline.
//
// Prints a table and writes BENCH_rebalance.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

constexpr int kRanks = 2;
constexpr int kReps = 3;
constexpr int kWindows = 6;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class Skew { kNone, kOcn, kIce, kAtm };

cpl::CoupledConfig bench_config(bool rebalance, Skew skew) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{48, 32, 6};
  config.ocn_couple_ratio = 1;
  // Straggler band on half of one component's domain: waiting-dominated
  // imbalance (I/O stalls, fault retransmissions) that leaves state alone.
  switch (skew) {
    case Skew::kNone:
      break;
    case Skew::kOcn:
      config.ocn.stall_seconds_per_point = 4.0e-6;
      config.ocn.stall_i_begin = 24;
      break;
    case Skew::kIce:
      // Ice steps once per coupling window, so the per-point stall must be
      // larger than the ocean's per-baroclinic-step one to dominate the
      // window the same way.
      config.ice.stall_seconds_per_point = 1.0e-3;
      config.ice.stall_i_begin = 24;
      break;
    case Skew::kAtm:
      config.atm.stall_seconds_per_point = 4.0e-4;
      config.atm.stall_cell_begin = 250;  // the whole second half of the mesh
      break;
  }
  if (rebalance) {
    config.rebalance_every = 1;
    // Stock hysteresis policy: the skewed conditions must clear the 1.15×
    // imbalance gate on merit, and the uniform condition must not.
  }
  return config;
}

struct RunResult {
  double best_seconds = 1e300;
  std::uint64_t state_hash = 0;
  long long migrations = 0;
};

/// One timed run: wall time over kWindows coupled windows plus the final
/// collective state hash (identical across reps — the whole run is
/// deterministic by construction).
RunResult run_once(bool rebalance, Skew skew) {
  std::atomic<double> wall{0.0};
  std::atomic<std::uint64_t> hash{0};
  std::atomic<long long> migrations{0};
  par::run(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, bench_config(rebalance, skew));
    comm.barrier();
    const double t0 = now_seconds();
    model.run_windows(kWindows);
    comm.barrier();
    const double t1 = now_seconds();
    const std::uint64_t h = model.state_hash();  // collective
    if (comm.rank() == 0) {
      wall = t1 - t0;
      hash = h;
      migrations = model.rebalance_migrations();
    }
  });
  return {wall.load(), hash.load(), migrations.load()};
}

}  // namespace

int main() {
  std::printf(
      "coupled rebalance benchmark: %d ranks, %d windows, best of %d\n\n",
      kRanks, kWindows, kReps);

  struct Cell {
    const char* condition;
    Skew skew;
    bool expect_migrations;  // migratable straggler must move; others must not
    RunResult off, on;
  };
  Cell cells[] = {{"ocn-skewed", Skew::kOcn, true, {}, {}},
                  {"ice-skewed", Skew::kIce, true, {}, {}},
                  {"atm-skewed", Skew::kAtm, false, {}, {}},
                  {"uniform", Skew::kNone, false, {}, {}}};
  constexpr std::size_t kCells = sizeof(cells) / sizeof(cells[0]);

  std::printf("  %-10s %16s %15s %9s %11s %10s\n", "condition",
              "rebalance off [s]", "rebalance on [s]", "speedup", "migrations",
              "bit-exact");
  for (Cell& cell : cells) {
    // Interleave the off/on runs rep by rep so ambient machine drift hits
    // both modes equally; best-of-kReps per mode on top of that.
    for (int rep = 0; rep < kReps; ++rep) {
      const RunResult off = run_once(/*rebalance=*/false, cell.skew);
      const RunResult on = run_once(/*rebalance=*/true, cell.skew);
      cell.off.best_seconds = std::min(cell.off.best_seconds, off.best_seconds);
      cell.on.best_seconds = std::min(cell.on.best_seconds, on.best_seconds);
      cell.off.state_hash = off.state_hash;
      cell.on.state_hash = on.state_hash;
      cell.on.migrations = on.migrations;
    }
    const double speedup = cell.off.best_seconds / cell.on.best_seconds;
    const bool exact = cell.off.state_hash == cell.on.state_hash;
    std::printf("  %-10s %16.4f %15.4f %8.3fx %11lld %10s\n", cell.condition,
                cell.off.best_seconds, cell.on.best_seconds, speedup,
                cell.on.migrations, exact ? "yes" : "NO");
    if (!exact) {
      std::fprintf(stderr,
                   "error: rebalancing changed the coupled state under %s "
                   "(%016llx vs %016llx)\n",
                   cell.condition,
                   static_cast<unsigned long long>(cell.off.state_hash),
                   static_cast<unsigned long long>(cell.on.state_hash));
      return 1;
    }
    if (cell.expect_migrations && cell.on.migrations <= 0) {
      std::fprintf(stderr,
                   "error: %s never migrated — benchmark vacuous\n",
                   cell.condition);
      return 1;
    }
    if (!cell.expect_migrations && cell.on.migrations != 0) {
      std::fprintf(stderr,
                   "error: %s migrated %lld times — %s\n", cell.condition,
                   cell.on.migrations,
                   cell.skew == Skew::kAtm
                       ? "the atmosphere has no cut lines to shift"
                       : "hysteresis gate failed");
      return 1;
    }
  }

  const double headline = cells[0].off.best_seconds / cells[0].on.best_seconds;
  const double ice_speedup =
      cells[1].off.best_seconds / cells[1].on.best_seconds;
  std::printf("\nheadline (ocn-skewed): %.3fx, ice-skewed: %.3fx from "
              "migrating the straggler band across ranks\n",
              headline, ice_speedup);

  FILE* f = std::fopen("BENCH_rebalance.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"ranks\": %d,\n  \"windows\": %d,\n  \"cases\": [\n",
                 kRanks, kWindows);
    for (std::size_t c = 0; c < kCells; ++c) {
      const Cell& cell = cells[c];
      std::fprintf(
          f,
          "    {\"condition\": \"%s\", \"off_seconds\": %.6f, "
          "\"on_seconds\": %.6f, \"speedup\": %.4f, "
          "\"state_hash_off\": \"%016llx\", \"state_hash_on\": \"%016llx\", "
          "\"hashes_equal\": %s, \"migrations\": %lld}%s\n",
          cell.condition, cell.off.best_seconds, cell.on.best_seconds,
          cell.off.best_seconds / cell.on.best_seconds,
          static_cast<unsigned long long>(cell.off.state_hash),
          static_cast<unsigned long long>(cell.on.state_hash),
          cell.off.state_hash == cell.on.state_hash ? "true" : "false",
          cell.on.migrations, c + 1 < kCells ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"skewed_speedup\": %.4f,\n"
                 "  \"ice_skewed_speedup\": %.4f\n"
                 "}\n",
                 headline, ice_speedup);
    std::fclose(f);
    std::printf("wrote BENCH_rebalance.json\n");
  }
  return 0;
}
