file(REMOVE_RECURSE
  "CMakeFiles/ap3_base.dir/config.cpp.o"
  "CMakeFiles/ap3_base.dir/config.cpp.o.d"
  "CMakeFiles/ap3_base.dir/log.cpp.o"
  "CMakeFiles/ap3_base.dir/log.cpp.o.d"
  "CMakeFiles/ap3_base.dir/timer.cpp.o"
  "CMakeFiles/ap3_base.dir/timer.cpp.o.d"
  "libap3_base.a"
  "libap3_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
