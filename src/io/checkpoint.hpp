// Versioned checkpoint container over the §5.2.5 subfile I/O layer.
//
// A checkpoint is a directory holding one subfile set per named state
// section (written through the subfile v2 record format, so the same
// aggregation groups and whole-record checksums apply) plus a MANIFEST.bin
// committed by global rank 0:
//
//   magic "AP3CKPT\0" | version u32 = 2 | nranks i32 | num_subfiles i32 |
//   sections [(name, codec u8)...] | scalars [(name, f64)...] |
//   FNV-1a checksum u64
//
// The manifest pins the format version, the rank count (restarts must use
// the decomposition they were written with — the same contract production
// restart files carry), the section inventory with each section's codec
// (fp64 bit-exact or group-scaled fp32+scales), and scalar state such as
// the coupler clock.
//
// Commit protocol (DESIGN.md §16): the manifest IS the commit point —
// "manifest visible ⇒ snapshot complete". The writer's constructor removes
// any previous manifest before the first section write (invalidate before
// mutate, so re-checkpointing into a reused directory can never leave an
// old manifest vouching for a torn old/new section mix), and finalize()
// publishes via MANIFEST.bin.tmp + std::filesystem::rename, so a crash at
// any point leaves either the old complete snapshot, no snapshot, or the
// new complete snapshot — never a half manifest.
//
// Async mode: add_section gathers on the calling rank threads (collectives
// must never run on pool workers) and hands the pure-local encode+write of
// each gathered subfile to a pp::Stream task lane, overlapping checkpoint
// I/O with continued stepping. wait() is the collective completion fence:
// it drains the lane and rethrows any deferred write failure on EVERY rank
// (an allreduce folds the per-rank failure flags), so errors surface
// symmetrically instead of deadlocking the healthy ranks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/subfile.hpp"
#include "par/comm.hpp"
#include "pp/stream.hpp"

namespace ap3::io {

inline constexpr std::uint32_t kCheckpointVersion = 2;

/// One named piece of model state on this rank. `data.ids` are
/// rank-relative labels (local indices, or `rank` for replicated values) —
/// they are verified on restore, which makes decomposition mismatches a
/// hard error rather than silent corruption.
struct Section {
  std::string name;
  FieldData data;
};

/// Checkpoint I/O policy, carried by the driver config; the codec actually
/// used for each section is recorded in the manifest.
struct CheckpointOptions {
  int num_subfiles = 1;
  /// Default payload codec for sections; callers may override per section
  /// (the driver forces kFp64 for bit-sensitive sections like RNG state).
  CodecSpec codec{};
  /// Double-buffer section writes onto a pp::Stream task lane.
  bool async = false;
  /// Synthetic slow-disk bench knob, forwarded to the subfile writer.
  double slow_disk_seconds_per_mb = 0.0;
};

/// FieldData labelling `values` with local indices 0..n-1.
FieldData local_field(const std::vector<double>& values);
/// FieldData holding one per-rank value, labelled by the rank itself.
FieldData rank_scalar(int rank, double value);
/// Locate `name` in a restored section list and demand this rank's size;
/// throws ap3::Error when the section is absent or sized for a different
/// decomposition.
const std::vector<double>& section_values(const std::vector<Section>& sections,
                                          const std::string& name,
                                          std::size_t expected_size);

/// Collective writer: construct, add sections (same order on every rank),
/// set scalars (rank 0's values are authoritative), then finalize().
/// Encode/write failures — disk full, a group-scaled section exceeding its
/// ULP bound — are deferred to wait()/finalize(), which throw them on every
/// rank; add_section only throws for symmetric misuse (bad/duplicate name).
class CheckpointWriter {
 public:
  CheckpointWriter(const par::Comm& comm, std::string dir,
                   CheckpointOptions options);
  /// Sync fp64 writer (the historical default).
  CheckpointWriter(const par::Comm& comm, std::string dir,
                   int num_subfiles = 1)
      : CheckpointWriter(comm, std::move(dir),
                         CheckpointOptions{num_subfiles}) {}
  /// Drains any still-pending async writes (without collectives — safe on
  /// one rank during exception unwind); an unfinalized dir has no manifest
  /// and therefore no claim to completeness.
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Collective: gathers the section and writes its subfile set — inline
  /// when sync, on the stream lane when async. Uses the options codec
  /// unless the `spec` overload overrides it.
  void add_section(const std::string& name, const FieldData& local);
  void add_section(const std::string& name, const FieldData& local,
                   const CodecSpec& spec);
  void add_section(const Section& section) {
    add_section(section.name, section.data);
  }
  /// Scalar state recorded in the manifest (clock steps, config echo, ...).
  void set_scalar(const std::string& name, double value);

  /// Collective completion fence: blocks until every enqueued write
  /// finished, then rethrows the first deferred failure on ALL ranks.
  void wait();
  /// Non-collective poll: true once every enqueued write has finished.
  bool writes_complete() const;
  /// Enqueued-but-not-yet-fenced async writes on this rank.
  std::size_t pending_writes() const { return pending_.size(); }

  /// Collective: wait(), then commit the manifest on rank 0 via tmp+rename.
  /// Must be called exactly once; without it the snapshot does not exist.
  void finalize();

  const std::string& dir() const { return dir_; }
  /// Bytes this rank wrote: subfile records on aggregator ranks, plus the
  /// manifest — counted exactly once, on global rank 0 only.
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  struct PendingWrite {
    pp::Event event;
    std::shared_ptr<std::size_t> bytes;
  };

  void record_section_write(const std::string& name, const FieldData& local,
                            const CodecSpec& spec);

  const par::Comm& comm_;
  std::string dir_;
  CheckpointOptions options_;
  bool finalized_ = false;
  std::vector<std::pair<std::string, Codec>> sections_;
  std::map<std::string, double> scalars_;
  std::size_t bytes_written_ = 0;
  std::string deferred_error_;  ///< first local encode/write failure
  std::unique_ptr<pp::Stream> stream_;  ///< async write lane (async only)
  std::vector<PendingWrite> pending_;
};

/// Collective reader: construction validates the manifest (magic, version,
/// checksum, rank count) on every rank symmetrically, so every rank can
/// query scalars locally and read sections collectively.
class CheckpointReader {
 public:
  CheckpointReader(const par::Comm& comm, const std::string& dir);

  bool has_section(const std::string& name) const;
  bool has_scalar(const std::string& name) const;
  double scalar(const std::string& name) const;  ///< throws if missing
  /// The codec a section was written with (from the manifest; the subfile
  /// records must agree, which read_section verifies).
  Codec section_codec(const std::string& name) const;

  /// Collective: reads one section; `expected_ids` is this rank's label
  /// vector from the matching Section layout (empty on non-owning ranks).
  FieldData read_section(const std::string& name,
                         const std::vector<std::int64_t>& expected_ids) const;

  std::vector<std::string> section_names() const;
  int num_subfiles() const { return num_subfiles_; }

 private:
  const par::Comm& comm_;
  std::string dir_;
  int num_subfiles_ = 1;
  std::vector<std::pair<std::string, Codec>> sections_;
  std::map<std::string, double> scalars_;
};

}  // namespace ap3::io
