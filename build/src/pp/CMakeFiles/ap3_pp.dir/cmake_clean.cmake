file(REMOVE_RECURSE
  "CMakeFiles/ap3_pp.dir/pool.cpp.o"
  "CMakeFiles/ap3_pp.dir/pool.cpp.o.d"
  "CMakeFiles/ap3_pp.dir/registry.cpp.o"
  "CMakeFiles/ap3_pp.dir/registry.cpp.o.d"
  "CMakeFiles/ap3_pp.dir/tile.cpp.o"
  "CMakeFiles/ap3_pp.dir/tile.cpp.o.d"
  "libap3_pp.a"
  "libap3_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
