// The two AI physics parameterization networks of §5.2.1.
//
// AI tendency module: inputs are vertical columns of horizontal wind (U, V),
// temperature (T), specific humidity (Q) and pressure (P); a 1-D convolution
// runs along the vertical column. Five ResUnits inside an 11-conv-layer CNN
// (1 input conv + 5 ResUnits × 2 convs), ~5e5 trainable parameters at the
// paper's width, producing tendencies (dU, dV, dT, dQ).
//
// AI radiation diagnosis module: a 7-layer MLP with residual connections;
// inputs are the flattened column plus skin temperature (tskin) and cosine
// of solar zenith angle (coszr); outputs surface downward shortwave (gsw)
// and longwave (glw) fluxes.
#pragma once

#include <cstdint>
#include <memory>

#include "tensor/layers.hpp"
#include "tensor/optimizer.hpp"

namespace ap3::ai {

struct SuiteConfig {
  int levels = 30;            ///< vertical layers (paper: 30)
  int input_channels = 5;     ///< U, V, T, Q, P
  int tendency_channels = 4;  ///< dU, dV, dT, dQ
  int cnn_hidden = 32;        ///< channel width (paper-scale: 128)
  int cnn_kernel = 3;
  int mlp_hidden = 64;        ///< MLP width (paper-scale: 256)
  std::uint64_t seed = 42;

  /// The paper-scale configuration: ~5e5 trainable CNN parameters.
  static SuiteConfig paper_scale() {
    SuiteConfig config;
    config.cnn_hidden = 128;
    config.mlp_hidden = 256;
    return config;
  }

  int mlp_inputs() const { return input_channels * levels + 2; }  // +tskin,coszr
};

/// 11-layer tendency CNN with 5 ResUnits.
class TendencyCnn {
 public:
  explicit TendencyCnn(const SuiteConfig& config);

  /// x: (batch, input_channels, levels) -> (batch, tendency_channels, levels).
  tensor::Tensor forward(const tensor::Tensor& x) { return model_.forward(x); }

  tensor::Sequential& model() { return model_; }
  std::size_t num_params() { return model_.num_params(); }
  int num_conv_layers() const { return 11; }
  int num_res_units() const { return 5; }

  /// FLOPs of one forward pass per column (matmul-shaped work; feeds the
  /// Sunway/GPU tensor-throughput model).
  double flops_per_column() const;

  const SuiteConfig& config() const { return config_; }

 private:
  SuiteConfig config_;
  tensor::Sequential model_;
};

/// 7-layer radiation MLP with residual connections.
class RadiationMlp {
 public:
  explicit RadiationMlp(const SuiteConfig& config);

  /// x: (batch, mlp_inputs) -> (batch, 2) = (gsw, glw).
  tensor::Tensor forward(const tensor::Tensor& x) { return model_.forward(x); }

  tensor::Sequential& model() { return model_; }
  std::size_t num_params() { return model_.num_params(); }
  int num_dense_layers() const { return 7; }

  double flops_per_column() const;

  const SuiteConfig& config() const { return config_; }

 private:
  SuiteConfig config_;
  tensor::Sequential model_;
};

}  // namespace ap3::ai
