#include "tensor/optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace ap3::tensor {

Adam::Adam(Layer& model, AdamConfig config) : config_(config) {
  model.collect_params(params_);
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    m_[p].assign(params_[p].value->size(), 0.0f);
    v_[p].assign(params_[p].value->size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Tensor& value = *params_[p].value;
    const Tensor& grad = *params_[p].grad;
    for (std::size_t i = 0; i < value.size(); ++i) {
      m_[p][i] = config_.beta1 * m_[p][i] + (1.0f - config_.beta1) * grad[i];
      v_[p][i] =
          config_.beta2 * v_[p][i] + (1.0f - config_.beta2) * grad[i] * grad[i];
      const float mhat = m_[p][i] / bc1;
      const float vhat = v_[p][i] / bc2;
      value[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

Adam::State Adam::state() const {
  State out;
  out.t = t_;
  for (const auto& m : m_) out.m.insert(out.m.end(), m.begin(), m.end());
  for (const auto& v : v_) out.v.insert(out.v.end(), v.begin(), v.end());
  return out;
}

void Adam::restore_state(const State& state) {
  t_ = state.t;
  std::size_t pos = 0;
  for (auto& m : m_) {
    AP3_REQUIRE_MSG(pos + m.size() <= state.m.size(),
                    "Adam state blob too short");
    std::copy(state.m.begin() + static_cast<std::ptrdiff_t>(pos),
              state.m.begin() + static_cast<std::ptrdiff_t>(pos + m.size()),
              m.begin());
    pos += m.size();
  }
  AP3_REQUIRE_MSG(pos == state.m.size(), "Adam first-moment size mismatch");
  pos = 0;
  for (auto& v : v_) {
    AP3_REQUIRE_MSG(pos + v.size() <= state.v.size(),
                    "Adam state blob too short");
    std::copy(state.v.begin() + static_cast<std::ptrdiff_t>(pos),
              state.v.begin() + static_cast<std::ptrdiff_t>(pos + v.size()),
              v.begin());
    pos += v.size();
  }
  AP3_REQUIRE_MSG(pos == state.v.size(), "Adam second-moment size mismatch");
}

}  // namespace ap3::tensor
