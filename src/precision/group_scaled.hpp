// Group-wise scaling FP64/FP32 mixed precision (§5.2.3).
//
// Fields are stored as FP32 mantissas with one FP64 scale per group of
// consecutive elements: value ≈ float(value/scale) * scale. Scaling by the
// group max keeps the FP32 payload near unit magnitude, so relative accuracy
// is preserved even for fields whose absolute magnitude varies by orders of
// magnitude across the domain (sea-surface height vs abyssal pressure).
// The dynamical cores of GRIST and LICOM optionally round their state
// through this representation every step, and the acceptance metrics of the
// paper (relative L2 < 5 % for GRIST; area-weighted RMSD for LICOM) are
// implemented in base/stats.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ap3::precision {

/// Units-in-the-last-place distance between two doubles, mapping each to a
/// monotone integer line. 0 iff bit-identical (treating +0 and -0 as equal);
/// max() when either argument is NaN. Storing an fp64 value through an fp32
/// mantissa with an exact power-of-two scale loses at most 2^-24 relative
/// precision, i.e. ≤ 2^28 double-ULPs for normal values — the basis for the
/// checkpoint codec's default `ulp_bound`.
std::uint64_t ulp_distance(double a, double b);

class GroupScaledArray {
 public:
  GroupScaledArray() = default;

  /// Compress `values` with groups of `group_size` consecutive elements.
  static GroupScaledArray compress(std::span<const double> values,
                                   std::size_t group_size);
  /// FP32 entry point (the inference engine's weight/activation path).
  /// Because scales are powers of two, compressing finite FP32 data is
  /// lossless: decompress_floats returns the input bit for bit.
  static GroupScaledArray compress_floats(std::span<const float> values,
                                          std::size_t group_size);
  /// Reassemble from serialized parts (the checkpoint codec's restore path).
  /// `payload` must hold one float per element and `scales` one double per
  /// group of `group_size` consecutive elements.
  static GroupScaledArray from_raw(std::size_t size, std::size_t group_size,
                                   std::vector<float> payload,
                                   std::vector<double> scales);

  void decompress(std::span<double> out) const;
  void decompress_floats(std::span<float> out) const;
  double at(std::size_t i) const;
  std::size_t size() const { return size_; }
  std::size_t group_size() const { return group_size_; }

  /// Storage bytes of this representation (payload + scales).
  std::size_t bytes() const {
    return payload_.size() * sizeof(float) + scales_.size() * sizeof(double);
  }
  /// Bytes a plain FP64 array would need.
  std::size_t fp64_bytes() const { return size_ * sizeof(double); }
  double compression_ratio() const {
    return static_cast<double>(fp64_bytes()) / static_cast<double>(bytes());
  }

  /// Serialized parts, for codecs that persist the representation.
  const std::vector<float>& payload() const { return payload_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  std::size_t size_ = 0;
  std::size_t group_size_ = 1;
  std::vector<float> payload_;
  std::vector<double> scales_;
};

/// Round-trip an array through the mixed representation in place — this is
/// what a mixed-precision dycore step does to its state.
void round_through_mixed(std::span<double> values, std::size_t group_size);

/// Worst-case relative error of one compress/decompress round trip.
double max_relative_roundtrip_error(std::span<const double> values,
                                    std::size_t group_size);

}  // namespace ap3::precision
