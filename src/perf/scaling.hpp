// The calibrated strong/weak-scaling model that regenerates Table 2 and
// Fig. 8 of the paper.
//
// Methodology (DESIGN.md §4): each configuration's wall time per simulated
// day decomposes into a mechanistic compute term (flops/bytes per core
// group or GPU through the sunway/orise hardware models) and a mechanistic
// communication term (halo + allreduce through the fat-tree network model).
// Two software-efficiency coefficients per published curve — one on compute,
// one on communication — are solved from the smallest- and largest-scale
// published anchor points; every intermediate point and every efficiency
// number is then *predicted* and compared against the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "perf/network.hpp"
#include "perf/workload.hpp"

namespace ap3::perf {

enum class CodePath { kMpe, kCpeOpt };

/// Wall-clock cost of one simulated day, split by origin.
struct DayCost {
  double compute = 0.0;
  double comm = 0.0;
  double total() const { return compute + comm; }
};

inline double sypd_from_seconds_per_day(double seconds) {
  return 86400.0 / (365.0 * seconds);
}
inline double seconds_per_day_from_sypd(double sypd) {
  return 86400.0 / (365.0 * sypd);
}

struct CurvePoint {
  long long cores = 0;   ///< as the paper reports (MPE cores, CPE cores, GPUs)
  long long units = 0;   ///< model units: nodes (Sunway) or GPUs (ORISE)
  double sypd_paper = 0.0;  ///< 0 when the paper gives no value at this point
  double sypd_model = 0.0;
};

struct ScalingCurve {
  std::string label;
  std::vector<CurvePoint> points;
  double calib_compute = 1.0;  ///< solved coefficient a
  double calib_comm = 1.0;     ///< solved coefficient b

  /// Strong-scaling parallel efficiency between first and last points.
  double efficiency_model() const;
  double efficiency_paper() const;
};

class ScalingModel {
 public:
  ScalingModel();

  // --- mechanistic per-day costs ---------------------------------------------
  DayCost atm_day_sunway(const AtmWorkload& w, long long nodes,
                         CodePath path) const;
  DayCost ocn_day_sunway(const OcnWorkload& w, long long nodes,
                         CodePath path) const;
  DayCost ocn_day_orise(const OcnWorkload& w, long long gpus,
                        bool optimized) const;
  /// Fully coupled AP3ESM: concurrent task domains + coupler rearrangement.
  DayCost coupled_day(const AtmWorkload& aw, const OcnWorkload& ow,
                      long long nodes, double atm_fraction) const;

  /// Calibrate a curve against its anchors (first/last with sypd_paper > 0)
  /// and fill sypd_model at every point.
  ScalingCurve calibrate(const std::string& label,
                         std::vector<CurvePoint> points,
                         const std::function<DayCost(long long)>& cost) const;

  // --- the published experiments ------------------------------------------------
  /// All Fig. 8a / Table 2 strong-scaling curves with the paper's anchors.
  std::vector<ScalingCurve> table2_strong_scaling() const;
  /// Fig. 8b weak scaling (atm 25/10/6/3 km; ocn 10/5/3/2 km); returns the
  /// curves plus the weak-scaling efficiencies via `weak_efficiency`.
  ScalingCurve fig8b_weak_atm() const;
  ScalingCurve fig8b_weak_ocn() const;
  /// Weak-scaling efficiency: throughput-per-unit at the largest point over
  /// the smallest, with per-unit work held ~constant.
  static double weak_efficiency(const ScalingCurve& curve,
                                const std::vector<double>& points_per_config);

  const NetworkModel& sunway_network() const { return sunway_net_; }
  const NetworkModel& orise_network() const { return orise_net_; }

 private:
  NetworkModel sunway_net_;
  NetworkModel orise_net_;
};

}  // namespace ap3::perf
