// Coupling clock with per-component alarms (§5.1.1: "The coupler manages the
// main clock in the system and maintains a clock that is associated with
// each component... the coupling period is consistent with their internal
// timestep").
#pragma once

#include <string>
#include <vector>

namespace ap3::cpl {

class Clock {
 public:
  /// `step_seconds` is the master coupling step (the finest period).
  Clock(double start_seconds, double step_seconds);

  double now() const { return now_; }
  double start() const { return start_; }
  double step() const { return step_; }
  long long steps_taken() const { return steps_; }

  /// Register an alarm ringing every `every_steps` master steps (at the
  /// *start* of a step whose index is a multiple). Returns an alarm id.
  int add_alarm(const std::string& name, int every_steps);

  /// True if the alarm rings at the step about to run.
  bool ringing(int alarm_id) const;
  const std::string& alarm_name(int alarm_id) const;

  /// Advance one master step.
  void advance();

  /// Jump to an absolute step count (checkpoint restore). Alarms are a pure
  /// function of the step index, so they resume consistently.
  void restore(long long steps_taken);

 private:
  struct Alarm {
    std::string name;
    int every_steps;
  };
  double start_;
  double step_;
  double now_;
  long long steps_ = 0;
  std::vector<Alarm> alarms_;
};

}  // namespace ap3::cpl
