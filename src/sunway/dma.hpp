// DMA engine: host-memory <-> LDM transfers with traffic accounting.
//
// On SW26010P every CPE stages data through explicit DMA; the volume moved
// (not just flops) determines kernel speed. The simulator performs the copy
// for real and accumulates bytes + simulated transfer time from the
// architecture's bandwidth/latency parameters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>

#include "obs/obs.hpp"
#include "sunway/arch.hpp"

namespace ap3::sunway {

class DmaEngine {
 public:
  /// Copy main-memory -> LDM.
  void get(void* ldm_dst, const void* host_src, std::size_t bytes) {
    std::memcpy(ldm_dst, host_src, bytes);
    account(bytes);
  }

  /// Copy LDM -> main-memory.
  void put(void* host_dst, const void* ldm_src, std::size_t bytes) {
    std::memcpy(host_dst, ldm_src, bytes);
    account(bytes);
  }

  std::size_t total_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::size_t transfers() const {
    return transfers_.load(std::memory_order_relaxed);
  }

  /// Simulated wall time spent in DMA so far (latency + bytes/bandwidth).
  double simulated_seconds() const {
    return static_cast<double>(transfers()) * kDmaLatencySeconds +
           static_cast<double>(total_bytes()) /
               (kDmaBandwidthGBs * 1e9);
  }

  void reset() {
    bytes_.store(0);
    transfers_.store(0);
  }

 private:
  void account(std::size_t bytes) {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    transfers_.fetch_add(1, std::memory_order_relaxed);
    // Mirror into the observability counter family so DMA volume is visible
    // outside src/sunway (merged across CPE worker threads on export).
    if (obs::enabled()) {
      obs::counter_add("sunway:dma:bytes", static_cast<double>(bytes));
      obs::counter_add("sunway:dma:transfers", 1.0);
    }
  }
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> transfers_{0};
};

}  // namespace ap3::sunway
