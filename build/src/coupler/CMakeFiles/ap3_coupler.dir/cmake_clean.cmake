file(REMOVE_RECURSE
  "CMakeFiles/ap3_coupler.dir/clock.cpp.o"
  "CMakeFiles/ap3_coupler.dir/clock.cpp.o.d"
  "CMakeFiles/ap3_coupler.dir/driver.cpp.o"
  "CMakeFiles/ap3_coupler.dir/driver.cpp.o.d"
  "CMakeFiles/ap3_coupler.dir/fluxes.cpp.o"
  "CMakeFiles/ap3_coupler.dir/fluxes.cpp.o.d"
  "CMakeFiles/ap3_coupler.dir/timing.cpp.o"
  "CMakeFiles/ap3_coupler.dir/timing.cpp.o.d"
  "libap3_coupler.a"
  "libap3_coupler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_coupler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
