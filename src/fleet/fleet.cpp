#include "fleet/fleet.hpp"

#include <utility>

#include "base/error.hpp"

namespace ap3::fleet {

namespace {

/// The configuration fields every member of a fleet must agree on: anything
/// that shapes the communicator split, the decompositions, or the shared
/// context. Members may only diverge where the scenario says (perturbation).
void require_fleet_compatible(const cpl::CoupledConfig& a,
                              const cpl::CoupledConfig& b, std::size_t k) {
  auto fail = [k](const char* what) {
    throw ConfigError(std::string("EnsembleFleet: member ") +
                      std::to_string(k) + " differs from member 0 in " + what +
                      "; fleet members must share layout, grids, and "
                      "coupling frequencies");
  };
  if (a.atm.mesh_n != b.atm.mesh_n) fail("atm.mesh_n");
  if (a.atm.nlev != b.atm.nlev) fail("atm.nlev");
  if (!(a.ocn.grid == b.ocn.grid)) fail("ocn.grid");
  if (a.layout != b.layout) fail("layout");
  if (a.atm_ranks != b.atm_ranks) fail("atm_ranks");
  if (a.ocn_couple_ratio != b.ocn_couple_ratio) fail("ocn_couple_ratio");
  if (a.regrid_neighbors != b.regrid_neighbors) fail("regrid_neighbors");
  if (a.ice_dt_seconds != b.ice_dt_seconds) fail("ice_dt_seconds");
}

}  // namespace

EnsembleFleet::EnsembleFleet(const par::Comm& comm,
                             std::vector<cpl::ScenarioSpec> specs)
    : comm_(comm) {
  if (specs.empty())
    throw ConfigError("EnsembleFleet: at least one ScenarioSpec is required");
  for (std::size_t k = 0; k < specs.size(); ++k) {
    if (specs[k].config.rebalance_every != 0)
      throw ConfigError(
          "EnsembleFleet: member " + std::to_string(k) +
          " requests runtime rebalancing; fleet members share coupling plans "
          "and must keep a static decomposition (rebalance_every = 0)");
    if (specs[k].adopt_plans)
      throw ConfigError("EnsembleFleet: ScenarioSpec::adopt_plans is "
                        "fleet-internal; leave it null");
    if (k > 0) {
      require_fleet_compatible(specs[0].config, specs[k].config, k);
      if (specs[k].shared != specs[0].shared)
        throw ConfigError(
            "EnsembleFleet: member " + std::to_string(k) +
            " carries a different shared context than member 0; all members "
            "must reference the same SharedInputs (or all none)");
    }
  }
  shared_ = specs[0].shared;

  members_.reserve(specs.size());
  members_.push_back(
      std::make_unique<cpl::CoupledModel>(comm_, std::move(specs[0])));
  const std::shared_ptr<const cpl::CouplingPlans>& plans =
      members_[0]->coupling_plans();
  for (std::size_t k = 1; k < specs.size(); ++k) {
    specs[k].adopt_plans = plans;
    members_.push_back(
        std::make_unique<cpl::CoupledModel>(comm_, std::move(specs[k])));
  }
}

std::vector<cpl::ScenarioSpec> EnsembleFleet::perturbed_specs(
    const cpl::CoupledConfig& config, int members,
    std::shared_ptr<const cpl::SharedInputs> shared, std::uint64_t seed_base,
    double amplitude_k) {
  AP3_REQUIRE_MSG(members >= 1, "perturbed_specs: members must be >= 1");
  std::vector<cpl::ScenarioSpec> specs(static_cast<std::size_t>(members));
  for (int k = 0; k < members; ++k) {
    auto& s = specs[static_cast<std::size_t>(k)];
    s.config = config;
    s.shared = shared;
    s.perturbation_seed =
        k == 0 ? 0 : seed_base + static_cast<std::uint64_t>(k);
    s.perturbation_kelvin = amplitude_k;
    s.name = k == 0 ? "control" : "member-" + std::to_string(k);
  }
  return specs;
}

void EnsembleFleet::run_windows(int windows) {
  // Round-robin scheduler: one master window per member per sweep, so the
  // members' communication phases interleave on the rank threads instead of
  // one member monopolizing the process for its whole run.
  for (int w = 0; w < windows; ++w) {
    for (auto& member : members_) member->run_windows(1);
    ++windows_run_;
  }
}

void EnsembleFleet::install_ai_physics(cpl::AiInstallOptions options) {
  if (!options.suite) {
    if (!shared_ || !shared_->has_frozen_suite())
      throw ConfigError(
          "EnsembleFleet::install_ai_physics: no suite given and the shared "
          "context holds no frozen AI weights; pass options.suite or build "
          "the SharedInputs with a trained suite");
    options.suite = shared_->materialize_suite();
  }
  if (options.online && members_.size() > 1)
    throw ConfigError(
        "EnsembleFleet::install_ai_physics: online training would mutate the "
        "weights every member shares; fleet suites are frozen (run a "
        "single-member fleet to fine-tune)");
  suite_ = options.suite;
  // The same suite pointer goes to every member: one InferenceEngine
  // micro-batches columns across the whole fleet.
  for (auto& member : members_) member->install_ai_physics(options);
}

std::vector<std::uint64_t> EnsembleFleet::state_hashes() {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(members_.size());
  for (auto& member : members_) hashes.push_back(member->state_hash());
  return hashes;
}

std::vector<cpl::CoupledDiagnostics> EnsembleFleet::diagnostics() {
  std::vector<cpl::CoupledDiagnostics> out;
  out.reserve(members_.size());
  for (auto& member : members_) out.push_back(member->diagnostics());
  return out;
}

}  // namespace ap3::fleet
