#include "io/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/error.hpp"

namespace ap3::io {

namespace {

constexpr char kMagic[8] = {'A', 'P', '3', 'C', 'K', 'P', 'T', '\0'};

std::uint64_t fnv1a(const std::vector<char>& bytes, std::size_t count) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void put(std::vector<char>& out, const T& value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

void put_string(std::vector<char>& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor over the manifest blob; short reads (a truncated
/// file) surface as ap3::Error, never as out-of-bounds access.
struct Cursor {
  const std::vector<char>& bytes;
  std::size_t at = 0;

  template <typename T>
  T get() {
    AP3_REQUIRE_MSG(at + sizeof(T) <= bytes.size(),
                    "checkpoint manifest truncated");
    T value;
    std::memcpy(&value, bytes.data() + at, sizeof(T));
    at += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    AP3_REQUIRE_MSG(at + n <= bytes.size(), "checkpoint manifest truncated");
    std::string s(bytes.data() + at, n);
    at += n;
    return s;
  }
};

std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST.bin";
}

}  // namespace

FieldData local_field(const std::vector<double>& values) {
  FieldData out;
  out.values = values;
  out.ids.resize(values.size());
  for (std::size_t i = 0; i < out.ids.size(); ++i)
    out.ids[i] = static_cast<std::int64_t>(i);
  return out;
}

FieldData rank_scalar(int rank, double value) {
  return {{rank}, {value}};
}

const std::vector<double>& section_values(const std::vector<Section>& sections,
                                          const std::string& name,
                                          std::size_t expected_size) {
  for (const Section& s : sections) {
    if (s.name != name) continue;
    AP3_REQUIRE_MSG(s.data.values.size() == expected_size,
                    "restore section '" << name << "' has "
                                        << s.data.values.size()
                                        << " values, expected "
                                        << expected_size);
    return s.data.values;
  }
  throw Error("restore is missing section '" + name + "'");
}

CheckpointWriter::CheckpointWriter(const par::Comm& comm, std::string dir,
                                   int num_subfiles)
    : comm_(comm), dir_(std::move(dir)), num_subfiles_(num_subfiles) {
  AP3_REQUIRE(num_subfiles_ >= 1);
  if (comm_.rank() == 0) std::filesystem::create_directories(dir_);
  comm_.barrier();  // no rank writes a section before the directory exists
}

void CheckpointWriter::add_section(const std::string& name,
                                   const FieldData& local) {
  AP3_REQUIRE_MSG(!finalized_, "add_section after finalize");
  AP3_REQUIRE_MSG(!name.empty() && name.find('/') == std::string::npos,
                  "bad section name '" << name << "'");
  AP3_REQUIRE_MSG(std::find(section_names_.begin(), section_names_.end(),
                            name) == section_names_.end(),
                  "duplicate checkpoint section '" << name << "'");
  bytes_written_ +=
      write_subfiles(comm_, {dir_ + "/" + name, num_subfiles_}, local);
  section_names_.push_back(name);
}

void CheckpointWriter::set_scalar(const std::string& name, double value) {
  AP3_REQUIRE_MSG(!finalized_, "set_scalar after finalize");
  scalars_[name] = value;
}

void CheckpointWriter::finalize() {
  AP3_REQUIRE_MSG(!finalized_, "finalize called twice");
  finalized_ = true;
  comm_.barrier();  // every section fully on disk before the manifest appears
  if (comm_.rank() == 0) {
    std::vector<char> blob;
    blob.insert(blob.end(), kMagic, kMagic + sizeof(kMagic));
    put(blob, kCheckpointVersion);
    put(blob, static_cast<std::int32_t>(comm_.size()));
    put(blob, static_cast<std::int32_t>(num_subfiles_));
    put(blob, static_cast<std::uint32_t>(section_names_.size()));
    for (const std::string& name : section_names_) put_string(blob, name);
    put(blob, static_cast<std::uint32_t>(scalars_.size()));
    for (const auto& [name, value] : scalars_) {
      put_string(blob, name);
      put(blob, value);
    }
    put(blob, fnv1a(blob, blob.size()));

    std::ofstream out(manifest_path(dir_), std::ios::binary | std::ios::trunc);
    AP3_REQUIRE_MSG(out, "cannot write " << manifest_path(dir_));
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    AP3_REQUIRE_MSG(out.good(), "short write to " << manifest_path(dir_));
    bytes_written_ += blob.size();
  }
  comm_.barrier();  // the manifest is the commit point: visible ⇒ complete
}

CheckpointReader::CheckpointReader(const par::Comm& comm,
                                   const std::string& dir)
    : comm_(comm), dir_(dir) {
  // Every rank reads and validates the manifest itself (shared filesystem in
  // this in-process runtime). Symmetric validation means a bad snapshot
  // throws the same ap3::Error on all ranks instead of deadlocking the ones
  // waiting on a broadcast that never comes.
  std::ifstream in(manifest_path(dir_), std::ios::binary);
  AP3_REQUIRE_MSG(in, "no checkpoint manifest at " << manifest_path(dir_));
  std::vector<char> blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  AP3_REQUIRE_MSG(blob.size() > sizeof(kMagic) + sizeof(std::uint64_t),
                  "checkpoint manifest truncated");
  AP3_REQUIRE_MSG(std::memcmp(blob.data(), kMagic, sizeof(kMagic)) == 0,
                  "not a checkpoint manifest: bad magic");
  Cursor cursor{blob, sizeof(kMagic)};

  const auto version = cursor.get<std::uint32_t>();
  AP3_REQUIRE_MSG(version == kCheckpointVersion,
                  "checkpoint version " << version << " unsupported (want "
                                        << kCheckpointVersion << ")");
  const auto nranks = cursor.get<std::int32_t>();
  AP3_REQUIRE_MSG(nranks == comm_.size(),
                  "checkpoint written by " << nranks << " ranks, restoring on "
                                           << comm_.size());
  num_subfiles_ = cursor.get<std::int32_t>();
  AP3_REQUIRE(num_subfiles_ >= 1);

  const auto nsections = cursor.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nsections; ++i)
    section_names_.push_back(cursor.get_string());
  const auto nscalars = cursor.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nscalars; ++i) {
    std::string name = cursor.get_string();
    scalars_[std::move(name)] = cursor.get<double>();
  }

  const auto stored = cursor.get<std::uint64_t>();
  AP3_REQUIRE_MSG(stored == fnv1a(blob, cursor.at - sizeof(std::uint64_t)),
                  "checkpoint manifest checksum mismatch (corrupt snapshot)");
  AP3_REQUIRE_MSG(cursor.at == blob.size(),
                  "trailing bytes after checkpoint manifest");
}

bool CheckpointReader::has_section(const std::string& name) const {
  return std::find(section_names_.begin(), section_names_.end(), name) !=
         section_names_.end();
}

bool CheckpointReader::has_scalar(const std::string& name) const {
  return scalars_.count(name) != 0;
}

double CheckpointReader::scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  AP3_REQUIRE_MSG(it != scalars_.end(),
                  "checkpoint has no scalar '" << name << "'");
  return it->second;
}

FieldData CheckpointReader::read_section(
    const std::string& name,
    const std::vector<std::int64_t>& expected_ids) const {
  AP3_REQUIRE_MSG(has_section(name),
                  "checkpoint has no section '" << name << "'");
  return read_subfiles(comm_, {dir_ + "/" + name, num_subfiles_},
                       expected_ids);
}

}  // namespace ap3::io
