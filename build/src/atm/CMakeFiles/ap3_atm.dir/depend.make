# Empty dependencies file for ap3_atm.
# This may be replaced when dependencies are built.
