file(REMOVE_RECURSE
  "CMakeFiles/ap3_grid.dir/halo.cpp.o"
  "CMakeFiles/ap3_grid.dir/halo.cpp.o.d"
  "CMakeFiles/ap3_grid.dir/icosahedral.cpp.o"
  "CMakeFiles/ap3_grid.dir/icosahedral.cpp.o.d"
  "CMakeFiles/ap3_grid.dir/partition.cpp.o"
  "CMakeFiles/ap3_grid.dir/partition.cpp.o.d"
  "CMakeFiles/ap3_grid.dir/tripolar.cpp.o"
  "CMakeFiles/ap3_grid.dir/tripolar.cpp.o.d"
  "libap3_grid.a"
  "libap3_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
