// Simplified equation of state for seawater: a linearized density anomaly
// around a (T0, S0) reference — adequate for the stratification/mixing
// pathways this reproduction exercises.
#pragma once

namespace ap3::ocn {

struct LinearEos {
  double rho0 = 1026.0;     ///< reference density [kg/m³]
  double t0 = 10.0;         ///< reference temperature [°C]
  double s0 = 35.0;         ///< reference salinity [psu]
  double alpha = 1.7e-4;    ///< thermal expansion [1/K]
  double beta = 7.6e-4;     ///< haline contraction [1/psu]

  double density(double temp_c, double salt_psu) const {
    return rho0 * (1.0 - alpha * (temp_c - t0) + beta * (salt_psu - s0));
  }
};

}  // namespace ap3::ocn
