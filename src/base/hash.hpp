// FNV-1a hashing shared by checkpoint/state-hash witnesses.
//
// The coupled state hash splits into a rank-static part (combined in rank
// order) and an ownership-covariant part: per-column digests keyed by global
// id and merged with wrapping uint64 addition, so the result is invariant
// under runtime load rebalancing (ownership moves between ranks, bits do
// not). Both parts build on these primitives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ap3 {

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t b = 0; b < n; ++b) {
    h ^= bytes[b];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_value(std::uint64_t h, double v) {
  return fnv1a(h, &v, sizeof(v));
}

inline std::uint64_t fnv1a_value(std::uint64_t h, std::int64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace ap3
