// Tests for the in-process message-passing runtime: point-to-point
// semantics, non-blocking requests, collectives, communicator split, and
// traffic accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "harness.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using ap3::testing::run_ranks;
using par::Comm;
using par::ReduceOp;

TEST(Par, SendRecvRoundTrip) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data = {1.0, 2.0, 3.0};
      comm.send(std::span<const double>(data), 1, 42);
    } else {
      std::vector<double> buffer(3);
      const size_t n = comm.recv(std::span<double>(buffer), 0, 42);
      EXPECT_EQ(n, 3u);
      EXPECT_EQ(buffer[2], 3.0);
    }
  });
}

TEST(Par, MessagesFromSameSourceArriveInOrder) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(i, 1, 7);
    } else {
      for (int i = 0; i < 50; ++i)
        EXPECT_EQ(comm.recv_value<int>(0, 7), i);
    }
  });
}

TEST(Par, TagSelectsMessage) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1.0, 1, 10);
      comm.send_value(2.0, 1, 20);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv_value<double>(0, 20), 2.0);
      EXPECT_EQ(comm.recv_value<double>(0, 10), 1.0);
    }
  });
}

TEST(Par, WildcardSourceReceivesFromAnyRank) {
  run_ranks(4, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(comm.rank(), 0, 5);
    } else {
      int sum = 0;
      for (int i = 0; i < 3; ++i) sum += comm.recv_value<int>(par::kAnySource, 5);
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(Par, TypeMismatchThrows) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1.5, 1, 3);
      // Also absorb the exception side: rank 1 will throw; nothing to do.
    } else {
      EXPECT_THROW(comm.recv_value<int>(0, 3), ap3::Error);
    }
  });
}

TEST(Par, IsendIrecvWaitAll) {
  run_ranks(2, [](Comm& comm) {
    std::vector<double> recv_buffer(4);
    const std::vector<double> send_buffer = {10, 20, 30, 40};
    std::vector<par::Request> requests;
    const int peer = 1 - comm.rank();
    requests.push_back(comm.irecv(std::span<double>(recv_buffer), peer, 1));
    requests.push_back(
        comm.isend(std::span<const double>(send_buffer), peer, 1));
    par::wait_all(requests);
    EXPECT_EQ(recv_buffer[3], 40.0);
  });
}

TEST(Par, BarrierSynchronizes) {
  // All ranks increment before the barrier; after it every rank must see the
  // full count.
  static std::atomic<int> counter;
  counter = 0;
  run_ranks(4, [](Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), 4);
  });
}

TEST(Par, BcastDistributesRootData) {
  run_ranks(4, [](Comm& comm) {
    std::vector<int> data(3);
    if (comm.rank() == 2) data = {7, 8, 9};
    comm.bcast(std::span<int>(data), 2);
    EXPECT_EQ(data[0], 7);
    EXPECT_EQ(data[2], 9);
  });
}

TEST(Par, GatherCollectsInRankOrder) {
  run_ranks(4, [](Comm& comm) {
    const int mine = comm.rank() * 10;
    const auto all = comm.gather(std::span<const int>(&mine, 1), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], r * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Par, AllgatherEveryoneSeesAll) {
  run_ranks(3, [](Comm& comm) {
    const double mine = comm.rank() + 0.5;
    const auto all = comm.allgather(std::span<const double>(&mine, 1));
    ASSERT_EQ(all.size(), 3u);
    EXPECT_DOUBLE_EQ(all[0], 0.5);
    EXPECT_DOUBLE_EQ(all[2], 2.5);
  });
}

TEST(Par, AllgathervVariableSizes) {
  run_ranks(3, [](Comm& comm) {
    std::vector<int> mine(static_cast<size_t>(comm.rank()), comm.rank());
    std::vector<size_t> counts;
    const auto all = comm.allgatherv(std::span<const int>(mine), &counts);
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[2], 2u);
    ASSERT_EQ(all.size(), 3u);  // 0 + 1 + 2
    EXPECT_EQ(all[0], 1);
    EXPECT_EQ(all[1], 2);
    EXPECT_EQ(all[2], 2);
  });
}

TEST(Par, AllreduceSumMinMax) {
  run_ranks(4, [](Comm& comm) {
    const double v = comm.rank() + 1.0;  // 1..4
    EXPECT_DOUBLE_EQ(comm.allreduce_value(v, ReduceOp::kSum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_value(v, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_value(v, ReduceOp::kMax), 4.0);
  });
}

TEST(Par, AlltoallTransposesBlocks) {
  run_ranks(3, [](Comm& comm) {
    // Rank r sends value 100*r + c to rank c.
    std::vector<int> send(3);
    for (int c = 0; c < 3; ++c) send[static_cast<size_t>(c)] = 100 * comm.rank() + c;
    const auto got = comm.alltoall(std::span<const int>(send), 1);
    ASSERT_EQ(got.size(), 3u);
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(got[static_cast<size_t>(r)], 100 * r + comm.rank());
  });
}

TEST(Par, AlltoallvVariableBlocks) {
  run_ranks(3, [](Comm& comm) {
    // Rank r sends r+1 copies of its rank to every peer.
    std::vector<int> send;
    std::vector<size_t> send_counts(3, static_cast<size_t>(comm.rank() + 1));
    for (int c = 0; c < 3; ++c)
      for (int k = 0; k <= comm.rank(); ++k) send.push_back(comm.rank());
    std::vector<size_t> recv_counts;
    const auto got =
        comm.alltoallv(std::span<const int>(send),
                       std::span<const size_t>(send_counts), recv_counts);
    ASSERT_EQ(recv_counts.size(), 3u);
    EXPECT_EQ(recv_counts[0], 1u);
    EXPECT_EQ(recv_counts[2], 3u);
    EXPECT_EQ(got.size(), 6u);  // 1 + 2 + 3
    // First block is from rank 0, last three from rank 2.
    EXPECT_EQ(got.front(), 0);
    EXPECT_EQ(got.back(), 2);
  });
}

TEST(Par, SplitFormsTaskDomains) {
  // 6 ranks -> atmosphere domain (4 ranks) + ocean domain (2 ranks), the
  // AP3ESM task-level decomposition of §5.1.2.
  run_ranks(6, [](Comm& comm) {
    const int color = comm.rank() < 4 ? 0 : 1;
    Comm domain = comm.split(color, comm.rank());
    if (color == 0) {
      EXPECT_EQ(domain.size(), 4);
      EXPECT_EQ(domain.rank(), comm.rank());
    } else {
      EXPECT_EQ(domain.size(), 2);
      EXPECT_EQ(domain.rank(), comm.rank() - 4);
    }
    // Collectives work inside the sub-communicator and do not cross domains.
    const int sum = domain.allreduce_value(1, ReduceOp::kSum);
    EXPECT_EQ(sum, domain.size());
  });
}

TEST(Par, SplitKeyReordersRanks) {
  run_ranks(4, [](Comm& comm) {
    // Reverse order by key.
    Comm flipped = comm.split(0, -comm.rank());
    EXPECT_EQ(flipped.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Par, MessagesInDifferentCommsDoNotMix) {
  run_ranks(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Global rank 0 <-> 2 are sub ranks 0 <-> 1 of color 0; likewise 1 <-> 3.
    if (sub.rank() == 0) {
      sub.send_value(comm.rank() + 1000, 1, 9);
    } else {
      const int got = sub.recv_value<int>(0, 9);
      EXPECT_EQ(got, (comm.rank() % 2) + 1000);
    }
  });
}

TEST(Par, TrafficAccountingCounts) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data(100, 1.0);
      comm.send(std::span<const double>(data), 1, 1);
    } else {
      std::vector<double> buffer(100);
      comm.recv(std::span<double>(buffer), 0, 1);
      const auto traffic = comm.world().traffic();
      EXPECT_GE(traffic.messages, 1u);
      EXPECT_GE(traffic.bytes, 100u * sizeof(double));
    }
    comm.barrier();
  });
}

TEST(Par, ExceptionInRankPropagates) {
  EXPECT_THROW(run_ranks(1, [](Comm&) { throw ap3::Error("boom"); }),
               ap3::Error);
}

TEST(Par, ManyRanksStress) {
  // Ring pass-through with 16 ranks exercises the mailbox matching under
  // contention.
  run_ranks(16, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send_value(comm.rank(), next, 0);
    const int got = comm.recv_value<int>(prev, 0);
    EXPECT_EQ(got, prev);
    const int total = comm.allreduce_value(got, ReduceOp::kSum);
    EXPECT_EQ(total, 16 * 15 / 2);
  });
}

}  // namespace
