// AttrVect — the MCT attribute vector.
//
// The fundamental data currency of the coupler: a bundle of named real
// fields defined over a list of local points (whose global identity is
// described by a GlobalSegMap). Components export their boundary state into
// an AttrVect and import forcing from one (§5.1.1 import/export methods).
//
// Storage is field-major (each field contiguous) which is what the
// rearranger packs from. §5.2.4's "remove unnecessary communication
// variables" optimization is expressed here as `subset()`.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ap3::mct {

class AttrVect {
 public:
  AttrVect() = default;
  AttrVect(std::vector<std::string> fields, std::size_t num_points);

  std::size_t num_points() const { return num_points_; }
  std::size_t num_fields() const { return fields_.size(); }
  const std::vector<std::string>& field_names() const { return fields_; }

  bool has_field(const std::string& name) const;
  /// Index of `name`; throws if absent.
  std::size_t field_index(const std::string& name) const;

  std::span<double> field(const std::string& name);
  std::span<const double> field(const std::string& name) const;
  std::span<double> field(std::size_t index);
  std::span<const double> field(std::size_t index) const;

  double& at(std::size_t field_idx, std::size_t point) {
    return data_[field_idx * num_points_ + point];
  }
  double at(std::size_t field_idx, std::size_t point) const {
    return data_[field_idx * num_points_ + point];
  }

  void fill(double value);
  /// Zero all fields (import buffers are cleared before each coupling step).
  void zero() { fill(0.0); }

  /// New AttrVect with only `keep` fields, values copied — the coupler-side
  /// optimization of dropping variables a component never reads.
  AttrVect subset(const std::vector<std::string>& keep) const;

  /// Raw packed storage (field-major), used by the rearranger.
  std::span<double> raw() { return data_; }
  std::span<const double> raw() const { return data_; }

 private:
  std::vector<std::string> fields_;
  std::size_t num_points_ = 0;
  std::vector<double> data_;
};

}  // namespace ap3::mct
