// Tests for the unified observability layer (src/obs): RAII span nesting,
// the enabled/disabled toggle, counter determinism across execution spaces,
// traffic accounting for par collectives, the cross-rank merge collective,
// the TimerRegistry compatibility shim, and the Chrome-trace exporter
// (round-tripped through a real coupled-model run, the quickstart --trace
// path).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/timer.hpp"
#include "coupler/driver.hpp"
#include "obs/export.hpp"
#include "obs/merge.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "pp/exec.hpp"
#include "sunway/athread.hpp"

namespace {

using namespace ap3;

void fresh_obs() {
  obs::set_enabled(true);
  obs::reset_all();
}

cpl::CoupledConfig tiny_coupled_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 4;
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{32, 24, 4};
  return config;
}

// --- minimal recursive-descent JSON validator --------------------------------

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool parse_string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool parse_number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    bool digits = false;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      digits = true;
      ++i;
    }
    return digits && i > start;
  }
  bool parse_literal(const char* lit) {
    ws();
    const std::size_t n = std::string(lit).size();
    if (s.compare(i, n, lit) == 0) {
      i += n;
      return true;
    }
    return false;
  }
  bool parse_value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }
  bool parse_object() {
    if (!consume('{')) return false;
    ws();
    if (consume('}')) return true;
    for (;;) {
      if (!parse_string() || !consume(':') || !parse_value()) return false;
      if (consume(',')) continue;
      return consume('}');
    }
  }
  bool parse_array() {
    if (!consume('[')) return false;
    ws();
    if (consume(']')) return true;
    for (;;) {
      if (!parse_value()) return false;
      if (consume(',')) continue;
      return consume(']');
    }
  }
  bool parse_document() {
    if (!parse_value()) return false;
    ws();
    return i == s.size();
  }
};

std::size_t count_occurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size()))
    ++count;
  return count;
}

}  // namespace

// --- spans -------------------------------------------------------------------

TEST(ObsSpan, NestingRecordsDepthsAndContainment) {
  fresh_obs();
  {
    AP3_SPAN("outer");
    {
      AP3_SPAN("outer:inner");
    }
    {
      AP3_SPAN("outer:inner");
    }
  }
  const auto events = obs::local().events();
  const auto names = obs::local().names();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: the two inners first, the outer last.
  EXPECT_EQ(names[events[0].name_id], "outer:inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(names[events[1].name_id], "outer:inner");
  EXPECT_EQ(names[events[2].name_id], "outer");
  EXPECT_EQ(events[2].depth, 0u);
  // Inner spans lie within the outer span's interval.
  for (int e = 0; e < 2; ++e) {
    EXPECT_GE(events[e].start_seconds, events[2].start_seconds);
    EXPECT_LE(events[e].end_seconds, events[2].end_seconds);
  }
  // Aggregation: inner called twice, total bounded by outer.
  for (const auto& agg : obs::local().aggregate_spans()) {
    if (agg.name == "outer:inner") {
      EXPECT_EQ(agg.calls, 2);
    } else if (agg.name == "outer") {
      EXPECT_EQ(agg.calls, 1);
    }
  }
}

TEST(ObsSpan, DisabledRecordsNothing) {
  fresh_obs();
  obs::set_enabled(false);
  {
    AP3_SPAN("ghost");
  }
  obs::counter_add("ghost_counter", 5.0);
  obs::gauge_max("ghost_gauge", 5.0);
  pp::parallel_for(pp::RangePolicy(0, 100), [](std::size_t) {});
  EXPECT_EQ(obs::local().event_count(), 0u);
  EXPECT_EQ(obs::local().counter("ghost_counter"), 0.0);
  EXPECT_EQ(obs::local().counter("pp:launches:Serial"), 0.0);
  obs::set_enabled(true);
  {
    AP3_SPAN("visible");
  }
  EXPECT_EQ(obs::local().event_count(), 1u);
}

// --- counters ----------------------------------------------------------------

TEST(ObsCounter, KeyedFamilyAndGauge) {
  fresh_obs();
  obs::counter_add_keyed("bytes:tag", 7, 100.0);
  obs::counter_add_keyed("bytes:tag", 7, 50.0);
  obs::counter_add_keyed("bytes:tag", 8, 1.0);
  EXPECT_DOUBLE_EQ(obs::local().counter("bytes:tag[7]"), 150.0);
  EXPECT_DOUBLE_EQ(obs::local().counter("bytes:tag[8]"), 1.0);
  obs::gauge_max("hwm", 10.0);
  obs::gauge_max("hwm", 4.0);
  EXPECT_DOUBLE_EQ(obs::local().counter("hwm"), 10.0);
  EXPECT_DOUBLE_EQ(obs::total_counter("hwm"), 10.0);
}

TEST(ObsCounter, LaunchCountersDeterministicAcrossExecSpaces) {
  fresh_obs();
  const std::size_t n = 1000;
  std::vector<double> data(n, 1.0);
  const struct {
    pp::ExecSpace space;
    const char* launches;
    const char* items;
  } cases[] = {
      {pp::ExecSpace::kSerial, "pp:launches:Serial", "pp:items:Serial"},
      {pp::ExecSpace::kHostThreads, "pp:launches:HostThreads",
       "pp:items:HostThreads"},
      {pp::ExecSpace::kSunwayCPE, "pp:launches:SunwayCPE",
       "pp:items:SunwayCPE"},
  };
  double sums[3] = {0, 0, 0};
  int c = 0;
  for (const auto& test_case : cases) {
    sums[c++] = pp::parallel_reduce<double>(
        pp::RangePolicy(0, n).on(test_case.space).named("obs_test_reduce"),
        [&](std::size_t i, double& acc) { acc += data[i]; });
    pp::parallel_for(pp::RangePolicy(0, n).on(test_case.space),
                     [&](std::size_t i) { data[i] = data[i]; });
  }
  // Identical results (bit-for-bit discipline) and identical accounting:
  // exactly one reduce + one for launch and n items each, in every space.
  EXPECT_DOUBLE_EQ(sums[0], sums[1]);
  EXPECT_DOUBLE_EQ(sums[0], sums[2]);
  for (const auto& test_case : cases) {
    EXPECT_DOUBLE_EQ(obs::local().counter(test_case.launches), 2.0)
        << test_case.launches;
    EXPECT_DOUBLE_EQ(obs::local().counter(test_case.items), 2.0 * n)
        << test_case.items;
  }
  // The named policy labeled the reduce span.
  bool saw_label = false;
  for (const auto& agg : obs::local().aggregate_spans())
    if (agg.name == "obs_test_reduce") saw_label = true;
  EXPECT_TRUE(saw_label);
}

// --- sunway bridge -----------------------------------------------------------

TEST(ObsSunway, DmaBytesLdmPeakAndSpawnSpans) {
  fresh_obs();
  sunway::DmaEngine dma;
  std::vector<double> host(1024, 2.0);
  std::vector<double> back(1024, 0.0);
  sunway::athread_spawn_join(
      [&](sunway::CpeContext& ctx) {
        const auto range =
            sunway::cpe_partition(host.size(), ctx.cpe_id, ctx.num_cpes);
        const std::size_t count = range.end - range.begin;
        if (count == 0) return;
        double* ldm = ctx.ldm->alloc_array<double>(count);
        ctx.dma->get(ldm, host.data() + range.begin, count * sizeof(double));
        ctx.dma->put(back.data() + range.begin, ldm, count * sizeof(double));
        ctx.ldm->free_last(ldm);
      },
      dma);
  EXPECT_EQ(back, host);
  // obs counters (summed over CPE worker threads) mirror the DMA engine.
  EXPECT_DOUBLE_EQ(obs::total_counter("sunway:dma:bytes"),
                   static_cast<double>(dma.total_bytes()));
  EXPECT_DOUBLE_EQ(obs::total_counter("sunway:dma:transfers"),
                   static_cast<double>(dma.transfers()));
  // LDM high-water gauge: each CPE staged 1024/64 doubles.
  EXPECT_GE(obs::total_counter("sunway:ldm:peak_bytes"),
            1024.0 / 64.0 * sizeof(double));
  EXPECT_DOUBLE_EQ(obs::local().counter("sunway:athread:spawns"), 1.0);
  bool saw_spawn_span = false;
  for (const auto& agg : obs::local().aggregate_spans())
    if (agg.name == "sunway:athread:spawn") saw_spawn_span = true;
  EXPECT_TRUE(saw_spawn_span);
}

// --- par traffic + cross-rank merge ------------------------------------------

TEST(ObsPar, CollectiveTrafficAccountedPerFamily) {
  fresh_obs();
  par::run(3, [](par::Comm& comm) {
    std::vector<double> payload(100, comm.rank() == 0 ? 3.5 : 0.0);
    comm.bcast(std::span<double>(payload), 0);
    std::vector<double> in(10, 1.0), out(10, 0.0);
    comm.reduce(std::span<const double>(in), std::span<double>(out),
                par::ReduceOp::kSum, 0);
    comm.barrier();
    const auto traffic = comm.world().traffic();
    // Second barrier: no rank may start posting merge messages until every
    // rank has snapshotted the traffic totals above.
    comm.barrier();

    const obs::MergedReport report = obs::merge(comm);
    // bcast: root sent 100 doubles to each of 2 peers. Without a topology the
    // algorithm tag is "flat" and every message counts as intra-supernode.
    EXPECT_DOUBLE_EQ(report.counter("par:coll:bytes[bcast/flat/intra]"),
                     2 * 100 * 8.0);
    EXPECT_DOUBLE_EQ(report.counter("par:coll:calls[bcast/flat]"), 3.0);
    // reduce: 2 non-root ranks each sent 10 doubles to root.
    EXPECT_DOUBLE_EQ(report.counter("par:coll:bytes[reduce/flat/intra]"),
                     2 * 10 * 8.0);
    EXPECT_DOUBLE_EQ(report.counter("par:coll:calls[reduce/flat]"), 3.0);
    EXPECT_DOUBLE_EQ(report.counter("par:coll:bytes[bcast/flat/inter]"), 0.0);
    // The obs grand total matches the World's own accounting exactly.
    EXPECT_DOUBLE_EQ(report.counter("par:bytes:total"),
                     static_cast<double>(traffic.bytes));
    EXPECT_DOUBLE_EQ(report.counter("par:messages:total"),
                     static_cast<double>(traffic.messages));
  });
}

TEST(ObsPar, AllreduceAccountsBytesAndPerTagBreakdown) {
  fresh_obs();
  par::run(2, [](par::Comm& comm) {
    (void)comm.allreduce_value(1.0, par::ReduceOp::kSum);
    // User point-to-point traffic keeps its per-tag family.
    if (comm.rank() == 0) {
      comm.send_value(42, 1, /*tag=*/7);
    } else {
      (void)comm.recv_value<int>(0, 7);
    }
    comm.barrier();
    const obs::MergedReport report = obs::merge(comm);
    EXPECT_DOUBLE_EQ(report.counter("par:coll:calls[allreduce/flat]"), 2.0);
    // allreduce = reduce + bcast on this transport; the inner collective's
    // scope owns the bytes, so they land in the reduce/bcast families.
    EXPECT_GT(report.counter("par:coll:bytes[reduce/flat/intra]"), 0.0);
    EXPECT_GT(report.counter("par:coll:bytes[bcast/flat/intra]"), 0.0);
    EXPECT_DOUBLE_EQ(report.counter("par:p2p:bytes:tag[7]"),
                     static_cast<double>(sizeof(int)));
  });
}

TEST(ObsMerge, SumsCountersAndMaxesSpansAcrossRanks) {
  fresh_obs();
  par::run(4, [](par::Comm& comm) {
    obs::counter_add("test:per_rank", comm.rank() + 1.0);
    obs::gauge_max("test:gauge", 10.0 * (comm.rank() + 1));
    {
      AP3_SPAN("test:span");
    }
    const obs::MergedReport report = obs::merge(comm);
    EXPECT_EQ(report.ranks, 4);
    EXPECT_DOUBLE_EQ(report.counter("test:per_rank"), 1.0 + 2.0 + 3.0 + 4.0);
    EXPECT_DOUBLE_EQ(report.counter("test:gauge"), 40.0);  // gauge: max
    bool saw = false;
    for (const auto& span : report.spans) {
      if (span.name != "test:span") continue;
      saw = true;
      EXPECT_EQ(span.calls, 1);
      EXPECT_GE(span.total_max, span.total_mean);
      EXPECT_GT(span.total_max, 0.0);
    }
    EXPECT_TRUE(saw);
    // Every rank computed the identical deterministic report.
    const std::string mine = report.to_string();
    std::vector<char> flat(mine.begin(), mine.end());
    const std::vector<char> all =
        comm.allgatherv(std::span<const char>(flat), nullptr);
    const std::string everyone(all.begin(), all.end());
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(everyone.substr(r * mine.size(), mine.size()), mine);
    }
  });
}

// --- TimerRegistry compatibility shim ----------------------------------------

TEST(ObsShim, TimerRegistryFedFromSpans) {
  fresh_obs();
  {
    AP3_SPAN("cpl");
    {
      AP3_SPAN("cpl:run");
    }
  }
  {
    AP3_SPAN("cpl");
  }
  TimerRegistry registry;
  obs::fill_registry(obs::local(), 0, registry);
  EXPECT_EQ(registry.calls("cpl"), 2);
  EXPECT_EQ(registry.calls("cpl:run"), 1);
  EXPECT_GE(registry.total("cpl"), registry.total("cpl:run"));
  EXPECT_NE(registry.report().find("cpl:run"), std::string::npos);

  // Prefix filtering keeps the paper-facing phase namespace clean.
  TimerRegistry filtered;
  obs::fill_registry(obs::local(), 0, filtered, "cpl:run");
  EXPECT_EQ(filtered.calls("cpl:run"), 1);
  EXPECT_EQ(filtered.calls("cpl"), 0);
}

TEST(ObsShim, TreeReportIsSupersetOfTimerReport) {
  fresh_obs();
  {
    AP3_SPAN("a");
    {
      AP3_SPAN("a:b");
    }
  }
  obs::counter_add("some:counter", 3.0);
  const std::string report = obs::tree_report();
  EXPECT_NE(report.find("a:b"), std::string::npos);
  EXPECT_NE(report.find("some:counter"), std::string::npos);
  EXPECT_NE(report.find("calls"), std::string::npos);
}

// --- Chrome-trace export through the coupled driver --------------------------

TEST(ObsTrace, CoupledRunRoundTripsThroughChromeTrace) {
  fresh_obs();
  const std::string path = "obs_trace_test.json";

  double span_sypd = 0.0, legacy_sypd = 0.0;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledConfig config = tiny_coupled_config();
    cpl::CoupledModel model(comm, config);

    // Legacy getTiming-shaped path: one wall-clock measurement of the
    // identical run absorbed into a registry.
    TimerRegistry legacy;
    const auto wall_start = std::chrono::steady_clock::now();
    model.run_windows(config.ocn_couple_ratio);
    const double wall_secs = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
    legacy.absorb(TimerStats{"run", 1, wall_secs, wall_secs, wall_secs});
    const double simulated =
        static_cast<double>(model.windows_run()) * model.atm_window_seconds();
    const cpl::TimingSummary from_spans = model.timing_summary();
    const cpl::TimingSummary from_legacy =
        cpl::summarize_timing(comm, legacy, simulated);
    if (comm.rank() == 0) {
      span_sypd = from_spans.sypd();
      legacy_sypd = from_legacy.sypd();
    }

    // Driver phases present, fed from spans.
    bool saw_ocn = false, saw_atm = false;
    for (const auto& phase : from_spans.phases) {
      if (phase.name == "run:ocn_phase") saw_ocn = true;
      if (phase.name == "run:atm_ice_phase") saw_atm = true;
    }
    EXPECT_TRUE(saw_ocn);
    EXPECT_TRUE(saw_atm);
  });

  // SYPD derived from spans matches the legacy timer path to within 1%.
  ASSERT_GT(span_sypd, 0.0);
  ASSERT_GT(legacy_sypd, 0.0);
  EXPECT_NEAR(span_sypd / legacy_sypd, 1.0, 0.01);

  // Per-rank coupler phase spans nest correctly inside their "run" span.
  std::size_t expected_events = 0;
  int ranks_with_rows = 0;
  for (const auto& buffer : obs::buffers()) {
    expected_events += buffer->event_count();
    if (buffer->rank() < 0 || buffer->event_count() == 0) continue;
    ++ranks_with_rows;
    const auto events = buffer->events();
    const auto names = buffer->names();
    const obs::SpanEvent* run = nullptr;
    for (const auto& event : events)
      if (names[event.name_id] == "run") run = &event;
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->depth, 0u);
    for (const auto& event : events) {
      const std::string& name = names[event.name_id];
      if (name.rfind("run:", 0) != 0) continue;
      EXPECT_GE(event.depth, 1u);
      EXPECT_GE(event.start_seconds, run->start_seconds - 1e-9);
      EXPECT_LE(event.end_seconds, run->end_seconds + 1e-9);
    }
  }
  EXPECT_EQ(ranks_with_rows, 2);

  // Write (the quickstart --trace path), re-read, validate.
  obs::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  const std::string json = content.str();

  JsonParser parser(json);
  EXPECT_TRUE(parser.parse_document()) << "chrome trace is not valid JSON";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One timeline row per simulated rank.
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  // Exactly one complete event per recorded span.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), expected_events);
  // Counter families made it into the export.
  EXPECT_NE(json.find("par:bytes:total"), std::string::npos);

  std::remove(path.c_str());
}
