// Deterministic random number generation.
//
// Every stochastic piece of the reproduction (synthetic bathymetry, training
// data, track perturbations) derives from explicit seeds so reruns are
// bit-reproducible — the paper validates coupling correctness bit-for-bit and
// we keep the same discipline.
#pragma once

#include <cstdint>

namespace ap3 {

/// splitmix64: tiny, high-quality 64-bit generator used for seeding streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Complete serializable state of one Rng stream: the four xoshiro words
/// plus the Marsaglia spare. Restoring this resumes the stream exactly where
/// it stopped — required for bit-exact checkpoint/restart.
struct RngState {
  std::uint64_t words[4] = {0, 0, 0, 0};
  bool have_spare = false;
  double spare = 0.0;
};

/// xoshiro256** — fast deterministic PRNG with independent streams per seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  RngState raw_state() const {
    RngState s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.have_spare = have_spare_;
    s.spare = spare_;
    return s;
  }

  void set_raw_state(const RngState& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    have_spare_ = s.have_spare;
    spare_ = s.spare;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = nonneg_sqrt(-2.0 * log_(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double log_(double x);
  static double nonneg_sqrt(double x);

  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ap3

#include <cmath>
namespace ap3 {
inline double Rng::log_(double x) { return std::log(x); }
inline double Rng::nonneg_sqrt(double x) { return std::sqrt(x < 0 ? 0 : x); }
}  // namespace ap3
