// Exporters for the observability layer (obs/obs.hpp).
//
// Two renderings of the recorded data:
//   - tree_report(): indented text, a superset of TimerRegistry::report() —
//     per-rank span trees (nesting from the `component:phase:subphase` names)
//     followed by the counter/gauge families,
//   - chrome_trace_json(): a chrome://tracing / Perfetto "traceEvents" JSON
//     document with one timeline row (tid) per simulated rank, "X" complete
//     events for spans, thread_name metadata, and merged counter totals under
//     a top-level "counters" key.
#pragma once

#include <string>

namespace ap3::obs {

/// Text report over every registered buffer with data.
std::string tree_report();

/// Chrome-trace JSON document over every registered buffer with data.
/// Buffers labeled with a simulated rank get tid == rank; unlabeled helper
/// threads (e.g. pool workers that only recorded counters) get high tids.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; throws ap3::Error on I/O failure.
void write_chrome_trace(const std::string& path);

}  // namespace ap3::obs
