// EnsembleFleet — N coupled members per process over shared immutable inputs.
//
// The production story for a km-scale ESM is many concurrent forecasts
// (perturbed analogs of one scenario), not one run. A fleet constructs N
// CoupledModel members on ONE communicator inside one process:
//
//   - all members serve from one SharedInputs context (mesh, ocean grid,
//     regrid matrices, frozen AI weights — shared_ptr<const>, built once),
//   - member 0 builds the communicator-bound CouplingPlans; members 1..N-1
//     adopt them (same config ⇒ same decomposition ⇒ same GSMaps/routers),
//   - a round-robin scheduler advances the members window by window, so
//     their comm phases interleave instead of queueing N full runs,
//   - install_ai_physics() hands every member the SAME suite pointer, so one
//     InferenceEngine micro-batches columns across all members.
//
// Determinism contract: each member's trajectory depends only on its
// ScenarioSpec. A member's state_hash() equals the same spec run solo, for
// any fleet size and any member ordering — the bit-exactness witness
// bench_ensemble and test_fleet check.
//
// Threading rules: a fleet object (and the suites/engines it materializes)
// lives on ONE rank thread — build one fleet per rank inside par::run. Only
// the SharedInputs context may be shared across rank threads (immutable).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coupler/driver.hpp"

namespace ap3::fleet {

class EnsembleFleet {
 public:
  /// Collective on `comm`. Validates that the specs form a coherent fleet
  /// (identical configs apart from the perturbation, no rebalancing, one
  /// shared context) and constructs the members, donating member 0's
  /// coupling plans to the rest.
  EnsembleFleet(const par::Comm& comm, std::vector<cpl::ScenarioSpec> specs);

  /// Convenience: N perturbed analogs of one config over one shared context.
  /// Member 0 is the unperturbed control; member k>0 gets perturbation seed
  /// `seed_base + k`.
  static std::vector<cpl::ScenarioSpec> perturbed_specs(
      const cpl::CoupledConfig& config, int members,
      std::shared_ptr<const cpl::SharedInputs> shared,
      std::uint64_t seed_base = 1000, double amplitude_k = 0.01);

  /// Advance every member by `windows` master coupling windows, round-robin
  /// (member 0 window w, member 1 window w, ..., then window w+1).
  void run_windows(int windows);

  /// Install AI physics on every member through ONE shared suite (one
  /// engine micro-batches across the fleet). With `options.suite` null the
  /// SharedInputs frozen weights are thawed once for this rank. Online
  /// training is forbidden for fleets of more than one member — it would
  /// mutate weights all members share.
  void install_ai_physics(cpl::AiInstallOptions options = {});

  std::size_t size() const { return members_.size(); }
  cpl::CoupledModel& member(std::size_t k) { return *members_[k]; }
  const cpl::ScenarioSpec& spec(std::size_t k) const {
    return members_[k]->scenario();
  }
  long long windows_run() const { return windows_run_; }

  /// Per-member bit-exactness witnesses (collective; solo-run equal).
  std::vector<std::uint64_t> state_hashes();
  /// Per-member diagnostic snapshots (collective).
  std::vector<cpl::CoupledDiagnostics> diagnostics();

  const std::shared_ptr<const cpl::SharedInputs>& shared_inputs() const {
    return shared_;
  }
  /// The rank-local suite serving every member (null until AI is installed).
  const std::shared_ptr<ai::AiPhysicsSuite>& shared_suite() const {
    return suite_;
  }

 private:
  par::Comm comm_;  ///< by value: must outlive the members referencing it
  std::shared_ptr<const cpl::SharedInputs> shared_;
  std::vector<std::unique_ptr<cpl::CoupledModel>> members_;
  std::shared_ptr<ai::AiPhysicsSuite> suite_;
  long long windows_run_ = 0;
};

}  // namespace ap3::fleet
