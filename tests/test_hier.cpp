// Topology-aware hierarchical collectives (par::Topology + CollectiveAlgo).
//
// The contract under test: with a Topology attached, every collective's
// result is a pure function of the topology's canonical supernode-blocked
// order — NOT of the algorithm — so kFlat and kHierarchical are bitwise
// identical, fault-free and under heavy fault injection, for rank counts
// that do and do not divide evenly into supernodes. The coupled model's
// state_hash must therefore be invariant to the CollectiveAlgo too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "coupler/driver.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "par/topology.hpp"

namespace ap3 {
namespace {

using testing::expect_fields_equal;
using testing::heavy_fault_plan;
using testing::run_ranks;

std::shared_ptr<const par::Topology> clustered(int nranks, int supernode) {
  return std::make_shared<par::Topology>(
      par::Topology::clustered(nranks, supernode));
}

/// Exponent-spread payload: floating-point sums over it are sensitive to
/// fold order, so bitwise agreement across algorithms is a real statement
/// about the reduction order, not an artifact of benign values.
std::vector<double> spread_payload(int rank, std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, static_cast<double>((rank + i) % 9) - 4);
    v[i] = std::sin(0.7 * static_cast<double>(i + 1) * (rank + 1)) * mag;
  }
  return v;
}

// --- Topology descriptor -----------------------------------------------------

TEST(Topology, ClusteredMappingLeadersAndMembers) {
  const par::Topology topo = par::Topology::clustered(10, 4);  // 4+4+2
  EXPECT_EQ(topo.nranks(), 10);
  EXPECT_EQ(topo.num_supernodes(), 3);
  EXPECT_EQ(topo.supernode_of(0), 0);
  EXPECT_EQ(topo.supernode_of(3), 0);
  EXPECT_EQ(topo.supernode_of(4), 1);
  EXPECT_EQ(topo.supernode_of(9), 2);
  EXPECT_EQ(topo.members(2), (std::vector<int>{8, 9}));
  EXPECT_EQ(topo.leader(0), 0);
  EXPECT_EQ(topo.leader(1), 4);
  EXPECT_EQ(topo.leader(2), 8);
  EXPECT_TRUE(topo.is_leader(4));
  EXPECT_FALSE(topo.is_leader(5));
  EXPECT_EQ(topo.leader_of(6), 4);
  EXPECT_FALSE(topo.trivial());
  EXPECT_TRUE(par::Topology::clustered(4, 8).trivial());   // one supernode
  EXPECT_TRUE(par::Topology::clustered(4, 1).trivial());   // all singletons
}

TEST(Topology, InjectableIdsAreCompacted) {
  const par::Topology topo({7, 2, 7, 2, 5});  // ids in any order, any values
  EXPECT_EQ(topo.num_supernodes(), 3);
  EXPECT_EQ(topo.supernode_of(1), 0);  // id 2 -> index 0 (ascending id order)
  EXPECT_EQ(topo.supernode_of(4), 1);  // id 5 -> index 1
  EXPECT_EQ(topo.supernode_of(0), 2);  // id 7 -> index 2
  EXPECT_EQ(topo.members(2), (std::vector<int>{0, 2}));
  EXPECT_EQ(topo.leader(0), 1);
}

TEST(Topology, InducedProjectsOntoSubgroup) {
  const par::Topology topo = par::Topology::clustered(8, 4);
  // Even parent ranks survive: {0, 2, 4, 6} -> supernodes {0, 0, 1, 1}.
  const par::Topology sub = topo.induced({0, 2, 4, 6});
  EXPECT_EQ(sub.nranks(), 4);
  EXPECT_EQ(sub.num_supernodes(), 2);
  EXPECT_EQ(sub.supernode_of(1), 0);
  EXPECT_EQ(sub.supernode_of(2), 1);
  EXPECT_EQ(sub.leader(1), 2);
}

// --- bitwise equivalence: hierarchical vs flat -------------------------------

void expect_allreduce_algos_agree(par::Comm& comm, int supernode) {
  auto topo = clustered(comm.size(), supernode);
  const par::Comm flat = comm.with_topology(topo, par::CollectiveAlgo::kFlat);
  const par::Comm hier =
      comm.with_topology(topo, par::CollectiveAlgo::kHierarchical);
  const std::vector<double> in = spread_payload(comm.rank(), 33);
  for (const par::ReduceOp op :
       {par::ReduceOp::kSum, par::ReduceOp::kMin, par::ReduceOp::kMax}) {
    std::vector<double> out_flat(in.size()), out_hier(in.size());
    flat.allreduce(std::span<const double>(in), std::span<double>(out_flat),
                   op);
    hier.allreduce(std::span<const double>(in), std::span<double>(out_hier),
                   op);
    expect_fields_equal(out_hier, out_flat, 0, "allreduce");
    // The per-call policy overrides the comm default the same way.
    std::vector<double> out_policy(in.size());
    flat.allreduce(std::span<const double>(in), std::span<double>(out_policy),
                   op, {par::CollectiveAlgo::kHierarchical});
    expect_fields_equal(out_policy, out_flat, 0, "allreduce policy override");
  }
}

TEST(HierCollectives, AllreduceBitwiseAcrossRankAndSupernodeCounts) {
  // Divides evenly (8/4, 12/4) and does not (5/3, 9/2, 7/4).
  const int cases[][2] = {{8, 4}, {12, 4}, {5, 3}, {9, 2}, {7, 4}};
  for (const auto& c : cases) {
    run_ranks(c[0], [&](par::Comm& comm) {
      expect_allreduce_algos_agree(comm, c[1]);
    });
  }
}

TEST(HierCollectives, BcastAndReduceAgreeForEveryRoot) {
  run_ranks(6, [](par::Comm& comm) {
    auto topo = clustered(comm.size(), 4);  // leaders: 0 and 4
    const par::Comm flat = comm.with_topology(topo, par::CollectiveAlgo::kFlat);
    const par::Comm hier =
        comm.with_topology(topo, par::CollectiveAlgo::kHierarchical);
    for (int root = 0; root < comm.size(); ++root) {  // leader and member roots
      std::vector<double> data_flat = spread_payload(root, 17);
      std::vector<double> data_hier = data_flat;
      if (comm.rank() != root) {
        data_flat.assign(17, 0.0);
        data_hier.assign(17, -1.0);
      }
      flat.bcast(std::span<double>(data_flat), root);
      hier.bcast(std::span<double>(data_hier), root);
      expect_fields_equal(data_hier, data_flat, 0, "bcast");

      const std::vector<double> in = spread_payload(comm.rank(), 17);
      std::vector<double> red_flat(in.size()), red_hier(in.size());
      flat.reduce(std::span<const double>(in), std::span<double>(red_flat),
                  par::ReduceOp::kSum, root);
      hier.reduce(std::span<const double>(in), std::span<double>(red_hier),
                  par::ReduceOp::kSum, root);
      if (comm.rank() == root)
        expect_fields_equal(red_hier, red_flat, 0, "reduce");
    }
  });
}

/// Payload value encoding (src, dst, slot) so content errors are attributable.
double coded(int src, int dst, std::size_t slot) {
  return src * 10000.0 + dst * 100.0 + static_cast<double>(slot);
}

void expect_alltoallv_algos_agree(par::Comm& comm, int supernode) {
  auto topo = clustered(comm.size(), supernode);
  const par::Comm flat = comm.with_topology(topo, par::CollectiveAlgo::kFlat);
  const par::Comm hier =
      comm.with_topology(topo, par::CollectiveAlgo::kHierarchical);
  // Uneven counts with zeros sprinkled in (including zero to self).
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(comm.size()));
  std::vector<double> send_data;
  for (int r = 0; r < comm.size(); ++r) {
    const std::size_t cnt =
        static_cast<std::size_t>((comm.rank() * 7 + r * 3) % 5);
    send_counts[static_cast<std::size_t>(r)] = cnt;
    for (std::size_t k = 0; k < cnt; ++k)
      send_data.push_back(coded(comm.rank(), r, k));
  }
  std::vector<std::size_t> counts_flat, counts_hier;
  const std::vector<double> out_flat =
      flat.alltoallv(std::span<const double>(send_data),
                     std::span<const std::size_t>(send_counts), counts_flat);
  const std::vector<double> out_hier =
      hier.alltoallv(std::span<const double>(send_data),
                     std::span<const std::size_t>(send_counts), counts_hier);
  EXPECT_EQ(counts_hier, counts_flat);
  expect_fields_equal(out_hier, out_flat, 0, "alltoallv");
  // Independent content check against the closed-form expectation.
  std::size_t pos = 0;
  for (int src = 0; src < comm.size(); ++src) {
    const std::size_t cnt =
        static_cast<std::size_t>((src * 7 + comm.rank() * 3) % 5);
    ASSERT_EQ(counts_hier[static_cast<std::size_t>(src)], cnt);
    for (std::size_t k = 0; k < cnt; ++k)
      EXPECT_EQ(out_hier[pos++], coded(src, comm.rank(), k));
  }
  EXPECT_EQ(pos, out_hier.size());
}

TEST(HierCollectives, AlltoallvBitwiseAcrossRankAndSupernodeCounts) {
  const int cases[][2] = {{8, 4}, {12, 3}, {7, 3}, {9, 4}, {6, 2}};
  for (const auto& c : cases) {
    run_ranks(c[0], [&](par::Comm& comm) {
      expect_alltoallv_algos_agree(comm, c[1]);
    });
  }
}

TEST(HierCollectives, AllgatherAndAllgathervAgree) {
  run_ranks(7, [](par::Comm& comm) {
    auto topo = clustered(comm.size(), 3);
    const par::Comm flat = comm.with_topology(topo, par::CollectiveAlgo::kFlat);
    const par::Comm hier =
        comm.with_topology(topo, par::CollectiveAlgo::kHierarchical);
    const std::vector<double> local = spread_payload(comm.rank(), 5);
    expect_fields_equal(hier.allgather(std::span<const double>(local)),
                        flat.allgather(std::span<const double>(local)), 0,
                        "allgather");
    const std::vector<double> var =
        spread_payload(comm.rank(), 1 + static_cast<std::size_t>(comm.rank()));
    std::vector<std::size_t> cf, ch;
    expect_fields_equal(
        hier.allgatherv(std::span<const double>(var), &ch),
        flat.allgatherv(std::span<const double>(var), &cf), 0, "allgatherv");
    EXPECT_EQ(ch, cf);
  });
}

// --- fault injection ---------------------------------------------------------

TEST(HierCollectives, AllreduceBitwiseUnderHeavyFaults) {
  run_ranks(6, heavy_fault_plan(0x41c3), [](par::Comm& comm) {
    expect_allreduce_algos_agree(comm, 4);
  });
}

TEST(HierCollectives, AlltoallvBitwiseUnderHeavyFaults) {
  run_ranks(7, heavy_fault_plan(0x77aa), [](par::Comm& comm) {
    expect_alltoallv_algos_agree(comm, 3);
  });
}

// --- split propagation -------------------------------------------------------

TEST(HierCollectives, SplitProjectsTopologyOntoSubgroups) {
  run_ranks(8, [](par::Comm& comm) {
    const par::Comm wrapped = comm.with_topology(clustered(8, 4));
    EXPECT_EQ(wrapped.default_algo(), par::CollectiveAlgo::kHierarchical);
    const par::Comm sub = wrapped.split(comm.rank() % 2, comm.rank());
    ASSERT_NE(sub.topology(), nullptr);
    EXPECT_EQ(sub.topology()->nranks(), 4);
    EXPECT_EQ(sub.topology()->num_supernodes(), 2);
    // Subgroup ranks {0,2,4,6} (or odd): first two descend from supernode 0.
    EXPECT_EQ(sub.topology()->supernode_of(0), 0);
    EXPECT_EQ(sub.topology()->supernode_of(1), 0);
    EXPECT_EQ(sub.topology()->supernode_of(3), 1);
    EXPECT_EQ(sub.default_algo(), par::CollectiveAlgo::kHierarchical);
    // Collectives on the subgroup agree across algorithms too.
    const std::vector<double> in = spread_payload(comm.rank(), 9);
    std::vector<double> out_hier(in.size()), out_flat(in.size());
    sub.allreduce(std::span<const double>(in), std::span<double>(out_hier),
                  par::ReduceOp::kSum);
    sub.allreduce(std::span<const double>(in), std::span<double>(out_flat),
                  par::ReduceOp::kSum, {par::CollectiveAlgo::kFlat});
    expect_fields_equal(out_hier, out_flat, 0, "split allreduce");
    // A bare comm's split stays bare.
    const par::Comm bare_sub = comm.split(0, comm.rank());
    EXPECT_EQ(bare_sub.topology(), nullptr);
  });
}

// --- per-level traffic counters ----------------------------------------------

TEST(HierCollectives, LevelCountersSeparateIntraFromInter) {
  obs::reset_all();
  run_ranks(8, [](par::Comm& comm) {
    const par::Comm hier = comm.with_topology(clustered(8, 4));
    std::vector<std::size_t> counts(8, 16);
    std::vector<double> data(8 * 16, static_cast<double>(comm.rank()));
    std::vector<std::size_t> rc;
    hier.alltoallv(std::span<const double>(data),
                   std::span<const std::size_t>(counts), rc);
    hier.alltoallv(std::span<const double>(data),
                   std::span<const std::size_t>(counts), rc,
                   {par::CollectiveAlgo::kFlat});
  });
  const double hier_inter =
      obs::total_counter("par:coll:messages[alltoallv/hier/inter]");
  const double hier_intra =
      obs::total_counter("par:coll:messages[alltoallv/hier/intra]");
  // Flat alltoallv exchanges counts through an inner alltoall scope, so its
  // payload messages land under alltoallv/flat and counts under alltoall/flat.
  const double flat_inter =
      obs::total_counter("par:coll:messages[alltoallv/flat/inter]") +
      obs::total_counter("par:coll:messages[alltoall/flat/inter]");
  EXPECT_GT(hier_intra, 0.0);
  EXPECT_GT(hier_inter, 0.0);
  EXPECT_GT(flat_inter, 0.0);
  // The whole point: hierarchical staging moves far fewer inter-supernode
  // messages (one combined message per ordered supernode pair).
  EXPECT_LT(hier_inter, flat_inter);
  EXPECT_GT(obs::total_counter("par:coll:calls[alltoallv/hier]"), 0.0);
  EXPECT_GT(obs::total_counter("par:coll:calls[alltoallv/flat]"), 0.0);
  obs::reset_all();
}

// --- coupled model invariance ------------------------------------------------

cpl::CoupledConfig hier_test_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{32, 16, 3};
  config.layout = cpl::Layout::kSequential;
  config.ocn_couple_ratio = 2;
  return config;
}

std::uint64_t run_coupled_hash(par::Comm& comm, par::CollectiveAlgo algo,
                               int supernode) {
  const par::Comm wrapped =
      comm.with_topology(clustered(comm.size(), supernode), algo);
  cpl::CoupledModel model(wrapped, hier_test_config());
  model.run_windows(4);
  return model.state_hash();
}

TEST(HierCoupled, StateHashInvariantToCollectiveAlgo) {
  run_ranks(4, [](par::Comm& comm) {
    const std::uint64_t flat =
        run_coupled_hash(comm, par::CollectiveAlgo::kFlat, 2);
    const std::uint64_t hier =
        run_coupled_hash(comm, par::CollectiveAlgo::kHierarchical, 2);
    EXPECT_EQ(hier, flat);
  });
}

TEST(HierCoupled, StateHashInvariantToCollectiveAlgoUnderFaults) {
  run_ranks(4, heavy_fault_plan(0x9e97), [](par::Comm& comm) {
    const std::uint64_t flat =
        run_coupled_hash(comm, par::CollectiveAlgo::kFlat, 3);
    const std::uint64_t hier =
        run_coupled_hash(comm, par::CollectiveAlgo::kHierarchical, 3);
    EXPECT_EQ(hier, flat);
  });
}

}  // namespace
}  // namespace ap3
