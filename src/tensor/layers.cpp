#include "tensor/layers.hpp"

#include <cmath>

namespace ap3::tensor {

namespace {
void he_init(Tensor& t, std::size_t fan_in, Rng& rng) {
  const double std_dev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal() * std_dev);
}
}  // namespace

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : weight({out, in}),
      bias({out}),
      grad_weight({out, in}),
      grad_bias({out}) {
  he_init(weight, in, rng);
}

Tensor Dense::forward(const Tensor& x) {
  input_ = x;
  Tensor out = matmul_nt(x, weight);
  const std::size_t batch = out.dim(0), n = out.dim(1);
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at2(i, j) += bias[j];
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0), n = grad_out.dim(1);
  const std::size_t in = weight.dim(1);
  // grad_bias += sum over batch.
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t j = 0; j < n; ++j) grad_bias[j] += grad_out.at2(i, j);
  // grad_weight += grad_out^T * input.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < batch; ++i) {
      const float g = grad_out.at2(i, j);
      if (g == 0.0f) continue;
      for (std::size_t p = 0; p < in; ++p)
        grad_weight.at2(j, p) += g * input_.at2(i, p);
    }
  // grad_in = grad_out * weight.
  return matmul(grad_out, weight);
}

void Dense::collect_params(std::vector<Param>& out) {
  out.push_back({&weight, &grad_weight});
  out.push_back({&bias, &grad_bias});
}

Conv1D::Conv1D(std::size_t cin, std::size_t cout, std::size_t k, Rng& rng)
    : kernel({cout, cin, k}),
      bias({cout}),
      grad_kernel({cout, cin, k}),
      grad_bias({cout}) {
  he_init(kernel, cin * k, rng);
}

Tensor Conv1D::forward(const Tensor& x) {
  input_ = x;
  return conv1d(x, kernel, bias);
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  return conv1d_backward(input_, kernel, grad_out, grad_kernel, grad_bias);
}

void Conv1D::collect_params(std::vector<Param>& out) {
  out.push_back({&kernel, &grad_kernel});
  out.push_back({&bias, &grad_bias});
}

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  return relu(x);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  return relu_backward(input_, grad_out);
}

ResUnit::ResUnit(std::vector<std::unique_ptr<Layer>> inner)
    : inner_(std::move(inner)) {
  AP3_REQUIRE_MSG(!inner_.empty(), "ResUnit needs at least one inner layer");
}

Tensor ResUnit::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : inner_) h = layer->forward(h);
  AP3_REQUIRE_MSG(h.same_shape(x), "ResUnit inner layers must preserve shape");
  add_inplace(h, x);
  pre_act_ = h;
  return relu(h);
}

Tensor ResUnit::backward(const Tensor& grad_out) {
  Tensor g = relu_backward(pre_act_, grad_out);
  Tensor g_inner = g;  // branch into the inner stack
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it)
    g_inner = (*it)->backward(g_inner);
  add_inplace(g_inner, g);  // skip connection gradient
  return g_inner;
}

void ResUnit::collect_params(std::vector<Param>& out) {
  for (auto& layer : inner_) layer->collect_params(out);
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

std::vector<float> Sequential::save_weights() {
  std::vector<Param> params;
  collect_params(params);
  std::vector<float> flat;
  for (const Param& p : params)
    flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
  return flat;
}

void Sequential::load_weights(const std::vector<float>& flat) {
  std::vector<Param> params;
  collect_params(params);
  std::size_t pos = 0;
  for (Param& p : params) {
    AP3_REQUIRE_MSG(pos + p.value->size() <= flat.size(),
                    "weight blob too short");
    for (std::size_t i = 0; i < p.value->size(); ++i)
      (*p.value)[i] = flat[pos + i];
    pos += p.value->size();
  }
  AP3_REQUIRE_MSG(pos == flat.size(), "weight blob has trailing data");
}

}  // namespace ap3::tensor
