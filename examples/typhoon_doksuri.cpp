// The Typhoon Doksuri forecast experiment (§7.1, Figs. 1/6/7), scaled to
// laptop resolution.
//
// A synthetic Doksuri analog (the paper initializes from analyses we do not
// have; see DESIGN.md substitutions) is seeded in the western Pacific of the
// coupled model at a fine ("3v2-like") and a coarse ("25v10-like")
// configuration. The example prints the forecast track and intensity
// alongside the synthetic best track, the fine-vs-coarse structure contrast
// (eye depth, wind maxima, surface Rossby number extremes), and the SST
// cold wake under the storm.
#include <cstdio>
#include <cmath>
#include <vector>

#include "base/rng.hpp"
#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct TrackPoint {
  double hours;
  double lon, lat, wind;
  int category;
};

struct CaseResult {
  std::vector<TrackPoint> track;
  double min_h = 1e300;
  double max_wind = 0.0;
  double ro_min = 0.0, ro_max = 0.0;
  double wake_cooling_k = 0.0;
};

/// Synthetic "best track": the seed location advected by a steering flow
/// with deterministic perturbations standing in for the CMA analysis.
std::vector<TrackPoint> synthetic_best_track(int n_fixes, double hours_step) {
  std::vector<TrackPoint> track;
  Rng rng(20230723);
  double lon = 133.0, lat = 16.5, wind = 35.0;
  for (int k = 0; k < n_fixes; ++k) {
    track.push_back({k * hours_step, lon, lat, wind,
                     atm::intensity_category(wind)});
    lon -= 0.55 * hours_step / 6.0 + 0.08 * rng.normal();  // WNW motion
    lat += 0.38 * hours_step / 6.0 + 0.06 * rng.normal();
    wind += (k < n_fixes / 2 ? 2.2 : -1.4) * hours_step / 6.0;  // intensify, land-fall decay
  }
  return track;
}

CaseResult run_case(int nranks, int mesh_n, int ocn_nx, int ocn_ny,
                    int windows) {
  static CaseResult result;
  result = CaseResult{};
  par::run(nranks, [&](par::Comm& comm) {
    cpl::CoupledConfig config;
    config.atm.mesh_n = mesh_n;
    config.atm.nlev = 8;
    config.ocn.grid = grid::TripolarConfig{ocn_nx, ocn_ny, 8};
    config.atm.drag_per_second = 5e-7;  // weak large-scale drag for the case
    cpl::CoupledModel model(comm, config);

    atm::VortexSpec spec;
    spec.lon_deg = 133.0;
    spec.lat_deg = 16.5;
    spec.radius_km = 350.0;
    spec.max_wind_ms = 50.0;
    spec.depression_m = 130.0;
    const double sst_before = model.sst_near(spec.lon_deg, spec.lat_deg, 700.0);
    model.seed_typhoon(spec);
    // Background steering flow (the paper's storm is steered by the
    // subtropical ridge): uniform easterly with a poleward component.
    if (model.has_atm()) {
      auto& dycore = model.atm().dycore();
      for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
        double u = 0.0, v = 0.0;
        dycore.wind_at(c, u, v);
        dycore.set_wind_at(c, u - 5.5, v + 1.2);
      }
    }

    double lon = spec.lon_deg, lat = spec.lat_deg;
    const double hours_per_window = model.atm_window_seconds() / 3600.0;
    for (int w = 0; w < windows; ++w) {
      const atm::VortexFix fix = model.track_typhoon(lon, lat, 700.0);
      if (comm.rank() == 0 && fix.found) {
        result.track.push_back({w * hours_per_window, fix.lon_deg, fix.lat_deg,
                                fix.max_wind_ms,
                                atm::intensity_category(fix.max_wind_ms)});
        result.min_h = std::min(result.min_h, fix.min_h_m);
        result.max_wind = std::max(result.max_wind, fix.max_wind_ms);
      }
      if (fix.found) {
        lon = fix.lon_deg;
        lat = fix.lat_deg;
      }
      model.run_windows(1);
    }

    // Ocean response: surface Rossby number extremes (Fig. 6c/d quantity).
    if (model.has_ocn()) {
      const auto ro = model.ocn().surface_rossby_number();
      double lo = 0.0, hi = 0.0;
      for (double r : ro) {
        lo = std::min(lo, r);
        hi = std::max(hi, r);
      }
      result.ro_min = comm.allreduce_value(lo, par::ReduceOp::kMin);
      result.ro_max = comm.allreduce_value(hi, par::ReduceOp::kMax);
    } else {
      result.ro_min = comm.allreduce_value(0.0, par::ReduceOp::kMin);
      result.ro_max = comm.allreduce_value(0.0, par::ReduceOp::kMax);
    }
    // Cold wake along the early track: compare the storm-genesis region.
    const double sst_after = model.sst_near(spec.lon_deg, spec.lat_deg, 700.0);
    if (comm.rank() == 0) result.wake_cooling_k = sst_before - sst_after;
  });
  return result;
}

}  // namespace

int main() {
  std::printf("Typhoon Doksuri analog forecast (coupled AP3ESM mini)\n");
  std::printf("======================================================\n\n");

  const int windows = 10;
  std::printf("running fine case (3v2-like)...\n");
  const CaseResult fine = run_case(2, 10, 96, 72, windows);
  std::printf("running coarse case (25v10-like)...\n\n");
  const CaseResult coarse = run_case(2, 5, 40, 30, windows);

  const auto best = synthetic_best_track(static_cast<int>(fine.track.size()),
                                         fine.track.size() > 1
                                             ? fine.track[1].hours
                                             : 6.0);

  std::printf("forecast track (fine) vs synthetic best track:\n");
  std::printf("  t[h]    model lon/lat         wind  cat | best lon/lat    "
              "     wind  cat |  error[km]\n");
  double mean_error = 0.0;
  for (size_t k = 0; k < fine.track.size() && k < best.size(); ++k) {
    const auto& m = fine.track[k];
    const auto& b = best[k];
    const double err =
        atm::track_distance_km(m.lon, m.lat, b.lon, b.lat);
    mean_error += err;
    std::printf("  %5.1f   %7.2fE %6.2fN  %5.1f   C%d  | %7.2fE %6.2fN  %5.1f"
                "   C%d  | %9.1f\n",
                m.hours, m.lon, m.lat, m.wind, m.category, b.lon, b.lat,
                b.wind, b.category, err);
  }
  if (!fine.track.empty())
    mean_error /= static_cast<double>(fine.track.size());
  std::printf("  mean track error: %.0f km\n\n", mean_error);

  std::printf("fine vs coarse structure (Fig. 6 contrast):\n");
  std::printf("  metric                     fine (3v2-like)  coarse (25v10-like)\n");
  std::printf("  min central thickness [m]  %15.1f  %19.1f\n", fine.min_h,
              coarse.min_h);
  std::printf("  max 10m-wind proxy [m/s]   %15.1f  %19.1f\n", fine.max_wind,
              coarse.max_wind);
  std::printf("  surface Ro range           [%6.3f, %5.3f]   [%6.3f, %5.3f]\n",
              fine.ro_min, fine.ro_max, coarse.ro_min, coarse.ro_max);
  std::printf("  SST cold wake [K]          %15.3f  %19.3f\n",
              fine.wake_cooling_k, coarse.wake_cooling_k);
  std::printf(
      "\nExpected (paper): the finer configuration resolves a deeper eye and a"
      "\nricher sea-surface Rossby-number response; at these toy resolutions"
      "\nthe track drifts faster than the real 3-km forecast, but the"
      "\nstructure contrast and the air-sea coupling pathway are the same.\n");
  return 0;
}
