file(REMOVE_RECURSE
  "libap3_ai.a"
)
