#include "sunway/athread.hpp"

#include <atomic>

#include "obs/obs.hpp"
#include "pp/pool.hpp"

namespace ap3::sunway {

void athread_spawn_join(const CpeKernel& kernel, DmaEngine& dma) {
  AP3_SPAN("sunway:athread:spawn");
  obs::counter_add("sunway:athread:spawns", 1.0);
  // LDM high-water across the spawn's 64 CPE instances, gauged once from the
  // spawning thread so it lands on the caller's (simulated rank's) buffer.
  std::atomic<std::size_t> ldm_peak{0};
  pp::ThreadPool::global().run_chunks(
      static_cast<std::size_t>(kCpesPerCoreGroup), [&](std::size_t cpe) {
        LdmAllocator ldm(kLdmBytesPerCpe);
        CpeContext ctx;
        ctx.cpe_id = static_cast<int>(cpe);
        ctx.num_cpes = kCpesPerCoreGroup;
        ctx.ldm = &ldm;
        ctx.dma = &dma;
        kernel(ctx);
        std::size_t seen = ldm_peak.load(std::memory_order_relaxed);
        while (seen < ldm.peak() &&
               !ldm_peak.compare_exchange_weak(seen, ldm.peak(),
                                               std::memory_order_relaxed)) {
        }
      });
  obs::gauge_max("sunway:ldm:peak_bytes",
                 static_cast<double>(ldm_peak.load(std::memory_order_relaxed)));
}

}  // namespace ap3::sunway
