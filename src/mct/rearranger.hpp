// Rearranger — moves AttrVect data between two decompositions via a Router.
//
// §5.2.4: "Rearrangement in the coupler generalizes the matrix transpose.
// The original all-to-all MPI was inefficient; we implemented non-blocking
// point-to-point MPI, which overlaps communication and computation."
// Both strategies are implemented so the coupler benchmark can compare them:
//  - kAlltoallv: one collective carrying all peers' payloads (the original),
//  - kPointToPoint: per-peer non-blocking sends with receives interleaved
//    into unpacking (the optimized path). Results are bitwise identical.
#pragma once

#include "mct/attrvect.hpp"
#include "mct/router.hpp"
#include "par/comm.hpp"

namespace ap3::mct {

enum class RearrangeMethod { kAlltoallv, kPointToPoint };

class Rearranger {
 public:
  Rearranger(const par::Comm& comm, Router router)
      : comm_(comm), router_(std::move(router)) {}

  /// Moves every field of `src` into `dst` (field sets must match; point
  /// counts must match the router's plans).
  void rearrange(const AttrVect& src, AttrVect& dst,
                 RearrangeMethod method = RearrangeMethod::kPointToPoint) const;

  const Router& router() const { return router_; }

 private:
  void rearrange_alltoallv(const AttrVect& src, AttrVect& dst) const;
  void rearrange_p2p(const AttrVect& src, AttrVect& dst) const;
  std::vector<double> pack_for_peer(const AttrVect& src,
                                    const std::vector<std::int64_t>& plan) const;
  void unpack_from_peer(AttrVect& dst, const std::vector<std::int64_t>& plan,
                        std::span<const double> payload) const;

  const par::Comm& comm_;
  Router router_;
};

}  // namespace ap3::mct
