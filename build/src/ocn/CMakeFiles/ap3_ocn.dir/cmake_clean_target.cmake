file(REMOVE_RECURSE
  "libap3_ocn.a"
)
