// Cross-rank merge collective for the observability layer.
//
// Each rank serializes its local RankBuffer (span aggregates + counters),
// the ranks allgather the blobs over ap3::par, and every rank deterministically
// combines them: span totals reduce with max (the getTiming convention for
// load-imbalanced components) and mean, counters sum, gauges max.
//
// Header-only on purpose: obs's core (obs.hpp) must not depend on par —
// par's hot paths record into obs — so the one obs facility that *does* need
// a communicator lives here, instantiated only by call sites that already
// link both libraries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace ap3::obs {

struct MergedSpan {
  std::string name;
  long long calls = 0;        ///< max across ranks
  double total_max = 0.0;     ///< max across ranks of per-rank total
  double total_mean = 0.0;    ///< mean across ranks of per-rank total
};

struct MergedCounter {
  std::string name;
  double value = 0.0;  ///< sum across ranks (counters) or max (gauges)
  bool is_gauge = false;
};

struct MergedReport {
  int ranks = 0;
  std::vector<MergedSpan> spans;        ///< sorted by name
  std::vector<MergedCounter> counters;  ///< sorted by name

  double counter(std::string_view name) const {
    for (const MergedCounter& c : counters)
      if (c.name == name) return c.value;
    return 0.0;
  }

  std::string to_string() const {
    std::ostringstream os;
    os << "obs merged report (" << ranks << " ranks)\n";
    for (const MergedSpan& s : spans) {
      std::string label = "  " + s.name;
      if (label.size() < 44) label.resize(44, ' ');
      os << label << " max " << s.total_max << " s  (mean " << s.total_mean
         << " s, " << s.calls << " calls)\n";
    }
    for (const MergedCounter& c : counters) {
      std::string label = "  " + c.name;
      if (label.size() < 44) label.resize(44, ' ');
      os << label << " " << c.value << (c.is_gauge ? "  (gauge)" : "") << "\n";
    }
    return os.str();
  }
};

/// Collective over `comm`: merge every rank's thread-local buffer. All ranks
/// return the identical report. Only this thread's buffer contributes for
/// each rank; counters recorded on helper threads (pool workers) are
/// process-global and reduced by total_counter() / the exporters instead.
inline MergedReport merge(const par::Comm& comm, std::size_t first_event = 0) {
  constexpr char kSep = '\x1f';
  std::ostringstream os;
  os.precision(17);
  for (const SpanStats& s : local().aggregate_spans(first_event))
    os << 'S' << kSep << s.name << kSep << s.calls << kSep << s.total_seconds
       << '\n';
  for (const auto& [name, c] : local().counters())
    os << 'C' << kSep << name << kSep << (c.is_gauge ? 1 : 0) << kSep
       << c.value << '\n';
  const std::string mine = os.str();
  const std::vector<char> flat(mine.begin(), mine.end());
  const std::vector<char> all =
      comm.allgatherv(std::span<const char>(flat), nullptr);

  struct SpanAccum {
    long long calls = 0;
    double total_max = 0.0;
    double total_sum = 0.0;
  };
  std::map<std::string, SpanAccum> spans;
  std::map<std::string, MergedCounter> counters;

  std::string line;
  std::istringstream in(std::string(all.begin(), all.end()));
  while (std::getline(in, line)) {
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= line.size()) {
      const std::size_t next = line.find(kSep, pos);
      if (next == std::string::npos) {
        fields.push_back(line.substr(pos));
        break;
      }
      fields.push_back(line.substr(pos, next - pos));
      pos = next + 1;
    }
    if (fields.size() != 4) continue;
    if (fields[0] == "S") {
      SpanAccum& acc = spans[fields[1]];
      acc.calls = std::max(acc.calls, std::atoll(fields[2].c_str()));
      const double total = std::atof(fields[3].c_str());
      acc.total_max = std::max(acc.total_max, total);
      acc.total_sum += total;
    } else if (fields[0] == "C") {
      MergedCounter& c = counters[fields[1]];
      c.name = fields[1];
      c.is_gauge = c.is_gauge || fields[2] == "1";
      const double value = std::atof(fields[3].c_str());
      c.value = c.is_gauge ? std::max(c.value, value) : c.value + value;
    }
  }

  MergedReport report;
  report.ranks = comm.size();
  for (const auto& [name, acc] : spans) {
    MergedSpan s;
    s.name = name;
    s.calls = acc.calls;
    s.total_max = acc.total_max;
    s.total_mean = acc.total_sum / comm.size();
    report.spans.push_back(std::move(s));
  }
  for (const auto& [name, c] : counters) report.counters.push_back(c);
  return report;
}

}  // namespace ap3::obs
