#include "sunway/ldm.hpp"

namespace ap3::sunway {

namespace {
constexpr std::size_t kAlign = 8;
std::size_t round_up(std::size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

LdmAllocator::LdmAllocator(std::size_t capacity_bytes)
    : capacity_(capacity_bytes), storage_(capacity_bytes) {}

void* LdmAllocator::alloc(std::size_t bytes) {
  const std::size_t need = round_up(bytes);
  if (used_ + need > capacity_) {
    throw LdmOverflow("LDM overflow: requested " + std::to_string(bytes) +
                      " bytes with " + std::to_string(capacity_ - used_) +
                      " free of " + std::to_string(capacity_));
  }
  void* ptr = storage_.data() + used_;
  used_ += need;
  if (used_ > peak_) peak_ = used_;
  stack_.emplace_back(ptr, need);
  return ptr;
}

void LdmAllocator::free_last(void* ptr) {
  AP3_REQUIRE_MSG(!stack_.empty(), "LDM free with empty allocation stack");
  AP3_REQUIRE_MSG(stack_.back().first == ptr,
                  "LDM frees must be LIFO (stack discipline)");
  used_ -= stack_.back().second;
  stack_.pop_back();
}

void LdmAllocator::reset() {
  used_ = 0;
  stack_.clear();
}

}  // namespace ap3::sunway
