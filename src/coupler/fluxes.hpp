// Air–sea flux computation — the coupler-owned physics of CPL7.
//
// Bulk formulas turn the atmosphere's exported surface state (regridded to
// ocean points) plus the ocean SST and ice fraction into the net surface
// heat flux, freshwater flux, and (ice-modulated) momentum flux the ocean
// imports. This is the air–sea interaction pathway the paper's typhoon
// experiment exercises (SST cold wakes under the storm).
#pragma once

#include <span>

namespace ap3::cpl {

struct BulkFluxConfig {
  double ocean_albedo = 0.06;
  double emissivity = 0.98;
  double exchange_sensible = 1.0e-3;  ///< Ch
  double exchange_latent = 1.2e-3;    ///< Ce
  double drag_cd = 1.3e-3;            ///< matches the atm export convention
  double rho_air = 1.2;
};

struct FluxInputs {
  // Atmosphere fields on ocean points.
  std::span<const double> taux, tauy;  ///< wind stress [N/m²]
  std::span<const double> tbot;        ///< lowest-level air temperature [K]
  std::span<const double> qbot;        ///< lowest-level humidity [kg/kg]
  std::span<const double> gsw, glw;    ///< downward radiation [W/m²]
  std::span<const double> precip;      ///< [kg/m²/s]
  // Ocean / ice fields.
  std::span<const double> sst;         ///< [K]
  std::span<const double> ifrac;       ///< ice fraction [0, 1]
};

struct FluxOutputs {
  std::span<double> qnet;   ///< net surface heat flux into the ocean [W/m²]
  std::span<double> fresh;  ///< freshwater flux [kg/m²/s]
  std::span<double> taux;   ///< ice-modulated momentum flux
  std::span<double> tauy;
};

/// Computes ocean forcing point-wise; open-water fluxes are scaled by
/// (1 − ifrac), ice-covered fractions pass only a small conductive flux.
void compute_air_sea_fluxes(const BulkFluxConfig& config,
                            const FluxInputs& in, FluxOutputs out);

/// Saturation humidity over water, matching the atmosphere's scheme.
double qsat_surface(double sst_k);

}  // namespace ap3::cpl
