# Empty compiler generated dependencies file for ap3_sunway.
# This may be replaced when dependencies are built.
