// Architectural parameters of the simulated Sunway OceanLight node and the
// ORISE GPU node, as described in §6.3 of the paper.
//
// These constants drive both the functional simulator (LDM capacity, CPE
// count) and the timing model (throughputs, bandwidths). Where the paper
// gives a number we use it; the per-core throughputs are calibrated in
// src/perf against the paper's measured MPE-vs-CPE speedups (84x-184x).
#pragma once

#include <cstddef>

namespace ap3::sunway {

// --- SW26010P processor ------------------------------------------------------
inline constexpr int kCoreGroupsPerCpu = 6;    ///< 6 CGs per SW26010P
inline constexpr int kCpesPerCoreGroup = 64;   ///< 8x8 CPE mesh
inline constexpr int kMpesPerCoreGroup = 1;
inline constexpr int kCoresPerCpu =
    kCoreGroupsPerCpu * (kCpesPerCoreGroup + kMpesPerCoreGroup);  // 390
inline constexpr std::size_t kLdmBytesPerCpe = 256 * 1024;        ///< 256 KiB

// --- Sunway OceanLight system -------------------------------------------------
inline constexpr int kOceanLightNodes = 107520;     ///< "more than 107520 nodes"
inline constexpr long long kOceanLightCores =
    static_cast<long long>(kOceanLightNodes) * kCoresPerCpu;  // 41932800

// Fat-tree: 304-port leaf switches, 256 down / 48 up, 16:3 oversubscribed.
inline constexpr int kLeafPortsDown = 256;
inline constexpr int kLeafPortsUp = 48;
inline constexpr int kNodesPerSupernode = 256;

// Timing-model parameters (simulated hardware; calibrated in src/perf).
inline constexpr double kMpeGflops = 3.3;      ///< one management core
inline constexpr double kCpeClusterGflops = 440.0;  ///< 64 CPEs, one CG
inline constexpr double kDmaBandwidthGBs = 40.0;    ///< CG aggregate LDM DMA
inline constexpr double kDmaLatencySeconds = 1.2e-6;
inline constexpr double kIntraSupernodeBandwidthGBs = 18.0;
inline constexpr double kInterSupernodeBandwidthGBs =
    kIntraSupernodeBandwidthGBs * 3.0 / 16.0;  ///< 16:3 oversubscription
inline constexpr double kNetworkLatencySeconds = 2.5e-6;

// --- ORISE node (§6.3) --------------------------------------------------------
inline constexpr int kOriseGpusPerNode = 4;
inline constexpr double kOriseGpuGflops = 6600.0;   ///< ~AMD MI60 FP64 class
inline constexpr double kOriseCpuGflops = 120.0;    ///< 4-way 8-core x86 host
inline constexpr double kOrisePcieBandwidthGBs = 16.0;
inline constexpr double kOriseNetworkBandwidthGBs = 25.0;
inline constexpr double kOriseNetworkLatencySeconds = 1.8e-6;

}  // namespace ap3::sunway
