// getTiming-style performance report (§6.2).
//
// The paper measures with GPTL timers inside Coupler 7, reduces with the
// maximum across ranks ("to account for potential load imbalance"), and
// converts to SYPD with the getTiming script. This module reproduces that
// pipeline: the driver stamps per-phase timers into a per-rank registry;
// summarize() reduces across ranks and reports component and whole-model
// SYPD, excluding initialization — exactly the paper's measurement basis.
#pragma once

#include <string>
#include <vector>

#include "base/timer.hpp"
#include "par/comm.hpp"

namespace ap3::cpl {

struct PhaseTiming {
  std::string name;
  double max_seconds = 0.0;   ///< max across ranks (the getTiming reduction)
  double mean_seconds = 0.0;
  long long calls = 0;
};

struct TimingSummary {
  std::vector<PhaseTiming> phases;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;  ///< max across ranks of the run phase total
  /// Simulated-years-per-day, the paper's headline metric.
  double sypd() const;
  std::string to_string() const;
};

/// Collective: reduce a per-rank registry into the cross-rank summary.
/// `simulated_seconds` is the model time the measured window covered.
TimingSummary summarize_timing(const par::Comm& comm,
                               const TimerRegistry& registry,
                               double simulated_seconds);

}  // namespace ap3::cpl
