#include "ai/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "ai/suite.hpp"
#include "obs/obs.hpp"
#include "pp/stream.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/layers.hpp"

namespace ap3::ai {

using tensor::Tensor;

namespace {

pp::RangePolicy pol(pp::ExecSpace space, std::size_t n,
                    std::string_view label) {
  pp::RangePolicy p(0, n);
  p.on(space).named(label);
  return p;
}

tensor::Accum accum_of(PrecisionPolicy policy) {
  return policy == PrecisionPolicy::kFp64 ? tensor::Accum::kFloat64
                                          : tensor::Accum::kFloat32;
}

const char* columns_counter(pp::ExecSpace space) {
  switch (space) {
    case pp::ExecSpace::kSerial: return "ai:engine:columns:Serial";
    case pp::ExecSpace::kHostThreads: return "ai:engine:columns:HostThreads";
    case pp::ExecSpace::kSunwayCPE: return "ai:engine:columns:SunwayCPE";
  }
  return "ai:engine:columns:?";
}

/// Round a tensor's payload through the group-scaled representation in
/// place — bitwise a no-op for in-range data (see engine.hpp), but it keeps
/// the storage model honest and is what the gs byte counters meter.
void round_activations(Tensor& t, std::size_t group_size) {
  const auto packed = precision::GroupScaledArray::compress_floats(
      {t.data(), t.size()}, group_size);
  packed.decompress_floats({t.data(), t.size()});
  if (obs::enabled())
    obs::counter_add("ai:engine:gs_activation_bytes",
                     static_cast<double>(packed.bytes()));
}

}  // namespace

std::uint64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b))
    return a == a && b == b ? 0 : ~std::uint64_t{0};
  const auto key = [](float x) {
    const auto u = std::bit_cast<std::uint32_t>(x);
    return (u & 0x80000000u)
               ? -static_cast<std::int64_t>(u & 0x7fffffffu)
               : static_cast<std::int64_t>(u);
  };
  const std::int64_t d = key(a) - key(b);
  return static_cast<std::uint64_t>(d < 0 ? -d : d);
}

struct InferenceEngine::Slot {
  std::size_t lo = 0, rows = 0;
  Tensor norm_cols;  ///< (rows, 5, levels), normalized
  Tensor rad_in;     ///< (rows, 5*levels + 2), normalized
  pp::Event cnn_done, mlp_done;
};

InferenceEngine::InferenceEngine(AiPhysicsSuite& suite, EngineConfig config)
    : suite_(suite), config_(config) {}

InferenceEngine::~InferenceEngine() = default;

void InferenceEngine::set_config(const EngineConfig& config) {
  config_ = config;
  gs_params_.clear();
  cnn_stream_.reset();
  mlp_stream_.reset();
}

void InferenceEngine::refresh_gs_weights() {
  gs_params_.clear();
  std::vector<tensor::Param> params;
  suite_.cnn().model().collect_params(params);
  suite_.mlp().model().collect_params(params);
  double gs_bytes = 0.0, fp32_bytes = 0.0;
  for (const tensor::Param& p : params) {
    auto packed = precision::GroupScaledArray::compress_floats(
        {p.value->data(), p.value->size()}, config_.group_size);
    // Inference reads the weights *through* the group-scaled image; the
    // power-of-two round trip writes back the identical bits.
    packed.decompress_floats({p.value->data(), p.value->size()});
    gs_bytes += static_cast<double>(packed.bytes());
    fp32_bytes += static_cast<double>(p.value->size() * sizeof(float));
    gs_params_.push_back(std::move(packed));
  }
  stats_.gs_weight_bytes = gs_bytes;
  stats_.fp32_weight_bytes = fp32_bytes;
  if (obs::enabled())
    obs::counter_add("ai:engine:gs_weight_bytes", gs_bytes);
}

void InferenceEngine::forward_slot(Slot& slot, const Tensor& /*columns*/,
                                   std::span<const double> /*tskin*/,
                                   std::span<const double> /*coszr*/,
                                   SuiteOutput& out) {
  const bool gs = config_.precision == PrecisionPolicy::kGroupScaled;
  const std::size_t levels = slot.norm_cols.dim(2);
  const tensor::Dispatch d{config_.space, 0, accum_of(config_.precision),
                           config_.pack_width};

  auto cnn_body = [this, &slot, &out, d, gs, levels] {
    AP3_SPAN("ai:engine:cnn");
    tensor::DispatchScope scope(d);
    Tensor t = suite_.cnn().forward(slot.norm_cols);
    if (gs) round_activations(t, config_.group_size);
    suite_.tendency_norm().invert(t);
    const std::size_t base = slot.lo * 4 * levels;
    const float* src = t.data();
    float* dst = out.tendencies.data();
    pp::parallel_for(pol(d.space, t.size(), "ai:engine:scatter_tend"),
                     [=](std::size_t i) { dst[base + i] = src[i]; });
  };
  auto mlp_body = [this, &slot, &out, d, gs] {
    AP3_SPAN("ai:engine:mlp");
    tensor::DispatchScope scope(d);
    Tensor f = suite_.mlp().forward(slot.rad_in);
    if (gs) round_activations(f, config_.group_size);
    suite_.flux_norm().invert(f);
    const std::size_t base = slot.lo * 2;
    const float* src = f.data();
    float* dst = out.fluxes.data();
    pp::parallel_for(pol(d.space, f.size(), "ai:engine:scatter_flux"),
                     [=](std::size_t i) { dst[base + i] = src[i]; });
  };

  if (config_.overlap) {
    if (!cnn_stream_) cnn_stream_ = std::make_unique<pp::Stream>();
    if (!mlp_stream_) mlp_stream_ = std::make_unique<pp::Stream>();
    slot.cnn_done = cnn_stream_->enqueue("ai:engine:cnn", cnn_body);
    slot.mlp_done = mlp_stream_->enqueue("ai:engine:mlp", mlp_body);
  } else {
    cnn_body();
    mlp_body();
  }
}

void InferenceEngine::verify_slot(const Slot& slot, const Tensor& /*columns*/,
                                  std::span<const double> /*tskin*/,
                                  std::span<const double> /*coszr*/,
                                  const SuiteOutput& out) {
  AP3_SPAN("ai:engine:verify");
  // Reference: FP64 accumulation on the serial space, same normalized
  // inputs. The slot tensors already passed through any group-scaled
  // rounding, so the reference sees exactly what the policy path saw.
  const tensor::Dispatch ref{pp::ExecSpace::kSerial, 0,
                             tensor::Accum::kFloat64};
  tensor::DispatchScope scope(ref);
  Tensor t = suite_.cnn().forward(slot.norm_cols);
  suite_.tendency_norm().invert(t);
  Tensor f = suite_.mlp().forward(slot.rad_in);
  suite_.flux_norm().invert(f);
  const std::size_t levels = slot.norm_cols.dim(2);
  std::uint64_t max_ulp = 0;
  const float* td = out.tendencies.data() + slot.lo * 4 * levels;
  for (std::size_t i = 0; i < t.size(); ++i)
    max_ulp = std::max(max_ulp, ulp_distance(td[i], t[i]));
  const float* fd = out.fluxes.data() + slot.lo * 2;
  for (std::size_t i = 0; i < f.size(); ++i)
    max_ulp = std::max(max_ulp, ulp_distance(fd[i], f[i]));
  stats_.max_verify_ulp = std::max(stats_.max_verify_ulp, max_ulp);
  if (obs::enabled())
    obs::counter_add("ai:verify:max_ulp", static_cast<double>(max_ulp));
  AP3_REQUIRE_MSG(max_ulp <= config_.ulp_bound,
                  "AI inference drifted " << max_ulp
                                          << " ULP from the FP64 reference "
                                             "(bound "
                                          << config_.ulp_bound << ")");
}

SuiteOutput InferenceEngine::run(const Tensor& columns,
                                 std::span<const double> tskin,
                                 std::span<const double> coszr) {
  AP3_SPAN("ai:engine:run");
  AP3_REQUIRE_MSG(suite_.normalized(),
                  "InferenceEngine used before normalizers were fit");
  const auto& sc = suite_.config();
  AP3_REQUIRE(columns.rank() == 3 &&
              columns.dim(1) == static_cast<std::size_t>(sc.input_channels) &&
              columns.dim(2) == static_cast<std::size_t>(sc.levels));
  const std::size_t batch = columns.dim(0);
  const std::size_t levels = columns.dim(2);
  const std::size_t channels = columns.dim(1);
  AP3_REQUIRE(tskin.size() == batch && coszr.size() == batch);

  SuiteOutput out;
  out.tendencies = Tensor({batch, 4, levels});
  out.fluxes = Tensor({batch, 2});
  if (batch == 0) return out;

  const bool gs = config_.precision == PrecisionPolicy::kGroupScaled;
  if (gs) refresh_gs_weights();  // weights may have moved (online training)

  const std::size_t micro =
      config_.micro_batch == 0 ? batch : std::min(config_.micro_batch, batch);
  const std::size_t nslots = (batch + micro - 1) / micro;
  const std::size_t feat = channels * levels;
  const std::size_t rad_feat = feat + 2;

  std::vector<Slot> slots(nslots);
  const float* cols = columns.data();
  const double* skin = tskin.data();
  const double* cosz = coszr.data();
  for (std::size_t s = 0; s < nslots; ++s) {
    Slot& slot = slots[s];
    slot.lo = s * micro;
    slot.rows = std::min(micro, batch - slot.lo);
    {
      AP3_SPAN("ai:engine:pack");
      slot.norm_cols = Tensor({slot.rows, channels, levels});
      float* nc = slot.norm_cols.data();
      const std::size_t base = slot.lo * feat;
      pp::parallel_for(pol(config_.space, slot.rows * feat, "ai:engine:pack"),
                       [=](std::size_t i) { nc[i] = cols[base + i]; });
      suite_.input_norm().apply(slot.norm_cols);
      slot.rad_in = Tensor({slot.rows, rad_feat});
      float* ri = slot.rad_in.data();
      const std::size_t lo = slot.lo;
      pp::parallel_for(
          pol(config_.space, slot.rows * rad_feat, "ai:engine:pack_rad"),
          [=](std::size_t e) {
            const std::size_t r = e / rad_feat, f = e % rad_feat;
            if (f < feat)
              ri[e] = cols[(lo + r) * feat + f];
            else if (f == feat)
              ri[e] = static_cast<float>(skin[lo + r]);
            else
              ri[e] = static_cast<float>(cosz[lo + r]);
          });
      suite_.rad_input_norm().apply(slot.rad_in);
      if (gs) {
        round_activations(slot.norm_cols, config_.group_size);
        round_activations(slot.rad_in, config_.group_size);
      }
    }
    // The forwards of this slot trail the packer: with overlap on they run
    // on the CNN/MLP streams while the rank thread packs the next slot.
    forward_slot(slot, columns, tskin, coszr, out);
  }
  for (Slot& slot : slots) {
    slot.cnn_done.wait();
    slot.mlp_done.wait();
  }
  if (config_.verify)
    for (const Slot& slot : slots) verify_slot(slot, columns, tskin, coszr, out);

  ++stats_.runs;
  stats_.columns += batch;
  stats_.batches += nslots;
  if (obs::enabled()) {
    obs::counter_add("ai:engine:columns", static_cast<double>(batch));
    obs::counter_add(columns_counter(config_.space),
                     static_cast<double>(batch));
    obs::counter_add("ai:engine:batches", static_cast<double>(nslots));
  }
  return out;
}

}  // namespace ap3::ai
