// SIMD pack layer (the SCREAM Pack<T,N> idiom, §5.3).
//
// A Pack<T,N> is N scalars in aligned storage that the compiler can keep in
// one vector register; kernels written over packs expose N independent
// arithmetic chains to the backend's vector unit instead of one serial
// chain per element. The repo-wide determinism contract extends to packs:
//
//   same accumulation width  =>  same bits for EVERY pack width,
//   on every ExecSpace (kSerial / kHostThreads / kSunwayCPE).
//
// The contract holds because packed kernels vectorize across INDEPENDENT
// OUTPUT ELEMENTS (lanes are distinct outputs), never across a reduction
// dimension: each lane performs the exact fixed-order inner accumulation of
// the scalar reference kernel, so its bits cannot depend on how many
// neighbors ride in the same register. Anything that would need to split a
// single accumulation across lanes (reductions, prefix sums, data-dependent
// level sweeps) must be scalarized instead — see DESIGN.md §13.
//
// Tail discipline: all masked load/store helpers take an explicit lane
// count and touch exactly that many scalars. A tail pack at the end of an
// allocation never reads past it (ASan-verified in tests/test_pack.cpp);
// unused lanes are zero-filled on load and simply not stored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "base/error.hpp"

namespace ap3::pp {

/// Pack widths the runtime dispatcher (with_pack_width) accepts. Width 0 is
/// reserved by callers to mean "scalar reference kernel" and never reaches
/// the pack layer.
inline constexpr bool is_pack_width(std::size_t w) {
  return w == 1 || w == 2 || w == 4 || w == 8 || w == 16;
}

#ifndef AP3_DEFAULT_PACK_WIDTH
#define AP3_DEFAULT_PACK_WIDTH 8
#endif

/// Default width for packed kernels: 8 floats = one AVX-512 register / two
/// SSE registers; for doubles it is two cache-line halves. Override at
/// configure time with -DAP3_DEFAULT_PACK_WIDTH=<1|2|4|8|16>.
inline constexpr std::size_t kDefaultPackWidth = AP3_DEFAULT_PACK_WIDTH;
static_assert(is_pack_width(kDefaultPackWidth),
              "AP3_DEFAULT_PACK_WIDTH must be one of 1,2,4,8,16");

/// Lane mask for tail handling and data-dependent branches (select).
template <int N>
struct Mask {
  static_assert(N >= 1 && (N & (N - 1)) == 0, "pack width must be 2^k");
  bool m[N] = {};

  /// Mask with the first `lanes` lanes set (the tail-pack shape).
  static Mask first(std::size_t lanes) {
    Mask r;
    for (int l = 0; l < N; ++l) r.m[l] = static_cast<std::size_t>(l) < lanes;
    return r;
  }
  bool operator[](int l) const { return m[l]; }
  bool any() const {
    for (int l = 0; l < N; ++l)
      if (m[l]) return true;
    return false;
  }
  bool all() const {
    for (int l = 0; l < N; ++l)
      if (!m[l]) return false;
    return true;
  }
};

/// N scalars of type T in register-alignable storage. Arithmetic is
/// lane-wise and written in the same expression shape as the scalar kernels
/// (a binary op per lane), so a packed expression contracts/rounds exactly
/// like its scalar counterpart lane by lane.
template <typename T, int N>
struct alignas(alignof(T) * static_cast<std::size_t>(N) <= 64
                   ? alignof(T) * static_cast<std::size_t>(N)
                   : std::size_t{64}) Pack {
  static_assert(N >= 1 && (N & (N - 1)) == 0, "pack width must be 2^k");
  static constexpr int n = N;
  using value_type = T;

  T d[N] = {};

  Pack() = default;
  /// Broadcast.
  explicit Pack(T v) {
    for (int l = 0; l < N; ++l) d[l] = v;
  }
  /// Lane l = start + l, exactly converted (level/depth indices).
  static Pack iota(std::size_t start) {
    Pack r;
    for (int l = 0; l < N; ++l)
      r.d[l] = static_cast<T>(start + static_cast<std::size_t>(l));
    return r;
  }

  T& operator[](int l) { return d[l]; }
  const T& operator[](int l) const { return d[l]; }

  Pack& operator+=(const Pack& o) {
    for (int l = 0; l < N; ++l) d[l] += o.d[l];
    return *this;
  }
  Pack& operator-=(const Pack& o) {
    for (int l = 0; l < N; ++l) d[l] -= o.d[l];
    return *this;
  }
  Pack& operator*=(const Pack& o) {
    for (int l = 0; l < N; ++l) d[l] *= o.d[l];
    return *this;
  }
  Pack& operator/=(const Pack& o) {
    for (int l = 0; l < N; ++l) d[l] /= o.d[l];
    return *this;
  }

  /// acc.fma(a, b): lane-wise d[l] += a * b[l] — the exact expression shape
  /// of the scalar kernels' `acc += a * b`, so bits match per lane whatever
  /// the surrounding pack width. (The scalar operand is the common case in
  /// fixed-order dots: one A element broadcast against a strip of W rows.)
  Pack& fma(T a, const Pack& b) {
    for (int l = 0; l < N; ++l) d[l] += a * b.d[l];
    return *this;
  }
  Pack& fma(const Pack& a, const Pack& b) {
    for (int l = 0; l < N; ++l) d[l] += a.d[l] * b.d[l];
    return *this;
  }
};

template <typename T, int N>
inline Pack<T, N> operator+(Pack<T, N> a, const Pack<T, N>& b) {
  a += b;
  return a;
}
template <typename T, int N>
inline Pack<T, N> operator-(Pack<T, N> a, const Pack<T, N>& b) {
  a -= b;
  return a;
}
template <typename T, int N>
inline Pack<T, N> operator*(Pack<T, N> a, const Pack<T, N>& b) {
  a *= b;
  return a;
}
template <typename T, int N>
inline Pack<T, N> operator/(Pack<T, N> a, const Pack<T, N>& b) {
  a /= b;
  return a;
}
template <typename T, int N>
inline Pack<T, N> operator-(const Pack<T, N>& a) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = -a.d[l];
  return r;
}
// Scalar-operand forms keep the scalar on its original side of the
// expression, mirroring the reference kernels term for term.
template <typename T, int N>
inline Pack<T, N> operator*(T a, const Pack<T, N>& b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a * b.d[l];
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator*(const Pack<T, N>& a, T b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a.d[l] * b;
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator+(T a, const Pack<T, N>& b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a + b.d[l];
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator+(const Pack<T, N>& a, T b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a.d[l] + b;
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator-(const Pack<T, N>& a, T b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a.d[l] - b;
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator-(T a, const Pack<T, N>& b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a - b.d[l];
  return r;
}
template <typename T, int N>
inline Pack<T, N> operator/(const Pack<T, N>& a, T b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = a.d[l] / b;
  return r;
}

template <typename T, int N>
inline Mask<N> ge_zero(const Pack<T, N>& a) {
  Mask<N> r;
  for (int l = 0; l < N; ++l) r.m[l] = a.d[l] >= T{};
  return r;
}

/// Lane-wise m ? a : b.
template <typename T, int N>
inline Pack<T, N> select(const Mask<N>& m, const Pack<T, N>& a,
                         const Pack<T, N>& b) {
  Pack<T, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = m.m[l] ? a.d[l] : b.d[l];
  return r;
}

// ---- loads / stores -------------------------------------------------------
// No alignment is assumed (loads are element-wise; misaligned sources are
// exercised in test_pack). `To` selects an on-the-fly element conversion —
// packed dot kernels load fp32 operands straight into their fp64
// accumulation width, matching the scalar kernels' static_casts.

/// Full-width contiguous load.
template <typename To, int N, typename From>
inline Pack<To, N> pack_load(const From* p) {
  Pack<To, N> r;
  for (int l = 0; l < N; ++l) r.d[l] = static_cast<To>(p[l]);
  return r;
}

/// Masked contiguous load: reads exactly `lanes` scalars (never past them);
/// remaining lanes are zero.
template <typename To, int N, typename From>
inline Pack<To, N> pack_load(const From* p, std::size_t lanes) {
  Pack<To, N> r;
  for (std::size_t l = 0; l < lanes; ++l)
    r.d[l] = static_cast<To>(p[l]);
  return r;
}

/// Full-width strided (gather-like) load: lane l reads p[l * stride].
template <typename To, int N, typename From>
inline Pack<To, N> pack_load_strided(const From* p, std::size_t stride) {
  Pack<To, N> r;
  for (int l = 0; l < N; ++l)
    r.d[l] = static_cast<To>(p[static_cast<std::size_t>(l) * stride]);
  return r;
}

/// Masked strided load: lane l < lanes reads p[l * stride]; rest zero.
template <typename To, int N, typename From>
inline Pack<To, N> pack_load_strided(const From* p, std::size_t stride,
                                     std::size_t lanes) {
  Pack<To, N> r;
  for (std::size_t l = 0; l < lanes; ++l) r.d[l] = static_cast<To>(p[l * stride]);
  return r;
}

/// Masked contiguous store with conversion: writes exactly `lanes` scalars.
template <typename To, typename T, int N>
inline void pack_store(To* p, const Pack<T, N>& a, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) p[l] = static_cast<To>(a.d[l]);
}

template <typename To, typename T, int N>
inline void pack_store(To* p, const Pack<T, N>& a) {
  for (int l = 0; l < N; ++l) p[l] = static_cast<To>(a.d[l]);
}

// ---- scalarize / repack ---------------------------------------------------
// Views over pack arrays, SCREAM-style. A Pack<T,N> is standard-layout
// storage of N T's, so a contiguous run of packs is a contiguous run of
// scalars; scalarize exposes it as such and repack re-tiles it at another
// width. Both are views (no copies); repack requires the total scalar count
// to divide by the target width and the base pointer to satisfy the target
// alignment.

template <typename T, int N>
inline std::span<T> scalarize(std::span<Pack<T, N>> packs) {
  return {reinterpret_cast<T*>(packs.data()),
          packs.size() * static_cast<std::size_t>(N)};
}

template <typename T, int N>
inline std::span<const T> scalarize(std::span<const Pack<T, N>> packs) {
  return {reinterpret_cast<const T*>(packs.data()),
          packs.size() * static_cast<std::size_t>(N)};
}

template <int M, typename T, int N>
inline std::span<Pack<T, M>> repack(std::span<Pack<T, N>> packs) {
  const std::size_t scalars = packs.size() * static_cast<std::size_t>(N);
  AP3_REQUIRE_MSG(scalars % static_cast<std::size_t>(M) == 0,
                  "repack: " << scalars << " scalars do not tile by " << M);
  AP3_REQUIRE_MSG(reinterpret_cast<std::uintptr_t>(packs.data()) %
                          alignof(Pack<T, M>) ==
                      0,
                  "repack: base pointer misaligned for target width " << M);
  return {reinterpret_cast<Pack<T, M>*>(packs.data()),
          scalars / static_cast<std::size_t>(M)};
}

// ---- tiling ---------------------------------------------------------------

/// One unit of packed work: a run of `lanes` consecutive elements starting
/// at `offset`. Full tiles have lanes == width; the final tile of a
/// non-divisible extent is the masked remainder (lanes < width).
struct PackTile {
  std::size_t offset = 0;
  std::size_t lanes = 0;
};

/// Serial pack-tiled sweep over [begin, end): whole tiles of `width`
/// elements plus one masked remainder. The building block for packed column
/// kernels that run inside an outer pp launch (atm physics levels, LDM
/// panel rows); PackedRangePolicy in pp/exec.hpp is the launch-level
/// counterpart and produces the identical tile sequence.
template <typename Body>
inline void packed_sweep(std::size_t begin, std::size_t end, std::size_t width,
                         const Body& body) {
  AP3_REQUIRE(width >= 1);
  std::size_t off = begin;
  for (; off + width <= end; off += width) body(PackTile{off, width});
  if (off < end) body(PackTile{off, end - off});
}

/// Runtime width -> compile-time width dispatch:
///   with_pack_width(w, [&]<int N>() { kernel<N>(...); });
/// Throws ap3::Error for widths outside {1,2,4,8,16} — packed entry points
/// must never silently fall back to scalar (the pp:pack:launches obs counter
/// plus this check make a silent fallback a test failure).
template <typename F>
decltype(auto) with_pack_width(std::size_t width, F&& f) {
  switch (width) {
    case 1: return f.template operator()<1>();
    case 2: return f.template operator()<2>();
    case 4: return f.template operator()<4>();
    case 8: return f.template operator()<8>();
    case 16: return f.template operator()<16>();
    default: break;
  }
  AP3_REQUIRE_MSG(false, "unsupported pack width " << width
                             << " (expected one of 1,2,4,8,16)");
  return f.template operator()<1>();  // unreachable
}

}  // namespace ap3::pp
