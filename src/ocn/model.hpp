// OcnModel — the LICOM-mini ocean component.
//
// Tripolar lat-lon grid (§6.1: nx × ny × 80 levels), A-grid finite-volume
// dynamics with the paper's barotropic/baroclinic/tracer split (2 s / 20 s /
// 20 s ratios), Canuto-style vertical mixing, linear EOS, and the §5.2.2
// 3-D non-ocean point exclusion with bitwise-identical results. Kernels
// dispatch through the pp layer so the component runs on any execution
// space (§5.3), and the dycore state can round through the §5.2.3 mixed-
// precision representation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "balance/rebalanceable.hpp"
#include "grid/halo.hpp"
#include "grid/partition.hpp"
#include "grid/tripolar.hpp"
#include "io/checkpoint.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "ocn/canuto.hpp"
#include "ocn/config.hpp"
#include "ocn/eos.hpp"
#include "par/comm.hpp"

namespace ap3::ocn {

class OcnModel : public balance::Rebalanceable {
 public:
  /// Collective construction = MCT `init` (balanced block decomposition).
  /// `grid`, when non-null, is an externally built immutable grid matching
  /// `config.grid` (ensemble members share one instead of rebuilding).
  OcnModel(const par::Comm& comm, const OcnConfig& config,
           std::shared_ptr<const grid::TripolarGrid> grid = nullptr);
  /// Explicit-cuts construction for rebalanced decompositions (src/balance):
  /// every rank passes the same cut lines.
  OcnModel(const par::Comm& comm, const OcnConfig& config,
           const grid::BlockCuts& cuts,
           std::shared_ptr<const grid::TripolarGrid> grid = nullptr);

  /// Advance over a coupling window (integer number of baroclinic steps).
  void run(double start_seconds, double duration_seconds);

  // --- coupler contract -----------------------------------------------------
  static std::vector<std::string> export_fields();  // sst, ssh, us, vs
  static std::vector<std::string> import_fields();  // taux, tauy, qnet, fresh
  const mct::GlobalSegMap& gsmap() const { return gsmap_; }
  void export_state(mct::AttrVect& o2x) const;
  void import_state(const mct::AttrVect& x2o);

  // --- geometry accessors -----------------------------------------------------
  const grid::TripolarGrid& ocean_grid() const { return *grid_; }
  const OcnConfig& config() const { return config_; }
  int nx_local() const { return halo_->nx_local(); }
  int ny_local() const { return halo_->ny_local(); }
  int x0() const { return halo_->x0(); }
  int y0() const { return halo_->y0(); }
  std::size_t field_index(int i, int j) const { return halo_->halo_index(i, j); }
  bool is_ocean_local(int i, int j, int k = 0) const;
  int kmt_local(int i, int j) const;
  /// Owned ocean-surface global ids in export order.
  const std::vector<std::int64_t>& ocean_gids() const { return ocean_gids_; }
  const grid::BlockPartition2D& partition() const { return partition_; }
  grid::BlockCuts cuts() const { return partition_.cuts(); }

  // --- balance::Rebalanceable (src/balance) ----------------------------------
  /// Field names of one column's migratable record: the prognostic 2-D
  /// slices, every level of the 3-D stacks, and the imported forcing —
  /// exactly the checkpoint payload, column-factored.
  static std::vector<std::string> migration_fields(int nz);

  std::string_view balance_name() const override { return "ocn"; }
  const grid::BlockPartition2D* block_partition() const override {
    return &partition_;
  }
  /// Per-column weight = kmt (active levels): the §5.2.2 exclusion makes a
  /// column's cost proportional to its wet depth.
  void add_measured_cell_weights(std::span<double> weight) const override;
  double migration_bytes_per_weight_unit() const override;
  std::vector<std::string> migration_field_names() const override {
    return migration_fields(config_.grid.nz);
  }
  std::vector<std::int64_t> migration_gids() const override {
    return ocean_gids_;
  }
  /// Pack owned columns (ocean_gids() order) into `av`, one point per column.
  void export_migration_fields(mct::AttrVect& av) const override;
  /// Inverse of export: writes owned interior columns and forcing. Ghosts are
  /// left to the next halo exchange (every stencil read is preceded by one).
  void import_migration_fields(const mct::AttrVect& av) override;
  /// Wrapping sum of per-column FNV digests keyed by global id — invariant
  /// under any redistribution of columns across ranks (combine with kSum).
  std::uint64_t column_state_hash() const override;
  /// Carry the (global) baroclinic step counter across a migration.
  long long steps_completed() const override { return steps_; }
  void set_steps_completed(long long steps) override { steps_ = steps; }

  // --- state accessors ---------------------------------------------------------
  double eta(int i, int j) const { return eta_[field_index(i, j)]; }
  double temp(int i, int j, int k) const {
    return temp_[static_cast<std::size_t>(k)][field_index(i, j)];
  }
  double salt(int i, int j, int k) const {
    return salt_[static_cast<std::size_t>(k)][field_index(i, j)];
  }
  double u(int i, int j, int k) const {
    return u_[static_cast<std::size_t>(k)][field_index(i, j)];
  }
  double v(int i, int j, int k) const {
    return v_[static_cast<std::size_t>(k)][field_index(i, j)];
  }
  std::vector<double>& temp_level(int k) {
    return temp_[static_cast<std::size_t>(k)];
  }
  std::vector<double>& salt_level(int k) {
    return salt_[static_cast<std::size_t>(k)];
  }

  // --- diagnostics (collective) ----------------------------------------------
  double total_volume() const;     ///< Σ (H+η)·A over ocean columns
  double total_heat_content() const;
  double mean_sst() const;
  double max_current() const;
  double max_eta() const;
  /// Surface kinetic energy per column (Fig. 1c quantity), local values.
  std::vector<double> surface_kinetic_energy() const;
  /// Surface Rossby number ζ/f per owned column (Fig. 6 quantity).
  std::vector<double> surface_rossby_number() const;

  long long baroclinic_steps() const { return steps_; }

  // --- checkpoint/restart -----------------------------------------------------
  /// This rank's full prognostic snapshot: 2-D halo slices, the 3-D stacks
  /// flattened level-major (level k occupies [k·slots, (k+1)·slots)), the
  /// imported forcing, and the step counter.
  std::vector<io::Section> checkpoint_sections() const;
  /// Inverse of checkpoint_sections(); `sections` must carry this rank's
  /// layout (same names and sizes) with restored values.
  void restore_sections(const std::vector<io::Section>& sections);
  /// Section names in checkpoint_sections() order — the driver's canonical
  /// inventory (needed on ranks where the component does not live).
  static std::vector<std::string> checkpoint_section_names();

  /// Iterations executed by column-wise kernels since construction —
  /// demonstrates the §5.2.2 exclusion (~30 % fewer with it on).
  long long column_iterations() const { return column_iterations_; }
  /// Active-point statistics of this rank's block.
  double local_active_fraction() const;

  /// Perf-model inputs.
  static double barotropic_flops_per_point() { return 45.0; }
  static double baroclinic_flops_per_point_level() { return 60.0; }
  static double tracer_flops_per_point_level() { return 55.0; }

 private:
  void barotropic_step(double dt);
  void baroclinic_step(double dt);
  void tracer_step(double dt);
  void vertical_mixing(double dt);
  void apply_surface_forcing(double dt);
  void exchange_scalar(std::vector<double>& field) const;
  void exchange_vector(std::vector<double>& u_field,
                       std::vector<double>& v_field) const;
  void apply_mixed_precision();

  /// Column visitor: full-grid scan or compact active list (§5.2.2).
  template <typename Fn>
  void for_each_column(Fn&& fn);

  const par::Comm& comm_;
  OcnConfig config_;
  std::shared_ptr<const grid::TripolarGrid> grid_;
  grid::BlockPartition2D partition_;
  std::unique_ptr<grid::BlockHalo> halo_;
  CanutoMixing canuto_;
  LinearEos eos_;
  mct::GlobalSegMap gsmap_;

  // Geometry (local).
  std::vector<double> dx_m_;   ///< per local row
  std::vector<double> dy_m_;   ///< per local row (constant here)
  std::vector<double> coriolis_;
  std::vector<double> area_m2_;
  std::vector<int> kmt_local_;             ///< (nyl × nxl), no halo
  std::vector<double> dz_center_;          ///< distance between level centers
  std::vector<double> dz_layer_;           ///< layer thicknesses
  std::vector<std::pair<int, int>> active_columns_;  ///< compact list
  std::vector<std::int64_t> ocean_gids_;

  // Prognostic state (halo layout for 2-D slices).
  std::vector<double> eta_, ubar_, vbar_;
  std::vector<std::vector<double>> u_, v_, temp_, salt_;

  // Imported forcing (per owned ocean column, export order).
  std::vector<double> taux_, tauy_, qnet_, fresh_;

  long long steps_ = 0;
  long long column_iterations_ = 0;
  long long stall_points_ = 0;  ///< owned active points in the stall band
  double depth_m_ = 5500.0;
};

}  // namespace ap3::ocn
