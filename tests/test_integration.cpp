// Cross-module integration tests: the full component chain through the
// coupler, restart round trips through the parallel I/O layer, regridding
// between the real component grids, the perf model fed by real component
// constants, and the typhoon pipeline end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "coupler/driver.hpp"
#include "obs/obs.hpp"
#include "io/subfile.hpp"
#include "par/comm.hpp"
#include "perf/scaling.hpp"

namespace {

using namespace ap3;

cpl::CoupledConfig tiny_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  return config;
}

TEST(Integration, AtmToOcnRegridPreservesPhysicalRange) {
  par::run(2, [](par::Comm& comm) {
    cpl::CoupledModel model(comm, tiny_config());
    model.run_windows(5);
    // After one full ocean coupling cycle the ocean forcing derived from
    // regridded atmosphere fields must be physical.
    ASSERT_TRUE(model.has_ocn());
    const ocn::OcnModel& ocn = model.ocn();
    // Run another cycle and check SST stays in a physical band everywhere.
    model.run_windows(5);
    for (auto gid : ocn.ocean_gids()) {
      const int i = static_cast<int>(gid % ocn.config().grid.nx) - ocn.x0();
      const int j = static_cast<int>(gid / ocn.config().grid.nx) - ocn.y0();
      EXPECT_GT(ocn.temp(i, j, 0), -5.0);
      EXPECT_LT(ocn.temp(i, j, 0), 40.0);
    }
  });
}

TEST(Integration, IceRespondsToOceanThroughCoupler) {
  par::run(2, [](par::Comm& comm) {
    cpl::CoupledModel model(comm, tiny_config());
    const double ice0 = model.diagnostics().ice_fraction;
    model.run_windows(10);
    const double ice1 = model.diagnostics().ice_fraction;
    // Ice evolves (the initial caps adjust to the coupled SST field) and
    // stays a valid fraction.
    EXPECT_GE(ice1, 0.0);
    EXPECT_LE(ice1, 1.0);
    EXPECT_NE(ice0, ice1);
  });
}

TEST(Integration, LandCellsUseLandModelOceanCellsUseSst) {
  par::run(1, [](par::Comm& comm) {
    cpl::CoupledConfig config = tiny_config();
    cpl::CoupledModel model(comm, config);
    model.run_windows(6);
    ASSERT_TRUE(model.has_atm());
    atm::AtmModel* atm = &model.atm();
    int land_checked = 0, ocean_checked = 0;
    for (std::size_t c = 0; c < atm->dycore().mesh().num_owned(); ++c) {
      if (atm->is_land(c)) {
        // Land skin temperature is the land model's prognostic value.
        EXPECT_NEAR(atm->tskin(c), atm->land().tskin(c), 1e-12);
        ++land_checked;
      } else {
        // Ocean skin temperature tracks the (possibly ice-modulated) SST.
        EXPECT_GT(atm->tskin(c), 200.0);
        EXPECT_LT(atm->tskin(c), 320.0);
        ++ocean_checked;
      }
    }
    EXPECT_GT(land_checked, 0);
    EXPECT_GT(ocean_checked, 0);
  });
}

TEST(Integration, OceanRestartThroughSubfileIo) {
  // Write the ocean surface state with the §5.2.5 machinery, reload it into
  // a fresh model, and verify bitwise agreement — the restart pathway.
  const std::string base = "/tmp/ap3_it_restart";
  par::run(4, [&](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{48, 36, 6};
    ocn::OcnModel model(comm, config);
    mct::AttrVect x2o(ocn::OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.1;
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 5);

    io::FieldData sst;
    sst.ids = model.ocean_gids();
    for (auto gid : model.ocean_gids()) {
      const int i = static_cast<int>(gid % config.grid.nx) - model.x0();
      const int j = static_cast<int>(gid / config.grid.nx) - model.y0();
      sst.values.push_back(model.temp(i, j, 0));
    }
    io::write_subfiles(comm, {base, 2}, sst);
    comm.barrier();

    ocn::OcnModel fresh(comm, config);
    const io::FieldData back =
        io::read_subfiles(comm, {base, 2}, fresh.ocean_gids());
    std::size_t col = 0;
    for (auto gid : fresh.ocean_gids()) {
      const int i = static_cast<int>(gid % config.grid.nx) - fresh.x0();
      const int j = static_cast<int>(gid / config.grid.nx) - fresh.y0();
      fresh.temp_level(0)[fresh.field_index(i, j)] = back.values[col];
      ++col;
    }
    // The reloaded surface matches the source bitwise.
    col = 0;
    for (auto gid : fresh.ocean_gids()) {
      const int i = static_cast<int>(gid % config.grid.nx) - fresh.x0();
      const int j = static_cast<int>(gid / config.grid.nx) - fresh.y0();
      EXPECT_EQ(fresh.temp(i, j, 0), sst.values[col]);
      ++col;
    }
    comm.barrier();
  });
  for (int k = 0; k < 2; ++k)
    std::remove((base + "." + std::to_string(k) + ".bin").c_str());
}

TEST(Integration, TrainedAiSuiteDrivesAtmosphereStably) {
  // Swap the AI suite into the running atmosphere (the §5.2.1 deployment
  // path) and verify the model integrates stably with physical output.
  par::run(1, [](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = 5;
    config.nlev = 8;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::AtmModel model(comm, config, mesh);

    atm::ConventionalPhysics conventional;
    const atm::TrainingData data = atm::generate_training_data(
        conventional, 16, 4, static_cast<std::size_t>(config.nlev), 11,
        config.model_dt_seconds());
    ai::SuiteConfig suite_config;
    suite_config.levels = config.nlev;
    suite_config.cnn_hidden = 8;
    suite_config.mlp_hidden = 16;
    const atm::TrainedSuite trained =
        atm::train_ai_physics(data, suite_config, 6, 3e-3f);
    model.set_physics(std::make_unique<atm::AiPhysics>(trained.suite));
    EXPECT_STREQ(model.physics().name(), "ai");

    model.run(0.0, 3 * config.model_dt_seconds());
    const auto& state = model.dycore().state();
    for (std::size_t c = 0; c < model.dycore().mesh().num_owned(); ++c) {
      for (std::size_t k = 0; k < state.nlev; ++k) {
        EXPECT_TRUE(std::isfinite(state.temp[state.tq(c, k)]));
        EXPECT_GT(state.temp[state.tq(c, k)], 120.0);
        EXPECT_LT(state.temp[state.tq(c, k)], 400.0);
        EXPECT_GE(state.q[state.tq(c, k)], 0.0);
      }
    }
  });
}

TEST(Integration, PerfModelUsesRealComponentConstants) {
  // The AI-physics flops in the perf workload must equal the real network's
  // flops (the model is fed by the implementation, not by magic numbers).
  const perf::AtmWorkload w = perf::AtmWorkload::paper(1.0);
  const ai::SuiteConfig paper = ai::SuiteConfig::paper_scale();
  const double expected = ai::TendencyCnn(paper).flops_per_column() +
                          ai::RadiationMlp(paper).flops_per_column();
  EXPECT_DOUBLE_EQ(w.ai_physics_flops, expected);
}

TEST(Integration, CoupledTimersObserveComponentRatio) {
  // The atmosphere does far more work per window than the ice; wall-clock
  // observation through the whole stack should reflect it. Measured with the
  // observability layer's RAII span (the TimerRegistry start/stop migration).
  par::run(1, [](par::Comm& comm) {
    cpl::CoupledModel model(comm, tiny_config());
    const std::size_t mark = obs::local().event_count();
    {
      AP3_SPAN("cpl:total");
      model.run_windows(5);
    }
    double total = 0.0;
    for (const auto& agg : obs::local().aggregate_spans(mark)) {
      if (agg.name == "cpl:total") total = agg.total_seconds;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_EQ(model.windows_run(), 5);
  });
}

TEST(Integration, ConcurrentLayoutSurvivesTyphoonPipeline) {
  par::run(4, [](par::Comm& comm) {
    cpl::CoupledConfig config = tiny_config();
    config.layout = cpl::Layout::kConcurrent;
    config.atm_ranks = 2;
    cpl::CoupledModel model(comm, config);
    model.seed_typhoon(atm::VortexSpec{});
    model.run_windows(6);
    const atm::VortexFix fix = model.track_typhoon(130.0, 15.0, 2500.0);
    // Every rank gets the identical broadcast fix.
    const double check = comm.allreduce_value(fix.lon_deg, par::ReduceOp::kMax) -
                         comm.allreduce_value(fix.lon_deg, par::ReduceOp::kMin);
    EXPECT_EQ(check, 0.0);
  });
}

}  // namespace
