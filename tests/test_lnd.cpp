// Tests for the bucket-hydrology land surface model.
#include <gtest/gtest.h>

#include "lnd/land.hpp"

namespace {

using namespace ap3::lnd;

TEST(Land, WarmsUnderStrongSun) {
  LandModel land(1);
  LandForcing forcing;
  forcing.gsw = 800.0;
  forcing.glw = 350.0;
  forcing.t_air = 288.0;
  const double before = land.tskin(0);
  for (int i = 0; i < 50; ++i) land.step_cell(0, 600.0, forcing);
  EXPECT_GT(land.tskin(0), before);
}

TEST(Land, CoolsAtNight) {
  LandModel land(1);
  LandForcing forcing;
  forcing.gsw = 0.0;
  forcing.glw = 250.0;  // weak downwelling
  forcing.t_air = 270.0;
  const double before = land.tskin(0);
  for (int i = 0; i < 50; ++i) land.step_cell(0, 600.0, forcing);
  EXPECT_LT(land.tskin(0), before);
}

TEST(Land, ReachesRadiativeEquilibrium) {
  LandModel land(1);
  LandForcing forcing;
  forcing.gsw = 400.0;
  forcing.glw = 330.0;
  forcing.t_air = 290.0;
  double prev = 0.0;
  for (int i = 0; i < 4000; ++i) prev = land.step_cell(0, 900.0, forcing).tskin;
  const double next = land.step_cell(0, 900.0, forcing).tskin;
  EXPECT_NEAR(next, prev, 1e-3);        // converged
  EXPECT_GT(next, 270.0);
  EXPECT_LT(next, 330.0);               // physically plausible
}

TEST(Land, PrecipitationFillsBucketAndRunsOff) {
  LandModel land(1);
  LandForcing rain;
  rain.gsw = 0.0;
  rain.glw = 300.0;
  rain.t_air = 285.0;
  rain.precip = 1e-3;  // heavy rain [kg/m²/s]
  for (int i = 0; i < 500; ++i) land.step_cell(0, 600.0, rain);
  // Bucket saturates near its depth; runoff caps it.
  EXPECT_GT(land.soil_water(0), 0.14);
  EXPECT_LT(land.soil_water(0), 0.25);
}

TEST(Land, EvaporationNeedsWaterAndEnergy) {
  LandModel land(2);
  LandForcing sunny_wet;
  sunny_wet.gsw = 600.0;
  sunny_wet.glw = 320.0;
  sunny_wet.t_air = 295.0;
  // Cell 1: dry it out first.
  LandForcing dry = sunny_wet;
  for (int i = 0; i < 20000; ++i) land.step_cell(1, 3600.0, dry);
  const LandResponse wet_response = land.step_cell(0, 600.0, sunny_wet);
  const LandResponse dry_response = land.step_cell(1, 600.0, sunny_wet);
  EXPECT_GT(wet_response.evaporation, 0.0);
  EXPECT_LT(dry_response.evaporation, wet_response.evaporation);
  // No energy, no evaporation.
  LandForcing night = sunny_wet;
  night.gsw = 0.0;
  EXPECT_EQ(land.step_cell(0, 600.0, night).evaporation, 0.0);
}

TEST(Land, SkinTemperatureBounded) {
  LandModel land(1);
  LandForcing extreme;
  extreme.gsw = 1400.0;
  extreme.glw = 500.0;
  extreme.t_air = 330.0;
  for (int i = 0; i < 5000; ++i) land.step_cell(0, 3600.0, extreme);
  EXPECT_LE(land.tskin(0), 340.0);
}

TEST(Land, WaterNeverNegative) {
  LandModel land(1);
  LandForcing scorching;
  scorching.gsw = 1000.0;
  scorching.glw = 400.0;
  scorching.t_air = 310.0;
  for (int i = 0; i < 10000; ++i) land.step_cell(0, 3600.0, scorching);
  EXPECT_GE(land.soil_water(0), 0.0);
}

}  // namespace
