// Router — MCT's M×N communication table (§5.2.4).
//
// Given a source decomposition (GSMap over M processes) and a destination
// decomposition (GSMap over N processes), the Router records, for one rank,
// which local source points go to which destination pe and which local
// destination slots are filled from which source pe. The paper found that
// building these tables at init exceeds a Sunway core group's memory, so the
// build is also available as an offline preprocessing step producing a
// per-rank binary file loaded at init.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mct/gsmap.hpp"

namespace ap3::mct {

class Router {
 public:
  Router() = default;

  /// Builds the router for `rank` from globally replicated GSMaps. Pure
  /// computation — callable online (at init) or offline (preprocessing).
  static Router build(int rank, const GlobalSegMap& src,
                      const GlobalSegMap& dst);

  /// Peers this rank sends to, with the local source indices per peer
  /// (ordered by local source index — the wire order).
  const std::map<int, std::vector<std::int64_t>>& send_plan() const {
    return send_plan_;
  }
  /// Peers this rank receives from, with the local destination indices in
  /// the sender's wire order.
  const std::map<int, std::vector<std::int64_t>>& recv_plan() const {
    return recv_plan_;
  }

  int rank() const { return rank_; }
  std::int64_t points_sent() const;
  std::int64_t points_received() const;

  // --- offline precompute -----------------------------------------------
  std::vector<std::uint8_t> serialize() const;
  static Router deserialize(const std::vector<std::uint8_t>& blob);
  void save(const std::string& path) const;
  static Router load(const std::string& path);

  bool operator==(const Router& other) const {
    return rank_ == other.rank_ && send_plan_ == other.send_plan_ &&
           recv_plan_ == other.recv_plan_;
  }

 private:
  int rank_ = 0;
  std::map<int, std::vector<std::int64_t>> send_plan_;
  std::map<int, std::vector<std::int64_t>> recv_plan_;
};

}  // namespace ap3::mct
