#include "precision/group_scaled.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "base/error.hpp"

namespace ap3::precision {

std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // also +0 vs -0
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  // Map the sign-magnitude bit pattern onto a monotone integer line so that
  // adjacent doubles differ by exactly 1.
  auto ordered = [](double x) {
    const auto bits = std::bit_cast<std::uint64_t>(x);
    return (bits & 0x8000000000000000ULL) ? ~bits
                                          : bits | 0x8000000000000000ULL;
  };
  const std::uint64_t ua = ordered(a);
  const std::uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

GroupScaledArray GroupScaledArray::compress(std::span<const double> values,
                                            std::size_t group_size) {
  AP3_REQUIRE_MSG(group_size >= 1, "group size must be positive");
  GroupScaledArray out;
  out.size_ = values.size();
  out.group_size_ = group_size;
  const std::size_t ngroups = (values.size() + group_size - 1) / group_size;
  out.payload_.resize(values.size());
  out.scales_.resize(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t lo = g * group_size;
    const std::size_t hi = std::min(values.size(), lo + group_size);
    double max_abs = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      max_abs = std::max(max_abs, std::abs(values[i]));
    // Power-of-two scale keeps the scaling itself exact.
    const double scale = max_abs > 0.0 ? std::exp2(std::ceil(std::log2(max_abs)))
                                       : 1.0;
    out.scales_[g] = scale;
    for (std::size_t i = lo; i < hi; ++i)
      out.payload_[i] = static_cast<float>(values[i] / scale);
  }
  return out;
}

GroupScaledArray GroupScaledArray::compress_floats(
    std::span<const float> values, std::size_t group_size) {
  AP3_REQUIRE_MSG(group_size >= 1, "group size must be positive");
  GroupScaledArray out;
  out.size_ = values.size();
  out.group_size_ = group_size;
  const std::size_t ngroups = (values.size() + group_size - 1) / group_size;
  out.payload_.resize(values.size());
  out.scales_.resize(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::size_t lo = g * group_size;
    const std::size_t hi = std::min(values.size(), lo + group_size);
    double max_abs = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      max_abs = std::max(max_abs, std::abs(static_cast<double>(values[i])));
    const double scale =
        max_abs > 0.0 ? std::exp2(std::ceil(std::log2(max_abs))) : 1.0;
    out.scales_[g] = scale;
    // Dividing a float by a power of two is exact (exponent shift), so the
    // FP32 payload carries the full input mantissa.
    for (std::size_t i = lo; i < hi; ++i)
      out.payload_[i] = static_cast<float>(static_cast<double>(values[i]) / scale);
  }
  return out;
}

GroupScaledArray GroupScaledArray::from_raw(std::size_t size,
                                            std::size_t group_size,
                                            std::vector<float> payload,
                                            std::vector<double> scales) {
  AP3_REQUIRE_MSG(group_size >= 1, "group size must be positive");
  AP3_REQUIRE_MSG(payload.size() == size,
                  "group-scaled payload has " << payload.size()
                                              << " floats, expected " << size);
  const std::size_t ngroups = (size + group_size - 1) / group_size;
  AP3_REQUIRE_MSG(scales.size() == ngroups,
                  "group-scaled scales hold " << scales.size()
                                              << " groups, expected "
                                              << ngroups);
  GroupScaledArray out;
  out.size_ = size;
  out.group_size_ = group_size;
  out.payload_ = std::move(payload);
  out.scales_ = std::move(scales);
  return out;
}

void GroupScaledArray::decompress_floats(std::span<float> out) const {
  AP3_REQUIRE(out.size() == size_);
  for (std::size_t i = 0; i < size_; ++i)
    out[i] = static_cast<float>(static_cast<double>(payload_[i]) *
                                scales_[i / group_size_]);
}

void GroupScaledArray::decompress(std::span<double> out) const {
  AP3_REQUIRE(out.size() == size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = at(i);
}

double GroupScaledArray::at(std::size_t i) const {
  AP3_REQUIRE(i < size_);
  return static_cast<double>(payload_[i]) * scales_[i / group_size_];
}

void round_through_mixed(std::span<double> values, std::size_t group_size) {
  const GroupScaledArray packed =
      GroupScaledArray::compress({values.data(), values.size()}, group_size);
  packed.decompress(values);
}

double max_relative_roundtrip_error(std::span<const double> values,
                                    std::size_t group_size) {
  const GroupScaledArray packed = GroupScaledArray::compress(values, group_size);
  double max_rel = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == 0.0) continue;
    const double rel = std::abs(packed.at(i) - values[i]) / std::abs(values[i]);
    max_rel = std::max(max_rel, rel);
  }
  return max_rel;
}

}  // namespace ap3::precision
