// Component workload descriptors at the paper's resolutions (§6.1/Table 1).
//
// A workload captures, per simulated day, how much arithmetic and memory
// traffic each grid point generates in each sub-cycle (dycore / tracer /
// physics for the atmosphere; barotropic / baroclinic / tracer for the
// ocean) and how much halo data a subdomain boundary moves. Flop densities
// are anchored to per-point costs of this repository's own kernels, scaled
// to the paper's full physics (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>

namespace ap3::perf {

struct AtmWorkload {
  double resolution_km = 1.0;
  std::int64_t cells = 0;       ///< horizontal cells (Table 1)
  int nlev = 30;
  // §6.1: fixed 8 s / 30 s / 120 s steps at every resolution.
  double dycore_steps_per_day = 86400.0 / 8.0;
  double tracer_steps_per_day = 86400.0 / 30.0;
  double physics_steps_per_day = 86400.0 / 120.0;
  // Flops per cell-level per step (calibrated: full nonhydrostatic dycore).
  double dycore_flops = 950.0;
  double tracer_flops = 260.0;
  // Conventional suite: scalar flops per column per physics step (full
  // radiation + microphysics + PBL, dominated by radiative transfer).
  double conventional_physics_flops = 9.0e6;
  // AI suite: tensor flops per column (from the actual network shapes).
  double ai_physics_flops = 0.0;
  bool ai_physics = true;
  // Bytes touched per cell-level per dycore step (state + fluxes).
  double bytes_per_cell_level = 160.0;
  // Halo width in cells and bytes per boundary cell-level per exchange.
  double halo_bytes_per_cell_level = 48.0;

  static AtmWorkload paper(double resolution_km, bool ai_physics = true);
  double total_points() const {
    return static_cast<double>(cells) * nlev;
  }
};

struct OcnWorkload {
  double resolution_km = 1.0;
  std::int64_t nx = 0, ny = 0;
  int nz = 80;
  // §6.1: 2 s / 20 s / 20 s at every resolution.
  double barotropic_steps_per_day = 86400.0 / 2.0;
  double baroclinic_steps_per_day = 86400.0 / 20.0;
  double tracer_steps_per_day = 86400.0 / 20.0;
  double barotropic_flops = 140.0;   ///< per surface point per step
  double baroclinic_flops = 420.0;   ///< per 3-D point per step
  double tracer_flops = 380.0;       ///< per 3-D point per step
  double bytes_per_point = 70.0;   // after LDM double-buffered tile reuse
  double halo_bytes_per_point = 56.0;
  /// Fraction of 3-D points that are ocean (§5.2.2 exclusion keeps ~0.70;
  /// the unoptimized code computes all of them).
  double active_fraction = 0.70;
  bool exclude_non_ocean = true;

  static OcnWorkload paper(double resolution_km, bool exclude = true);
  double horizontal_points() const {
    return static_cast<double>(nx) * static_cast<double>(ny);
  }
  double total_points() const { return horizontal_points() * nz; }
  double computed_points() const {
    return total_points() * (exclude_non_ocean ? active_fraction : 1.0);
  }
};

}  // namespace ap3::perf
