// Regenerates the Fig. 1 quantities as statistics (the paper shows global
// snapshots; without a plotting stack we report the field distributions the
// colorbars encode):
//   (a) precipitation from the coupled model and sea-surface kinetic energy,
//   (b) a total-cloud-fraction proxy from the atmosphere-only run,
//   (c) sea-surface velocity magnitude from the ocean-only run
//       (log-distributed, like the figure's logarithmic colorbars).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/constants.hpp"
#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
};

Percentiles percentiles(std::vector<double> values) {
  Percentiles out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.p50 = values[values.size() / 2];
  out.p90 = values[values.size() * 9 / 10];
  out.p99 = values[values.size() * 99 / 100];
  out.max = values.back();
  return out;
}

}  // namespace

int main() {
  std::printf("Fig. 1 — simulated field statistics (coupled mini-AP3ESM)\n");
  std::printf("==========================================================\n\n");

  static Percentiles precip, ke, cloud;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledConfig config;
    config.atm.mesh_n = 8;
    config.atm.nlev = 8;
    config.ocn.grid = grid::TripolarConfig{64, 48, 8};
    cpl::CoupledModel model(comm, config);
    // A tropical cyclone provides the active weather of the 25 July 2023
    // snapshot.
    atm::VortexSpec spec;
    spec.lon_deg = 128.0;
    spec.lat_deg = 17.0;
    spec.max_wind_ms = 40.0;
    model.seed_typhoon(spec);
    model.run_windows(6);

    // (a) precipitation over atmosphere cells + surface KE over ocean.
    std::vector<double> local_precip, local_cloudq, local_ke;
    if (model.has_atm()) {
      auto* atm_model = &model.atm();
      const auto& state = atm_model->dycore().state();
      for (std::size_t c = 0; c < atm_model->dycore().mesh().num_owned();
           ++c) {
        // Column humidity as the total-cloud-fraction proxy (what the
        // conventional radiation uses).
        double column_q = 0.0;
        for (std::size_t k = 0; k < state.nlev; ++k)
          column_q += state.q[state.tq(c, k)];
        local_cloudq.push_back(
            std::min(1.0, 80.0 * column_q / static_cast<double>(state.nlev)));
      }
      mct::AttrVect a2x(atm::AtmModel::export_fields(),
                        atm_model->dycore().mesh().num_owned());
      atm_model->export_state(a2x);
      const auto precip_field = a2x.field("precip");
      local_precip.assign(precip_field.begin(), precip_field.end());
    }
    if (model.has_ocn()) local_ke = model.ocn().surface_kinetic_energy();

    // Gather to rank 0 (small toy fields).
    const auto all_precip = comm.allgatherv(
        std::span<const double>(local_precip), nullptr);
    const auto all_cloud =
        comm.allgatherv(std::span<const double>(local_cloudq), nullptr);
    const auto all_ke =
        comm.allgatherv(std::span<const double>(local_ke), nullptr);
    if (comm.rank() == 0) {
      precip = percentiles(all_precip);
      cloud = percentiles(all_cloud);
      ke = percentiles(all_ke);
    }
  });

  std::printf("  field                              p50        p90        "
              "p99        max\n");
  std::printf("  precipitation [kg/m2/s]      %9.2e  %9.2e  %9.2e  %9.2e\n",
              precip.p50, precip.p90, precip.p99, precip.max);
  std::printf("  cloud-fraction proxy [0-1]   %9.3f  %9.3f  %9.3f  %9.3f\n",
              cloud.p50, cloud.p90, cloud.p99, cloud.max);
  std::printf("  surface KE [m2/s2]           %9.2e  %9.2e  %9.2e  %9.2e\n",
              ke.p50, ke.p90, ke.p99, ke.max);

  const bool log_distributed = ke.max > 10.0 * ke.p50 && ke.p50 >= 0.0;
  std::printf("\n  KE spans %s orders of magnitude (the figure uses a "
              "logarithmic colorbar): %s\n",
              log_distributed ? ">1" : "<1", log_distributed ? "yes" : "no");
  std::printf("  heaviest precipitation collocates with the seeded typhoon "
              "(Fig. 1a's orange box).\n");
  return 0;
}
