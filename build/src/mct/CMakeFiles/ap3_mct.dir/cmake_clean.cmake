file(REMOVE_RECURSE
  "CMakeFiles/ap3_mct.dir/attrvect.cpp.o"
  "CMakeFiles/ap3_mct.dir/attrvect.cpp.o.d"
  "CMakeFiles/ap3_mct.dir/gsmap.cpp.o"
  "CMakeFiles/ap3_mct.dir/gsmap.cpp.o.d"
  "CMakeFiles/ap3_mct.dir/rearranger.cpp.o"
  "CMakeFiles/ap3_mct.dir/rearranger.cpp.o.d"
  "CMakeFiles/ap3_mct.dir/router.cpp.o"
  "CMakeFiles/ap3_mct.dir/router.cpp.o.d"
  "CMakeFiles/ap3_mct.dir/sparsematrix.cpp.o"
  "CMakeFiles/ap3_mct.dir/sparsematrix.cpp.o.d"
  "libap3_mct.a"
  "libap3_mct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_mct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
