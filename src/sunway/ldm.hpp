// Local Data Memory (LDM) allocator for one simulated CPE.
//
// Each SW26010P CPE owns a 256 KiB scratchpad; kernels stage tiles in and
// out with DMA. The simulator enforces the capacity so a kernel whose working
// set would not fit on real hardware fails loudly here too — this is what
// forced the tiled formulations in LICOMK++.
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.hpp"

namespace ap3::sunway {

class LdmOverflow : public ap3::Error {
 public:
  explicit LdmOverflow(const std::string& what) : Error(what) {}
};

/// Bump allocator over a fixed-size scratchpad. Frees are LIFO (stack
/// discipline), matching how athread kernels actually use LDM.
class LdmAllocator {
 public:
  explicit LdmAllocator(std::size_t capacity_bytes);

  /// Allocate `bytes` (8-byte aligned); throws LdmOverflow if it won't fit.
  void* alloc(std::size_t bytes);

  /// Typed convenience allocation.
  template <typename T>
  T* alloc_array(std::size_t count) {
    return static_cast<T*>(alloc(count * sizeof(T)));
  }

  /// Pop the most recent allocation (stack discipline enforced).
  void free_last(void* ptr);

  void reset();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t peak() const { return peak_; }
  std::size_t available() const { return capacity_ - used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::byte> storage_;
  std::vector<std::pair<void*, std::size_t>> stack_;
};

}  // namespace ap3::sunway
