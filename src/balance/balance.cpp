#include "balance/balance.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "mct/router.hpp"
#include "obs/obs.hpp"

namespace ap3::balance {

double MeasuredCost::max_seconds() const {
  double m = 0.0;
  for (const double s : per_rank_seconds) m = std::max(m, s);
  return m;
}

double MeasuredCost::mean_seconds() const {
  if (per_rank_seconds.empty()) return 0.0;
  double total = 0.0;
  for (const double s : per_rank_seconds) total += s;
  return total / static_cast<double>(per_rank_seconds.size());
}

double MeasuredCost::imbalance() const {
  const double mean = mean_seconds();
  return mean > 0.0 ? max_seconds() / mean : 1.0;
}

MeasuredCost measured_phase_cost(const par::Comm& comm,
                                 std::string_view span_name,
                                 std::size_t first_event,
                                 double extra_local_seconds) {
  double local = extra_local_seconds;
  for (const obs::SpanStats& s : obs::local().aggregate_spans(first_event)) {
    if (s.name == span_name) {
      local += s.total_seconds;
      break;
    }
  }
  MeasuredCost cost;
  cost.per_rank_seconds =
      comm.allgather(std::span<const double>(&local, 1));
  return cost;
}

namespace {

// Attributed per-cell cost: each old owner's measured seconds spread over its
// block's weight. A rank whose block carries no weight contributes no
// attributable cost (its time is fixed overhead).
std::vector<double> attributed_cell_cost(
    std::span<const double> cell_weight, int nx, int ny,
    const grid::BlockPartition2D& old_partition, const MeasuredCost& cost) {
  const int nranks = old_partition.nranks();
  std::vector<double> block_weight(static_cast<std::size_t>(nranks), 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      block_weight[static_cast<std::size_t>(old_partition.owner(i, j))] +=
          cell_weight[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
                      static_cast<std::size_t>(i)];
  std::vector<double> rate(static_cast<std::size_t>(nranks), 0.0);
  for (int r = 0; r < nranks; ++r)
    if (block_weight[static_cast<std::size_t>(r)] > 0.0)
      rate[static_cast<std::size_t>(r)] =
          cost.per_rank_seconds[static_cast<std::size_t>(r)] /
          block_weight[static_cast<std::size_t>(r)];
  std::vector<double> attributed(cell_weight.size(), 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const std::size_t cell =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
          static_cast<std::size_t>(i);
      attributed[cell] =
          cell_weight[cell] *
          rate[static_cast<std::size_t>(old_partition.owner(i, j))];
    }
  return attributed;
}

// Per-rank seconds of running `cuts` under attributed per-cell costs, plus
// the GhostModel surcharge for each block's ghost ring.
std::vector<double> rank_seconds_for_cuts(const std::vector<double>& attributed,
                                          std::span<const double> cell_weight,
                                          int nx, int ny,
                                          const grid::BlockCuts& cuts,
                                          const GhostModel& ghosts) {
  const grid::BlockPartition2D next(nx, ny, cuts);
  std::vector<double> load(static_cast<std::size_t>(next.nranks()), 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      load[static_cast<std::size_t>(next.owner(i, j))] +=
          attributed[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
                     static_cast<std::size_t>(i)];
  if (ghosts.halo_width > 0) {
    double active_cost = 0.0;
    std::int64_t active_cells = 0;
    for (std::size_t cell = 0; cell < attributed.size(); ++cell)
      if (cell_weight[cell] > 0.0) {
        active_cost += attributed[cell];
        ++active_cells;
      }
    const double per_ghost_cell =
        active_cells > 0
            ? ghosts.cell_cost_factor * active_cost /
                  static_cast<double>(active_cells)
            : 0.0;
    if (per_ghost_cell > 0.0)
      for (int r = 0; r < next.nranks(); ++r) {
        const grid::Range1D xr = next.x_range(r);
        const grid::Range1D yr = next.y_range(r);
        load[static_cast<std::size_t>(r)] +=
            per_ghost_cell *
            static_cast<double>(ghost_cell_count(xr.size(), yr.size(),
                                                 ghosts.halo_width, yr.begin));
      }
  }
  return load;
}

}  // namespace

std::int64_t ghost_cell_count(std::int64_t block_w, std::int64_t block_h,
                              int width, std::int64_t y0) {
  if (width <= 0 || block_w <= 0 || block_h <= 0) return 0;
  const auto w = static_cast<std::int64_t>(width);
  // East + west periodic strips, the folded (always open) north edge, and a
  // south edge clipped by the closed boundary at row 0. Corners are not
  // exchanged (see grid::BlockHalo).
  return 2 * w * block_h + w * block_w +
         std::min<std::int64_t>(w, y0) * block_w;
}

std::vector<double> predicted_rank_seconds(
    std::span<const double> cell_weight, int nx, int ny,
    const grid::BlockPartition2D& old_partition, const MeasuredCost& cost,
    const grid::BlockCuts& cuts, const GhostModel& ghosts) {
  AP3_REQUIRE(cell_weight.size() ==
              static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  AP3_REQUIRE(cost.per_rank_seconds.size() ==
              static_cast<std::size_t>(old_partition.nranks()));
  const std::vector<double> attributed =
      attributed_cell_cost(cell_weight, nx, ny, old_partition, cost);
  return rank_seconds_for_cuts(attributed, cell_weight, nx, ny, cuts, ghosts);
}

CutPlan plan_rebalance(std::span<const double> cell_weight, int nx, int ny,
                       const grid::BlockPartition2D& old_partition,
                       const MeasuredCost& cost, const GhostModel& ghosts) {
  const int nranks = old_partition.nranks();
  AP3_REQUIRE(cell_weight.size() ==
              static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  AP3_REQUIRE(cost.per_rank_seconds.size() == static_cast<std::size_t>(nranks));

  const std::vector<double> attributed =
      attributed_cell_cost(cell_weight, nx, ny, old_partition, cost);

  // Marginals of the attributed cost: a tensor-product cut cannot follow
  // arbitrary 2-D structure, but balancing both marginals captures
  // band-shaped skew (the common case: latitude bands of sea ice, longitude
  // bands of straggling nodes).
  std::vector<double> wx(static_cast<std::size_t>(nx), 0.0);
  std::vector<double> wy(static_cast<std::size_t>(ny), 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const double c =
          attributed[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
                     static_cast<std::size_t>(i)];
      wx[static_cast<std::size_t>(i)] += c;
      wy[static_cast<std::size_t>(j)] += c;
    }

  grid::BlockCuts greedy;
  greedy.x = grid::weighted_cuts(wx, old_partition.px(), /*nonempty=*/true);
  greedy.y = grid::weighted_cuts(wy, old_partition.py(), /*nonempty=*/true);

  // Candidate set. Ghost-blind (halo_width == 0) keeps the legacy behaviour:
  // the greedy marginal re-cut, unconditionally. Ghost-aware scoring also
  // considers keeping the old cuts (migration-free) and the per-axis mixes,
  // because a marginal-optimal cut can buy its balance with thin tall blocks
  // whose ghost rings cost more than the imbalance they cure. The greedy
  // plan is always candidate 0 and ties keep the earliest candidate, so the
  // chosen plan's ghost-aware cost is never worse than the ghost-blind
  // planner's choice (monotonicity by construction).
  std::vector<grid::BlockCuts> candidates;
  candidates.push_back(greedy);
  if (ghosts.halo_width > 0) {
    const grid::BlockCuts& old_cuts = old_partition.cuts();
    for (const grid::BlockCuts& c :
         {old_cuts, grid::BlockCuts{greedy.x, old_cuts.y},
          grid::BlockCuts{old_cuts.x, greedy.y}}) {
      bool seen = false;
      for (const grid::BlockCuts& have : candidates) seen = seen || have == c;
      if (!seen) candidates.push_back(c);
    }
  }

  CutPlan plan;
  plan.current_max_seconds = cost.max_seconds();
  double best_max = 0.0;
  bool have_best = false;
  for (const grid::BlockCuts& c : candidates) {
    const std::vector<double> load =
        rank_seconds_for_cuts(attributed, cell_weight, nx, ny, c, ghosts);
    double cand_max = 0.0;
    for (const double s : load) cand_max = std::max(cand_max, s);
    if (!have_best || cand_max < best_max) {
      have_best = true;
      best_max = cand_max;
      plan.cuts = c;
      plan.predicted_max_seconds = cand_max;
    }
  }

  const grid::BlockPartition2D next(nx, ny, plan.cuts);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const std::size_t cell =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
          static_cast<std::size_t>(i);
      const auto w = static_cast<std::int64_t>(cell_weight[cell]);
      plan.total_weight += w;
      if (next.owner(i, j) != old_partition.owner(i, j)) plan.moved_weight += w;
    }
  return plan;
}

LoadBalancer::LoadBalancer(std::string name, RebalancePolicy policy,
                           perf::MachineKind machine)
    : name_(std::move(name)), policy_(policy), net_(machine) {}

Decision LoadBalancer::consider(std::span<const double> cell_weight, int nx,
                                int ny,
                                const grid::BlockPartition2D& old_partition,
                                const MeasuredCost& cost,
                                double bytes_per_weight_unit) {
  const std::string prefix = "balance:" + name_ + ":";
  obs::counter_add(prefix + "considered", 1.0);

  Decision d;
  d.imbalance = cost.imbalance();
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    d.reason = "cooldown";
    obs::counter_add(prefix + "skipped_cooldown", 1.0);
    return d;
  }
  if (cost.mean_seconds() < policy_.min_phase_seconds) {
    d.reason = "negligible";
    obs::counter_add(prefix + "skipped_negligible", 1.0);
    return d;
  }
  if (d.imbalance < policy_.imbalance_enter) {
    d.reason = "balanced";
    obs::counter_add(prefix + "skipped_balanced", 1.0);
    return d;
  }

  d.plan = plan_rebalance(cell_weight, nx, ny, old_partition, cost, ghosts_);
  if (d.plan.cuts == old_partition.cuts()) {
    d.reason = "no_change";
    obs::counter_add(prefix + "skipped_no_change", 1.0);
    return d;
  }
  const double savings_per_window =
      d.plan.current_max_seconds - d.plan.predicted_max_seconds;
  if (savings_per_window <=
      d.plan.current_max_seconds * policy_.min_improvement) {
    d.reason = "no_gain";
    obs::counter_add(prefix + "skipped_gain", 1.0);
    return d;
  }
  d.predicted_savings_seconds = savings_per_window * policy_.amortize_windows;

  // Migration cost: every moved weight unit crosses the network once, spread
  // across the ranks, plus one small collective to agree on the plan. With a
  // supernode-aware rank mapping a fraction of the moves stays on the fast
  // intra-supernode path (see set_block_topology); without one everything is
  // charged at the oversubscribed inter-supernode rate.
  const int nranks = old_partition.nranks();
  const double moved_bytes =
      static_cast<double>(d.plan.moved_weight) * bytes_per_weight_unit;
  const double per_rank_bytes = moved_bytes / std::max(1, nranks);
  const double f = intra_migration_fraction_;
  double wire_seconds = 2.0 * net_.p2p_seconds((1.0 - f) * per_rank_bytes,
                                               /*same_supernode=*/false);
  if (f > 0.0)
    wire_seconds +=
        2.0 * net_.p2p_seconds(f * per_rank_bytes, /*same_supernode=*/true);
  d.migration_cost_seconds =
      wire_seconds + net_.allreduce_seconds(8.0, nranks);
  if (!policy_.ignore_migration_cost &&
      d.predicted_savings_seconds <= d.migration_cost_seconds) {
    d.reason = "migration_cost";
    obs::counter_add(prefix + "skipped_cost", 1.0);
    return d;
  }

  d.migrate = true;
  d.reason = "migrate";
  cooldown_remaining_ = policy_.cooldown;
  obs::counter_add(prefix + "migrations", 1.0);
  return d;
}

Decision LoadBalancer::assess(const MeasuredCost& cost) {
  const std::string prefix = "balance:" + name_ + ":";
  obs::counter_add(prefix + "considered", 1.0);

  Decision d;
  d.imbalance = cost.imbalance();
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    d.reason = "cooldown";
    obs::counter_add(prefix + "skipped_cooldown", 1.0);
    return d;
  }
  if (cost.mean_seconds() < policy_.min_phase_seconds) {
    d.reason = "negligible";
    obs::counter_add(prefix + "skipped_negligible", 1.0);
    return d;
  }
  if (d.imbalance < policy_.imbalance_enter) {
    d.reason = "balanced";
    obs::counter_add(prefix + "skipped_balanced", 1.0);
    return d;
  }
  // The imbalance is real but this participant has no block decomposition to
  // re-cut: record it and move on. The obs counter is the observable a
  // deployment would alarm on (the fix is resourcing, not migration).
  d.reason = "immovable";
  obs::counter_add(prefix + "skipped_immovable", 1.0);
  return d;
}

void LoadBalancer::set_intra_migration_fraction(double fraction) {
  AP3_REQUIRE_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "intra-migration fraction " << fraction
                                              << " outside [0, 1]");
  intra_migration_fraction_ = fraction;
}

ColumnMigrator::ColumnMigrator(const par::Comm& comm,
                               const std::vector<std::int64_t>& old_gids,
                               const std::vector<std::int64_t>& new_gids)
    : rearranger_(comm, mct::Router::build(
                            comm.rank(), mct::GlobalSegMap::build(comm, old_gids),
                            mct::GlobalSegMap::build(comm, new_gids))) {
  for (const auto& [peer, indices] : rearranger_.router().send_plan())
    if (peer != comm.rank())
      columns_moved_offrank_ += static_cast<std::int64_t>(indices.size());
}

void ColumnMigrator::migrate(const mct::AttrVect& src, mct::AttrVect& dst) const {
  rearranger_.rearrange(src, dst, mct::Strategy::kSplitPhase);
}

}  // namespace ap3::balance
