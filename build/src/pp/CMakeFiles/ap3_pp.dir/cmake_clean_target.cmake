file(REMOVE_RECURSE
  "libap3_pp.a"
)
