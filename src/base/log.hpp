// Minimal thread-safe leveled logger.
//
// The coupled model runs many simulated ranks as threads; log lines are
// serialized through one mutex and prefixed with level + logical timestamp.
#pragma once

#include <sstream>
#include <string>

namespace ap3::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global verbosity threshold; messages below it are dropped cheaply.
void set_level(Level level);
Level level();

void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace ap3::log
