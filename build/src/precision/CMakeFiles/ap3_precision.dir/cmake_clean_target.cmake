file(REMOVE_RECURSE
  "libap3_precision.a"
)
