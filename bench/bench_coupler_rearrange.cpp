// §5.2.4 benchmark: coupler optimizations.
//
//  (a) Rearrangement strategies: the original all-to-all collective vs the
//      optimized non-blocking point-to-point path, on a block->roundrobin
//      transpose of a multi-field AttrVect at several rank counts.
//  (b) Offline precompute: building the GSMap/Router tables online at init
//      vs serializing them offline and loading — the paper's fix for the
//      memory/time blowup on Sunway core groups.
//  (c) Topology-staged rearrangement: the flat alltoallv vs the hierarchical
//      (leader-staged) collective at an oversubscribed modeled rank count,
//      interleaved best-of-3, with per-level byte/message counts from the
//      par:coll obs counters, NetworkModel-priced modeled seconds, and an
//      FNV state-hash witness that hard-fails on any payload mismatch.
//      Results land in BENCH_rearrange.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "base/hash.hpp"
#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "mct/router.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "par/topology.hpp"
#include "perf/network.hpp"

namespace {

using namespace ap3;
using namespace ap3::mct;

double time_rearrange(int nranks, std::int64_t npoints, int nfields,
                      Strategy method, int repeats) {
  static double seconds;
  seconds = 0.0;
  par::run(nranks, [&](par::Comm& comm) {
    // Source: contiguous blocks. Destination: round-robin (worst-case
    // all-pairs transpose, like an atm->cpl regrid rearrangement).
    std::vector<std::vector<std::int64_t>> src_ids(
        static_cast<size_t>(nranks)),
        dst_ids(static_cast<size_t>(nranks));
    for (std::int64_t g = 0; g < npoints; ++g) {
      src_ids[static_cast<size_t>(g * nranks / npoints)].push_back(g);
      dst_ids[static_cast<size_t>(g % nranks)].push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);
    Rearranger rearranger(comm,
                          Router::build(comm.rank(), src_map, dst_map));

    std::vector<std::string> fields;
    for (int f = 0; f < nfields; ++f) fields.push_back("f" + std::to_string(f));
    AttrVect src(fields, src_ids[static_cast<size_t>(comm.rank())].size());
    AttrVect dst(fields, dst_ids[static_cast<size_t>(comm.rank())].size());
    for (std::size_t f = 0; f < src.num_fields(); ++f)
      for (std::size_t p = 0; p < src.num_points(); ++p)
        src.at(f, p) = static_cast<double>(f * 1000 + p);

    comm.barrier();
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) rearranger.rearrange(src, dst, method);
    comm.barrier();
    if (comm.rank() == 0)
      seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                repeats;
  });
  return seconds;
}

// One timed + instrumented pass of the block->roundrobin transpose on a
// topology-attached communicator. Returns wall seconds per rearrange, the
// rank-order FNV hash of the destination AttrVect, and the per-level traffic
// the par:coll counters recorded for the chosen wire algorithm.
struct HierRun {
  double seconds = 0.0;
  std::uint64_t hash = kFnvBasis;
  perf::LevelTraffic traffic;
};

HierRun run_hier_case(int nranks, int supernode_size, std::int64_t npoints,
                      int nfields, Strategy method, int repeats) {
  static HierRun result;
  result = HierRun{};
  obs::reset_all();
  const char* algo = method == Strategy::kLeaderStaged ? "hier" : "flat";
  par::run(nranks, [&](par::Comm& base) {
    auto topo = std::make_shared<par::Topology>(
        par::Topology::clustered(nranks, supernode_size));
    par::Comm comm = base.with_topology(topo);

    // Banded transpose: each source rank scatters to the five ranks within
    // ±2 of itself (the coupler's regrid rearrangement is sparse like this —
    // each rank overlaps a handful of peers). Under the flat collective the
    // dense counts exchange still involves every rank pair; the hierarchical
    // algorithm carries counts inside its combined per-supernode-pair
    // headers, so its inter-supernode bytes AND messages both drop.
    std::vector<std::vector<std::int64_t>> src_ids(
        static_cast<size_t>(nranks)),
        dst_ids(static_cast<size_t>(nranks));
    for (std::int64_t g = 0; g < npoints; ++g) {
      const std::int64_t s = g * nranks / npoints;
      src_ids[static_cast<size_t>(s)].push_back(g);
      dst_ids[static_cast<size_t>((s + g % 5 + nranks - 2) % nranks)]
          .push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);
    Rearranger rearranger(comm, Router::build(comm.rank(), src_map, dst_map));

    std::vector<std::string> fields;
    for (int f = 0; f < nfields; ++f) fields.push_back("f" + std::to_string(f));
    AttrVect src(fields, src_ids[static_cast<size_t>(comm.rank())].size());
    AttrVect dst(fields, dst_ids[static_cast<size_t>(comm.rank())].size());
    for (std::size_t f = 0; f < src.num_fields(); ++f)
      for (std::size_t p = 0; p < src.num_points(); ++p)
        src.at(f, p) = static_cast<double>(f * 1000 + p) * 1.000001;

    comm.barrier();
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) rearranger.rearrange(src, dst, method);
    comm.barrier();
    if (comm.rank() == 0)
      result.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count() /
                       repeats;

    // State-hash witness: fold every rank's destination payload in rank
    // order into one FNV digest (the payloads are identical across repeats).
    std::uint64_t local = kFnvBasis;
    for (std::size_t f = 0; f < dst.num_fields(); ++f)
      for (std::size_t p = 0; p < dst.num_points(); ++p)
        local = fnv1a_value(local, dst.at(f, p));
    const std::vector<std::uint64_t> digests =
        comm.allgather(std::span<const std::uint64_t>(&local, 1));
    if (comm.rank() == 0) {
      std::uint64_t h = kFnvBasis;
      for (const std::uint64_t d : digests) h = fnv1a_value(h, static_cast<std::int64_t>(d));
      result.hash = h;
    }
  });
  // Per-level traffic of the wire algorithm actually used (summed over the
  // alltoallv scope and its inner counts alltoall), per single rearrange.
  auto level = [&](const char* op, const char* op_algo, const char* lvl,
                   double& bytes, long long& msgs) {
    const std::string key =
        std::string(op) + '/' + op_algo + '/' + lvl;
    bytes += obs::total_counter("par:coll:bytes[" + key + ']') / repeats;
    msgs += static_cast<long long>(
        obs::total_counter("par:coll:messages[" + key + ']') / repeats);
  };
  level("alltoallv", algo, "intra", result.traffic.intra_bytes,
        result.traffic.intra_messages);
  level("alltoallv", algo, "inter", result.traffic.inter_bytes,
        result.traffic.inter_messages);
  // The flat wire path exchanges its counts via an inner flat alltoall.
  level("alltoall", "flat", "intra", result.traffic.intra_bytes,
        result.traffic.intra_messages);
  level("alltoall", "flat", "inter", result.traffic.inter_bytes,
        result.traffic.inter_messages);
  return result;
}

}  // namespace

int main() {
  std::printf("§5.2.4 — coupler rearrangement and offline router tables\n");
  std::printf("=========================================================\n\n");

  std::printf("(a) rearrangement: all-to-all vs non-blocking p2p\n");
  std::printf("    (block -> round-robin transpose, 8 fields)\n");
  std::printf("    ranks    points    alltoallv [us]   p2p [us]   ratio\n");
  for (int nranks : {4, 8, 16}) {
    const std::int64_t npoints = 20000;
    const double t_a2a = time_rearrange(nranks, npoints, 8,
                                        Strategy::kAlltoallv, 10);
    const double t_p2p = time_rearrange(nranks, npoints, 8,
                                        Strategy::kSplitPhase, 10);
    std::printf("    %5d  %8lld    %12.1f   %8.1f   %5.2f\n", nranks,
                static_cast<long long>(npoints), t_a2a * 1e6, t_p2p * 1e6,
                t_a2a / t_p2p);
  }

  std::printf("\n(b) router tables: online build vs offline load\n");
  std::printf("    points    build [ms]   save+load [ms]   load-only [ms]\n");
  for (std::int64_t npoints : {20000LL, 80000LL, 320000LL}) {
    // Two 16-rank decompositions: blocks vs stripes of 16.
    std::vector<std::vector<std::int64_t>> src_ids(16), dst_ids(16);
    for (std::int64_t g = 0; g < npoints; ++g) {
      src_ids[static_cast<size_t>(g * 16 / npoints)].push_back(g);
      dst_ids[static_cast<size_t>((g / 16) % 16)].push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);

    const auto t0 = std::chrono::steady_clock::now();
    const Router online = Router::build(0, src_map, dst_map);
    const auto t1 = std::chrono::steady_clock::now();
    const std::string path = "/tmp/ap3_bench_router.bin";
    online.save(path);
    const Router loaded = Router::load(path);
    const auto t2 = std::chrono::steady_clock::now();
    const Router loaded2 = Router::load(path);
    const auto t3 = std::chrono::steady_clock::now();
    std::remove(path.c_str());

    if (!(online == loaded) || !(online == loaded2)) {
      std::printf("    ROUTER MISMATCH\n");
      return 1;
    }
    std::printf("    %6lld   %10.2f   %14.2f   %14.2f\n",
                static_cast<long long>(npoints),
                std::chrono::duration<double>(t1 - t0).count() * 1e3,
                std::chrono::duration<double>(t2 - t1).count() * 1e3,
                std::chrono::duration<double>(t3 - t2).count() * 1e3);
  }
  std::printf("\n    at init time every rank loads its precomputed table "
              "instead of\n    building it — the §5.2.4 memory/time fix for "
              "Sunway core groups.\n");

  std::printf("\n(c) topology-staged rearrangement: flat vs leader-staged "
              "alltoallv\n");
  const int kHierRanks = 64;       // oversubscribed modeled rank count
  const int kSupernodeSize = 8;    // 8 modeled supernodes
  const std::int64_t kHierPoints = 20000;
  const int kHierFields = 8;
  const int kHierReps = 4;
  std::printf("    (%d ranks, supernode_size %d, %lld points, %d fields, "
              "banded +/-2 scatter,\n     interleaved best-of-3)\n",
              kHierRanks, kSupernodeSize,
              static_cast<long long>(kHierPoints), kHierFields);

  HierRun flat, hier;
  flat.seconds = hier.seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    // Interleave so ambient machine drift hits both algorithms equally.
    const HierRun f = run_hier_case(kHierRanks, kSupernodeSize, kHierPoints,
                                    kHierFields, Strategy::kAlltoallv,
                                    kHierReps);
    const HierRun h = run_hier_case(kHierRanks, kSupernodeSize, kHierPoints,
                                    kHierFields, Strategy::kLeaderStaged,
                                    kHierReps);
    if (f.seconds < flat.seconds) {
      const double best = f.seconds;
      flat = f;
      flat.seconds = best;
    }
    if (h.seconds < hier.seconds) {
      const double best = h.seconds;
      hier = h;
      hier.seconds = best;
    }
  }

  if (flat.hash != hier.hash) {
    std::fprintf(stderr,
                 "error: leader-staged rearrangement changed the payload "
                 "(%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(flat.hash),
                 static_cast<unsigned long long>(hier.hash));
    return 1;
  }

  const perf::NetworkModel net(perf::MachineKind::kSunwayOceanLight);
  const double modeled_flat = net.exchange_seconds(flat.traffic);
  const double modeled_hier = net.exchange_seconds(hier.traffic);
  const double speedup = flat.seconds / hier.seconds;

  std::printf("    algo   measured [us]   modeled [us]   inter bytes   "
              "inter msgs   intra msgs\n");
  std::printf("    flat   %13.1f   %12.1f   %11.0f   %10lld   %10lld\n",
              flat.seconds * 1e6, modeled_flat * 1e6,
              flat.traffic.inter_bytes, flat.traffic.inter_messages,
              flat.traffic.intra_messages);
  std::printf("    hier   %13.1f   %12.1f   %11.0f   %10lld   %10lld\n",
              hier.seconds * 1e6, modeled_hier * 1e6,
              hier.traffic.inter_bytes, hier.traffic.inter_messages,
              hier.traffic.intra_messages);
  std::printf("    measured speedup %.3fx, modeled %.3fx, inter-supernode "
              "messages %.1fx fewer\n",
              speedup, modeled_flat / modeled_hier,
              static_cast<double>(flat.traffic.inter_messages) /
                  static_cast<double>(std::max<long long>(
                      1, hier.traffic.inter_messages)));
  std::printf("    state hash %016llx (identical for both algorithms)\n",
              static_cast<unsigned long long>(flat.hash));

  FILE* json = std::fopen("BENCH_rearrange.json", "w");
  if (json != nullptr) {
    auto emit = [&](const char* name, const HierRun& r, double modeled,
                    const char* tail) {
      std::fprintf(json,
                   "    {\"algo\": \"%s\", \"measured_seconds\": %.6e, "
                   "\"modeled_seconds\": %.6e, "
                   "\"intra_bytes\": %.0f, \"inter_bytes\": %.0f, "
                   "\"intra_messages\": %lld, \"inter_messages\": %lld, "
                   "\"state_hash\": \"%016llx\"}%s\n",
                   name, r.seconds, modeled, r.traffic.intra_bytes,
                   r.traffic.inter_bytes, r.traffic.intra_messages,
                   r.traffic.inter_messages,
                   static_cast<unsigned long long>(r.hash), tail);
    };
    std::fprintf(json,
                 "{\n  \"ranks\": %d,\n  \"supernode_size\": %d,\n"
                 "  \"points\": %lld,\n  \"fields\": %d,\n  \"cases\": [\n",
                 kHierRanks, kSupernodeSize,
                 static_cast<long long>(kHierPoints), kHierFields);
    emit("flat", flat, modeled_flat, ",");
    emit("hier", hier, modeled_hier, "");
    std::fprintf(json,
                 "  ],\n  \"measured_speedup\": %.4f,\n"
                 "  \"modeled_speedup\": %.4f,\n"
                 "  \"hashes_equal\": %s\n}\n",
                 speedup, modeled_flat / modeled_hier,
                 flat.hash == hier.hash ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_rearrange.json\n");
  }
  return 0;
}
