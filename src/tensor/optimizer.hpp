// Adam optimizer for the AI physics suite trainer.
#pragma once

#include <vector>

#include "tensor/layers.hpp"

namespace ap3::tensor {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

class Adam {
 public:
  Adam(Layer& model, AdamConfig config = {});

  /// One update from accumulated gradients; caller zeroes grads afterwards.
  void step();
  std::size_t steps_taken() const { return t_; }

  /// Flattened optimizer state (first moments, then second moments, in
  /// parameter order) plus the step counter — everything a checkpoint needs
  /// so a restored online-training run resumes bit-exactly.
  struct State {
    std::vector<float> m, v;
    std::size_t t = 0;
  };
  State state() const;
  void restore_state(const State& state);

 private:
  std::vector<Param> params_;
  std::vector<std::vector<float>> m_, v_;
  AdamConfig config_;
  std::size_t t_ = 0;
};

}  // namespace ap3::tensor
