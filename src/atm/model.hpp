// AtmModel — the GRIST-mini atmosphere component.
//
// Owns the dycore, the physics–dynamics coupling interface (conventional or
// AI suite), and the directly-coupled land surface model (§5.1.1: land
// bypasses the coupler). Exposes the MCT-style contract the CPL7-like driver
// consumes: init (constructor), run over a coupling window, export/import of
// boundary AttrVects on a GlobalSegMap decomposition.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "atm/dycore.hpp"
#include "atm/physics.hpp"
#include "balance/rebalanceable.hpp"
#include "io/checkpoint.hpp"
#include "lnd/land.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"

namespace ap3::atm {

/// Busy-channel-only balance::Rebalanceable: the icosahedral mesh keeps its
/// 1-D balanced partition (no block cuts), so block_partition() stays null
/// and the atmosphere participates through "atm:busy_seconds" + phase-cost
/// measurement alone.
class AtmModel : public balance::Rebalanceable {
 public:
  /// Collective construction = the component's MCT `init`.
  AtmModel(const par::Comm& comm, const AtmConfig& config,
           const grid::IcosahedralGrid& mesh);

  /// Advance the model across a coupling window = the MCT `run`. The window
  /// must be an integer number of model steps.
  void run(double start_seconds, double duration_seconds);

  // --- coupler contract -----------------------------------------------------
  static std::vector<std::string> export_fields();
  static std::vector<std::string> import_fields();
  const mct::GlobalSegMap& gsmap() const { return gsmap_; }
  void export_state(mct::AttrVect& a2x) const;
  void import_state(const mct::AttrVect& x2a);

  // --- internals / diagnostics ----------------------------------------------
  Dycore& dycore() { return *dycore_; }
  const Dycore& dycore() const { return *dycore_; }
  lnd::LandModel& land() { return *land_; }
  PhysicsSuite& physics() { return *physics_; }
  void set_physics(std::unique_ptr<PhysicsSuite> suite);
  const AtmConfig& config() const { return config_; }
  const par::Comm& comm() const { return comm_; }

  // --- balance::Rebalanceable -----------------------------------------------
  std::string_view balance_name() const override { return "atm"; }

  bool is_land(std::size_t owned) const { return land_mask_[owned]; }
  double tskin(std::size_t owned) const { return tskin_[owned]; }
  double sst(std::size_t owned) const { return sst_[owned]; }
  /// Area-weighted global mean precipitation [kg/m²/s] (collective).
  double global_mean_precip() const;
  /// Steps taken so far.
  long long model_steps() const { return steps_; }

  // --- checkpoint/restart ---------------------------------------------------
  /// This rank's full prognostic snapshot: dycore slot arrays (owned +
  /// ghosts, so no halo exchange is needed on restore), surface/import
  /// state, the directly-coupled land bucket, and the step counter.
  std::vector<io::Section> checkpoint_sections() const;
  /// Inverse of checkpoint_sections(); `sections` must carry this rank's
  /// layout (same names and sizes) with restored values.
  void restore_sections(const std::vector<io::Section>& sections);
  /// Section names in checkpoint_sections() order — the driver's canonical
  /// inventory (needed on ranks where the component does not live).
  static std::vector<std::string> checkpoint_section_names();

  /// Surface pressure diagnostic [Pa].
  double surface_pressure(std::size_t owned) const;
  /// Cosine of solar zenith angle at cell `owned`, time `t` seconds.
  double cos_zenith(std::size_t owned, double t_seconds) const;

 private:
  void model_step(double t_seconds);
  void apply_physics(double t_seconds, double dt);

  const par::Comm& comm_;
  AtmConfig config_;
  std::unique_ptr<Dycore> dycore_;
  std::unique_ptr<PhysicsSuite> physics_;
  std::unique_ptr<lnd::LandModel> land_;
  mct::GlobalSegMap gsmap_;

  std::vector<bool> land_mask_;
  std::vector<double> tskin_;   ///< land: prognostic; ocean: from import
  std::vector<double> sst_;     ///< imported SST [K]
  std::vector<double> ifrac_;   ///< imported ice fraction
  std::vector<double> gsw_, glw_, precip_;  ///< last physics diagnostics
  long long steps_ = 0;
  long long stall_points_ = 0;  ///< owned cells in the stall band
};

}  // namespace ap3::atm
