// Parallel I/O with subfile partitioning (§5.2.5).
//
// "A data-partitioning strategy that divides data into smaller subfiles is
// implemented. We assign groups of MPI ranks to the I/O for a set of
// subfiles, and leverage a binary format." Ranks are split into
// `num_subfiles` groups; each group's aggregator gathers members' (id,
// value) pairs and writes one binary subfile. The single-file baseline
// funnels everything through rank 0 — the original bottleneck the
// optimization removes.
//
// Record format v2 (DESIGN.md §16). One self-describing blob per subfile:
//
//   magic "AP3SUBF\0" | version u32 = 2 | codec u32 | nranks i64 |
//   counts i64[nranks] | nruns u64 | id runs (start i64, len i64)[nruns] |
//   payload | checksum u64
//
// where payload is f64[total] for Codec::kFp64, and for Codec::kGroupScaled
// (§5.2.3 precision format as a bounded-error checkpoint codec):
//
//   group_size u64 | nscales u64 | scales f64[nscales] | payload f32[total]
//
// Ids are run-length encoded as (start, len) strides of consecutive
// integers — checkpoint sections label values 0..n-1 per rank, so the id
// vector collapses to one run per rank and the group-scaled payload's ~2x
// size win survives at whole-file granularity. The trailing FNV-1a checksum
// covers EVERY preceding byte (v1 covered only `values`, so corrupted
// counts/ids passed validation — the bug that forced the version bump).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "par/comm.hpp"

namespace ap3::io {

inline constexpr std::uint32_t kSubfileVersion = 2;

struct FieldData {
  std::vector<std::int64_t> ids;
  std::vector<double> values;
};

/// Per-section payload encoding. kFp64 is bit-exact; kGroupScaled stores an
/// fp32 mantissa per value plus one power-of-two fp64 scale per group
/// (precision::GroupScaledArray), verified at encode time to stay within
/// `ulp_bound` of the fp64 source.
enum class Codec : std::uint32_t {
  kFp64 = 0,
  kGroupScaled = 1,
};

const char* codec_name(Codec codec);

struct CodecSpec {
  Codec codec = Codec::kFp64;
  /// Elements per scale group (kGroupScaled only).
  std::size_t group_size = 32;
  /// Encode-time verification bound, in double-ULPs, between each decoded
  /// value and its fp64 source. fp32 storage keeps ≤ 2^28 ULPs for normal
  /// values; the default leaves headroom for subnormal group tails.
  std::uint64_t ulp_bound = std::uint64_t{1} << 29;
};

/// FNV-1a over raw bytes; stored in each record footer, verified on read.
std::uint64_t checksum(std::span<const char> bytes);

struct SubfileConfig {
  std::string basename;  ///< files are <basename>.<k>.bin
  int num_subfiles = 1;
  CodecSpec codec{};
  /// Synthetic slow-disk knob: extra seconds charged per MiB inside the
  /// file write (bench-only; models a parallel filesystem under load).
  double slow_disk_seconds_per_mb = 0.0;
  /// Read side: when set, the record's stored codec must match (the
  /// checkpoint reader pins it from the manifest).
  std::optional<Codec> expected_codec{};
};

/// Floor-based subfile group map: rank -> floor(rank * num_subfiles / size).
int subfile_group(int rank, int comm_size, int num_subfiles);
/// Lowest rank mapped to `group`, i.e. the rank that becomes rank 0 of the
/// group communicator and writes the subfile.
int subfile_aggregator(int group, int comm_size, int num_subfiles);

/// Encode one subfile record (v2 layout above). `context` names the record
/// in error messages. For kGroupScaled this verifies every value decodes
/// within `spec.ulp_bound` of its source and throws ap3::Error otherwise.
std::vector<char> encode_record(const std::vector<std::size_t>& counts,
                                const std::vector<std::int64_t>& ids,
                                const std::vector<double>& values,
                                const CodecSpec& spec,
                                const std::string& context);

/// Decode + validate one record: checksum first, then bounds-checked parse.
/// Returns the codec the record was written with.
Codec decode_record(std::span<const char> bytes,
                    std::vector<std::size_t>& counts,
                    std::vector<std::int64_t>& ids,
                    std::vector<double>& values, const std::string& context);

/// Write `bytes` to `path`, failing on open, short write, or close errors
/// (a disk-full short write must not "succeed"). Returns bytes written.
std::size_t write_file_checked(const std::string& path,
                               std::span<const char> bytes,
                               double slow_disk_seconds_per_mb = 0.0);

/// One subfile's worth of gathered data: everything the aggregator needs to
/// encode and write with no further communication. This is the async
/// checkpoint writer's unit of work — the gather (collective, rank threads
/// only) is split from the encode+write (pure local, safe on a pool thread).
struct GatheredSubfile {
  std::string path;
  std::vector<std::size_t> counts;  ///< per group-rank element counts
  std::vector<std::int64_t> ids;
  std::vector<double> values;
};

/// Collective over `comm`: gather each group's (ids, values) onto its
/// aggregator. Aggregators get the gathered record; other ranks nullopt.
std::optional<GatheredSubfile> gather_subfiles(const par::Comm& comm,
                                               const SubfileConfig& config,
                                               const FieldData& local);

/// Encode + write one gathered record. No communication — callable from a
/// pp::Stream task. Returns bytes written.
std::size_t write_gathered(const GatheredSubfile& gathered,
                           const CodecSpec& spec,
                           double slow_disk_seconds_per_mb = 0.0);

/// Collective write: every rank contributes its (ids, values); group
/// aggregators write `num_subfiles` files. Returns bytes written (on the
/// aggregators; 0 elsewhere). Encode/write failures throw on the
/// aggregator; the checkpoint layer defers them to its collective wait()
/// so they surface symmetrically.
std::size_t write_subfiles(const par::Comm& comm, const SubfileConfig& config,
                           const FieldData& local);

/// Collective read: aggregators read their subfile and re-scatter each
/// rank's original (ids, values). `expected_ids` tells the reader which ids
/// this rank wants back. Aggregator-side failures (missing file, checksum
/// or codec mismatch, truncation) are broadcast to the group so every rank
/// throws ap3::Error instead of deadlocking in a receive.
FieldData read_subfiles(const par::Comm& comm, const SubfileConfig& config,
                        const std::vector<std::int64_t>& expected_ids);

/// Baseline: single file through rank 0.
std::size_t write_single(const par::Comm& comm, const std::string& path,
                         const FieldData& local);
FieldData read_single(const par::Comm& comm, const std::string& path,
                      const std::vector<std::int64_t>& expected_ids);

}  // namespace ap3::io
