#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace ap3::fault {

const char* action_name(Action action) {
  switch (action) {
    case Action::kDeliver: return "deliver";
    case Action::kDrop: return "drop";
    case Action::kDuplicate: return "duplicate";
    case Action::kDelay: return "delay";
  }
  return "?";
}

namespace {

/// Mix the fault point into one 64-bit word; every field shifts the stream
/// so adjacent (tag, src, dst, seq) coordinates decorrelate.
std::uint64_t point_hash(std::uint64_t seed, const FaultPoint& p,
                         std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  state ^= splitmix64(state) + static_cast<std::uint64_t>(p.comm_id);
  state ^= splitmix64(state) + static_cast<std::uint64_t>(p.tag) * 0x9e3779b9ULL;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(p.src) * 0x85ebca6bULL;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(p.dst) * 0xc2b2ae35ULL;
  state ^= splitmix64(state) + p.seq;
  return splitmix64(state);
}

double unit_uniform(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

auto sort_key(const InjectionRecord& r) {
  return std::make_tuple(r.point.comm_id, r.point.src, r.point.dst,
                         r.point.tag, r.point.seq);
}

}  // namespace

Decision decide(const FaultConfig& config, const FaultPoint& point) {
  AP3_REQUIRE_MSG(
      config.drop_rate + config.duplicate_rate + config.delay_rate <= 1.0 + 1e-12,
      "fault rates sum to more than 1");
  Decision out;
  if (point.tag < config.tag_min || point.tag > config.tag_max) return out;
  const double u = unit_uniform(point_hash(config.seed, point, /*salt=*/1));
  if (u < config.drop_rate) {
    out.action = Action::kDrop;
  } else if (u < config.drop_rate + config.duplicate_rate) {
    out.action = Action::kDuplicate;
  } else if (u < config.drop_rate + config.duplicate_rate + config.delay_rate) {
    out.action = Action::kDelay;
    out.delay_deliveries = config.delay_deliveries;
  }
  if (config.stall_rate > 0.0) {
    const double s = unit_uniform(point_hash(config.seed, point, /*salt=*/2));
    if (s < config.stall_rate) out.stall_microseconds = config.stall_microseconds;
  }
  return out;
}

bool operator==(const FaultPoint& a, const FaultPoint& b) {
  return a.comm_id == b.comm_id && a.tag == b.tag && a.src == b.src &&
         a.dst == b.dst && a.seq == b.seq;
}

bool operator==(const InjectionRecord& a, const InjectionRecord& b) {
  return a.point == b.point && a.action == b.action &&
         a.stall_microseconds == b.stall_microseconds;
}

void InjectionLog::record(const InjectionRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
}

std::size_t InjectionLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<InjectionRecord> InjectionLog::sorted() const {
  std::vector<InjectionRecord> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = records_;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return sort_key(a) < sort_key(b);
  });
  return out;
}

std::size_t InjectionLog::count_stalls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const auto& r) { return r.stall_microseconds > 0; }));
}

std::size_t InjectionLog::count(Action action) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const auto& r) { return r.action == action; }));
}

std::string to_string(const InjectionRecord& record) {
  std::ostringstream out;
  out << action_name(record.action) << " comm=" << record.point.comm_id
      << " tag=" << record.point.tag << " " << record.point.src << "->"
      << record.point.dst << " seq=" << record.point.seq;
  if (record.stall_microseconds > 0)
    out << " stall=" << record.stall_microseconds << "us";
  return out.str();
}

}  // namespace ap3::fault
