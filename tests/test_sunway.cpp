// Tests for the Sunway core-group simulator: LDM discipline, DMA accounting,
// athread offload correctness, and the MPE-vs-CPE timing model that underlies
// the paper's 84x-184x speedup band.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sunway/arch.hpp"
#include "sunway/athread.hpp"
#include "sunway/coregroup.hpp"
#include "sunway/dma.hpp"
#include "sunway/ldm.hpp"

namespace {

using namespace ap3::sunway;

TEST(Ldm, AllocWithinCapacity) {
  LdmAllocator ldm(1024);
  double* a = ldm.alloc_array<double>(64);  // 512 bytes
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(ldm.used(), 512u);
  EXPECT_EQ(ldm.available(), 512u);
}

TEST(Ldm, OverflowThrows) {
  LdmAllocator ldm(256);
  ldm.alloc(200);
  EXPECT_THROW(ldm.alloc(100), LdmOverflow);
}

TEST(Ldm, RealCpeCapacityIs256K) {
  LdmAllocator ldm(kLdmBytesPerCpe);
  // A 182x182 double tile (~259 KiB) must NOT fit — this is exactly the
  // constraint that forces tiling in LICOMK++ kernels.
  EXPECT_THROW(ldm.alloc(182 * 182 * sizeof(double)), LdmOverflow);
  // A 128x128 double tile (128 KB) fits fine.
  EXPECT_NO_THROW(ldm.alloc(128 * 128 * sizeof(double)));
}

TEST(Ldm, LifoFreeDiscipline) {
  LdmAllocator ldm(1024);
  void* a = ldm.alloc(100);
  void* b = ldm.alloc(100);
  EXPECT_THROW(ldm.free_last(a), ap3::Error);  // not the last allocation
  ldm.free_last(b);
  ldm.free_last(a);
  EXPECT_EQ(ldm.used(), 0u);
}

TEST(Ldm, PeakTracksHighWater) {
  LdmAllocator ldm(1024);
  void* a = ldm.alloc(512);
  ldm.free_last(a);
  ldm.alloc(128);
  EXPECT_EQ(ldm.peak(), 512u);
}

TEST(Dma, CopiesAndAccounts) {
  DmaEngine dma;
  std::vector<double> host = {1, 2, 3, 4};
  std::vector<double> ldm(4, 0.0);
  dma.get(ldm.data(), host.data(), 4 * sizeof(double));
  EXPECT_EQ(ldm[3], 4.0);
  ldm[0] = 99.0;
  dma.put(host.data(), ldm.data(), 4 * sizeof(double));
  EXPECT_EQ(host[0], 99.0);
  EXPECT_EQ(dma.total_bytes(), 2u * 4u * sizeof(double));
  EXPECT_EQ(dma.transfers(), 2u);
  EXPECT_GT(dma.simulated_seconds(), 0.0);
}

TEST(Athread, AllCpesRun) {
  DmaEngine dma;
  std::vector<int> ran(kCpesPerCoreGroup, 0);
  athread_spawn_join(
      [&](CpeContext& ctx) { ran[static_cast<size_t>(ctx.cpe_id)] = 1; }, dma);
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), kCpesPerCoreGroup);
}

TEST(Athread, PartitionCoversRangeExactly) {
  const size_t n = 1003;
  std::vector<int> hits(n, 0);
  for (int id = 0; id < 64; ++id) {
    const CpeRange r = cpe_partition(n, id, 64);
    for (size_t i = r.begin; i < r.end; ++i) hits[i]++;
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(Athread, OffloadedSaxpyMatchesSerial) {
  // Stage tiles through LDM with DMA, compute on CPEs, write back: the
  // canonical swLICOM kernel structure. The result must be bitwise equal to
  // the serial MPE computation.
  const size_t n = 4096;
  std::vector<double> x(n), y_mpe(n, 1.0), y_cpe(n, 1.0);
  for (size_t i = 0; i < n; ++i) x[i] = std::sin(double(i));
  const double a = 2.5;

  for (size_t i = 0; i < n; ++i) y_mpe[i] += a * x[i];  // MPE reference

  DmaEngine dma;
  athread_spawn_join(
      [&](CpeContext& ctx) {
        const CpeRange range = cpe_partition(n, ctx.cpe_id, ctx.num_cpes);
        const size_t len = range.end - range.begin;
        if (len == 0) return;
        double* lx = ctx.ldm->alloc_array<double>(len);
        double* ly = ctx.ldm->alloc_array<double>(len);
        ctx.dma->get(lx, x.data() + range.begin, len * sizeof(double));
        ctx.dma->get(ly, y_cpe.data() + range.begin, len * sizeof(double));
        for (size_t i = 0; i < len; ++i) ly[i] += a * lx[i];
        ctx.dma->put(y_cpe.data() + range.begin, ly, len * sizeof(double));
      },
      dma);

  EXPECT_EQ(y_mpe, y_cpe);
  EXPECT_GT(dma.total_bytes(), 0u);
}

TEST(Athread, LdmIsFreshPerSpawn) {
  DmaEngine dma;
  athread_spawn_join([&](CpeContext& ctx) { ctx.ldm->alloc(1024); }, dma);
  // Second spawn gets clean allocators — allocating full capacity must work.
  athread_spawn_join(
      [&](CpeContext& ctx) {
        EXPECT_NO_THROW(ctx.ldm->alloc(kLdmBytesPerCpe - 64));
      },
      dma);
}

TEST(CoreGroup, CpeClusterBeatsmpeByPaperBand) {
  // A compute-bound kernel should land in the paper's observed acceleration
  // band (84x–184x for real kernels; pure compute gives the architectural
  // ratio).
  KernelWork work;
  work.flops = 1e9;
  work.bytes = 1e6;  // light memory traffic
  const double mpe = CoreGroup::predict(work, ExecTarget::kMpe);
  const double cpe = CoreGroup::predict(work, ExecTarget::kCpeCluster);
  const double speedup = mpe / cpe;
  EXPECT_GT(speedup, 80.0);
  EXPECT_LT(speedup, 200.0);
}

TEST(CoreGroup, DmaBoundKernelLimitedByBandwidth) {
  KernelWork work;
  work.flops = 1e6;   // trivial compute
  work.bytes = 4e9;   // heavy traffic
  const double cpe = CoreGroup::predict(work, ExecTarget::kCpeCluster);
  // 4 GB over 40 GB/s -> at least 0.1 s regardless of compute speed.
  EXPECT_GE(cpe, 0.1);
}

TEST(CoreGroup, AiFlopsRunFasterThanScalarFlopsOnCpe) {
  KernelWork scalar{1e9, 0.0, 0.0};
  KernelWork tensor{0.0, 0.0, 1e9};
  EXPECT_LT(CoreGroup::predict(tensor, ExecTarget::kCpeCluster),
            CoreGroup::predict(scalar, ExecTarget::kCpeCluster));
}

TEST(CoreGroup, ChargeAccumulates) {
  CoreGroup cg;
  KernelWork work{1e7, 1e5, 0.0};
  const double t1 = cg.charge(work, ExecTarget::kCpeCluster);
  const double t2 = cg.charge(work, ExecTarget::kCpeCluster);
  EXPECT_DOUBLE_EQ(cg.simulated_seconds(), t1 + t2);
  EXPECT_EQ(cg.kernels_run(), 2u);
}

TEST(Arch, CoreCountsMatchOceanLight) {
  EXPECT_EQ(kCoresPerCpu, 390);
  EXPECT_EQ(kOceanLightCores, 41932800LL);
}

TEST(Arch, OversubscriptionRatioIs16to3) {
  EXPECT_NEAR(kInterSupernodeBandwidthGBs / kIntraSupernodeBandwidthGBs,
              3.0 / 16.0, 1e-12);
}

TEST(OriseGpu, FasterThanCoreGroupForSameWork) {
  KernelWork work{1e9, 1e7, 0.0};
  EXPECT_LT(orise_gpu_seconds(work),
            CoreGroup::predict(work, ExecTarget::kCpeCluster));
}

}  // namespace
