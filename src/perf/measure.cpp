#include "perf/measure.hpp"

#include <chrono>

#include "atm/model.hpp"
#include "atm/vortex.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

namespace ap3::perf {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

LocalKernelCosts measure_local_costs() {
  static LocalKernelCosts costs;
  costs = LocalKernelCosts{};
  par::run(1, [&](par::Comm& comm) {
    // --- atmosphere ----------------------------------------------------------
    {
      atm::AtmConfig config;
      config.mesh_n = 8;  // 1280 cells
      config.nlev = 8;
      grid::IcosahedralGrid mesh(config.mesh_n);
      atm::Dycore dycore(comm, config, mesh);
      atm::seed_vortex(dycore, atm::VortexSpec{});
      const double cells = static_cast<double>(dycore.mesh().num_owned());

      const int reps = 40;
      auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r)
        dycore.step_dynamics(config.dycore_dt_seconds());
      costs.atm_dynamics_ns_per_cell =
          seconds_since(start) / (reps * cells) * 1e9;

      start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r)
        dycore.step_tracers(config.tracer_dt_seconds());
      costs.atm_tracer_ns_per_cell_level =
          seconds_since(start) / (reps * cells * config.nlev) * 1e9;

      atm::ConventionalPhysics physics;
      atm::ColumnBatch batch(static_cast<std::size_t>(cells),
                             static_cast<std::size_t>(config.nlev));
      start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) physics.compute(batch);
      costs.atm_physics_ns_per_column =
          seconds_since(start) / (reps * cells) * 1e9;
    }

    // --- ocean ------------------------------------------------------------------
    {
      ocn::OcnConfig config;
      config.grid = grid::TripolarConfig{64, 48, 10};
      ocn::OcnModel model(comm, config);
      mct::AttrVect x2o(ocn::OcnModel::import_fields(),
                        model.ocean_gids().size());
      for (auto& t : x2o.field("taux")) t = 0.1;
      model.import_state(x2o);
      const double surface = static_cast<double>(model.ocean_gids().size());
      const double points = surface * config.grid.nz * 0.8;  // mean depth

      // One full run covers all kernels; attribute by re-running the window
      // and measuring the aggregate (barotropic dominates by step count, so
      // report the blended per-point rate per sub-cycle honestly).
      const int steps = 5;
      const auto start = std::chrono::steady_clock::now();
      model.run(0.0, config.baroclinic_dt_seconds() * steps);
      const double total = seconds_since(start);
      // Split by operation counts: 10 barotropic (2-D) + 1 tracer + 1 mixing
      // (3-D) per baroclinic step.
      const double ops_2d = steps * 10.0 * surface;
      const double ops_3d = steps * 2.0 * points;
      const double per_op = total / (ops_2d + ops_3d) * 1e9;
      costs.ocn_barotropic_ns_per_point = per_op;
      costs.ocn_tracer_ns_per_point_level = per_op;
      costs.ocn_mixing_ns_per_point_level = per_op;
    }
  });
  return costs;
}

}  // namespace ap3::perf
