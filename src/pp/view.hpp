// Multi-dimensional array views in the spirit of Kokkos::View.
//
// LICOMK++ expresses every ocean kernel over Views so one source compiles to
// CUDA/HIP/Athread backends; this reproduction keeps the same abstraction so
// kernels are written once and dispatched to any execution space (§5.3).
//
// Views are reference-counted (copies alias), support layout left/right,
// host mirrors, and bounds-checked element access via AP3_REQUIRE in
// debug-style checked mode (AP3_VIEW_CHECKED).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>

#include "base/error.hpp"

namespace ap3::pp {

enum class Layout { kRight, kLeft };  // Right: C order; Left: Fortran order

template <typename T, int Rank>
class View {
  static_assert(Rank >= 1 && Rank <= 4, "View supports rank 1..4");

 public:
  View() = default;

  template <typename... Extents>
  explicit View(std::string label, Extents... extents)
      : View(std::move(label), Layout::kRight, extents...) {}

  template <typename... Extents>
  View(std::string label, Layout layout, Extents... extents)
      : label_(std::move(label)), layout_(layout) {
    static_assert(sizeof...(Extents) == Rank, "extent count must equal Rank");
    extents_ = {static_cast<std::size_t>(extents)...};
    size_ = 1;
    for (std::size_t e : extents_) size_ *= e;
    data_ = std::shared_ptr<T[]>(new T[size_ == 0 ? 1 : size_]());
    compute_strides();
  }

  const std::string& label() const { return label_; }
  Layout layout() const { return layout_; }
  std::size_t size() const { return size_; }
  std::size_t extent(int dim) const {
    return extents_[static_cast<std::size_t>(dim)];
  }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  bool allocated() const { return static_cast<bool>(data_); }

  template <typename... Idx>
  T& operator()(Idx... idx) {
    return data_[offset(idx...)];
  }
  template <typename... Idx>
  const T& operator()(Idx... idx) const {
    return data_[offset(idx...)];
  }

  T& linear(std::size_t i) { return data_[i]; }
  const T& linear(std::size_t i) const { return data_[i]; }

  /// A deep, independent copy with the same shape and contents.
  View clone() const {
    View out;
    out.label_ = label_ + "_copy";
    out.layout_ = layout_;
    out.extents_ = extents_;
    out.strides_ = strides_;
    out.size_ = size_;
    out.data_ = std::shared_ptr<T[]>(new T[size_ == 0 ? 1 : size_]);
    std::copy(data_.get(), data_.get() + size_, out.data_.get());
    return out;
  }

  void fill(const T& value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

 private:
  template <typename... Idx>
  std::size_t offset(Idx... idx) const {
    static_assert(sizeof...(Idx) == Rank, "index count must equal Rank");
    const std::array<std::size_t, Rank> indices = {
        static_cast<std::size_t>(idx)...};
#ifdef AP3_VIEW_CHECKED
    for (int d = 0; d < Rank; ++d)
      AP3_REQUIRE_MSG(indices[static_cast<std::size_t>(d)] <
                          extents_[static_cast<std::size_t>(d)],
                      "view '" << label_ << "' index out of bounds in dim "
                               << d);
#endif
    std::size_t off = 0;
    for (int d = 0; d < Rank; ++d)
      off += indices[static_cast<std::size_t>(d)] *
             strides_[static_cast<std::size_t>(d)];
    return off;
  }

  void compute_strides() {
    if (layout_ == Layout::kRight) {
      std::size_t stride = 1;
      for (int d = Rank - 1; d >= 0; --d) {
        strides_[static_cast<std::size_t>(d)] = stride;
        stride *= extents_[static_cast<std::size_t>(d)];
      }
    } else {
      std::size_t stride = 1;
      for (int d = 0; d < Rank; ++d) {
        strides_[static_cast<std::size_t>(d)] = stride;
        stride *= extents_[static_cast<std::size_t>(d)];
      }
    }
  }

  std::string label_;
  Layout layout_ = Layout::kRight;
  std::array<std::size_t, Rank> extents_{};
  std::array<std::size_t, Rank> strides_{};
  std::size_t size_ = 0;
  std::shared_ptr<T[]> data_;
};

/// deep_copy between same-shape views (mirrors Kokkos::deep_copy).
template <typename T, int Rank>
void deep_copy(View<T, Rank>& dst, const View<T, Rank>& src) {
  AP3_REQUIRE_MSG(dst.size() == src.size(),
                  "deep_copy: shape mismatch between '" << dst.label()
                                                        << "' and '"
                                                        << src.label() << "'");
  for (int d = 0; d < Rank; ++d) AP3_REQUIRE(dst.extent(d) == src.extent(d));
  std::copy(src.data(), src.data() + src.size(), dst.data());
}

}  // namespace ap3::pp
