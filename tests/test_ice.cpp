// Tests for the CICE4-mini sea ice component.
#include <gtest/gtest.h>

#include "base/constants.hpp"
#include "ice/ice.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::ice;

IceConfig small_config() {
  IceConfig config;
  config.grid = grid::TripolarConfig{48, 36, 8};
  return config;
}

TEST(Ice, InitialPolarCaps) {
  par::run(2, [](par::Comm& comm) {
    IceModel model(comm, small_config());
    const double frac = model.ice_area_fraction();
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 0.4);
    EXPECT_GT(model.total_ice_volume(), 0.0);
  });
}

TEST(Ice, GrowsWhenColdMeltsWhenWarm) {
  par::run(1, [](par::Comm& comm) {
    IceModel model(comm, small_config());
    const std::size_t ncols = model.ocean_gids().size();
    mct::AttrVect cold(IceModel::import_fields(), ncols);
    for (auto& v : cold.field("sst")) v = 268.0;   // below freezing
    for (auto& v : cold.field("tbot")) v = 250.0;  // frigid air
    model.import_state(cold);
    const double vol0 = model.total_ice_volume();
    model.run(0.0, 86400.0);
    const double vol_grown = model.total_ice_volume();
    EXPECT_GT(vol_grown, vol0);

    mct::AttrVect warm(IceModel::import_fields(), ncols);
    for (auto& v : warm.field("sst")) v = 290.0;
    for (auto& v : warm.field("tbot")) v = 295.0;
    model.import_state(warm);
    model.run(86400.0, 10 * 86400.0);
    EXPECT_LT(model.total_ice_volume(), vol_grown);
  });
}

TEST(Ice, ThicknessBounded) {
  par::run(1, [](par::Comm& comm) {
    const IceConfig config = small_config();
    IceModel model(comm, config);
    const std::size_t ncols = model.ocean_gids().size();
    mct::AttrVect frigid(IceModel::import_fields(), ncols);
    for (auto& v : frigid.field("sst")) v = 250.0;
    for (auto& v : frigid.field("tbot")) v = 220.0;
    model.import_state(frigid);
    model.run(0.0, 400.0 * 86400.0);
    for (std::size_t c = 0; c < ncols; ++c) {
      EXPECT_LE(model.hice(c), config.max_thickness);
      EXPECT_LE(model.aice(c), 1.0);
      EXPECT_GE(model.aice(c), 0.0);
    }
    // Everything frozen solid.
    EXPECT_GT(model.ice_area_fraction(), 0.95);
  });
}

TEST(Ice, DriftMovesIce) {
  par::run(1, [](par::Comm& comm) {
    IceModel model(comm, small_config());
    const std::size_t ncols = model.ocean_gids().size();
    // Neutral thermodynamics (at freezing), strong northward drift.
    mct::AttrVect x2i(IceModel::import_fields(), ncols);
    const double freeze = constants::kSeawaterFreeze + constants::kT0;
    for (auto& v : x2i.field("sst")) v = freeze;
    for (auto& v : x2i.field("tbot")) v = freeze;
    for (auto& v : x2i.field("vs")) v = 0.5;
    model.import_state(x2i);
    const double vol0 = model.total_ice_volume();
    model.run(0.0, 5.0 * 86400.0);
    // Ice moved but total volume approximately conserved (advective form,
    // no thermo sources at exactly the freezing point: deficit = 0).
    EXPECT_NEAR(model.total_ice_volume() / vol0, 1.0, 0.2);
  });
}

TEST(Ice, ExportImportRoundTrip) {
  par::run(2, [](par::Comm& comm) {
    IceModel model(comm, small_config());
    const std::size_t ncols = model.ocean_gids().size();
    mct::AttrVect i2x(IceModel::export_fields(), ncols);
    model.export_state(i2x);
    for (double f : i2x.field("ifrac")) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
    EXPECT_EQ(model.gsmap().local_size(comm.rank()),
              static_cast<std::int64_t>(ncols));
  });
}

TEST(Ice, ParallelMatchesSerialFraction) {
  const IceConfig config = small_config();
  static double serial_frac, parallel_frac;
  par::run(1, [&](par::Comm& comm) {
    IceModel model(comm, config);
    model.run(0.0, 86400.0);
    serial_frac = model.ice_area_fraction();
  });
  par::run(4, [&](par::Comm& comm) {
    IceModel model(comm, config);
    model.run(0.0, 86400.0);
    parallel_frac = model.ice_area_fraction();
  });
  EXPECT_NEAR(serial_frac, parallel_frac, 1e-12);
}

}  // namespace
