// §5.2.3 benchmark: group-wise scaling FP64/FP32 mixed precision.
//
// Ocean: integrate the mini LICOM twice (FP64 reference vs mixed dycore) and
// report the paper's acceptance metrics — grid-area-weighted RMSD of
// temperature, salinity, and sea-surface height (paper values after 30 days:
// 0.018 °C, 0.0098 psu, 0.0005 m).
// Atmosphere: relative L2 of surface pressure and relative vorticity against
// the FP64 baseline (paper threshold: 5 %). Also reports memory savings.
#include <cmath>
#include <cstdio>
#include <vector>

#include "atm/dycore.hpp"
#include "atm/vortex.hpp"
#include "base/stats.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"
#include "precision/group_scaled.hpp"

namespace {

using namespace ap3;

struct OcnFields {
  std::vector<double> temp, salt, ssh, area;
};

OcnFields run_ocean(bool mixed) {
  static OcnFields fields;
  fields = OcnFields{};
  par::run(1, [&](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{72, 54, 12};
    config.mixed_precision = mixed;
    ocn::OcnModel model(comm, config);
    mct::AttrVect x2o(ocn::OcnModel::import_fields(),
                      model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.12;
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 60);
    for (auto gid : model.ocean_gids()) {
      const int i = static_cast<int>(gid % config.grid.nx);
      const int j = static_cast<int>(gid / config.grid.nx);
      fields.temp.push_back(model.temp(i, j, 0));
      fields.salt.push_back(model.salt(i, j, 0));
      fields.ssh.push_back(model.eta(i, j));
      fields.area.push_back(model.ocean_grid().cell_area(i, j));
    }
  });
  return fields;
}

struct AtmFields {
  std::vector<double> ps, vorticity;
};

AtmFields run_atm(bool mixed) {
  static AtmFields fields;
  fields = AtmFields{};
  par::run(1, [&](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = 8;
    config.nlev = 6;
    config.mixed_precision = mixed;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::Dycore dycore(comm, config, mesh);
    atm::seed_vortex(dycore, atm::VortexSpec{});
    for (int s = 0; s < 80; ++s)
      dycore.step_dynamics(config.dycore_dt_seconds());
    fields.ps.assign(dycore.state().h.begin(),
                     dycore.state().h.begin() +
                         static_cast<std::ptrdiff_t>(dycore.mesh().num_owned()));
    fields.vorticity = dycore.relative_vorticity();
  });
  return fields;
}

}  // namespace

int main() {
  std::printf("§5.2.3 — group-wise scaling FP64/FP32 mixed precision\n");
  std::printf("======================================================\n\n");

  std::printf("ocean (LICOM metrics — area-weighted RMSD vs FP64 run):\n");
  const OcnFields fp64 = run_ocean(false);
  const OcnFields mixed = run_ocean(true);
  const double rmsd_t = stats::weighted_rmsd(mixed.temp, fp64.temp, fp64.area);
  const double rmsd_s = stats::weighted_rmsd(mixed.salt, fp64.salt, fp64.area);
  const double rmsd_h = stats::weighted_rmsd(mixed.ssh, fp64.ssh, fp64.area);
  std::printf("  temperature RMSD: %.3e degC   (paper, 30 days: 1.8e-2)\n", rmsd_t);
  std::printf("  salinity    RMSD: %.3e psu    (paper, 30 days: 9.8e-3)\n", rmsd_s);
  std::printf("  SSH         RMSD: %.3e m      (paper, 30 days: 5.0e-4)\n", rmsd_h);
  const bool ocn_ok = rmsd_t < 1.8e-2 && rmsd_s < 9.8e-3 && rmsd_h < 5.0e-4;
  std::printf("  within the paper's accepted band: %s\n\n",
              ocn_ok ? "YES" : "NO");

  std::printf("atmosphere (GRIST metric — relative L2 vs FP64 run, "
              "threshold 5%%):\n");
  const AtmFields atm64 = run_atm(false);
  const AtmFields atm_mixed = run_atm(true);
  const double l2_ps = stats::relative_l2(atm_mixed.ps, atm64.ps);
  std::printf("  surface pressure: %.3e\n", l2_ps);
  double l2_vort = 0.0;
  {
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < atm64.vorticity.size(); ++k) {
      const double d = atm_mixed.vorticity[k] - atm64.vorticity[k];
      num += d * d;
      den += atm64.vorticity[k] * atm64.vorticity[k];
    }
    l2_vort = den > 0 ? std::sqrt(num / den) : 0.0;
  }
  std::printf("  relative vorticity: %.3e\n", l2_vort);
  const bool atm_ok = l2_ps < 0.05 && l2_vort < 0.05;
  std::printf("  within the 5%% threshold: %s\n\n", atm_ok ? "YES" : "NO");

  // Memory savings of the representation itself.
  std::vector<double> sample(1 << 16);
  for (std::size_t i = 0; i < sample.size(); ++i)
    sample[i] = std::sin(0.001 * static_cast<double>(i)) * 1e4;
  const auto packed = precision::GroupScaledArray::compress(sample, 64);
  std::printf("storage: %.2fx compression vs FP64 (group size 64), max "
              "round-trip error %.1e relative\n",
              packed.compression_ratio(),
              precision::max_relative_roundtrip_error(sample, 64));
  return (ocn_ok && atm_ok) ? 0 : 1;
}
