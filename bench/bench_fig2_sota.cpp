// Regenerates Fig. 2: the survey of recent high-resolution coupled models
// (SYPD vs total grid points) with the log-linear state-of-the-art dividing
// line fit between CNRM (2019) and CESM (2024), and the position of the two
// AP3ESM configurations relative to that line.
#include <cmath>
#include <cstdio>

#include "perf/sota.hpp"

int main() {
  using namespace ap3::perf;

  std::printf("Fig. 2 — high-resolution coupled model survey\n");
  std::printf("==============================================\n\n");

  const LogLinearFit fit = fit_sota_line();
  std::printf("SOTA line: log10(SYPD) = %.3f %+.3f * log10(points)\n\n",
              fit.intercept, fit.slope);

  std::printf("  %-28s %5s  %12s  %8s  %10s  %s\n", "model", "year",
              "grid points", "SYPD", "line SYPD", "vs line");
  for (const SotaPoint& p : sota_survey()) {
    const double line = fit.sypd_at(p.total_grid_points);
    std::printf("  %-28s %5d  %12.3g  %8.2f  %10.2f  %s%s\n", p.model.c_str(),
                p.year, p.total_grid_points, p.sypd, line,
                p.sypd > line ? "above" : "below",
                p.is_ap3esm ? "  <-- this paper" : "");
  }

  std::printf("\nreproduced claim: both AP3ESM configurations sit above the\n"
              "dividing line while holding the largest grid totals in the\n"
              "survey (Table 1: 1.5e10 at 3v2, 7.2e10 at 1v1).\n");
  return 0;
}
