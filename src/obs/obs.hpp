// Unified observability layer (§6.2 generalized): RAII spans, counters,
// and gauges behind one runtime toggle.
//
// Every simulated rank (thread) owns a RankBuffer: an append-only list of
// completed span events plus a family of named counters/gauges. Buffers are
// registered process-wide so exporters (obs/export.hpp) can render one
// timeline row per simulated rank, and the cross-rank merge collective
// (obs/merge.hpp) can reduce counters over ap3::par the way getTiming
// reduces timers.
//
// Span names follow `component:phase:subphase` (e.g. "cpl:run:atm" or the
// driver's "run:ocn_phase:ocn_run"); the ':' separators drive tree-report
// indentation and let cpl::summarize_timing keep its phase semantics.
//
// The whole layer sits behind obs::set_enabled(): when disabled, a span or
// counter update is a single relaxed atomic load — cheap enough to leave the
// instrumentation compiled into hot kernels (see bench/bench_obs_overhead).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ap3 {
class TimerRegistry;
}

namespace ap3::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global runtime toggle. Defaults to enabled so the paper's timing pipeline
/// works out of the box; benches flip it off to measure bare dispatch.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonic seconds since the process's observability epoch (first use).
double now_seconds();

/// One completed (closed) span on one rank's timeline.
struct SpanEvent {
  std::uint32_t name_id = 0;  ///< index into RankBuffer::names()
  std::uint32_t depth = 0;    ///< nesting depth at which the span ran
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// A named counter (monotonic sum) or gauge (high-water maximum).
struct CounterValue {
  double value = 0.0;
  std::uint64_t updates = 0;
  bool is_gauge = false;
};

/// Per-name span aggregate, shaped like base/timer.hpp's TimerStats so the
/// TimerRegistry compatibility shim can be fed from spans.
struct SpanStats {
  std::string name;
  long long calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  double min_seconds = 0.0;
};

/// Span/counter storage for one simulated rank (one recording thread).
///
/// Recording is single-writer (the owning thread) but snapshots may be taken
/// from other threads (exporters after par::run joins), so every operation
/// takes a short internal lock. Buffers outlive their thread: the process
/// registry holds shared ownership until reset.
class RankBuffer {
 public:
  /// Hard cap per buffer so unbounded bench loops cannot exhaust memory;
  /// overflowing events are dropped (counted in dropped_events()).
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 22;

  int rank() const;
  void set_rank(int rank);

  // --- recording (called by Span and the counter helpers) -------------------
  std::uint32_t span_enter(std::string_view name);
  void span_exit(std::uint32_t name_id, double start_seconds,
                 double end_seconds);
  /// Records one completed span at an explicit nesting depth without touching
  /// the live depth counter. Used by async launches, which capture the
  /// enqueue-site depth and complete on a worker thread later.
  void record_span(std::string_view name, std::uint32_t depth,
                   double start_seconds, double end_seconds);
  /// Current live nesting depth (open spans on the owning thread).
  std::uint32_t depth() const;
  void counter_add(std::string_view name, double delta);
  void gauge_max(std::string_view name, double value);

  // --- snapshots (thread-safe copies) ---------------------------------------
  std::size_t event_count() const;
  std::uint64_t dropped_events() const;
  /// Completed events from index `first_event` onward, in completion order.
  std::vector<SpanEvent> events(std::size_t first_event = 0) const;
  /// Interned span names; index is SpanEvent::name_id.
  std::vector<std::string> names() const;
  std::map<std::string, CounterValue> counters() const;
  double counter(std::string_view name) const;
  /// Per-name aggregation of events from `first_event` onward, sorted by
  /// descending total time (the TimerRegistry::snapshot convention).
  std::vector<SpanStats> aggregate_spans(std::size_t first_event = 0) const;

  void clear();

 private:
  std::uint32_t intern_locked(std::string_view name);

  mutable std::mutex mutex_;
  int rank_ = -1;
  std::uint32_t depth_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
  std::map<std::string, CounterValue, std::less<>> counters_;
};

/// This thread's buffer (created and registered on first use) — unless a
/// BufferScope is active, in which case the adopted buffer is returned.
RankBuffer& local();

/// Adopts another thread's RankBuffer for the current scope: while alive,
/// local() (and therefore Span / counter_add) on this thread records into the
/// adopted buffer instead of the thread's own. This is how async launches
/// executed on pool workers attribute their spans and counters to the
/// simulated rank that enqueued them. RankBuffer operations are internally
/// locked, so concurrent recording from the owner and an adopter is safe
/// (events land in completion order either way). Scopes nest; each restores
/// the previous adoption on destruction.
class BufferScope {
 public:
  explicit BufferScope(RankBuffer& buffer);
  ~BufferScope();
  BufferScope(const BufferScope&) = delete;
  BufferScope& operator=(const BufferScope&) = delete;

 private:
  RankBuffer* previous_ = nullptr;
};

/// Shared snapshot of every buffer ever registered, in registration order.
std::vector<std::shared_ptr<RankBuffer>> buffers();

/// Clears the contents of every registered buffer (the buffers themselves
/// stay registered so live threads keep recording into them).
void reset_all();

/// Label this thread's buffer with its simulated rank (par::run does this).
void set_rank(int rank);

// --- counter convenience entry points (this thread's buffer) ----------------
void counter_add(std::string_view name, double delta);
/// Keyed family member, recorded as "family[key]" (e.g. per-tag bytes).
void counter_add_keyed(std::string_view family, long long key, double delta);
void gauge_max(std::string_view name, double value);

/// Counter reduced across every registered buffer: counters sum, gauges max.
double total_counter(std::string_view name);

/// Feed the TimerRegistry compatibility shim from span aggregates. Only span
/// names starting with `prefix` are absorbed (empty prefix: all), so the
/// paper-facing cpl::TimingSummary keeps exactly its legacy phase set.
void fill_registry(const RankBuffer& buffer, std::size_t first_event,
                   ap3::TimerRegistry& registry, std::string_view prefix = {});

/// RAII scoped span: records one SpanEvent on this thread's buffer between
/// construction and destruction. No-op (one atomic load) when disabled.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (!enabled()) return;
    buffer_ = &local();
    name_id_ = buffer_->span_enter(name);
    start_seconds_ = now_seconds();
  }
  ~Span() {
    if (buffer_ != nullptr)
      buffer_->span_exit(name_id_, start_seconds_, now_seconds());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

 private:
  RankBuffer* buffer_ = nullptr;
  std::uint32_t name_id_ = 0;
  double start_seconds_ = 0.0;
};

}  // namespace ap3::obs

#define AP3_OBS_CONCAT_IMPL(a, b) a##b
#define AP3_OBS_CONCAT(a, b) AP3_OBS_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block:
///   AP3_SPAN("cpl:run:atm");
#define AP3_SPAN(name) \
  ::ap3::obs::Span AP3_OBS_CONCAT(ap3_obs_span_, __LINE__)(name)
