#include "grid/tripolar.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"

namespace ap3::grid {

using constants::kDegToRad;
using constants::kEarthRadiusM;
using constants::kPi;

TripolarConfig TripolarConfig::for_resolution_km(double km) {
  // Table 1 shapes: 1 km -> 36000 x 22018; scale inversely with resolution.
  TripolarConfig config;
  config.nx = static_cast<int>(std::lround(36000.0 / km));
  config.ny = static_cast<int>(std::lround(22018.0 / km));
  config.nz = 80;
  return config;
}

TripolarGrid::TripolarGrid(const TripolarConfig& config) : config_(config) {
  AP3_REQUIRE_MSG(config.nx >= 8 && config.ny >= 8 && config.nz >= 1,
                  "tripolar grid too small");
  depths_.resize(static_cast<size_t>(config.nz));
  // Stretched levels: dz grows geometrically from ~5 m to the abyss,
  // normalized to a 5500 m column (LICOM-like 80-level stack).
  const double ratio = 1.06;
  double dz = 5.0, z = 0.0, total = 0.0;
  std::vector<double> raw(static_cast<size_t>(config.nz));
  for (int k = 0; k < config.nz; ++k) {
    total += dz;
    raw[static_cast<size_t>(k)] = total;
    dz *= ratio;
  }
  const double scale = 5500.0 / total;
  for (int k = 0; k < config.nz; ++k) {
    z = raw[static_cast<size_t>(k)] * scale;
    depths_[static_cast<size_t>(k)] = z;
  }
  build_bathymetry();
}

double TripolarGrid::lon_deg(int i) const {
  return (static_cast<double>(i) + 0.5) * 360.0 / config_.nx;
}

double TripolarGrid::lat_deg(int j) const {
  const double span = config_.lat_north - config_.lat_south;
  return config_.lat_south + (static_cast<double>(j) + 0.5) * span / config_.ny;
}

double TripolarGrid::cell_area(int i, int j) const {
  (void)i;
  const double dlon = 2.0 * kPi / config_.nx;
  const double dlat =
      (config_.lat_north - config_.lat_south) * kDegToRad / config_.ny;
  const double coslat = std::cos(lat_deg(j) * kDegToRad);
  return kEarthRadiusM * kEarthRadiusM * dlon * dlat *
         (coslat < 0.01 ? 0.01 : coslat);
}

namespace {
constexpr double kLandThreshold = 0.62;
}  // namespace

double continent_field(double lon_rad, double lat_rad, std::uint64_t seed) {
  std::uint64_t s = seed;
  const double p1 = ap3::splitmix64(s) * 0x1.0p-64 * 2.0 * kPi;
  const double p2 = ap3::splitmix64(s) * 0x1.0p-64 * 2.0 * kPi;
  const double p3 = ap3::splitmix64(s) * 0x1.0p-64 * 2.0 * kPi;
  const double p4 = ap3::splitmix64(s) * 0x1.0p-64 * 2.0 * kPi;
  double f = 0.0;
  f += 1.00 * std::sin(2.0 * lon_rad + p1) * std::cos(1.7 * lat_rad + 0.3);
  f += 0.70 * std::sin(3.0 * lon_rad + p2) * std::sin(2.3 * lat_rad + p3);
  f += 0.55 * std::cos(5.0 * lon_rad + p4) * std::cos(3.1 * lat_rad);
  f += 0.40 * std::sin(7.0 * lon_rad - p3) * std::sin(4.7 * lat_rad + p1);
  // Polar caps: Antarctica-like land in the far south, an Arctic basin rim.
  f += 2.2 * std::exp(-std::pow((lat_rad * constants::kRadToDeg + 84.0) / 7.0, 2));
  return f;
}

bool is_land_at(double lon_rad, double lat_rad, std::uint64_t seed) {
  return continent_field(lon_rad, lat_rad, seed) > kLandThreshold;
}

void TripolarGrid::build_bathymetry() {
  kmt_.assign(static_cast<size_t>(horizontal_points()), 0);
  // Threshold tuned so the ocean surface fraction lands near Earth's 0.71
  // and the 3-D active fraction near 0.70 (the paper removes ~30 %).
  const double threshold = kLandThreshold;
  for (int j = 0; j < config_.ny; ++j) {
    for (int i = 0; i < config_.nx; ++i) {
      const double lon = lon_deg(i) * kDegToRad;
      const double lat = lat_deg(j) * kDegToRad;
      const double f = continent_field(lon, lat, config_.land_seed);
      if (f > threshold) {
        kmt_[index(i, j)] = 0;  // land
        continue;
      }
      // Ocean: depth shoals near coasts (f near threshold -> shelf) and is
      // full elsewhere; a secondary harmonic adds ridges/basins.
      const double coast = (threshold - f) / 1.4;  // 0 at coast, ~1 offshore
      const double ridges =
          0.25 * std::sin(9.0 * lon + 1.3) * std::cos(6.0 * lat - 0.7);
      double frac = coast + 0.55 + ridges;
      if (frac < 0.02) frac = 0.02;
      if (frac > 1.0) frac = 1.0;
      int levels = static_cast<int>(std::lround(frac * config_.nz));
      if (levels < 1) levels = 1;
      if (levels > config_.nz) levels = config_.nz;
      kmt_[index(i, j)] = levels;
    }
  }
}

double TripolarGrid::ocean_surface_fraction() const {
  std::int64_t ocean = 0;
  for (int value : kmt_)
    if (value > 0) ++ocean;
  return static_cast<double>(ocean) /
         static_cast<double>(horizontal_points());
}

std::int64_t TripolarGrid::active_points() const {
  std::int64_t active = 0;
  for (int value : kmt_) active += value;
  return active;
}

double TripolarGrid::active_volume_fraction() const {
  return static_cast<double>(active_points()) /
         static_cast<double>(total_points());
}

}  // namespace ap3::grid
