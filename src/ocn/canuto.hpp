// Canuto-style vertical mixing parameterization.
//
// The real Canuto scheme computes turbulence closure diffusivities from the
// Richardson number; it was the first LICOM kernel to receive the 3-D
// non-ocean-point exclusion optimization (§5.2.2), which this module also
// supports: compute over a compact active-column list or over the full grid,
// with bitwise-identical results on ocean points.
//
// Diffusivity model: kv = kv_background + kv0 / (1 + 5·Ri)²  for Ri ≥ 0,
// and the convective value kv_conv where the column is statically unstable
// (Ri < 0). Ri = N² / (S² + eps).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ocn/eos.hpp"

namespace ap3::ocn {

struct CanutoConfig {
  double kv_background = 1e-5;  ///< [m²/s]
  double kv0 = 5e-3;
  double kv_convective = 0.1;
  double shear_eps = 1e-10;     ///< [1/s²] shear floor
};

/// One column's inputs: temperature/salinity/velocities on `nz` levels plus
/// the level interface spacings dz (size nz-1, distance between level
/// centers).
struct MixingColumn {
  std::span<const double> temp;   ///< [°C]
  std::span<const double> salt;   ///< [psu]
  std::span<const double> u, v;   ///< [m/s]
  std::span<const double> dz;     ///< [m], size nz-1
  int active_levels = 0;          ///< kmt of this column
};

class CanutoMixing {
 public:
  explicit CanutoMixing(CanutoConfig config = {}, LinearEos eos = {});

  /// Interface diffusivities kv[k] between levels k and k+1 (size nz-1);
  /// interfaces below the column's kmt get zero.
  void diffusivities(const MixingColumn& column, std::span<double> kv) const;

  /// Richardson number at one interface (exposed for tests).
  double richardson(double drho_dz, double du_dz, double dv_dz) const;

  /// Scalar flops per interface (perf-model input).
  static double flops_per_interface() { return 30.0; }

 private:
  CanutoConfig config_;
  LinearEos eos_;
};

}  // namespace ap3::ocn
