file(REMOVE_RECURSE
  "../bench/bench_fig7_typhoon_track"
  "../bench/bench_fig7_typhoon_track.pdb"
  "CMakeFiles/bench_fig7_typhoon_track.dir/bench_fig7_typhoon_track.cpp.o"
  "CMakeFiles/bench_fig7_typhoon_track.dir/bench_fig7_typhoon_track.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_typhoon_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
