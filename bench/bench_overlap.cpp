// Benchmark: communication/computation overlap in the coupled phase loop.
//
// Runs the same toy coupled configuration with CoupledConfig::overlap off and
// on, fault-free and under a delay-heavy fault plan, and reports wall time per
// coupling window plus the collective state hash for each run. The hash is the
// bit-exactness witness: overlap must not change a single bit of the coupled
// state, faults or not.
//
// Where the win comes from on this transport: a delayed message matures when
// further deliveries land in the same mailbox, or when the receiver's retry
// timeout flushes it. With overlap off, the rearrange waits at the point of
// call with nothing else in flight, so delayed packets can only mature via
// timeout sleeps sitting on the critical path. With overlap on,
// rearrange_begin posts the exchange before the window's regrid work; the
// regrids' own collective traffic ages the delayed packets in the background
// (each delivery wakes the waiter), and rearrange_end usually finds the data
// already in sequence. The delay plan uses FaultConfig's tag window to
// perturb only the rearrange traffic (tag 9300), so the measured stall is
// exactly the kind the overlap machinery exists to hide — component halo
// exchanges run clean in both modes. Fault-free numbers are reported too —
// on a single-core host there is little to hide there, and the JSON says so
// honestly.
//
// Prints a table and writes BENCH_overlap.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>

#include "coupler/driver.hpp"
#include "fault/fault.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

constexpr int kRanks = 4;
constexpr int kReps = 3;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

cpl::CoupledConfig bench_config(bool overlap) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 1;
  config.overlap = overlap;
  return config;
}

/// Delay-only plan: no drops, no duplicates — every perturbation is a delayed
/// delivery that must mature via later traffic or a receiver-timeout flush.
fault::FaultConfig delay_plan() {
  fault::FaultConfig plan;
  plan.seed = 0xbe9c4ULL;
  plan.delay_rate = 0.6;
  plan.delay_deliveries = 3;
  plan.retry_timeout_microseconds = 20000;
  // Target the coupler's rearrange traffic (mct uses tag 9300): component
  // halo exchanges run clean, so the measured stall is exactly the kind the
  // overlap machinery is built to hide.
  plan.tag_min = 9300;
  plan.tag_max = 9399;
  return plan;
}

struct RunResult {
  double best_seconds = 1e300;
  std::uint64_t state_hash = 0;
};

/// One timed run: wall time over `windows` coupled windows plus the final
/// collective state hash (identical across reps — the whole run is
/// deterministic by construction).
RunResult run_once(bool overlap, bool faulty, int windows) {
  std::atomic<double> wall{0.0};
  std::atomic<std::uint64_t> hash{0};
  const auto body = [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, bench_config(overlap));
    comm.barrier();
    const double t0 = now_seconds();
    model.run_windows(windows);
    comm.barrier();
    const double t1 = now_seconds();
    const std::uint64_t h = model.state_hash();  // collective
    if (comm.rank() == 0) {
      wall = t1 - t0;
      hash = h;
    }
  };
  if (faulty) {
    par::WorldOptions options;
    options.fault = delay_plan();
    par::run(kRanks, options, body);
  } else {
    par::run(kRanks, body);
  }
  return {wall.load(), hash.load()};
}

}  // namespace

int main() {
  const int windows = 12;

  std::printf("coupled overlap benchmark: %d ranks, %d windows, best of %d\n\n",
              kRanks, windows, kReps);

  struct Cell {
    const char* condition;
    bool faulty;
    RunResult off, on;
  };
  Cell cells[] = {{"fault_free", false, {}, {}},
                  {"delay_plan", true, {}, {}}};

  std::printf("  %-12s %14s %14s %9s %10s\n", "condition", "overlap off [s]",
              "overlap on [s]", "speedup", "bit-exact");
  for (Cell& cell : cells) {
    // Interleave the off/on runs rep by rep so ambient machine drift hits
    // both modes equally; best-of-kReps per mode on top of that.
    for (int rep = 0; rep < kReps; ++rep) {
      const RunResult off = run_once(/*overlap=*/false, cell.faulty, windows);
      const RunResult on = run_once(/*overlap=*/true, cell.faulty, windows);
      cell.off.best_seconds = std::min(cell.off.best_seconds, off.best_seconds);
      cell.on.best_seconds = std::min(cell.on.best_seconds, on.best_seconds);
      cell.off.state_hash = off.state_hash;
      cell.on.state_hash = on.state_hash;
    }
    const double speedup = cell.off.best_seconds / cell.on.best_seconds;
    const bool exact = cell.off.state_hash == cell.on.state_hash;
    std::printf("  %-12s %14.4f %14.4f %8.3fx %10s\n", cell.condition,
                cell.off.best_seconds, cell.on.best_seconds, speedup,
                exact ? "yes" : "NO");
    if (!exact) {
      std::fprintf(stderr,
                   "error: overlap changed the coupled state under %s "
                   "(%016llx vs %016llx)\n",
                   cell.condition,
                   static_cast<unsigned long long>(cell.off.state_hash),
                   static_cast<unsigned long long>(cell.on.state_hash));
      return 1;
    }
  }

  const double headline =
      cells[1].off.best_seconds / cells[1].on.best_seconds;
  std::printf("\nheadline (delay plan): %.3fx from posting exchanges before "
              "the regrid window\n",
              headline);

  FILE* f = std::fopen("BENCH_overlap.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"ranks\": %d,\n  \"windows\": %d,\n  \"cases\": [\n",
                 kRanks, windows);
    for (std::size_t c = 0; c < 2; ++c) {
      const Cell& cell = cells[c];
      std::fprintf(
          f,
          "    {\"condition\": \"%s\", \"overlap_off_seconds\": %.6f, "
          "\"overlap_on_seconds\": %.6f, \"speedup\": %.4f, "
          "\"state_hash_equal\": %s}%s\n",
          cell.condition, cell.off.best_seconds, cell.on.best_seconds,
          cell.off.best_seconds / cell.on.best_seconds,
          cell.off.state_hash == cell.on.state_hash ? "true" : "false",
          c + 1 < 2 ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"delay_plan_speedup\": %.4f\n"
                 "}\n",
                 headline);
    std::fclose(f);
    std::printf("wrote BENCH_overlap.json\n");
  }
  return 0;
}
