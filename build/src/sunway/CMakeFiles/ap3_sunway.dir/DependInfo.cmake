
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sunway/athread.cpp" "src/sunway/CMakeFiles/ap3_sunway.dir/athread.cpp.o" "gcc" "src/sunway/CMakeFiles/ap3_sunway.dir/athread.cpp.o.d"
  "/root/repo/src/sunway/coregroup.cpp" "src/sunway/CMakeFiles/ap3_sunway.dir/coregroup.cpp.o" "gcc" "src/sunway/CMakeFiles/ap3_sunway.dir/coregroup.cpp.o.d"
  "/root/repo/src/sunway/ldm.cpp" "src/sunway/CMakeFiles/ap3_sunway.dir/ldm.cpp.o" "gcc" "src/sunway/CMakeFiles/ap3_sunway.dir/ldm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/ap3_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
