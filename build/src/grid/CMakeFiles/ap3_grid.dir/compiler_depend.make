# Empty compiler generated dependencies file for ap3_grid.
# This may be replaced when dependencies are built.
