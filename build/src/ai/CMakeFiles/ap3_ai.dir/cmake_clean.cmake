file(REMOVE_RECURSE
  "CMakeFiles/ap3_ai.dir/models.cpp.o"
  "CMakeFiles/ap3_ai.dir/models.cpp.o.d"
  "CMakeFiles/ap3_ai.dir/normalizer.cpp.o"
  "CMakeFiles/ap3_ai.dir/normalizer.cpp.o.d"
  "CMakeFiles/ap3_ai.dir/suite.cpp.o"
  "CMakeFiles/ap3_ai.dir/suite.cpp.o.d"
  "CMakeFiles/ap3_ai.dir/trainer.cpp.o"
  "CMakeFiles/ap3_ai.dir/trainer.cpp.o.d"
  "libap3_ai.a"
  "libap3_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
