file(REMOVE_RECURSE
  "../bench/bench_pp_portability"
  "../bench/bench_pp_portability.pdb"
  "CMakeFiles/bench_pp_portability.dir/bench_pp_portability.cpp.o"
  "CMakeFiles/bench_pp_portability.dir/bench_pp_portability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pp_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
