// Regenerates Table 1: the grid configurations of GRIST, LICOM, and AP3ESM
// at the paper's five resolutions, from this repository's grid generators.
#include <cstdio>

#include "grid/icosahedral.hpp"
#include "grid/tripolar.hpp"

int main() {
  using namespace ap3::grid;

  std::printf("Table 1 — AP3ESM configurations (regenerated)\n");
  std::printf("==============================================\n\n");

  struct AtmRow {
    double km;
    double paper_cells, paper_edges, paper_verts, paper_grids;
  };
  const AtmRow atm_rows[] = {
      {1.0, 3.4e8, 5.0e8, 1.7e8, 8.6e9},  {3.0, 4.2e7, 1.3e8, 8.4e7, 2.1e9},
      {6.0, 1.1e7, 3.2e7, 2.1e7, 5.4e8},  {10.0, 2.6e6, 7.9e6, 5.2e6, 1.9e8},
      {25.0, 6.7e5, 2.0e6, 1.3e6, 3.1e7}};

  std::printf("GRIST (icosahedral, 30 levels):\n");
  std::printf("  res[km]      cells (paper)        edges (paper)     vertices"
              " (paper)   cells*30 (paper 'grids')\n");
  for (const AtmRow& row : atm_rows) {
    const IcosaCounts counts = IcosaCounts::for_grist_label_km(row.km);
    std::printf("  %6.0f   %9.3g (%6.2g)   %9.3g (%6.2g)   %9.3g (%6.2g)"
                "   %9.3g (%6.2g)\n",
                row.km, static_cast<double>(counts.cells), row.paper_cells,
                static_cast<double>(counts.edges), row.paper_edges,
                static_cast<double>(counts.vertices), row.paper_verts,
                static_cast<double>(counts.cells) * 30.0, row.paper_grids);
  }
  std::printf("  (V - E + F = 2 verified by the generator; counts follow\n"
              "   V = 10n^2+2, E = 30n^2, F = 20n^2 — the Table 1 2:3:1 "
              "signature)\n\n");

  struct OcnRow {
    double km;
    int paper_nx, paper_ny;
    double paper_grids;
  };
  const OcnRow ocn_rows[] = {{1.0, 36000, 22018, 6.3e10},
                             {2.0, 18000, 11511, 1.3e10}, // paper rounds ny
                             {3.0, 10800, 6907, 5.8e9},
                             {5.0, 7200, 4605, 2.1e9},
                             {10.0, 3600, 2302, 5.2e8}};
  std::printf("LICOM (tripolar, 80 levels):\n");
  std::printf("  res[km]    nx (paper)      ny (paper)      nx*ny*80 (paper)\n");
  for (const OcnRow& row : ocn_rows) {
    const TripolarConfig config = TripolarConfig::for_resolution_km(row.km);
    std::printf("  %6.0f   %6d (%6d)   %6d (%6d)   %9.3g (%6.2g)\n", row.km,
                config.nx, row.paper_nx, config.ny, row.paper_ny,
                static_cast<double>(config.nx) * config.ny * config.nz,
                row.paper_grids);
  }

  std::printf("\nAP3ESM pairs (total grid points = atm + ocn):\n");
  const struct {
    const char* label;
    double atm_km, ocn_km, paper_total;
  } pairs[] = {{"1v1", 1, 1, 7.2e10},
               {"3v2", 3, 2, 1.5e10},
               {"6v3", 6, 3, 6.3e9},
               {"10v5", 10, 5, 2.3e9},
               {"25v10", 25, 10, 5.5e8}};
  std::printf("  label      total (model)   total (paper)\n");
  for (const auto& pair : pairs) {
    const auto atm = IcosaCounts::for_grist_label_km(pair.atm_km);
    const auto ocn = TripolarConfig::for_resolution_km(pair.ocn_km);
    const double total = static_cast<double>(atm.cells) * 30.0 +
                         static_cast<double>(ocn.nx) * ocn.ny * ocn.nz;
    std::printf("  %-6s   %13.3g   %13.3g\n", pair.label, total,
                pair.paper_total);
  }
  return 0;
}
