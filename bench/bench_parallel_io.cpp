// §5.2.5 benchmark: parallel I/O — subfile partitioning, the group-scaled
// checkpoint codec, and streaming (async) checkpoints.
//
// Three sections, each with a hard witness (the benchmark exits 1 if a
// witness fails, so the numbers it prints cannot be quietly wrong):
//
//   1. subfile sweep — single-file baseline vs 2/4/8 subfiles, round-trip
//      verified.
//   2. codec — fp64 vs group-scaled record bytes (expected ≈ 2x saved),
//      restored values within the ULP bound, and a probe proving an
//      unmeetable bound hard-fails instead of writing a bad snapshot.
//   3. streaming — a coupled model checkpoints under a synthetic slow-disk
//      knob, sync vs async. The async path must hide > 50% of the sync
//      wall time behind the following simulation windows, AND stay
//      bit-exact: the async run's 2N state hash equals the sync run's, and
//      restoring the async snapshot + N more windows reproduces it.
//
// Results land in BENCH_io.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "coupler/driver.hpp"
#include "io/checkpoint.hpp"
#include "io/subfile.hpp"
#include "par/comm.hpp"
#include "precision/group_scaled.hpp"

namespace {

using namespace ap3;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    total += static_cast<std::uint64_t>(entry.file_size());
  return total;
}

// ---- 1. subfile sweep ------------------------------------------------------

struct IoTiming {
  double write_seconds = 0.0;
  double read_seconds = 0.0;
  bool verified = false;
};

IoTiming run_case(int num_subfiles, std::int64_t points_per_rank) {
  static IoTiming timing;
  timing = IoTiming{};
  const int nranks = 8;
  const std::string base = "/tmp/ap3_bench_io";
  par::run(nranks, [&](par::Comm& comm) {
    io::FieldData mine;
    for (std::int64_t k = 0; k < points_per_rank; ++k) {
      mine.ids.push_back(comm.rank() * points_per_rank + k);
      mine.values.push_back(0.001 * static_cast<double>(k) + comm.rank());
    }

    comm.barrier();
    const auto w0 = Clock::now();
    if (num_subfiles == 0) {
      io::write_single(comm, base + ".bin", mine);
    } else {
      io::write_subfiles(comm, {base, num_subfiles}, mine);
    }
    comm.barrier();
    const auto w1 = Clock::now();

    io::FieldData back;
    if (num_subfiles == 0) {
      back = io::read_single(comm, base + ".bin", mine.ids);
    } else {
      back = io::read_subfiles(comm, {base, num_subfiles}, mine.ids);
    }
    comm.barrier();
    const auto r1 = Clock::now();

    const bool ok = back.values == mine.values;
    if (comm.rank() == 0) {
      timing.write_seconds = std::chrono::duration<double>(w1 - w0).count();
      timing.read_seconds = std::chrono::duration<double>(r1 - w1).count();
      timing.verified = ok;
    }
  });
  std::remove((base + ".bin").c_str());
  for (int k = 0; k < 8; ++k)
    std::remove((base + "." + std::to_string(k) + ".bin").c_str());
  return timing;
}

// ---- 2. codec --------------------------------------------------------------

struct CodecResult {
  std::uint64_t bytes_fp64 = 0;
  std::uint64_t bytes_gs = 0;
  std::uint64_t max_ulp = 0;
  std::uint64_t ulp_bound = 0;
  bool within_bound = false;
  bool hard_fail_caught = false;
};

CodecResult run_codec_section() {
  static CodecResult result;
  result = CodecResult{};
  const std::string base = "/tmp/ap3_bench_io_codec";
  par::run(4, [&](par::Comm& comm) {
    io::FieldData mine;
    for (std::int64_t k = 0; k < 100000; ++k) {
      mine.ids.push_back(comm.rank() * 100000 + k);
      // Full fp64 mantissas so the fp32 payload is genuinely lossy.
      mine.values.push_back((comm.rank() + 1) * 3.14159265358979311600 *
                            (k + 1) / (k % 97 + 3));
    }

    io::SubfileConfig fp64{base + "_64", 2};
    io::SubfileConfig gs{base + "_gs", 2};
    gs.codec.codec = io::Codec::kGroupScaled;
    const auto bytes_fp64 = io::write_subfiles(comm, fp64, mine);
    const auto bytes_gs = io::write_subfiles(comm, gs, mine);
    const io::FieldData back = io::read_subfiles(comm, gs, mine.ids);
    std::uint64_t max_ulp = 0;
    for (std::size_t i = 0; i < mine.values.size(); ++i)
      max_ulp = std::max(
          max_ulp, precision::ulp_distance(back.values[i], mine.values[i]));

    // Probe: a bound of zero demands losslessness fp32 cannot deliver; the
    // WRITE must refuse (on every rank — the failure fold is collective).
    io::SubfileConfig impossible{base + "_p", 2};
    impossible.codec.codec = io::Codec::kGroupScaled;
    impossible.codec.ulp_bound = 0;
    bool caught = false;
    try {
      io::write_subfiles(comm, impossible, mine);
    } catch (const ap3::Error&) {
      caught = true;
    }

    const auto total_fp64 = static_cast<std::uint64_t>(comm.allreduce_value(
        static_cast<double>(bytes_fp64), par::ReduceOp::kSum));
    const auto total_gs = static_cast<std::uint64_t>(comm.allreduce_value(
        static_cast<double>(bytes_gs), par::ReduceOp::kSum));
    max_ulp = static_cast<std::uint64_t>(comm.allreduce_value(
        static_cast<double>(max_ulp), par::ReduceOp::kMax));
    if (comm.rank() == 0) {
      result.bytes_fp64 = total_fp64;
      result.bytes_gs = total_gs;
      result.max_ulp = max_ulp;
      result.ulp_bound = gs.codec.ulp_bound;
      result.within_bound = max_ulp <= gs.codec.ulp_bound;
      result.hard_fail_caught = caught;
    }
  });
  for (const char* suffix : {"_64", "_gs", "_p"})
    for (int k = 0; k < 2; ++k)
      std::remove(
          (base + suffix + "." + std::to_string(k) + ".bin").c_str());
  return result;
}

// ---- 3. streaming checkpoints ----------------------------------------------

cpl::CoupledConfig bench_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 2;
  config.checkpoint.num_subfiles = 2;
  // Synthetic slow disk: every MB written sleeps this long, standing in for
  // a parallel file system under load. The async path must hide it.
  config.checkpoint.slow_disk_seconds_per_mb = 0.15;
  return config;
}

struct AsyncResult {
  double sync_ckpt_seconds = 0.0;   // full blocking checkpoint
  double async_begin_seconds = 0.0; // checkpoint_async() call (gather only)
  double async_wait_seconds = 0.0;  // fence after N overlapped windows
  double hidden_fraction = 0.0;
  bool hashes_match = false;        // sync 2N == async 2N == restore+N
};

AsyncResult run_async_section() {
  static AsyncResult result;
  result = AsyncResult{};
  const cpl::CoupledConfig config = bench_config();
  const std::string sync_dir = "/tmp/ap3_bench_io_sync";
  const std::string async_dir = "/tmp/ap3_bench_io_async";
  constexpr int kWindows = 4;

  static std::uint64_t sync_end_hash;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(kWindows);
    comm.barrier();
    const auto t0 = Clock::now();
    model.checkpoint(sync_dir);
    comm.barrier();
    const double t_sync = seconds_since(t0);
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) {
      result.sync_ckpt_seconds = t_sync;
      sync_end_hash = end;
    }
  });

  static std::uint64_t async_end_hash;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(kWindows);
    comm.barrier();
    const auto t0 = Clock::now();
    model.checkpoint_async(async_dir);
    comm.barrier();
    const double t_begin = seconds_since(t0);
    model.run_windows(kWindows);  // the write drains behind these windows
    const auto t1 = Clock::now();
    model.checkpoint_wait();
    comm.barrier();
    const double t_wait = seconds_since(t1);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) {
      result.async_begin_seconds = t_begin;
      result.async_wait_seconds = t_wait;
      async_end_hash = end;
    }
  });

  static std::uint64_t restored_end_hash;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.restore(async_dir);
    model.run_windows(kWindows);
    const std::uint64_t end = model.state_hash();
    if (comm.rank() == 0) restored_end_hash = end;
  });

  result.hidden_fraction =
      1.0 - (result.async_begin_seconds + result.async_wait_seconds) /
                result.sync_ckpt_seconds;
  result.hashes_match =
      sync_end_hash == async_end_hash && async_end_hash == restored_end_hash;

  std::filesystem::remove_all(sync_dir);
  std::filesystem::remove_all(async_dir);
  return result;
}

struct GsRestartResult {
  std::uint64_t bytes_fp64 = 0;
  std::uint64_t bytes_gs = 0;
  bool restored_within_bound = false;
};

// Group-scaled snapshots of the full coupled model: bytes saved on disk and
// a restore that must land within the codec's ULP bound on every field
// (the driver forces RNG/counter sections to fp64, so restore stays valid).
GsRestartResult run_gs_restart_section() {
  static GsRestartResult result;
  result = GsRestartResult{};
  const std::string dir64 = "/tmp/ap3_bench_io_ck64";
  const std::string dirgs = "/tmp/ap3_bench_io_ckgs";

  cpl::CoupledConfig config = bench_config();
  config.checkpoint.slow_disk_seconds_per_mb = 0.0;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(2);
    model.checkpoint(dir64);
    const auto original = model.local_checkpoint_sections();

    cpl::CoupledConfig gs_config = config;
    gs_config.checkpoint.codec.codec = io::Codec::kGroupScaled;
    cpl::CoupledModel twin(comm, gs_config);
    twin.run_windows(2);
    twin.checkpoint(dirgs);

    cpl::CoupledModel fresh(comm, gs_config);
    fresh.restore(dirgs);
    const auto restored = fresh.local_checkpoint_sections();
    bool ok = restored.size() == original.size();
    const std::uint64_t bound = gs_config.checkpoint.codec.ulp_bound;
    for (const auto& [name, data] : original) {
      const auto it = restored.find(name);
      if (it == restored.end() ||
          it->second.values.size() != data.values.size()) {
        ok = false;
        break;
      }
      for (std::size_t i = 0; i < data.values.size() && ok; ++i)
        ok = precision::ulp_distance(it->second.values[i], data.values[i]) <=
             bound;
      if (!ok) break;
    }
    const double all_ok = comm.allreduce_value(ok ? 1.0 : 0.0,
                                               par::ReduceOp::kMin);
    if (comm.rank() == 0) {
      result.bytes_fp64 = dir_bytes(dir64);
      result.bytes_gs = dir_bytes(dirgs);
      result.restored_within_bound = all_ok != 0.0;
    }
  });
  std::filesystem::remove_all(dir64);
  std::filesystem::remove_all(dirgs);
  return result;
}

}  // namespace

int main() {
  std::printf("§5.2.5 — parallel I/O: subfiles, codecs, streaming\n");
  std::printf("===================================================\n\n");
  bool failed = false;

  const std::int64_t points_per_rank = 200000;
  const double mb = 8.0 * points_per_rank * 2 * 8.0 / 1e6;  // ids + values
  std::printf("8 ranks x %lld points (%.0f MB total)\n\n",
              static_cast<long long>(points_per_rank), mb);
  std::printf("  layout        write [ms]   read [ms]   write MB/s   ok\n");
  IoTiming sweep[4];
  const int sweep_subfiles[4] = {0, 2, 4, 8};
  for (int c = 0; c < 4; ++c) {
    const IoTiming t = run_case(sweep_subfiles[c], points_per_rank);
    sweep[c] = t;
    char label[32];
    if (sweep_subfiles[c] == 0)
      std::snprintf(label, sizeof label, "single file");
    else
      std::snprintf(label, sizeof label, "%d subfiles", sweep_subfiles[c]);
    std::printf("  %-12s  %10.1f  %10.1f  %11.0f   %s\n", label,
                t.write_seconds * 1e3, t.read_seconds * 1e3,
                mb / t.write_seconds, t.verified ? "yes" : "NO");
    if (!t.verified) failed = true;
  }

  std::printf("\ngroup-scaled codec (fp32 payload + per-group fp64 scales)\n");
  const CodecResult codec = run_codec_section();
  const double ratio = static_cast<double>(codec.bytes_fp64) /
                       static_cast<double>(codec.bytes_gs);
  std::printf("  fp64 record bytes:  %llu\n",
              static_cast<unsigned long long>(codec.bytes_fp64));
  std::printf("  gs record bytes:    %llu  (%.2fx saved)\n",
              static_cast<unsigned long long>(codec.bytes_gs), ratio);
  std::printf("  max restore error:  %llu ULP (bound %llu) — %s\n",
              static_cast<unsigned long long>(codec.max_ulp),
              static_cast<unsigned long long>(codec.ulp_bound),
              codec.within_bound ? "within bound" : "VIOLATED");
  std::printf("  impossible-bound probe: %s\n",
              codec.hard_fail_caught ? "write refused (hard fail)"
                                     : "WRITE ACCEPTED — BUG");
  if (!codec.within_bound || !codec.hard_fail_caught) failed = true;
  if (ratio < 1.7 || ratio > 2.3) {
    std::printf("  bytes-saved ratio %.2f outside [1.7, 2.3]\n", ratio);
    failed = true;
  }

  std::printf("\nstreaming checkpoints (coupled model, synthetic slow disk)\n");
  const AsyncResult async = run_async_section();
  std::printf("  sync checkpoint:    %7.1f ms (blocks the step loop)\n",
              async.sync_ckpt_seconds * 1e3);
  std::printf("  async begin:        %7.1f ms (snapshot gather only)\n",
              async.async_begin_seconds * 1e3);
  std::printf("  async fence:        %7.1f ms (after overlapped windows)\n",
              async.async_wait_seconds * 1e3);
  std::printf("  hidden-write fraction: %.2f (acceptance: > 0.5)\n",
              async.hidden_fraction);
  std::printf("  state-hash witness: %s\n",
              async.hashes_match
                  ? "sync 2N == async 2N == restore(async)+N"
                  : "HASH MISMATCH — async checkpoint is not bit-exact");
  if (async.hidden_fraction <= 0.5 || !async.hashes_match) failed = true;

  std::printf("\ngroup-scaled coupled snapshot\n");
  const GsRestartResult gs = run_gs_restart_section();
  const double ck_ratio = static_cast<double>(gs.bytes_fp64) /
                          static_cast<double>(gs.bytes_gs);
  std::printf("  fp64 snapshot: %llu bytes, gs snapshot: %llu bytes "
              "(%.2fx saved)\n",
              static_cast<unsigned long long>(gs.bytes_fp64),
              static_cast<unsigned long long>(gs.bytes_gs), ck_ratio);
  std::printf("  restore within ULP bound on every rank: %s\n",
              gs.restored_within_bound ? "yes" : "NO");
  if (!gs.restored_within_bound) failed = true;

  FILE* f = std::fopen("BENCH_io.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (int c = 0; c < 4; ++c)
      std::fprintf(f,
                   "    {\"subfiles\": %d, \"write_ms\": %.3f, "
                   "\"read_ms\": %.3f, \"verified\": %s}%s\n",
                   sweep_subfiles[c], sweep[c].write_seconds * 1e3,
                   sweep[c].read_seconds * 1e3,
                   sweep[c].verified ? "true" : "false", c < 3 ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"codec\": {\"bytes_fp64\": %llu, \"bytes_gs\": %llu, "
                 "\"saved_ratio\": %.3f, \"max_ulp\": %llu, "
                 "\"ulp_bound\": %llu, \"hard_fail_caught\": %s},\n",
                 static_cast<unsigned long long>(codec.bytes_fp64),
                 static_cast<unsigned long long>(codec.bytes_gs), ratio,
                 static_cast<unsigned long long>(codec.max_ulp),
                 static_cast<unsigned long long>(codec.ulp_bound),
                 codec.hard_fail_caught ? "true" : "false");
    std::fprintf(f,
                 "  \"streaming\": {\"sync_ckpt_ms\": %.3f, "
                 "\"async_begin_ms\": %.3f, \"async_wait_ms\": %.3f, "
                 "\"hidden_fraction\": %.3f, \"bit_exact\": %s},\n",
                 async.sync_ckpt_seconds * 1e3,
                 async.async_begin_seconds * 1e3,
                 async.async_wait_seconds * 1e3, async.hidden_fraction,
                 async.hashes_match ? "true" : "false");
    std::fprintf(f,
                 "  \"gs_snapshot\": {\"bytes_fp64\": %llu, "
                 "\"bytes_gs\": %llu, \"saved_ratio\": %.3f, "
                 "\"restore_within_bound\": %s}\n}\n",
                 static_cast<unsigned long long>(gs.bytes_fp64),
                 static_cast<unsigned long long>(gs.bytes_gs), ck_ratio,
                 gs.restored_within_bound ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_io.json\n");
  }

  if (failed) {
    std::printf("\nBENCHMARK WITNESS FAILED\n");
    return 1;
  }
  std::printf("\nsubfiles split the aggregation fan-in, the group-scaled\n"
              "codec halves snapshot bytes within a proven ULP bound, and\n"
              "the async writer hides the remaining cost behind the next\n"
              "simulation windows — the paper's recipe for checkpointing\n"
              "kilometer-scale state without stalling the step loop.\n");
  return 0;
}
