# Empty compiler generated dependencies file for bench_parallel_io.
# This may be replaced when dependencies are built.
