// A small persistent worker pool backing the HostThreads execution space.
//
// parallel_for/reduce dispatch chunked index ranges to these workers; the
// pool is created once per process so repeated kernel launches (the model
// takes millions of timesteps) do not pay thread-spawn costs.
//
// Besides gang-style chunk execution the pool also serves a FIFO queue of
// detached tasks (`submit`), which is what pp::Stream builds its ordered
// async launches on. Gangs take priority over queued tasks: a worker always
// prefers claiming a chunk of the active gang to popping a task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ap3::pp {

class ThreadPool {
 public:
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(chunk_index) for chunk_index in [0, nchunks) across the pool and
  /// blocks until all chunks finished. Concurrent calls from different
  /// threads are serialized; re-entry from a thread already executing pool
  /// work (a worker, or a caller inside its own gang) is a hard error —
  /// callers that may be on a pool thread must check on_pool_thread() first
  /// and fall back to inline execution. If any chunk throws, the remaining
  /// unclaimed chunks are abandoned and the first exception is rethrown here.
  void run_chunks(std::size_t nchunks,
                  const std::function<void(std::size_t)>& fn);

  /// Enqueues a detached task on the FIFO queue. Tasks run on worker threads
  /// whenever no gang chunk is claimable and must not throw (pp::Stream wraps
  /// every stream task in its own exception capture). The destructor drains
  /// the queue before joining workers.
  void submit(std::function<void()> task);

  /// True when the calling thread is currently owned by *this* pool: a worker
  /// thread, or a caller thread inside its own run_chunks gang. Used by the
  /// dispatch layer to inline nested launches instead of deadlocking.
  bool on_pool_thread() const;

  /// Process-wide pool; sized from hardware_concurrency (at least 2 so the
  /// parallel pathway is genuinely exercised even on 1-CPU machines).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex gang_mutex_;  ///< serializes whole run_chunks calls
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_chunk_ = 0;
  std::size_t total_chunks_ = 0;
  std::size_t done_chunks_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr gang_error_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace ap3::pp
