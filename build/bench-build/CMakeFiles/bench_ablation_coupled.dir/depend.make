# Empty dependencies file for bench_ablation_coupled.
# This may be replaced when dependencies are built.
