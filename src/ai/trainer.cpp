#include "ai/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace ap3::ai {

using tensor::Tensor;

DataSplit DataSplit::make(std::size_t days, std::size_t steps_per_day,
                          std::uint64_t seed) {
  AP3_REQUIRE(days >= 8 && steps_per_day >= 1);
  DataSplit split;
  Rng rng(seed);
  // 7:1 over days: every 8th day is test.
  std::vector<bool> is_test_day(days, false);
  for (std::size_t d = 7; d < days; d += 8) is_test_day[d] = true;

  for (std::size_t d = 0; d < days; ++d) {
    if (is_test_day[d]) {
      for (std::size_t s = 0; s < steps_per_day; ++s)
        split.test.push_back(d * steps_per_day + s);
      continue;
    }
    // Three random steps per training day become validation samples.
    std::vector<std::size_t> val_steps;
    const std::size_t nval = std::min<std::size_t>(3, steps_per_day);
    while (val_steps.size() < nval) {
      const std::size_t s = rng.uniform_int(steps_per_day);
      if (std::find(val_steps.begin(), val_steps.end(), s) == val_steps.end())
        val_steps.push_back(s);
    }
    for (std::size_t s = 0; s < steps_per_day; ++s) {
      const bool is_val =
          std::find(val_steps.begin(), val_steps.end(), s) != val_steps.end();
      (is_val ? split.validation : split.train).push_back(d * steps_per_day + s);
    }
  }
  return split;
}

Tensor Trainer::gather_rows(const Tensor& data,
                            const std::vector<std::size_t>& rows) {
  AP3_REQUIRE(data.rank() >= 2);
  std::size_t row_size = 1;
  std::vector<std::size_t> shape = data.shape();
  for (std::size_t d = 1; d < shape.size(); ++d) row_size *= shape[d];
  shape[0] = rows.size();
  Tensor out(shape);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    AP3_REQUIRE(rows[r] < data.dim(0));
    std::copy(data.data() + rows[r] * row_size,
              data.data() + (rows[r] + 1) * row_size,
              out.data() + r * row_size);
  }
  return out;
}

TrainReport Trainer::fit(tensor::Sequential& model, const Tensor& inputs,
                         const Tensor& targets, const DataSplit& split,
                         const Options& options) {
  AP3_REQUIRE(inputs.dim(0) == targets.dim(0));
  AP3_REQUIRE_MSG(!split.train.empty(), "empty training split");
  tensor::Adam optimizer(model, {options.lr, 0.9f, 0.999f, 1e-8f});
  Rng rng(options.shuffle_seed);

  TrainReport report;
  std::vector<std::size_t> order = split.train;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic stream.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_int(i)]);

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t pos = 0; pos < order.size(); pos += options.batch) {
      const std::size_t end = std::min(pos + options.batch, order.size());
      const std::vector<std::size_t> rows(order.begin() + static_cast<std::ptrdiff_t>(pos),
                                          order.begin() + static_cast<std::ptrdiff_t>(end));
      const Tensor x = gather_rows(inputs, rows);
      const Tensor y = gather_rows(targets, rows);
      model.zero_grads();
      const Tensor pred = model.forward(x);
      epoch_loss += tensor::mse(pred, y);
      model.backward(tensor::mse_grad(pred, y));
      optimizer.step();
      ++batches;
    }
    report.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
  }
  report.final_train_loss = report.epoch_losses.back();

  if (!split.validation.empty()) {
    const Tensor x = gather_rows(inputs, split.validation);
    const Tensor y = gather_rows(targets, split.validation);
    report.validation_loss = tensor::mse(model.forward(x), y);
  }
  if (!split.test.empty())
    report.test_r2 = evaluate_r2(model, inputs, targets, split.test);
  return report;
}

float Trainer::evaluate_r2(tensor::Sequential& model, const Tensor& inputs,
                           const Tensor& targets,
                           const std::vector<std::size_t>& rows) {
  AP3_REQUIRE(!rows.empty());
  const Tensor x = gather_rows(inputs, rows);
  const Tensor y = gather_rows(targets, rows);
  const Tensor pred = model.forward(x);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y[i];
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (static_cast<double>(pred[i]) - y[i]) *
              (static_cast<double>(pred[i]) - y[i]);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0f : 0.0f;
  return static_cast<float>(1.0 - ss_res / ss_tot);
}

}  // namespace ap3::ai
