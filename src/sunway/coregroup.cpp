#include "sunway/coregroup.hpp"

#include <algorithm>

namespace ap3::sunway {

double CoreGroup::predict(const KernelWork& work, ExecTarget target) {
  if (target == ExecTarget::kMpe) {
    // One management core: flops-bound, memory traffic hidden behind the low
    // compute rate. Tensor (AI) flops see no special units on the MPE.
    return (work.flops + work.ai_flops) / (kMpeGflops * 1e9);
  }
  // CPE cluster: compute on 64 CPEs; data must be staged through DMA. The
  // slower of compute and DMA dominates (they overlap via double buffering,
  // the standard swLICOM/LICOMK++ optimization), plus a fixed spawn cost.
  // AI (tensor) flops run ~2.5x the scalar rate, reflecting the paper's point
  // that matmul-shaped work reaches much higher fractions of peak.
  const double compute = work.flops / (kCpeClusterGflops * 1e9) +
                         work.ai_flops / (2.5 * kCpeClusterGflops * 1e9);
  const double dma = work.bytes / (kDmaBandwidthGBs * 1e9);
  const double spawn = 6.0e-6;  // athread_spawn/join round trip
  return std::max(compute, dma) + spawn;
}

double CoreGroup::charge(const KernelWork& work, ExecTarget target) {
  const double secs = predict(work, target);
  seconds_ += secs;
  ++kernels_;
  return secs;
}

double orise_gpu_seconds(const KernelWork& work) {
  // HIP kernel: tensor units help AI flops; PCIe staging only for the halo
  // fraction of bytes (fields resident on device), folded into `bytes` by the
  // caller. Launch overhead per kernel.
  const double compute = work.flops / (kOriseGpuGflops * 1e9) +
                         work.ai_flops / (4.0 * kOriseGpuGflops * 1e9);
  const double hbm = work.bytes / (900.0 * 1e9);  // device memory bandwidth
  const double launch = 8.0e-6;
  return std::max(compute, hbm) + launch;
}

}  // namespace ap3::sunway
