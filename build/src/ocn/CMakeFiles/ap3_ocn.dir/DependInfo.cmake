
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocn/canuto.cpp" "src/ocn/CMakeFiles/ap3_ocn.dir/canuto.cpp.o" "gcc" "src/ocn/CMakeFiles/ap3_ocn.dir/canuto.cpp.o.d"
  "/root/repo/src/ocn/model.cpp" "src/ocn/CMakeFiles/ap3_ocn.dir/model.cpp.o" "gcc" "src/ocn/CMakeFiles/ap3_ocn.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/ap3_par.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/ap3_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ap3_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/ap3_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/ap3_precision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
