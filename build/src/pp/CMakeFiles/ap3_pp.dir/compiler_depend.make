# Empty compiler generated dependencies file for ap3_pp.
# This may be replaced when dependencies are built.
