#include "atm/model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::atm {

using constants::kDegToRad;
using constants::kPi;
using constants::kSecondsPerDay;

namespace {
constexpr double kRhoAir = 1.2;
constexpr double kDragCd = 1.3e-3;
}  // namespace

AtmModel::AtmModel(const par::Comm& comm, const AtmConfig& config,
                   const grid::IcosahedralGrid& mesh)
    : comm_(comm), config_(config) {
  dycore_ = std::make_unique<Dycore>(comm, config, mesh);
  physics_ = std::make_unique<ConventionalPhysics>();

  const LocalMesh& local = dycore_->mesh();
  std::vector<std::int64_t> owned(local.num_owned());
  for (std::size_t c = 0; c < owned.size(); ++c) owned[c] = local.global_id(c);
  gsmap_ = mct::GlobalSegMap::build(comm, owned);

  land_ = std::make_unique<lnd::LandModel>(local.num_owned());
  land_mask_.resize(local.num_owned());
  tskin_.resize(local.num_owned());
  sst_.resize(local.num_owned());
  ifrac_.assign(local.num_owned(), 0.0);
  gsw_.assign(local.num_owned(), 0.0);
  glw_.assign(local.num_owned(), 0.0);
  precip_.assign(local.num_owned(), 0.0);
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    land_mask_[c] =
        grid::is_land_at(local.lon_rad(c), local.lat_rad(c), config.seed);
    const double coslat = std::cos(local.lat_rad(c));
    sst_[c] = 271.5 + 28.0 * coslat * coslat;  // default climatological SST
    tskin_[c] = land_mask_[c] ? 285.0 : sst_[c];
  }

  if (config_.stall_seconds_per_point > 0.0 && config_.stall_cell_begin >= 0)
    for (std::size_t c = 0; c < local.num_owned(); ++c)
      if (local.global_id(c) >= config_.stall_cell_begin) ++stall_points_;
}

std::vector<std::string> AtmModel::export_fields() {
  return {"taux", "tauy", "tbot", "qbot", "ps", "gsw", "glw", "precip"};
}

std::vector<std::string> AtmModel::import_fields() { return {"sst", "ifrac"}; }

void AtmModel::set_physics(std::unique_ptr<PhysicsSuite> suite) {
  AP3_REQUIRE(suite != nullptr);
  physics_ = std::move(suite);
}

double AtmModel::surface_pressure(std::size_t owned) const {
  // The shallow-water thickness plays the role of column mass.
  return 101325.0 * dycore_->state().h[owned] / config_.mean_depth_m;
}

double AtmModel::cos_zenith(std::size_t owned, double t_seconds) const {
  const LocalMesh& local = dycore_->mesh();
  const double day_of_year =
      std::fmod(t_seconds / kSecondsPerDay, constants::kDaysPerYear);
  const double declination =
      23.44 * kDegToRad *
      std::sin(2.0 * kPi * (day_of_year - 80.0) / constants::kDaysPerYear);
  const double hour_angle = 2.0 * kPi * std::fmod(t_seconds, kSecondsPerDay) /
                                kSecondsPerDay +
                            local.lon_rad(owned) - kPi;
  const double lat = local.lat_rad(owned);
  const double mu = std::sin(lat) * std::sin(declination) +
                    std::cos(lat) * std::cos(declination) * std::cos(hour_angle);
  return mu > 0.0 ? mu : 0.0;
}

void AtmModel::run(double start_seconds, double duration_seconds) {
  const double dt_model = config_.model_dt_seconds();
  const double steps_exact = duration_seconds / dt_model;
  const auto nsteps = static_cast<long long>(std::lround(steps_exact));
  AP3_REQUIRE_MSG(std::abs(steps_exact - static_cast<double>(nsteps)) < 1e-6 &&
                      nsteps >= 1,
                  "coupling window " << duration_seconds
                                     << " s is not a multiple of the model "
                                        "step "
                                     << dt_model << " s");
  for (long long s = 0; s < nsteps; ++s) {
    model_step(start_seconds + static_cast<double>(s) * dt_model);
    if (stall_points_ > 0) {
      const double stall_seconds =
          config_.stall_seconds_per_point * static_cast<double>(stall_points_);
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_seconds));
      // Export the busy time so the load balancer can tell this rank is the
      // straggler even though phase barriers equalize wall-clock spans.
      obs::counter_add(busy_counter_key(), stall_seconds);
    }
  }
}

void AtmModel::model_step(double t_seconds) {
  const double dt_dyn = config_.dycore_dt_seconds();
  const double dt_tracer = config_.tracer_dt_seconds();
  const double dt_model = config_.model_dt_seconds();

  for (int i = 0; i < config_.dycore_substeps; ++i)
    dycore_->step_dynamics(dt_dyn);
  for (int j = 0; j < config_.tracer_substeps; ++j)
    dycore_->step_tracers(dt_tracer);
  apply_physics(t_seconds, dt_model);
  ++steps_;
}

void AtmModel::apply_physics(double t_seconds, double dt) {
  const LocalMesh& local = dycore_->mesh();
  DycoreState& state = dycore_->state();
  const std::size_t n = local.num_owned();
  const auto nlev = state.nlev;

  ColumnBatch batch(n, nlev);
  batch.dt = dt;
  for (std::size_t c = 0; c < n; ++c) {
    double u_east = 0.0, v_north = 0.0;
    dycore_->wind_at(c, u_east, v_north);
    const double ps = surface_pressure(c);
    for (std::size_t k = 0; k < nlev; ++k) {
      const std::size_t i = batch.at(c, k);
      const double depth =
          static_cast<double>(k + 1) / static_cast<double>(nlev);
      batch.u[i] = u_east;
      batch.v[i] = v_north;
      batch.temp[i] = state.temp[state.tq(c, k)];
      batch.q[i] = state.q[state.tq(c, k)];
      batch.pressure[i] = ps * std::pow(depth, 1.2) + 2000.0;
    }
    batch.tskin[c] = tskin_[c];
    batch.coszr[c] = cos_zenith(c, t_seconds);
  }

  physics_->compute(batch);

  for (std::size_t c = 0; c < n; ++c) {
    // Column tendencies back to the 3-D stacks.
    double du_mean = 0.0, dv_mean = 0.0;
    for (std::size_t k = 0; k < nlev; ++k) {
      const std::size_t i = batch.at(c, k);
      state.temp[state.tq(c, k)] += dt * batch.dtemp[i];
      double& q = state.q[state.tq(c, k)];
      q += dt * batch.dq[i];
      if (q < 0.0) q = 0.0;
      du_mean += batch.du[i];
      dv_mean += batch.dv[i];
    }
    du_mean /= static_cast<double>(nlev);
    dv_mean /= static_cast<double>(nlev);
    double u_east = 0.0, v_north = 0.0;
    dycore_->wind_at(c, u_east, v_north);
    dycore_->set_wind_at(c, u_east + dt * du_mean, v_north + dt * dv_mean);

    gsw_[c] = batch.gsw[c];
    glw_[c] = batch.glw[c];
    precip_[c] = batch.precip[c];

    // Directly-coupled land: radiation + precipitation in, skin state out.
    if (land_mask_[c]) {
      lnd::LandForcing forcing;
      forcing.gsw = gsw_[c];
      forcing.glw = glw_[c];
      forcing.t_air = batch.temp[batch.at(c, nlev - 1)];
      forcing.precip = precip_[c];
      const lnd::LandResponse response = land_->step_cell(c, dt, forcing);
      tskin_[c] = response.tskin;
    } else {
      tskin_[c] = ifrac_[c] * (constants::kSeawaterFreeze + constants::kT0) +
                  (1.0 - ifrac_[c]) * sst_[c];
    }
  }
}

void AtmModel::export_state(mct::AttrVect& a2x) const {
  const LocalMesh& local = dycore_->mesh();
  AP3_REQUIRE(a2x.num_points() == local.num_owned());
  auto taux = a2x.field("taux");
  auto tauy = a2x.field("tauy");
  auto tbot = a2x.field("tbot");
  auto qbot = a2x.field("qbot");
  auto ps = a2x.field("ps");
  auto gsw = a2x.field("gsw");
  auto glw = a2x.field("glw");
  auto precip = a2x.field("precip");
  const DycoreState& state = dycore_->state();
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    double u_east = 0.0, v_north = 0.0;
    dycore_->wind_at(c, u_east, v_north);
    const double speed = std::sqrt(u_east * u_east + v_north * v_north);
    taux[c] = kRhoAir * kDragCd * speed * u_east;
    tauy[c] = kRhoAir * kDragCd * speed * v_north;
    tbot[c] = state.temp[state.tq(c, state.nlev - 1)];
    qbot[c] = state.q[state.tq(c, state.nlev - 1)];
    ps[c] = surface_pressure(c);
    gsw[c] = gsw_[c];
    glw[c] = glw_[c];
    precip[c] = precip_[c];
  }
}

void AtmModel::import_state(const mct::AttrVect& x2a) {
  const LocalMesh& local = dycore_->mesh();
  AP3_REQUIRE(x2a.num_points() == local.num_owned());
  const auto sst = x2a.field("sst");
  const auto ifrac = x2a.field("ifrac");
  // Coldest physical SST: seawater freezing point at 35 psu, in Kelvin.
  const double sst_floor = constants::kSeawaterFreeze + constants::kT0;
  double rejected = 0.0;
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    // Values at or below 200 K are fill-value sentinels from unmapped source
    // cells, not temperatures: keep the previous cached SST and count the
    // rejection. Accepted values clamp to physical bounds (regridding can
    // overshoot slightly near coasts). Land cells ignore the import entirely.
    if (!land_mask_[c]) {
      if (sst[c] <= 200.0) {
        rejected += 1.0;
      } else {
        sst_[c] = std::clamp(sst[c], sst_floor, 320.0);
      }
    }
    ifrac_[c] = std::clamp(ifrac[c], 0.0, 1.0);
  }
  if (rejected > 0.0) obs::counter_add("atm:import:sst_rejected", rejected);
}

std::vector<std::string> AtmModel::checkpoint_section_names() {
  // Keep in checkpoint_sections() order.
  return {"atm.h",      "atm.vx",     "atm.vy",        "atm.vz",
          "atm.temp",   "atm.q",      "atm.tskin",     "atm.sst",
          "atm.ifrac",  "atm.gsw",    "atm.glw",       "atm.precip",
          "atm.lnd_tskin", "atm.lnd_water", "atm.steps"};
}

std::vector<io::Section> AtmModel::checkpoint_sections() const {
  const DycoreState& state = dycore_->state();
  std::vector<io::Section> out;
  out.push_back({"atm.h", io::local_field(state.h)});
  out.push_back({"atm.vx", io::local_field(state.vx)});
  out.push_back({"atm.vy", io::local_field(state.vy)});
  out.push_back({"atm.vz", io::local_field(state.vz)});
  out.push_back({"atm.temp", io::local_field(state.temp)});
  out.push_back({"atm.q", io::local_field(state.q)});
  out.push_back({"atm.tskin", io::local_field(tskin_)});
  out.push_back({"atm.sst", io::local_field(sst_)});
  out.push_back({"atm.ifrac", io::local_field(ifrac_)});
  out.push_back({"atm.gsw", io::local_field(gsw_)});
  out.push_back({"atm.glw", io::local_field(glw_)});
  out.push_back({"atm.precip", io::local_field(precip_)});
  out.push_back({"atm.lnd_tskin", io::local_field(land_->tskin_state())});
  out.push_back({"atm.lnd_water", io::local_field(land_->water_state())});
  out.push_back({"atm.steps", io::rank_scalar(comm_.rank(),
                                              static_cast<double>(steps_))});
  return out;
}

void AtmModel::restore_sections(const std::vector<io::Section>& sections) {
  DycoreState& state = dycore_->state();
  state.h = io::section_values(sections, "atm.h", state.h.size());
  state.vx = io::section_values(sections, "atm.vx", state.vx.size());
  state.vy = io::section_values(sections, "atm.vy", state.vy.size());
  state.vz = io::section_values(sections, "atm.vz", state.vz.size());
  state.temp = io::section_values(sections, "atm.temp", state.temp.size());
  state.q = io::section_values(sections, "atm.q", state.q.size());
  tskin_ = io::section_values(sections, "atm.tskin", tskin_.size());
  sst_ = io::section_values(sections, "atm.sst", sst_.size());
  ifrac_ = io::section_values(sections, "atm.ifrac", ifrac_.size());
  gsw_ = io::section_values(sections, "atm.gsw", gsw_.size());
  glw_ = io::section_values(sections, "atm.glw", glw_.size());
  precip_ = io::section_values(sections, "atm.precip", precip_.size());
  land_->set_state(
      io::section_values(sections, "atm.lnd_tskin", land_->ncells()),
      io::section_values(sections, "atm.lnd_water", land_->ncells()));
  steps_ = static_cast<long long>(io::section_values(sections, "atm.steps", 1)[0]);
}

double AtmModel::global_mean_precip() const {
  const LocalMesh& local = dycore_->mesh();
  double sum = 0.0, area = 0.0;
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    sum += precip_[c] * local.area_m2(c);
    area += local.area_m2(c);
  }
  const double gsum = comm_.allreduce_value(sum, par::ReduceOp::kSum);
  const double garea = comm_.allreduce_value(area, par::ReduceOp::kSum);
  return gsum / garea;
}

}  // namespace ap3::atm
