// SWGOMP emulation: directive-style loop offload for the atmosphere path.
//
// §5.1.1/§5.3: GRIST is accelerated by SWGOMP, a compiler plug-in that maps
// `!$omp target` loops onto Sunway CPEs. A C++ reproduction cannot use a
// Fortran compiler plug-in, so this header provides the same programming
// surface as a library: a target region wraps a conflict-free loop body and
// the runtime maps the loop space onto the worker cluster, counting offloaded
// regions so tests can assert the offload actually happened.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "pp/exec.hpp"

namespace ap3::pp::swgomp {

/// Schedule kinds supported by the emulated directive.
enum class Schedule { kStatic, kDynamic };

struct OffloadStats {
  std::uint64_t regions = 0;
  std::uint64_t iterations = 0;
};

namespace detail {
inline std::atomic<std::uint64_t>& region_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
inline std::atomic<std::uint64_t>& iteration_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

inline OffloadStats stats() {
  return {detail::region_counter().load(), detail::iteration_counter().load()};
}

inline void reset_stats() {
  detail::region_counter().store(0);
  detail::iteration_counter().store(0);
}

/// The `!$omp target teams distribute parallel do` analog: a conflict-free
/// loop over [0, n) offloaded to the worker cluster. `schedule` only affects
/// chunking; results are identical either way.
template <typename Body>
void target_parallel_for(const std::string& region_name, std::size_t n,
                         const Body& body,
                         Schedule schedule = Schedule::kStatic) {
  detail::region_counter().fetch_add(1, std::memory_order_relaxed);
  detail::iteration_counter().fetch_add(n, std::memory_order_relaxed);
  // The region name labels the launch span, so offloaded regions show up by
  // name in tree reports and Chrome traces (the GPTL-per-region discipline).
  parallel_for(RangePolicy(0, n)
                   .on(ExecSpace::kHostThreads)
                   .chunked(schedule == Schedule::kStatic ? 0 : 1)
                   .named(region_name),
               body);
}

/// Collapsed 2-D variant (`collapse(2)`).
template <typename Body>
void target_parallel_for2(const std::string& region_name, std::size_t n0,
                          std::size_t n1, const Body& body) {
  detail::region_counter().fetch_add(1, std::memory_order_relaxed);
  detail::iteration_counter().fetch_add(n0 * n1, std::memory_order_relaxed);
  MDRangePolicy2 policy{n0, n1};
  parallel_for(policy.on(ExecSpace::kHostThreads).named(region_name), body);
}

}  // namespace ap3::pp::swgomp
