// Hash-based kernel registration and callback dispatch.
//
// §5.3: "For the Sunway architecture, we propose a hash-based function
// registration and callback mechanism to enable Kokkos execution on
// TMP-constrained Sunway processors." The device compiler on Sunway cannot
// instantiate arbitrary host templates, so each kernel is registered under a
// stable name hash at startup and the device side launches it through a
// callback table. This module implements exactly that mechanism: FNV-1a name
// hashing, a process-wide registry, and launch-by-hash with an opaque
// argument block.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/error.hpp"

namespace ap3::pp {

/// FNV-1a 64-bit — stable across processes, so hashes can be precomputed
/// offline (the same trick the coupler uses for its offline router tables).
constexpr std::uint64_t fnv1a(const char* s, std::uint64_t h = 0xcbf29ce484222325ULL) {
  return *s == '\0' ? h : fnv1a(s + 1, (h ^ static_cast<std::uint64_t>(
                                                static_cast<unsigned char>(*s))) *
                                           0x100000001b3ULL);
}
inline std::uint64_t fnv1a(const std::string& s) { return fnv1a(s.c_str()); }

/// Opaque argument block handed to a registered kernel: a tuple of raw
/// pointers plus the iteration range, mirroring the flattened argument
/// marshalling a real accelerator launch uses.
struct LaunchArgs {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<void*> pointers;
  std::vector<double> scalars;
};

using KernelFn = void (*)(const LaunchArgs&);

class KernelRegistry {
 public:
  static KernelRegistry& instance();

  /// Registers `fn` under fnv1a(name). Re-registering the same name with a
  /// different function throws (a real Sunway build would be a link error).
  std::uint64_t register_kernel(const std::string& name, KernelFn fn);

  bool has(std::uint64_t hash) const;
  std::uint64_t hash_of(const std::string& name) const { return fnv1a(name); }

  /// Launch by hash — the device-side dispatch path.
  void launch(std::uint64_t hash, const LaunchArgs& args) const;
  void launch(const std::string& name, const LaunchArgs& args) const {
    launch(fnv1a(name), args);
  }

  std::size_t size() const;
  std::vector<std::string> names() const;

  /// Number of launches performed (profiling hook).
  std::uint64_t launch_count() const { return launches_; }

 private:
  struct Entry {
    std::string name;
    KernelFn fn;
  };
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> table_;
  mutable std::uint64_t launches_ = 0;
};

/// Helper for static registration at namespace scope:
///   AP3_REGISTER_KERNEL("ocn_tracer_advect", &tracer_advect_cb);
struct KernelRegistrar {
  KernelRegistrar(const char* name, KernelFn fn) {
    KernelRegistry::instance().register_kernel(name, fn);
  }
};

#define AP3_REGISTER_KERNEL(name, fn) \
  static ::ap3::pp::KernelRegistrar ap3_registrar_##__LINE__{name, fn}

}  // namespace ap3::pp
