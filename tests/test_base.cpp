// Unit tests for the base utilities: errors, config, timers, RNG, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "base/config.hpp"
#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/timer.hpp"

namespace {

using namespace ap3;

TEST(Error, RequireThrowsWithContext) {
  try {
    AP3_REQUIRE_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(AP3_REQUIRE(2 + 2 == 4));
}

TEST(Config, ParsesKeyValueLines) {
  const Config c = Config::from_string(
      "a = 1\n"
      "b = 2.5   # trailing comment\n"
      "# full comment\n"
      "name = grist\n"
      "flag = true\n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_DOUBLE_EQ(c.get_double("b"), 2.5);
  EXPECT_EQ(c.get_string("name"), "grist");
  EXPECT_TRUE(c.get_bool("flag"));
}

TEST(Config, MissingKeyThrows) {
  const Config c = Config::from_string("a = 1\n");
  EXPECT_THROW(c.get_int("zz"), ConfigError);
  EXPECT_EQ(c.get_int_or("zz", 7), 7);
}

TEST(Config, MalformedValueThrows) {
  const Config c = Config::from_string("a = notanumber\n");
  EXPECT_THROW(c.get_int("a"), ConfigError);
  EXPECT_THROW(c.get_double("a"), ConfigError);
  EXPECT_THROW(c.get_bool("a"), ConfigError);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::from_string("no equals sign here\n"), ConfigError);
}

TEST(Config, SliceStripsPrefix) {
  const Config c = Config::from_string("atm.dt = 120\nocn.dt = 20\n");
  const Config atm = c.slice("atm.");
  EXPECT_EQ(atm.get_int("dt"), 120);
  EXPECT_FALSE(atm.has("ocn.dt"));
}

TEST(Config, MergeOverrides) {
  Config a = Config::from_string("x = 1\ny = 2\n");
  const Config b = Config::from_string("y = 3\nz = 4\n");
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 3);
  EXPECT_EQ(a.get_int("z"), 4);
}

TEST(Config, RoundTripsThroughToString) {
  Config a;
  a.set("pi", 3.25);
  a.set("n", 42LL);
  const Config b = Config::from_string(a.to_string());
  EXPECT_DOUBLE_EQ(b.get_double("pi"), 3.25);
  EXPECT_EQ(b.get_int("n"), 42);
}

TEST(Timer, AbsorbAccumulatesAcrossCalls) {
  TimerRegistry reg;
  for (int i = 0; i < 3; ++i)
    reg.absorb(TimerStats{"work", 1, 0.002, 0.002, 0.002});
  EXPECT_EQ(reg.calls("work"), 3);
  EXPECT_NEAR(reg.total("work"), 0.006, 1e-12);
}

TEST(Timer, AbsorbMergesMinMaxAcrossSources) {
  TimerRegistry reg;
  reg.absorb(TimerStats{"t", 2, 3.0, 2.0, 1.0});
  reg.absorb(TimerStats{"t", 1, 0.5, 0.5, 0.5});
  const auto snapshot = reg.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].calls, 3);
  EXPECT_DOUBLE_EQ(snapshot[0].total_seconds, 3.5);
  EXPECT_DOUBLE_EQ(snapshot[0].max_seconds, 2.0);
  EXPECT_DOUBLE_EQ(snapshot[0].min_seconds, 0.5);
}

TEST(Timer, UnknownNameReadsAsZero) {
  TimerRegistry reg;
  EXPECT_DOUBLE_EQ(reg.total("never"), 0.0);
  EXPECT_EQ(reg.calls("never"), 0);
}

TEST(Timer, MaxAcrossRanksPicksSlowest) {
  std::vector<TimerStats> ranks(3);
  ranks[0].total_seconds = 1.0;
  ranks[1].total_seconds = 5.0;
  ranks[2].total_seconds = 2.0;
  EXPECT_DOUBLE_EQ(max_across_ranks(ranks).total_seconds, 5.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasUnitVarianceApprox) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Stats, RelativeL2OfIdenticalIsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::relative_l2(x, x), 0.0);
}

TEST(Stats, RelativeL2Scales) {
  const std::vector<double> ref = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> test = {1.1, 1.1, 1.1, 1.1};
  EXPECT_NEAR(stats::relative_l2(test, ref), 0.1, 1e-12);
}

TEST(Stats, WeightedRmsdIgnoresZeroWeightPoints) {
  const std::vector<double> ref = {0.0, 1.0};
  const std::vector<double> test = {100.0, 1.0};  // huge error on land point
  const std::vector<double> area = {0.0, 1.0};    // land has zero area weight
  EXPECT_DOUBLE_EQ(stats::weighted_rmsd(test, ref, area), 0.0);
}

TEST(Stats, WeightedRmsdMatchesPlainForUniformWeights) {
  const std::vector<double> ref = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> test = {1.5, 2.5, 2.5, 4.5};
  const std::vector<double> area = {2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(stats::weighted_rmsd(test, ref, area), stats::rmsd(test, ref),
              1e-12);
}

TEST(Stats, CorrelationOfLinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(stats::correlation(x, y), 1.0, 1e-12);
}

TEST(Stats, RSquaredPerfectPrediction) {
  const std::vector<double> t = {1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::r_squared(t, t), 1.0);
}

TEST(Constants, EarthValuesSane) {
  EXPECT_NEAR(constants::kEarthRadiusM, 6.371e6, 1e3);
  EXPECT_NEAR(constants::kKappa, 0.2857, 1e-3);
  EXPECT_DOUBLE_EQ(constants::kSecondsPerDay, 86400.0);
}

}  // namespace
