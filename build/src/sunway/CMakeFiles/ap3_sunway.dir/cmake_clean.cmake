file(REMOVE_RECURSE
  "CMakeFiles/ap3_sunway.dir/athread.cpp.o"
  "CMakeFiles/ap3_sunway.dir/athread.cpp.o.d"
  "CMakeFiles/ap3_sunway.dir/coregroup.cpp.o"
  "CMakeFiles/ap3_sunway.dir/coregroup.cpp.o.d"
  "CMakeFiles/ap3_sunway.dir/ldm.cpp.o"
  "CMakeFiles/ap3_sunway.dir/ldm.cpp.o.d"
  "libap3_sunway.a"
  "libap3_sunway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
