file(REMOVE_RECURSE
  "../bench/bench_mixed_precision"
  "../bench/bench_mixed_precision.pdb"
  "CMakeFiles/bench_mixed_precision.dir/bench_mixed_precision.cpp.o"
  "CMakeFiles/bench_mixed_precision.dir/bench_mixed_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
