# Empty dependencies file for ap3_precision.
# This may be replaced when dependencies are built.
