#include "mct/sparsematrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/error.hpp"

namespace ap3::mct {

SparseMatrix::SparseMatrix(std::vector<MatrixEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const MatrixEntry& a, const MatrixEntry& b) {
              return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
            });
}

double SparseMatrix::max_row_sum_deviation() const {
  double max_dev = 0.0;
  std::size_t k = 0;
  while (k < entries_.size()) {
    const std::int64_t dst = entries_[k].dst;
    double sum = 0.0;
    while (k < entries_.size() && entries_[k].dst == dst) sum += entries_[k++].weight;
    max_dev = std::max(max_dev, std::abs(sum - 1.0));
  }
  return max_dev;
}

namespace {
double chord2(const GeoPoint& a, const GeoPoint& b) {
  const double ax = std::cos(a.lat) * std::cos(a.lon);
  const double ay = std::cos(a.lat) * std::sin(a.lon);
  const double az = std::sin(a.lat);
  const double bx = std::cos(b.lat) * std::cos(b.lon);
  const double by = std::cos(b.lat) * std::sin(b.lon);
  const double bz = std::sin(b.lat);
  const double dx = ax - bx, dy = ay - by, dz = az - bz;
  return dx * dx + dy * dy + dz * dz;
}
}  // namespace

SparseMatrix SparseMatrix::inverse_distance(const std::vector<GeoPoint>& dst,
                                            const std::vector<GeoPoint>& src,
                                            int k) {
  AP3_REQUIRE(k >= 1 && static_cast<std::size_t>(k) <= src.size());
  std::vector<MatrixEntry> entries;
  entries.reserve(dst.size() * static_cast<std::size_t>(k));
  std::vector<std::pair<double, std::int64_t>> nearest;
  for (std::size_t d = 0; d < dst.size(); ++d) {
    nearest.clear();
    for (std::size_t s = 0; s < src.size(); ++s)
      nearest.push_back({chord2(dst[d], src[s]), static_cast<std::int64_t>(s)});
    std::partial_sort(nearest.begin(), nearest.begin() + k, nearest.end());
    // Exact hit: delta weight.
    if (nearest.front().first < 1e-24) {
      entries.push_back({static_cast<std::int64_t>(d), nearest.front().second, 1.0});
      continue;
    }
    double total = 0.0;
    for (int j = 0; j < k; ++j) total += 1.0 / nearest[static_cast<std::size_t>(j)].first;
    for (int j = 0; j < k; ++j) {
      const auto& [dist2, sid] = nearest[static_cast<std::size_t>(j)];
      entries.push_back(
          {static_cast<std::int64_t>(d), sid, (1.0 / dist2) / total});
    }
  }
  return SparseMatrix(std::move(entries));
}

std::vector<double> SparseMatrix::apply_serial(std::span<const double> src,
                                               std::size_t dst_size) const {
  std::vector<double> out(dst_size, 0.0);
  for (const MatrixEntry& e : entries_) {
    AP3_REQUIRE(static_cast<std::size_t>(e.dst) < dst_size);
    AP3_REQUIRE(static_cast<std::size_t>(e.src) < src.size());
    out[static_cast<std::size_t>(e.dst)] +=
        e.weight * src[static_cast<std::size_t>(e.src)];
  }
  return out;
}

RegridOp::RegridOp(const par::Comm& comm, const SparseMatrix& matrix,
                   const GlobalSegMap& src_map, const GlobalSegMap& dst_map)
    : comm_(comm) {
  const int rank = comm.rank();
  const std::vector<std::int64_t> my_src = src_map.local_ids(rank);
  const std::vector<std::int64_t> my_dst = dst_map.local_ids(rank);
  num_src_local_ = my_src.size();
  num_dst_local_ = my_dst.size();

  std::map<std::int64_t, std::size_t> dst_pos, src_pos;
  for (std::size_t k = 0; k < my_dst.size(); ++k) dst_pos[my_dst[k]] = k;
  for (std::size_t k = 0; k < my_src.size(); ++k) src_pos[my_src[k]] = k;

  // Collect my rows; note remote source ids.
  std::map<std::int64_t, std::size_t> ghost_pos;
  std::vector<std::int64_t> ghosts;
  for (const MatrixEntry& e : matrix.entries()) {
    const auto dit = dst_pos.find(e.dst);
    if (dit == dst_pos.end()) continue;
    const auto sit = src_pos.find(e.src);
    std::size_t slot;
    if (sit != src_pos.end()) {
      slot = sit->second;  // owned region: [0, num_src_local)
    } else {
      auto git = ghost_pos.find(e.src);
      if (git == ghost_pos.end()) {
        git = ghost_pos.emplace(e.src, ghosts.size()).first;
        ghosts.push_back(e.src);
      }
      slot = num_src_local_ + git->second;  // ghost region
    }
    terms_.push_back({dit->second, slot, e.weight});
  }

  halo_ = std::make_unique<grid::GraphHalo>(
      comm, my_src, ghosts,
      [&src_map](std::int64_t gid) { return src_map.owner(gid); });
}

std::vector<double> RegridOp::apply(std::span<const double> src_local) const {
  AP3_REQUIRE(src_local.size() == num_src_local_);
  std::vector<double> ghosts(halo_->num_ghosts());
  halo_->exchange(src_local, ghosts);
  std::vector<double> out(num_dst_local_, 0.0);
  for (const LocalTerm& term : terms_) {
    const double value = term.src_slot < num_src_local_
                             ? src_local[term.src_slot]
                             : ghosts[term.src_slot - num_src_local_];
    out[term.dst_local] += term.weight * value;
  }
  return out;
}

void RegridOp::apply(const AttrVect& src, AttrVect& dst) const {
  AP3_REQUIRE_MSG(src.field_names() == dst.field_names(),
                  "regrid: AttrVect field sets differ");
  AP3_REQUIRE(src.num_points() == num_src_local_);
  AP3_REQUIRE(dst.num_points() == num_dst_local_);
  for (std::size_t f = 0; f < src.num_fields(); ++f) {
    const std::vector<double> mapped = apply(src.field(f));
    auto out = dst.field(f);
    std::copy(mapped.begin(), mapped.end(), out.begin());
  }
}

}  // namespace ap3::mct
