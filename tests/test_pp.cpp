// Tests for the performance-portability layer: Views, parallel dispatch
// across execution spaces (including determinism), the hash-based kernel
// registry of §5.3, tile profiling, and the SWGOMP emulation.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numeric>
#include <vector>

#include "pp/exec.hpp"
#include "pp/registry.hpp"
#include "pp/swgomp.hpp"
#include "pp/tile.hpp"
#include "pp/view.hpp"

namespace {

using namespace ap3;
using pp::ExecSpace;
using pp::Layout;
using pp::RangePolicy;
using pp::View;

TEST(View, ExtentsAndSize) {
  View<double, 3> v("field", 4, 5, 6);
  EXPECT_EQ(v.size(), 120u);
  EXPECT_EQ(v.extent(0), 4u);
  EXPECT_EQ(v.extent(2), 6u);
  EXPECT_EQ(v.label(), "field");
}

TEST(View, ZeroInitialized) {
  View<double, 2> v("z", 3, 3);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.linear(i), 0.0);
}

TEST(View, LayoutRightIsRowMajor) {
  View<int, 2> v("r", 2, 3);
  v(1, 2) = 42;
  EXPECT_EQ(v.linear(1 * 3 + 2), 42);
}

TEST(View, LayoutLeftIsColumnMajor) {
  View<int, 2> v("l", Layout::kLeft, 2, 3);
  v(1, 2) = 42;
  EXPECT_EQ(v.linear(1 + 2 * 2), 42);
}

TEST(View, CopiesAlias) {
  View<double, 1> a("a", 10);
  View<double, 1> b = a;
  b(3) = 7.0;
  EXPECT_EQ(a(3), 7.0);
}

TEST(View, CloneIsDeep) {
  View<double, 1> a("a", 10);
  View<double, 1> b = a.clone();
  b(3) = 7.0;
  EXPECT_EQ(a(3), 0.0);
}

TEST(View, DeepCopyCopiesValues) {
  View<double, 2> src("s", 3, 3);
  src.fill(2.5);
  View<double, 2> dst("d", 3, 3);
  pp::deep_copy(dst, src);
  EXPECT_EQ(dst(2, 2), 2.5);
}

TEST(View, DeepCopyShapeMismatchThrows) {
  View<double, 1> a("a", 3), b("b", 4);
  EXPECT_THROW(pp::deep_copy(a, b), ap3::Error);
}

TEST(ParallelFor, SerialAndThreadedAgree) {
  const size_t n = 10007;
  std::vector<double> serial(n), threaded(n);
  pp::parallel_for(RangePolicy(0, n).on(ExecSpace::kSerial),
                   [&](size_t i) { serial[i] = std::sin(double(i)); });
  pp::parallel_for(RangePolicy(0, n).on(ExecSpace::kHostThreads),
                   [&](size_t i) { threaded[i] = std::sin(double(i)); });
  EXPECT_EQ(serial, threaded);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int count = 0;
  pp::parallel_for(RangePolicy(5, 5).on(ExecSpace::kHostThreads),
                   [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelReduce, DeterministicAcrossSpaces) {
  const size_t n = 5001;
  auto body = [](size_t i, double& acc) { acc += 1.0 / (1.0 + double(i)); };
  const double serial = pp::parallel_reduce<double>(
      RangePolicy(0, n).on(ExecSpace::kSerial), body);
  // Chunked partials must combine deterministically: two threaded runs with
  // identical chunking produce bitwise-identical results.
  const double t1 = pp::parallel_reduce<double>(
      RangePolicy(0, n).on(ExecSpace::kHostThreads).chunked(128), body);
  const double t2 = pp::parallel_reduce<double>(
      RangePolicy(0, n).on(ExecSpace::kHostThreads).chunked(128), body);
  EXPECT_EQ(t1, t2);
  EXPECT_NEAR(serial, t1, 1e-9);
}

TEST(ParallelReduce, InitValueIncluded) {
  const double out = pp::parallel_reduce<double>(
      RangePolicy(0, 10).on(ExecSpace::kSerial),
      [](size_t, double& acc) { acc += 1.0; }, 100.0);
  EXPECT_DOUBLE_EQ(out, 110.0);
}

TEST(ParallelScan, MatchesSerialPrefixSum) {
  const size_t n = 1234;
  std::vector<long long> serial_out, par_out;
  auto value = [](size_t i) { return static_cast<long long>(i % 7); };
  const long long serial_total = pp::parallel_scan<long long>(
      RangePolicy(0, n).on(ExecSpace::kSerial), value, serial_out);
  const long long par_total = pp::parallel_scan<long long>(
      RangePolicy(0, n).on(ExecSpace::kHostThreads).chunked(100), value, par_out);
  EXPECT_EQ(serial_total, par_total);
  EXPECT_EQ(serial_out, par_out);
}

TEST(MDRange, CoversAllPairsOnce) {
  pp::MDRangePolicy2 policy = pp::MDRangePolicy2{37, 53, 8, 16}.on(ExecSpace::kHostThreads);
  View<int, 2> hits("hits", 37, 53);
  std::mutex m;
  pp::parallel_for(policy, [&](size_t i, size_t j) {
    std::lock_guard<std::mutex> lock(m);
    hits(i, j) += 1;
  });
  for (size_t i = 0; i < 37; ++i)
    for (size_t j = 0; j < 53; ++j) EXPECT_EQ(hits(i, j), 1);
}

// --- hash-based kernel registry (§5.3) --------------------------------------

void saxpy_kernel(const pp::LaunchArgs& args) {
  auto* y = static_cast<double*>(args.pointers.at(0));
  const auto* x = static_cast<const double*>(args.pointers.at(1));
  const double a = args.scalars.at(0);
  for (size_t i = args.begin; i < args.end; ++i) y[i] += a * x[i];
}

TEST(Registry, RegisterAndLaunchByHash) {
  auto& reg = pp::KernelRegistry::instance();
  const auto hash = reg.register_kernel("test_saxpy", &saxpy_kernel);
  EXPECT_TRUE(reg.has(hash));
  EXPECT_EQ(hash, pp::fnv1a("test_saxpy"));

  std::vector<double> y(8, 1.0), x(8, 2.0);
  pp::LaunchArgs args;
  args.begin = 0;
  args.end = 8;
  args.pointers = {y.data(), x.data()};
  args.scalars = {3.0};
  reg.launch(hash, args);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Registry, LaunchByNameMatchesHashLaunch) {
  auto& reg = pp::KernelRegistry::instance();
  reg.register_kernel("test_saxpy2", &saxpy_kernel);
  std::vector<double> y(4, 0.0), x(4, 1.0);
  pp::LaunchArgs args;
  args.begin = 0;
  args.end = 4;
  args.pointers = {y.data(), x.data()};
  args.scalars = {5.0};
  reg.launch("test_saxpy2", args);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Registry, UnregisteredHashThrows) {
  pp::LaunchArgs args;
  EXPECT_THROW(pp::KernelRegistry::instance().launch(0xdeadbeefULL, args),
               ap3::Error);
}

TEST(Registry, ReRegisterSameFunctionIsIdempotent) {
  auto& reg = pp::KernelRegistry::instance();
  const auto h1 = reg.register_kernel("test_idem", &saxpy_kernel);
  const auto h2 = reg.register_kernel("test_idem", &saxpy_kernel);
  EXPECT_EQ(h1, h2);
}

TEST(Registry, FnvHashIsStable) {
  // Known-answer test: hashes must be stable across builds because offline
  // tables embed them.
  EXPECT_EQ(pp::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(pp::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

// --- tile profiler ------------------------------------------------------------

TEST(TileProfiler, BestPicksLowestMeanTime) {
  pp::TileProfiler profiler;
  profiler.record("k", {8, 8}, 2.0);
  profiler.record("k", {16, 16}, 0.5);
  profiler.record("k", {32, 4}, 1.0);
  EXPECT_EQ(profiler.best("k"), (pp::TileShape{16, 16}));
}

TEST(TileProfiler, MeansAcrossSamples) {
  pp::TileProfiler profiler;
  profiler.record("k", {8, 8}, 1.0);
  profiler.record("k", {8, 8}, 3.0);   // mean 2.0
  profiler.record("k", {4, 4}, 2.5);   // mean 2.5
  EXPECT_EQ(profiler.best("k"), (pp::TileShape{8, 8}));
}

TEST(TileProfiler, UnknownKernelThrows) {
  pp::TileProfiler profiler;
  EXPECT_THROW(profiler.best("nope"), ap3::Error);
}

TEST(TileProfiler, SweepRunsEveryCandidate) {
  pp::TileProfiler profiler;
  std::vector<pp::TileShape> tried;
  profiler.sweep("sweep_kernel", {{4, 4}, {8, 8}, {16, 16}},
                 [&](pp::TileShape shape) { tried.push_back(shape); });
  EXPECT_EQ(tried.size(), 3u);
  EXPECT_EQ(profiler.records("sweep_kernel").size(), 3u);
}

// --- SWGOMP emulation -----------------------------------------------------------

TEST(Swgomp, OffloadRunsAllIterations) {
  pp::swgomp::reset_stats();
  std::vector<double> out(1000, 0.0);
  pp::swgomp::target_parallel_for("grist_loop", out.size(),
                                  [&](size_t i) { out[i] = double(i); });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], double(i));
  const auto stats = pp::swgomp::stats();
  EXPECT_EQ(stats.regions, 1u);
  EXPECT_EQ(stats.iterations, 1000u);
}

TEST(Swgomp, Collapse2CoversPlane) {
  pp::swgomp::reset_stats();
  View<int, 2> hits("h", 13, 17);
  std::mutex m;
  pp::swgomp::target_parallel_for2("grist_2d", 13, 17, [&](size_t i, size_t j) {
    std::lock_guard<std::mutex> lock(m);
    hits(i, j)++;
  });
  for (size_t i = 0; i < 13; ++i)
    for (size_t j = 0; j < 17; ++j) EXPECT_EQ(hits(i, j), 1);
  EXPECT_EQ(pp::swgomp::stats().iterations, 13u * 17u);
}

}  // namespace
