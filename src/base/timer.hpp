// GPTL-style hierarchical wall-clock timers (§6.2 of the paper: wall-clock
// measurements come from GPTL timers in Coupler 7, max across ranks).
//
// COMPATIBILITY SHIM: instrumentation has moved to the unified observability
// layer (src/obs — RAII obs::Span / AP3_SPAN, counters, Chrome-trace export).
// This registry remains because cpl::summarize_timing consumes TimerStats;
// it is fed from span aggregates via obs::fill_registry -> absorb(). The raw
// string-paired start()/stop() pair is DEPRECATED — do not add new call
// sites; use AP3_SPAN("component:phase:subphase") instead.
//
// Timers nest: start("cpl")/start("cpl:run")/stop/stop builds a call tree.
// Each simulated rank owns a TimerRegistry; the coupler's getTiming analog
// reduces the per-rank maxima, mirroring the paper's measurement mechanism.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace ap3 {

/// One named accumulating timer.
struct TimerStats {
  std::string name;
  long long calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  double min_seconds = 0.0;
};

/// Registry of named timers. Not thread-safe by design: each simulated rank
/// (thread) owns its own registry, matching per-rank GPTL instances.
class TimerRegistry {
 public:
  /// DEPRECATED: error-prone string-paired protocol kept only for the shim
  /// and its tests; new code records obs::Span and feeds via absorb().
  void start(const std::string& name);
  /// DEPRECATED: see start().
  void stop(const std::string& name);

  /// Merge externally aggregated stats into this registry (the span-fed
  /// compatibility path; see obs::fill_registry).
  void absorb(const TimerStats& stats);

  /// Seconds accumulated in `name`; 0 if never started.
  double total(const std::string& name) const;
  long long calls(const std::string& name) const;

  /// All timers sorted by descending total time.
  std::vector<TimerStats> snapshot() const;

  /// Render an indented report (nesting inferred from ':' separators).
  std::string report() const;

  void reset();

  /// Process-wide registry for single-threaded tools.
  static TimerRegistry& global();

 private:
  struct Entry {
    TimerStats stats;
    std::chrono::steady_clock::time_point started;
    bool running = false;
  };
  std::map<std::string, Entry> entries_;
};

/// RAII scope timer. DEPRECATED for instrumentation: prefer AP3_SPAN, which
/// records into the observability layer (and reaches this registry through
/// obs::fill_registry); kept for the shim's own tests.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    registry_.start(name_);
  }
  ~ScopedTimer() { registry_.stop(name_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string name_;
};

/// Reduce per-rank timer totals the way getTiming does: the maximum across
/// ranks is what load-imbalanced components report.
TimerStats max_across_ranks(const std::vector<TimerStats>& per_rank);

}  // namespace ap3
