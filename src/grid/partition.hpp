// Domain decomposition: 1-D balanced partitions (icosahedral cell ranges),
// 2-D block partitions (tripolar grid), and the §5.2.2 active-column
// compaction that removes 3-D non-ocean points and remaps MPI ranks.
//
// Both the block partition and the compaction are expressed through one
// primitive — `weighted_cuts`, a greedy prefix split of a weight vector —
// so the runtime load balancer (src/balance) can re-cut either with measured
// per-rank costs instead of static kmt weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/tripolar.hpp"

namespace ap3::grid {

/// Balanced contiguous partition of [0, n) over `parts` ranks.
struct Range1D {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

Range1D partition_1d(std::int64_t n, int parts, int rank);
int owner_1d(std::int64_t n, int parts, std::int64_t index);

/// Cut [0, weights.size()) into `parts` contiguous pieces whose weight sums
/// track total/parts, using the same greedy prefix rule as the §5.2.2
/// compaction (cut when the running load plus half the next weight crosses
/// the cumulative target). Returns parts+1 ascending boundaries with
/// cuts.front() == 0 and cuts.back() == weights.size(). With `nonempty`,
/// every piece is guaranteed at least one element (required by halo'd block
/// decompositions, where an empty row/column block has no interior).
std::vector<std::int64_t> weighted_cuts(std::span<const double> weights,
                                        int parts, bool nonempty = false);

/// Explicit tensor-product cut lines for a 2-D block decomposition: `x` holds
/// px+1 ascending column boundaries (x.front() == 0, x.back() == nx), `y`
/// the same for rows. Produced by the weighted repartitioner, consumed by
/// BlockPartition2D and BlockHalo.
struct BlockCuts {
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> y;
  int px() const { return static_cast<int>(x.size()) - 1; }
  int py() const { return static_cast<int>(y.size()) - 1; }
  bool operator==(const BlockCuts&) const = default;
};

/// 2-D block decomposition of an nx × ny grid over px × py ranks. Blocks are
/// either uniform (partition_1d along each axis) or follow explicit weighted
/// cut lines.
class BlockPartition2D {
 public:
  BlockPartition2D(int nx, int ny, int px, int py);
  BlockPartition2D(int nx, int ny, BlockCuts cuts);

  /// Choose a near-square (px, py) factorization of `nranks`.
  static BlockPartition2D balanced(int nx, int ny, int nranks);

  int px() const { return px_; }
  int py() const { return py_; }
  int nranks() const { return px_ * py_; }

  Range1D x_range(int rank) const;
  Range1D y_range(int rank) const;
  int rank_of_block(int bx, int by) const { return by * px_ + bx; }
  int block_x(int rank) const { return rank % px_; }
  int block_y(int rank) const { return rank / px_; }

  /// Rank owning global column (i, j).
  int owner(int i, int j) const;

  /// The cut lines of this decomposition (derived from partition_1d when the
  /// partition was built without explicit cuts).
  BlockCuts cuts() const;

 private:
  int nx_, ny_, px_, py_;
  // Empty when the partition is uniform; otherwise px_+1 / py_+1 boundaries.
  std::vector<std::int64_t> x_cuts_, y_cuts_;
};

/// Supernode-aware rank mapping for a 2-D block decomposition.
///
/// Tiles the px × py block grid into near-square rectangular tiles of at most
/// `supernode_size` blocks, so grid-adjacent blocks land in the same
/// supernode whenever possible. `topology_map()` is ready to feed
/// par::Topology's constructor (rank → supernode id, row-major rank order),
/// and `intra_neighbor_fraction()` tells the load balancer what share of
/// halo/migration traffic the mapping keeps on the fast intra-supernode
/// network.
class SupernodeBlockMap {
 public:
  SupernodeBlockMap(int px, int py, int supernode_size);

  int px() const { return px_; }
  int py() const { return py_; }
  /// Tile dimensions actually used (tile_w() * tile_h() <= supernode_size).
  int tile_w() const { return tile_w_; }
  int tile_h() const { return tile_h_; }
  int num_supernodes() const { return tiles_x_ * tiles_y_; }

  int supernode_of_block(int bx, int by) const;
  /// Row-major rank (by * px + bx), matching BlockPartition2D::rank_of_block.
  int supernode_of_rank(int rank) const;

  /// rank → supernode id for every rank, in rank order: the exact vector
  /// par::Topology's constructor expects.
  std::vector<int> topology_map() const;

  /// Fraction of 4-neighbour block adjacencies that stay inside one
  /// supernode. Cut-shift migrations and halo exchanges move data between
  /// adjacent blocks, so this is the share of that traffic on the fast
  /// intra-supernode path (1.0 for a single-block grid).
  double intra_neighbor_fraction() const;

 private:
  int px_, py_;
  int tile_w_, tile_h_;
  int tiles_x_, tiles_y_;
};

/// §5.2.2 — exclusion of 3-D non-ocean points.
///
/// Active (ocean) columns are extracted in row-major order, then partitioned
/// so every rank receives an equal *active 3-D workload* (sum of kmt), not an
/// equal area. `old_rank_of` records where each column would have lived in
/// the naive block decomposition — the difference is the paper's "MPI rank
/// mapping" that guarantees correct data access after compaction.
struct CompactColumn {
  int i = 0;
  int j = 0;
  int kmt = 0;
};

class ActiveCompaction {
 public:
  ActiveCompaction(const TripolarGrid& grid, int nranks);
  /// Measured-cost variant: `column_cost` gives one weight per active column
  /// (row-major active order, i.e. the order the kmt constructor walks); the
  /// split balances that cost instead of the 3-D point count. This is how the
  /// runtime balancer re-cuts the compaction from obs-span timings.
  ActiveCompaction(const TripolarGrid& grid, int nranks,
                   std::span<const double> column_cost);

  int nranks() const { return nranks_; }
  /// Columns owned by `rank` after compaction (workload-balanced).
  const std::vector<CompactColumn>& columns(int rank) const;
  /// Total active columns across all ranks.
  std::int64_t total_columns() const { return total_columns_; }
  /// Total active 3-D points.
  std::int64_t total_points() const { return total_points_; }
  /// Fraction of 3-D points eliminated (the paper reports ~30 %).
  double removed_fraction() const { return removed_fraction_; }
  /// Max/mean per-rank 3-D point load — compaction should balance this.
  double load_imbalance() const;

 private:
  void split(const std::vector<CompactColumn>& active,
             std::span<const double> weights);

  int nranks_;
  std::vector<std::vector<CompactColumn>> per_rank_;
  std::int64_t total_columns_ = 0;
  std::int64_t total_points_ = 0;
  double removed_fraction_ = 0.0;
};

}  // namespace ap3::grid
