// CPL7-style coupled driver — the AP3ESM top level (§5.1).
//
// Integrates the four components through MCT machinery:
//   - GlobalSegMaps over the global communicator describe every component's
//     decomposition (ranks outside a component's task domain own nothing),
//   - RegridOps (sparse interpolation) move fields between the icosahedral
//     atmosphere mesh and the tripolar ocean grid,
//   - a Rearranger-style router moves same-grid fields between the ocean's
//     and the ice's decompositions,
//   - the coupler computes air–sea fluxes (fluxes.hpp) and owns the clock.
//
// Task layouts (§5.1.2, §7.2): kSequential runs every component on all
// ranks in turn; kConcurrent splits the communicator into an atmosphere
// domain (coupler + atm + ice + land, ranks [0, atm_ranks)) and an ocean
// domain (remaining ranks) that integrate concurrently with lagged coupling.
//
// Coupling frequencies follow §6.1: the master step is one atmosphere
// coupling window; the ocean couples every `ocn_couple_ratio` windows
// (180 : 36 = 5 : 1), the ice every window (180/day).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "atm/model.hpp"
#include "atm/vortex.hpp"
#include "balance/balance.hpp"
#include "base/rng.hpp"
#include "base/timer.hpp"
#include "coupler/clock.hpp"
#include "coupler/fluxes.hpp"
#include "coupler/scenario.hpp"
#include "coupler/timing.hpp"
#include "ice/ice.hpp"
#include "io/checkpoint.hpp"
#include "mct/rearranger.hpp"
#include "mct/sparsematrix.hpp"
#include "ocn/model.hpp"
#include "pp/stream.hpp"

namespace ap3::cpl {

enum class Layout { kSequential, kConcurrent };

struct CoupledConfig {
  atm::AtmConfig atm;
  ocn::OcnConfig ocn;
  /// Ice knobs (straggler stall, thermodynamic rates). The grid and
  /// dt_seconds fields are ignored: the driver derives them from the ocean
  /// grid and `ice_dt_seconds` below (make_ice_config).
  ice::IceConfig ice;
  Layout layout = Layout::kSequential;
  int atm_ranks = 0;         ///< concurrent: ranks in the atm domain (0 = half)
  int ocn_couple_ratio = 5;  ///< ocean couples every N atm windows (180:36)
  int regrid_neighbors = 3;
  double ice_dt_seconds = 0.0;  ///< 0: one ice step per window
  /// Pipeline the phase loop: post each rearrange split-phase, run the
  /// independent local work (async launches on the driver's stream) inside
  /// the wire window, then complete the exchange. Bit-exact with overlap off
  /// (state_hash() identical), including under fault-plan retransmission.
  bool overlap = false;
  /// Consider runtime load rebalancing every N ocean coupling windows
  /// (0: off). Measured per-rank phase costs drive a weighted re-cut of the
  /// ocean and ice block decompositions; accepted plans migrate column state
  /// through a Rearranger, bit-exact with rebalancing off (state_hash()
  /// identical), including under fault-plan retransmission.
  int rebalance_every = 0;
  balance::RebalancePolicy rebalance;  ///< hysteresis / cost-model knobs
  /// Checkpoint I/O policy: subfile fan-out, payload codec (fp64 bit-exact
  /// or group-scaled fp32+scales with a verified ULP bound), and the
  /// slow-disk bench knob. The `async` flag is ignored here — the driver
  /// picks sync/async per call (checkpoint vs checkpoint_async). Sections
  /// holding integers or bit-cast words (RNG state, step counters, training
  /// bookkeeping) are always written fp64 regardless of the codec policy.
  io::CheckpointOptions checkpoint;
};

/// Validate a CoupledConfig against the communicator it will run on. Throws
/// ConfigError with a specific message on the silent-misbehavior cases:
/// non-positive coupling ratio, negative rebalance interval or ice step,
/// nonsensical regrid stencil, and concurrent-layout rank splits that cannot
/// leave both domains non-empty.
void validate_coupled_config(const CoupledConfig& config, int world_size);

/// Everything that defines one ensemble member: the configuration, an initial
/// perturbation, and (optionally) the shared immutable context it serves from.
/// `ScenarioSpec{config}` is exactly the legacy constructor.
struct ScenarioSpec {
  CoupledConfig config;
  /// 0 = unperturbed control member. Nonzero seeds key a deterministic,
  /// decomposition-invariant temperature perturbation applied once after
  /// construction (Dycore::perturb_temperature).
  std::uint64_t perturbation_seed = 0;
  double perturbation_kelvin = 0.01;
  std::string name;  ///< label for diagnostics output (optional)
  /// Shared immutable inputs (mesh, ocean grid, regrid matrices, frozen AI
  /// weights). Null: the model builds a private context (legacy behavior).
  std::shared_ptr<const SharedInputs> shared;
  /// Fleet-internal: adopt an already built coupling-plan set instead of
  /// rebuilding (must match this member's communicator and decomposition).
  std::shared_ptr<const CouplingPlans> adopt_plans;
};

/// One consistent snapshot of the coupled model's scalar diagnostics
/// (collective on the global communicator, valid on every rank).
struct CoupledDiagnostics {
  double mean_sst_k = 0.0;          ///< area-weighted global mean SST [K]
  double mean_precip = 0.0;         ///< atmosphere global mean precip
  double ice_fraction = 0.0;        ///< global ice-covered ocean fraction
  double max_surface_current = 0.0; ///< max ocean surface speed [m/s]
  long long windows = 0;            ///< master coupling windows run
  long long atm_steps = 0;          ///< atmosphere model steps
  long long ocn_baroclinic_steps = 0;
  long long ice_steps = 0;
  long long rebalance_migrations = 0;
};

class CoupledModel {
 public:
  /// Scenario-centric construction (collective on the global communicator):
  /// validates the config, builds or adopts the shared context, constructs
  /// the components, and applies the scenario's perturbation.
  CoupledModel(const par::Comm& global, ScenarioSpec spec);
  /// Legacy construction — a thin shim over ScenarioSpec{config} that builds
  /// a private context.
  CoupledModel(const par::Comm& global, const CoupledConfig& config);

  /// Advance `atm_windows` master coupling windows (collective).
  void run_windows(int atm_windows);

  double atm_window_seconds() const { return window_seconds_; }
  double ocn_window_seconds() const {
    return window_seconds_ * config_.ocn_couple_ratio;
  }
  long long windows_run() const { return clock_.steps_taken(); }
  const Clock& clock() const { return clock_; }
  /// Accepted rebalance migrations so far (identical on every rank).
  long long rebalance_migrations() const { return rebalance_migrations_; }

  /// Install a trained AI suite as the atmosphere's physics (no-op on ranks
  /// without an atmosphere). `options.engine` picks the execution space and
  /// precision policy; when the driver runs with `CoupledConfig::overlap` the
  /// engine's micro-batch overlap is switched on too. `options.online` keeps
  /// fine-tuning against the conventional suite during the run (the weights
  /// and optimizer state then become checkpoint sections, so restart stays
  /// bit-exact). Fleet members pass the same `options.suite` pointer so one
  /// InferenceEngine micro-batches across all of them.
  void install_ai_physics(const AiInstallOptions& options);

  bool has_atm() const { return atm_ != nullptr; }
  bool has_ocn() const { return ocn_ != nullptr; }
  bool has_ice() const { return ice_ != nullptr; }
  /// Checked component references: throw ap3::Error when the component does
  /// not live on this rank (concurrent layout) — check has_*() first.
  atm::AtmModel& atm();
  const atm::AtmModel& atm() const;
  ocn::OcnModel& ocn();
  const ocn::OcnModel& ocn() const;
  ice::IceModel& ice();
  const ice::IceModel& ice() const;

  /// The scenario this model was constructed from.
  const ScenarioSpec& scenario() const { return spec_; }
  /// Shared immutable context (null when privately built).
  const std::shared_ptr<const SharedInputs>& shared_inputs() const {
    return shared_;
  }
  /// The communicator-bound coupling plans currently in use. A fleet donates
  /// member 0's plans to the other members via ScenarioSpec::adopt_plans.
  const std::shared_ptr<const CouplingPlans>& coupling_plans() const {
    return plans_;
  }

  // --- checkpoint/restart (collective on the global communicator) ------------
  /// Write a versioned snapshot of the full coupled state (every component's
  /// prognostic fields, the coupler's accumulators and caches, the clock,
  /// the AI-normalizer state when the AI suite is installed, and the driver
  /// RNG stream) to `dir` through the subfile I/O layer.
  void checkpoint(const std::string& dir);
  /// Restore from a snapshot written with the same configuration and rank
  /// count; resumed runs are bit-identical to uninterrupted ones. Throws
  /// ap3::Error on a corrupt, truncated, or mismatched snapshot.
  void restore(const std::string& dir);
  /// Streaming checkpoint: snapshots the state NOW (the collective gather
  /// runs inline, double-buffering each section's data), but hands subfile
  /// encode+write to a background pp::Stream lane and returns, overlapping
  /// checkpoint I/O with continued stepping. The snapshot commits (manifest
  /// rename) at its completion fence: the next checkpoint boundary touching
  /// the same dir, the third in-flight checkpoint_async (two snapshots max,
  /// back-pressure instead of unbounded memory), restore(), or
  /// checkpoint_wait(). Snapshots never fenced before destruction are
  /// abandoned — no manifest, so they read as "no snapshot", not corruption.
  void checkpoint_async(const std::string& dir);
  /// Collective fence: finalize every in-flight async checkpoint (FIFO).
  /// Deferred write failures from any rank rethrow here on all ranks.
  void checkpoint_wait();
  /// Async snapshots begun but not yet fenced (0, 1, or 2).
  std::size_t checkpoints_in_flight() const {
    return pending_checkpoints_.size();
  }
  /// Combined FNV-1a hash of every checkpointed section across all ranks
  /// (collective): equal hashes ⇔ bit-identical coupled state.
  std::uint64_t state_hash();
  /// This rank's checkpoint section payloads keyed by name (collective, for
  /// verification harnesses comparing restored state against a reference —
  /// e.g. the group-scaled codec's ULP-bound witness).
  std::map<std::string, io::FieldData> local_checkpoint_sections();
  /// Driver-owned deterministic stream (stochastic perturbation hook);
  /// checkpointed so resumed runs draw the same tail of the sequence.
  Rng& rng() { return rng_; }

  // --- collective diagnostics (call on every global rank) --------------------
  /// getTiming-style report over everything run so far (§6.2; collective).
  /// Phase totals come from obs spans (AP3_SPAN call sites in the driver);
  /// the registry below is the compatibility shim they are reduced through.
  TimingSummary timing_summary();
  /// The span-fed shim registry, refreshed on access (not collective).
  TimerRegistry& timers();

  /// One consistent snapshot of the scalar diagnostics (collective).
  CoupledDiagnostics diagnostics();

  // --- typhoon experiment hooks (collective) ----------------------------------
  void seed_typhoon(const atm::VortexSpec& spec);
  atm::VortexFix track_typhoon(double prev_lon_deg, double prev_lat_deg,
                               double search_km);
  /// Area-mean SST [K] within `radius_km` of a point (cold-wake diagnostic).
  double sst_near(double lon_deg, double lat_deg, double radius_km);

 private:
  void build_coupling_infrastructure();
  /// Implementations of the scalar diagnostics behind diagnostics().
  double mean_sst_impl();
  double mean_precip_impl();
  double ice_fraction_impl();
  double max_current_impl();
  void refresh_timers();  ///< rebuild the shim registry from span aggregates
  void atm_ice_phase();  ///< one master window: atm.run, ice.run, exchanges
  void ocn_phase();      ///< at ocean boundaries: fluxes, ocn.run, exports

  // --- runtime load rebalancing (src/balance) --------------------------------
  /// Driver-side state for one registered balance::Rebalanceable. An entry
  /// exists on EVERY rank for every component (collective consistency);
  /// `model()` returns null on ranks outside the component's task domain and
  /// tracks the owning unique_ptr through migrations and restores.
  struct BalanceParticipant {
    std::string name;        ///< == model()->balance_name() where present
    std::string phase_span;  ///< obs span measured as this component's cost
    int layout_root = 0;     ///< global rank replicating cuts into checkpoints
    bool migratable = false; ///< has a block decomposition (static property)
    std::function<balance::Rebalanceable*()> model;
    const par::Comm* comm = nullptr;  ///< domain comm (null where absent)
    /// Collective on `comm`: construct the component anew on `cuts` and swap
    /// it into the driver (state is then imported by migrate_participant or
    /// overwritten by section reads on restore).
    std::function<void(const grid::BlockCuts&)> rebuild;
    std::optional<balance::LoadBalancer> balancer;  ///< where the model lives
    std::size_t mark = 0;    ///< span-buffer mark opening the cost window
    double busy_seen = 0.0;  ///< busy-counter watermark at the mark
  };
  /// Build the registry (fixed atm, ocn, ice order — the checkpointed busy
  /// watermark ids and the collective decision loop rely on it).
  void register_balance_participants();
  /// Collective on the global communicator. Generic measure→decide→migrate
  /// loop over the registry: folds each participant's busy delta into its
  /// measured phase cost, lets its balancer decide (assessment only for
  /// non-migratable participants), migrates accepted plans, and rebuilds
  /// coupling infrastructure.
  void maybe_rebalance();
  /// Export → rebuild on `cuts` → Rearranger-migrate → import, bit-exact
  /// (collective on the participant's domain communicator).
  void migrate_participant(BalanceParticipant& p, const grid::BlockCuts& cuts);
  ice::IceConfig make_ice_config() const;
  /// Per-column FNV digest sum of the coupler's ice-side caches, keyed by
  /// global id so the value is decomposition-invariant.
  std::uint64_t ice_cache_column_hash() const;
  /// Replicate every migratable participant's cuts from its layout root and
  /// store them as "bal.<name>.*" scalars.
  void write_layout_scalars(io::CheckpointWriter& writer);
  /// Rebuild participants whose checkpointed cuts differ from the current
  /// decomposition (must run before any section reads).
  void restore_layout(io::CheckpointReader& reader);
  /// Per-rank pending busy seconds (counter minus watermark), one value per
  /// registry entry — the "cpl.balance_busy" checkpoint payload. Restore
  /// re-anchors the watermarks from it so the first post-restore rebalance
  /// decision sees exactly the busy time an uninterrupted run would.
  io::FieldData balance_busy_pending() const;

  /// True when the atmosphere runs the AI suite anywhere in the job
  /// (collective — concurrent-layout ocean ranks have no atmosphere).
  bool ai_physics_active();
  /// Coupler-owned sections (accumulators, caches, RNG, AI normalizers).
  std::vector<io::Section> coupler_sections(bool ai_on) const;
  void restore_coupler_sections(const std::vector<io::Section>& sections,
                                bool ai_on);
  /// The full canonical section inventory, identical on every rank — the
  /// collective order add_section/read_section calls must follow.
  static std::vector<std::string> section_inventory(bool ai_on);
  /// This rank's sections keyed by name (absent components contribute none).
  std::map<std::string, io::FieldData> local_sections(bool ai_on);
  /// Shared by checkpoint/checkpoint_async: snapshot every section + scalar
  /// into a writer (gathers run inline; writes run inline or on the
  /// writer's stream lane depending on `async`), without finalizing.
  std::unique_ptr<io::CheckpointWriter> begin_checkpoint(
      const std::string& dir, bool async);
  /// Finalize the oldest in-flight async snapshot (collective).
  void finish_oldest_checkpoint();
  /// If `dir` has an in-flight snapshot, finalize FIFO up through it —
  /// never race two writers on one directory.
  void finish_pending_checkpoints_for(const std::string& dir);

  const par::Comm& global_;
  ScenarioSpec spec_;
  CoupledConfig& config_ = spec_.config;  ///< alias into spec_
  // Domain communicators must outlive the components referencing them.
  std::optional<par::Comm> atm_comm_;
  std::optional<par::Comm> ocn_comm_;

  // Immutable shared context (null when privately built) and the grids the
  // components reference — pointers into shared_ when present, otherwise
  // privately built with identical values.
  std::shared_ptr<const SharedInputs> shared_;
  std::shared_ptr<const grid::IcosahedralGrid> mesh_;
  std::shared_ptr<const grid::TripolarGrid> ocn_grid_;
  std::unique_ptr<atm::AtmModel> atm_;
  std::unique_ptr<ocn::OcnModel> ocn_;
  std::unique_ptr<ice::IceModel> ice_;

  // Communicator-bound coupling machinery; shared across fleet members on
  // one rank thread. Rebuilds (rebalance, restore_layout) allocate a fresh
  // object so donated plans detach rather than mutate.
  std::shared_ptr<const CouplingPlans> plans_;

  // Accumulated atmosphere exports (atm decomposition) for the ocean window.
  mct::AttrVect a2x_accum_;
  int accum_count_ = 0;
  // Latest fields cached on each side between coupling events.
  std::vector<double> sst_on_atm_;     // atm decomposition
  std::vector<double> sst_on_ice_, us_on_ice_, vs_on_ice_;  // ice decomposition

  // Runtime load rebalancing: the participant registry (always built; the
  // per-entry balancers are only emplaced when rebalance_every > 0).
  std::vector<BalanceParticipant> balance_;
  long long rebalance_migrations_ = 0;

  Clock clock_;
  pp::Stream stream_;     ///< async launch queue for the --overlap pipeline
  /// In-flight async checkpoint writers, oldest first (≤ 2: back-pressure).
  std::deque<std::unique_ptr<io::CheckpointWriter>> pending_checkpoints_;
  Rng rng_{0xA93E5Cull};  ///< driver stream; part of the checkpoint
  TimerRegistry timers_;  ///< compatibility shim, fed from obs spans
  std::size_t obs_first_event_ = 0;  ///< span-buffer mark at end of init
  double window_seconds_ = 0.0;
  BulkFluxConfig flux_config_;
};

/// Build the shared immutable context for `config` (mesh, ocean grid, regrid
/// matrices). Communicator-free; call once per process, outside par::run.
std::shared_ptr<const SharedInputs> build_shared_inputs(
    const CoupledConfig& config);
/// Same, additionally freezing `suite`'s trained weights into the context so
/// fleet ranks can thaw identical per-rank suites.
std::shared_ptr<const SharedInputs> build_shared_inputs(
    const CoupledConfig& config, ai::AiPhysicsSuite& suite);

}  // namespace ap3::cpl
