// Local kernel-cost measurement — the calibration provenance of DESIGN.md
// §4: "(a) execute every kernel for real at miniature resolution, (b)
// measure per-gridpoint-per-step cost". The measured ns/point values are
// printed alongside the model's flop densities so a reader can check that
// the workload descriptors are grounded in the real kernels, not invented.
#pragma once

namespace ap3::perf {

struct LocalKernelCosts {
  // Atmosphere (per cell, single level where applicable).
  double atm_dynamics_ns_per_cell = 0.0;
  double atm_tracer_ns_per_cell_level = 0.0;
  double atm_physics_ns_per_column = 0.0;
  // Ocean.
  double ocn_barotropic_ns_per_point = 0.0;
  double ocn_tracer_ns_per_point_level = 0.0;
  double ocn_mixing_ns_per_point_level = 0.0;
};

/// Runs the mini atmosphere and ocean kernels at a small fixed resolution on
/// one rank and times them. Deterministic workloads; wall times depend on
/// the host, which is the point — they are this machine's measurements.
LocalKernelCosts measure_local_costs();

}  // namespace ap3::perf
