// Tests for the CPL7-style coupler: clock alarms, bulk flux physics, the
// fully coupled AP3ESM driver in both task layouts (§5.1.2), coupling
// frequencies (§6.1), and air–sea feedback (typhoon cold wake direction).
#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "coupler/clock.hpp"
#include "coupler/driver.hpp"
#include "coupler/fluxes.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::cpl;

CoupledConfig small_coupled_config() {
  CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 5;
  return config;
}

// --- clock ------------------------------------------------------------------

TEST(Clock, AdvancesAndRings) {
  Clock clock(0.0, 480.0);
  const int ocn = clock.add_alarm("ocn", 5);
  const int ice = clock.add_alarm("ice", 1);
  int ocn_rings = 0, ice_rings = 0;
  for (int s = 0; s < 10; ++s) {
    if (clock.ringing(ocn)) ++ocn_rings;
    if (clock.ringing(ice)) ++ice_rings;
    clock.advance();
  }
  EXPECT_EQ(ocn_rings, 2);   // steps 0 and 5
  EXPECT_EQ(ice_rings, 10);  // every step (180/day cadence)
  EXPECT_DOUBLE_EQ(clock.now(), 4800.0);
  EXPECT_EQ(clock.alarm_name(ocn), "ocn");
}

TEST(Clock, PaperCouplingFrequencies) {
  // §6.1: 180, 36, 180 couplings/day for atm, ocn, ice. With the master step
  // at the atm period, the ocean alarm rings every 5th step.
  const double atm_period = constants::kSecondsPerDay / 180.0;
  Clock clock(0.0, atm_period);
  const int ocn = clock.add_alarm("ocn", 5);
  int rings = 0;
  for (int s = 0; s < 180; ++s) {
    if (clock.ringing(ocn)) ++rings;
    clock.advance();
  }
  EXPECT_EQ(rings, 36);
  EXPECT_DOUBLE_EQ(clock.now(), constants::kSecondsPerDay);
}

TEST(Clock, BadAlarmThrows) {
  Clock clock(0.0, 1.0);
  EXPECT_THROW(clock.add_alarm("x", 0), ap3::Error);
  EXPECT_THROW(Clock(0.0, -1.0), ap3::Error);
}

// --- bulk fluxes -----------------------------------------------------------------

TEST(Fluxes, SunWarmsOcean) {
  BulkFluxConfig config;
  std::vector<double> taux{0.05}, tauy{0.0}, tbot{300.0}, qbot{0.018},
      gsw{900.0}, glw{400.0}, precip{0.0}, sst{300.0}, ifrac{0.0};
  std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
  compute_air_sea_fluxes(config,
                         {taux, tauy, tbot, qbot, gsw, glw, precip, sst, ifrac},
                         {qnet, fresh, otaux, otauy});
  EXPECT_GT(qnet[0], 0.0);  // strong sun dominates
}

TEST(Fluxes, ColdDryAirCoolsOcean) {
  BulkFluxConfig config;
  std::vector<double> taux{0.3}, tauy{0.0}, tbot{275.0}, qbot{0.001},
      gsw{0.0}, glw{280.0}, precip{0.0}, sst{302.0}, ifrac{0.0};
  std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
  compute_air_sea_fluxes(config,
                         {taux, tauy, tbot, qbot, gsw, glw, precip, sst, ifrac},
                         {qnet, fresh, otaux, otauy});
  EXPECT_LT(qnet[0], -100.0);  // latent + sensible + longwave losses
}

TEST(Fluxes, StrongerWindMoreEvaporativeCooling) {
  BulkFluxConfig config;
  auto qnet_for = [&](double tau) {
    std::vector<double> taux{tau}, tauy{0.0}, tbot{295.0}, qbot{0.005},
        gsw{0.0}, glw{350.0}, precip{0.0}, sst{302.0}, ifrac{0.0};
    std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
    compute_air_sea_fluxes(
        config, {taux, tauy, tbot, qbot, gsw, glw, precip, sst, ifrac},
        {qnet, fresh, otaux, otauy});
    return qnet[0];
  };
  EXPECT_LT(qnet_for(1.0), qnet_for(0.05));  // typhoon winds cool more
}

TEST(Fluxes, IceInsulatesAndDampsStress) {
  BulkFluxConfig config;
  std::vector<double> taux{0.2}, tauy{0.1}, tbot{250.0}, qbot{0.001},
      gsw{100.0}, glw{250.0}, precip{1e-5}, sst{272.0}, ifrac{1.0};
  std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
  compute_air_sea_fluxes(config,
                         {taux, tauy, tbot, qbot, gsw, glw, precip, sst, ifrac},
                         {qnet, fresh, otaux, otauy});
  // Full cover: only the weak conductive flux, halved stress, no rain input.
  EXPECT_NEAR(qnet[0], 2.0 * (250.0 - 272.0), 1e-9);
  EXPECT_DOUBLE_EQ(otaux[0], 0.1);
  EXPECT_DOUBLE_EQ(fresh[0], 0.0);
}

TEST(Fluxes, QsatMonotone) {
  EXPECT_GT(qsat_surface(305.0), qsat_surface(285.0));
}

// --- coupled driver ----------------------------------------------------------------

TEST(Coupled, SequentialLayoutRunsAndStaysPhysical) {
  par::run(2, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    CoupledModel model(comm, config);
    EXPECT_TRUE(model.has_atm());
    EXPECT_TRUE(model.has_ocn());
    model.run_windows(2 * config.ocn_couple_ratio);
    EXPECT_EQ(model.windows_run(), 10);
    const CoupledDiagnostics diag = model.diagnostics();
    EXPECT_GT(diag.mean_sst_k, 270.0);
    EXPECT_LT(diag.mean_sst_k, 310.0);
    EXPECT_TRUE(std::isfinite(diag.max_surface_current));
    EXPECT_GE(diag.ice_fraction, 0.0);
    EXPECT_LT(diag.ice_fraction, 0.5);
    EXPECT_EQ(diag.windows, 10);
  });
}

TEST(Coupled, ConcurrentLayoutPartitionsComponents) {
  par::run(4, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    config.layout = Layout::kConcurrent;
    config.atm_ranks = 2;
    CoupledModel model(comm, config);
    if (comm.rank() < 2) {
      EXPECT_TRUE(model.has_atm());
      EXPECT_FALSE(model.has_ocn());
      EXPECT_TRUE(model.has_ice());
    } else {
      EXPECT_FALSE(model.has_atm());
      EXPECT_TRUE(model.has_ocn());
      EXPECT_FALSE(model.has_ice());
      EXPECT_THROW(model.ice(), ap3::Error);
    }
    model.run_windows(config.ocn_couple_ratio);
    const double sst = model.diagnostics().mean_sst_k;
    EXPECT_GT(sst, 270.0);
    EXPECT_LT(sst, 310.0);
  });
}

TEST(Coupled, SequentialAndConcurrentAgreeClosely) {
  // The two task layouts implement the same lagged coupling algorithm, so
  // global diagnostics must match to high precision (identical component
  // decompositions are not required for agreement of area means).
  static double sst_seq, sst_con;
  CoupledConfig config = small_coupled_config();
  par::run(2, [&](par::Comm& comm) {
    CoupledModel model(comm, config);
    model.run_windows(config.ocn_couple_ratio);
    const double sst = model.diagnostics().mean_sst_k;  // collective
    if (comm.rank() == 0) sst_seq = sst;
  });
  par::run(2, [&](par::Comm& comm) {
    CoupledConfig concurrent = config;
    concurrent.layout = Layout::kConcurrent;
    concurrent.atm_ranks = 1;
    CoupledModel model(comm, concurrent);
    model.run_windows(config.ocn_couple_ratio);
    const double sst = model.diagnostics().mean_sst_k;  // collective
    if (comm.rank() == 0) sst_con = sst;
  });
  EXPECT_NEAR(sst_seq, sst_con, 0.05);
}

TEST(Coupled, OceanCouplesAtConfiguredRatio) {
  par::run(1, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    CoupledModel model(comm, config);
    model.run_windows(10);
    // The ocean advanced 2 windows of 5 atm windows each.
    ASSERT_TRUE(model.has_ocn());
    EXPECT_GT(model.ocn().baroclinic_steps(), 0);
    // Atmosphere ran every window.
    EXPECT_EQ(model.atm().model_steps(), 10);
    const CoupledDiagnostics diag = model.diagnostics();
    EXPECT_EQ(diag.atm_steps, 10);
    EXPECT_EQ(diag.ocn_baroclinic_steps, model.ocn().baroclinic_steps());
  });
}

TEST(Coupled, TyphoonSeedTrackAndColdWake) {
  par::run(2, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    CoupledModel model(comm, config);

    atm::VortexSpec spec;
    spec.lon_deg = 135.0;
    spec.lat_deg = 18.0;
    spec.max_wind_ms = 45.0;
    spec.depression_m = 80.0;
    const double sst_before = model.sst_near(135.0, 18.0, 800.0);
    model.seed_typhoon(spec);
    const atm::VortexFix fix0 = model.track_typhoon(135.0, 18.0, 1200.0);
    ASSERT_TRUE(fix0.found);
    EXPECT_GT(fix0.max_wind_ms, 15.0);

    model.run_windows(2 * config.ocn_couple_ratio);
    const atm::VortexFix fix1 = model.track_typhoon(fix0.lon_deg, fix0.lat_deg,
                                                    2000.0);
    EXPECT_TRUE(fix1.found);
    // Cold wake: enhanced evaporative cooling under the storm lowers local
    // SST relative to the pre-storm state.
    const double sst_after = model.sst_near(fix0.lon_deg, fix0.lat_deg, 800.0);
    EXPECT_LT(sst_after, sst_before + 0.5);
    EXPECT_TRUE(std::isfinite(sst_after));
  });
}

TEST(Coupled, GetTimingReportsSypd) {
  // §6.2: GPTL-style timers + getTiming reduction (max across ranks),
  // whole-application measurement excluding initialization.
  par::run(2, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    CoupledModel model(comm, config);
    model.run_windows(config.ocn_couple_ratio);
    const TimingSummary summary = model.timing_summary();
    EXPECT_GT(summary.wall_seconds, 0.0);
    EXPECT_GT(summary.simulated_seconds, 0.0);
    EXPECT_GT(summary.sypd(), 0.0);
    // Phases present and nested times bounded by the run total.
    bool saw_atm = false, saw_ocn = false;
    for (const PhaseTiming& phase : summary.phases) {
      EXPECT_LE(phase.mean_seconds, phase.max_seconds + 1e-12);
      if (phase.name == "run:atm_ice_phase:atm_run") saw_atm = true;
      if (phase.name == "run:ocn_phase:ocn_run") saw_ocn = true;
      if (phase.name != "run") {
        EXPECT_LE(phase.max_seconds, summary.wall_seconds + 1e-9);
      }
    }
    EXPECT_TRUE(saw_atm);
    EXPECT_TRUE(saw_ocn);
    // The report renders.
    EXPECT_NE(summary.to_string().find("SYPD"), std::string::npos);
  });
}

TEST(Coupled, WindowSecondsConsistent) {
  par::run(1, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    CoupledModel model(comm, config);
    EXPECT_DOUBLE_EQ(model.atm_window_seconds(),
                     config.atm.model_dt_seconds());
    EXPECT_DOUBLE_EQ(model.ocn_window_seconds(),
                     5.0 * config.atm.model_dt_seconds());
  });
}

// --- config validation (regression: bad configs used to crash or hang deep
// inside construction instead of failing fast with a clear message) ----------

TEST(CoupledValidation, RejectsNonPositiveCoupleRatio) {
  CoupledConfig config = small_coupled_config();
  config.ocn_couple_ratio = 0;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
  config.ocn_couple_ratio = -3;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
}

TEST(CoupledValidation, RejectsNonPositiveRegridNeighbors) {
  CoupledConfig config = small_coupled_config();
  config.regrid_neighbors = 0;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
}

TEST(CoupledValidation, RejectsNegativeRebalanceEvery) {
  CoupledConfig config = small_coupled_config();
  config.rebalance_every = -1;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
}

TEST(CoupledValidation, RejectsNegativeIceDt) {
  CoupledConfig config = small_coupled_config();
  config.ice_dt_seconds = -1.0;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
}

TEST(CoupledValidation, RejectsBadConcurrentPartition) {
  CoupledConfig config = small_coupled_config();
  config.layout = Layout::kConcurrent;
  config.atm_ranks = -1;
  EXPECT_THROW(validate_coupled_config(config, 4), ap3::Error);
  // atm_ranks must leave at least one rank for the ocean.
  config.atm_ranks = 4;
  EXPECT_THROW(validate_coupled_config(config, 4), ap3::Error);
  config.atm_ranks = 5;
  EXPECT_THROW(validate_coupled_config(config, 4), ap3::Error);
  // A concurrent layout needs at least two ranks to partition.
  config.atm_ranks = 1;
  EXPECT_THROW(validate_coupled_config(config, 1), ap3::Error);
  // And the boundary case that IS legal.
  EXPECT_NO_THROW(validate_coupled_config(config, 2));
}

TEST(CoupledValidation, ConstructionFailsFastOnBadConfig) {
  par::run(1, [](par::Comm& comm) {
    CoupledConfig config = small_coupled_config();
    config.ocn_couple_ratio = 0;
    EXPECT_THROW(CoupledModel model(comm, config), ap3::Error);
  });
}

}  // namespace
