#include "tensor/optimizer.hpp"

#include <cmath>

namespace ap3::tensor {

Adam::Adam(Layer& model, AdamConfig config) : config_(config) {
  model.collect_params(params_);
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    m_[p].assign(params_[p].value->size(), 0.0f);
    v_[p].assign(params_[p].value->size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Tensor& value = *params_[p].value;
    const Tensor& grad = *params_[p].grad;
    for (std::size_t i = 0; i < value.size(); ++i) {
      m_[p][i] = config_.beta1 * m_[p][i] + (1.0f - config_.beta1) * grad[i];
      v_[p][i] =
          config_.beta2 * v_[p][i] + (1.0f - config_.beta2) * grad[i] * grad[i];
      const float mhat = m_[p][i] / bc1;
      const float vhat = v_[p][i] / bc2;
      value[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace ap3::tensor
