#include "mct/router.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "base/error.hpp"

namespace ap3::mct {

Router Router::build(int rank, const GlobalSegMap& src,
                     const GlobalSegMap& dst) {
  Router router;
  router.rank_ = rank;

  // Sender side: walk my source points in local order; any point present in
  // the destination map is shipped to its destination owner. Wire order per
  // peer therefore follows my local source index order.
  const std::vector<std::int64_t> my_src = src.local_ids(rank);
  for (std::size_t k = 0; k < my_src.size(); ++k) {
    const std::int64_t gid = my_src[k];
    if (!dst.contains(gid)) continue;
    const int peer = dst.owner(gid);
    router.send_plan_[peer].push_back(static_cast<std::int64_t>(k));
  }

  // Receiver side: for each of my destination points find the source owner;
  // within a peer, order by that peer's local source index to match the wire
  // order the sender uses.
  const std::vector<std::int64_t> my_dst = dst.local_ids(rank);
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> pending;
  for (std::size_t k = 0; k < my_dst.size(); ++k) {
    const std::int64_t gid = my_dst[k];
    if (!src.contains(gid)) continue;
    const int peer = src.owner(gid);
    pending[peer].push_back(
        {src.local_index(peer, gid), static_cast<std::int64_t>(k)});
  }
  for (auto& [peer, pairs] : pending) {
    std::sort(pairs.begin(), pairs.end());
    std::vector<std::int64_t>& plan = router.recv_plan_[peer];
    plan.reserve(pairs.size());
    for (const auto& [src_idx, dst_idx] : pairs) plan.push_back(dst_idx);
  }
  return router;
}

std::int64_t Router::points_sent() const {
  std::int64_t total = 0;
  for (const auto& [peer, plan] : send_plan_)
    total += static_cast<std::int64_t>(plan.size());
  return total;
}

std::int64_t Router::points_received() const {
  std::int64_t total = 0;
  for (const auto& [peer, plan] : recv_plan_)
    total += static_cast<std::int64_t>(plan.size());
  return total;
}

namespace {
void push_i64(std::vector<std::uint8_t>& blob, std::int64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  blob.insert(blob.end(), p, p + sizeof(v));
}
std::int64_t read_i64(const std::vector<std::uint8_t>& blob, std::size_t& pos) {
  AP3_REQUIRE_MSG(pos + sizeof(std::int64_t) <= blob.size(),
                  "truncated Router blob");
  std::int64_t v;
  std::memcpy(&v, blob.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}
void write_plan(std::vector<std::uint8_t>& blob,
                const std::map<int, std::vector<std::int64_t>>& plan) {
  push_i64(blob, static_cast<std::int64_t>(plan.size()));
  for (const auto& [peer, indices] : plan) {
    push_i64(blob, peer);
    push_i64(blob, static_cast<std::int64_t>(indices.size()));
    for (std::int64_t v : indices) push_i64(blob, v);
  }
}
std::map<int, std::vector<std::int64_t>> read_plan(
    const std::vector<std::uint8_t>& blob, std::size_t& pos) {
  std::map<int, std::vector<std::int64_t>> plan;
  const std::int64_t npeers = read_i64(blob, pos);
  for (std::int64_t p = 0; p < npeers; ++p) {
    const int peer = static_cast<int>(read_i64(blob, pos));
    const std::int64_t n = read_i64(blob, pos);
    std::vector<std::int64_t>& indices = plan[peer];
    indices.reserve(static_cast<std::size_t>(n));
    for (std::int64_t k = 0; k < n; ++k) indices.push_back(read_i64(blob, pos));
  }
  return plan;
}
}  // namespace

std::vector<std::uint8_t> Router::serialize() const {
  std::vector<std::uint8_t> blob;
  push_i64(blob, rank_);
  write_plan(blob, send_plan_);
  write_plan(blob, recv_plan_);
  return blob;
}

Router Router::deserialize(const std::vector<std::uint8_t>& blob) {
  Router router;
  std::size_t pos = 0;
  router.rank_ = static_cast<int>(read_i64(blob, pos));
  router.send_plan_ = read_plan(blob, pos);
  router.recv_plan_ = read_plan(blob, pos);
  return router;
}

void Router::save(const std::string& path) const {
  const auto blob = serialize();
  std::ofstream out(path, std::ios::binary);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

Router Router::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AP3_REQUIRE_MSG(in, "cannot open " << path);
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return deserialize(blob);
}

}  // namespace ap3::mct
