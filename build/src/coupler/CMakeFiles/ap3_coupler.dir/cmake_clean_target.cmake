file(REMOVE_RECURSE
  "libap3_coupler.a"
)
