// Core-group execution model: run a kernel on the MPE or offload to CPEs,
// always producing identical numerical results, while a simulated clock
// charges architecture-dependent time.
//
// This is the mechanism behind the paper's "MPE" vs "CPE+OPT" comparison
// (Fig. 8a / Table 2): the MPE path charges one slow management core, the
// CPE path charges the 64-core cluster plus DMA staging. Work is described
// by (flops, bytes_touched) which component kernels report per step.
#pragma once

#include <cstdint>
#include <string>

#include "sunway/arch.hpp"
#include "sunway/dma.hpp"

namespace ap3::sunway {

enum class ExecTarget { kMpe, kCpeCluster };

/// Work descriptor for one kernel invocation on one core group.
struct KernelWork {
  double flops = 0.0;        ///< floating-point operations
  double bytes = 0.0;        ///< main-memory traffic (moved through DMA on CPE)
  double ai_flops = 0.0;     ///< tensor-kernel fraction (matmul-like; §5.2.1)
};

/// Accumulates simulated seconds for one core group (one MPI process in the
/// paper's decomposition: one process per CG).
class CoreGroup {
 public:
  /// Charge `work` executed on `target`; returns the simulated seconds added.
  double charge(const KernelWork& work, ExecTarget target);

  double simulated_seconds() const { return seconds_; }
  std::uint64_t kernels_run() const { return kernels_; }
  void reset() {
    seconds_ = 0.0;
    kernels_ = 0;
  }

  /// Predicted time for `work` on `target`, without charging.
  static double predict(const KernelWork& work, ExecTarget target);

 private:
  double seconds_ = 0.0;
  std::uint64_t kernels_ = 0;
};

/// Time model for a GPU device on the ORISE system (used by the 1-km ocean
/// experiments): kernel time plus PCIe staging.
double orise_gpu_seconds(const KernelWork& work);

}  // namespace ap3::sunway
