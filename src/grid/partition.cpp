#include "grid/partition.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace ap3::grid {

Range1D partition_1d(std::int64_t n, int parts, int rank) {
  AP3_REQUIRE(parts > 0 && rank >= 0 && rank < parts);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t r = rank;
  const std::int64_t begin = r * base + std::min<std::int64_t>(r, extra);
  const std::int64_t len = base + (r < extra ? 1 : 0);
  return {begin, begin + len};
}

int owner_1d(std::int64_t n, int parts, std::int64_t index) {
  AP3_REQUIRE(index >= 0 && index < n);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t cutoff = extra * (base + 1);
  if (index < cutoff) return static_cast<int>(index / (base + 1));
  return static_cast<int>(extra + (index - cutoff) / base);
}

BlockPartition2D::BlockPartition2D(int nx, int ny, int px, int py)
    : nx_(nx), ny_(ny), px_(px), py_(py) {
  AP3_REQUIRE_MSG(px >= 1 && py >= 1 && px <= nx && py <= ny,
                  "block partition " << px << "x" << py
                                     << " invalid for grid " << nx << "x" << ny);
}

BlockPartition2D BlockPartition2D::balanced(int nx, int ny, int nranks) {
  AP3_REQUIRE(nranks >= 1);
  // Pick the factorization closest to the grid's aspect ratio.
  int best_px = 1;
  double best_score = 1e300;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    if (px > nx || py > ny) continue;
    const double block_aspect =
        (static_cast<double>(nx) / px) / (static_cast<double>(ny) / py);
    const double score = std::abs(std::log(block_aspect));
    if (score < best_score) {
      best_score = score;
      best_px = px;
    }
  }
  AP3_REQUIRE_MSG(best_px * (nranks / best_px) == nranks,
                  "no valid block factorization");
  return BlockPartition2D(nx, ny, best_px, nranks / best_px);
}

Range1D BlockPartition2D::x_range(int rank) const {
  return partition_1d(nx_, px_, block_x(rank));
}

Range1D BlockPartition2D::y_range(int rank) const {
  return partition_1d(ny_, py_, block_y(rank));
}

int BlockPartition2D::owner(int i, int j) const {
  const int bx = owner_1d(nx_, px_, i);
  const int by = owner_1d(ny_, py_, j);
  return rank_of_block(bx, by);
}

ActiveCompaction::ActiveCompaction(const TripolarGrid& grid, int nranks)
    : nranks_(nranks), per_rank_(static_cast<size_t>(nranks)) {
  AP3_REQUIRE(nranks >= 1);
  std::vector<CompactColumn> active;
  for (int j = 0; j < grid.ny(); ++j) {
    for (int i = 0; i < grid.nx(); ++i) {
      const int kmt = grid.kmt(i, j);
      if (kmt > 0) active.push_back({i, j, kmt});
    }
  }
  total_columns_ = static_cast<std::int64_t>(active.size());
  for (const CompactColumn& col : active) total_points_ += col.kmt;
  removed_fraction_ = 1.0 - static_cast<double>(total_points_) /
                                static_cast<double>(grid.total_points());

  // Greedy prefix split balancing 3-D points: walk the compact column list
  // and cut whenever the running load reaches the per-rank target. Columns
  // stay contiguous in row-major order, preserving halo locality.
  const double target = static_cast<double>(total_points_) / nranks;
  int rank = 0;
  double load = 0.0;
  for (const CompactColumn& col : active) {
    if (rank < nranks - 1 && load + col.kmt * 0.5 >= target * (rank + 1)) {
      ++rank;
    }
    per_rank_[static_cast<size_t>(rank)].push_back(col);
    load += col.kmt;
  }
}

double ActiveCompaction::load_imbalance() const {
  double max_load = 0.0, total = 0.0;
  int nonempty = 0;
  for (const auto& cols : per_rank_) {
    double load = 0.0;
    for (const CompactColumn& col : cols) load += col.kmt;
    max_load = std::max(max_load, load);
    total += load;
    if (!cols.empty()) ++nonempty;
  }
  if (nonempty == 0) return 0.0;
  const double mean = total / nranks_;
  return mean == 0.0 ? 0.0 : max_load / mean;
}

}  // namespace ap3::grid
