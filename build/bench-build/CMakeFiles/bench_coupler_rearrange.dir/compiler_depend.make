# Empty compiler generated dependencies file for bench_coupler_rearrange.
# This may be replaced when dependencies are built.
