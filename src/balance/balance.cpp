#include "balance/balance.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "mct/router.hpp"
#include "obs/obs.hpp"

namespace ap3::balance {

double MeasuredCost::max_seconds() const {
  double m = 0.0;
  for (const double s : per_rank_seconds) m = std::max(m, s);
  return m;
}

double MeasuredCost::mean_seconds() const {
  if (per_rank_seconds.empty()) return 0.0;
  double total = 0.0;
  for (const double s : per_rank_seconds) total += s;
  return total / static_cast<double>(per_rank_seconds.size());
}

double MeasuredCost::imbalance() const {
  const double mean = mean_seconds();
  return mean > 0.0 ? max_seconds() / mean : 1.0;
}

MeasuredCost measured_phase_cost(const par::Comm& comm,
                                 std::string_view span_name,
                                 std::size_t first_event,
                                 double extra_local_seconds) {
  double local = extra_local_seconds;
  for (const obs::SpanStats& s : obs::local().aggregate_spans(first_event)) {
    if (s.name == span_name) {
      local += s.total_seconds;
      break;
    }
  }
  MeasuredCost cost;
  cost.per_rank_seconds =
      comm.allgather(std::span<const double>(&local, 1));
  return cost;
}

CutPlan plan_rebalance(std::span<const double> cell_weight, int nx, int ny,
                       const grid::BlockPartition2D& old_partition,
                       const MeasuredCost& cost) {
  const int nranks = old_partition.nranks();
  AP3_REQUIRE(cell_weight.size() ==
              static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  AP3_REQUIRE(cost.per_rank_seconds.size() == static_cast<std::size_t>(nranks));

  // Seconds per weight unit of each old owner. A rank whose block carries no
  // weight contributes no attributable cost (its time is fixed overhead).
  std::vector<double> block_weight(static_cast<std::size_t>(nranks), 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      block_weight[static_cast<std::size_t>(old_partition.owner(i, j))] +=
          cell_weight[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) + static_cast<std::size_t>(i)];
  std::vector<double> rate(static_cast<std::size_t>(nranks), 0.0);
  for (int r = 0; r < nranks; ++r)
    if (block_weight[static_cast<std::size_t>(r)] > 0.0)
      rate[static_cast<std::size_t>(r)] =
          cost.per_rank_seconds[static_cast<std::size_t>(r)] /
          block_weight[static_cast<std::size_t>(r)];

  // Attributed per-cell cost and its marginals: a tensor-product cut cannot
  // follow arbitrary 2-D structure, but balancing both marginals captures
  // band-shaped skew (the common case: latitude bands of sea ice, longitude
  // bands of straggling nodes).
  std::vector<double> attributed(cell_weight.size(), 0.0);
  std::vector<double> wx(static_cast<std::size_t>(nx), 0.0);
  std::vector<double> wy(static_cast<std::size_t>(ny), 0.0);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const std::size_t cell =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
          static_cast<std::size_t>(i);
      const double c = cell_weight[cell] *
                       rate[static_cast<std::size_t>(old_partition.owner(i, j))];
      attributed[cell] = c;
      wx[static_cast<std::size_t>(i)] += c;
      wy[static_cast<std::size_t>(j)] += c;
    }
  }

  CutPlan plan;
  plan.cuts.x = grid::weighted_cuts(wx, old_partition.px(), /*nonempty=*/true);
  plan.cuts.y = grid::weighted_cuts(wy, old_partition.py(), /*nonempty=*/true);
  plan.current_max_seconds = cost.max_seconds();

  const grid::BlockPartition2D next(nx, ny, plan.cuts);
  std::vector<double> new_load(static_cast<std::size_t>(nranks), 0.0);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const std::size_t cell =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
          static_cast<std::size_t>(i);
      new_load[static_cast<std::size_t>(next.owner(i, j))] += attributed[cell];
      const auto w = static_cast<std::int64_t>(cell_weight[cell]);
      plan.total_weight += w;
      if (next.owner(i, j) != old_partition.owner(i, j)) plan.moved_weight += w;
    }
  }
  for (const double load : new_load)
    plan.predicted_max_seconds = std::max(plan.predicted_max_seconds, load);
  return plan;
}

LoadBalancer::LoadBalancer(std::string name, RebalancePolicy policy,
                           perf::MachineKind machine)
    : name_(std::move(name)), policy_(policy), net_(machine) {}

Decision LoadBalancer::consider(std::span<const double> cell_weight, int nx,
                                int ny,
                                const grid::BlockPartition2D& old_partition,
                                const MeasuredCost& cost,
                                double bytes_per_weight_unit) {
  const std::string prefix = "balance:" + name_ + ":";
  obs::counter_add(prefix + "considered", 1.0);

  Decision d;
  d.imbalance = cost.imbalance();
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    d.reason = "cooldown";
    obs::counter_add(prefix + "skipped_cooldown", 1.0);
    return d;
  }
  if (cost.mean_seconds() < policy_.min_phase_seconds) {
    d.reason = "negligible";
    obs::counter_add(prefix + "skipped_negligible", 1.0);
    return d;
  }
  if (d.imbalance < policy_.imbalance_enter) {
    d.reason = "balanced";
    obs::counter_add(prefix + "skipped_balanced", 1.0);
    return d;
  }

  d.plan = plan_rebalance(cell_weight, nx, ny, old_partition, cost);
  if (d.plan.cuts == old_partition.cuts()) {
    d.reason = "no_change";
    obs::counter_add(prefix + "skipped_no_change", 1.0);
    return d;
  }
  const double savings_per_window =
      d.plan.current_max_seconds - d.plan.predicted_max_seconds;
  if (savings_per_window <=
      d.plan.current_max_seconds * policy_.min_improvement) {
    d.reason = "no_gain";
    obs::counter_add(prefix + "skipped_gain", 1.0);
    return d;
  }
  d.predicted_savings_seconds = savings_per_window * policy_.amortize_windows;

  // Migration cost: every moved weight unit crosses the network once, spread
  // across the ranks, plus one small collective to agree on the plan. With a
  // supernode-aware rank mapping a fraction of the moves stays on the fast
  // intra-supernode path (see set_block_topology); without one everything is
  // charged at the oversubscribed inter-supernode rate.
  const int nranks = old_partition.nranks();
  const double moved_bytes =
      static_cast<double>(d.plan.moved_weight) * bytes_per_weight_unit;
  const double per_rank_bytes = moved_bytes / std::max(1, nranks);
  const double f = intra_migration_fraction_;
  double wire_seconds = 2.0 * net_.p2p_seconds((1.0 - f) * per_rank_bytes,
                                               /*same_supernode=*/false);
  if (f > 0.0)
    wire_seconds +=
        2.0 * net_.p2p_seconds(f * per_rank_bytes, /*same_supernode=*/true);
  d.migration_cost_seconds =
      wire_seconds + net_.allreduce_seconds(8.0, nranks);
  if (!policy_.ignore_migration_cost &&
      d.predicted_savings_seconds <= d.migration_cost_seconds) {
    d.reason = "migration_cost";
    obs::counter_add(prefix + "skipped_cost", 1.0);
    return d;
  }

  d.migrate = true;
  d.reason = "migrate";
  cooldown_remaining_ = policy_.cooldown;
  obs::counter_add(prefix + "migrations", 1.0);
  return d;
}

void LoadBalancer::set_intra_migration_fraction(double fraction) {
  AP3_REQUIRE_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "intra-migration fraction " << fraction
                                              << " outside [0, 1]");
  intra_migration_fraction_ = fraction;
}

ColumnMigrator::ColumnMigrator(const par::Comm& comm,
                               const std::vector<std::int64_t>& old_gids,
                               const std::vector<std::int64_t>& new_gids)
    : rearranger_(comm, mct::Router::build(
                            comm.rank(), mct::GlobalSegMap::build(comm, old_gids),
                            mct::GlobalSegMap::build(comm, new_gids))) {
  for (const auto& [peer, indices] : rearranger_.router().send_plan())
    if (peer != comm.rank())
      columns_moved_offrank_ += static_cast<std::int64_t>(indices.size());
}

void ColumnMigrator::migrate(const mct::AttrVect& src, mct::AttrVect& dst) const {
  rearranger_.rearrange(src, dst, mct::Strategy::kSplitPhase);
}

}  // namespace ap3::balance
