#include "mct/attrvect.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace ap3::mct {

AttrVect::AttrVect(std::vector<std::string> fields, std::size_t num_points)
    : fields_(std::move(fields)), num_points_(num_points) {
  for (std::size_t a = 0; a < fields_.size(); ++a)
    for (std::size_t b = a + 1; b < fields_.size(); ++b)
      AP3_REQUIRE_MSG(fields_[a] != fields_[b],
                      "duplicate AttrVect field '" << fields_[a] << "'");
  data_.assign(fields_.size() * num_points_, 0.0);
}

bool AttrVect::has_field(const std::string& name) const {
  return std::find(fields_.begin(), fields_.end(), name) != fields_.end();
}

std::size_t AttrVect::field_index(const std::string& name) const {
  const auto it = std::find(fields_.begin(), fields_.end(), name);
  AP3_REQUIRE_MSG(it != fields_.end(), "AttrVect has no field '" << name << "'");
  return static_cast<std::size_t>(it - fields_.begin());
}

std::span<double> AttrVect::field(const std::string& name) {
  return field(field_index(name));
}
std::span<const double> AttrVect::field(const std::string& name) const {
  return field(field_index(name));
}
std::span<double> AttrVect::field(std::size_t index) {
  AP3_REQUIRE(index < fields_.size());
  return {data_.data() + index * num_points_, num_points_};
}
std::span<const double> AttrVect::field(std::size_t index) const {
  AP3_REQUIRE(index < fields_.size());
  return {data_.data() + index * num_points_, num_points_};
}

void AttrVect::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

AttrVect AttrVect::subset(const std::vector<std::string>& keep) const {
  AttrVect out(keep, num_points_);
  for (const std::string& name : keep) {
    const auto src = field(name);
    auto dst = out.field(name);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace ap3::mct
