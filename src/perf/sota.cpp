#include "perf/sota.hpp"

#include <cmath>

#include "base/error.hpp"

namespace ap3::perf {

std::vector<SotaPoint> sota_survey() {
  // Literature points of Fig. 2 (grid totals estimated from the cited
  // configurations; SYPD as reported in §4).
  std::vector<SotaPoint> points = {
      {"HadGEM3-GC3.1-HH", 2018, 1.2e9, 0.49, false},
      {"CNRM-CM6-1-HR", 2019, 1.1e8, 2.0, false},   // favorable 1e8 case
      {"E3SM v1 HR", 2019, 8.6e8, 0.8, false},
      {"EC-Earth3P-VHR", 2024, 1.1e9, 2.8, false},
      {"ICON (MSA, 5km)", 2023, 2.4e9, 0.47, false},
      {"nextGEMS 9v5km", 2025, 1.6e9, 1.64, false},  // 600 SDPD
      {"CESM 2.2 (Sunway, 5v3km)", 2024, 6.0e9, 0.61, false},  // favorable 1e9 case
      // This paper:
      {"AP3ESM 3v2", 2025, 1.5e10, 1.01, true},
      {"AP3ESM 1v1", 2025, 7.2e10, 0.54, true},
  };
  return points;
}

LogLinearFit fit_sota_line() {
  const auto survey = sota_survey();
  const SotaPoint* cnrm = nullptr;
  const SotaPoint* cesm = nullptr;
  for (const SotaPoint& p : survey) {
    if (p.model.rfind("CNRM", 0) == 0) cnrm = &p;
    if (p.model.rfind("CESM", 0) == 0) cesm = &p;
  }
  AP3_REQUIRE(cnrm && cesm);
  LogLinearFit fit;
  fit.slope = (std::log10(cesm->sypd) - std::log10(cnrm->sypd)) /
              (std::log10(cesm->total_grid_points) -
               std::log10(cnrm->total_grid_points));
  fit.intercept =
      std::log10(cnrm->sypd) - fit.slope * std::log10(cnrm->total_grid_points);
  return fit;
}

double LogLinearFit::sypd_at(double total_grid_points) const {
  return std::pow(10.0, intercept + slope * std::log10(total_grid_points));
}

bool beats_sota(const SotaPoint& point) {
  return point.sypd > fit_sota_line().sypd_at(point.total_grid_points);
}

}  // namespace ap3::perf
