// Batched, precision-policied, backend-dispatched inference engine (§5.2).
//
// The engine is the single entry point the physics–dynamics interface uses
// to run the AI suite: it micro-batches atmosphere columns, drives every
// tensor kernel through the pp portability layer on the configured
// ExecSpace, and applies one of three precision policies:
//
//   kFp64        — FP32 storage, FP64 dot-product accumulation. The
//                  verification reference.
//   kFp32        — FP32 throughout (the deployment mode; bitwise the
//                  pre-engine serial path).
//   kGroupScaled — FP32 accumulation with weights and batch activations
//                  threaded through precision::GroupScaledArray (§5.2.3).
//                  Power-of-two group scales make the FP32 round trip exact
//                  for data whose per-group dynamic range fits the FP32
//                  exponent (always true for trained weights/activations
//                  here), so outputs stay bit-identical to kFp32 while the
//                  staged payload models the half-width storage/bandwidth.
//
// Backend contract: all forward kernels are per-output-element with
// fixed-order accumulation (src/tensor), so for a fixed policy the outputs
// are bit-identical across kSerial / kHostThreads / kSunwayCPE — including
// the LDM-tiled GEMM panels on the CPE simulator.
//
// With `overlap` set the engine double-buffers micro-batches on pp::Streams:
// the rank thread packs/normalizes batch i+1 while pool workers run the CNN
// and MLP forwards of batch i (each network on its own stream, so the two
// models also overlap each other). The chunk plan of an async launch equals
// the sync plan, so overlap never moves a bit.
//
// Verification mode (`verify`): every micro-batch is recomputed under the
// kFp64 reference on kSerial and the maximum ULP distance between the active
// policy's outputs and the reference is recorded (stats().max_verify_ulp)
// and required to stay within `ulp_bound`.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pp/exec.hpp"
#include "precision/group_scaled.hpp"
#include "tensor/tensor.hpp"

namespace ap3::pp {
class Stream;
}

namespace ap3::ai {

class AiPhysicsSuite;
struct SuiteOutput;

enum class PrecisionPolicy { kFp64, kFp32, kGroupScaled };

inline const char* to_string(PrecisionPolicy policy) {
  switch (policy) {
    case PrecisionPolicy::kFp64: return "fp64";
    case PrecisionPolicy::kFp32: return "fp32";
    case PrecisionPolicy::kGroupScaled: return "group_scaled";
  }
  return "?";
}

struct EngineConfig {
  pp::ExecSpace space = pp::ExecSpace::kSerial;
  PrecisionPolicy precision = PrecisionPolicy::kFp32;
  std::size_t micro_batch = 64;  ///< columns per micro-batch (0: one batch)
  bool overlap = false;          ///< double-buffer micro-batches on streams
  bool verify = false;           ///< audit against the kFp64 reference
  /// Max ULP distance tolerated by verify mode. 0 for kFp64 (it *is* the
  /// reference); conservative documented bound for the FP32-accumulation
  /// policies (measured maxima for these network depths are O(100)).
  std::uint64_t ulp_bound = 1u << 16;
  std::size_t group_size = 64;   ///< GroupScaledArray group length
  /// SIMD pack width for the forward tensor kernels (tensor::Dispatch.pack):
  /// one of {1,2,4,8,16}, or 0 for the scalar reference kernels. Outputs are
  /// bitwise invariant to this knob (pp/pack.hpp); it only moves columns/s.
  std::size_t pack_width = pp::kDefaultPackWidth;
};

struct EngineStats {
  std::uint64_t runs = 0;
  std::uint64_t columns = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_verify_ulp = 0;  ///< across all verified batches
  /// Storage model of the group-scaled weight path (bytes).
  double gs_weight_bytes = 0.0;
  double fp32_weight_bytes = 0.0;
};

/// ULP distance between two floats (0 for bitwise-equal, including ±0);
/// max-uint64 if either is NaN or they differ in sign of infinity.
std::uint64_t ulp_distance(float a, float b);

class InferenceEngine {
 public:
  /// The engine borrows the suite (weights + normalizers); the suite owns
  /// its default engine, so lifetime is naturally shared.
  InferenceEngine(AiPhysicsSuite& suite, EngineConfig config = {});
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Batched inference: columns (B, 5, levels) in raw physical units,
  /// tskin/coszr per row; returns denormalized tendencies and fluxes.
  SuiteOutput run(const tensor::Tensor& columns, std::span<const double> tskin,
                  std::span<const double> coszr);

  const EngineConfig& config() const { return config_; }
  /// Reconfigure; re-derives the group-scaled weight images when needed.
  void set_config(const EngineConfig& config);
  const EngineStats& stats() const { return stats_; }

 private:
  struct Slot;
  void refresh_gs_weights();
  void forward_slot(Slot& slot, const tensor::Tensor& columns,
                    std::span<const double> tskin,
                    std::span<const double> coszr, SuiteOutput& out);
  void verify_slot(const Slot& slot, const tensor::Tensor& columns,
                   std::span<const double> tskin,
                   std::span<const double> coszr, const SuiteOutput& out);

  AiPhysicsSuite& suite_;
  EngineConfig config_;
  EngineStats stats_;
  /// Group-scaled images of every parameter tensor (CNN params first, then
  /// MLP), refreshed whenever the policy or the weights change.
  std::vector<precision::GroupScaledArray> gs_params_;
  std::unique_ptr<pp::Stream> cnn_stream_, mlp_stream_;
};

}  // namespace ap3::ai
