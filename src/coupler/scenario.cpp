#include "coupler/scenario.hpp"

#include <utility>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace ap3::cpl {

using constants::kDegToRad;

void build_regrid_matrices(const grid::IcosahedralGrid& mesh,
                           const grid::TripolarGrid& ogrid, int neighbors,
                           mct::SparseMatrix& a2o, mct::SparseMatrix& o2a) {
  std::vector<mct::GeoPoint> atm_points(mesh.num_cells());
  for (std::size_t c = 0; c < mesh.num_cells(); ++c) {
    atm_points[c] = {mesh.cell_center(c).lon(), mesh.cell_center(c).lat()};
  }
  std::vector<mct::GeoPoint> ocn_points;
  std::vector<std::int64_t> ocn_gids;
  for (int j = 0; j < ogrid.ny(); ++j) {
    for (int i = 0; i < ogrid.nx(); ++i) {
      if (ogrid.kmt(i, j) == 0) continue;
      ocn_points.push_back(
          {ogrid.lon_deg(i) * kDegToRad, ogrid.lat_deg(j) * kDegToRad});
      ocn_gids.push_back(static_cast<std::int64_t>(j) * ogrid.nx() + i);
    }
  }

  // atm -> ocn: rows are ocean gids, columns atm cell ids.
  mct::SparseMatrix a2o_compact =
      mct::SparseMatrix::inverse_distance(ocn_points, atm_points, neighbors);
  std::vector<mct::MatrixEntry> a2o_entries = a2o_compact.entries();
  for (mct::MatrixEntry& e : a2o_entries)
    e.dst = ocn_gids[static_cast<std::size_t>(e.dst)];
  a2o = mct::SparseMatrix(std::move(a2o_entries));

  // ocn -> atm: rows are atm cell ids, columns ocean gids.
  mct::SparseMatrix o2a_compact =
      mct::SparseMatrix::inverse_distance(atm_points, ocn_points, neighbors);
  std::vector<mct::MatrixEntry> o2a_entries = o2a_compact.entries();
  for (mct::MatrixEntry& e : o2a_entries)
    e.src = ocn_gids[static_cast<std::size_t>(e.src)];
  o2a = mct::SparseMatrix(std::move(o2a_entries));
}

std::shared_ptr<SharedInputs> SharedInputs::build_impl(
    const SharedInputsSpec& spec) {
  AP3_REQUIRE_MSG(spec.regrid_neighbors >= 1,
                  "SharedInputs: regrid_neighbors must be >= 1, got "
                      << spec.regrid_neighbors);
  auto out = std::shared_ptr<SharedInputs>(new SharedInputs());
  out->spec_ = spec;
  out->mesh_ = std::make_shared<const grid::IcosahedralGrid>(spec.mesh_n);
  out->ocean_grid_ = std::make_shared<const grid::TripolarGrid>(spec.ocn_grid);
  build_regrid_matrices(*out->mesh_, *out->ocean_grid_, spec.regrid_neighbors,
                        out->a2o_, out->o2a_);
  return out;
}

std::shared_ptr<const SharedInputs> SharedInputs::build(
    const SharedInputsSpec& spec) {
  return build_impl(spec);
}

std::shared_ptr<const SharedInputs> SharedInputs::build(
    const SharedInputsSpec& spec, ai::AiPhysicsSuite& suite) {
  std::shared_ptr<SharedInputs> out = build_impl(spec);
  auto frozen = std::make_shared<FrozenSuite>();
  frozen->config = suite.config();
  frozen->input = suite.input_norm();
  frozen->tendency = suite.tendency_norm();
  frozen->rad_input = suite.rad_input_norm();
  frozen->flux = suite.flux_norm();
  frozen->cnn_weights = suite.cnn().model().save_weights();
  frozen->mlp_weights = suite.mlp().model().save_weights();
  frozen->fitted = suite.normalized();
  out->frozen_ = std::move(frozen);
  return out;
}

const FrozenSuite& SharedInputs::frozen_suite() const {
  AP3_REQUIRE_MSG(frozen_ != nullptr,
                  "SharedInputs holds no frozen AI suite; build it with "
                  "build(spec, suite)");
  return *frozen_;
}

std::shared_ptr<ai::AiPhysicsSuite> SharedInputs::materialize_suite() const {
  const FrozenSuite& f = frozen_suite();
  auto suite = std::make_shared<ai::AiPhysicsSuite>(f.config);
  if (f.fitted) suite->set_normalizers(f.input, f.tendency, f.rad_input, f.flux);
  suite->cnn().model().load_weights(f.cnn_weights);
  suite->mlp().model().load_weights(f.mlp_weights);
  return suite;
}

std::size_t SharedInputs::resident_bytes() const {
  std::size_t bytes = mesh_->resident_bytes() + ocean_grid_->resident_bytes() +
                      a2o_.resident_bytes() + o2a_.resident_bytes();
  if (frozen_) {
    bytes += (frozen_->cnn_weights.size() + frozen_->mlp_weights.size()) *
             sizeof(float);
  }
  return bytes;
}

}  // namespace ap3::cpl
