file(REMOVE_RECURSE
  "libap3_mct.a"
)
