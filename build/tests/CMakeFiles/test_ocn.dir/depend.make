# Empty dependencies file for test_ocn.
# This may be replaced when dependencies are built.
