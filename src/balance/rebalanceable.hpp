#pragma once
// balance::Rebalanceable — the component-side contract of the load balancer.
//
// Any coupled component that wants to participate in runtime load balancing
// implements this interface.  There are two tiers of participation:
//
//  * Busy-channel participants (every implementor).  The component emits the
//    seconds it spent on synthetic or real straggler work to the obs counter
//    named by busy_counter_key() ("<name>:busy_seconds"), and the driver
//    folds the per-decision delta of that counter into
//    balance::measured_phase_cost.  This is what lets a slow rank be told
//    apart from a rank that merely *waited* on a slow rank: halo exchanges
//    equalize wall-clock phase spans across ranks, but busy counters only
//    grow where the work actually happened.
//
//  * Migratable participants (block_partition() != nullptr).  The component
//    additionally exposes its 2-D block decomposition, measured per-column
//    weights, and gid-keyed export/import of every prognostic field, so the
//    driver can re-cut the decomposition and move columns between ranks
//    bit-exactly.  Components on non-block meshes (the icosahedral atm)
//    return nullptr and still feed decisions through the busy channel; the
//    balancer assesses them (cooldown/negligible/balanced gates, obs
//    counters) but never plans a migration.
//
// Determinism contract: column_state_hash() must be decomposition-invariant
// (a gid-keyed commutative fold), and export/import must round-trip bits so
// that a run with rebalancing enabled hashes identically to one without.
//
// The interface is header-only so components depend on it without linking
// ap3_balance (the planner/balancer library links the other way, via the
// coupler).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "grid/partition.hpp"
#include "mct/attrvect.hpp"

namespace ap3::balance {

class Rebalanceable {
 public:
  virtual ~Rebalanceable() = default;

  /// Stable component name: prefixes the busy counter, the balancer's obs
  /// counters ("balance:<name>:*"), and the checkpoint layout scalars
  /// ("bal.<name>.*").
  virtual std::string_view balance_name() const = 0;

  /// The obs counter this component adds its straggler-busy seconds to.
  std::string busy_counter_key() const {
    return std::string(balance_name()) + ":busy_seconds";
  }

  /// The component's current 2-D block decomposition, or nullptr when the
  /// component cannot be re-cut (non-block mesh).  A null partition makes
  /// every migration-related method below unused.
  virtual const grid::BlockPartition2D* block_partition() const {
    return nullptr;
  }

  /// Accumulate this rank's measured per-column weights into a zeroed
  /// global nx*ny row-major field (weight[gj * nx + gi] += w for every owned
  /// active column).  The driver allreduce-sums the field over the domain
  /// communicator; exactness holds because unowned entries contribute +0.0.
  /// Weights must be decomposition-invariant functions of column state so
  /// that rebalance on == off stays bitwise.
  virtual void add_measured_cell_weights(std::span<double> weight) const {
    (void)weight;
  }

  /// Migration payload bytes per unit of cell weight, for the balancer's
  /// cost model.
  virtual double migration_bytes_per_weight_unit() const { return 0.0; }

  /// Field names of the migration payload, in export order.
  virtual std::vector<std::string> migration_field_names() const { return {}; }

  /// Global ids of this rank's owned active columns, in export row order.
  virtual std::vector<std::int64_t> migration_gids() const { return {}; }

  /// Pack every prognostic + forcing field for the owned columns into `av`
  /// (one row per migration_gids() entry, attributes in
  /// migration_field_names() order).
  virtual void export_migration_fields(mct::AttrVect& av) const { (void)av; }

  /// Unpack a freshly rearranged AttrVect into this (rebuilt) component.
  virtual void import_migration_fields(const mct::AttrVect& av) { (void)av; }

  /// Decomposition-invariant hash of the owned column state: a wrapping sum
  /// of gid-keyed per-column digests, so the cross-rank kSum reduction is
  /// independent of who owns what.
  virtual std::uint64_t column_state_hash() const { return 0; }

  /// Monotonic step counter carried across a migration rebuild (the rebuilt
  /// component starts from step 0 otherwise, which would desync forcing
  /// phase).
  virtual long long steps_completed() const { return 0; }
  virtual void set_steps_completed(long long steps) { (void)steps; }
};

}  // namespace ap3::balance
