// Regenerates the Fig. 6 contrast: typhoon structure at fine ("3v2-like")
// versus coarse ("25v10-like") coupled resolution — eye depth and
// compactness in the wind field, and the richness of the sea-surface
// Rossby-number response beneath the storm.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/constants.hpp"
#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct StructureMetrics {
  double eye_depth_m = 0.0;        ///< central thickness deficit
  double max_wind = 0.0;
  double rmw_km = 0.0;             ///< radius of maximum wind
  double ro_p99 = 0.0;             ///< 99th percentile |Ro| near the storm
  int cells_in_core = 0;           ///< resolution of the eye region
};

StructureMetrics run_case(int mesh_n, int ocn_nx, int ocn_ny) {
  static StructureMetrics metrics;
  metrics = StructureMetrics{};
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledConfig config;
    config.atm.mesh_n = mesh_n;
    config.atm.nlev = 8;
    config.atm.drag_per_second = 5e-7;
    config.ocn.grid = grid::TripolarConfig{ocn_nx, ocn_ny, 8};
    cpl::CoupledModel model(comm, config);

    atm::VortexSpec spec;
    spec.lon_deg = 133.0;
    spec.lat_deg = 17.0;
    spec.radius_km = 350.0;
    spec.max_wind_ms = 50.0;
    spec.depression_m = 120.0;
    model.seed_typhoon(spec);
    model.run_windows(3);
    const atm::VortexFix fix = model.track_typhoon(133.0, 17.0, 900.0);

    // Wind profile around the center: max wind and its radius.
    double local_best_wind = 0.0, local_rmw = 0.0;
    int local_core_cells = 0;
    if (model.has_atm()) {
      auto& dycore = model.atm().dycore();
      for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
        const double lon = dycore.mesh().lon_rad(c) * constants::kRadToDeg;
        const double lat = dycore.mesh().lat_rad(c) * constants::kRadToDeg;
        const double r =
            atm::track_distance_km(fix.lon_deg, fix.lat_deg, lon, lat);
        if (r > 1200.0) continue;
        if (r < 800.0) ++local_core_cells;  // ~core region at toy scale
        double u = 0.0, v = 0.0;
        dycore.wind_at(c, u, v);
        const double wind = std::sqrt(u * u + v * v);
        if (wind > local_best_wind) {
          local_best_wind = wind;
          local_rmw = r;
        }
      }
    }
    const double best_wind =
        comm.allreduce_value(local_best_wind, par::ReduceOp::kMax);
    // The rank holding the max reports its radius; others report 0.
    const double rmw = comm.allreduce_value(
        local_best_wind == best_wind ? local_rmw : 0.0, par::ReduceOp::kMax);
    const int core_cells =
        comm.allreduce_value(local_core_cells, par::ReduceOp::kSum);

    // Ocean response near the storm: |Ro| distribution tail.
    double local_p99 = 0.0;
    if (model.has_ocn()) {
      const auto ro = model.ocn().surface_rossby_number();
      std::vector<double> magnitudes;
      std::size_t col = 0;
      const auto& g = model.ocn().ocean_grid();
      for (auto gid : model.ocn().ocean_gids()) {
        const int gi = static_cast<int>(gid % g.nx());
        const int gj = static_cast<int>(gid / g.nx());
        if (atm::track_distance_km(fix.lon_deg, fix.lat_deg, g.lon_deg(gi),
                                   g.lat_deg(gj)) < 1500.0)
          magnitudes.push_back(std::abs(ro[col]));
        ++col;
      }
      std::sort(magnitudes.begin(), magnitudes.end());
      if (!magnitudes.empty())
        local_p99 = magnitudes[magnitudes.size() * 99 / 100];
    }
    const double ro_p99 = comm.allreduce_value(local_p99, par::ReduceOp::kMax);

    if (comm.rank() == 0) {
      metrics.eye_depth_m = config.atm.mean_depth_m - fix.min_h_m;
      metrics.max_wind = best_wind;
      metrics.rmw_km = rmw;
      metrics.ro_p99 = ro_p99;
      metrics.cells_in_core = core_cells;
    }
  });
  return metrics;
}

}  // namespace

int main() {
  std::printf("Fig. 6 — typhoon structure, fine vs coarse coupled resolution\n");
  std::printf("==============================================================\n\n");
  std::printf("running fine (3v2-like) case...\n");
  const StructureMetrics fine = run_case(10, 96, 72);
  std::printf("running coarse (25v10-like) case...\n\n");
  const StructureMetrics coarse = run_case(4, 32, 24);

  std::printf("  metric                          fine        coarse\n");
  std::printf("  eye depth [m]              %9.1f   %11.1f\n",
              fine.eye_depth_m, coarse.eye_depth_m);
  std::printf("  max wind [m/s]             %9.1f   %11.1f\n", fine.max_wind,
              coarse.max_wind);
  std::printf("  radius of max wind [km]    %9.0f   %11.0f\n", fine.rmw_km,
              coarse.rmw_km);
  std::printf("  cells inside the core      %9d   %11d\n", fine.cells_in_core,
              coarse.cells_in_core);
  std::printf("  ocean |Ro| p99 near storm  %9.4f   %11.4f\n", fine.ro_p99,
              coarse.ro_p99);

  std::printf("\npaper's qualitative claims to reproduce:\n");
  std::printf("  [%c] fine case resolves the core with more cells\n",
              fine.cells_in_core > 2 * coarse.cells_in_core ? 'x' : ' ');
  std::printf("  [%c] fine case sustains stronger maximum winds\n",
              fine.max_wind > coarse.max_wind ? 'x' : ' ');
  std::printf("  [%c] fine case shows a richer sea-surface Ro response\n",
              fine.ro_p99 > coarse.ro_p99 ? 'x' : ' ');
  return 0;
}
