# Empty compiler generated dependencies file for test_ai.
# This may be replaced when dependencies are built.
