# Empty compiler generated dependencies file for ap3_lnd.
# This may be replaced when dependencies are built.
