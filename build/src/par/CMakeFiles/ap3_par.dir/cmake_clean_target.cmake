file(REMOVE_RECURSE
  "libap3_par.a"
)
