#include "ice/ice.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/hash.hpp"
#include "obs/obs.hpp"

namespace ap3::ice {

using constants::kDegToRad;
using constants::kEarthRadiusM;
using constants::kPi;
using constants::kSeawaterFreeze;
using constants::kT0;

IceModel::IceModel(const par::Comm& comm, const IceConfig& config,
                   std::shared_ptr<const grid::TripolarGrid> grid)
    : IceModel(comm, config,
               grid::BlockPartition2D::balanced(config.grid.nx, config.grid.ny,
                                                comm.size())
                   .cuts(),
               std::move(grid)) {}

IceModel::IceModel(const par::Comm& comm, const IceConfig& config,
                   const grid::BlockCuts& cuts,
                   std::shared_ptr<const grid::TripolarGrid> grid)
    : comm_(comm),
      config_(config),
      grid_(grid ? std::move(grid)
                 : std::make_shared<const grid::TripolarGrid>(config.grid)),
      partition_(config.grid.nx, config.grid.ny, cuts) {
  AP3_REQUIRE_MSG(grid_->config() == config_.grid,
                  "IceModel: shared grid was built for a different "
                  "TripolarConfig than this model's config.grid");
  halo_ = std::make_unique<grid::BlockHalo>(comm, config_.grid.nx,
                                            config_.grid.ny, cuts,
                                            /*north_fold=*/true);
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();

  const double dlat =
      (config_.grid.lat_north - config_.grid.lat_south) * kDegToRad /
      config_.grid.ny;
  area_m2_.resize(static_cast<std::size_t>(nyl));
  for (int j = 0; j < nyl; ++j) {
    const double lat = grid_->lat_deg(halo_->y0() + j) * kDegToRad;
    const double coslat = std::max(0.05, std::cos(lat));
    area_m2_[static_cast<std::size_t>(j)] =
        (kEarthRadiusM * coslat * 2.0 * kPi / config_.grid.nx) *
        (kEarthRadiusM * dlat);
  }

  for (int j = 0; j < nyl; ++j) {
    for (int i = 0; i < nxl; ++i) {
      if (grid_->kmt(halo_->x0() + i, halo_->y0() + j) > 0) {
        active_columns_.push_back({i, j});
        ocean_gids_.push_back(
            static_cast<std::int64_t>(halo_->y0() + j) * config_.grid.nx +
            (halo_->x0() + i));
      }
    }
  }
  gsmap_ = mct::GlobalSegMap::build(comm, ocean_gids_);

  const std::size_t ncols = ocean_gids_.size();
  aice_.assign(ncols, 0.0);
  hice_.assign(ncols, 0.0);
  sst_.assign(ncols, 285.0);
  tbot_.assign(ncols, 285.0);
  us_.assign(ncols, 0.0);
  vs_.assign(ncols, 0.0);

  // Initial polar ice caps where the climatological surface is cold.
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const double lat = grid_->lat_deg(halo_->y0() + j);
    if (std::abs(lat) > 65.0) {
      hice_[col] = 1.5 * (std::abs(lat) - 65.0) / 25.0;
      aice_[col] = std::min(1.0, hice_[col] / config_.full_cover_thickness);
    }
    ++col;
  }

  if (config_.stall_seconds_per_point > 0.0) {
    for (const auto& [i, j] : active_columns_) {
      const int gi = halo_->x0() + i;
      const int gj = halo_->y0() + j;
      const bool in_band =
          (config_.stall_i_begin >= 0 && gi >= config_.stall_i_begin) ||
          (config_.stall_j_begin >= 0 && gj >= config_.stall_j_begin);
      if (in_band) ++stall_points_;
    }
  }
}

std::vector<std::string> IceModel::migration_fields() {
  return {"aice", "hice", "sst", "tbot", "us", "vs"};
}

void IceModel::add_measured_cell_weights(std::span<double> weight) const {
  for (std::size_t col = 0; col < ocean_gids_.size(); ++col)
    weight[static_cast<std::size_t>(ocean_gids_[col])] += 1.0 + aice_[col];
}

double IceModel::migration_bytes_per_weight_unit() const {
  // 6 per-column doubles; a column weighs between 1 (open water) and 2
  // (full cover), so charge the open-water rate (conservative per unit).
  return 8.0 * 6.0;
}

void IceModel::export_migration_fields(mct::AttrVect& av) const {
  AP3_REQUIRE(av.num_points() == ocean_gids_.size());
  const std::vector<const std::vector<double>*> state = {&aice_, &hice_, &sst_,
                                                         &tbot_, &us_,   &vs_};
  const std::vector<std::string> names = migration_fields();
  for (std::size_t f = 0; f < names.size(); ++f) {
    auto out = av.field(names[f]);
    std::copy(state[f]->begin(), state[f]->end(), out.begin());
  }
}

void IceModel::import_migration_fields(const mct::AttrVect& av) {
  AP3_REQUIRE(av.num_points() == ocean_gids_.size());
  const std::vector<std::vector<double>*> state = {&aice_, &hice_, &sst_,
                                                   &tbot_, &us_,   &vs_};
  const std::vector<std::string> names = migration_fields();
  for (std::size_t f = 0; f < names.size(); ++f) {
    const auto in = av.field(names[f]);
    std::copy(in.begin(), in.end(), state[f]->begin());
  }
}

std::uint64_t IceModel::column_state_hash() const {
  std::uint64_t sum = 0;
  for (std::size_t col = 0; col < ocean_gids_.size(); ++col) {
    std::uint64_t h = kFnvBasis;
    h = fnv1a_value(h, ocean_gids_[col]);
    h = fnv1a_value(h, aice_[col]);
    h = fnv1a_value(h, hice_[col]);
    h = fnv1a_value(h, sst_[col]);
    h = fnv1a_value(h, tbot_[col]);
    h = fnv1a_value(h, us_[col]);
    h = fnv1a_value(h, vs_[col]);
    sum += h;  // wrapping: rank- and order-independent combine
  }
  return sum;
}

std::vector<std::string> IceModel::export_fields() { return {"ifrac", "hice"}; }
std::vector<std::string> IceModel::import_fields() {
  return {"sst", "tbot", "us", "vs"};
}

void IceModel::run(double start_seconds, double duration_seconds) {
  (void)start_seconds;
  AP3_REQUIRE(duration_seconds > 0.0);
  const auto nsteps = static_cast<long long>(
      std::ceil(duration_seconds / config_.dt_seconds - 1e-9));
  const double dt = duration_seconds / static_cast<double>(nsteps);
  for (long long s = 0; s < nsteps; ++s) {
    thermodynamics(dt);
    dynamics(dt);
    if (stall_points_ > 0) {
      const double stall_seconds =
          config_.stall_seconds_per_point * static_cast<double>(stall_points_);
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_seconds));
      // Halo waits synchronize fast ranks to the straggler; export the busy
      // time so the load balancer sees who actually pays for it.
      obs::counter_add(busy_counter_key(), stall_seconds);
    }
    ++steps_;
  }
}

void IceModel::thermodynamics(double dt) {
  const double freeze_k = kSeawaterFreeze + kT0;  // 271.35 K
  for (std::size_t col = 0; col < hice_.size(); ++col) {
    // Freezing deficit weights the ocean state twice as much as the air.
    const double deficit =
        (freeze_k - sst_[col]) + 0.5 * (freeze_k - tbot_[col]);
    double& h = hice_[col];
    if (deficit > 0.0) {
      h += dt * config_.growth_rate * deficit;
    } else {
      h -= dt * config_.melt_rate * (-deficit);
    }
    h = std::clamp(h, 0.0, config_.max_thickness);
    aice_[col] = std::min(1.0, h / config_.full_cover_thickness);
  }
}

void IceModel::dynamics(double dt) {
  const int nxl = halo_->nx_local();
  const int nyl = halo_->ny_local();
  const std::size_t slots =
      static_cast<std::size_t>(nxl + 2) * static_cast<std::size_t>(nyl + 2);

  // Scatter compact state to halo-layout planes.
  std::vector<double> h2(slots, 0.0), a2(slots, 0.0), u2(slots, 0.0),
      v2(slots, 0.0);
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = halo_->halo_index(i, j);
    h2[c] = hice_[col];
    a2[c] = aice_[col];
    u2[c] = us_[col];
    v2[c] = vs_[col];
    ++col;
  }
  halo_->exchange(h2);
  halo_->exchange(a2);
  halo_->exchange(u2);
  halo_->exchange(v2);
  // Tripolar fold flips vector orientation in the ghost row.
  if (halo_->y0() + nyl == config_.grid.ny) {
    for (int i = -1; i <= nxl; ++i) {
      u2[halo_->halo_index(i, nyl)] = -u2[halo_->halo_index(i, nyl)];
      v2[halo_->halo_index(i, nyl)] = -v2[halo_->halo_index(i, nyl)];
    }
  }

  const double dlat =
      (config_.grid.lat_north - config_.grid.lat_south) * kDegToRad /
      config_.grid.ny;
  const double dy = kEarthRadiusM * dlat;

  auto advect = [&](std::vector<double>& plane) {
    std::vector<double> next = plane;
    std::size_t c2 = 0;
    for (const auto& [i, j] : active_columns_) {
      const std::size_t c = halo_->halo_index(i, j);
      const double lat = grid_->lat_deg(halo_->y0() + j) * kDegToRad;
      const double dx = kEarthRadiusM * std::max(0.05, std::cos(lat)) * 2.0 *
                        kPi / config_.grid.nx;
      auto nb = [&](int di, int dj) {
        if (halo_->y0() + j + dj < 0) return plane[c];
        const int gi =
            ((halo_->x0() + i + di) % config_.grid.nx + config_.grid.nx) %
            config_.grid.nx;
        int gj = halo_->y0() + j + dj;
        int gii = gi;
        if (gj >= config_.grid.ny) {  // fold
          gj = config_.grid.ny - 1;
          gii = config_.grid.nx - 1 - gi;
        }
        return grid_->kmt(gii, gj) > 0 ? plane[halo_->halo_index(i + di, j + dj)]
                                       : plane[c];
      };
      const double uc = u2[c], vc = v2[c];
      const double adv_x = uc >= 0.0 ? uc * (plane[c] - nb(-1, 0)) / dx
                                     : uc * (nb(1, 0) - plane[c]) / dx;
      const double adv_y = vc >= 0.0 ? vc * (plane[c] - nb(0, -1)) / dy
                                     : vc * (nb(0, 1) - plane[c]) / dy;
      next[c] = plane[c] - dt * (adv_x + adv_y);
      if (next[c] < 0.0) next[c] = 0.0;
      ++c2;
    }
    plane.swap(next);
  };
  advect(h2);
  advect(a2);

  col = 0;
  for (const auto& [i, j] : active_columns_) {
    const std::size_t c = halo_->halo_index(i, j);
    hice_[col] = std::min(h2[c], config_.max_thickness);
    aice_[col] = std::clamp(a2[c], 0.0, 1.0);
    ++col;
  }
}

void IceModel::export_state(mct::AttrVect& i2x) const {
  AP3_REQUIRE(i2x.num_points() == ocean_gids_.size());
  auto ifrac = i2x.field("ifrac");
  auto hice = i2x.field("hice");
  std::copy(aice_.begin(), aice_.end(), ifrac.begin());
  std::copy(hice_.begin(), hice_.end(), hice.begin());
}

void IceModel::import_state(const mct::AttrVect& x2i) {
  AP3_REQUIRE(x2i.num_points() == ocean_gids_.size());
  const auto sst = x2i.field("sst");
  const auto tbot = x2i.field("tbot");
  const auto us = x2i.field("us");
  const auto vs = x2i.field("vs");
  std::copy(sst.begin(), sst.end(), sst_.begin());
  std::copy(tbot.begin(), tbot.end(), tbot_.begin());
  std::copy(us.begin(), us.end(), us_.begin());
  std::copy(vs.begin(), vs.end(), vs_.begin());
}

std::vector<std::string> IceModel::checkpoint_section_names() {
  // Keep in checkpoint_sections() order.
  return {"ice.aice", "ice.hice", "ice.sst", "ice.tbot",
          "ice.us",   "ice.vs",   "ice.steps"};
}

std::vector<io::Section> IceModel::checkpoint_sections() const {
  std::vector<io::Section> out;
  out.push_back({"ice.aice", io::local_field(aice_)});
  out.push_back({"ice.hice", io::local_field(hice_)});
  out.push_back({"ice.sst", io::local_field(sst_)});
  out.push_back({"ice.tbot", io::local_field(tbot_)});
  out.push_back({"ice.us", io::local_field(us_)});
  out.push_back({"ice.vs", io::local_field(vs_)});
  out.push_back({"ice.steps", io::rank_scalar(comm_.rank(),
                                              static_cast<double>(steps_))});
  return out;
}

void IceModel::restore_sections(const std::vector<io::Section>& sections) {
  aice_ = io::section_values(sections, "ice.aice", aice_.size());
  hice_ = io::section_values(sections, "ice.hice", hice_.size());
  sst_ = io::section_values(sections, "ice.sst", sst_.size());
  tbot_ = io::section_values(sections, "ice.tbot", tbot_.size());
  us_ = io::section_values(sections, "ice.us", us_.size());
  vs_ = io::section_values(sections, "ice.vs", vs_.size());
  steps_ =
      static_cast<long long>(io::section_values(sections, "ice.steps", 1)[0]);
}

double IceModel::ice_area_fraction() const {
  double ice = 0.0, ocean = 0.0;
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    const double area = area_m2_[static_cast<std::size_t>(j)];
    ice += aice_[col] * area;
    ocean += area;
    ++col;
  }
  return comm_.allreduce_value(ice, par::ReduceOp::kSum) /
         comm_.allreduce_value(ocean, par::ReduceOp::kSum);
}

double IceModel::total_ice_volume() const {
  double local = 0.0;
  std::size_t col = 0;
  for (const auto& [i, j] : active_columns_) {
    local += hice_[col] * area_m2_[static_cast<std::size_t>(j)];
    ++col;
  }
  return comm_.allreduce_value(local, par::ReduceOp::kSum);
}

}  // namespace ap3::ice
