file(REMOVE_RECURSE
  "../bench/bench_ablation_coupled"
  "../bench/bench_ablation_coupled.pdb"
  "CMakeFiles/bench_ablation_coupled.dir/bench_ablation_coupled.cpp.o"
  "CMakeFiles/bench_ablation_coupled.dir/bench_ablation_coupled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
