#include "io/subfile.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "base/error.hpp"
#include "obs/obs.hpp"
#include "precision/group_scaled.hpp"

namespace ap3::io {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kFp64: return "fp64";
    case Codec::kGroupScaled: return "group_scaled";
  }
  return "unknown";
}

std::uint64_t checksum(std::span<const char> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes)
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  return h;
}

int subfile_group(int rank, int comm_size, int num_subfiles) {
  return static_cast<int>(static_cast<long long>(rank) * num_subfiles /
                          comm_size);
}

int subfile_aggregator(int group, int comm_size, int num_subfiles) {
  // Lowest rank r with floor(r * num_subfiles / comm_size) == group, i.e.
  // ceil(group * comm_size / num_subfiles). Agrees with the floor map for
  // every num_subfiles in [1, comm_size] (tested across uneven splits).
  return static_cast<int>(
      (static_cast<long long>(group) * comm_size + num_subfiles - 1) /
      num_subfiles);
}

namespace {

constexpr char kSubfileMagic[8] = {'A', 'P', '3', 'S', 'U', 'B', 'F', '\0'};

template <typename T>
void put(std::vector<char>& out, const T& value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
void put_span(std::vector<char>& out, std::span<const T> data) {
  const std::size_t at = out.size();
  out.resize(at + data.size_bytes());
  std::memcpy(out.data() + at, data.data(), data.size_bytes());
}

/// Bounds-checked cursor over a record blob; short reads (a truncated file)
/// surface as ap3::Error, never as out-of-bounds access.
struct Cursor {
  std::span<const char> bytes;
  const std::string& context;
  std::size_t at = 0;

  template <typename T>
  T get() {
    AP3_REQUIRE_MSG(at + sizeof(T) <= bytes.size(),
                    "truncated subfile record " << context);
    T value;
    std::memcpy(&value, bytes.data() + at, sizeof(T));
    at += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_array(std::size_t n) {
    AP3_REQUIRE_MSG(n <= (bytes.size() - at) / sizeof(T),
                    "truncated subfile record " << context);
    std::vector<T> out(n);
    std::memcpy(out.data(), bytes.data() + at, n * sizeof(T));
    at += n * sizeof(T);
    return out;
  }
};

struct IdRun {
  std::int64_t start = 0;
  std::int64_t len = 0;
};

/// Checkpoint sections label values 0..n-1 per rank, so the concatenated id
/// vector collapses to one (start, len) run per rank.
std::vector<IdRun> run_length_encode(const std::vector<std::int64_t>& ids) {
  std::vector<IdRun> runs;
  for (const std::int64_t id : ids) {
    if (!runs.empty() && id == runs.back().start + runs.back().len)
      ++runs.back().len;
    else
      runs.push_back({id, 1});
  }
  return runs;
}

std::string subfile_path(const SubfileConfig& config, int group) {
  return config.basename + "." + std::to_string(group) + ".bin";
}

}  // namespace

std::vector<char> encode_record(const std::vector<std::size_t>& counts,
                                const std::vector<std::int64_t>& ids,
                                const std::vector<double>& values,
                                const CodecSpec& spec,
                                const std::string& context) {
  AP3_REQUIRE(ids.size() == values.size());
  std::vector<char> blob;
  put_span(blob, std::span<const char>(kSubfileMagic, sizeof(kSubfileMagic)));
  put(blob, kSubfileVersion);
  put(blob, static_cast<std::uint32_t>(spec.codec));
  put(blob, static_cast<std::int64_t>(counts.size()));
  for (const std::size_t c : counts) put(blob, static_cast<std::int64_t>(c));
  const std::vector<IdRun> runs = run_length_encode(ids);
  put(blob, static_cast<std::uint64_t>(runs.size()));
  for (const IdRun& run : runs) {
    put(blob, run.start);
    put(blob, run.len);
  }
  switch (spec.codec) {
    case Codec::kFp64:
      put_span(blob, std::span<const double>(values));
      break;
    case Codec::kGroupScaled: {
      const auto packed = precision::GroupScaledArray::compress(
          std::span<const double>(values), spec.group_size);
      // Encode-time verification: this is the only place the fp64 reference
      // still exists, so a value the codec cannot represent within the bound
      // hard-fails the write instead of silently corrupting the restore.
      for (std::size_t i = 0; i < values.size(); ++i) {
        const std::uint64_t ulp = precision::ulp_distance(packed.at(i),
                                                          values[i]);
        AP3_REQUIRE_MSG(ulp <= spec.ulp_bound,
                        "group-scaled codec exceeds the ULP bound in "
                            << context << ": element " << i << " is " << ulp
                            << " ULPs from its fp64 source (bound "
                            << spec.ulp_bound
                            << ") — use Codec::kFp64 for this section");
      }
      put(blob, static_cast<std::uint64_t>(packed.group_size()));
      put(blob, static_cast<std::uint64_t>(packed.scales().size()));
      put_span(blob, std::span<const double>(packed.scales()));
      put_span(blob, std::span<const float>(packed.payload()));
      break;
    }
  }
  put(blob, checksum({blob.data(), blob.size()}));
  return blob;
}

Codec decode_record(std::span<const char> bytes,
                    std::vector<std::size_t>& counts,
                    std::vector<std::int64_t>& ids,
                    std::vector<double>& values, const std::string& context) {
  constexpr std::size_t kMinBytes = sizeof(kSubfileMagic) +
                                    2 * sizeof(std::uint32_t) +
                                    sizeof(std::int64_t) +
                                    sizeof(std::uint64_t) +
                                    sizeof(std::uint64_t);
  AP3_REQUIRE_MSG(bytes.size() >= kMinBytes,
                  "truncated subfile record " << context);
  AP3_REQUIRE_MSG(
      std::memcmp(bytes.data(), kSubfileMagic, sizeof(kSubfileMagic)) == 0,
      "not an AP3 subfile record (bad magic) in "
          << context << " — written by a pre-v" << kSubfileVersion
          << " build or corrupt; regenerate the snapshot");
  Cursor cursor{bytes, context, sizeof(kSubfileMagic)};
  const auto version = cursor.get<std::uint32_t>();
  AP3_REQUIRE_MSG(version == kSubfileVersion,
                  "subfile format version "
                      << version << " unsupported (want " << kSubfileVersion
                      << ") in " << context
                      << " — old snapshots predate the whole-record checksum "
                         "and must be regenerated");
  // Verify the footer checksum over EVERY preceding byte before trusting any
  // of them (v1 covered only the value payload, so corrupted counts or ids
  // passed validation).
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
              sizeof(stored));
  AP3_REQUIRE_MSG(
      stored == checksum(bytes.first(bytes.size() - sizeof(stored))),
      "subfile checksum mismatch (corrupt record) in " << context);
  const std::span<const char> body = bytes.first(bytes.size() - sizeof(stored));
  cursor.bytes = body;

  const auto codec_raw = cursor.get<std::uint32_t>();
  AP3_REQUIRE_MSG(codec_raw <= static_cast<std::uint32_t>(Codec::kGroupScaled),
                  "unknown subfile codec " << codec_raw << " in " << context);
  const Codec codec = static_cast<Codec>(codec_raw);

  const auto nranks = cursor.get<std::int64_t>();
  AP3_REQUIRE_MSG(nranks >= 0 && static_cast<std::uint64_t>(nranks) <=
                                     body.size() / sizeof(std::int64_t),
                  "implausible rank count in " << context);
  counts.assign(static_cast<std::size_t>(nranks), 0);
  std::size_t total = 0;
  for (auto& c : counts) {
    const auto v = cursor.get<std::int64_t>();
    AP3_REQUIRE_MSG(v >= 0, "negative element count in " << context);
    c = static_cast<std::size_t>(v);
    total += c;
  }
  AP3_REQUIRE_MSG(total <= body.size(),
                  "implausible element total in " << context);

  const auto nruns = cursor.get<std::uint64_t>();
  AP3_REQUIRE_MSG(nruns <= total, "implausible id run count in " << context);
  ids.clear();
  ids.reserve(total);
  for (std::uint64_t r = 0; r < nruns; ++r) {
    const auto start = cursor.get<std::int64_t>();
    const auto len = cursor.get<std::int64_t>();
    AP3_REQUIRE_MSG(len > 0 && static_cast<std::size_t>(len) <= total - ids.size(),
                    "bad id run in " << context);
    for (std::int64_t k = 0; k < len; ++k) ids.push_back(start + k);
  }
  AP3_REQUIRE_MSG(ids.size() == total,
                  "id runs cover " << ids.size() << " of " << total
                                   << " elements in " << context);

  switch (codec) {
    case Codec::kFp64:
      values = cursor.get_array<double>(total);
      break;
    case Codec::kGroupScaled: {
      const auto group_size = cursor.get<std::uint64_t>();
      AP3_REQUIRE_MSG(group_size >= 1,
                      "bad group-scaled group size in " << context);
      const auto nscales = cursor.get<std::uint64_t>();
      const std::size_t want_scales =
          total == 0 ? 0 : (total + group_size - 1) / group_size;
      AP3_REQUIRE_MSG(nscales == want_scales,
                      "group-scaled scale count mismatch in " << context);
      auto scales = cursor.get_array<double>(nscales);
      auto payload = cursor.get_array<float>(total);
      const auto packed = precision::GroupScaledArray::from_raw(
          total, group_size, std::move(payload), std::move(scales));
      values.resize(total);
      packed.decompress(values);
      break;
    }
  }
  AP3_REQUIRE_MSG(cursor.at == body.size(),
                  "trailing bytes after subfile record " << context);
  return codec;
}

std::size_t write_file_checked(const std::string& path,
                               std::span<const char> bytes,
                               double slow_disk_seconds_per_mb) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  AP3_REQUIRE_MSG(out.good(),
                  "short write to " << path << " (disk full?)");
  out.close();
  AP3_REQUIRE_MSG(!out.fail(), "close failed for " << path
                                                   << " (buffered data lost)");
  if (slow_disk_seconds_per_mb > 0.0) {
    const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(mb * slow_disk_seconds_per_mb));
  }
  return bytes.size();
}

namespace {

constexpr int kTagIoIds = 9401;
constexpr int kTagIoVals = 9402;

/// Gather members' data onto the group comm's rank 0.
std::optional<GatheredSubfile> gather_group(const par::Comm& group_comm,
                                            std::string path,
                                            const FieldData& local) {
  GatheredSubfile out;
  out.ids = group_comm.allgatherv(std::span<const std::int64_t>(local.ids),
                                  &out.counts);
  out.values =
      group_comm.allgatherv(std::span<const double>(local.values), nullptr);
  if (group_comm.rank() != 0) return std::nullopt;
  out.path = std::move(path);
  return out;
}

/// Read on group rank 0, scatter back per stored counts, return this rank's
/// slice. Aggregator failures are broadcast so every group member throws
/// instead of deadlocking in recv.
FieldData read_and_scatter(const par::Comm& group_comm,
                           const std::string& path,
                           const std::vector<std::int64_t>& expected_ids,
                           const std::optional<Codec>& expected_codec) {
  FieldData mine;
  if (group_comm.rank() == 0) {
    std::string error;
    std::vector<std::size_t> counts;
    std::vector<std::int64_t> ids;
    std::vector<double> values;
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw Error("cannot open " + path);
      const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
      const Codec codec =
          decode_record({bytes.data(), bytes.size()}, counts, ids, values,
                        path);
      if (expected_codec && codec != *expected_codec)
        throw Error("subfile " + path + " is encoded as " +
                    codec_name(codec) + " but the manifest says " +
                    codec_name(*expected_codec));
      if (static_cast<int>(counts.size()) != group_comm.size())
        throw Error("subfile " + path +
                    " was written with a different group size");
    } catch (const std::exception& e) {
      error = e.what();
      if (error.empty()) error = "subfile read failed for " + path;
    }
    double failed = error.empty() ? 0.0 : 1.0;
    group_comm.bcast(std::span<double>(&failed, 1), 0);
    if (!error.empty()) throw Error(error);
    std::size_t offset = 0;
    for (int r = 0; r < group_comm.size(); ++r) {
      const std::size_t n = counts[static_cast<std::size_t>(r)];
      if (r == 0) {
        mine.ids.assign(ids.begin(),
                        ids.begin() + static_cast<std::ptrdiff_t>(n));
        mine.values.assign(values.begin(),
                           values.begin() + static_cast<std::ptrdiff_t>(n));
      } else {
        group_comm.send(std::span<const std::int64_t>(ids.data() + offset, n),
                        r, kTagIoIds);
        group_comm.send(std::span<const double>(values.data() + offset, n), r,
                        kTagIoVals);
      }
      offset += n;
    }
  } else {
    double failed = 0.0;
    group_comm.bcast(std::span<double>(&failed, 1), 0);
    if (failed != 0.0)
      throw Error("subfile read failed on the aggregator for " + path);
    // Size is the sender's; receive into max-size buffer then trim.
    mine.ids.resize(expected_ids.size());
    mine.values.resize(expected_ids.size());
    const std::size_t n_ids =
        group_comm.recv(std::span<std::int64_t>(mine.ids), 0, kTagIoIds);
    const std::size_t n_vals =
        group_comm.recv(std::span<double>(mine.values), 0, kTagIoVals);
    mine.ids.resize(n_ids);
    mine.values.resize(n_vals);
  }
  AP3_REQUIRE_MSG(mine.ids == expected_ids,
                  "restart decomposition mismatch: ids differ");
  return mine;
}

int checked_group(const par::Comm& comm, int num_subfiles) {
  AP3_REQUIRE_MSG(num_subfiles >= 1 && num_subfiles <= comm.size(),
                  "num_subfiles must be in [1, comm size]");
  return subfile_group(comm.rank(), comm.size(), num_subfiles);
}

}  // namespace

std::optional<GatheredSubfile> gather_subfiles(const par::Comm& comm,
                                               const SubfileConfig& config,
                                               const FieldData& local) {
  AP3_SPAN("io:subfile:gather");
  AP3_REQUIRE(local.ids.size() == local.values.size());
  const int group = checked_group(comm, config.num_subfiles);
  par::Comm group_comm = comm.split(group, comm.rank());
  return gather_group(group_comm, subfile_path(config, group), local);
}

std::size_t write_gathered(const GatheredSubfile& gathered,
                           const CodecSpec& spec,
                           double slow_disk_seconds_per_mb) {
  const std::vector<char> blob = encode_record(
      gathered.counts, gathered.ids, gathered.values, spec, gathered.path);
  return write_file_checked(gathered.path, {blob.data(), blob.size()},
                            slow_disk_seconds_per_mb);
}

std::size_t write_subfiles(const par::Comm& comm, const SubfileConfig& config,
                           const FieldData& local) {
  AP3_SPAN("io:subfile:write");
  const auto gathered = gather_subfiles(comm, config, local);
  std::size_t bytes = 0;
  if (gathered)
    bytes = write_gathered(*gathered, config.codec,
                           config.slow_disk_seconds_per_mb);
  obs::counter_add("io:subfile:bytes_written", static_cast<double>(bytes));
  return bytes;
}

FieldData read_subfiles(const par::Comm& comm, const SubfileConfig& config,
                        const std::vector<std::int64_t>& expected_ids) {
  AP3_SPAN("io:subfile:read");
  const int group = checked_group(comm, config.num_subfiles);
  par::Comm group_comm = comm.split(group, comm.rank());
  // A bad file is symmetric within its group (status broadcast in
  // read_and_scatter) but invisible to the OTHER groups, whose next
  // collective would deadlock against the throwing ranks. Fold the
  // per-group outcome over the world comm so a corrupt, truncated, or
  // missing subfile throws the same ap3::Error on every rank.
  FieldData mine;
  std::string error;
  try {
    mine = read_and_scatter(group_comm, subfile_path(config, group),
                            expected_ids, config.expected_codec);
  } catch (const std::exception& e) {
    error = e.what();
  }
  const double any_failed =
      comm.allreduce_value(error.empty() ? 0.0 : 1.0, par::ReduceOp::kMax);
  if (any_failed != 0.0)
    throw Error(error.empty() ? "subfile read failed on another rank for " +
                                    config.basename
                              : error);
  return mine;
}

std::size_t write_single(const par::Comm& comm, const std::string& path,
                         const FieldData& local) {
  AP3_SPAN("io:single:write");
  AP3_REQUIRE(local.ids.size() == local.values.size());
  par::Comm whole = comm.split(0, comm.rank());
  const auto gathered = gather_group(whole, path, local);
  const std::size_t bytes = gathered ? write_gathered(*gathered, {}) : 0;
  obs::counter_add("io:single:bytes_written", static_cast<double>(bytes));
  return bytes;
}

FieldData read_single(const par::Comm& comm, const std::string& path,
                      const std::vector<std::int64_t>& expected_ids) {
  AP3_SPAN("io:single:read");
  par::Comm whole = comm.split(0, comm.rank());
  return read_and_scatter(whole, path, expected_ids, std::nullopt);
}

}  // namespace ap3::io
