#include "base/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "base/error.hpp"

namespace ap3 {

namespace {
std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError("config line " + std::to_string(lineno) +
                        ": expected key = value, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw ConfigError("config line " + std::to_string(lineno) + ": empty key");
    config.values_[key] = value;
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}
void Config::set(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  values_[key] = os.str();
}
void Config::set(const std::string& key, long long value) {
  values_[key] = std::to_string(value);
}
void Config::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  auto v = find(key);
  if (!v) throw ConfigError("missing config key: " + key);
  return *v;
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not a double: " + v);
  }
}

long long Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    size_t pos = 0;
    const long long i = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return i;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not an integer: " + v);
  }
}

bool Config::get_bool(const std::string& key) const {
  std::string v = get_string(key);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "' is not a bool: " + v);
}

std::string Config::get_string_or(const std::string& key,
                                  const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}
double Config::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}
long long Config::get_int_or(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}
bool Config::get_bool_or(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

Config Config::slice(const std::string& prefix) const {
  Config out;
  for (const auto& [key, value] : values_) {
    if (key.rfind(prefix, 0) == 0)
      out.values_[key.substr(prefix.size())] = value;
  }
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [key, value] : other.values_) values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : values_) os << key << " = " << value << "\n";
  return os.str();
}

}  // namespace ap3
