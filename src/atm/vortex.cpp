#include "atm/vortex.hpp"

#include <cmath>

#include "base/constants.hpp"

namespace ap3::atm {

using constants::kDegToRad;
using constants::kEarthRadiusM;

double track_distance_km(double lon1_deg, double lat1_deg, double lon2_deg,
                         double lat2_deg) {
  const double lon1 = lon1_deg * kDegToRad, lat1 = lat1_deg * kDegToRad;
  const double lon2 = lon2_deg * kDegToRad, lat2 = lat2_deg * kDegToRad;
  const double cosd = std::sin(lat1) * std::sin(lat2) +
                      std::cos(lat1) * std::cos(lat2) * std::cos(lon1 - lon2);
  return std::acos(std::max(-1.0, std::min(1.0, cosd))) * kEarthRadiusM / 1000.0;
}

void seed_vortex(Dycore& dycore, const VortexSpec& spec) {
  const LocalMesh& local = dycore.mesh();
  DycoreState& state = dycore.state();
  const double r0_m = spec.radius_km * 1000.0;
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    const double dist_km =
        track_distance_km(spec.lon_deg, spec.lat_deg,
                          local.lon_rad(c) / kDegToRad,
                          local.lat_rad(c) / kDegToRad);
    const double r = dist_km * 1000.0;
    const double shape = std::exp(-(r * r) / (2.0 * r0_m * r0_m));
    state.h[c] -= spec.depression_m * shape;

    // Rankine-like tangential wind: grows to max at r0, decays outside.
    const double v_tan = spec.max_wind_ms * (r / r0_m) *
                         std::exp(0.5 * (1.0 - (r * r) / (r0_m * r0_m)));
    if (v_tan < 0.01) continue;
    // Cyclonic sense for the hemisphere of the vortex center.
    const double sense = spec.lat_deg >= 0.0 ? 1.0 : -1.0;
    // Unit vector from vortex center toward the cell, in the local
    // east/north plane, rotated 90° for the tangential direction.
    const double dlon = (local.lon_rad(c) - spec.lon_deg * kDegToRad);
    const double dlat = (local.lat_rad(c) - spec.lat_deg * kDegToRad);
    const double de = dlon * std::cos(spec.lat_deg * kDegToRad);
    const double dn = dlat;
    const double norm = std::sqrt(de * de + dn * dn);
    if (norm < 1e-9) continue;
    const double u_east = -sense * (dn / norm) * v_tan;
    const double v_north = sense * (de / norm) * v_tan;
    double u0 = 0.0, v0 = 0.0;
    dycore.wind_at(c, u0, v0);
    dycore.set_wind_at(c, u0 + u_east, v0 + v_north);
  }
}

VortexFix track_vortex(const Dycore& dycore, const par::Comm& comm,
                       double prev_lon_deg, double prev_lat_deg,
                       double search_km) {
  const LocalMesh& local = dycore.mesh();
  const DycoreState& state = dycore.state();

  // Local candidate: min h within the search radius.
  double best_h = 1e300, best_lon = 0.0, best_lat = 0.0;
  double max_wind = 0.0;
  for (std::size_t c = 0; c < local.num_owned(); ++c) {
    const double lon = local.lon_rad(c) / kDegToRad;
    const double lat = local.lat_rad(c) / kDegToRad;
    if (track_distance_km(prev_lon_deg, prev_lat_deg, lon, lat) > search_km)
      continue;
    if (state.h[c] < best_h) {
      best_h = state.h[c];
      best_lon = lon;
      best_lat = lat;
    }
    double u = 0.0, v = 0.0;
    dycore.wind_at(c, u, v);
    max_wind = std::max(max_wind, std::sqrt(u * u + v * v));
  }

  // Global reduction: gather candidates, pick the deepest.
  struct Candidate {
    double h, lon, lat, wind;
  };
  const Candidate mine{best_h, best_lon, best_lat, max_wind};
  const std::vector<Candidate> all =
      comm.allgather(std::span<const Candidate>(&mine, 1));
  VortexFix fix;
  fix.min_h_m = 1e300;
  for (const Candidate& cand : all) {
    if (cand.h < fix.min_h_m) {
      fix.min_h_m = cand.h;
      fix.lon_deg = cand.lon;
      fix.lat_deg = cand.lat;
      fix.found = true;
    }
    fix.max_wind_ms = std::max(fix.max_wind_ms, cand.wind);
  }
  if (fix.min_h_m > 1e299) fix.found = false;
  return fix;
}

int intensity_category(double max_wind_ms) {
  if (max_wind_ms < 33.0) return 0;   // tropical storm
  if (max_wind_ms < 43.0) return 1;
  if (max_wind_ms < 50.0) return 2;
  if (max_wind_ms < 58.0) return 3;
  if (max_wind_ms < 70.0) return 4;
  return 5;
}

}  // namespace ap3::atm
