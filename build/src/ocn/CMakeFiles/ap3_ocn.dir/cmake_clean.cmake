file(REMOVE_RECURSE
  "CMakeFiles/ap3_ocn.dir/canuto.cpp.o"
  "CMakeFiles/ap3_ocn.dir/canuto.cpp.o.d"
  "CMakeFiles/ap3_ocn.dir/model.cpp.o"
  "CMakeFiles/ap3_ocn.dir/model.cpp.o.d"
  "libap3_ocn.a"
  "libap3_ocn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_ocn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
