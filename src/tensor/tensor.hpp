// Minimal FP32 tensor library backing the AI physics suite (§5.2.1).
//
// The paper's point is that AI parameterizations unify physics into "highly
// efficient tensor kernels (principally matrix multiplication)"; this module
// provides exactly those kernels — matmul, conv1d, elementwise — written
// once and dispatched through the pp layer so they run on any execution
// space (see tensor/dispatch.hpp for the space/precision knobs). Every
// kernel is formulated per output element with a fixed-order inner
// accumulation, so results are bitwise identical across kSerial /
// kHostThreads / kSunwayCPE; on the CPE simulator matmul_nt stages LDM
// panels through the DMA engine without moving a bit. FP32 storage
// throughout, matching the suite's operator-level precision; dot products
// optionally accumulate in FP64 (Accum::kFloat64, the verification
// reference).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace ap3::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t d) const { return shape_.at(d); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access (row-major).
  float& at2(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  float at2(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  /// 3-D access (row-major).
  float& at3(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at3(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(float value);
  void zero() { fill(0.0f); }
  Tensor reshaped(std::vector<std::size_t> shape) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

// --- kernels -----------------------------------------------------------------

/// C = A(B,M,K order (m,k)) * B^T where weight is (N,K): out (M,N).
/// This is the Dense-layer shape: rows are samples.
Tensor matmul_nt(const Tensor& a, const Tensor& weight);

/// out = a * b with a (M,K), b (K,N).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Same-padding 1-D convolution: x (B, Cin, L), kernel (Cout, Cin, K) with K
/// odd, bias (Cout). Output (B, Cout, L).
Tensor conv1d(const Tensor& x, const Tensor& kernel, const Tensor& bias);

/// Gradients of conv1d: given dL/dy, produce dL/dx and accumulate dL/dk,
/// dL/db.
Tensor conv1d_backward(const Tensor& x, const Tensor& kernel,
                       const Tensor& grad_out, Tensor& grad_kernel,
                       Tensor& grad_bias);

void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
/// out (M,N) += bias (N), broadcast over rows (the Dense bias add).
void bias_add_rows(Tensor& out, const Tensor& bias);
Tensor relu(const Tensor& x);
/// dL/dx for relu given x and dL/dy.
Tensor relu_backward(const Tensor& x, const Tensor& grad_out);

/// Mean squared error and its gradient w.r.t. prediction.
float mse(const Tensor& pred, const Tensor& target);
Tensor mse_grad(const Tensor& pred, const Tensor& target);

}  // namespace ap3::tensor
