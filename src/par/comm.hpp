// In-process message-passing runtime (the repository's MPI substitute).
//
// The paper runs components over MPI across up to 37.2 M Sunway cores; this
// machine has one CPU, so ranks are threads and the transport is a mailbox
// hub. Everything above this layer — halo exchanges, MCT routers, coupler
// rearrangement — is written against the same rank/tag/communicator semantics
// an MPI program would use, so the communication *patterns* of the paper are
// reproduced even though the wire is shared memory.
//
// Semantics implemented:
//  - typed, tagged, eager point-to-point send/recv (FIFO per source),
//  - non-blocking isend/irecv with Request/wait/wait_all,
//  - wildcard source/tag receives,
//  - collectives: barrier, bcast, reduce, allreduce, gather, allgather,
//    alltoall, alltoallv (built over p2p; deterministic),
//  - communicator split (task domains of §5.1.2),
//  - per-world traffic accounting (messages/bytes) feeding the perf model,
//  - deterministic fault injection at the mailbox boundary (src/fault):
//    seed-driven drop/duplicate/delay/stall schedules with transparent
//    receiver-side recovery (sequenced reassembly, timeout + exponential
//    backoff, retransmission of dropped messages), surfaced through
//    WorldOptions and the "fault:*" obs counters.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "base/error.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace ap3::par {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

enum class ReduceOp { kSum, kMin, kMax };

/// Aggregate message-traffic counters for one World.
///
/// Kept for the perf model's coarse totals; the observability layer carries
/// the richer breakdown as counter families ("par:coll:<name>:bytes",
/// "par:p2p:bytes:tag[<tag>]", "par:bytes:total") — see src/obs.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

namespace detail {

struct Message {
  int comm_id = 0;  ///< messages are scoped to one communicator
  int src = 0;      ///< sender's rank within that communicator
  int tag = 0;
  /// Position in the (comm_id, src, tag) stream to this destination; only
  /// assigned (starting at 1) when fault injection is active, where it
  /// drives receiver-side reassembly and duplicate suppression.
  std::uint64_t seq = 0;
  std::size_t type_hash = 0;
  std::vector<std::byte> data;
};

class Mailbox;

/// Shared fault-injection state for one World: the immutable config, the
/// replayable injection log, per-stream sequence counters (sender side),
/// the store of dropped messages awaiting retransmission, and recovery
/// statistics. Null on a World without faults — the transport fast path is
/// then a single pointer check.
struct FaultState {
  explicit FaultState(const fault::FaultConfig& config) : config(config) {}

  fault::FaultConfig config;
  fault::InjectionLog log;

  /// Next sequence number for a (comm_id, src_rank, dst_world, tag) stream.
  std::uint64_t next_seq(int comm_id, int src, int dst_world, int tag);
  /// Park a dropped message until a receiver timeout asks for it again.
  void stash_dropped(int dst_world, Message message);
  /// Re-deliver every dropped message parked for `dst_world`; returns count.
  std::size_t retransmit_for(int dst_world, Mailbox& box);

  // Recovery accounting (see fault::FaultStats).
  std::atomic<std::uint64_t> injected_drop{0}, injected_duplicate{0},
      injected_delay{0}, injected_stall{0};
  std::atomic<std::uint64_t> retried{0}, timeouts{0};
  std::atomic<std::uint64_t> recovered_drop{0}, recovered_duplicate{0},
      recovered_delay{0};

 private:
  std::mutex mutex_;
  std::map<std::array<int, 4>, std::uint64_t> stream_seq_;
  std::map<int, std::vector<Message>> dropped_;
};

class Mailbox {
 public:
  void deliver(Message message);
  /// Hold `message` back until `countdown` further deliveries reach this
  /// mailbox (or a receiver timeout flushes it) — the delay/reorder fault.
  void deliver_delayed(Message message, int countdown);
  /// Blocks until a message matching (comm, src, tag) is available. In fault
  /// mode, waits for the *next in-sequence* message of the matching stream
  /// and runs timeout/backoff recovery (flush delayed, retransmit dropped).
  Message take(int comm_id, int src, int tag);
  bool try_take(int comm_id, int src, int tag, Message& out);
  /// Switch this mailbox to sequenced (fault-tolerant) matching.
  void enable_fault_mode(FaultState* state, int world_rank);

 private:
  static bool matches(const Message& m, int comm_id, int src, int tag) {
    return m.comm_id == comm_id && (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }
  /// Fault mode: message is the next expected of its own stream.
  bool in_sequence_locked(const Message& m) const;
  /// Fault mode: admit to the queue with duplicate suppression.
  void admit_locked(Message&& m);
  /// Decrement delay countdowns (unless `force`), admit matured messages.
  void release_delayed_locked(bool force);
  std::deque<Message>::iterator find_locked(int comm_id, int src, int tag);
  Message take_at_locked(std::deque<Message>::iterator it);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;

  // Fault mode only.
  FaultState* fault_ = nullptr;
  int world_rank_ = -1;
  struct Delayed {
    Message message;
    int countdown = 0;
  };
  std::vector<Delayed> delayed_;
  /// (comm_id, src, tag) -> next sequence number the receiver will accept.
  std::map<std::array<int, 3>, std::uint64_t> next_expected_;
};

/// Reusable sense-reversing barrier.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}
  void arrive_and_wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

struct SplitTable {
  std::mutex mutex;
  std::condition_variable cv;
  // comm-id -> epoch -> (rank -> (color,key))
  std::map<std::pair<int, std::uint64_t>, std::map<int, std::pair<int, int>>>
      entries;
};

}  // namespace detail

class Comm;

/// Per-World knobs. `fault` with any non-zero rate arms deterministic fault
/// injection on every message crossing the mailbox boundary.
struct WorldOptions {
  fault::FaultConfig fault;
};

/// Shared state for one parallel job: mailboxes, barriers, counters, and the
/// optional fault-injection layer.
class World {
 public:
  explicit World(int nranks);
  World(int nranks, const WorldOptions& options);

  int size() const { return nranks_; }
  TrafficStats traffic() const;

  /// True when this World injects faults into its transport.
  bool fault_active() const { return fault_state_ != nullptr; }
  /// Replayable record of injected faults (null when inactive).
  const fault::InjectionLog* fault_log() const;
  /// Injection/recovery totals so far (all zeros when inactive).
  fault::FaultStats fault_stats() const;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

 private:
  friend class Comm;
  detail::Mailbox& mailbox(int world_rank) {
    return *mailboxes_[static_cast<std::size_t>(world_rank)];
  }
  detail::Barrier& barrier_for(int comm_id, int parties);
  void account(std::size_t bytes);
  detail::SplitTable& split_table() { return split_table_; }
  detail::FaultState* fault_state() { return fault_state_.get(); }

  int nranks_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::unique_ptr<detail::FaultState> fault_state_;
  std::mutex barrier_mutex_;
  std::map<int, std::unique_ptr<detail::Barrier>> barriers_;
  detail::SplitTable split_table_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Handle for a pending non-blocking operation.
class Request {
 public:
  Request() = default;
  void wait();
  bool valid() const { return static_cast<bool>(action_); }

 private:
  friend class Comm;
  explicit Request(std::function<void()> action) : action_(std::move(action)) {}
  std::function<void()> action_;
};

void wait_all(std::span<Request> requests);

/// A communicator: a group of world ranks plus this thread's position in it.
///
/// Copies are cheap views; split() creates sub-communicators (task domains).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  World& world() const { return *world_; }

  // --- point-to-point -----------------------------------------------------
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) const {
    post(dest, tag, typeid(T).hash_code(),
         {reinterpret_cast<const std::byte*>(data.data()),
          data.size() * sizeof(T)});
  }

  template <typename T>
  void send_value(const T& value, int dest, int tag) const {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Receives into `data`; returns the element count actually received
  /// (must be <= data.size()). Throws CommError on type mismatch.
  template <typename T>
  std::size_t recv(std::span<T> data, int src, int tag) const {
    detail::Message m = take(src, tag);
    check_type<T>(m);
    const std::size_t count = m.data.size() / sizeof(T);
    AP3_REQUIRE_MSG(count <= data.size(),
                    "recv buffer too small: need " << count << " elements, have "
                                                   << data.size());
    std::memcpy(data.data(), m.data.data(), m.data.size());
    return count;
  }

  template <typename T>
  T recv_value(int src, int tag) const {
    T value{};
    const std::size_t n = recv(std::span<T>(&value, 1), src, tag);
    AP3_REQUIRE(n == 1);
    return value;
  }

  template <typename T>
  Request isend(std::span<const T> data, int dest, int tag) const {
    // Eager buffered transport: the send completes immediately; the Request
    // exists so call sites keep MPI-shaped structure.
    send(data, dest, tag);
    return Request([] {});
  }

  template <typename T>
  Request irecv(std::span<T> data, int src, int tag) const {
    const Comm* self = this;
    return Request([self, data, src, tag] {
      const std::size_t n = self->recv(data, src, tag);
      AP3_REQUIRE_MSG(n == data.size(),
                      "irecv expected exactly " << data.size()
                                                << " elements, got " << n);
    });
  }

  // --- collectives ----------------------------------------------------------
  void barrier() const;

  template <typename T>
  void bcast(std::span<T> data, int root) const;

  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root) const;

  template <typename T>
  std::vector<T> allgather(std::span<const T> local) const;

  /// Variable-size allgather; returns concatenation in rank order plus
  /// per-rank counts.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr) const;

  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
              int root) const;

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) const;

  template <typename T>
  T allreduce_value(T value, ReduceOp op) const {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Fixed-block all-to-all: send_data has size()*block elements.
  template <typename T>
  std::vector<T> alltoall(std::span<const T> send_data, std::size_t block) const;

  /// Variable all-to-all: send_counts[r] elements go to rank r; returns the
  /// received concatenation and fills recv_counts.
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send_data,
                           std::span<const std::size_t> send_counts,
                           std::vector<std::size_t>& recv_counts) const;

  /// Split into sub-communicators by color; rank order within a color follows
  /// (key, rank). This is how AP3ESM partitions ranks into task domains.
  Comm split(int color, int key) const;

 private:
  friend void run(int, const std::function<void(Comm&)>&);
  friend void run(int, const WorldOptions&, const std::function<void(Comm&)>&);
  Comm(World* world, std::vector<int> group, int rank, int comm_id,
       std::uint64_t split_epoch)
      : world_(world),
        group_(std::move(group)),
        rank_(rank),
        comm_id_(comm_id),
        split_epoch_(split_epoch) {}

  template <typename T>
  static void check_type(const detail::Message& m) {
    AP3_REQUIRE_MSG(m.type_hash == typeid(T).hash_code(),
                    "message type mismatch (tag " << m.tag << " from rank "
                                                  << m.src << ")");
  }

  void post(int dest, int tag, std::size_t type_hash,
            std::span<const std::byte> bytes) const;
  detail::Message take(int src, int tag) const;
  int world_rank_of(int comm_rank) const;

  template <typename T>
  static void apply_op(std::span<T> acc, std::span<const T> in, ReduceOp op) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] = acc[i] + in[i]; break;
        case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::kMax: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
      }
    }
  }

  World* world_ = nullptr;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_ = 0;
  int comm_id_ = 0;
  mutable std::uint64_t split_epoch_ = 0;
};

/// Launch `fn` on `nranks` ranks (threads) sharing one World. Exceptions in
/// any rank are captured and rethrown (first by rank order) after join.
void run(int nranks, const std::function<void(Comm&)>& fn);

/// Same, with World options (e.g. a deterministic fault schedule). Ranks can
/// inspect injection state during the run via `comm.world().fault_log()` /
/// `fault_stats()`.
void run(int nranks, const WorldOptions& options,
         const std::function<void(Comm&)>& fn);

// ---- template implementations ---------------------------------------------

template <typename T>
void Comm::bcast(std::span<T> data, int root) const {
  AP3_REQUIRE(root >= 0 && root < size());
  obs::counter_add("par:coll:bcast:calls", 1.0);
  constexpr int kTag = -1000;  // reserved internal tag space (tags < -999)
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(std::span<const T>(data.data(), data.size()), r, kTag);
    }
  } else {
    const std::size_t n = recv(data, root, kTag);
    AP3_REQUIRE(n == data.size());
  }
}

template <typename T>
std::vector<T> Comm::gather(std::span<const T> local, int root) const {
  constexpr int kTag = -1001;
  if (rank_ == root) {
    std::vector<T> out(local.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        std::copy(local.begin(), local.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(r * local.size()));
      } else {
        std::span<T> slot(out.data() + r * local.size(), local.size());
        const std::size_t n = recv(slot, r, kTag);
        AP3_REQUIRE(n == local.size());
      }
    }
    return out;
  }
  send(local, root, kTag);
  return {};
}

template <typename T>
std::vector<T> Comm::allgather(std::span<const T> local) const {
  std::vector<T> out = gather(local, 0);
  if (rank_ != 0) out.resize(local.size() * static_cast<std::size_t>(size()));
  bcast(std::span<T>(out), 0);
  return out;
}

template <typename T>
std::vector<T> Comm::allgatherv(std::span<const T> local,
                                std::vector<std::size_t>* counts) const {
  const std::uint64_t mine = local.size();
  std::vector<std::uint64_t> sizes =
      allgather(std::span<const std::uint64_t>(&mine, 1));
  constexpr int kTag = -1002;
  std::size_t total = 0;
  for (std::uint64_t s : sizes) total += s;
  std::vector<T> out(total);
  if (rank_ == 0) {
    std::size_t offset = 0;
    for (int r = 0; r < size(); ++r) {
      std::span<T> slot(out.data() + offset, sizes[static_cast<size_t>(r)]);
      if (r == 0) {
        std::copy(local.begin(), local.end(), slot.begin());
      } else if (!slot.empty()) {
        const std::size_t n = recv(slot, r, kTag);
        AP3_REQUIRE(n == slot.size());
      }
      offset += sizes[static_cast<size_t>(r)];
    }
  } else if (!local.empty()) {
    send(local, 0, kTag);
  }
  bcast(std::span<T>(out), 0);
  if (counts) counts->assign(sizes.begin(), sizes.end());
  return out;
}

template <typename T>
void Comm::reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                  int root) const {
  AP3_REQUIRE(in.size() == out.size());
  obs::counter_add("par:coll:reduce:calls", 1.0);
  constexpr int kTag = -1003;
  if (rank_ == root) {
    std::copy(in.begin(), in.end(), out.begin());
    std::vector<T> buffer(in.size());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const std::size_t n = recv(std::span<T>(buffer), r, kTag);
      AP3_REQUIRE(n == buffer.size());
      apply_op(out, std::span<const T>(buffer), op);
    }
  } else {
    send(in, root, kTag);
  }
}

template <typename T>
void Comm::allreduce(std::span<const T> in, std::span<T> out,
                     ReduceOp op) const {
  // Built over reduce+bcast, whose own byte/call counters also fire — the
  // traffic really is a reduce followed by a bcast on this transport.
  obs::counter_add("par:coll:allreduce:calls", 1.0);
  reduce(in, out, op, 0);
  bcast(out, 0);
}

template <typename T>
std::vector<T> Comm::alltoall(std::span<const T> send_data,
                              std::size_t block) const {
  AP3_REQUIRE(send_data.size() == block * static_cast<std::size_t>(size()));
  constexpr int kTag = -1004;
  std::vector<T> out(send_data.size());
  // Post all sends (eager), then receive in rank order.
  for (int r = 0; r < size(); ++r) {
    std::span<const T> chunk(send_data.data() + r * block, block);
    if (r == rank_) {
      std::copy(chunk.begin(), chunk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(r * block));
    } else {
      send(chunk, r, kTag);
    }
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    std::span<T> slot(out.data() + r * block, block);
    const std::size_t n = recv(slot, r, kTag);
    AP3_REQUIRE(n == block);
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoallv(std::span<const T> send_data,
                               std::span<const std::size_t> send_counts,
                               std::vector<std::size_t>& recv_counts) const {
  AP3_REQUIRE(send_counts.size() == static_cast<std::size_t>(size()));
  std::size_t check = 0;
  for (std::size_t c : send_counts) check += c;
  AP3_REQUIRE(check == send_data.size());

  // Exchange counts with a fixed-block alltoall, then the payloads.
  std::vector<std::uint64_t> counts64(send_counts.begin(), send_counts.end());
  std::vector<std::uint64_t> got =
      alltoall(std::span<const std::uint64_t>(counts64), 1);
  recv_counts.assign(got.begin(), got.end());

  constexpr int kTag = -1005;
  std::size_t total = 0;
  for (std::size_t c : recv_counts) total += c;
  std::vector<T> out(total);

  std::size_t send_offset = 0;
  std::vector<std::size_t> send_offsets(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    send_offsets[static_cast<size_t>(r)] = send_offset;
    send_offset += send_counts[static_cast<size_t>(r)];
  }
  std::size_t recv_offset = 0;
  std::vector<std::size_t> recv_offsets(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    recv_offsets[static_cast<size_t>(r)] = recv_offset;
    recv_offset += recv_counts[static_cast<size_t>(r)];
  }

  for (int r = 0; r < size(); ++r) {
    std::span<const T> chunk(send_data.data() + send_offsets[static_cast<size_t>(r)],
                             send_counts[static_cast<size_t>(r)]);
    if (r == rank_) {
      std::copy(chunk.begin(), chunk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  recv_offsets[static_cast<size_t>(r)]));
    } else if (!chunk.empty()) {
      send(chunk, r, kTag);
    }
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_ || recv_counts[static_cast<size_t>(r)] == 0) continue;
    std::span<T> slot(out.data() + recv_offsets[static_cast<size_t>(r)],
                      recv_counts[static_cast<size_t>(r)]);
    const std::size_t n = recv(slot, r, kTag);
    AP3_REQUIRE(n == slot.size());
  }
  return out;
}

}  // namespace ap3::par
