// Deterministic fault injection and transparent recovery (src/fault + the
// fault-mode transport in src/par/comm.cpp).
//
// The contract under test: with a seeded FaultConfig, (1) the injection
// schedule is a pure function of the seed and the message coordinates, so
// replays are bit-identical; (2) drop/duplicate/delay faults are recovered
// transparently — receivers still observe every payload exactly once, in
// send order; (3) recovery uses timeout + exponential backoff, never
// deadlocks; and (4) the stats/log/obs counters agree with each other.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using ap3::testing::drop_plan;
using ap3::testing::heavy_fault_plan;
using ap3::testing::reorder_plan;
using ap3::testing::run_ranks;

// ---- the decision function -------------------------------------------------

TEST(FaultDecide, PureFunctionOfSeedAndPoint) {
  fault::FaultConfig config;
  config.seed = 42;
  config.drop_rate = 0.2;
  config.duplicate_rate = 0.2;
  config.delay_rate = 0.2;
  config.stall_rate = 0.3;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    const fault::FaultPoint point{/*comm_id=*/1, /*tag=*/7, /*src=*/0,
                                  /*dst=*/1, seq};
    const fault::Decision first = fault::decide(config, point);
    const fault::Decision again = fault::decide(config, point);
    EXPECT_EQ(first.action, again.action) << "seq " << seq;
    EXPECT_EQ(first.delay_deliveries, again.delay_deliveries);
    EXPECT_EQ(first.stall_microseconds, again.stall_microseconds);
  }
}

TEST(FaultDecide, DifferentSeedsGiveDifferentSchedules) {
  fault::FaultConfig a = heavy_fault_plan(1);
  fault::FaultConfig b = heavy_fault_plan(1);
  b.seed ^= 0x1ULL;
  int differing = 0;
  for (std::uint64_t seq = 1; seq <= 500; ++seq) {
    const fault::FaultPoint point{0, 100, 0, 1, seq};
    if (fault::decide(a, point).action != fault::decide(b, point).action)
      ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultDecide, RatesRoughlyHonored) {
  fault::FaultConfig config;
  config.seed = 7;
  config.drop_rate = 0.25;
  const int kTrials = 4000;
  int drops = 0;
  for (std::uint64_t seq = 1; seq <= kTrials; ++seq) {
    const fault::FaultPoint point{0, 5, 2, 3, seq};
    if (fault::decide(config, point).action == fault::Action::kDrop) ++drops;
  }
  const double rate = static_cast<double>(drops) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(FaultDecide, ZeroRatesNeverFault) {
  const fault::FaultConfig config;  // all rates default to 0
  EXPECT_FALSE(config.any_faults());
  for (std::uint64_t seq = 1; seq <= 100; ++seq) {
    const fault::Decision d = fault::decide(config, {0, 0, 0, 1, seq});
    EXPECT_FALSE(d.faulted());
  }
}

TEST(FaultDecide, TagWindowTargetsOneTrafficClass) {
  fault::FaultConfig config;
  config.seed = 11;
  config.drop_rate = 0.3;
  config.delay_rate = 0.3;
  config.stall_rate = 0.2;
  config.tag_min = 9300;
  config.tag_max = 9399;
  int in_window_faults = 0;
  for (std::uint64_t seq = 1; seq <= 500; ++seq) {
    // Outside the window (halo-style and collective tags): never perturbed.
    EXPECT_FALSE(fault::decide(config, {0, 9101, 0, 1, seq}).faulted());
    EXPECT_FALSE(fault::decide(config, {0, -1000, 0, 1, seq}).faulted());
    // Inside the window: decisions match the unwindowed config exactly.
    fault::FaultConfig open = config;
    open.tag_min = std::numeric_limits<int>::min();
    open.tag_max = std::numeric_limits<int>::max();
    const fault::FaultPoint point{0, 9300, 0, 1, seq};
    const fault::Decision windowed = fault::decide(config, point);
    const fault::Decision unwindowed = fault::decide(open, point);
    EXPECT_EQ(windowed.action, unwindowed.action);
    EXPECT_EQ(windowed.stall_microseconds, unwindowed.stall_microseconds);
    if (windowed.faulted()) ++in_window_faults;
  }
  EXPECT_GT(in_window_faults, 0);
}

// ---- schedule determinism end to end ---------------------------------------

// Runs a fixed traffic pattern (every rank sends 50 tagged messages to every
// other rank) and returns the sorted injection log.
std::vector<fault::InjectionRecord> run_and_log(
    const fault::FaultConfig& plan) {
  std::vector<fault::InjectionRecord> log;
  run_ranks(4, plan, [&](par::Comm& comm) {
    std::vector<double> payload(8);
    std::iota(payload.begin(), payload.end(), comm.rank() * 100.0);
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == comm.rank()) continue;
      for (int m = 0; m < 50; ++m)
        comm.send(std::span<const double>(payload), peer, /*tag=*/m % 5);
    }
    std::vector<double> in(8);
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == comm.rank()) continue;
      for (int m = 0; m < 50; ++m) comm.recv(std::span<double>(in), peer, m % 5);
    }
    comm.barrier();
    if (comm.rank() == 0) log = comm.world().fault_log()->sorted();
  });
  return log;
}

TEST(FaultSchedule, SameSeedReplaysIdentically) {
  const auto plan = heavy_fault_plan(0xabcdULL);
  const auto first = run_and_log(plan);
  const auto again = run_and_log(plan);
  ASSERT_FALSE(first.empty()) << "plan injected nothing; rates too low";
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_TRUE(first[i] == again[i])
        << "record " << i << ": " << fault::to_string(first[i]) << " vs "
        << fault::to_string(again[i]);
}

TEST(FaultSchedule, DifferentSeedsDiverge) {
  const auto first = run_and_log(heavy_fault_plan(1));
  const auto other = run_and_log(heavy_fault_plan(2));
  ASSERT_FALSE(first.empty());
  bool same = first.size() == other.size();
  if (same) {
    for (std::size_t i = 0; i < first.size(); ++i)
      if (!(first[i] == other[i])) { same = false; break; }
  }
  EXPECT_FALSE(same);
}

// ---- transparent recovery --------------------------------------------------

TEST(FaultRecovery, DropsRecoveredInOrder) {
  run_ranks(2, drop_plan(0xd20bULL, 0.3), [](par::Comm& comm) {
    constexpr int kMessages = 200;
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m)
        comm.send_value(static_cast<double>(m), 1, /*tag=*/3);
    } else {
      for (int m = 0; m < kMessages; ++m)
        EXPECT_EQ(comm.recv_value<double>(0, 3), static_cast<double>(m));
    }
    comm.barrier();
    const fault::FaultStats stats = comm.world().fault_stats();
    EXPECT_GT(stats.injected_drop, 0u) << "plan never dropped anything";
    EXPECT_EQ(stats.recovered_drop, stats.injected_drop);
    EXPECT_EQ(stats.retried, stats.injected_drop);
    EXPECT_GT(stats.timeouts, 0u);  // drops only recover via timeout wakeups
  });
}

TEST(FaultRecovery, ReorderingInvisibleToReceiver) {
  run_ranks(2, reorder_plan(0x5eedULL), [](par::Comm& comm) {
    constexpr int kMessages = 300;
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m)
        comm.send_value(static_cast<double>(m), 1, /*tag=*/9);
    } else {
      // Sequenced take must hand messages back in send order even though the
      // plan holds some back and duplicates others.
      for (int m = 0; m < kMessages; ++m)
        ASSERT_EQ(comm.recv_value<double>(0, 9), static_cast<double>(m));
    }
    comm.barrier();
    const fault::FaultStats stats = comm.world().fault_stats();
    EXPECT_GT(stats.injected_delay, 0u);
    EXPECT_GT(stats.injected_duplicate, 0u);
    EXPECT_EQ(stats.recovered_duplicate, stats.injected_duplicate);
    EXPECT_EQ(stats.recovered_delay, stats.injected_delay);
  });
}

TEST(FaultRecovery, DuplicatesNeverSurface) {
  fault::FaultConfig plan;
  plan.seed = 0xd0bULL;
  plan.duplicate_rate = 0.5;
  run_ranks(2, plan, [](par::Comm& comm) {
    constexpr int kMessages = 100;
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m) comm.send_value(m, 1, 1);
      comm.send_value(-1, 1, /*tag=*/2);  // sentinel on another tag
    } else {
      for (int m = 0; m < kMessages; ++m)
        EXPECT_EQ(comm.recv_value<int>(0, 1), m);
      // The sentinel arrives after exactly kMessages payloads: duplicates
      // were suppressed at the mailbox, never handed to recv.
      EXPECT_EQ(comm.recv_value<int>(0, 2), -1);
    }
    comm.barrier();
    const fault::FaultStats stats = comm.world().fault_stats();
    EXPECT_GT(stats.injected_duplicate, 0u);
    EXPECT_EQ(stats.recovered_duplicate, stats.injected_duplicate);
  });
}

TEST(FaultRecovery, CollectivesSurviveHeavyFaults) {
  // Collectives are built over the same p2p transport; a heavy mixed plan
  // must not wedge them. Timeout + backoff is the liveness mechanism.
  run_ranks(4, heavy_fault_plan(0xc0ffeeULL), [](par::Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const double sum = comm.allreduce_value(1.0, par::ReduceOp::kSum);
      EXPECT_EQ(sum, 4.0);
      std::vector<double> data(3, comm.rank() + round * 10.0);
      comm.bcast(std::span<double>(data), round % comm.size());
      for (double v : data) EXPECT_EQ(v, round % comm.size() + round * 10.0);
      comm.barrier();
    }
    const fault::FaultStats stats = comm.world().fault_stats();
    EXPECT_GT(stats.recoverable(), 0u);
    EXPECT_EQ(stats.recovered(), stats.recoverable());
  });
}

TEST(FaultRecovery, SplitCommunicatorsInheritFaultTransport) {
  run_ranks(4, reorder_plan(0x9999ULL), [](par::Comm& comm) {
    par::Comm half = comm.split(comm.rank() / 2, comm.rank());
    const double sum =
        half.allreduce_value(static_cast<double>(comm.rank()), par::ReduceOp::kSum);
    EXPECT_EQ(sum, comm.rank() / 2 == 0 ? 1.0 : 5.0);
    comm.barrier();
  });
}

// ---- accounting ------------------------------------------------------------

TEST(FaultAccounting, LogStatsAndCountersAgree) {
  obs::reset_all();
  fault::FaultStats stats;
  std::size_t log_size = 0;
  std::size_t log_drops = 0, log_dups = 0, log_delays = 0, log_stalls = 0;
  run_ranks(2, heavy_fault_plan(0xacc7ULL), [&](par::Comm& comm) {
    constexpr int kMessages = 150;
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m)
        comm.send_value(static_cast<double>(m), 1, 4);
    } else {
      for (int m = 0; m < kMessages; ++m)
        EXPECT_EQ(comm.recv_value<double>(0, 4), static_cast<double>(m));
    }
    comm.barrier();
    if (comm.rank() == 0) {
      stats = comm.world().fault_stats();
      const fault::InjectionLog* log = comm.world().fault_log();
      ASSERT_NE(log, nullptr);
      EXPECT_TRUE(comm.world().fault_active());
      log_size = log->size();
      log_drops = log->count(fault::Action::kDrop);
      log_dups = log->count(fault::Action::kDuplicate);
      log_delays = log->count(fault::Action::kDelay);
      log_stalls = log->count_stalls();
    }
  });

  // Log and stats count the same events.
  EXPECT_EQ(log_drops, stats.injected_drop);
  EXPECT_EQ(log_dups, stats.injected_duplicate);
  EXPECT_EQ(log_delays, stats.injected_delay);
  EXPECT_EQ(log_stalls, stats.injected_stall);
  EXPECT_GT(stats.injected(), 0u);

  // Every recoverable fault was recovered; stalls need no recovery.
  EXPECT_EQ(stats.recovered(), stats.recoverable());

  // The obs trail agrees: "fault:injected" fires once per log record, and
  // the recovered counters sum to the stats totals.
  double obs_injected = 0.0, obs_recovered = 0.0, obs_retried = 0.0;
  for (const auto& buffer : obs::buffers()) {
    obs_injected += buffer->counter("fault:injected");
    obs_recovered += buffer->counter("fault:recovered");
    obs_retried += buffer->counter("fault:retried");
  }
  EXPECT_EQ(static_cast<std::size_t>(obs_injected), log_size);
  EXPECT_EQ(static_cast<std::uint64_t>(obs_recovered), stats.recovered());
  EXPECT_EQ(static_cast<std::uint64_t>(obs_retried), stats.retried);
}

TEST(FaultAccounting, FaultFreeWorldReportsNothing) {
  run_ranks(2, [](par::Comm& comm) {
    EXPECT_FALSE(comm.world().fault_active());
    EXPECT_EQ(comm.world().fault_log(), nullptr);
    const fault::FaultStats stats = comm.world().fault_stats();
    EXPECT_EQ(stats.injected(), 0u);
    EXPECT_EQ(stats.recovered(), 0u);
    if (comm.rank() == 0) comm.send_value(1, 1, 0);
    if (comm.rank() == 1) EXPECT_EQ(comm.recv_value<int>(0, 0), 1);
  });
}

TEST(FaultAccounting, SortedLogIsOrdered) {
  const auto log = run_and_log(heavy_fault_plan(0x50a7ULL));
  ASSERT_FALSE(log.empty());
  for (std::size_t i = 1; i < log.size(); ++i) {
    const auto& a = log[i - 1].point;
    const auto& b = log[i].point;
    const auto key = [](const fault::FaultPoint& p) {
      return std::tuple(p.comm_id, p.src, p.dst, p.tag, p.seq);
    };
    EXPECT_LE(key(a), key(b)) << "log not sorted at " << i;
  }
}

}  // namespace
