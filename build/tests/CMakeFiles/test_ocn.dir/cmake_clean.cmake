file(REMOVE_RECURSE
  "CMakeFiles/test_ocn.dir/test_ocn.cpp.o"
  "CMakeFiles/test_ocn.dir/test_ocn.cpp.o.d"
  "test_ocn"
  "test_ocn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
