file(REMOVE_RECURSE
  "libap3_io.a"
)
