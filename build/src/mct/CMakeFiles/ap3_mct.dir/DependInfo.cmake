
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mct/attrvect.cpp" "src/mct/CMakeFiles/ap3_mct.dir/attrvect.cpp.o" "gcc" "src/mct/CMakeFiles/ap3_mct.dir/attrvect.cpp.o.d"
  "/root/repo/src/mct/gsmap.cpp" "src/mct/CMakeFiles/ap3_mct.dir/gsmap.cpp.o" "gcc" "src/mct/CMakeFiles/ap3_mct.dir/gsmap.cpp.o.d"
  "/root/repo/src/mct/rearranger.cpp" "src/mct/CMakeFiles/ap3_mct.dir/rearranger.cpp.o" "gcc" "src/mct/CMakeFiles/ap3_mct.dir/rearranger.cpp.o.d"
  "/root/repo/src/mct/router.cpp" "src/mct/CMakeFiles/ap3_mct.dir/router.cpp.o" "gcc" "src/mct/CMakeFiles/ap3_mct.dir/router.cpp.o.d"
  "/root/repo/src/mct/sparsematrix.cpp" "src/mct/CMakeFiles/ap3_mct.dir/sparsematrix.cpp.o" "gcc" "src/mct/CMakeFiles/ap3_mct.dir/sparsematrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/ap3_par.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ap3_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
