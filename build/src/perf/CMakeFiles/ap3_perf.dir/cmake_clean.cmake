file(REMOVE_RECURSE
  "CMakeFiles/ap3_perf.dir/federation.cpp.o"
  "CMakeFiles/ap3_perf.dir/federation.cpp.o.d"
  "CMakeFiles/ap3_perf.dir/measure.cpp.o"
  "CMakeFiles/ap3_perf.dir/measure.cpp.o.d"
  "CMakeFiles/ap3_perf.dir/network.cpp.o"
  "CMakeFiles/ap3_perf.dir/network.cpp.o.d"
  "CMakeFiles/ap3_perf.dir/scaling.cpp.o"
  "CMakeFiles/ap3_perf.dir/scaling.cpp.o.d"
  "CMakeFiles/ap3_perf.dir/sota.cpp.o"
  "CMakeFiles/ap3_perf.dir/sota.cpp.o.d"
  "CMakeFiles/ap3_perf.dir/workload.cpp.o"
  "CMakeFiles/ap3_perf.dir/workload.cpp.o.d"
  "libap3_perf.a"
  "libap3_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
