# Empty compiler generated dependencies file for bench_pp_portability.
# This may be replaced when dependencies are built.
