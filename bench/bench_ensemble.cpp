// Benchmark: ensemble fleet serving — N coupled members per process over one
// shared immutable SharedInputs context vs N back-to-back solo runs.
//
// Both paths run the SAME four scenario specs (a control plus three
// perturbed analogs; member k also seeds a slightly displaced/strengthened
// analog of the same typhoon, the usual perturbed-vortex-initialization
// practice — the toy dycore advects temperature passively, so a thermal
// perturbation alone cannot move the track) for the same number of coupled
// windows, end to end including construction. The solo path is the
// status quo: each member rebuilds the mesh, the tripolar grid, the regrid
// matrices, and every communicator-bound coupling plan from scratch. The
// fleet path builds the immutable inputs ONCE on the main thread, hands them
// to every rank thread as shared_ptr<const>, and donates member 0's coupling
// plans to members 1..N-1 — that deduplicated construction is where the
// aggregate members x SYPD win comes from, and the shared- vs replicated-
// resident-bytes line is the memory story.
//
// The per-member state hash is the bit-exactness witness: a fleet member must
// be bit-identical to the same ScenarioSpec run solo. Any mismatch fails the
// benchmark (exit 1) — sharing inputs must never change a member's bits.
//
// Prints a table and writes BENCH_ensemble.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "atm/vortex.hpp"
#include "coupler/driver.hpp"
#include "fleet/fleet.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

constexpr int kRanks = 2;
constexpr int kMembers = 4;
constexpr int kWindows = 4;
constexpr int kReps = 3;
constexpr std::uint64_t kSeedBase = 7000;
constexpr double kPerturbKelvin = 1.0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

cpl::CoupledConfig bench_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 12;  // 2880 cells: construction-heavy, run-light
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{64, 48, 6};
  config.ocn_couple_ratio = 1;
  return config;
}

/// Member k's initial vortex: the control storm for k = 0, and perturbed
/// analogs (displaced and strengthened within analysis uncertainty) for the
/// rest. Identical between a member's solo and fleet runs by construction.
atm::VortexSpec storm(int k) {
  atm::VortexSpec spec;
  spec.lon_deg = 135.0 + 1.5 * k;
  spec.lat_deg = 18.0 + 0.75 * k;
  spec.max_wind_ms = 45.0 + 2.0 * k;
  spec.depression_m = 80.0 + 4.0 * k;
  return spec;
}

struct MemberResult {
  std::uint64_t hash = 0;
  bool found = false;
  double lon = 0.0, lat = 0.0, wind = 0.0;
};

struct RunResult {
  double seconds = 0.0;
  MemberResult members[kMembers];
};

/// The four specs both paths run — identical by construction.
std::vector<cpl::ScenarioSpec> member_specs(
    std::shared_ptr<const cpl::SharedInputs> shared) {
  return fleet::EnsembleFleet::perturbed_specs(bench_config(), kMembers,
                                               std::move(shared), kSeedBase,
                                               kPerturbKelvin);
}

/// Seed the storm, run the windows, and harvest hash + final vortex fix.
MemberResult run_member(cpl::CoupledModel& model, int k) {
  model.seed_typhoon(storm(k));
  model.run_windows(kWindows);
  MemberResult r;
  r.hash = model.state_hash();  // collective
  const atm::VortexFix fix = model.track_typhoon(135.0, 18.0, 1500.0);
  r.found = fix.found;
  r.lon = fix.lon_deg;
  r.lat = fix.lat_deg;
  r.wind = fix.max_wind_ms;
  return r;
}

/// Back-to-back solo runs: each member rebuilds all inputs and plans.
RunResult run_solo() {
  RunResult out;
  const double t0 = now_seconds();
  par::run(kRanks, [&out](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs = member_specs(nullptr);
    for (int k = 0; k < kMembers; ++k) {
      cpl::CoupledModel model(comm, std::move(specs[static_cast<std::size_t>(k)]));
      const MemberResult r = run_member(model, k);
      if (comm.rank() == 0) out.members[k] = r;
    }
  });
  out.seconds = now_seconds() - t0;
  return out;
}

/// The fleet: one SharedInputs build, donated plans, round-robin schedule.
RunResult run_fleet(std::size_t* shared_bytes) {
  RunResult out;
  const double t0 = now_seconds();
  const auto shared = cpl::build_shared_inputs(bench_config());
  par::run(kRanks, [&out, &shared](par::Comm& comm) {
    fleet::EnsembleFleet fl(comm, member_specs(shared));
    for (std::size_t k = 0; k < fl.size(); ++k)
      fl.member(k).seed_typhoon(storm(static_cast<int>(k)));
    fl.run_windows(kWindows);
    for (std::size_t k = 0; k < fl.size(); ++k) {
      auto& model = fl.member(k);
      MemberResult r;
      r.hash = model.state_hash();  // collective
      const atm::VortexFix fix = model.track_typhoon(135.0, 18.0, 1500.0);
      r.found = fix.found;
      r.lon = fix.lon_deg;
      r.lat = fix.lat_deg;
      r.wind = fix.max_wind_ms;
      if (comm.rank() == 0) out.members[k] = r;
    }
  });
  out.seconds = now_seconds() - t0;
  if (shared_bytes != nullptr) *shared_bytes = shared->resident_bytes();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "ensemble fleet benchmark: %d members, %d ranks, %d windows, "
      "best of %d (interleaved)\n\n",
      kMembers, kRanks, kWindows, kReps);

  RunResult solo, fleet_run;
  solo.seconds = 1e300;
  fleet_run.seconds = 1e300;
  std::size_t shared_bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave solo/fleet rep by rep so ambient machine drift hits both
    // paths equally; best-of-kReps on top of that.
    const RunResult s = run_solo();
    const RunResult f = run_fleet(&shared_bytes);
    if (s.seconds < solo.seconds) solo.seconds = s.seconds;
    if (f.seconds < fleet_run.seconds) fleet_run.seconds = f.seconds;
    for (int k = 0; k < kMembers; ++k) {
      solo.members[k] = s.members[k];
      fleet_run.members[k] = f.members[k];
    }
  }

  const cpl::CoupledConfig config = bench_config();
  const double sim_seconds = kWindows * config.atm.model_dt_seconds();
  const double sypd_solo =
      kMembers * sim_seconds / (365.0 * solo.seconds);
  const double sypd_fleet =
      kMembers * sim_seconds / (365.0 * fleet_run.seconds);
  const double speedup = solo.seconds / fleet_run.seconds;
  const std::size_t replicated_bytes =
      static_cast<std::size_t>(kMembers) * shared_bytes;

  std::printf("  %-9s %6s %18s %18s %10s\n", "member", "seed", "solo hash",
              "fleet hash", "bit-exact");
  bool all_exact = true;
  for (int k = 0; k < kMembers; ++k) {
    const bool exact = solo.members[k].hash == fleet_run.members[k].hash;
    all_exact = all_exact && exact;
    std::printf("  %-9s %6llu   %016llx   %016llx %10s\n",
                k == 0 ? "control" : ("member-" + std::to_string(k)).c_str(),
                static_cast<unsigned long long>(
                    k == 0 ? 0 : kSeedBase + static_cast<std::uint64_t>(k)),
                static_cast<unsigned long long>(solo.members[k].hash),
                static_cast<unsigned long long>(fleet_run.members[k].hash),
                exact ? "yes" : "NO");
  }
  if (!all_exact) {
    std::fprintf(stderr,
                 "error: a fleet member diverged from its solo run — shared "
                 "inputs changed the bits\n");
    return 1;
  }

  // Ensemble spread: how far the perturbed analogs' storms wandered from the
  // control's, and the intensity band across members.
  double spread_km = 0.0, wind_lo = 1e300, wind_hi = -1e300;
  std::printf("\n  %-9s %10s %10s %12s\n", "member", "lon [deg]", "lat [deg]",
              "wind [m/s]");
  for (int k = 0; k < kMembers; ++k) {
    const MemberResult& m = fleet_run.members[k];
    if (!m.found) continue;
    std::printf("  %-9s %10.3f %10.3f %12.2f\n",
                k == 0 ? "control" : ("member-" + std::to_string(k)).c_str(),
                m.lon, m.lat, m.wind);
    wind_lo = std::min(wind_lo, m.wind);
    wind_hi = std::max(wind_hi, m.wind);
    for (int j = 0; j < k; ++j) {
      if (!fleet_run.members[j].found) continue;
      spread_km = std::max(
          spread_km, atm::track_distance_km(m.lon, m.lat,
                                            fleet_run.members[j].lon,
                                            fleet_run.members[j].lat));
    }
  }
  const double wind_spread = wind_hi >= wind_lo ? wind_hi - wind_lo : 0.0;
  std::printf("  track spread %.1f km, intensity spread %.2f m/s\n",
              spread_km, wind_spread);

  std::printf(
      "\n  %-22s %12.4f s   %.4f members x SYPD\n"
      "  %-22s %12.4f s   %.4f members x SYPD\n"
      "  aggregate speedup: %.3fx   shared inputs: %zu bytes "
      "(vs %zu replicated)\n",
      "back-to-back solo", solo.seconds, sypd_solo, "shared-inputs fleet",
      fleet_run.seconds, sypd_fleet, speedup, shared_bytes, replicated_bytes);

  FILE* f = std::fopen("BENCH_ensemble.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"members\": %d,\n  \"ranks\": %d,\n"
                 "  \"windows\": %d,\n  \"reps\": %d,\n"
                 "  \"solo_seconds\": %.6f,\n  \"fleet_seconds\": %.6f,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"solo_members_sypd\": %.6f,\n"
                 "  \"fleet_members_sypd\": %.6f,\n"
                 "  \"shared_resident_bytes\": %zu,\n"
                 "  \"replicated_resident_bytes\": %zu,\n"
                 "  \"track_spread_km\": %.3f,\n"
                 "  \"intensity_spread_ms\": %.3f,\n  \"member_runs\": [\n",
                 kMembers, kRanks, kWindows, kReps, solo.seconds,
                 fleet_run.seconds, speedup, sypd_solo, sypd_fleet,
                 shared_bytes, replicated_bytes, spread_km, wind_spread);
    for (int k = 0; k < kMembers; ++k) {
      std::fprintf(
          f,
          "    {\"member\": %d, \"seed\": %llu, "
          "\"solo_hash\": \"%016llx\", \"fleet_hash\": \"%016llx\", "
          "\"hashes_equal\": %s, \"lon_deg\": %.4f, \"lat_deg\": %.4f, "
          "\"max_wind_ms\": %.3f}%s\n",
          k,
          static_cast<unsigned long long>(
              k == 0 ? 0 : kSeedBase + static_cast<std::uint64_t>(k)),
          static_cast<unsigned long long>(solo.members[k].hash),
          static_cast<unsigned long long>(fleet_run.members[k].hash),
          solo.members[k].hash == fleet_run.members[k].hash ? "true" : "false",
          fleet_run.members[k].lon, fleet_run.members[k].lat,
          fleet_run.members[k].wind, k + 1 < kMembers ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_ensemble.json\n");
  }
  return 0;
}
