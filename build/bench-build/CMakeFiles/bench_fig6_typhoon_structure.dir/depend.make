# Empty dependencies file for bench_fig6_typhoon_structure.
# This may be replaced when dependencies are built.
