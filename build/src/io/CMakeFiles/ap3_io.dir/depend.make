# Empty dependencies file for ap3_io.
# This may be replaced when dependencies are built.
