file(REMOVE_RECURSE
  "libap3_base.a"
)
