// Halo exchange machinery.
//
// BlockHalo: width-1 halo exchange for 2-D block decompositions of the
// tripolar ocean grid — periodic east/west, closed southern boundary, and
// the tripolar *north fold* (the top row exchanges with itself mirrored in
// longitude). Built on non-blocking point-to-point sends, the communication
// pattern §5.2.4 moves the coupler to.
//
// GraphHalo: generic owner-based halo for unstructured meshes (the
// icosahedral atmosphere grid). Ghost requirements are negotiated once with
// an alltoallv handshake; subsequent exchanges are pure p2p.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "grid/partition.hpp"
#include "par/comm.hpp"

namespace ap3::grid {

class BlockHalo {
 public:
  /// `x_range`/`y_range`: this rank's owned index ranges. `px`/`py`: process
  /// grid shape; rank layout is by = rank / px. `north_fold`: apply the
  /// tripolar fold at the global top row. Blocks follow partition_1d cuts.
  BlockHalo(const par::Comm& comm, int nx_global, int ny_global, int px, int py,
            bool north_fold);

  /// Explicit-cuts variant for rebalanced decompositions: every rank passes
  /// the same `cuts` so the north-fold peer ranges (which depend on *other*
  /// blocks' x-extents) stay consistent across the process row.
  BlockHalo(const par::Comm& comm, int nx_global, int ny_global,
            const BlockCuts& cuts, bool north_fold);

  int nx_local() const { return nx_local_; }
  int ny_local() const { return ny_local_; }
  int x0() const { return x0_; }
  int y0() const { return y0_; }

  /// `field` is (ny_local+2) × (nx_local+2) row-major with 1-deep ghosts;
  /// interior element (i, j) lives at field[(j+1)*(nx_local+2) + (i+1)].
  /// Fills all four ghost edges (corners not exchanged; 5-point stencils).
  void exchange(std::vector<double>& field) const;

  std::size_t halo_index(int i, int j) const {
    return static_cast<std::size_t>(j + 1) *
               static_cast<std::size_t>(nx_local_ + 2) +
           static_cast<std::size_t>(i + 1);
  }

 private:
  const par::Comm& comm_;
  int nx_global_, ny_global_;
  int px_, py_;
  bool north_fold_;
  int bx_, by_;
  int x0_, y0_, nx_local_, ny_local_;
  int west_rank_, east_rank_, south_rank_, north_rank_;
  // Column boundaries of the whole process row (px_+1 entries). The north
  // fold needs peer blocks' x-ranges, not just ours.
  std::vector<std::int64_t> x_cuts_;
};

/// Generic unstructured halo: each rank owns a set of global ids and needs
/// the values of a set of ghost ids owned elsewhere.
class GraphHalo {
 public:
  /// `owned`: globally sorted list of ids owned by this rank.
  /// `ghosts`: ids this rank needs but does not own.
  /// `owner_of(id)` must return the owning rank, consistently on all ranks.
  GraphHalo(const par::Comm& comm, std::vector<std::int64_t> owned,
            std::vector<std::int64_t> ghosts,
            const std::function<int(std::int64_t)>& owner_of);

  std::size_t num_owned() const { return owned_.size(); }
  std::size_t num_ghosts() const { return ghosts_.size(); }
  const std::vector<std::int64_t>& ghost_ids() const { return ghosts_; }

  /// Gathers owned values (ordered like the `owned` constructor list) into
  /// ghost values (ordered like `ghost_ids()`).
  void exchange(std::span<const double> owned_values,
                std::span<double> ghost_values) const;

 private:
  const par::Comm& comm_;
  std::vector<std::int64_t> owned_;
  std::vector<std::int64_t> ghosts_;
  // For each peer rank: local indices (into owned_) we must send.
  std::map<int, std::vector<std::size_t>> send_plan_;
  // For each peer rank: positions (into ghosts_) their payload fills.
  std::map<int, std::vector<std::size_t>> recv_plan_;
};

}  // namespace ap3::grid
