#include "atm/dycore.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/hash.hpp"
#include "pp/swgomp.hpp"
#include "precision/group_scaled.hpp"

namespace ap3::atm {

using constants::kEarthRadiusM;
using constants::kGravity;
using constants::kOmega;

double AtmConfig::wave_speed() const {
  return std::sqrt(kGravity * mean_depth_m);
}

double AtmConfig::dycore_dt_seconds() const {
  const double spacing_m =
      grid::IcosaCounts::resolution_km(mesh_n) * 1000.0;
  return 0.2 * spacing_m / wave_speed();
}

AtmConfig AtmConfig::for_resolution_km(double km, double shrink) {
  AtmConfig config;
  const auto counts = grid::IcosaCounts::for_resolution_km(km * shrink);
  config.mesh_n = static_cast<int>(counts.n);
  return config;
}

namespace {
std::array<double, 3> normalize3(std::array<double, 3> v) {
  const double r = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  return {v[0] / r, v[1] / r, v[2] / r};
}
std::array<double, 3> cross3(const std::array<double, 3>& a,
                             const std::array<double, 3>& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}
double dot3(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
}  // namespace

LocalMesh::LocalMesh(const par::Comm& comm, const grid::IcosahedralGrid& mesh) {
  ncells_global_ = static_cast<std::int64_t>(mesh.num_cells());
  const grid::Range1D mine =
      grid::partition_1d(ncells_global_, comm.size(), comm.rank());
  owned_begin_ = mine.begin;
  num_owned_ = static_cast<std::size_t>(mine.size());

  area_.resize(num_owned_);
  coriolis_.resize(num_owned_);
  lon_.resize(num_owned_);
  lat_.resize(num_owned_);
  center_.resize(num_owned_);
  east_.resize(num_owned_);
  north_.resize(num_owned_);
  neighbors_.resize(num_owned_);

  // Ghosts: neighbor cells outside my contiguous range, sorted by gid.
  std::set<std::int64_t> ghost_set;
  for (std::size_t c = 0; c < num_owned_; ++c) {
    const auto gid = static_cast<std::size_t>(owned_begin_) + c;
    for (auto nb : mesh.cell_neighbors(gid)) {
      const auto nb64 = static_cast<std::int64_t>(nb);
      if (nb64 < mine.begin || nb64 >= mine.end) ghost_set.insert(nb64);
    }
  }
  ghost_ids_.assign(ghost_set.begin(), ghost_set.end());
  std::map<std::int64_t, std::size_t> ghost_slot;
  for (std::size_t g = 0; g < ghost_ids_.size(); ++g)
    ghost_slot[ghost_ids_[g]] = num_owned_ + g;

  for (std::size_t c = 0; c < num_owned_; ++c) {
    const auto gid = static_cast<std::size_t>(owned_begin_) + c;
    const grid::SpherePoint& center = mesh.cell_center(gid);
    center_[c] = {center.x, center.y, center.z};
    lon_[c] = center.lon();
    lat_[c] = center.lat();
    area_[c] = mesh.cell_area(gid) * kEarthRadiusM * kEarthRadiusM;
    coriolis_[c] = 2.0 * kOmega * std::sin(lat_[c]);
    // Local east/north basis (east degenerate at poles is fine: triangular
    // cell centers never sit exactly on the pole).
    const std::array<double, 3> up = center_[c];
    std::array<double, 3> east = {-up[1], up[0], 0.0};
    const double enorm = std::sqrt(dot3(east, east));
    if (enorm < 1e-12) {
      east = {1.0, 0.0, 0.0};
    } else {
      east = {east[0] / enorm, east[1] / enorm, east[2] / enorm};
    }
    east_[c] = east;
    north_[c] = cross3(up, east);

    const auto nbs = mesh.cell_neighbors(gid);
    const auto& edges = mesh.cell_edge_ids(gid);
    for (int k = 0; k < 3; ++k) {
      const auto nb = static_cast<std::int64_t>(nbs[static_cast<std::size_t>(k)]);
      Neighbor& entry = neighbors_[c][static_cast<std::size_t>(k)];
      entry.slot = (nb >= mine.begin && nb < mine.end)
                       ? static_cast<std::size_t>(nb - mine.begin)
                       : ghost_slot.at(nb);
      const auto edge = edges[static_cast<std::size_t>(k)];
      const auto& ev = mesh.edge_vertex_ids(edge);
      entry.edge_len_m =
          grid::IcosahedralGrid::arc(mesh.vertex(ev[0]), mesh.vertex(ev[1])) *
          kEarthRadiusM;
      const grid::SpherePoint& nb_center =
          mesh.cell_center(static_cast<std::size_t>(nb));
      entry.dist_m =
          grid::IcosahedralGrid::arc(center, nb_center) * kEarthRadiusM;
      // Outward direction: the chord toward the neighbor's center. Using the
      // un-projected chord makes the normal exactly antisymmetric between
      // the two sides of the face, so upwind fluxes cancel pairwise and mass
      // is conserved to round-off across any rank count. (The spurious
      // radial component is harmless: velocities stay tangent.)
      entry.out_normal = normalize3({nb_center.x - center.x,
                                     nb_center.y - center.y,
                                     nb_center.z - center.z});
    }
  }

  auto owner = [this, &comm](std::int64_t gid) {
    return grid::owner_1d(ncells_global_, comm.size(), gid);
  };
  std::vector<std::int64_t> owned_list(num_owned_);
  for (std::size_t c = 0; c < num_owned_; ++c)
    owned_list[c] = owned_begin_ + static_cast<std::int64_t>(c);
  halo_ = std::make_unique<grid::GraphHalo>(comm, owned_list, ghost_ids_, owner);
}

void LocalMesh::exchange(std::vector<double>& slot_field) const {
  AP3_REQUIRE(slot_field.size() == num_slots());
  std::span<const double> owned(slot_field.data(), num_owned_);
  std::span<double> ghosts(slot_field.data() + num_owned_, num_ghosts());
  halo_->exchange(owned, ghosts);
}

Dycore::Dycore(const par::Comm& comm, const AtmConfig& config,
               const grid::IcosahedralGrid& mesh)
    : comm_(comm), config_(config), local_(comm, mesh) {
  const std::size_t slots = local_.num_slots();
  state_.nlev = static_cast<std::size_t>(config.nlev);
  state_.h.assign(slots, config.mean_depth_m);
  state_.vx.assign(slots, 0.0);
  state_.vy.assign(slots, 0.0);
  state_.vz.assign(slots, 0.0);
  state_.temp.assign(slots * state_.nlev, 0.0);
  state_.q.assign(slots * state_.nlev, 0.0);
  h_flux_div_.assign(local_.num_owned(), 0.0);

  // Climatological initial columns: warm surface, cold top, humid boundary
  // layer, latitude dependence.
  for (std::size_t c = 0; c < local_.num_owned(); ++c) {
    const double coslat = std::cos(local_.lat_rad(c));
    for (std::size_t k = 0; k < state_.nlev; ++k) {
      const double depth =
          static_cast<double>(k + 1) / static_cast<double>(state_.nlev);
      const double tsurf = 255.0 + 45.0 * coslat * coslat;
      state_.temp[state_.tq(c, k)] = 215.0 + (tsurf - 215.0) * depth;
      state_.q[state_.tq(c, k)] =
          0.016 * coslat * std::exp(-4.0 * (1.0 - depth));
    }
  }
  // Tracer halos are refreshed inside step_tracers; dynamic fields are
  // exchanged now so diagnostics before the first step see valid ghosts.
  exchange_dynamic_fields();
}

void Dycore::exchange_dynamic_fields() {
  local_.exchange(state_.h);
  local_.exchange(state_.vx);
  local_.exchange(state_.vy);
  local_.exchange(state_.vz);
}

void Dycore::perturb_temperature(std::uint64_t seed, double amplitude_k) {
  // Each (cell, level) offset hashes (seed, global id, level) so the same
  // scenario produces the same field on any rank count — an ensemble member's
  // trajectory depends only on its spec, never on the decomposition.
  for (std::size_t c = 0; c < local_.num_owned(); ++c) {
    const std::int64_t gid = local_.global_id(c);
    for (std::size_t k = 0; k < state_.nlev; ++k) {
      std::uint64_t h = kFnvBasis;
      h = fnv1a(h, &seed, sizeof(seed));
      h = fnv1a_value(h, gid);
      h = fnv1a_value(h, static_cast<std::int64_t>(k));
      // Top 53 bits -> uniform double in [0, 1).
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      state_.temp[state_.tq(c, k)] += amplitude_k * (2.0 * u - 1.0);
    }
  }
  // Refresh tracer ghosts level by level (same idiom as step_tracers).
  std::vector<double> level(local_.num_slots());
  for (std::size_t k = 0; k < state_.nlev; ++k) {
    for (std::size_t s = 0; s < local_.num_slots(); ++s)
      level[s] = state_.temp[state_.tq(s, k)];
    local_.exchange(level);
    for (std::size_t s = 0; s < local_.num_slots(); ++s)
      state_.temp[state_.tq(s, k)] = level[s];
  }
}

void Dycore::apply_mixed_precision() {
  if (!config_.mixed_precision) return;
  constexpr std::size_t kGroup = 64;
  precision::round_through_mixed(state_.h, kGroup);
  precision::round_through_mixed(state_.vx, kGroup);
  precision::round_through_mixed(state_.vy, kGroup);
  precision::round_through_mixed(state_.vz, kGroup);
}

void Dycore::step_dynamics(double dt) {
  const std::size_t n = local_.num_owned();
  exchange_dynamic_fields();

  // --- continuity: dh/dt = -div(h V), upwind face thickness -----------------
  // Conflict-free over cells: offloadable through the SWGOMP-style layer
  // (§5.1.1 "most of the GRIST loops are conflict-free").
  auto continuity_body = [&](std::size_t c) {
    double div = 0.0;
    for (const LocalMesh::Neighbor& nb : local_.neighbors(c)) {
      // Face-normal velocity: average of the two cells.
      const double vn =
          0.5 * ((state_.vx[c] + state_.vx[nb.slot]) * nb.out_normal[0] +
                 (state_.vy[c] + state_.vy[nb.slot]) * nb.out_normal[1] +
                 (state_.vz[c] + state_.vz[nb.slot]) * nb.out_normal[2]);
      const double h_face = vn >= 0.0 ? state_.h[c] : state_.h[nb.slot];
      div += h_face * vn * nb.edge_len_m;
    }
    h_flux_div_[c] = div / local_.area_m2(c);
  };
  if (config_.use_swgomp) {
    pp::swgomp::target_parallel_for("grist_continuity", n, continuity_body);
  } else {
    for (std::size_t c = 0; c < n; ++c) continuity_body(c);
  }
  for (std::size_t c = 0; c < n; ++c) state_.h[c] -= dt * h_flux_div_[c];

  // --- momentum with the *new* h (forward–backward) -------------------------
  local_.exchange(state_.h);
  auto momentum_body = [&](std::size_t c) {
    // Pressure gradient via Green-Gauss over the cell faces. Subtracting the
    // cell value makes the gradient of a constant field exactly zero even
    // though the discrete face normals do not sum to the zero vector.
    double gx = 0.0, gy = 0.0, gz = 0.0;
    for (const LocalMesh::Neighbor& nb : local_.neighbors(c)) {
      const double dh = 0.5 * (state_.h[nb.slot] - state_.h[c]);
      gx += dh * nb.out_normal[0] * nb.edge_len_m;
      gy += dh * nb.out_normal[1] * nb.edge_len_m;
      gz += dh * nb.out_normal[2] * nb.edge_len_m;
    }
    const double inv_area = 1.0 / local_.area_m2(c);
    gx *= inv_area;
    gy *= inv_area;
    gz *= inv_area;

    // Coriolis: f (k × V), k = outward radial.
    const auto& up = local_.center(c);
    const double f = local_.coriolis(c);
    const std::array<double, 3> vel = {state_.vx[c], state_.vy[c], state_.vz[c]};
    const std::array<double, 3> kxv = cross3(up, vel);

    state_.vx[c] += dt * (-kGravity * gx - f * kxv[0] -
                          config_.drag_per_second * vel[0]);
    state_.vy[c] += dt * (-kGravity * gy - f * kxv[1] -
                          config_.drag_per_second * vel[1]);
    state_.vz[c] += dt * (-kGravity * gz - f * kxv[2] -
                          config_.drag_per_second * vel[2]);

    // Re-project tangent to the sphere.
    const double radial =
        state_.vx[c] * up[0] + state_.vy[c] * up[1] + state_.vz[c] * up[2];
    state_.vx[c] -= radial * up[0];
    state_.vy[c] -= radial * up[1];
    state_.vz[c] -= radial * up[2];
  };
  if (config_.use_swgomp) {
    pp::swgomp::target_parallel_for("grist_momentum", n, momentum_body);
  } else {
    for (std::size_t c = 0; c < n; ++c) momentum_body(c);
  }
  apply_mixed_precision();
}

void Dycore::step_tracers(double dt) {
  const std::size_t n = local_.num_owned();
  const std::size_t nlev = state_.nlev;
  local_.exchange(state_.vx);
  local_.exchange(state_.vy);
  local_.exchange(state_.vz);

  // Per-level upwind advection; level fields are strided views into the
  // packed (slot, lev) arrays, exchanged level by level.
  std::vector<double> level(local_.num_slots());
  std::vector<double> tendency(n);
  for (int tracer = 0; tracer < 2; ++tracer) {
    std::vector<double>& field = tracer == 0 ? state_.temp : state_.q;
    for (std::size_t k = 0; k < nlev; ++k) {
      for (std::size_t s = 0; s < local_.num_slots(); ++s)
        level[s] = field[state_.tq(s, k)];
      local_.exchange(level);
      auto tracer_body = [&](std::size_t c) {
        double flux = 0.0;
        for (const LocalMesh::Neighbor& nb : local_.neighbors(c)) {
          const double vn =
              0.5 * ((state_.vx[c] + state_.vx[nb.slot]) * nb.out_normal[0] +
                     (state_.vy[c] + state_.vy[nb.slot]) * nb.out_normal[1] +
                     (state_.vz[c] + state_.vz[nb.slot]) * nb.out_normal[2]);
          const double phi_face = vn >= 0.0 ? level[c] : level[nb.slot];
          // Advective form: vn · (phi_face − phi_c) keeps constants exact.
          flux += vn * (phi_face - level[c]) * nb.edge_len_m;
        }
        tendency[c] = -flux / local_.area_m2(c);
      };
      if (config_.use_swgomp) {
        pp::swgomp::target_parallel_for("grist_tracer", n, tracer_body);
      } else {
        for (std::size_t c = 0; c < n; ++c) tracer_body(c);
      }
      for (std::size_t c = 0; c < n; ++c)
        field[state_.tq(c, k)] = level[c] + dt * tendency[c];
    }
  }
}

double Dycore::total_mass() const {
  double local = 0.0;
  for (std::size_t c = 0; c < local_.num_owned(); ++c)
    local += state_.h[c] * local_.area_m2(c);
  return comm_.allreduce_value(local, par::ReduceOp::kSum);
}

double Dycore::total_tracer(int which) const {
  const std::vector<double>& field = which == 0 ? state_.temp : state_.q;
  double local = 0.0;
  for (std::size_t c = 0; c < local_.num_owned(); ++c) {
    double column = 0.0;
    for (std::size_t k = 0; k < state_.nlev; ++k)
      column += field[state_.tq(c, k)];
    local += column * local_.area_m2(c);
  }
  return comm_.allreduce_value(local, par::ReduceOp::kSum);
}

double Dycore::max_wind() const {
  double local = 0.0;
  for (std::size_t c = 0; c < local_.num_owned(); ++c) {
    const double speed2 = state_.vx[c] * state_.vx[c] +
                          state_.vy[c] * state_.vy[c] +
                          state_.vz[c] * state_.vz[c];
    local = std::max(local, speed2);
  }
  return std::sqrt(comm_.allreduce_value(local, par::ReduceOp::kMax));
}

double Dycore::max_h_deviation() const {
  double local = 0.0;
  for (std::size_t c = 0; c < local_.num_owned(); ++c)
    local = std::max(local, std::abs(state_.h[c] - config_.mean_depth_m));
  return comm_.allreduce_value(local, par::ReduceOp::kMax);
}

std::vector<double> Dycore::relative_vorticity() const {
  // Circulation / area, with edge tangents t = r̂ × n̂ (right-handed around
  // the outward normal).
  std::vector<double> out(local_.num_owned());
  for (std::size_t c = 0; c < local_.num_owned(); ++c) {
    const auto& up = local_.center(c);
    double circulation = 0.0;
    for (const LocalMesh::Neighbor& nb : local_.neighbors(c)) {
      const std::array<double, 3> tangent = cross3(up, nb.out_normal);
      const double vt =
          0.5 * ((state_.vx[c] + state_.vx[nb.slot]) * tangent[0] +
                 (state_.vy[c] + state_.vy[nb.slot]) * tangent[1] +
                 (state_.vz[c] + state_.vz[nb.slot]) * tangent[2]);
      circulation += vt * nb.edge_len_m;
    }
    out[c] = circulation / local_.area_m2(c);
  }
  return out;
}

void Dycore::wind_at(std::size_t owned, double& u_east, double& v_north) const {
  const auto& east = local_.east(owned);
  const auto& north = local_.north(owned);
  u_east = state_.vx[owned] * east[0] + state_.vy[owned] * east[1] +
           state_.vz[owned] * east[2];
  v_north = state_.vx[owned] * north[0] + state_.vy[owned] * north[1] +
            state_.vz[owned] * north[2];
}

void Dycore::set_wind_at(std::size_t owned, double u_east, double v_north) {
  const auto& east = local_.east(owned);
  const auto& north = local_.north(owned);
  state_.vx[owned] = u_east * east[0] + v_north * north[0];
  state_.vy[owned] = u_east * east[1] + v_north * north[1];
  state_.vz[owned] = u_east * east[2] + v_north * north[2];
}

}  // namespace ap3::atm
