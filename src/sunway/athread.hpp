// Athread-style offload API for one simulated core group.
//
// swLICOM drives the CPE mesh through athread_spawn/athread_join; kernels
// query their CPE id and stride over the iteration space. The simulator runs
// the 64 logical CPEs on the host thread pool (functionally identical
// results) while the core-group cost model (coregroup.hpp) charges simulated
// time for the same work, so MPE-vs-CPE comparisons reproduce the paper's
// speedup band without the hardware.
#pragma once

#include <cstddef>
#include <functional>

#include "sunway/arch.hpp"
#include "sunway/dma.hpp"
#include "sunway/ldm.hpp"

namespace ap3::sunway {

/// Per-CPE execution context handed to spawned kernels.
struct CpeContext {
  int cpe_id = 0;                 ///< 0..63 within the core group
  int num_cpes = kCpesPerCoreGroup;
  LdmAllocator* ldm = nullptr;    ///< this CPE's scratchpad
  DmaEngine* dma = nullptr;       ///< shared DMA accounting for the CG
};

using CpeKernel = std::function<void(CpeContext&)>;

/// Runs `kernel` once per CPE (64 instances) and blocks until all complete.
/// Each instance gets a fresh LDM allocator; LDM contents do not persist
/// across spawns (as on hardware after a kernel unload).
void athread_spawn_join(const CpeKernel& kernel, DmaEngine& dma);

/// Convenience: block-cyclic partition of [0, n) for CPE `id` of `num`.
struct CpeRange {
  std::size_t begin;
  std::size_t end;
};
inline CpeRange cpe_partition(std::size_t n, int id, int num) {
  const std::size_t base = n / static_cast<std::size_t>(num);
  const std::size_t extra = n % static_cast<std::size_t>(num);
  const std::size_t uid = static_cast<std::size_t>(id);
  const std::size_t begin = uid * base + (uid < extra ? uid : extra);
  const std::size_t len = base + (uid < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace ap3::sunway
