# Empty compiler generated dependencies file for ai_physics_train.
# This may be replaced when dependencies are built.
