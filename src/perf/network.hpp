// Interconnect timing models for the two machines of §6.3.
//
// Sunway OceanLight: 256-node supernodes on leaf switches with a 16:3
// oversubscribed fat tree above them. ORISE: GPU nodes with PCIe-attached
// accelerators and a 25 GB/s network. These models supply the communication
// terms of the strong/weak-scaling predictions: halo exchanges (bandwidth +
// latency per neighbor message) and allreduces (log-tree latency), with
// inter-supernode traffic charged the oversubscribed bandwidth.
#pragma once

#include <cstddef>

namespace ap3::perf {

enum class MachineKind { kSunwayOceanLight, kOrise };

/// Per-level traffic tally: bytes and messages on the fast intra-supernode
/// leaf level versus the oversubscribed inter-supernode level. Produced by
/// collectives/benchmarks (the par:coll:* counter families tally exactly
/// this split) and priced by NetworkModel::exchange_seconds.
struct LevelTraffic {
  double intra_bytes = 0.0;
  double inter_bytes = 0.0;
  long long intra_messages = 0;
  long long inter_messages = 0;
};

class NetworkModel {
 public:
  explicit NetworkModel(MachineKind kind);

  MachineKind kind() const { return kind_; }

  /// Point-to-point message time.
  double p2p_seconds(double bytes, bool same_supernode) const;

  /// One halo exchange: `neighbors` simultaneous messages of `bytes` each
  /// from one node. With many nodes most neighbors leave the supernode.
  double halo_seconds(double bytes, int neighbors, long long nodes) const;

  /// Flat binary-tree allreduce of `bytes` across `nodes`. Each round's cost
  /// blends the two levels by intra_fraction(nodes) — the share of a rank's
  /// potential partners inside its supernode — instead of an all-or-nothing
  /// supernode-boundary cliff.
  double allreduce_seconds(double bytes, long long nodes) const;

  /// Two-level allreduce (reduce inside each supernode, exchange among
  /// leaders, broadcast back): 2·ceil(log2 min(n,k)) intra rounds plus
  /// 2·ceil(log2 ceil(n/k)) inter rounds for k-node supernodes.
  double hierarchical_allreduce_seconds(double bytes, long long nodes) const;

  /// Wire time of an arbitrary per-level traffic tally: one latency per
  /// message plus bytes over the level's bandwidth, both levels summed.
  double exchange_seconds(const LevelTraffic& traffic) const;

  /// Smooth share of a rank's tree partners inside its supernode:
  /// 1.0 when the job fits in one supernode, (k-1)/(n-1) beyond. On a flat
  /// fabric (ORISE) the split is timing-neutral (equal bandwidths).
  double intra_fraction(long long nodes) const;

  /// Nodes per supernode used by the level split.
  long long supernode_nodes() const { return supernode_nodes_; }

  double latency_seconds() const { return latency_; }
  double intra_bandwidth_gbs() const { return intra_gbs_; }
  double inter_bandwidth_gbs() const { return inter_gbs_; }

 private:
  MachineKind kind_;
  double latency_;
  double intra_gbs_;
  double inter_gbs_;
  long long supernode_nodes_;
};

}  // namespace ap3::perf
