// Benchmark: the batched AI inference engine across execution spaces and
// precision policies — columns/s for kSerial / kHostThreads / kSunwayCPE
// under fp64 / fp32 / group-scaled, with a per-condition output-hash witness.
//
// Two kinds of numbers, labelled honestly in BENCH_ai.json:
//
//   measured — wall-clock columns/s on THIS host, interleaved best-of-3 per
//     condition so ambient drift hits all conditions equally. On a 1-core
//     container kHostThreads cannot beat kSerial in wall time (the pool's
//     workers share the core with the rank thread), so the measured speedups
//     mainly witness that portability costs nothing, not that threads help.
//
//   modeled — what the same launch plan delivers when the hardware is real:
//     kHostThreads assumes the pool's workers plus the rank thread each own a
//     core (perfect scaling over pool_size+1 — an upper bound); kSunwayCPE
//     charges the suite's tensor flops to one CPE cluster (440 GF/s) plus the
//     measured DMA staging traffic at 40 GB/s + 1.2 us/transfer.
//
// The hash witness is the portability contract: for each precision policy the
// output bytes must be identical across all three spaces, and group-scaled
// must equal fp32 (power-of-two scales round-trip losslessly). Any mismatch
// exits non-zero.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ai/engine.hpp"
#include "ai/suite.hpp"
#include "base/rng.hpp"
#include "obs/obs.hpp"
#include "pp/exec.hpp"
#include "pp/pool.hpp"
#include "sunway/arch.hpp"

namespace {

using namespace ap3;
using ai::EngineConfig;
using ai::PrecisionPolicy;
using tensor::Tensor;

constexpr int kReps = 3;
constexpr std::size_t kColumns = 512;
constexpr std::size_t kLevels = 20;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct Fixture {
  std::shared_ptr<ai::AiPhysicsSuite> suite;
  Tensor columns;
  std::vector<double> tskin, coszr;

  Fixture() : columns({kColumns, 5, kLevels}) {
    ai::SuiteConfig sc;
    sc.cnn_hidden = 16;
    sc.mlp_hidden = 32;
    sc.levels = static_cast<int>(kLevels);
    suite = std::make_shared<ai::AiPhysicsSuite>(sc);
    Rng rng(2026);
    Tensor tendencies({kColumns, 4, kLevels}), fluxes({kColumns, 2});
    tskin.assign(kColumns, 0.0);
    coszr.assign(kColumns, 0.0);
    for (std::size_t s = 0; s < kColumns; ++s) {
      tskin[s] = 285.0 + 10.0 * rng.normal();
      coszr[s] = rng.uniform();
    }
    for (std::size_t i = 0; i < columns.size(); ++i)
      columns[i] = static_cast<float>(rng.normal() * 10.0 + 230.0);
    for (std::size_t i = 0; i < tendencies.size(); ++i)
      tendencies[i] = static_cast<float>(rng.normal() * 1e-4);
    for (std::size_t i = 0; i < fluxes.size(); ++i)
      fluxes[i] = static_cast<float>(350.0 + 40.0 * rng.normal());
    const Tensor rad = suite->make_rad_inputs(columns, tskin, coszr);
    suite->fit_normalizers(columns, tendencies, rad, fluxes);
    // Zero-initialized readout layers would make every condition compute
    // trivial zeros; randomize all weights as a trained suite would look.
    Rng wr(7);
    for (auto* model : {&suite->cnn().model(), &suite->mlp().model()}) {
      std::vector<float> w = model->save_weights();
      for (float& v : w) v = static_cast<float>(wr.normal() * 0.1);
      model->load_weights(w);
    }
  }
};

struct Condition {
  pp::ExecSpace space;
  PrecisionPolicy precision;
  std::size_t pack = pp::kDefaultPackWidth;  ///< 0 = scalar reference path
  double best_seconds = 1e300;
  std::uint64_t output_hash = 0;
  double dma_bytes = 0.0;      ///< staged per run (kSunwayCPE only)
  double dma_transfers = 0.0;  ///< per run (kSunwayCPE only)
};

/// One timed inference pass; returns wall seconds and fills the output hash.
double run_once(const Fixture& fx, Condition& cond) {
  EngineConfig ec;
  ec.space = cond.space;
  ec.precision = cond.precision;
  ec.micro_batch = 64;
  ec.pack_width = cond.pack;
  fx.suite->set_engine_config(ec);

  const double dma_b0 = obs::total_counter("sunway:dma:bytes");
  const double dma_t0 = obs::total_counter("sunway:dma:transfers");
  const double t0 = now_seconds();
  const ai::SuiteOutput out =
      fx.suite->compute(fx.columns, fx.tskin, fx.coszr);
  const double t1 = now_seconds();
  cond.dma_bytes = obs::total_counter("sunway:dma:bytes") - dma_b0;
  cond.dma_transfers = obs::total_counter("sunway:dma:transfers") - dma_t0;

  std::uint64_t h = 1469598103934665603ULL;
  h = fnv_bytes(h, out.tendencies.data(),
                out.tendencies.size() * sizeof(float));
  h = fnv_bytes(h, out.fluxes.data(), out.fluxes.size() * sizeof(float));
  cond.output_hash = h;
  return t1 - t0;
}

const char* precision_name(PrecisionPolicy p) { return ai::to_string(p); }

}  // namespace

int main() {
  obs::set_enabled(true);
  Fixture fx;

  const pp::ExecSpace spaces[] = {pp::ExecSpace::kSerial,
                                  pp::ExecSpace::kHostThreads,
                                  pp::ExecSpace::kSunwayCPE};
  const PrecisionPolicy precisions[] = {PrecisionPolicy::kFp64,
                                        PrecisionPolicy::kFp32,
                                        PrecisionPolicy::kGroupScaled};
  std::vector<Condition> conds;
  for (pp::ExecSpace s : spaces)
    for (PrecisionPolicy p : precisions) conds.push_back({s, p});

  // Warm-up (pool spin-up, lazy allocations), then interleave the full
  // condition grid rep by rep so machine drift is shared.
  for (Condition& c : conds) (void)run_once(fx, c);
  for (int rep = 0; rep < kReps; ++rep)
    for (Condition& c : conds)
      c.best_seconds = std::min(c.best_seconds, run_once(fx, c));

  // --- pack-width sweep ------------------------------------------------------
  // Same engine on kSerial/fp32 with the SIMD pack width swept over the
  // scalar reference (0) and every legal width, interleaved best-of-kReps
  // like the main grid. Pack width is a pure performance knob, so the hash
  // witness extends across the whole sweep.
  const std::size_t pack_widths[] = {0, 1, 2, 4, 8, 16};
  std::vector<Condition> packs;
  for (std::size_t w : pack_widths)
    packs.push_back({pp::ExecSpace::kSerial, PrecisionPolicy::kFp32, w});
  for (Condition& c : packs) (void)run_once(fx, c);
  for (int rep = 0; rep < kReps; ++rep)
    for (Condition& c : packs)
      c.best_seconds = std::min(c.best_seconds, run_once(fx, c));

  // --- hash witness ----------------------------------------------------------
  bool witness_ok = true;
  for (const Condition& c : packs) {
    if (c.output_hash != packs[0].output_hash) {
      std::fprintf(stderr,
                   "error: pack width %zu changed the fp32 output bits "
                   "(%016llx vs %016llx)\n",
                   c.pack,
                   static_cast<unsigned long long>(c.output_hash),
                   static_cast<unsigned long long>(packs[0].output_hash));
      witness_ok = false;
    }
  }
  for (PrecisionPolicy p : precisions) {
    std::uint64_t ref = 0;
    bool have_ref = false;
    for (const Condition& c : conds) {
      if (c.precision != p) continue;
      if (!have_ref) {
        ref = c.output_hash;
        have_ref = true;
      } else if (c.output_hash != ref) {
        std::fprintf(stderr,
                     "error: %s output differs across spaces (%016llx vs "
                     "%016llx on %s)\n",
                     precision_name(p), static_cast<unsigned long long>(ref),
                     static_cast<unsigned long long>(c.output_hash),
                     pp::to_string(c.space));
        witness_ok = false;
      }
    }
  }
  // Group-scaled storage must not move fp32 bits (lossless round trip).
  std::uint64_t fp32_hash = 0, gs_hash = 0;
  for (const Condition& c : conds) {
    if (c.space != pp::ExecSpace::kSerial) continue;
    if (c.precision == PrecisionPolicy::kFp32) fp32_hash = c.output_hash;
    if (c.precision == PrecisionPolicy::kGroupScaled) gs_hash = c.output_hash;
  }
  if (fp32_hash != gs_hash) {
    std::fprintf(stderr, "error: group-scaled output differs from fp32\n");
    witness_ok = false;
  }

  // --- perf model ------------------------------------------------------------
  const std::size_t pool_cores = pp::ThreadPool::global().size() + 1;
  const double flops_per_run =
      fx.suite->flops_per_column() * static_cast<double>(kColumns);

  auto measured_cps = [&](const Condition& c) {
    return static_cast<double>(kColumns) / c.best_seconds;
  };
  auto serial_best = [&](PrecisionPolicy p) {
    for (const Condition& c : conds)
      if (c.space == pp::ExecSpace::kSerial && c.precision == p)
        return c.best_seconds;
    return 0.0;
  };
  auto modeled_cps = [&](const Condition& c) {
    switch (c.space) {
      case pp::ExecSpace::kSerial:
        return measured_cps(c);
      case pp::ExecSpace::kHostThreads:
        // Perfect scaling over the launch plan's worker set — an upper
        // bound; the measured column is the lower one.
        return static_cast<double>(kColumns) /
               (serial_best(c.precision) / static_cast<double>(pool_cores));
      case pp::ExecSpace::kSunwayCPE: {
        const double compute_s =
            flops_per_run / (sunway::kCpeClusterGflops * 1e9);
        const double dma_s =
            c.dma_bytes / (sunway::kDmaBandwidthGBs * 1e9) +
            c.dma_transfers * sunway::kDmaLatencySeconds;
        return static_cast<double>(kColumns) / (compute_s + dma_s);
      }
    }
    return 0.0;
  };

  std::printf(
      "AI inference engine: %zu columns x %zu levels, micro-batch 64, "
      "best of %d (interleaved)\n",
      kColumns, kLevels, kReps);
  std::printf("host: %zu usable cores (pool %zu + rank thread)\n\n",
              pool_cores, pool_cores - 1);
  std::printf("  %-12s %-6s %14s %14s  %s\n", "space", "prec",
              "measured col/s", "modeled col/s", "output hash");
  for (const Condition& c : conds)
    std::printf("  %-12s %-6s %14.0f %14.0f  %016llx\n",
                pp::to_string(c.space), precision_name(c.precision),
                measured_cps(c), modeled_cps(c),
                static_cast<unsigned long long>(c.output_hash));

  const Condition* threads_fp32 = nullptr;
  const Condition* serial_fp32 = nullptr;
  for (const Condition& c : conds) {
    if (c.precision != PrecisionPolicy::kFp32) continue;
    if (c.space == pp::ExecSpace::kHostThreads) threads_fp32 = &c;
    if (c.space == pp::ExecSpace::kSerial) serial_fp32 = &c;
  }
  const double measured_speedup =
      serial_fp32->best_seconds / threads_fp32->best_seconds;
  const double modeled_speedup =
      modeled_cps(*threads_fp32) / measured_cps(*serial_fp32);
  std::printf(
      "\nhost-threads over serial (fp32): measured %.2fx, modeled %.2fx "
      "(launch plan over %zu cores)\n",
      measured_speedup, modeled_speedup, pool_cores);

  std::printf("\npack-width sweep (kSerial, fp32; 0 = scalar reference):\n");
  std::printf("  %-6s %14s %10s  %s\n", "width", "measured col/s", "speedup",
              "output hash");
  const Condition* pack_scalar = &packs[0];
  const Condition* pack_default = nullptr;
  for (const Condition& c : packs) {
    if (c.pack == pp::kDefaultPackWidth) pack_default = &c;
    std::printf("  %-6zu %14.0f %9.2fx  %016llx\n", c.pack, measured_cps(c),
                pack_scalar->best_seconds / c.best_seconds,
                static_cast<unsigned long long>(c.output_hash));
  }
  const double pack_speedup =
      pack_scalar->best_seconds / pack_default->best_seconds;
  std::printf(
      "pack over scalar (width %zu, fp32, serial): measured %.2fx, "
      "identical bits\n",
      pp::kDefaultPackWidth, pack_speedup);
  std::printf("hash witness: %s\n", witness_ok ? "pass" : "FAIL");

  FILE* f = std::fopen("BENCH_ai.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"columns\": %zu,\n  \"levels\": %zu,\n"
                 "  \"micro_batch\": 64,\n  \"reps\": %d,\n"
                 "  \"host_cores\": %zu,\n  \"conditions\": [\n",
                 kColumns, kLevels, kReps, pool_cores);
    for (std::size_t i = 0; i < conds.size(); ++i) {
      const Condition& c = conds[i];
      const char* basis =
          c.space == pp::ExecSpace::kSerial
              ? "measured"
              : (c.space == pp::ExecSpace::kHostThreads
                     ? "modeled: serial plan / (pool+1) cores; measured "
                       "column is the 1-core wall clock"
                     : "modeled: tensor flops at 440 GF/s CPE cluster + "
                       "measured DMA at 40 GB/s, 1.2us/transfer");
      std::fprintf(
          f,
          "    {\"space\": \"%s\", \"precision\": \"%s\", "
          "\"measured_columns_per_s\": %.1f, \"modeled_columns_per_s\": "
          "%.1f, \"basis\": \"%s\", \"output_hash\": \"%016llx\"}%s\n",
          pp::to_string(c.space), precision_name(c.precision), measured_cps(c),
          modeled_cps(c), basis,
          static_cast<unsigned long long>(c.output_hash),
          i + 1 < conds.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pack_sweep\": [\n");
    for (std::size_t i = 0; i < packs.size(); ++i) {
      const Condition& c = packs[i];
      std::fprintf(
          f,
          "    {\"space\": \"serial\", \"precision\": \"fp32\", "
          "\"pack_width\": %zu, \"measured_columns_per_s\": %.1f, "
          "\"basis\": \"measured\", \"output_hash\": \"%016llx\"}%s\n",
          c.pack, measured_cps(c),
          static_cast<unsigned long long>(c.output_hash),
          i + 1 < packs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"default_pack_width\": %zu,\n"
                 "  \"pack_speedup_measured\": %.4f,\n"
                 "  \"pack_speedup_basis\": \"wall-clock best-of-%d at the "
                 "default pack width over the pack_width=0 scalar reference, "
                 "same host, interleaved; output bits identical across the "
                 "whole sweep\",\n"
                 "  \"host_threads_speedup_measured\": %.4f,\n"
                 "  \"host_threads_speedup_modeled\": %.4f,\n"
                 "  \"speedup_basis\": \"modeled = perfect scaling of the "
                 "kHostThreads launch plan over pool+1 cores; this container "
                 "exposes 1 core, so the measured number cannot exceed 1x\",\n"
                 "  \"hash_witness\": %s\n}\n",
                 pp::kDefaultPackWidth, pack_speedup, kReps, measured_speedup,
                 modeled_speedup, witness_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_ai.json\n");
  }
  return witness_ok ? 0 : 1;
}
