// Tests for the ensemble fleet: N coupled members per process over one
// shared immutable SharedInputs context, behind the scenario-centric
// construction API.
//
// The load-bearing property is the determinism contract: a member's
// trajectory (witnessed by the collective state_hash) depends only on its
// ScenarioSpec — not on the fleet size, not on the member ordering, not on
// whether inputs are shared or rebuilt, and not on transport faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "base/error.hpp"
#include "coupler/driver.hpp"
#include "fleet/fleet.hpp"
#include "harness.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using ap3::testing::heavy_fault_plan;
using ap3::testing::run_ranks;

cpl::CoupledConfig fleet_config() {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 5;
  return config;
}

/// A spec with a distinct nonzero perturbation per label.
cpl::ScenarioSpec make_spec(const cpl::CoupledConfig& config,
                            std::uint64_t seed,
                            std::shared_ptr<const cpl::SharedInputs> shared) {
  cpl::ScenarioSpec spec;
  spec.config = config;
  spec.perturbation_seed = seed;
  spec.name = "seed-" + std::to_string(seed);
  spec.shared = std::move(shared);
  return spec;
}

/// Run one spec solo and return its collective state hash after `windows`.
std::uint64_t solo_hash(par::Comm& comm, cpl::ScenarioSpec spec, int windows) {
  cpl::CoupledModel model(comm, std::move(spec));
  model.run_windows(windows);
  return model.state_hash();
}

// A small deployable AI suite without the cost of training: handcrafted
// normalizers plus deterministic random weights (fresh networks have
// zero-initialized readouts, which would make inference trivially zero).
std::shared_ptr<ai::AiPhysicsSuite> make_test_suite(std::size_t nlev) {
  ai::SuiteConfig sc;
  sc.cnn_hidden = 4;
  sc.mlp_hidden = 8;
  sc.levels = static_cast<int>(nlev);
  auto suite = std::make_shared<ai::AiPhysicsSuite>(sc);

  const std::vector<float> ch_mean = {0.0f, 0.0f, 260.0f, 1e-3f, 5e4f};
  const std::vector<float> ch_std = {10.0f, 10.0f, 30.0f, 2e-3f, 3e4f};
  const std::size_t rad_feat = 5 * nlev + 2;
  std::vector<float> rad_mean(rad_feat), rad_std(rad_feat);
  for (std::size_t f = 0; f < 5 * nlev; ++f) {
    rad_mean[f] = ch_mean[f / nlev];
    rad_std[f] = ch_std[f / nlev];
  }
  rad_mean[5 * nlev] = 288.0f;  // tskin
  rad_std[5 * nlev] = 15.0f;
  rad_mean[5 * nlev + 1] = 0.5f;  // coszr
  rad_std[5 * nlev + 1] = 0.3f;
  suite->set_normalizers(
      ai::ChannelNormalizer::from_raw(false, ch_mean, ch_std),
      ai::ChannelNormalizer::from_raw(
          false, {0.0f, 0.0f, 0.0f, 0.0f}, {1e-5f, 1e-5f, 1e-5f, 1e-7f}),
      ai::ChannelNormalizer::from_raw(true, std::move(rad_mean),
                                      std::move(rad_std)),
      ai::ChannelNormalizer::from_raw(true, {400.0f, 350.0f},
                                      {100.0f, 50.0f}));

  Rng wr(91);
  for (auto* model : {&suite->cnn().model(), &suite->mlp().model()}) {
    std::vector<float> w = model->save_weights();
    for (float& v : w) v = static_cast<float>(wr.normal() * 0.05);
    model->load_weights(w);
  }
  return suite;
}

// ---- construction validation ------------------------------------------------

TEST(FleetValidation, RejectsEmptySpecList) {
  run_ranks(1, [](par::Comm& comm) {
    EXPECT_THROW(fleet::EnsembleFleet(comm, {}), ap3::Error);
  });
}

TEST(FleetValidation, RejectsIncompatibleMemberConfigs) {
  run_ranks(1, [](par::Comm& comm) {
    const cpl::CoupledConfig config = fleet_config();
    cpl::CoupledConfig other = config;
    other.atm.nlev = 8;
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 1, nullptr));
    specs.push_back(make_spec(other, 2, nullptr));
    EXPECT_THROW(fleet::EnsembleFleet(comm, std::move(specs)), ap3::Error);
  });
}

TEST(FleetValidation, RejectsRuntimeRebalancing) {
  run_ranks(1, [](par::Comm& comm) {
    cpl::CoupledConfig config = fleet_config();
    config.rebalance_every = 3;
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 1, nullptr));
    EXPECT_THROW(fleet::EnsembleFleet(comm, std::move(specs)), ap3::Error);
  });
}

TEST(FleetValidation, RejectsCallerProvidedPlans) {
  run_ranks(1, [](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(fleet_config(), 1, nullptr));
    specs[0].adopt_plans = std::make_shared<const cpl::CouplingPlans>();
    EXPECT_THROW(fleet::EnsembleFleet(comm, std::move(specs)), ap3::Error);
  });
}

TEST(FleetValidation, RejectsMixedSharedContexts) {
  const cpl::CoupledConfig config = fleet_config();
  const auto shared_a = cpl::build_shared_inputs(config);
  const auto shared_b = cpl::build_shared_inputs(config);
  run_ranks(1, [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 1, shared_a));
    specs.push_back(make_spec(config, 2, shared_b));
    EXPECT_THROW(fleet::EnsembleFleet(comm, std::move(specs)), ap3::Error);
  });
}

TEST(FleetValidation, RejectsOnlineTrainingOnMultiMemberFleet) {
  const cpl::CoupledConfig config = fleet_config();
  const auto shared = cpl::build_shared_inputs(config);
  run_ranks(1, [&](par::Comm& comm) {
    fleet::EnsembleFleet fl(
        comm, fleet::EnsembleFleet::perturbed_specs(config, 2, shared));
    cpl::AiInstallOptions options;
    options.suite = make_test_suite(6);
    options.online = atm::OnlineTrainingConfig{};
    EXPECT_THROW(fl.install_ai_physics(options), ap3::Error);
  });
}

TEST(FleetValidation, InstallWithoutSuiteRequiresFrozenWeights) {
  const cpl::CoupledConfig config = fleet_config();
  const auto shared = cpl::build_shared_inputs(config);  // no frozen suite
  run_ranks(1, [&](par::Comm& comm) {
    fleet::EnsembleFleet fl(
        comm, fleet::EnsembleFleet::perturbed_specs(config, 2, shared));
    EXPECT_THROW(fl.install_ai_physics(), ap3::Error);
  });
}

// ---- determinism contract ---------------------------------------------------

// The central property: member k's state hash is invariant to the fleet it
// runs in. Solo runs of specs A and B must match the same specs inside a
// 4-member fleet AND inside a reordered 2-member fleet {B, A}.
TEST(Fleet, MemberHashInvariantToFleetSizeAndOrdering) {
  constexpr int kRanks = 2;
  constexpr int kWindows = 5;
  const cpl::CoupledConfig config = fleet_config();
  const auto shared = cpl::build_shared_inputs(config);

  std::uint64_t hash_a = 0, hash_b = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    const std::uint64_t a = solo_hash(comm, make_spec(config, 7001, shared),
                                      kWindows);
    const std::uint64_t b = solo_hash(comm, make_spec(config, 7002, shared),
                                      kWindows);
    if (comm.rank() == 0) {
      hash_a = a;
      hash_b = b;
    }
  });
  // Distinct perturbations produce distinct trajectories.
  EXPECT_NE(hash_a, hash_b);

  run_ranks(kRanks, [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    for (std::uint64_t seed : {7001, 7002, 7003, 7004})
      specs.push_back(make_spec(config, seed, shared));
    fleet::EnsembleFleet fl(comm, std::move(specs));
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], hash_a) << "member 0 diverged from its solo run";
      EXPECT_EQ(hashes[1], hash_b) << "member 1 diverged from its solo run";
    }
  });

  run_ranks(kRanks, [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 7002, shared));  // reversed order
    specs.push_back(make_spec(config, 7001, shared));
    fleet::EnsembleFleet fl(comm, std::move(specs));
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], hash_b) << "ordering changed member-B trajectory";
      EXPECT_EQ(hashes[1], hash_a) << "ordering changed member-A trajectory";
    }
  });
}

// Same contract under an adversarial transport: drops, duplicates, delays,
// and stalls must not change any member's bits.
TEST(Fleet, MemberHashSurvivesTransportFaults) {
  constexpr int kRanks = 2;
  constexpr int kWindows = 5;
  const cpl::CoupledConfig config = fleet_config();
  const auto shared = cpl::build_shared_inputs(config);

  std::uint64_t hash_a = 0, hash_b = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    const std::uint64_t a = solo_hash(comm, make_spec(config, 7001, shared),
                                      kWindows);
    const std::uint64_t b = solo_hash(comm, make_spec(config, 7002, shared),
                                      kWindows);
    if (comm.rank() == 0) {
      hash_a = a;
      hash_b = b;
    }
  });

  run_ranks(kRanks, heavy_fault_plan(20260808), [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 7001, shared));
    specs.push_back(make_spec(config, 7002, shared));
    fleet::EnsembleFleet fl(comm, std::move(specs));
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], hash_a) << "faults changed member-A trajectory";
      EXPECT_EQ(hashes[1], hash_b) << "faults changed member-B trajectory";
    }
  });
}

// The unperturbed control member (seed 0, shared inputs, donated plans) is
// bit-identical to the legacy construction path with no scenario at all.
TEST(Fleet, ControlMemberMatchesLegacySoloConstruction) {
  constexpr int kRanks = 2;
  constexpr int kWindows = 5;
  const cpl::CoupledConfig config = fleet_config();
  const auto shared = cpl::build_shared_inputs(config);

  std::uint64_t legacy = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);  // legacy ctor: no spec, no shared
    model.run_windows(kWindows);
    const std::uint64_t h = model.state_hash();
    if (comm.rank() == 0) legacy = h;
  });

  run_ranks(kRanks, [&](par::Comm& comm) {
    fleet::EnsembleFleet fl(
        comm, fleet::EnsembleFleet::perturbed_specs(config, 3, shared));
    EXPECT_EQ(fl.spec(0).perturbation_seed, 0u);
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], legacy)
          << "shared-inputs control diverged from the legacy solo path";
      EXPECT_NE(hashes[1], legacy);  // perturbed members actually diverge
      EXPECT_NE(hashes[2], hashes[1]);
    }
  });
}

// Concurrent task layout: the fleet donates plans across a partitioned
// communicator too.
TEST(Fleet, ConcurrentLayoutMembersMatchSolo) {
  constexpr int kRanks = 2;
  constexpr int kWindows = 5;
  cpl::CoupledConfig config = fleet_config();
  config.layout = cpl::Layout::kConcurrent;
  config.atm_ranks = 1;
  const auto shared = cpl::build_shared_inputs(config);

  std::uint64_t hash_a = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    const std::uint64_t a = solo_hash(comm, make_spec(config, 7001, shared),
                                      kWindows);
    if (comm.rank() == 0) hash_a = a;
  });

  run_ranks(kRanks, [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 7001, shared));
    specs.push_back(make_spec(config, 7002, shared));
    fleet::EnsembleFleet fl(comm, std::move(specs));
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], hash_a);
    }
  });
}

// ---- shared AI serving ------------------------------------------------------

// Frozen weights in the SharedInputs context thaw into ONE rank-local suite
// serving every member: the engine's column counter must show the whole
// fleet's traffic (2 members => exactly twice the solo count), and a fleet
// member must stay bit-identical to a solo run thawed from the same frozen
// record.
TEST(Fleet, SharedSuiteServesAllMembersBitExactly) {
  constexpr int kRanks = 1;
  constexpr int kWindows = 5;
  const cpl::CoupledConfig config = fleet_config();
  const auto suite = make_test_suite(6);
  const auto shared = cpl::build_shared_inputs(config, *suite);
  ASSERT_TRUE(shared->has_frozen_suite());

  std::uint64_t solo = 0;
  std::uint64_t solo_columns = 0;
  run_ranks(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, make_spec(config, 7001, shared));
    auto thawed = shared->materialize_suite();
    cpl::AiInstallOptions options;
    options.suite = thawed;
    model.install_ai_physics(options);
    model.run_windows(kWindows);
    const std::uint64_t h = model.state_hash();
    if (comm.rank() == 0) {
      solo = h;
      solo_columns = thawed->engine().stats().columns;
    }
  });
  EXPECT_GT(solo_columns, 0u);

  run_ranks(kRanks, [&](par::Comm& comm) {
    std::vector<cpl::ScenarioSpec> specs;
    specs.push_back(make_spec(config, 7001, shared));
    specs.push_back(make_spec(config, 7002, shared));
    fleet::EnsembleFleet fl(comm, std::move(specs));
    fl.install_ai_physics();  // thaw the frozen weights once for this rank
    ASSERT_NE(fl.shared_suite(), nullptr);
    fl.run_windows(kWindows);
    const auto hashes = fl.state_hashes();
    const std::uint64_t fleet_columns =
        fl.shared_suite()->engine().stats().columns;
    if (comm.rank() == 0) {
      EXPECT_EQ(hashes[0], solo)
          << "fleet member with shared suite diverged from solo thawed run";
      // One engine serving two members sees exactly double the traffic.
      EXPECT_EQ(fleet_columns, 2 * solo_columns);
    }
  });
}

// The engine's SIMD pack width (pp/pack.hpp) is a pure performance knob:
// thawing the shared frozen suite with any pack width — including the scalar
// reference path — must leave every member's state_hash unchanged.
TEST(Fleet, MemberHashInvariantToEnginePackWidth) {
  constexpr int kRanks = 1;
  constexpr int kWindows = 3;
  const cpl::CoupledConfig config = fleet_config();
  const auto suite = make_test_suite(6);
  const auto shared = cpl::build_shared_inputs(config, *suite);
  ASSERT_TRUE(shared->has_frozen_suite());

  std::vector<std::vector<std::uint64_t>> runs;
  for (std::size_t width : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    run_ranks(kRanks, [&](par::Comm& comm) {
      std::vector<cpl::ScenarioSpec> specs;
      specs.push_back(make_spec(config, 9001, shared));
      specs.push_back(make_spec(config, 9002, shared));
      fleet::EnsembleFleet fl(comm, std::move(specs));
      cpl::AiInstallOptions options;  // suite left null: thaw the frozen one
      options.engine.pack_width = width;
      fl.install_ai_physics(options);
      fl.run_windows(kWindows);
      const auto hashes = fl.state_hashes();
      if (comm.rank() == 0) runs.push_back(hashes);
    });
  }
  ASSERT_EQ(runs.size(), 3u);
  for (std::size_t r = 1; r < runs.size(); ++r)
    EXPECT_EQ(runs[r], runs[0])
        << "member hashes changed with engine pack width (run " << r << ")";
}

}  // namespace
