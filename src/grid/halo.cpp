#include "grid/halo.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "grid/partition.hpp"

namespace ap3::grid {

namespace {
constexpr int kTagWest = 9101;
constexpr int kTagEast = 9102;
constexpr int kTagSouth = 9103;
constexpr int kTagNorth = 9104;
constexpr int kTagFold = 9105;
constexpr int kTagGraph = 9106;
}  // namespace

namespace {
BlockCuts uniform_cuts(int nx_global, int ny_global, int px, int py) {
  BlockCuts cuts;
  cuts.x.push_back(0);
  for (int b = 0; b < px; ++b)
    cuts.x.push_back(partition_1d(nx_global, px, b).end);
  cuts.y.push_back(0);
  for (int b = 0; b < py; ++b)
    cuts.y.push_back(partition_1d(ny_global, py, b).end);
  return cuts;
}
}  // namespace

BlockHalo::BlockHalo(const par::Comm& comm, int nx_global, int ny_global,
                     int px, int py, bool north_fold)
    : BlockHalo(comm, nx_global, ny_global,
                uniform_cuts(nx_global, ny_global, px, py), north_fold) {}

BlockHalo::BlockHalo(const par::Comm& comm, int nx_global, int ny_global,
                     const BlockCuts& cuts, bool north_fold)
    : comm_(comm),
      nx_global_(nx_global),
      ny_global_(ny_global),
      px_(cuts.px()),
      py_(cuts.py()),
      north_fold_(north_fold),
      x_cuts_(cuts.x) {
  AP3_REQUIRE_MSG(comm.size() == px_ * py_,
                  "BlockHalo: comm size " << comm.size() << " != " << px_ << "x"
                                          << py_);
  AP3_REQUIRE_MSG(cuts.x.front() == 0 && cuts.x.back() == nx_global &&
                      cuts.y.front() == 0 && cuts.y.back() == ny_global,
                  "BlockHalo: cut lines do not span the global grid");
  const int rank = comm.rank();
  bx_ = rank % px_;
  by_ = rank / px_;
  x0_ = static_cast<int>(cuts.x[static_cast<std::size_t>(bx_)]);
  y0_ = static_cast<int>(cuts.y[static_cast<std::size_t>(by_)]);
  nx_local_ =
      static_cast<int>(cuts.x[static_cast<std::size_t>(bx_) + 1]) - x0_;
  ny_local_ =
      static_cast<int>(cuts.y[static_cast<std::size_t>(by_) + 1]) - y0_;
  AP3_REQUIRE_MSG(nx_local_ > 0 && ny_local_ > 0,
                  "BlockHalo: empty block for rank " << rank);

  west_rank_ = by_ * px_ + (bx_ - 1 + px_) % px_;
  east_rank_ = by_ * px_ + (bx_ + 1) % px_;
  south_rank_ = by_ > 0 ? (by_ - 1) * px_ + bx_ : -1;
  north_rank_ = by_ < py_ - 1 ? (by_ + 1) * px_ + bx_ : -1;
}

void BlockHalo::exchange(std::vector<double>& field) const {
  const auto stride = static_cast<std::size_t>(nx_local_ + 2);
  AP3_REQUIRE(field.size() == stride * static_cast<std::size_t>(ny_local_ + 2));

  // --- east/west (periodic) ---------------------------------------------
  std::vector<double> west_col(static_cast<std::size_t>(ny_local_));
  std::vector<double> east_col(static_cast<std::size_t>(ny_local_));
  for (int j = 0; j < ny_local_; ++j) {
    west_col[static_cast<std::size_t>(j)] = field[halo_index(0, j)];
    east_col[static_cast<std::size_t>(j)] = field[halo_index(nx_local_ - 1, j)];
  }
  // My west edge becomes my west-neighbor's east ghost and vice versa.
  comm_.send(std::span<const double>(west_col), west_rank_, kTagEast);
  comm_.send(std::span<const double>(east_col), east_rank_, kTagWest);
  std::vector<double> from_west(static_cast<std::size_t>(ny_local_));
  std::vector<double> from_east(static_cast<std::size_t>(ny_local_));
  comm_.recv(std::span<double>(from_west), west_rank_, kTagWest);
  comm_.recv(std::span<double>(from_east), east_rank_, kTagEast);
  for (int j = 0; j < ny_local_; ++j) {
    field[halo_index(-1, j)] = from_west[static_cast<std::size_t>(j)];
    field[halo_index(nx_local_, j)] = from_east[static_cast<std::size_t>(j)];
  }

  // --- south/north interior ------------------------------------------------
  std::vector<double> row(static_cast<std::size_t>(nx_local_));
  if (south_rank_ >= 0) {
    for (int i = 0; i < nx_local_; ++i)
      row[static_cast<std::size_t>(i)] = field[halo_index(i, 0)];
    comm_.send(std::span<const double>(row), south_rank_, kTagNorth);
  }
  if (north_rank_ >= 0) {
    for (int i = 0; i < nx_local_; ++i)
      row[static_cast<std::size_t>(i)] = field[halo_index(i, ny_local_ - 1)];
    comm_.send(std::span<const double>(row), north_rank_, kTagSouth);
  }
  if (south_rank_ >= 0) {
    comm_.recv(std::span<double>(row), south_rank_, kTagSouth);
    for (int i = 0; i < nx_local_; ++i)
      field[halo_index(i, -1)] = row[static_cast<std::size_t>(i)];
  } else {
    // Closed southern boundary: zero-gradient ghost.
    for (int i = 0; i < nx_local_; ++i)
      field[halo_index(i, -1)] = field[halo_index(i, 0)];
  }
  if (north_rank_ >= 0) {
    comm_.recv(std::span<double>(row), north_rank_, kTagNorth);
    for (int i = 0; i < nx_local_; ++i)
      field[halo_index(i, ny_local_)] = row[static_cast<std::size_t>(i)];
  } else if (!north_fold_) {
    for (int i = 0; i < nx_local_; ++i)
      field[halo_index(i, ny_local_)] = field[halo_index(i, ny_local_ - 1)];
  }

  // --- tripolar north fold -------------------------------------------------
  // Ghost north of global top row at global column g mirrors the top-row
  // interior at column nx-1-g. Piecewise exchange with every top-row block
  // whose x-range intersects the mirror of ours.
  if (north_fold_ && north_rank_ < 0) {
    const int rank_row_base = by_ * px_;
    // Send phase: peer p needs mirror of its range; what I own of that is
    // my x-range intersected with mirror(p-range).
    for (int pbx = 0; pbx < px_; ++pbx) {
      const Range1D pr = {x_cuts_[static_cast<std::size_t>(pbx)],
                          x_cuts_[static_cast<std::size_t>(pbx) + 1]};
      // Mirror of [pr.begin, pr.end) is [nx-pr.end, nx-pr.begin).
      const int mbegin = nx_global_ - static_cast<int>(pr.end);
      const int mend = nx_global_ - static_cast<int>(pr.begin);
      const int lo = std::max(x0_, mbegin);
      const int hi = std::min(x0_ + nx_local_, mend);
      if (lo >= hi) continue;
      std::vector<double> chunk(static_cast<std::size_t>(hi - lo));
      for (int g = lo; g < hi; ++g)
        chunk[static_cast<std::size_t>(g - lo)] =
            field[halo_index(g - x0_, ny_local_ - 1)];
      comm_.send(std::span<const double>(chunk), rank_row_base + pbx, kTagFold);
    }
    // Receive phase: my ghosts [x0, x0+nxl) mirror to [nx-x0-nxl, nx-x0);
    // collect from every owner of that interval.
    const int need_begin = nx_global_ - (x0_ + nx_local_);
    const int need_end = nx_global_ - x0_;
    for (int pbx = 0; pbx < px_; ++pbx) {
      const Range1D pr = {x_cuts_[static_cast<std::size_t>(pbx)],
                          x_cuts_[static_cast<std::size_t>(pbx) + 1]};
      const int lo = std::max(static_cast<int>(pr.begin), need_begin);
      const int hi = std::min(static_cast<int>(pr.end), need_end);
      if (lo >= hi) continue;
      std::vector<double> chunk(static_cast<std::size_t>(hi - lo));
      comm_.recv(std::span<double>(chunk), rank_row_base + pbx, kTagFold);
      // chunk[c] holds top-row value at global mirror column m = lo + c;
      // it fills my ghost at global column g = nx-1-m.
      for (int c = 0; c < hi - lo; ++c) {
        const int m = lo + c;
        const int g = nx_global_ - 1 - m;
        AP3_REQUIRE(g >= x0_ && g < x0_ + nx_local_);
        field[halo_index(g - x0_, ny_local_)] =
            chunk[static_cast<std::size_t>(c)];
      }
    }
  }
}

GraphHalo::GraphHalo(const par::Comm& comm, std::vector<std::int64_t> owned,
                     std::vector<std::int64_t> ghosts,
                     const std::function<int(std::int64_t)>& owner_of)
    : comm_(comm), owned_(std::move(owned)), ghosts_(std::move(ghosts)) {
  AP3_REQUIRE(std::is_sorted(owned_.begin(), owned_.end()));

  // Group ghost requests by owning rank, preserving ghost order per rank.
  std::map<int, std::vector<std::int64_t>> requests;
  for (std::size_t g = 0; g < ghosts_.size(); ++g) {
    const int owner = owner_of(ghosts_[g]);
    AP3_REQUIRE_MSG(owner != comm.rank(), "ghost id owned locally");
    requests[owner].push_back(ghosts_[g]);
    recv_plan_[owner].push_back(g);
  }

  // Handshake: alltoallv of requested ids tells each rank what to send.
  std::vector<std::int64_t> flat;
  std::vector<std::size_t> counts(static_cast<std::size_t>(comm.size()), 0);
  for (int r = 0; r < comm.size(); ++r) {
    auto it = requests.find(r);
    if (it == requests.end()) continue;
    counts[static_cast<std::size_t>(r)] = it->second.size();
    flat.insert(flat.end(), it->second.begin(), it->second.end());
  }
  std::vector<std::size_t> incoming_counts;
  const std::vector<std::int64_t> incoming = comm.alltoallv(
      std::span<const std::int64_t>(flat), std::span<const std::size_t>(counts),
      incoming_counts);

  std::size_t offset = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const std::size_t n = incoming_counts[static_cast<std::size_t>(r)];
    if (n == 0) continue;
    std::vector<std::size_t>& plan = send_plan_[r];
    plan.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::int64_t id = incoming[offset + k];
      const auto it = std::lower_bound(owned_.begin(), owned_.end(), id);
      AP3_REQUIRE_MSG(it != owned_.end() && *it == id,
                      "rank asked for id " << id << " we do not own");
      plan.push_back(static_cast<std::size_t>(it - owned_.begin()));
    }
    offset += n;
  }
}

void GraphHalo::exchange(std::span<const double> owned_values,
                         std::span<double> ghost_values) const {
  AP3_REQUIRE(owned_values.size() == owned_.size());
  AP3_REQUIRE(ghost_values.size() == ghosts_.size());
  for (const auto& [peer, indices] : send_plan_) {
    std::vector<double> payload(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k)
      payload[k] = owned_values[indices[k]];
    comm_.send(std::span<const double>(payload), peer, kTagGraph);
  }
  for (const auto& [peer, positions] : recv_plan_) {
    std::vector<double> payload(positions.size());
    const std::size_t n = comm_.recv(std::span<double>(payload), peer, kTagGraph);
    AP3_REQUIRE(n == payload.size());
    for (std::size_t k = 0; k < positions.size(); ++k)
      ghost_values[positions[k]] = payload[k];
  }
}

}  // namespace ap3::grid
