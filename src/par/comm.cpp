#include "par/comm.hpp"

#include <set>
#include <thread>

#include "obs/obs.hpp"

namespace ap3::par {

namespace {

/// Collectives reserve tags <= -1000 (see comm.hpp); map them to a name so
/// traffic shows up as obs counter families per collective, not a bare tag.
const char* collective_of(int tag) {
  switch (tag) {
    case -1000: return "bcast";
    case -1001: return "gather";
    case -1002: return "allgatherv";
    case -1003: return "reduce";
    case -1004: return "alltoall";
    case -1005: return "alltoallv";
  }
  return nullptr;
}

/// One obs counter family per message: collectives aggregate under
/// "par:coll:<name>:bytes", user point-to-point traffic keeps a per-tag
/// breakdown ("par:p2p:bytes:tag[<tag>]"), and "par:bytes:total" is the
/// grand total that must match World::traffic().bytes.
void account_obs(int tag, std::size_t bytes) {
  if (!obs::enabled()) return;
  const auto delta = static_cast<double>(bytes);
  if (const char* coll = collective_of(tag)) {
    obs::counter_add(std::string("par:coll:") + coll + ":bytes", delta);
    obs::counter_add(std::string("par:coll:") + coll + ":messages", 1.0);
  } else {
    obs::counter_add_keyed("par:p2p:bytes:tag", tag, delta);
    obs::counter_add("par:p2p:messages", 1.0);
  }
  obs::counter_add("par:bytes:total", delta);
  obs::counter_add("par:messages:total", 1.0);
}

}  // namespace

namespace detail {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Message Mailbox::take(int comm_id, int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, comm_id, src, tag)) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::try_take(int comm_id, int src, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, comm_id, src, tag)) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

}  // namespace detail

World::World(int nranks) : nranks_(nranks) {
  AP3_REQUIRE_MSG(nranks > 0, "World needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
}

TrafficStats World::traffic() const {
  return {messages_.load(std::memory_order_relaxed),
          bytes_.load(std::memory_order_relaxed)};
}

detail::Barrier& World::barrier_for(int comm_id, int parties) {
  std::lock_guard<std::mutex> lock(barrier_mutex_);
  auto it = barriers_.find(comm_id);
  if (it == barriers_.end()) {
    it = barriers_
             .emplace(comm_id, std::make_unique<detail::Barrier>(parties))
             .first;
  }
  return *it->second;
}

void World::account(std::size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void Request::wait() {
  if (action_) {
    action_();
    action_ = nullptr;
  }
}

void wait_all(std::span<Request> requests) {
  for (Request& request : requests) request.wait();
}

void Comm::post(int dest, int tag, std::size_t type_hash,
                std::span<const std::byte> bytes) const {
  AP3_REQUIRE_MSG(dest >= 0 && dest < size(),
                  "send to invalid rank " << dest << " (comm size " << size()
                                          << ")");
  detail::Message m;
  m.comm_id = comm_id_;
  m.src = rank_;
  m.tag = tag;
  m.type_hash = type_hash;
  m.data.assign(bytes.begin(), bytes.end());
  world_->account(bytes.size());
  account_obs(tag, bytes.size());
  world_->mailbox(world_rank_of(dest)).deliver(std::move(m));
}

detail::Message Comm::take(int src, int tag) const {
  AP3_REQUIRE_MSG(src == kAnySource || (src >= 0 && src < size()),
                  "recv from invalid rank " << src);
  return world_->mailbox(world_rank_of(rank_)).take(comm_id_, src, tag);
}

int Comm::world_rank_of(int comm_rank) const {
  return group_[static_cast<std::size_t>(comm_rank)];
}

void Comm::barrier() const {
  world_->barrier_for(comm_id_, size()).arrive_and_wait();
}

Comm Comm::split(int color, int key) const {
  AP3_REQUIRE_MSG(color >= 0, "split color must be non-negative");
  detail::SplitTable& table = world_->split_table();
  const std::uint64_t epoch = split_epoch_++;
  const auto table_key = std::make_pair(comm_id_, epoch);
  {
    std::unique_lock<std::mutex> lock(table.mutex);
    table.entries[table_key][rank_] = {color, key};
    if (static_cast<int>(table.entries[table_key].size()) == size()) {
      table.cv.notify_all();
    } else {
      table.cv.wait(lock, [&] {
        return static_cast<int>(table.entries[table_key].size()) == size();
      });
    }
  }

  // Every rank now computes the identical split deterministically.
  std::map<int, std::pair<int, int>> entries;
  {
    std::lock_guard<std::mutex> lock(table.mutex);
    entries = table.entries[table_key];
  }

  // Order the ranks of my color by (key, old rank).
  std::vector<std::pair<std::pair<int, int>, int>> mine;  // ((key, old), old)
  for (const auto& [old_rank, ck] : entries) {
    if (ck.first == color) mine.push_back({{ck.second, old_rank}, old_rank});
  }
  std::sort(mine.begin(), mine.end());

  std::vector<int> new_group;
  int new_rank = -1;
  for (const auto& [sort_key, old_rank] : mine) {
    if (old_rank == rank_) new_rank = static_cast<int>(new_group.size());
    new_group.push_back(world_rank_of(old_rank));
  }
  AP3_REQUIRE(new_rank >= 0);

  // Deterministic distinct id per (parent, epoch, color-index).
  std::set<int> colors;
  for (const auto& [old_rank, ck] : entries) colors.insert(ck.first);
  int color_index = 0;
  for (int c : colors) {
    if (c == color) break;
    ++color_index;
  }
  const int new_id =
      comm_id_ * 4096 + static_cast<int>(epoch % 64) * 64 + color_index + 1;

  return Comm(world_, std::move(new_group), new_rank, new_id, 0);
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  World world(nranks);
  std::vector<int> group(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) group[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Label this thread's observability buffer so exporters render one
        // timeline row per simulated rank.
        obs::set_rank(r);
        Comm comm(&world, group, r, /*comm_id=*/0, /*split_epoch=*/0);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ap3::par
