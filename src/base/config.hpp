// Key-value configuration with typed access and namelist-style parsing.
//
// Components receive a Config slice ("atm.", "ocn.", ...) mirroring the way
// CESM components consume namelists. Values are stored as strings and parsed
// on access; missing keys either throw (get) or fall back (get_or).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ap3 {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, long long value);
  void set(const std::string& key, int value) { set(key, (long long)value); }
  void set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed access; throws ConfigError if missing or unparsable.
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  std::string get_string_or(const std::string& key, const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  long long get_int_or(const std::string& key, long long fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// All keys beginning with `prefix`, with the prefix stripped.
  Config slice(const std::string& prefix) const;

  /// Merge: entries in `other` override entries here.
  void merge(const Config& other);

  std::vector<std::string> keys() const;
  std::string to_string() const;

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace ap3
