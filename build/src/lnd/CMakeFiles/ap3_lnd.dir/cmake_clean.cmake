file(REMOVE_RECURSE
  "CMakeFiles/ap3_lnd.dir/land.cpp.o"
  "CMakeFiles/ap3_lnd.dir/land.cpp.o.d"
  "libap3_lnd.a"
  "libap3_lnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_lnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
