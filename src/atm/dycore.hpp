// GRIST-mini dynamical core: a vector-invariant-style shallow-water solver
// on the icosahedral triangular mesh, plus upwind tracer advection for the
// 3-D temperature/humidity stacks.
//
// The numerical choices favour robustness and the *computational structure*
// of the paper's dycore (unstructured cell loops, halo exchange every
// substep, forward–backward gravity-wave coupling, sub-stepped tracers):
//   - cell-centred state (A-grid) with 3-D Cartesian tangent velocities,
//   - flux-form continuity with first-order upwinding (mass conserved to
//     round-off across any rank count),
//   - forward–backward time stepping (h first, then velocity from new h),
//   - optional §5.2.3 group-scaled mixed-precision state rounding.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "atm/config.hpp"
#include "grid/halo.hpp"
#include "grid/icosahedral.hpp"
#include "grid/partition.hpp"
#include "par/comm.hpp"

namespace ap3::atm {

/// Per-rank geometry cache of a contiguous cell partition.
class LocalMesh {
 public:
  LocalMesh(const par::Comm& comm, const grid::IcosahedralGrid& mesh);

  std::size_t num_owned() const { return num_owned_; }
  std::size_t num_ghosts() const { return ghost_ids_.size(); }
  std::size_t num_slots() const { return num_owned_ + ghost_ids_.size(); }
  std::int64_t ncells_global() const { return ncells_global_; }
  std::int64_t global_id(std::size_t owned) const {
    return owned_begin_ + static_cast<std::int64_t>(owned);
  }
  std::int64_t owned_begin() const { return owned_begin_; }

  struct Neighbor {
    std::size_t slot = 0;          ///< owned index or owned+ghost offset
    double edge_len_m = 0.0;       ///< shared edge length
    double dist_m = 0.0;           ///< distance between cell centers
    std::array<double, 3> out_normal{};  ///< unit, tangent, outward
  };

  const std::array<Neighbor, 3>& neighbors(std::size_t owned) const {
    return neighbors_[owned];
  }
  double area_m2(std::size_t owned) const { return area_[owned]; }
  double coriolis(std::size_t owned) const { return coriolis_[owned]; }
  double lon_rad(std::size_t owned) const { return lon_[owned]; }
  double lat_rad(std::size_t owned) const { return lat_[owned]; }
  const std::array<double, 3>& center(std::size_t owned) const {
    return center_[owned];
  }
  const std::array<double, 3>& east(std::size_t owned) const {
    return east_[owned];
  }
  const std::array<double, 3>& north(std::size_t owned) const {
    return north_[owned];
  }

  /// Fill ghost slots of a slot-indexed field from neighbor ranks.
  void exchange(std::vector<double>& slot_field) const;

 private:
  std::size_t num_owned_ = 0;
  std::int64_t owned_begin_ = 0;
  std::int64_t ncells_global_ = 0;
  std::vector<double> area_, coriolis_, lon_, lat_;
  std::vector<std::array<double, 3>> center_, east_, north_;
  std::vector<std::array<Neighbor, 3>> neighbors_;
  std::vector<std::int64_t> ghost_ids_;
  std::unique_ptr<grid::GraphHalo> halo_;
};

/// Prognostic shallow-water + tracer state, slot-indexed (owned then ghosts).
struct DycoreState {
  std::vector<double> h;               ///< layer thickness [m]
  std::vector<double> vx, vy, vz;      ///< tangent velocity [m/s]
  std::vector<double> temp;            ///< (slot * nlev) temperature [K]
  std::vector<double> q;               ///< (slot * nlev) humidity [kg/kg]
  std::size_t nlev = 0;

  std::size_t tq(std::size_t slot, std::size_t lev) const {
    return slot * nlev + lev;
  }
};

class Dycore {
 public:
  Dycore(const par::Comm& comm, const AtmConfig& config,
         const grid::IcosahedralGrid& mesh);

  const LocalMesh& mesh() const { return local_; }
  DycoreState& state() { return state_; }
  const DycoreState& state() const { return state_; }
  const AtmConfig& config() const { return config_; }

  /// One dycore substep (forward–backward shallow water).
  void step_dynamics(double dt);
  /// One tracer substep (upwind advection of temp and q on every level).
  void step_tracers(double dt);

  /// Ensemble perturbation: add a deterministic pseudo-random temperature
  /// offset in (-amplitude_k, amplitude_k) to every owned (cell, level),
  /// keyed on (seed, global cell id, level) so the field is invariant to the
  /// rank decomposition. Ghosts are refreshed afterwards.
  void perturb_temperature(std::uint64_t seed, double amplitude_k);

  /// Global invariants (collective).
  double total_mass() const;              ///< Σ h·A
  double total_tracer(int which) const;   ///< Σ tracer·h·A (0=temp, 1=q)
  double max_wind() const;                ///< max |V| across ranks
  double max_h_deviation() const;         ///< max |h − H0|

  /// Relative vorticity at each owned cell (for typhoon tracking / Fig. 6).
  std::vector<double> relative_vorticity() const;
  /// Zonal/meridional wind at an owned cell.
  void wind_at(std::size_t owned, double& u_east, double& v_north) const;
  void set_wind_at(std::size_t owned, double u_east, double v_north);

  /// Work accounting for the perf model: flops and touched bytes per
  /// substep per owned cell.
  static double dynamics_flops_per_cell() { return 220.0; }
  static double tracer_flops_per_cell_level() { return 40.0; }

 private:
  void exchange_dynamic_fields();
  void apply_mixed_precision();

  const par::Comm& comm_;
  AtmConfig config_;
  LocalMesh local_;
  DycoreState state_;
  std::vector<double> h_flux_div_;  // scratch
};

}  // namespace ap3::atm
