// Regenerates Table 2 / Fig. 8a: every strong-scaling curve of the paper —
// ATM (MPE and CPE+OPT at 3 km and 1 km), OCN (MPE and CPE+OPT at 2 km on
// Sunway; Original and OPT at 1 km on ORISE), and the coupled AP3ESM at 3v2
// and 1v1 — from the calibrated performance model. Endpoints are anchored to
// the paper; interior points and efficiencies are model predictions.
#include <cstdio>

#include <stdexcept>

#include "perf/measure.hpp"
#include "perf/scaling.hpp"

int main() {
  using namespace ap3::perf;

  std::printf("Table 2 / Fig. 8a — strong scaling (calibrated model)\n");
  std::printf("======================================================\n");
  std::printf("endpoints anchored to the paper; interior points predicted\n\n");

  ScalingModel model;
  const auto curves = model.table2_strong_scaling();
  for (const ScalingCurve& curve : curves) {
    std::printf("%s\n", curve.label.c_str());
    std::printf("  %14s  %12s  %12s\n", "cores/GPUs", "paper SYPD",
                "model SYPD");
    for (const CurvePoint& p : curve.points) {
      if (p.sypd_paper > 0)
        std::printf("  %14lld  %12.4f  %12.4f\n", p.cores, p.sypd_paper,
                    p.sypd_model);
      else
        std::printf("  %14lld  %12s  %12.4f\n", p.cores, "-", p.sypd_model);
    }
    std::printf("  parallel efficiency: model %.1f%%",
                100.0 * curve.efficiency_model());
    if (curve.efficiency_paper() > 0)
      std::printf("  (paper %.1f%%)", 100.0 * curve.efficiency_paper());
    std::printf("\n\n");
  }

  // §7.2 MPE -> CPE speedup bands at matched node counts, from the
  // calibrated curves (t = a*compute + b*comm with each curve's solved
  // coefficients).
  const AtmWorkload atm3 = AtmWorkload::paper(3.0);
  const OcnWorkload ocn2 = OcnWorkload::paper(2.0);
  auto find = [&](const char* label) -> const ScalingCurve& {
    for (const auto& c : curves)
      if (c.label == label) return c;
    throw std::runtime_error(label);
  };
  auto calibrated_seconds = [](const ScalingCurve& curve, const DayCost& cost) {
    return curve.calib_compute * cost.compute + curve.calib_comm * cost.comm;
  };
  std::printf("MPE -> CPE+OPT speedup bands (calibrated, matched nodes):\n");
  for (long long nodes : {5462LL, 43691LL}) {
    const double atm_speedup =
        calibrated_seconds(find("3km ATM MPE"),
                           model.atm_day_sunway(atm3, nodes, CodePath::kMpe)) /
        calibrated_seconds(find("3km ATM CPE+OPT"),
                           model.atm_day_sunway(atm3, nodes, CodePath::kCpeOpt));
    const double ocn_speedup =
        calibrated_seconds(find("2km OCN MPE"),
                           model.ocn_day_sunway(ocn2, nodes, CodePath::kMpe)) /
        calibrated_seconds(find("2km OCN CPE+OPT"),
                           model.ocn_day_sunway(ocn2, nodes, CodePath::kCpeOpt));
    std::printf("  %6lld nodes: atm %.0fx, ocn %.0fx\n", nodes, atm_speedup,
                ocn_speedup);
  }
  std::printf("  (paper: 112x-184x atm, 84x-150x ocn)\n\n");

  // Calibration provenance: the per-point costs of this repository's real
  // kernels on this host (DESIGN.md §4 step (a)/(b)).
  const LocalKernelCosts measured = measure_local_costs();
  std::printf("measured local kernel costs (this host, mini kernels):\n");
  std::printf("  atm dynamics  %8.1f ns/cell-step\n",
              measured.atm_dynamics_ns_per_cell);
  std::printf("  atm tracer    %8.1f ns/cell-level-step\n",
              measured.atm_tracer_ns_per_cell_level);
  std::printf("  atm physics   %8.1f ns/column-step\n",
              measured.atm_physics_ns_per_column);
  std::printf("  ocn kernels   %8.1f ns/point-op (blended)\n\n",
              measured.ocn_barotropic_ns_per_point);

  std::printf("headline numbers:\n");
  for (const ScalingCurve& curve : curves) {
    const CurvePoint& last = curve.points.back();
    std::printf("  %-24s %10lld cores -> %6.3f SYPD (paper %.3g)\n",
                curve.label.c_str(), last.cores, last.sypd_model,
                last.sypd_paper);
  }
  return 0;
}
