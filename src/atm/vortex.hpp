// Synthetic tropical-cyclone seeding and tracking (the Typhoon Doksuri
// analog of §7.1 / Figs. 6–7).
//
// seed_vortex() superimposes a gradient-balanced warm-core-style vortex on
// the shallow-water state: a Gaussian thickness depression plus a Rankine-
// like tangential wind profile. track_vortex() finds the thickness minimum
// near the previous fix — the standard min-pressure tracker — and reports
// position and intensity (max wind inside the search radius).
#pragma once

#include <vector>

#include "atm/dycore.hpp"
#include "par/comm.hpp"

namespace ap3::atm {

struct VortexSpec {
  double lon_deg = 130.0;
  double lat_deg = 15.0;
  double radius_km = 300.0;     ///< radius of maximum wind scale
  double max_wind_ms = 35.0;    ///< peak tangential wind
  double depression_m = 60.0;   ///< central thickness deficit
};

void seed_vortex(Dycore& dycore, const VortexSpec& spec);

struct VortexFix {
  double lon_deg = 0.0;
  double lat_deg = 0.0;
  double min_h_m = 0.0;       ///< central thickness (lower = deeper)
  double max_wind_ms = 0.0;   ///< within the search radius
  bool found = false;
};

/// Collective: locate the vortex near (prev_lon, prev_lat) within
/// `search_km`. Every rank receives the same fix.
VortexFix track_vortex(const Dycore& dycore, const par::Comm& comm,
                       double prev_lon_deg, double prev_lat_deg,
                       double search_km);

/// Saffir–Simpson-like category from max sustained wind [m/s] (0 = TS).
int intensity_category(double max_wind_ms);

/// Great-circle distance between two (lon, lat) fixes in km.
double track_distance_km(double lon1_deg, double lat1_deg, double lon2_deg,
                         double lat2_deg);

}  // namespace ap3::atm
