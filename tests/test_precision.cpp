// Tests for the group-wise scaling FP64/FP32 mixed precision of §5.2.3.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.hpp"
#include "base/stats.hpp"
#include "precision/group_scaled.hpp"

namespace {

using namespace ap3;
using precision::GroupScaledArray;

TEST(GroupScaled, RoundTripWithinFp32RelativeError) {
  Rng rng(1);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.normal() * 1e5;
  const double max_rel = precision::max_relative_roundtrip_error(values, 32);
  // FP32 has ~1.2e-7 relative epsilon; group scaling must stay within a few
  // ULP of that.
  EXPECT_LT(max_rel, 5e-7);
}

TEST(GroupScaled, HandlesWildMagnitudeVariationAcrossGroups) {
  // Alternating groups of tiny (SSH ~ 1e-1) and huge (pressure ~ 1e7)
  // magnitudes: per-group scales keep *relative* accuracy in both, which a
  // single global scale could not.
  std::vector<double> values;
  Rng rng(2);
  for (int g = 0; g < 20; ++g) {
    const double magnitude = g % 2 == 0 ? 1e-1 : 1e7;
    for (int i = 0; i < 16; ++i) values.push_back(magnitude * (1.0 + 0.5 * rng.normal()));
  }
  EXPECT_LT(precision::max_relative_roundtrip_error(values, 16), 5e-7);
}

TEST(GroupScaled, ZerosPreservedExactly) {
  std::vector<double> values(64, 0.0);
  values[10] = 5.0;
  const auto packed = GroupScaledArray::compress(values, 8);
  EXPECT_EQ(packed.at(0), 0.0);
  EXPECT_EQ(packed.at(63), 0.0);
  EXPECT_NEAR(packed.at(10), 5.0, 1e-6);
}

TEST(GroupScaled, PowerOfTwoValuesExact) {
  // Power-of-two scaling means powers of two round-trip exactly.
  std::vector<double> values = {1.0, 2.0, 4.0, 0.5, 0.25, 1024.0, -8.0, -0.125};
  const auto packed = GroupScaledArray::compress(values, 4);
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(packed.at(i), values[i]);
}

TEST(GroupScaled, CompressionRatioNearTwo) {
  std::vector<double> values(1024, 3.14);
  const auto packed = GroupScaledArray::compress(values, 64);
  EXPECT_GT(packed.compression_ratio(), 1.9);
  EXPECT_LE(packed.compression_ratio(), 2.0);
}

TEST(GroupScaled, SmallGroupsCostMoreMetadata) {
  std::vector<double> values(1024, 1.0);
  const auto fine = GroupScaledArray::compress(values, 2);
  const auto coarse = GroupScaledArray::compress(values, 128);
  EXPECT_LT(fine.compression_ratio(), coarse.compression_ratio());
}

TEST(GroupScaled, RoundThroughMixedMatchesCompress) {
  Rng rng(3);
  std::vector<double> values(257);  // non-multiple of group size
  for (double& v : values) v = rng.normal();
  std::vector<double> copy = values;
  precision::round_through_mixed(copy, 32);
  const auto packed = GroupScaledArray::compress(values, 32);
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(copy[i], packed.at(i));
}

TEST(GroupScaled, GristAcceptanceMetricUnderThreshold) {
  // A mixed-precision state must pass the paper's 5 % relative-L2 gate by a
  // wide margin for a single round trip.
  Rng rng(4);
  std::vector<double> ps(500);
  for (double& v : ps) v = 1e5 + 2e3 * rng.normal();  // surface pressure field
  std::vector<double> mixed = ps;
  precision::round_through_mixed(mixed, 32);
  EXPECT_LT(stats::relative_l2(mixed, ps), 0.05);
  EXPECT_LT(stats::relative_l2(mixed, ps), 1e-6);  // actually far below
}

TEST(GroupScaled, DegenerateGroupSizeOne) {
  std::vector<double> values = {1.5, -2.5, 3.5};
  const auto packed = GroupScaledArray::compress(values, 1);
  for (size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(packed.at(i), values[i], 1e-6);
}

}  // namespace
