// Benchmark: runtime load rebalancing of the coupled ocean decomposition.
//
// Runs the same toy coupled configuration with CoupledConfig::rebalance_every
// off and on, under two load conditions, and reports wall time plus the
// collective state hash for each run. The hash is the bit-exactness witness:
// migrating columns between ranks must not change a single bit of the coupled
// state relative to never migrating at all.
//
// Where the win comes from on this transport: the "skewed" condition arms the
// synthetic straggler stall (OcnConfig::stall_seconds_per_point) on the right
// half of the ocean grid, so the rank owning that half sleeps off a fixed
// busy-time per baroclinic step while its neighbor idles in halo waits. The
// balancer reads the per-rank busy cost from the obs layer, shifts the block
// cut toward the straggler, and migrates the columns; after that the stall
// band is split across both ranks, whose sleeps overlap in wall time, so the
// per-step critical path roughly halves. The "uniform" condition runs the
// same grid with no stall: the balancer must recognize the balanced load and
// never migrate (migrations == 0), and the measured speedup is the honest
// no-win baseline.
//
// Prints a table and writes BENCH_rebalance.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

constexpr int kRanks = 2;
constexpr int kReps = 3;
constexpr int kWindows = 6;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

cpl::CoupledConfig bench_config(bool rebalance, bool skewed) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{48, 32, 6};
  config.ocn_couple_ratio = 1;
  if (skewed) {
    // Straggler band on the right half of the grid: waiting-dominated
    // imbalance (I/O stalls, fault retransmissions) that leaves state alone.
    config.ocn.stall_seconds_per_point = 4.0e-6;
    config.ocn.stall_i_begin = 24;
  }
  if (rebalance) {
    config.rebalance_every = 1;
    // Stock hysteresis policy: the skewed condition must clear the 1.15×
    // imbalance gate on merit, and the uniform condition must not.
  }
  return config;
}

struct RunResult {
  double best_seconds = 1e300;
  std::uint64_t state_hash = 0;
  long long migrations = 0;
};

/// One timed run: wall time over kWindows coupled windows plus the final
/// collective state hash (identical across reps — the whole run is
/// deterministic by construction).
RunResult run_once(bool rebalance, bool skewed) {
  std::atomic<double> wall{0.0};
  std::atomic<std::uint64_t> hash{0};
  std::atomic<long long> migrations{0};
  par::run(kRanks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, bench_config(rebalance, skewed));
    comm.barrier();
    const double t0 = now_seconds();
    model.run_windows(kWindows);
    comm.barrier();
    const double t1 = now_seconds();
    const std::uint64_t h = model.state_hash();  // collective
    if (comm.rank() == 0) {
      wall = t1 - t0;
      hash = h;
      migrations = model.rebalance_migrations();
    }
  });
  return {wall.load(), hash.load(), migrations.load()};
}

}  // namespace

int main() {
  std::printf(
      "coupled rebalance benchmark: %d ranks, %d windows, best of %d\n\n",
      kRanks, kWindows, kReps);

  struct Cell {
    const char* condition;
    bool skewed;
    RunResult off, on;
  };
  Cell cells[] = {{"skewed", true, {}, {}}, {"uniform", false, {}, {}}};

  std::printf("  %-9s %16s %15s %9s %11s %10s\n", "condition",
              "rebalance off [s]", "rebalance on [s]", "speedup", "migrations",
              "bit-exact");
  for (Cell& cell : cells) {
    // Interleave the off/on runs rep by rep so ambient machine drift hits
    // both modes equally; best-of-kReps per mode on top of that.
    for (int rep = 0; rep < kReps; ++rep) {
      const RunResult off = run_once(/*rebalance=*/false, cell.skewed);
      const RunResult on = run_once(/*rebalance=*/true, cell.skewed);
      cell.off.best_seconds = std::min(cell.off.best_seconds, off.best_seconds);
      cell.on.best_seconds = std::min(cell.on.best_seconds, on.best_seconds);
      cell.off.state_hash = off.state_hash;
      cell.on.state_hash = on.state_hash;
      cell.on.migrations = on.migrations;
    }
    const double speedup = cell.off.best_seconds / cell.on.best_seconds;
    const bool exact = cell.off.state_hash == cell.on.state_hash;
    std::printf("  %-9s %16.4f %15.4f %8.3fx %11lld %10s\n", cell.condition,
                cell.off.best_seconds, cell.on.best_seconds, speedup,
                cell.on.migrations, exact ? "yes" : "NO");
    if (!exact) {
      std::fprintf(stderr,
                   "error: rebalancing changed the coupled state under %s "
                   "(%016llx vs %016llx)\n",
                   cell.condition,
                   static_cast<unsigned long long>(cell.off.state_hash),
                   static_cast<unsigned long long>(cell.on.state_hash));
      return 1;
    }
  }
  if (cells[0].on.migrations <= 0) {
    std::fprintf(stderr,
                 "error: skewed condition never migrated — benchmark vacuous\n");
    return 1;
  }
  if (cells[1].on.migrations != 0) {
    std::fprintf(stderr,
                 "error: uniform condition migrated %lld times — hysteresis "
                 "gate failed\n",
                 cells[1].on.migrations);
    return 1;
  }

  const double headline = cells[0].off.best_seconds / cells[0].on.best_seconds;
  std::printf("\nheadline (skewed): %.3fx from migrating the straggler band "
              "across ranks\n",
              headline);

  FILE* f = std::fopen("BENCH_rebalance.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"ranks\": %d,\n  \"windows\": %d,\n  \"cases\": [\n",
                 kRanks, kWindows);
    for (std::size_t c = 0; c < 2; ++c) {
      const Cell& cell = cells[c];
      std::fprintf(
          f,
          "    {\"condition\": \"%s\", \"off_seconds\": %.6f, "
          "\"on_seconds\": %.6f, \"speedup\": %.4f, "
          "\"state_hash_off\": \"%016llx\", \"state_hash_on\": \"%016llx\", "
          "\"hashes_equal\": %s, \"migrations\": %lld}%s\n",
          cell.condition, cell.off.best_seconds, cell.on.best_seconds,
          cell.off.best_seconds / cell.on.best_seconds,
          static_cast<unsigned long long>(cell.off.state_hash),
          static_cast<unsigned long long>(cell.on.state_hash),
          cell.off.state_hash == cell.on.state_hash ? "true" : "false",
          cell.on.migrations, c + 1 < 2 ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"skewed_speedup\": %.4f\n"
                 "}\n",
                 headline);
    std::fclose(f);
    std::printf("wrote BENCH_rebalance.json\n");
  }
  return 0;
}
