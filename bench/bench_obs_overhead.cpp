// Micro-benchmark: cost of the observability layer on kernel dispatch.
//
// For a sweep of launch sizes, three variants of the same serial kernel:
//   raw       — a plain loop, no pp dispatch at all,
//   disabled  — pp::parallel_for with obs::set_enabled(false) (the dispatch
//               gate is one relaxed atomic load),
//   enabled   — pp::parallel_for recording one span + two counters/launch.
//
// Prints a table and writes BENCH_obs.json so CI can track the disabled-mode
// overhead. The design target: at realistic launch sizes (>= a few hundred
// items) disabled dispatch is within 5% of the raw loop; the headline JSON
// fields report the largest size. Timing uses best-of-reps, the standard
// micro-bench estimator least sensitive to scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "obs/obs.hpp"
#include "pp/exec.hpp"

namespace {

using namespace ap3;

constexpr int kReps = 9;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-kReps ns per launch for `launches` launches of `one_launch`.
template <typename Fn>
double best_ns_per_launch(std::size_t launches, const Fn& one_launch) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = now_seconds();
    for (std::size_t l = 0; l < launches; ++l) one_launch();
    const double t1 = now_seconds();
    best = std::min(best, (t1 - t0) * 1e9 / static_cast<double>(launches));
  }
  return best;
}

struct Row {
  std::size_t items;
  double raw_ns;
  double disabled_ns;
  double enabled_ns;
};

Row measure(std::size_t items) {
  std::vector<double> data(items, 1.0);
  const std::size_t launches = 2'000'000 / items + 100;

  obs::set_enabled(false);
  const double raw = best_ns_per_launch(launches, [&] {
    for (std::size_t i = 0; i < items; ++i)
      data[i] = data[i] * 1.0000001 + 1e-9;
  });
  const double disabled = best_ns_per_launch(launches, [&] {
    pp::parallel_for(pp::RangePolicy(0, items), [&](std::size_t i) {
      data[i] = data[i] * 1.0000001 + 1e-9;
    });
  });

  obs::set_enabled(true);
  const double enabled = best_ns_per_launch(launches, [&] {
    pp::parallel_for(pp::RangePolicy(0, items), [&](std::size_t i) {
      data[i] = data[i] * 1.0000001 + 1e-9;
    });
  });
  // The enabled runs overflow the per-buffer span cap by design; drop the
  // recorded data so a later consumer of this process sees a clean slate.
  obs::reset_all();

  return {items, raw, disabled, enabled};
}

}  // namespace

int main() {
  // Warm up the pool, allocators, and the thread-local buffer.
  obs::set_enabled(true);
  pp::parallel_for(pp::RangePolicy(0, 64), [](std::size_t) {});
  obs::reset_all();

  const std::size_t sizes[] = {64, 256, 1024, 4096};
  std::vector<Row> rows;
  for (std::size_t items : sizes) rows.push_back(measure(items));

  std::printf("obs dispatch overhead (serial kernel, best of %d reps)\n",
              kReps);
  std::printf("  %8s %12s %16s %16s\n", "items", "raw ns", "obs off ns (%)",
              "obs on ns (%)");
  for (const Row& row : rows) {
    std::printf("  %8zu %12.1f %10.1f (%+5.1f%%) %10.1f (%+5.1f%%)\n",
                row.items, row.raw_ns, row.disabled_ns,
                100.0 * (row.disabled_ns / row.raw_ns - 1.0), row.enabled_ns,
                100.0 * (row.enabled_ns / row.raw_ns - 1.0));
  }

  const Row& headline = rows.back();
  const double disabled_over = headline.disabled_ns / headline.raw_ns - 1.0;
  const double enabled_over = headline.enabled_ns / headline.raw_ns - 1.0;
  std::printf("\nheadline (%zu items/launch): obs-off dispatch %+.2f%% vs raw "
              "loop, obs-on %+.2f%%\n",
              headline.items, 100.0 * disabled_over, 100.0 * enabled_over);

  FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::fprintf(f,
                   "    {\"items_per_launch\": %zu, \"raw_ns_per_launch\": "
                   "%.3f, \"disabled_ns_per_launch\": %.3f, "
                   "\"enabled_ns_per_launch\": %.3f}%s\n",
                   rows[r].items, rows[r].raw_ns, rows[r].disabled_ns,
                   rows[r].enabled_ns, r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"items_per_launch\": %zu,\n"
                 "  \"raw_ns_per_launch\": %.3f,\n"
                 "  \"disabled_ns_per_launch\": %.3f,\n"
                 "  \"enabled_ns_per_launch\": %.3f,\n"
                 "  \"disabled_overhead_fraction\": %.6f,\n"
                 "  \"enabled_overhead_fraction\": %.6f\n"
                 "}\n",
                 headline.items, headline.raw_ns, headline.disabled_ns,
                 headline.enabled_ns, disabled_over, enabled_over);
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
  }
  return 0;
}
