// §5.2.5 benchmark: parallel I/O with subfile partitioning.
//
// Writes/reads a field decomposed over 8 ranks through (a) the single-file
// baseline (everything funnels through rank 0) and (b) 2/4/8 subfiles with
// rank-group aggregators, verifying round trips and reporting throughput.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "io/subfile.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct IoTiming {
  double write_seconds = 0.0;
  double read_seconds = 0.0;
  bool verified = false;
};

IoTiming run_case(int num_subfiles, std::int64_t points_per_rank) {
  static IoTiming timing;
  timing = IoTiming{};
  const int nranks = 8;
  const std::string base = "/tmp/ap3_bench_io";
  par::run(nranks, [&](par::Comm& comm) {
    io::FieldData mine;
    for (std::int64_t k = 0; k < points_per_rank; ++k) {
      mine.ids.push_back(comm.rank() * points_per_rank + k);
      mine.values.push_back(0.001 * static_cast<double>(k) + comm.rank());
    }

    comm.barrier();
    const auto w0 = std::chrono::steady_clock::now();
    if (num_subfiles == 0) {
      io::write_single(comm, base + ".bin", mine);
    } else {
      io::write_subfiles(comm, {base, num_subfiles}, mine);
    }
    comm.barrier();
    const auto w1 = std::chrono::steady_clock::now();

    io::FieldData back;
    if (num_subfiles == 0) {
      back = io::read_single(comm, base + ".bin", mine.ids);
    } else {
      back = io::read_subfiles(comm, {base, num_subfiles}, mine.ids);
    }
    comm.barrier();
    const auto r1 = std::chrono::steady_clock::now();

    const bool ok = back.values == mine.values;
    if (comm.rank() == 0) {
      timing.write_seconds = std::chrono::duration<double>(w1 - w0).count();
      timing.read_seconds = std::chrono::duration<double>(r1 - w1).count();
      timing.verified = ok;
    }
  });
  std::remove((base + ".bin").c_str());
  for (int k = 0; k < 8; ++k)
    std::remove((base + "." + std::to_string(k) + ".bin").c_str());
  return timing;
}

}  // namespace

int main() {
  std::printf("§5.2.5 — parallel I/O: single file vs subfile partitioning\n");
  std::printf("===========================================================\n\n");

  const std::int64_t points_per_rank = 200000;
  const double mb = 8.0 * points_per_rank * 2 * 8.0 / 1e6;  // ids + values
  std::printf("8 ranks x %lld points (%.0f MB total)\n\n",
              static_cast<long long>(points_per_rank), mb);
  std::printf("  layout        write [ms]   read [ms]   write MB/s   ok\n");
  for (int subfiles : {0, 2, 4, 8}) {
    const IoTiming t = run_case(subfiles, points_per_rank);
    char label[32];
    if (subfiles == 0)
      std::snprintf(label, sizeof label, "single file");
    else
      std::snprintf(label, sizeof label, "%d subfiles", subfiles);
    std::printf("  %-12s  %10.1f  %10.1f  %11.0f   %s\n", label,
                t.write_seconds * 1e3, t.read_seconds * 1e3,
                mb / t.write_seconds, t.verified ? "yes" : "NO");
    if (!t.verified) return 1;
  }
  std::printf("\nsubfiles split both the aggregation fan-in and the file-system\n"
              "stream, which is what removes the paper's I/O bottleneck at\n"
              "tens of thousands of nodes.\n");
  return 0;
}
