#include "coupler/fluxes.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace ap3::cpl {

using constants::kCpDry;
using constants::kLatentVap;
using constants::kStefanBoltzmann;

double qsat_surface(double sst_k) {
  return 0.015 * std::exp(0.0687 * (sst_k - 288.0));
}

void compute_air_sea_fluxes(const BulkFluxConfig& config,
                            const FluxInputs& in, FluxOutputs out) {
  const std::size_t n = in.sst.size();
  AP3_REQUIRE(in.taux.size() == n && in.tbot.size() == n &&
              in.gsw.size() == n && in.ifrac.size() == n &&
              out.qnet.size() == n);
  for (std::size_t p = 0; p < n; ++p) {
    // Wind speed recovered from the stress magnitude (the atm exports
    // tau = rho Cd |V| V).
    const double tau_mag =
        std::sqrt(in.taux[p] * in.taux[p] + in.tauy[p] * in.tauy[p]);
    const double wind =
        std::sqrt(tau_mag / (config.rho_air * config.drag_cd) + 1e-12);

    const double sw_absorbed = in.gsw[p] * (1.0 - config.ocean_albedo);
    const double lw_down = config.emissivity * in.glw[p];
    const double sst = in.sst[p];
    const double lw_up =
        config.emissivity * kStefanBoltzmann * sst * sst * sst * sst;
    const double sensible = config.rho_air * kCpDry *
                            config.exchange_sensible * wind *
                            (sst - in.tbot[p]);
    const double evap_deficit = std::max(0.0, qsat_surface(sst) - in.qbot[p]);
    const double latent = config.rho_air * kLatentVap *
                          config.exchange_latent * wind * evap_deficit;

    const double open_water =
        sw_absorbed + lw_down - lw_up - sensible - latent;
    // Under ice only a weak conductive flux couples ocean and atmosphere.
    const double ice_conductive = 2.0 * (in.tbot[p] - sst);
    const double ifrac = std::clamp(in.ifrac[p], 0.0, 1.0);
    out.qnet[p] = (1.0 - ifrac) * open_water + ifrac * ice_conductive;

    out.fresh[p] = (1.0 - ifrac) * in.precip[p];
    out.taux[p] = (1.0 - 0.5 * ifrac) * in.taux[p];
    out.tauy[p] = (1.0 - 0.5 * ifrac) * in.tauy[p];
  }
}

}  // namespace ap3::cpl
