file(REMOVE_RECURSE
  "CMakeFiles/ocean_eddy_spinup.dir/ocean_eddy_spinup.cpp.o"
  "CMakeFiles/ocean_eddy_spinup.dir/ocean_eddy_spinup.cpp.o.d"
  "ocean_eddy_spinup"
  "ocean_eddy_spinup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_eddy_spinup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
