#include "grid/icosahedral.hpp"

#include <cmath>
#include <map>
#include <tuple>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace ap3::grid {

using constants::kEarthRadiusM;
using constants::kPi;

double SpherePoint::lon() const { return std::atan2(y, x); }
double SpherePoint::lat() const { return std::asin(std::max(-1.0, std::min(1.0, z))); }

double IcosaCounts::resolution_km(std::int64_t n) {
  AP3_REQUIRE(n >= 1);
  // Mean cell area = 4*pi / (20 n^2) steradians; spacing = sqrt(area) * R.
  const double area = 4.0 * kPi / (20.0 * static_cast<double>(n) *
                                   static_cast<double>(n));
  return std::sqrt(area) * kEarthRadiusM / 1000.0;
}

IcosaCounts IcosaCounts::for_grist_label_km(double km) {
  AP3_REQUIRE(km > 0.0);
  const auto n = static_cast<std::int64_t>(std::llround(4123.0 / km));
  return for_n(n < 1 ? 1 : n);
}

IcosaCounts IcosaCounts::for_resolution_km(double km) {
  AP3_REQUIRE(km > 0.0);
  const double exact =
      std::sqrt(4.0 * kPi / 20.0) * (kEarthRadiusM / 1000.0) / km;
  const auto n = static_cast<std::int64_t>(std::ceil(exact));
  return for_n(n < 1 ? 1 : n);
}

namespace {

SpherePoint normalize(double x, double y, double z) {
  const double r = std::sqrt(x * x + y * y + z * z);
  return {x / r, y / r, z / r};
}

/// The 12 vertices and 20 faces of the base icosahedron.
struct BaseIcosahedron {
  std::vector<SpherePoint> vertices;
  std::vector<std::array<int, 3>> faces;
};

BaseIcosahedron base_icosahedron() {
  const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
  BaseIcosahedron base;
  const double pairs[12][3] = {
      {-1, phi, 0}, {1, phi, 0},  {-1, -phi, 0}, {1, -phi, 0},
      {0, -1, phi}, {0, 1, phi},  {0, -1, -phi}, {0, 1, -phi},
      {phi, 0, -1}, {phi, 0, 1},  {-phi, 0, -1}, {-phi, 0, 1}};
  for (const auto& p : pairs)
    base.vertices.push_back(normalize(p[0], p[1], p[2]));
  base.faces = {{0, 11, 5},  {0, 5, 1},   {0, 1, 7},   {0, 7, 10},
                {0, 10, 11}, {1, 5, 9},   {5, 11, 4},  {11, 10, 2},
                {10, 7, 6},  {7, 1, 8},   {3, 9, 4},   {3, 4, 2},
                {3, 2, 6},   {3, 6, 8},   {3, 8, 9},   {4, 9, 5},
                {2, 4, 11},  {6, 2, 10},  {8, 6, 7},   {9, 8, 1}};
  return base;
}

/// Key for vertex dedup: quantized coordinates (mesh points are well
/// separated relative to the 1e-9 quantum up to very large n).
std::tuple<long long, long long, long long> quantize(const SpherePoint& p) {
  constexpr double kScale = 1e9;
  return {static_cast<long long>(std::llround(p.x * kScale)),
          static_cast<long long>(std::llround(p.y * kScale)),
          static_cast<long long>(std::llround(p.z * kScale))};
}

/// Spherical triangle area (van Oosterom–Strackee).
double spherical_area(const SpherePoint& a, const SpherePoint& b,
                      const SpherePoint& c) {
  const double triple = a.x * (b.y * c.z - b.z * c.y) -
                        a.y * (b.x * c.z - b.z * c.x) +
                        a.z * (b.x * c.y - b.y * c.x);
  const double ab = a.x * b.x + a.y * b.y + a.z * b.z;
  const double bc = b.x * c.x + b.y * c.y + b.z * c.z;
  const double ca = c.x * a.x + c.y * a.y + c.z * a.z;
  return std::abs(2.0 * std::atan2(triple, 1.0 + ab + bc + ca));
}

}  // namespace

IcosahedralGrid::IcosahedralGrid(int n) : n_(n) {
  AP3_REQUIRE_MSG(n >= 1 && n <= 2048, "icosahedral subdivision n out of range");
  build(n);
}

void IcosahedralGrid::build(int n) {
  const BaseIcosahedron base = base_icosahedron();
  std::map<std::tuple<long long, long long, long long>, std::uint32_t> index;

  auto add_vertex = [&](const SpherePoint& p) -> std::uint32_t {
    const auto key = quantize(p);
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(vertices_.size());
    vertices_.push_back(p);
    index.emplace(key, id);
    return id;
  };

  const auto un = static_cast<std::size_t>(n);
  std::vector<std::uint32_t> lattice((un + 1) * (un + 2) / 2);
  auto lattice_at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    // Row i has n+1-i entries; offset = sum_{k<i} (n+1-k).
    const std::size_t offset = i * (un + 1) - i * (i - 1) / 2;
    return lattice[offset + j];
  };

  for (const auto& face : base.faces) {
    const SpherePoint& a = base.vertices[static_cast<std::size_t>(face[0])];
    const SpherePoint& b = base.vertices[static_cast<std::size_t>(face[1])];
    const SpherePoint& c = base.vertices[static_cast<std::size_t>(face[2])];
    // Barycentric lattice points projected to the sphere.
    for (std::size_t i = 0; i <= un; ++i) {
      for (std::size_t j = 0; j + i <= un; ++j) {
        const double wa = static_cast<double>(un - i - j);
        const double wb = static_cast<double>(i);
        const double wc = static_cast<double>(j);
        const SpherePoint p = normalize(wa * a.x + wb * b.x + wc * c.x,
                                        wa * a.y + wb * b.y + wc * c.y,
                                        wa * a.z + wb * b.z + wc * c.z);
        lattice_at(i, j) = add_vertex(p);
      }
    }
    // Triangles: "up" and "down" orientations of the lattice.
    for (std::size_t i = 0; i + 1 <= un; ++i) {
      for (std::size_t j = 0; j + i + 1 <= un; ++j) {
        cell_vertices_.push_back(
            {lattice_at(i, j), lattice_at(i + 1, j), lattice_at(i, j + 1)});
        if (j + i + 2 <= un) {
          cell_vertices_.push_back({lattice_at(i + 1, j),
                                    lattice_at(i + 1, j + 1),
                                    lattice_at(i, j + 1)});
        }
      }
    }
  }

  // Edges: dedupe unordered vertex pairs; build edge<->cell adjacency.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> edge_index;
  constexpr std::uint32_t kNone = 0xffffffffu;
  cell_edges_.resize(cell_vertices_.size());
  for (std::size_t c = 0; c < cell_vertices_.size(); ++c) {
    const auto& tri = cell_vertices_[c];
    for (int k = 0; k < 3; ++k) {
      std::uint32_t v0 = tri[static_cast<std::size_t>(k)];
      std::uint32_t v1 = tri[static_cast<std::size_t>((k + 1) % 3)];
      if (v0 > v1) std::swap(v0, v1);
      auto it = edge_index.find({v0, v1});
      std::uint32_t e;
      if (it == edge_index.end()) {
        e = static_cast<std::uint32_t>(edge_vertices_.size());
        edge_index.emplace(std::make_pair(v0, v1), e);
        edge_vertices_.push_back({v0, v1});
        edge_cells_.push_back({static_cast<std::uint32_t>(c), kNone});
      } else {
        e = it->second;
        AP3_REQUIRE_MSG(edge_cells_[e][1] == kNone,
                        "edge shared by more than two cells");
        edge_cells_[e][1] = static_cast<std::uint32_t>(c);
      }
      cell_edges_[c][static_cast<std::size_t>(k)] = e;
    }
  }
  for (const auto& ec : edge_cells_)
    AP3_REQUIRE_MSG(ec[1] != kNone, "boundary edge on a closed sphere mesh");

  // Centers and areas.
  centers_.reserve(cell_vertices_.size());
  areas_.reserve(cell_vertices_.size());
  for (const auto& tri : cell_vertices_) {
    const SpherePoint& a = vertices_[tri[0]];
    const SpherePoint& b = vertices_[tri[1]];
    const SpherePoint& c = vertices_[tri[2]];
    centers_.push_back(normalize(a.x + b.x + c.x, a.y + b.y + c.y,
                                 a.z + b.z + c.z));
    areas_.push_back(spherical_area(a, b, c));
  }

  // Verify Euler counts — this is the Table 1 signature.
  const auto nn = static_cast<std::size_t>(n);
  AP3_REQUIRE(vertices_.size() == 10 * nn * nn + 2);
  AP3_REQUIRE(edge_vertices_.size() == 30 * nn * nn);
  AP3_REQUIRE(cell_vertices_.size() == 20 * nn * nn);
}

std::array<std::uint32_t, 3> IcosahedralGrid::cell_neighbors(
    std::size_t c) const {
  std::array<std::uint32_t, 3> out{};
  for (int k = 0; k < 3; ++k) {
    const auto e = cell_edges_[c][static_cast<std::size_t>(k)];
    const auto& pair = edge_cells_[e];
    out[static_cast<std::size_t>(k)] =
        pair[0] == static_cast<std::uint32_t>(c) ? pair[1] : pair[0];
  }
  return out;
}

double IcosahedralGrid::arc(const SpherePoint& a, const SpherePoint& b) {
  const double dot = a.x * b.x + a.y * b.y + a.z * b.z;
  return std::acos(std::max(-1.0, std::min(1.0, dot)));
}

double IcosahedralGrid::mean_spacing_km() const {
  double total = 0.0;
  for (double a : areas_) total += a;
  const double mean_area = total / static_cast<double>(areas_.size());
  return std::sqrt(mean_area) * kEarthRadiusM / 1000.0;
}

}  // namespace ap3::grid
