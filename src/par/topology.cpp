#include "par/topology.hpp"

#include <algorithm>
#include <map>

#include "base/error.hpp"
#include "sunway/arch.hpp"  // header-only constants; no link dependency

namespace ap3::par {

Topology::Topology(std::vector<int> supernode_of)
    : supernode_of_(std::move(supernode_of)) {
  AP3_REQUIRE_MSG(!supernode_of_.empty(), "Topology needs at least one rank");
  // Compact the (arbitrary) ids to indices 0..S-1 in ascending id order; the
  // index order is the canonical supernode order for blocked reductions.
  std::map<int, int> index_of;
  for (int id : supernode_of_) index_of.emplace(id, 0);
  int next = 0;
  for (auto& [id, index] : index_of) index = next++;
  members_.resize(index_of.size());
  for (std::size_t r = 0; r < supernode_of_.size(); ++r) {
    const int s = index_of.at(supernode_of_[r]);
    supernode_of_[r] = s;
    members_[static_cast<std::size_t>(s)].push_back(static_cast<int>(r));
  }
  // Ranks were appended in ascending order, so members_ lists are sorted and
  // leaders (front()) are the lowest rank of each supernode by construction.
}

Topology Topology::clustered(int nranks, int supernode_size) {
  AP3_REQUIRE_MSG(nranks > 0, "Topology::clustered needs nranks > 0");
  if (supernode_size <= 0) supernode_size = sunway::kNodesPerSupernode;
  std::vector<int> map(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    map[static_cast<std::size_t>(r)] = r / supernode_size;
  return Topology(std::move(map));
}

Topology Topology::induced(const std::vector<int>& parent_ranks) const {
  AP3_REQUIRE_MSG(!parent_ranks.empty(),
                  "Topology::induced needs a non-empty subgroup");
  std::vector<int> map;
  map.reserve(parent_ranks.size());
  for (int parent : parent_ranks) {
    AP3_REQUIRE_MSG(parent >= 0 && parent < nranks(),
                    "Topology::induced: parent rank "
                        << parent << " outside [0, " << nranks() << ")");
    map.push_back(supernode_of(parent));
  }
  return Topology(std::move(map));  // ctor re-compacts the surviving ids
}

}  // namespace ap3::par
