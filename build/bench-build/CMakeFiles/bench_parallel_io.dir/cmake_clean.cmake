file(REMOVE_RECURSE
  "../bench/bench_parallel_io"
  "../bench/bench_parallel_io.pdb"
  "CMakeFiles/bench_parallel_io.dir/bench_parallel_io.cpp.o"
  "CMakeFiles/bench_parallel_io.dir/bench_parallel_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
